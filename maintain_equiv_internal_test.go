package lscr

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"lscr/internal/graph"
)

// The maintained-index equivalence tier, engine-level: after every
// committed batch of a random mutation script, an engine whose local
// index is maintained incrementally (the default) must be
// indistinguishable from an engine rebuilt from scratch on the prefix's
// final edge set — for INS including bit-identical Stats against a
// frozen-assignment rebuild of the maintained index, which removes the
// one degree of freedom (landmark re-selection under changed degrees)
// that a plain rebuild legitimately has.
//
// Test names carry "Mutate" so the race-enabled CI tier runs them.

// maintSeed builds a deterministic named seed graph plus a mutation
// script over it. Deletes always target a surviving edge (tracked in a
// shadow multiset); inserts sometimes intern brand-new vertices.
func maintSeed(seed int64, n, nLabels, nEdges, batches, ops int) (*KG, [][]Mutation) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	for i := 0; i < nLabels; i++ {
		b.Label(fmt.Sprintf("l%d", i))
	}
	for i := 0; i < n; i++ {
		b.Vertex(fmt.Sprintf("v%d", i))
	}
	type edge struct{ s, l, t string }
	var edges []edge
	for i := 0; i < nEdges; i++ {
		e := edge{
			fmt.Sprintf("v%d", rng.Intn(n)),
			fmt.Sprintf("l%d", rng.Intn(nLabels)),
			fmt.Sprintf("v%d", rng.Intn(n)),
		}
		b.AddEdgeNames(e.s, e.l, e.t)
		edges = append(edges, e)
	}
	var script [][]Mutation
	for bi := 0; bi < batches; bi++ {
		var batch []Mutation
		for oi := 0; oi < ops; oi++ {
			if len(edges) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(edges))
				e := edges[i]
				edges = append(edges[:i], edges[i+1:]...)
				batch = append(batch, Mutation{Op: OpDeleteEdge, Subject: e.s, Label: e.l, Object: e.t})
				continue
			}
			e := edge{
				fmt.Sprintf("v%d", rng.Intn(n)),
				fmt.Sprintf("l%d", rng.Intn(nLabels)),
				fmt.Sprintf("v%d", rng.Intn(n)),
			}
			if rng.Intn(6) == 0 {
				e.s = fmt.Sprintf("w%d_%d", bi, oi)
			}
			edges = append(edges, e)
			batch = append(batch, Mutation{Op: OpAddEdge, Subject: e.s, Label: e.l, Object: e.t})
		}
		script = append(script, batch)
	}
	return &KG{g: b.Build()}, script
}

// maintRequests covers all four algorithms over an endpoint/label grid.
func maintRequests(n, nLabels int) []Request {
	consts := []string{
		`SELECT ?x WHERE { ?x <l0> <v1>. }`,
		`SELECT ?x WHERE { <v2> <l1> ?x. }`,
		`SELECT ?x WHERE { ?x <l0> ?y. ?y <l1> <v3>. }`,
	}
	algos := []Algorithm{INS, UIS, UISStar, Conjunctive}
	var reqs []Request
	for i := 0; i < 24; i++ {
		req := Request{
			Source:    fmt.Sprintf("v%d", (i*7)%n),
			Target:    fmt.Sprintf("v%d", (i*13+5)%n),
			Algorithm: algos[i%len(algos)],
		}
		if i%3 != 0 {
			req.Labels = []string{fmt.Sprintf("l%d", i%nLabels)}
		}
		if req.Algorithm == Conjunctive {
			req.Constraints = []string{consts[i%len(consts)], consts[(i+1)%len(consts)]}
		} else {
			req.Constraint = consts[i%len(consts)]
		}
		reqs = append(reqs, req)
	}
	return reqs
}

func maintOutcomeEqual(a, b QueryOutcome, withStats bool) error {
	if (a.Err == nil) != (b.Err == nil) {
		return fmt.Errorf("error mismatch: %v vs %v", a.Err, b.Err)
	}
	if a.Err != nil {
		return nil
	}
	if a.Response.Reachable != b.Response.Reachable {
		return fmt.Errorf("reachable %v vs %v", a.Response.Reachable, b.Response.Reachable)
	}
	if withStats && (a.Response.Stats != b.Response.Stats || a.Response.SatisfyingVertices != b.Response.SatisfyingVertices) {
		return fmt.Errorf("stats {%+v vs=%d} vs {%+v vs=%d}",
			a.Response.Stats, a.Response.SatisfyingVertices,
			b.Response.Stats, b.Response.SatisfyingVertices)
	}
	return nil
}

// frozenOracleEngine wraps a from-scratch frozen-assignment rebuild of
// ep's index in a throwaway engine, so INS runs through the identical
// public path against an index that shares ep's landmark assignment but
// none of its incremental history.
func frozenOracleEngine(e *Engine, ep *epoch) *Engine {
	eo := &Engine{opts: e.opts}
	eo.ep.Store(eo.newEpoch(ep.seq, ep.kg.g, ep.idx.RebuildFrozen(ep.kg.g), 0))
	return eo
}

// TestMutateMaintainedEquivalence is the headline property over a seed
// matrix: at every mutation prefix the maintained engine answers every
// algorithm exactly like a from-scratch rebuild (bit-identical Stats
// for the index-free family), INS Stats are bit-identical to the
// frozen-assignment oracle, and the index epoch tracks the graph epoch.
func TestMutateMaintainedEquivalence(t *testing.T) {
	const n, nLabels = 40, 3
	opts := Options{Landmarks: 16, IndexSeed: 7, CompactAfter: -1}
	reqs := maintRequests(n, nLabels)
	ctx := context.Background()
	bo := BatchOptions{Concurrency: 4}

	for _, seed := range []int64{3, 59, 271} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			kg, script := maintSeed(seed, n, nLabels, 200, 6, 10)
			em := NewEngine(kg, opts)
			for step, batch := range script {
				if _, err := em.Apply(ctx, batch); err != nil {
					t.Fatalf("step %d: Apply: %v", step, err)
				}
				ep := em.current()
				if !ep.idx.ExactFor(ep.kg.g) {
					t.Fatalf("step %d: maintained index not exact for the published view", step)
				}
				if info := em.Epoch(); info.IndexEpoch != info.Epoch {
					t.Fatalf("step %d: index epoch %d lags graph epoch %d under maintenance",
						step, info.IndexEpoch, info.Epoch)
				}

				// Rebuild oracle: a fresh engine on the prefix's final edge
				// set (Compact preserves IDs, so dictionaries line up).
				er := NewEngine(&KG{g: ep.kg.g.Compact()}, opts)
				want := er.QueryBatch(ctx, reqs, bo)
				got := em.QueryBatch(ctx, reqs, bo)
				for i := range reqs {
					withStats := reqs[i].Algorithm != INS
					if err := maintOutcomeEqual(got[i], want[i], withStats); err != nil {
						t.Errorf("step %d, request %d (%v): %v", step, i, reqs[i].Algorithm, err)
					}
				}

				// Frozen oracle: INS bit-identical, Stats included — the
				// incremental index behaves exactly like a clean rebuild
				// under the same landmark assignment.
				eo := frozenOracleEngine(em, ep)
				oracle := eo.QueryBatch(ctx, reqs, bo)
				for i := range reqs {
					if reqs[i].Algorithm != INS {
						continue
					}
					if err := maintOutcomeEqual(got[i], oracle[i], true); err != nil {
						t.Errorf("step %d, request %d (INS vs frozen oracle): %v", step, i, err)
					}
				}
				if t.Failed() {
					t.FailNow()
				}
			}
			if em.IndexMaintenance().Batches == 0 {
				t.Fatal("script never exercised the maintenance path")
			}
		})
	}
}

// TestMutateMaintenanceDisabled pins the escape hatch: with
// NoIndexMaintenance the engine still answers exactly (INS falls back
// to unpruned search on a stale index), the index epoch lags the graph
// epoch until a compaction makes the index current again.
func TestMutateMaintenanceDisabled(t *testing.T) {
	const n, nLabels = 40, 3
	opts := Options{Landmarks: 16, IndexSeed: 7, CompactAfter: -1, NoIndexMaintenance: true}
	kg, script := maintSeed(87, n, nLabels, 200, 4, 10)
	em := NewEngine(kg, opts)
	reqs := maintRequests(n, nLabels)
	ctx := context.Background()
	bo := BatchOptions{Concurrency: 4}

	for step, batch := range script {
		if _, err := em.Apply(ctx, batch); err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		info := em.Epoch()
		if info.IndexEpoch != 0 {
			t.Fatalf("step %d: maintenance disabled but index epoch advanced to %d", step, info.IndexEpoch)
		}
		maint := em.IndexMaintenance()
		if maint.Enabled || maint.Batches != 0 || maint.IndexCurrent {
			t.Fatalf("step %d: maintenance ran while disabled: %+v", step, maint)
		}
		er := NewEngine(&KG{g: em.current().kg.g.Compact()}, opts)
		want := er.QueryBatch(ctx, reqs, bo)
		got := em.QueryBatch(ctx, reqs, bo)
		for i := range reqs {
			withStats := reqs[i].Algorithm != INS
			if err := maintOutcomeEqual(got[i], want[i], withStats); err != nil {
				t.Fatalf("step %d, request %d (%v): %v", step, i, reqs[i].Algorithm, err)
			}
		}
	}
	// Compaction rebuilds the index and catches the index epoch up.
	if did, err := em.Compact(ctx); err != nil || !did {
		t.Fatalf("Compact = %v, %v", did, err)
	}
	info := em.Epoch()
	if info.IndexEpoch != info.Epoch {
		t.Fatalf("compaction left index epoch %d behind graph epoch %d", info.IndexEpoch, info.Epoch)
	}
	if !em.IndexMaintenance().IndexCurrent {
		t.Fatal("index not current after compaction")
	}
}

// TestMutateMaintainedCompactionCatchUp drives the compactBarrier seam
// with maintenance ON: a batch committed while the compactor rebuilds
// must be folded into the swapped epoch's index by the catch-up
// maintenance (replayed ops), leaving the index exact — not merely the
// graph.
func TestMutateMaintainedCompactionCatchUp(t *testing.T) {
	kg, script := maintSeed(29, 30, 2, 120, 1, 8)
	em := NewEngine(kg, Options{Landmarks: 8, IndexSeed: 3, CompactAfter: -1})
	ctx := context.Background()
	if _, err := em.Apply(ctx, script[0]); err != nil {
		t.Fatal(err)
	}

	compactBarrier = func() {
		compactBarrier = nil
		if _, err := em.Apply(ctx, []Mutation{
			{Op: OpAddEdge, Subject: "v1", Label: "l0", Object: "v4"},
			{Op: OpAddEdge, Subject: "late", Label: "l1", Object: "v2"},
		}); err != nil {
			t.Errorf("apply during compaction: %v", err)
		}
	}
	defer func() { compactBarrier = nil }()
	if did, err := em.Compact(ctx); err != nil || !did {
		t.Fatalf("Compact = %v, %v", did, err)
	}

	ep := em.current()
	if !ep.idx.ExactFor(ep.kg.g) {
		t.Fatal("catch-up left the index bound to a stale view")
	}
	if err := ep.idx.EqualStructure(ep.idx.RebuildFrozen(ep.kg.g)); err != nil {
		// The catch-up path may process several batches' ops in one
		// maintenance call; only dirty landmarks may differ from a
		// batch-by-batch derivation, and those never prune. Structural
		// equality holds here because the barrier batch is insert-only.
		t.Fatalf("caught-up index diverged from frozen rebuild: %v", err)
	}
}
