module lscr

go 1.24
