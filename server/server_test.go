package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lscr"
	"lscr/api"
)

const testKG = `
<C> <apr> <X> .
<X> <apr> <P> .
<X> <married> <Amy> .
<C> <may> <P> .
`

func testServer(t *testing.T) *httptest.Server {
	return testServerOpts(t, lscr.Options{})
}

func testServerOpts(t *testing.T, opts lscr.Options) *httptest.Server {
	t.Helper()
	kg, err := lscr.Load(strings.NewReader(testKG))
	if err != nil {
		t.Fatal(err)
	}
	eng := lscr.NewEngine(kg, opts)
	srv := httptest.NewServer(New(eng, kg))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

const testConstraint = `SELECT ?x WHERE { ?x <married> <Amy>. }`

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var out api.Health
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Status != "ok" || out.Vertices != 4 {
			t.Fatalf("%s = %+v", path, out)
		}
		if out.Version == "" {
			t.Errorf("%s reports no version", path)
		}
		if out.API != api.Version {
			t.Errorf("%s api = %q, want %q", path, out.API, api.Version)
		}
	}
}

// TestV1Query: the unified endpoint answers every algorithm, returns
// the unified witness shape, and renders traces on demand.
func TestV1Query(t *testing.T) {
	srv := testServer(t)
	for _, algo := range []string{"", "ins", "uis", "uisstar", "conjunctive"} {
		resp, out := postJSON(t, srv.URL+"/v1/query", api.QueryRequest{
			Source: "C", Target: "P",
			Labels:     []string{"apr", "married"},
			Constraint: testConstraint,
			Algorithm:  algo,
			Witness:    true,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d: %v", algo, resp.StatusCode, out)
		}
		if out["reachable"] != true {
			t.Fatalf("%q: %v", algo, out)
		}
		w, ok := out["witness"].(map[string]any)
		if !ok {
			t.Fatalf("%q: witness = %v", algo, out["witness"])
		}
		sat, ok := w["satisfied_by"].([]any)
		if !ok || len(sat) != 1 || sat[0] != "X" {
			t.Fatalf("%q: satisfied_by = %v", algo, w["satisfied_by"])
		}
	}

	// Trace rendering.
	resp, out := postJSON(t, srv.URL+"/v1/query", api.QueryRequest{
		Source: "C", Target: "P",
		Labels:     []string{"apr", "married"},
		Constraint: testConstraint,
		Algorithm:  "uis",
		Trace:      true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d: %v", resp.StatusCode, out)
	}
	dot, _ := out["trace_dot"].(string)
	if !strings.HasPrefix(dot, "digraph") {
		t.Fatalf("trace_dot = %q", dot)
	}
}

// TestV1QueryConjunctive: several constraints select the conjunctive
// search and report per-constraint satisfying vertices.
func TestV1QueryConjunctive(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/query", api.QueryRequest{
		Source: "C", Target: "P",
		Labels: []string{"apr", "married"},
		Constraints: []string{
			testConstraint,
			`SELECT ?x WHERE { <C> <apr> ?x. }`,
		},
		Witness: true,
	})
	if resp.StatusCode != http.StatusOK || out["reachable"] != true {
		t.Fatalf("status=%d out=%v", resp.StatusCode, out)
	}
	if out["algorithm"] != "conjunctive" {
		t.Errorf("algorithm = %v, want conjunctive", out["algorithm"])
	}
	w := out["witness"].(map[string]any)
	if sat := w["satisfied_by"].([]any); len(sat) != 2 {
		t.Errorf("satisfied_by = %v, want 2 entries", sat)
	}
}

func TestV1QueryErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name string
		body api.QueryRequest
	}{
		{"unknown vertex", api.QueryRequest{Source: "nope", Target: "P", Constraint: testConstraint}},
		{"bad algorithm", api.QueryRequest{Source: "C", Target: "P", Constraint: testConstraint, Algorithm: "dijkstra"}},
		{"bad constraint", api.QueryRequest{Source: "C", Target: "P", Constraint: "garbage"}},
		{"both constraint fields", api.QueryRequest{Source: "C", Target: "P",
			Constraint: testConstraint, Constraints: []string{testConstraint}}},
		{"no constraints", api.QueryRequest{Source: "C", Target: "P"}},
		{"trace on conjunction", api.QueryRequest{Source: "C", Target: "P",
			Constraints: []string{testConstraint, testConstraint}, Trace: true}},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, srv.URL+"/v1/query", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v)", tc.name, resp.StatusCode, out)
		}
	}
}

// TestV1QueryTimeout: a server-side deadline that cannot be met
// answers 504, not 500.
func TestV1QueryTimeout(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/v1/query", api.QueryRequest{
		Source: "C", Target: "P",
		Constraint: testConstraint,
		TimeoutMS:  1,
	})
	// The toy graph usually answers in far under a millisecond, so both
	// outcomes are legal; what must never happen is a 500.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
}

func TestV1Batch(t *testing.T) {
	srv := testServer(t)
	req := api.BatchRequest{
		Concurrency: 4,
		Queries: []api.QueryRequest{
			{Source: "C", Target: "P", Labels: []string{"apr", "married"}, Constraint: testConstraint},
			{Source: "C", Target: "P", Labels: []string{"may"}, Constraint: testConstraint},
			{Source: "nope", Target: "P", Constraint: testConstraint},
			{Source: "C", Target: "P", Constraint: testConstraint, Algorithm: "dijkstra"},
			{Source: "C", Target: "P", Labels: []string{"apr", "married"},
				Constraints: []string{testConstraint, `SELECT ?x WHERE { <C> <apr> ?x. }`}},
			{Source: "C", Target: "P", Constraint: testConstraint, Trace: true},
		},
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Post(srv.URL+"/v1/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", hresp.StatusCode)
	}
	var out api.BatchResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 6 || len(out.Results) != 6 {
		t.Fatalf("count = %d, results = %d", out.Count, len(out.Results))
	}
	want := []struct {
		reachable bool
		hasError  bool
	}{
		{true, false},  // evidence chain exists
		{false, false}, // label set excludes the chain
		{false, true},  // unknown vertex: per-item error
		{false, true},  // unknown algorithm: per-item error
		{true, false},  // conjunctive query in the same batch
		{false, true},  // trace in a batch: rejected per item
	}
	for i, w := range want {
		it := out.Results[i]
		if it.Reachable != w.reachable || (it.Error != "") != w.hasError {
			t.Errorf("query %d: %+v, want reachable=%v hasError=%v", i, it, w.reachable, w.hasError)
		}
	}

	// Whole-batch failures: empty batch and malformed JSON.
	resp, _ := postJSON(t, srv.URL+"/v1/batch", api.BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", resp.StatusCode)
	}
	bad, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", bad.StatusCode)
	}
}

// --- Deprecated pre-v1 routes keep answering with their original
// shapes (they now run through Engine.Query under the hood). ---

func TestLegacyReachEndpoint(t *testing.T) {
	srv := testServer(t)
	for _, algo := range []string{"", "ins", "uis", "uisstar"} {
		resp, out := postJSON(t, srv.URL+"/reach", reachRequest{
			Source: "C", Target: "P",
			Labels:     []string{"apr", "married"},
			Constraint: testConstraint,
			Algorithm:  algo,
			Witness:    true,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d: %v", algo, resp.StatusCode, out)
		}
		if out["reachable"] != true {
			t.Fatalf("%q: %v", algo, out)
		}
		w, ok := out["witness"].(map[string]any)
		if !ok || w["Satisfying"] != "X" {
			t.Fatalf("%q: witness = %v", algo, out["witness"])
		}
	}
}

func TestLegacyReachEndpointFalse(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/reach", reachRequest{
		Source: "C", Target: "P",
		Labels:     []string{"may"},
		Constraint: testConstraint,
	})
	if resp.StatusCode != http.StatusOK || out["reachable"] != false {
		t.Fatalf("status=%d out=%v", resp.StatusCode, out)
	}
	if _, present := out["witness"]; present {
		t.Fatalf("false answer carries witness: %v", out)
	}
}

func TestLegacyReachBatchEndpoint(t *testing.T) {
	srv := testServer(t)
	req := batchRequest{
		Concurrency: 4,
		Queries: []reachRequest{
			{Source: "C", Target: "P", Labels: []string{"apr", "married"}, Constraint: testConstraint},
			{Source: "C", Target: "P", Labels: []string{"may"}, Constraint: testConstraint},
			{Source: "nope", Target: "P", Constraint: testConstraint},
			{Source: "C", Target: "P", Constraint: testConstraint, Algorithm: "dijkstra"},
			{Source: "C", Target: "P", Labels: []string{"apr", "married"}, Constraint: testConstraint, Algorithm: "uis"},
		},
	}
	resp, out := postJSON(t, srv.URL+"/reachbatch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["count"].(float64) != 5 {
		t.Fatalf("count = %v", out["count"])
	}
	results := out["results"].([]any)
	want := []struct {
		reachable bool
		hasError  bool
	}{
		{true, false},
		{false, false},
		{false, true},
		{false, true},
		{true, false},
	}
	for i, w := range want {
		item := results[i].(map[string]any)
		if item["reachable"] != w.reachable {
			t.Errorf("query %d: reachable = %v, want %v", i, item["reachable"], w.reachable)
		}
		_, gotErr := item["error"]
		if gotErr != w.hasError {
			t.Errorf("query %d: error present = %v, want %v (%v)", i, gotErr, w.hasError, item)
		}
	}
}

func TestLegacyReachAllEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/reachall", reachAllRequest{
		Source: "C", Target: "P",
		Labels:      []string{"apr"},
		Constraints: []string{testConstraint},
	})
	if resp.StatusCode != http.StatusOK || out["reachable"] != true {
		t.Fatalf("status=%d out=%v", resp.StatusCode, out)
	}
}

func TestSelectEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/select", map[string]string{
		"query": `SELECT ?x ?y WHERE { ?x <married> ?y. }`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d out=%v", resp.StatusCode, out)
	}
	if out["count"].(float64) != 1 {
		t.Fatalf("select = %v", out)
	}
	resp, _ = postJSON(t, srv.URL+"/select", map[string]string{"query": "junk"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d", resp.StatusCode)
	}
	// Parseable but invalid (focus variable unused) is still the
	// client's mistake, not a 500.
	resp, _ = postJSON(t, srv.URL+"/select", map[string]string{
		"query": `SELECT ?x WHERE { ?y <married> <Amy>. }`,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid query: status %d, want 400", resp.StatusCode)
	}
}

// TestStatusForSentinels: the status mapping works on error identity,
// not message substrings — including wrapped sentinels — and ErrNoIndex
// is a client error (the client picked an algorithm this server cannot
// run), not a 500.
func TestStatusForSentinels(t *testing.T) {
	srv := testServerOpts(t, lscr.Options{SkipIndex: true})
	cases := []struct {
		name string
		body reachRequest
		want int
	}{
		{"ins without index", reachRequest{Source: "C", Target: "P", Constraint: testConstraint, Algorithm: "ins"}, http.StatusBadRequest},
		{"uis still works", reachRequest{Source: "C", Target: "P", Constraint: testConstraint, Algorithm: "uis"}, http.StatusOK},
		{"unknown vertex", reachRequest{Source: "nope", Target: "P", Constraint: testConstraint, Algorithm: "uis"}, http.StatusBadRequest},
		{"unknown label", reachRequest{Source: "C", Target: "P", Labels: []string{"bogus"}, Constraint: testConstraint, Algorithm: "uis"}, http.StatusBadRequest},
		{"syntax error", reachRequest{Source: "C", Target: "P", Constraint: "SELECT garbage", Algorithm: "uis"}, http.StatusBadRequest},
		{"invalid constraint", reachRequest{Source: "C", Target: "P",
			Constraint: `SELECT ?x WHERE { ?y <married> <Amy>. }`, Algorithm: "uis"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, srv.URL+"/reach", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.want, out)
		}
	}
}

// TestBodyLimits: every endpoint rejects an oversized body instead of
// buffering it.
func TestBodyLimits(t *testing.T) {
	srv := testServer(t)
	huge := `{"source":"C","target":"P","constraint":"` +
		strings.Repeat("x", MaxQueryBody+1024) + `"}`
	for _, ep := range []string{"/v1/query", "/reach", "/reachall", "/select"} {
		resp, err := http.Post(srv.URL+ep, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: oversized body answered %d, want 400", ep, resp.StatusCode)
		}
	}
}

// TestHealthzCacheStats: /healthz surfaces the constraint cache
// counters, and v1 queries share the same cache as the legacy routes.
func TestHealthzCacheStats(t *testing.T) {
	srv := testServer(t)
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, srv.URL+"/v1/query", api.QueryRequest{
			Source: "C", Target: "P", Constraint: testConstraint,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.Health
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Cache.Enabled || out.Cache.Misses != 1 || out.Cache.Hits != 2 || out.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v", out.Cache)
	}
}
