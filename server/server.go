// Package server implements the lscrd HTTP service as an embeddable
// http.Handler: cmd/lscrd mounts it on a listener, tests mount it on
// httptest servers, and the benchmark harness drives it in-process
// through the typed client.
//
// Endpoints (all JSON):
//
//	GET  /healthz           — liveness, KG stats, cache counters, epoch, version
//	POST /v1/query          — one unified query (api.QueryRequest)
//	POST /v1/batch          — many queries over a worker pool (api.BatchRequest)
//	POST /v1/mutate         — one atomic mutation batch (api.MutateRequest)
//	GET  /v1/replicate      — WAL feed above ?from=<epoch>, long-polls ?wait_ms
//	GET  /v1/segment        — newest sealed segment image (follower bootstrap)
//
// plus the deprecated pre-v1 routes (/reach, /reachbatch, /reachall,
// /select), which keep their original request/response shapes but now
// run through Engine.Query with the request's context — a client that
// disconnects or times out cancels the search instead of leaving it
// running to completion.
//
// Queries need no locking here: the Engine serves reads from immutable
// epochs, so net/http can fan requests out freely, and /v1/mutate
// batches commit atomically through Engine.Apply — a batch whose body
// never fully arrives (client disconnect, size cap) is rejected before
// anything is staged, so the graph is never torn. ReadOnly disables
// /v1/mutate with 403 for deployments that want the pre-mutation
// contract. Client mistakes — unknown names, malformed or invalid
// constraints, impossible requests, deleting an absent edge, and
// requesting INS from an index-less server — answer 400; a query that
// exceeds its server-side deadline answers 504; only genuine server
// faults answer 500.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"lscr"
	"lscr/api"
	"lscr/internal/buildinfo"
	"lscr/internal/failpoint"
)

// Body caps: MaxBatchBody bounds a batch request body (32 MiB ≈
// hundreds of thousands of queries — far above any sane batch, far
// below OOM); MaxQueryBody bounds the single-query endpoints, whose
// bodies are one query each — 1 MiB is far beyond any real SPARQL
// constraint yet keeps a hostile client from making the decoder buffer
// an arbitrarily large body.
const (
	MaxBatchBody = 32 << 20
	MaxQueryBody = 1 << 20
)

// statusClientClosedRequest is nginx's non-standard 499: the client
// went away before the answer was ready, so no status can actually be
// delivered; the code exists for the access log.
const statusClientClosedRequest = 499

// New wires every endpoint (v1 and deprecated) over eng. The kg
// parameter is retained for signature compatibility; the handler reads
// the engine's current view (eng.KG()) so /healthz and queries reflect
// mutations as they land.
func New(eng *lscr.Engine, kg *lscr.KG, opts ...Option) http.Handler {
	s := &server{eng: eng}
	for _, o := range opts {
		o(s)
	}
	mux := http.NewServeMux()
	// /healthz, /v1/replicate and /v1/segment stay outside the
	// admission gate: probes must be able to see a saturated or
	// poisoned server, and followers must keep replicating through
	// overload.
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /v1/healthz", s.healthz)
	mux.HandleFunc("POST /v1/query", s.admitted(s.v1Query))
	mux.HandleFunc("POST /v1/batch", s.admitted(s.v1Batch))
	mux.HandleFunc("POST /v1/mutate", s.admitted(s.v1Mutate))
	mux.HandleFunc("GET /v1/replicate", s.v1Replicate)
	mux.HandleFunc("GET /v1/segment", s.v1Segment)
	// Deprecated pre-v1 routes, aliased onto the same engine paths.
	mux.HandleFunc("POST /reach", s.admitted(s.legacyReach))
	mux.HandleFunc("POST /reachbatch", s.admitted(s.legacyReachBatch))
	mux.HandleFunc("POST /reachall", s.admitted(s.legacyReachAll))
	mux.HandleFunc("POST /select", s.admitted(s.selectQuery))
	return mux
}

// Option customises the handler.
type Option func(*server)

// ReadOnly disables /v1/mutate: mutation batches answer 403 and the
// engine state can only change through the embedding process itself.
func ReadOnly() Option {
	return func(s *server) { s.readOnly = true }
}

type server struct {
	eng      *lscr.Engine
	readOnly bool
	gate     *gate
}

// FPServe is the failpoint site evaluated at the top of /v1/query;
// arming it with a delay policy turns every query into a slow query,
// which is how the overload tests saturate the admission gate without
// needing a graph large enough to be naturally slow.
const FPServe = "server-query"

// admitted wraps a handler with deadline-budget propagation and the
// admission gate. The api.BudgetHeader deadline is applied BEFORE the
// gate so time spent queued counts against the caller's budget — a
// gateway's 20ms-budget request that queues for 50ms must not then run
// for its full original budget.
func (s *server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if ms := r.Header.Get(api.BudgetHeader); ms != "" {
			if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), time.Duration(v)*time.Millisecond)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		if s.gate != nil {
			switch s.gate.admit(r.Context()) {
			case admitShed:
				w.Header().Set("Retry-After", retryAfterSeconds(s.gate.retryAfter))
				writeError(w, http.StatusTooManyRequests, errOverloaded)
				return
			case admitExpired:
				err := r.Context().Err()
				writeError(w, statusFor(err), err)
				return
			}
			defer s.gate.release()
		}
		h(w, r)
	}
}

var errOverloaded = errors.New("server overloaded; retry later")

// retryAfterSeconds renders a Retry-After header value: integer
// seconds, rounded up so a sub-second hint never becomes "0".
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// engineError answers an engine failure, attaching a Retry-After hint
// when the failure is retryable-elsewhere (503: the engine is poisoned
// and a restart or failover is needed before writes succeed here).
func engineError(w http.ResponseWriter, err error) {
	code := statusFor(err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds(time.Second))
	}
	writeError(w, code, err)
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	// One consistent snapshot: KG stats, cache counters, epoch info and
	// maintenance stats must describe the same serving state even
	// mid-mutation.
	kg, cache, epoch, maint := s.eng.Health()
	h := api.Health{
		Status:      "ok",
		Version:     buildinfo.Version(),
		API:         api.Version,
		Vertices:    kg.NumVertices(),
		Edges:       kg.NumEdges(),
		Labels:      kg.NumLabels(),
		Cache:       cache,
		Epoch:       epoch,
		Maintenance: maint,
		Durability:  s.eng.Durability(),
		Admission:   s.gate.stats(),
	}
	// A poisoned engine still serves reads from its last published
	// epoch, but writes are refused until restart: report degraded so
	// probes and the gateway can route writes elsewhere.
	if cause := s.eng.Poisoned(); cause != nil {
		h.Status = "degraded"
		h.Poisoned = cause.Error()
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *server) v1Mutate(w http.ResponseWriter, r *http.Request) {
	if s.readOnly {
		writeError(w, http.StatusForbidden, fmt.Errorf("server is read-only"))
		return
	}
	// The whole body must decode before anything is staged, and
	// Engine.Apply validates the whole batch before publishing — a
	// disconnect mid-body or a bad op means nothing is applied.
	var wire api.MutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBody)).Decode(&wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(wire.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty mutation batch"))
		return
	}
	res, err := s.eng.Apply(r.Context(), wire.ToMutations())
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.FromApplyResult(res))
}

func (s *server) v1Query(w http.ResponseWriter, r *http.Request) {
	var wire api.QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxQueryBody)).Decode(&wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := wire.ToRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if fp := failpoint.Eval(FPServe); fp != nil {
		engineError(w, fp)
		return
	}
	resp, err := s.eng.Query(r.Context(), req)
	if err != nil {
		engineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.FromResponse(resp))
}

func (s *server) v1Batch(w http.ResponseWriter, r *http.Request) {
	var wire api.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBody)).Decode(&wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(wire.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	// Bound what one request can cost: the body is capped before
	// decoding, and the client's fan-out wish is clamped to the cores
	// actually available (QueryBatch itself only clamps to the batch
	// length).
	if wire.Concurrency < 0 || wire.Concurrency > runtime.GOMAXPROCS(0) {
		wire.Concurrency = runtime.GOMAXPROCS(0)
	}
	items := make([]api.BatchItem, len(wire.Queries))
	reqs := make([]lscr.Request, 0, len(wire.Queries))
	slots := make([]int, 0, len(wire.Queries)) // reqs[j] answers items[slots[j]]
	for i, q := range wire.Queries {
		if q.Trace {
			// Rendered search trees are O(search-tree) strings; allowing
			// them per batch item would let one 32 MiB request body pin
			// an unbounded amount of DOT text in memory. Traces stay a
			// single-query (/v1/query) feature.
			items[i].Error = "trace is not supported in batches; use /v1/query"
			continue
		}
		req, err := q.ToRequest()
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		reqs = append(reqs, req)
		slots = append(slots, i)
	}
	outcomes := s.eng.QueryBatch(r.Context(), reqs, lscr.BatchOptions{Concurrency: wire.Concurrency})
	for j, o := range outcomes {
		it := &items[slots[j]]
		if o.Err != nil {
			it.Error = o.Err.Error()
			continue
		}
		it.QueryResponse = api.FromResponse(o.Response)
	}
	writeJSON(w, http.StatusOK, api.BatchResponse{Results: items, Count: len(items)})
}

// MaxReplicateWait caps the long-poll window of GET /v1/replicate; a
// follower whose cursor stays current simply re-polls.
const MaxReplicateWait = 30 * time.Second

// v1Replicate streams the replication feed: every WAL record above the
// from cursor, long-polling up to wait_ms for the next epoch when the
// cursor is current. A cursor the WAL no longer covers (a compaction
// rotated it away) answers 410 Gone — the follower re-bootstraps from
// /v1/segment; an in-memory engine answers 501.
func (s *server) v1Replicate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad from cursor: %v", err))
		return
	}
	var wait time.Duration
	if ms := q.Get("wait_ms"); ms != "" {
		v, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait_ms %q", ms))
			return
		}
		wait = min(time.Duration(v)*time.Millisecond, MaxReplicateWait)
	}
	deadline := time.Now().Add(wait)
	for {
		// Arm the publish wake-up before reading: a batch that commits
		// between the read and the select still closes this channel, so
		// the poll can never sleep through it.
		published := s.eng.EpochPublished()
		batches, err := s.eng.ReplicationRead(from, 0)
		switch {
		case errors.Is(err, lscr.ErrReplicaLag):
			writeError(w, http.StatusGone, err)
			return
		case errors.Is(err, lscr.ErrNoReplicationLog):
			writeError(w, http.StatusNotImplemented, err)
			return
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		remain := time.Until(deadline)
		if len(batches) > 0 || remain <= 0 {
			dur := s.eng.Durability()
			writeJSON(w, http.StatusOK, api.ReplicateResponse{
				From:         from,
				Batches:      api.FromReplicationBatches(batches),
				Epoch:        s.eng.Epoch().Epoch,
				DurableEpoch: dur.DurableEpoch,
			})
			return
		}
		timer := time.NewTimer(remain)
		select {
		case <-published:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

// v1Segment streams the newest sealed segment image for follower
// bootstrap, with its base epoch in the SegmentEpochHeader. The open
// file descriptor keeps the bytes readable even if a compaction
// replaces the segment mid-transfer.
func (s *server) v1Segment(w http.ResponseWriter, r *http.Request) {
	f, base, err := s.eng.SegmentFile()
	if errors.Is(err, lscr.ErrNoReplicationLog) {
		writeError(w, http.StatusNotImplemented, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(api.SegmentEpochHeader, strconv.FormatUint(base, 10))
	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	w.WriteHeader(http.StatusOK)
	if _, err := io.Copy(w, f); err != nil {
		// Headers are gone; all we can do is log the broken transfer.
		log.Printf("lscrd: segment transfer: %v", err)
	}
}

// reachRequest is the deprecated /reach body.
type reachRequest struct {
	Source     string   `json:"source"`
	Target     string   `json:"target"`
	Labels     []string `json:"labels,omitempty"`
	Constraint string   `json:"constraint"`
	Algorithm  string   `json:"algorithm,omitempty"`
	Witness    bool     `json:"witness,omitempty"`
}

// reachResponse is the deprecated /reach reply.
type reachResponse struct {
	Reachable bool       `json:"reachable"`
	ElapsedUS int64      `json:"elapsed_us"`
	Passed    int        `json:"passed_vertices"`
	Witness   *lscr.Path `json:"witness,omitempty"`
	Algorithm string     `json:"algorithm"`
}

func (s *server) legacyReach(w http.ResponseWriter, r *http.Request) {
	var req reachRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxQueryBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	algo, err := api.ParseAlgorithm(req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	resp, err := s.eng.Query(r.Context(), lscr.Request{
		Source:      req.Source,
		Target:      req.Target,
		Labels:      req.Labels,
		Constraints: []string{req.Constraint},
		Algorithm:   algo,
		WantWitness: req.Witness,
	})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, reachResponse{
		Reachable: resp.Reachable,
		ElapsedUS: time.Since(start).Microseconds(),
		Passed:    resp.Stats.PassedVertices,
		Witness:   resp.Witness.ToPath(),
		Algorithm: algo.String(),
	})
}

// batchRequest is the deprecated /reachbatch body. Concurrency 0 means
// all cores.
type batchRequest struct {
	Queries     []reachRequest `json:"queries"`
	Concurrency int            `json:"concurrency,omitempty"`
}

// batchItem is one deprecated /reachbatch result: either the reach
// fields or a per-query error (bad names in one query do not fail the
// batch).
type batchItem struct {
	Reachable bool   `json:"reachable"`
	ElapsedUS int64  `json:"elapsed_us"`
	Passed    int    `json:"passed_vertices"`
	Algorithm string `json:"algorithm,omitempty"`
	Error     string `json:"error,omitempty"`
}

func (s *server) legacyReachBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxBatchBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if req.Concurrency < 0 || req.Concurrency > runtime.GOMAXPROCS(0) {
		req.Concurrency = runtime.GOMAXPROCS(0)
	}
	items := make([]batchItem, len(req.Queries))
	reqs := make([]lscr.Request, 0, len(req.Queries))
	slots := make([]int, 0, len(req.Queries)) // reqs[j] answers items[slots[j]]
	for i, rq := range req.Queries {
		algo, err := api.ParseAlgorithm(rq.Algorithm)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		items[i].Algorithm = algo.String()
		reqs = append(reqs, lscr.Request{
			Source:      rq.Source,
			Target:      rq.Target,
			Labels:      rq.Labels,
			Constraints: []string{rq.Constraint},
			Algorithm:   algo,
		})
		slots = append(slots, i)
	}
	// r.Context() makes the whole batch cancellable: when the client
	// disconnects, in-flight searches abort and unscheduled slots are
	// never run (they record the context error instead).
	for j, o := range s.eng.QueryBatch(r.Context(), reqs, lscr.BatchOptions{Concurrency: req.Concurrency}) {
		it := &items[slots[j]]
		if o.Err != nil {
			it.Error = o.Err.Error()
			continue
		}
		it.Reachable = o.Response.Reachable
		it.ElapsedUS = o.Response.Elapsed.Microseconds()
		it.Passed = o.Response.Stats.PassedVertices
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": items, "count": len(items)})
}

// reachAllRequest is the deprecated /reachall body.
type reachAllRequest struct {
	Source      string   `json:"source"`
	Target      string   `json:"target"`
	Labels      []string `json:"labels,omitempty"`
	Constraints []string `json:"constraints"`
}

func (s *server) legacyReachAll(w http.ResponseWriter, r *http.Request) {
	var req reachAllRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxQueryBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.eng.Query(r.Context(), lscr.Request{
		Source:      req.Source,
		Target:      req.Target,
		Labels:      req.Labels,
		Constraints: req.Constraints,
		Algorithm:   lscr.Conjunctive,
		WantWitness: true,
	})
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"reachable":       resp.Reachable,
		"passed_vertices": resp.Stats.PassedVertices,
		"witness":         resp.Witness.ToMultiPath(),
	})
}

func (s *server) selectQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Query string `json:"query"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxQueryBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows, err := s.eng.SelectAll(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": rows, "count": len(rows)})
}

// statusFor maps engine errors to HTTP statuses via the exported
// sentinels: everything the client controls — names, constraint text,
// impossible request shapes, and the choice of an algorithm this
// server cannot run (ErrNoIndex) — is a 400; a server-side deadline
// expiry is a 504; a client that went away is logged as 499; anything
// else is a genuine server-side 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, lscr.ErrUnknownVertex),
		errors.Is(err, lscr.ErrUnknownLabel),
		errors.Is(err, lscr.ErrConstraintSyntax),
		errors.Is(err, lscr.ErrInvalidConstraint),
		errors.Is(err, lscr.ErrInvalidRequest),
		errors.Is(err, lscr.ErrUnknownAlgorithm),
		errors.Is(err, lscr.ErrNoConstraints),
		errors.Is(err, lscr.ErrTooManyConstraints),
		errors.Is(err, lscr.ErrEdgeNotFound),
		errors.Is(err, lscr.ErrInvalidMutation),
		errors.Is(err, lscr.ErrNoIndex):
		return http.StatusBadRequest
	case errors.Is(err, lscr.ErrReplicaWrite):
		// A replica engine takes writes only through its feed; direct
		// mutation attempts are refused like a read-only deployment's.
		return http.StatusForbidden
	case errors.Is(err, lscr.ErrPoisoned):
		// The engine took a write failure and fail-stopped its write
		// path; reads still work but this request cannot succeed until
		// the process restarts. 503 + Retry-After tells clients and the
		// gateway to go elsewhere.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("lscrd: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, api.Error{Error: err.Error()})
}
