package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lscr"
	"lscr/api"
	"lscr/internal/failpoint"
)

// admissionServer mounts the handler with a tiny admission gate so a
// handful of slow requests saturate it.
func admissionServer(t *testing.T, o AdmissionOptions) *httptest.Server {
	t.Helper()
	kg, err := lscr.Load(strings.NewReader(testKG))
	if err != nil {
		t.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{})
	srv := httptest.NewServer(New(eng, kg, WithAdmission(o)))
	t.Cleanup(srv.Close)
	return srv
}

func queryBody(t *testing.T) []byte {
	t.Helper()
	raw, err := json.Marshal(api.QueryRequest{
		Source: "C", Target: "P", Constraints: []string{testConstraint},
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestAdmissionShedsUnderSaturation floods a 1-inflight/1-queue server
// with slow queries (via a delay failpoint) and requires that the
// overflow is shed as 429 with an integer-seconds Retry-After, while
// admitted requests still answer 200.
func TestAdmissionShedsUnderSaturation(t *testing.T) {
	if err := failpoint.Set(FPServe, "delay=100ms"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisarmAll()
	srv := admissionServer(t, AdmissionOptions{
		MaxInflight: 1, MaxQueue: 1, QueueWait: 20 * time.Millisecond, RetryAfter: 2 * time.Second,
	})
	body := queryBody(t)

	const n = 12
	var ok, shed atomic.Int64
	var retryAfter atomic.Value
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				retryAfter.Store(resp.Header.Get("Retry-After"))
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request was admitted")
	}
	if shed.Load() == 0 {
		t.Fatal("no request was shed despite 12x saturation of a 1-slot gate")
	}
	if ra, _ := retryAfter.Load().(string); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q", ra, "2")
	}

	// The shed/admitted counters must be visible on /healthz, which
	// itself must answer even while the gate is saturated.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !h.Admission.Enabled || h.Admission.MaxInflight != 1 {
		t.Fatalf("admission stats = %+v", h.Admission)
	}
	if h.Admission.Shed != shed.Load() || h.Admission.Admitted != ok.Load() {
		t.Fatalf("healthz admission counters %+v, want shed=%d admitted=%d",
			h.Admission, shed.Load(), ok.Load())
	}
}

// TestAdmissionHealthzUngated holds the only inflight slot hostage and
// checks /healthz still answers: probes must see a saturated server.
func TestAdmissionHealthzUngated(t *testing.T) {
	if err := failpoint.Set(FPServe, "delay=300ms"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisarmAll()
	srv := admissionServer(t, AdmissionOptions{MaxInflight: 1, MaxQueue: 1})
	body := queryBody(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the slow query take the slot
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz = %d while saturated", resp.StatusCode)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("healthz blocked behind the admission gate")
	}
	wg.Wait()
}

// TestAdmissionBudgetHeader sends a query whose X-LSCR-Budget-MS is
// far smaller than the injected serve delay and requires a 504: the
// budget must become the request's context deadline.
func TestAdmissionBudgetHeader(t *testing.T) {
	srv := admissionServer(t, AdmissionOptions{MaxInflight: 4})
	raw, err := json.Marshal(api.QueryRequest{
		Source: "C", Target: "P", Constraints: []string{testConstraint},
		TimeoutMS: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", srv.URL+"/v1/query", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.BudgetHeader, "25")
	if err := failpoint.Set(FPServe, "delay=200ms"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisarmAll()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 from budget header", resp.StatusCode)
	}
}

// TestAdmissionDisabledPassesThrough checks MaxInflight <= 0 leaves the
// handler ungated and /healthz reports admission disabled.
func TestAdmissionDisabledPassesThrough(t *testing.T) {
	srv := admissionServer(t, AdmissionOptions{MaxInflight: 0})
	resp, out := postJSON(t, srv.URL+"/v1/query", api.QueryRequest{
		Source: "C", Target: "P", Constraints: []string{testConstraint},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body=%v", resp.StatusCode, out)
	}
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if h.Admission.Enabled {
		t.Fatalf("admission reported enabled: %+v", h.Admission)
	}
}

// TestAdmissionPoisonedHealthz poisons a persistent engine through a
// WAL failpoint and checks /healthz flips to degraded with the cause,
// /v1/mutate answers 503 + Retry-After, and queries still answer.
func TestAdmissionPoisonedHealthz(t *testing.T) {
	dir := t.TempDir()
	kg, err := lscr.Load(strings.NewReader(testKG))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lscr.Create(dir, kg, lscr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := httptest.NewServer(New(eng, kg, WithAdmission(AdmissionOptions{MaxInflight: 4})))
	t.Cleanup(srv.Close)

	if err := failpoint.Set("wal-append", "error"); err != nil {
		t.Fatal(err)
	}
	mutate := func() *http.Response {
		raw, _ := json.Marshal(api.MutateRequest{Mutations: []api.Mutation{
			{Op: "add-edge", Subject: "C", Label: "apr", Object: "P"},
		}})
		resp, err := http.Post(srv.URL+"/v1/mutate", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	first := mutate()
	failpoint.DisarmAll()
	if first.StatusCode == http.StatusOK {
		t.Fatal("mutation succeeded through an injected WAL error")
	}
	second := mutate()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-poison mutate = %d, want 503", second.StatusCode)
	}
	if ra := second.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 carried no Retry-After")
	}

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if h.Status != "degraded" || h.Poisoned == "" {
		t.Fatalf("healthz after poison = status %q poisoned %q", h.Status, h.Poisoned)
	}

	// Reads keep working from the last published epoch.
	qr, out := postJSON(t, srv.URL+"/v1/query", api.QueryRequest{
		Source: "C", Target: "P", Constraints: []string{testConstraint},
	})
	if qr.StatusCode != http.StatusOK {
		t.Fatalf("query on poisoned engine = %d body=%v", qr.StatusCode, out)
	}
}
