package server

import (
	"context"
	"sync/atomic"
	"time"

	"lscr/api"
)

// AdmissionOptions bounds what the server accepts concurrently. A
// request that arrives while MaxInflight requests are executing waits
// in a queue of at most MaxQueue slots for up to QueueWait; past either
// bound it is shed with 429 Too Many Requests and a Retry-After header,
// so saturation degrades into fast, explicit rejections instead of an
// unbounded latency tail. Zero values take defaults: MaxQueue defaults
// to MaxInflight, QueueWait to 50ms, RetryAfter to 1s. MaxInflight <= 0
// disables admission control entirely.
type AdmissionOptions struct {
	// MaxInflight is the number of requests allowed to execute at once.
	MaxInflight int
	// MaxQueue is how many requests may wait for an inflight slot.
	MaxQueue int
	// QueueWait caps how long a queued request waits before shedding.
	QueueWait time.Duration
	// RetryAfter is the hint sent in the Retry-After header on shed.
	RetryAfter time.Duration
}

// WithAdmission enables overload protection on the query, batch and
// mutate endpoints. Health, replication and segment endpoints are never
// gated: probes must see a saturated server, and followers must keep
// replicating through overload.
func WithAdmission(o AdmissionOptions) Option {
	return func(s *server) {
		if o.MaxInflight <= 0 {
			return
		}
		if o.MaxQueue == 0 {
			o.MaxQueue = o.MaxInflight
		}
		if o.QueueWait == 0 {
			o.QueueWait = 50 * time.Millisecond
		}
		if o.RetryAfter == 0 {
			o.RetryAfter = time.Second
		}
		s.gate = &gate{
			sem:        make(chan struct{}, o.MaxInflight),
			maxQueue:   int64(o.MaxQueue),
			queueWait:  o.QueueWait,
			retryAfter: o.RetryAfter,
		}
	}
}

// admit verdicts: ok (run the handler, release() after), shed (answer
// 429 + Retry-After), expired (the request's own context ended while
// queued — answer via statusFor, it is a 504/499, not a shed).
type admitVerdict int

const (
	admitOK admitVerdict = iota
	admitShed
	admitExpired
)

// gate is a bounded-inflight admission controller: a counting
// semaphore for execution slots plus a short counted queue in front of
// it. Everything past the queue is shed immediately.
type gate struct {
	sem        chan struct{}
	maxQueue   int64
	queueWait  time.Duration
	retryAfter time.Duration

	queued   atomic.Int64
	inflight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

// admit blocks until an execution slot frees, the queue-wait budget
// runs out, or ctx ends. Queue occupancy is checked optimistically —
// under a race slightly more than maxQueue requests may wait, which
// only makes the queue marginally less strict, never blocks admission.
func (g *gate) admit(ctx context.Context) admitVerdict {
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		g.inflight.Add(1)
		return admitOK
	default:
	}
	if g.queued.Load() >= g.maxQueue {
		g.shed.Add(1)
		return admitShed
	}
	g.queued.Add(1)
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.queueWait)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		g.admitted.Add(1)
		g.inflight.Add(1)
		return admitOK
	case <-timer.C:
		g.shed.Add(1)
		return admitShed
	case <-ctx.Done():
		return admitExpired
	}
}

func (g *gate) release() {
	g.inflight.Add(-1)
	<-g.sem
}

// stats snapshots the gate for /healthz. A nil gate reports admission
// disabled.
func (g *gate) stats() api.AdmissionStats {
	if g == nil {
		return api.AdmissionStats{}
	}
	return api.AdmissionStats{
		Enabled:     true,
		MaxInflight: cap(g.sem),
		MaxQueue:    int(g.maxQueue),
		Inflight:    g.inflight.Load(),
		Queued:      g.queued.Load(),
		Admitted:    g.admitted.Load(),
		Shed:        g.shed.Load(),
	}
}
