#!/usr/bin/env bash
# benchdiff.sh OLD.json NEW.json [tolerance]
#
# Compares two BENCH_*.json artifacts (parallel, cache, csr, ...) and
# fails when any *qps* figure in NEW regressed by more than the tolerance
# (fraction, default 0.10) relative to OLD. Wraps scripts/benchdiff so CI
# and developers invoke one entry point.
set -euo pipefail

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
    echo "usage: $0 OLD.json NEW.json [tolerance]" >&2
    exit 2
fi

# Resolve the artifact paths before changing directory: the go run below
# must execute from the module root, but the arguments are the caller's.
old="$(realpath "$1")"
new="$(realpath "$2")"
tol="${3:-0.10}"
cd "$(dirname "$0")/.."
exec go run ./scripts/benchdiff -tolerance "$tol" "$old" "$new"
