#!/usr/bin/env sh
# apigate.sh — the v1 API surface gate.
#
# The engine's query surface is the Query/QueryBatch family; everything
# else that answers queries must be a wrapper carrying a "Deprecated:"
# notice. This gate fails CI when a new exported Engine method appears
# in the root package outside the allowlist below without such a
# notice, so the surface cannot silently sprawl back into
# one-method-per-capability.
#
# Run from the repository root: ./scripts/apigate.sh
set -eu

cd "$(dirname "$0")/.."

# Non-query methods (stats, index persistence, SPARQL standalone, the
# mutation family Apply/Compact with its KG/Epoch observers, the
# persistence lifecycle Close/Durability, the replication feed
# ApplyReplicated/SealReplicated/ReplicationRead/SegmentFile/
# EpochPublished, and the fail-stop observer Poisoned) are part of the
# stable surface and listed explicitly.
ALLOW='^(Query|QueryBatch|CacheStats|IndexMaintenance|Index|SaveIndex|Select|SelectAll|Apply|Compact|KG|Epoch|Health|Close|Durability|ApplyReplicated|SealReplicated|ReplicationRead|SegmentFile|EpochPublished|Poisoned)$'

status=0
for f in *.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    out=$(awk -v allow="$ALLOW" '
        /^\/\// { comment = comment $0 "\n"; next }
        /^func \([A-Za-z_][A-Za-z0-9_]* \*Engine\) [A-Z]/ {
            name = $0
            sub(/^func \([A-Za-z_][A-Za-z0-9_]* \*Engine\) /, "", name)
            sub(/[(\[].*/, "", name)
            if (name !~ allow && comment !~ /Deprecated:/) {
                printf "%s: exported Engine method %s is outside the Query/QueryBatch family and has no Deprecated: notice\n", FILENAME, name
            }
            comment = ""
            next
        }
        { comment = "" }
    ' "$f")
    if [ -n "$out" ]; then
        echo "$out"
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "apigate: new engine query methods belong in the Query/QueryBatch family (or need a Deprecated: notice)" >&2
fi
exit "$status"
