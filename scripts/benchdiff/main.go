// Command benchdiff compares two BENCH_*.json artifacts and fails when
// any throughput figure regressed by more than a tolerance (default 10%).
//
// It walks both documents generically and compares every numeric leaf
// whose key mentions "qps" (the convention of every committed BENCH_*
// artifact: cold_qps, warm_qps, uis_labeled_qps, ...), keyed by its JSON
// path, so the same tool guards BENCH_parallel.json, BENCH_cache.json and
// BENCH_csr.json alike. Leaves present in only one file are reported but
// not fatal (artifacts grow fields over time).
//
// Usage: benchdiff [-tolerance 0.10] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	tol := flag.Float64("tolerance", 0.10, "maximum allowed fractional QPS regression")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance 0.10] OLD.json NEW.json")
		os.Exit(2)
	}
	oldQPS, err := loadQPS(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newQPS, err := loadQPS(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(oldQPS) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no *qps* figures in %s\n", flag.Arg(0))
		os.Exit(2)
	}

	paths := make([]string, 0, len(oldQPS))
	for p := range oldQPS {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	regressed := false
	for _, p := range paths {
		o := oldQPS[p]
		n, ok := newQPS[p]
		if !ok {
			fmt.Printf("  %-40s %12.0f -> (missing)\n", p, o)
			continue
		}
		delta := 0.0
		if o > 0 {
			delta = n/o - 1
		}
		mark := " "
		if o > 0 && n < o*(1-*tol) {
			mark = "!"
			regressed = true
		}
		fmt.Printf("%s %-40s %12.0f -> %12.0f  (%+.1f%%)\n", mark, p, o, n, delta*100)
	}
	for p, n := range newQPS {
		if _, ok := oldQPS[p]; !ok {
			fmt.Printf("  %-40s      (new) -> %12.0f\n", p, n)
		}
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: QPS regression beyond %.0f%% tolerance\n", *tol*100)
		os.Exit(1)
	}
}

// loadQPS flattens the JSON document at path into (json-path -> value)
// for every numeric leaf whose key mentions qps.
func loadQPS(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	flatten("", doc, out)
	return out, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range x {
			flatten(prefix+"["+strconv.Itoa(i)+"]", child, out)
		}
	case float64:
		key := prefix[strings.LastIndexByte(prefix, '.')+1:]
		if strings.Contains(strings.ToLower(key), "qps") {
			out[prefix] = x
		}
	}
}
