package lscr

// The concurrency tier: these tests are the proof behind the package's
// concurrency contract (one immutable Engine, any number of querying
// goroutines) and are meant to run under the race detector — CI runs
// `go test -race` over them. They use modest graph sizes so the -race
// pass stays fast.

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"lscr/internal/testkg"
)

// stressConstraints are small substructure constraints over the testkg
// label vocabulary (l0..l3).
var stressConstraints = []string{
	`SELECT ?x WHERE { ?x <l0> ?y. }`,
	`SELECT ?x WHERE { ?x <l1> ?y. }`,
	`SELECT ?x WHERE { ?x <l0> ?y. ?y <l1> ?z. }`,
}

// stressWorkload builds a deterministic mixed-algorithm query set over a
// random KG.
func stressWorkload(rng *rand.Rand, nVertices, count int) []Query {
	algos := []Algorithm{INS, UIS, UISStar}
	labelSets := [][]string{
		nil, // all labels
		{"l0", "l1"},
		{"l0", "l1", "l2"},
		{"l1", "l2", "l3"},
	}
	qs := make([]Query, count)
	for i := range qs {
		qs[i] = Query{
			Source:     "u" + strconv.Itoa(rng.Intn(nVertices)),
			Target:     "u" + strconv.Itoa(rng.Intn(nVertices)),
			Labels:     labelSets[rng.Intn(len(labelSets))],
			Constraint: stressConstraints[rng.Intn(len(stressConstraints))],
			Algorithm:  algos[rng.Intn(len(algos))],
		}
	}
	return qs
}

// TestEngineConcurrentStress hammers a single Engine with mixed
// Reach/ReachWithWitness/ReachAll/ReachAllWithWitness calls from many
// goroutines and checks every answer against a serial baseline. Run it
// under -race to prove the pooled scratch keeps goroutines disjoint.
func TestEngineConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nVertices = 60
	g := testkg.Random(rng, nVertices, 220, 4)
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 3})

	qs := stressWorkload(rng, nVertices, 48)

	// Serial ground truth per operation kind. A single-constraint
	// conjunction is semantically the plain query, so Reach and ReachAll
	// must agree on it.
	reachWant := make([]bool, len(qs))
	for i, q := range qs {
		res, err := eng.Reach(q)
		if err != nil {
			t.Fatalf("serial Reach %d: %v", i, err)
		}
		reachWant[i] = res.Reachable
	}

	const goroutines = 12
	const rounds = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, q := range qs {
					var (
						got bool
						err error
					)
					switch (gi + r + i) % 4 {
					case 0:
						var res Result
						res, err = eng.Reach(q)
						got = res.Reachable
					case 1:
						var res Result
						var p *Path
						res, p, err = eng.ReachWithWitness(q)
						got = res.Reachable
						if err == nil && got && p == nil {
							err = fmt.Errorf("true answer without witness")
						}
					case 2:
						var res Result
						res, err = eng.ReachAll(MultiQuery{
							Source: q.Source, Target: q.Target,
							Labels:      q.Labels,
							Constraints: []string{q.Constraint},
						})
						got = res.Reachable
					case 3:
						var res Result
						var mp *MultiPath
						res, mp, err = eng.ReachAllWithWitness(MultiQuery{
							Source: q.Source, Target: q.Target,
							Labels:      q.Labels,
							Constraints: []string{q.Constraint},
						})
						got = res.Reachable
						if err == nil && got && mp == nil {
							err = fmt.Errorf("true conjunctive answer without witness")
						}
					}
					if err != nil {
						errc <- fmt.Errorf("goroutine %d round %d query %d: %v", gi, r, i, err)
						return
					}
					if got != reachWant[i] {
						errc <- fmt.Errorf("goroutine %d round %d query %d: got %v, want %v",
							gi, r, i, got, reachWant[i])
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestReachBatchMatchesSerial: a batch at any fan-out returns exactly
// the serial results, including per-query errors in their slots.
func TestReachBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nVertices = 50
	g := testkg.Random(rng, nVertices, 180, 4)
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 9})

	qs := stressWorkload(rng, nVertices, 30)
	// Poison a few slots with queries that must fail without sinking the
	// batch.
	qs[4].Source = "no-such-vertex"
	qs[11].Labels = []string{"no-such-label"}
	qs[17].Constraint = "garbage ("

	serial := make([]BatchResult, len(qs))
	for i, q := range qs {
		serial[i].Result, serial[i].Err = eng.Reach(q)
	}
	for _, conc := range []int{0, 1, 3, 16} {
		got := eng.ReachBatch(qs, conc)
		if len(got) != len(qs) {
			t.Fatalf("concurrency %d: %d results for %d queries", conc, len(got), len(qs))
		}
		for i := range qs {
			if (got[i].Err == nil) != (serial[i].Err == nil) {
				t.Fatalf("concurrency %d query %d: err = %v, want %v", conc, i, got[i].Err, serial[i].Err)
			}
			if got[i].Err != nil {
				continue
			}
			if got[i].Result.Reachable != serial[i].Result.Reachable ||
				got[i].Result.SatisfyingVertices != serial[i].Result.SatisfyingVertices {
				t.Fatalf("concurrency %d query %d: got %+v, want %+v",
					conc, i, got[i].Result, serial[i].Result)
			}
		}
	}
	if !errors.Is(eng.ReachBatch(qs[4:5], 1)[0].Err, ErrUnknownVertex) {
		t.Error("unknown-vertex error lost its identity through ReachBatch")
	}
	if out := eng.ReachBatch(nil, 4); len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}
}

// TestReachBatchConcurrentCallers: ReachBatch itself may be invoked from
// several goroutines on one Engine (the lscrd server does exactly this).
func TestReachBatchConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const nVertices = 40
	g := testkg.Random(rng, nVertices, 140, 4)
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 1})
	qs := stressWorkload(rng, nVertices, 20)
	want := eng.ReachBatch(qs, 1)

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := eng.ReachBatch(qs, 2)
			for i := range qs {
				if (got[i].Err == nil) != (want[i].Err == nil) ||
					got[i].Err == nil && got[i].Result.Reachable != want[i].Result.Reachable {
					errc <- fmt.Errorf("query %d diverged under concurrent batches", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConstraintCacheConcurrentStress: many goroutines hammer one
// cached Engine with a small pool of repeated constraints through Reach
// and ReachBatch — the production shape the cache exists for. Run under
// -race: concurrent misses publish racing (but equivalent) entries, and
// hits share one immutable entry across goroutines. Afterwards the
// counters must balance exactly: every successful Reach performs one
// cache lookup.
func TestConstraintCacheConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const nVertices = 60
	g := testkg.Random(rng, nVertices, 220, 4)
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 5})

	qs := stressWorkload(rng, nVertices, 40)
	want := make([]bool, len(qs))
	for i, q := range qs {
		res, err := eng.Reach(q)
		if err != nil {
			t.Fatalf("serial Reach %d: %v", i, err)
		}
		want[i] = res.Reachable
	}
	base := eng.CacheStats()

	const goroutines = 10
	const rounds = 3
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if (gi+r)%2 == 0 {
					for i, q := range qs {
						res, err := eng.Reach(q)
						if err != nil {
							errc <- fmt.Errorf("goroutine %d round %d query %d: %v", gi, r, i, err)
							return
						}
						if res.Reachable != want[i] {
							errc <- fmt.Errorf("goroutine %d round %d query %d: got %v, want %v",
								gi, r, i, res.Reachable, want[i])
							return
						}
					}
				} else {
					for i, br := range eng.ReachBatch(qs, 4) {
						if br.Err != nil {
							errc <- fmt.Errorf("goroutine %d round %d batch query %d: %v", gi, r, i, br.Err)
							return
						}
						if br.Result.Reachable != want[i] {
							errc <- fmt.Errorf("goroutine %d round %d batch query %d: got %v, want %v",
								gi, r, i, br.Result.Reachable, want[i])
							return
						}
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := eng.CacheStats()
	lookups := st.Hits + st.Misses - base.Hits - base.Misses
	wantLookups := int64(goroutines * rounds * len(qs))
	if lookups != wantLookups {
		t.Errorf("cache lookups = %d, want %d (stats %+v)", lookups, wantLookups, st)
	}
	if st.Entries != len(stressConstraints) {
		t.Errorf("cache entries = %d, want %d distinct constraints", st.Entries, len(stressConstraints))
	}
	if st.Misses > int64(len(stressConstraints))*goroutines {
		t.Errorf("misses = %d — far more than racing first-compiles can explain", st.Misses)
	}
}

// TestCacheAnswerIdentity: a cached engine and a cache-disabled engine
// answer an identical mixed-algorithm workload identically — Reachable,
// SatisfyingVertices and error identity all match.
func TestCacheAnswerIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	const nVertices = 50
	g := testkg.Random(rng, nVertices, 180, 4)
	kg := FromGraph(g)
	cached := NewEngine(kg, Options{IndexSeed: 2})
	uncached := NewEngine(kg, Options{IndexSeed: 2, ConstraintCacheSize: -1})

	qs := stressWorkload(rng, nVertices, 45)
	// Cover every algorithm explicitly plus the error paths.
	for i := range qs {
		qs[i].Algorithm = []Algorithm{INS, UIS, UISStar}[i%3]
	}
	qs[7].Source = "no-such-vertex"
	qs[13].Constraint = "garbage ("
	qs[19].Constraint = `SELECT ?x WHERE { ?x <l0> <no-such-entity>. }` // unsatisfiable

	for round := 0; round < 2; round++ { // round 1 runs cached fully warm
		for i, q := range qs {
			cr, cerr := cached.Reach(q)
			ur, uerr := uncached.Reach(q)
			if (cerr == nil) != (uerr == nil) {
				t.Fatalf("round %d query %d: cached err %v, uncached err %v", round, i, cerr, uerr)
			}
			if cerr != nil {
				if cerr.Error() != uerr.Error() {
					t.Fatalf("round %d query %d: error text diverged: %q vs %q", round, i, cerr, uerr)
				}
				continue
			}
			if cr.Reachable != ur.Reachable || cr.SatisfyingVertices != ur.SatisfyingVertices {
				t.Fatalf("round %d query %d (%v): cached %+v, uncached %+v",
					round, i, q.Algorithm, cr, ur)
			}
		}
	}
	if st := cached.CacheStats(); st.Hits == 0 {
		t.Error("warm round produced no cache hits")
	}
}

// TestConstraintCacheEviction: at capacity the cache evicts by recency
// and never exceeds its bound. Capacity 1 degrades to a single strict
// LRU shard, making eviction deterministic.
func TestConstraintCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	const nVertices = 30
	g := testkg.Random(rng, nVertices, 100, 4)
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 1, ConstraintCacheSize: 1})

	q := Query{Source: "u0", Target: "u1"}
	reach := func(cons string) {
		q.Constraint = cons
		if _, err := eng.Reach(q); err != nil {
			t.Fatalf("%s: %v", cons, err)
		}
	}
	a := `SELECT ?x WHERE { ?x <l0> ?y. }`
	b := `SELECT ?x WHERE { ?x <l1> ?y. }`
	reach(a) // miss, insert a
	reach(a) // hit
	reach(b) // miss, evicts a
	reach(a) // miss again: a was evicted
	st := eng.CacheStats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 {
		t.Fatalf("capacity-1 stats = %+v (want 1 hit, 3 misses, 1 entry)", st)
	}

	// A larger cache never exceeds its capacity under distinct-constraint
	// pressure, regardless of shard hashing.
	const capacity = 8
	big := NewEngine(FromGraph(g), Options{IndexSeed: 1, ConstraintCacheSize: capacity})
	for i := 0; i < nVertices; i++ {
		q.Constraint = fmt.Sprintf(`SELECT ?x WHERE { ?x <l0> <u%d>. }`, i)
		if _, err := big.Reach(q); err != nil {
			t.Fatalf("distinct constraint %d: %v", i, err)
		}
		if st := big.CacheStats(); st.Entries > capacity {
			t.Fatalf("after %d distinct constraints: %d entries > capacity %d", i+1, st.Entries, capacity)
		}
	}
	if st := big.CacheStats(); st.Capacity != capacity {
		t.Fatalf("capacity reported as %d, want %d", st.Capacity, capacity)
	}
}

// TestEngineIndexWorkersDeterminism: the public knob. Engines built with
// different IndexWorkers values must report identical index statistics
// and answer a random workload identically.
func TestEngineIndexWorkersDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		const nVertices = 70
		g := testkg.Random(rng, nVertices, 260, 4)
		kg := FromGraph(g)
		ref := NewEngine(kg, Options{IndexSeed: seed, IndexWorkers: 1})
		refStats, ok := ref.Index()
		if !ok {
			t.Fatal("reference engine has no index")
		}
		qs := stressWorkload(rng, nVertices, 25)
		for i := range qs {
			qs[i].Algorithm = INS // the index-dependent algorithm
		}
		refAns := ref.ReachBatch(qs, 1)
		for _, workers := range []int{2, 4, 13} {
			par := NewEngine(kg, Options{IndexSeed: seed, IndexWorkers: workers})
			parStats, _ := par.Index()
			if parStats != refStats {
				t.Fatalf("seed %d workers %d: index stats %+v, want %+v",
					seed, workers, parStats, refStats)
			}
			for i, br := range par.ReachBatch(qs, 4) {
				if br.Err != nil {
					t.Fatalf("seed %d workers %d query %d: %v", seed, workers, i, br.Err)
				}
				if br.Result.Reachable != refAns[i].Result.Reachable {
					t.Fatalf("seed %d workers %d query %d: answers diverge", seed, workers, i)
				}
			}
		}
	}
}
