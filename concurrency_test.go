package lscr

// The concurrency tier: these tests are the proof behind the package's
// concurrency contract (one immutable Engine, any number of querying
// goroutines) and are meant to run under the race detector — CI runs
// `go test -race` over them. They use modest graph sizes so the -race
// pass stays fast.

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"lscr/internal/testkg"
)

// stressConstraints are small substructure constraints over the testkg
// label vocabulary (l0..l3).
var stressConstraints = []string{
	`SELECT ?x WHERE { ?x <l0> ?y. }`,
	`SELECT ?x WHERE { ?x <l1> ?y. }`,
	`SELECT ?x WHERE { ?x <l0> ?y. ?y <l1> ?z. }`,
}

// stressWorkload builds a deterministic mixed-algorithm query set over a
// random KG.
func stressWorkload(rng *rand.Rand, nVertices, count int) []Query {
	algos := []Algorithm{INS, UIS, UISStar}
	labelSets := [][]string{
		nil, // all labels
		{"l0", "l1"},
		{"l0", "l1", "l2"},
		{"l1", "l2", "l3"},
	}
	qs := make([]Query, count)
	for i := range qs {
		qs[i] = Query{
			Source:     "u" + strconv.Itoa(rng.Intn(nVertices)),
			Target:     "u" + strconv.Itoa(rng.Intn(nVertices)),
			Labels:     labelSets[rng.Intn(len(labelSets))],
			Constraint: stressConstraints[rng.Intn(len(stressConstraints))],
			Algorithm:  algos[rng.Intn(len(algos))],
		}
	}
	return qs
}

// TestEngineConcurrentStress hammers a single Engine with mixed
// Reach/ReachWithWitness/ReachAll/ReachAllWithWitness calls from many
// goroutines and checks every answer against a serial baseline. Run it
// under -race to prove the pooled scratch keeps goroutines disjoint.
func TestEngineConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nVertices = 60
	g := testkg.Random(rng, nVertices, 220, 4)
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 3})

	qs := stressWorkload(rng, nVertices, 48)

	// Serial ground truth per operation kind. A single-constraint
	// conjunction is semantically the plain query, so Reach and ReachAll
	// must agree on it.
	reachWant := make([]bool, len(qs))
	for i, q := range qs {
		res, err := eng.Reach(q)
		if err != nil {
			t.Fatalf("serial Reach %d: %v", i, err)
		}
		reachWant[i] = res.Reachable
	}

	const goroutines = 12
	const rounds = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, q := range qs {
					var (
						got bool
						err error
					)
					switch (gi + r + i) % 4 {
					case 0:
						var res Result
						res, err = eng.Reach(q)
						got = res.Reachable
					case 1:
						var res Result
						var p *Path
						res, p, err = eng.ReachWithWitness(q)
						got = res.Reachable
						if err == nil && got && p == nil {
							err = fmt.Errorf("true answer without witness")
						}
					case 2:
						var res Result
						res, err = eng.ReachAll(MultiQuery{
							Source: q.Source, Target: q.Target,
							Labels:      q.Labels,
							Constraints: []string{q.Constraint},
						})
						got = res.Reachable
					case 3:
						var res Result
						var mp *MultiPath
						res, mp, err = eng.ReachAllWithWitness(MultiQuery{
							Source: q.Source, Target: q.Target,
							Labels:      q.Labels,
							Constraints: []string{q.Constraint},
						})
						got = res.Reachable
						if err == nil && got && mp == nil {
							err = fmt.Errorf("true conjunctive answer without witness")
						}
					}
					if err != nil {
						errc <- fmt.Errorf("goroutine %d round %d query %d: %v", gi, r, i, err)
						return
					}
					if got != reachWant[i] {
						errc <- fmt.Errorf("goroutine %d round %d query %d: got %v, want %v",
							gi, r, i, got, reachWant[i])
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestReachBatchMatchesSerial: a batch at any fan-out returns exactly
// the serial results, including per-query errors in their slots.
func TestReachBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nVertices = 50
	g := testkg.Random(rng, nVertices, 180, 4)
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 9})

	qs := stressWorkload(rng, nVertices, 30)
	// Poison a few slots with queries that must fail without sinking the
	// batch.
	qs[4].Source = "no-such-vertex"
	qs[11].Labels = []string{"no-such-label"}
	qs[17].Constraint = "garbage ("

	serial := make([]BatchResult, len(qs))
	for i, q := range qs {
		serial[i].Result, serial[i].Err = eng.Reach(q)
	}
	for _, conc := range []int{0, 1, 3, 16} {
		got := eng.ReachBatch(qs, conc)
		if len(got) != len(qs) {
			t.Fatalf("concurrency %d: %d results for %d queries", conc, len(got), len(qs))
		}
		for i := range qs {
			if (got[i].Err == nil) != (serial[i].Err == nil) {
				t.Fatalf("concurrency %d query %d: err = %v, want %v", conc, i, got[i].Err, serial[i].Err)
			}
			if got[i].Err != nil {
				continue
			}
			if got[i].Result.Reachable != serial[i].Result.Reachable ||
				got[i].Result.SatisfyingVertices != serial[i].Result.SatisfyingVertices {
				t.Fatalf("concurrency %d query %d: got %+v, want %+v",
					conc, i, got[i].Result, serial[i].Result)
			}
		}
	}
	if !errors.Is(eng.ReachBatch(qs[4:5], 1)[0].Err, ErrUnknownVertex) {
		t.Error("unknown-vertex error lost its identity through ReachBatch")
	}
	if out := eng.ReachBatch(nil, 4); len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}
}

// TestReachBatchConcurrentCallers: ReachBatch itself may be invoked from
// several goroutines on one Engine (the lscrd server does exactly this).
func TestReachBatchConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const nVertices = 40
	g := testkg.Random(rng, nVertices, 140, 4)
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 1})
	qs := stressWorkload(rng, nVertices, 20)
	want := eng.ReachBatch(qs, 1)

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := eng.ReachBatch(qs, 2)
			for i := range qs {
				if (got[i].Err == nil) != (want[i].Err == nil) ||
					got[i].Err == nil && got[i].Result.Reachable != want[i].Result.Reachable {
					errc <- fmt.Errorf("query %d diverged under concurrent batches", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestEngineIndexWorkersDeterminism: the public knob. Engines built with
// different IndexWorkers values must report identical index statistics
// and answer a random workload identically.
func TestEngineIndexWorkersDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		const nVertices = 70
		g := testkg.Random(rng, nVertices, 260, 4)
		kg := FromGraph(g)
		ref := NewEngine(kg, Options{IndexSeed: seed, IndexWorkers: 1})
		refStats, ok := ref.Index()
		if !ok {
			t.Fatal("reference engine has no index")
		}
		qs := stressWorkload(rng, nVertices, 25)
		for i := range qs {
			qs[i].Algorithm = INS // the index-dependent algorithm
		}
		refAns := ref.ReachBatch(qs, 1)
		for _, workers := range []int{2, 4, 13} {
			par := NewEngine(kg, Options{IndexSeed: seed, IndexWorkers: workers})
			parStats, _ := par.Index()
			if parStats != refStats {
				t.Fatalf("seed %d workers %d: index stats %+v, want %+v",
					seed, workers, parStats, refStats)
			}
			for i, br := range par.ReachBatch(qs, 4) {
				if br.Err != nil {
					t.Fatalf("seed %d workers %d query %d: %v", seed, workers, i, br.Err)
				}
				if br.Result.Reachable != refAns[i].Result.Reachable {
					t.Fatalf("seed %d workers %d query %d: answers diverge", seed, workers, i)
				}
			}
		}
	}
}
