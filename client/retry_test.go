package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lscr/api"
	"lscr/client"
)

// flakyServer answers path with failStatus for the first fail hits,
// then with the JSON body ok. It counts every hit.
func flakyServer(t *testing.T, fail int64, failStatus int, ok string) (*client.Client, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= fail {
			http.Error(w, `{"error":"transient"}`, failStatus)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(ok))
	}))
	t.Cleanup(srv.Close)
	return client.New(srv.URL, client.WithRetry(3, time.Millisecond)), &hits
}

// TestClientRetryIdempotentRead: a read that hits transient gateway
// unavailability (503) is retried and succeeds within the attempt
// budget.
func TestClientRetryIdempotentRead(t *testing.T) {
	c, hits := flakyServer(t, 2, http.StatusServiceUnavailable, `{"reachable":true}`)
	resp, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Reachable {
		t.Fatalf("resp = %+v", resp)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestClientRetryGivesUp: when every attempt fails transiently the last
// error surfaces after exactly the configured number of tries.
func TestClientRetryGivesUp(t *testing.T) {
	c, hits := flakyServer(t, 100, http.StatusBadGateway, `{}`)
	_, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadGateway {
		t.Fatalf("err = %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestClientNoRetryOnDefinitiveError: a 400 is an answer, not an
// outage — exactly one attempt.
func TestClientNoRetryOnDefinitiveError(t *testing.T) {
	c, hits := flakyServer(t, 100, http.StatusBadRequest, `{}`)
	_, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// TestClientMutateNeverRetried: POST /v1/mutate is sent exactly once
// even when the reply is a retryable-looking 502 — a mutation whose
// reply was lost may have committed, and re-sending it could apply the
// batch twice.
func TestClientMutateNeverRetried(t *testing.T) {
	c, hits := flakyServer(t, 100, http.StatusBadGateway, `{}`)
	_, err := c.Mutate(context.Background(), []api.Mutation{
		{Op: "add-vertex", Subject: "v"},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadGateway {
		t.Fatalf("err = %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("mutate was sent %d times, want exactly 1", got)
	}
}

// TestClientRetryTransportError: a connection-refused transport error
// is retried for reads (here: every attempt fails, and the loop still
// terminates with the transport error).
func TestClientRetryTransportError(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens there any more
	c := client.New(url, client.WithRetry(2, time.Millisecond))
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("health against a dead server succeeded")
	}
}
