package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"lscr/api"
	"lscr/client"
)

// sheddingServer answers 429 + Retry-After for the first fail hits,
// then succeeds.
func sheddingServer(t *testing.T, fail int64, retryAfter string, ok string) (*httptest.Server, *atomic.Int64, *atomic.Value) {
	t.Helper()
	var hits atomic.Int64
	var lastGap atomic.Value
	var lastAt atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := lastAt.Swap(now); prev != 0 {
			lastGap.Store(time.Duration(now - prev))
		}
		if hits.Add(1) <= fail {
			w.Header().Set("Retry-After", retryAfter)
			http.Error(w, `{"error":"server overloaded; retry later"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(ok))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits, &lastGap
}

// TestClientRetryAfterHonored: a shed read (429) is retried, and the
// gap before the retry respects the server's Retry-After hint even
// though the configured backoff is far smaller.
func TestClientRetryAfterHonored(t *testing.T) {
	srv, hits, gap := sheddingServer(t, 1, "1", `{"reachable":true}`)
	c := client.New(srv.URL, client.WithRetry(3, time.Millisecond))
	resp, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Reachable {
		t.Fatalf("resp = %+v", resp)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
	if g, _ := gap.Load().(time.Duration); g < 900*time.Millisecond {
		t.Fatalf("retry came after %v, want >= ~1s from Retry-After", g)
	}
}

// TestClientRetryAfterSurfacedOnError: when retries run out, the last
// *APIError carries the parsed Retry-After so callers can schedule
// their own comeback.
func TestClientRetryAfterSurfacedOnError(t *testing.T) {
	srv, _, _ := sheddingServer(t, 100, "3", `{}`)
	// Budget 0 forbids any sleep, so the first 429 is also the last try.
	c := client.New(srv.URL, client.WithRetry(3, time.Millisecond), client.WithRetryBudget(0))
	_, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v", err)
	}
	if apiErr.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s", apiErr.RetryAfter)
	}
}

// TestClientRetryBudgetStopsSchedule: a Retry-After hint larger than
// the retry budget stops the schedule instead of parking the client —
// the server sees exactly one request.
func TestClientRetryBudgetStopsSchedule(t *testing.T) {
	srv, hits, _ := sheddingServer(t, 100, "30", `{}`)
	c := client.New(srv.URL, client.WithRetry(3, time.Millisecond), client.WithRetryBudget(100*time.Millisecond))
	start := time.Now()
	_, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call took %v; budget should have stopped the 30s Retry-After sleep", elapsed)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (budget forbids the retry)", got)
	}
}

// TestClientRetryBudgetUnlimited: a negative budget disables the cap —
// the hinted sleep happens and the retry goes out.
func TestClientRetryBudgetUnlimited(t *testing.T) {
	srv, hits, _ := sheddingServer(t, 1, "1", `{"reachable":true}`)
	c := client.New(srv.URL, client.WithRetry(2, time.Millisecond), client.WithRetryBudget(-1))
	if _, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"}); err != nil {
		t.Fatal(err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}
