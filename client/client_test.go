package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lscr"
	"lscr/api"
	"lscr/client"
	"lscr/server"
)

const testKG = `
<C> <apr> <X> .
<X> <apr> <P> .
<X> <married> <Amy> .
<C> <may> <P> .
`

const testConstraint = `SELECT ?x WHERE { ?x <married> <Amy>. }`

// liveServer runs the real handler stack (package lscr/server) on a
// real listener, so these tests exercise the full wire path the
// production client sees.
func liveServer(t *testing.T) *client.Client {
	t.Helper()
	kg, err := lscr.Load(strings.NewReader(testKG))
	if err != nil {
		t.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{})
	srv := httptest.NewServer(server.New(eng, kg))
	t.Cleanup(srv.Close)
	return client.New(srv.URL)
}

// TestClientQueryRoundTrip: a typed request round-trips through a live
// /v1 endpoint with witness and stats intact.
func TestClientQueryRoundTrip(t *testing.T) {
	c := liveServer(t)
	ctx := context.Background()
	for _, algo := range []string{"", "uis", "uisstar", "conjunctive"} {
		resp, err := c.Query(ctx, api.QueryRequest{
			Source: "C", Target: "P",
			Labels:     []string{"apr", "married"},
			Constraint: testConstraint,
			Algorithm:  algo,
			Witness:    true,
		})
		if err != nil {
			t.Fatalf("%q: %v", algo, err)
		}
		if !resp.Reachable {
			t.Fatalf("%q: not reachable", algo)
		}
		if resp.Witness == nil || len(resp.Witness.SatisfiedBy) == 0 || resp.Witness.SatisfiedBy[0] != "X" {
			t.Fatalf("%q: witness = %+v", algo, resp.Witness)
		}
		if resp.PassedVertices <= 0 {
			t.Errorf("%q: passed_vertices = %d", algo, resp.PassedVertices)
		}
	}
}

// TestClientBatchRoundTrip: a mixed batch round-trips with per-item
// errors in place.
func TestClientBatchRoundTrip(t *testing.T) {
	c := liveServer(t)
	resp, err := c.Batch(context.Background(), api.BatchRequest{
		Queries: []api.QueryRequest{
			{Source: "C", Target: "P", Labels: []string{"apr", "married"}, Constraint: testConstraint},
			{Source: "nope", Target: "P", Constraint: testConstraint},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 {
		t.Fatalf("count = %d", resp.Count)
	}
	if !resp.Results[0].Reachable || resp.Results[0].Error != "" {
		t.Errorf("item 0 = %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Errorf("item 1 should carry the unknown-vertex error, got %+v", resp.Results[1])
	}
}

// TestClientHealth: /healthz round-trips with the server version.
func TestClientHealth(t *testing.T) {
	c := liveServer(t)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Vertices != 4 {
		t.Fatalf("health = %+v", h)
	}
	if h.Version == "" || h.API != api.Version {
		t.Fatalf("version/api missing: %+v", h)
	}
}

// TestClientAPIError: non-2xx replies surface as *APIError with the
// status and server message.
func TestClientAPIError(t *testing.T) {
	c := liveServer(t)
	_, err := c.Query(context.Background(), api.QueryRequest{
		Source: "nope", Target: "P", Constraint: testConstraint,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.StatusCode != http.StatusBadRequest || apiErr.Message == "" {
		t.Fatalf("apiErr = %+v", apiErr)
	}
}

// TestClientCancelPropagates: cancelling the caller's context aborts
// the in-flight HTTP request.
func TestClientCancelPropagates(t *testing.T) {
	c := liveServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Query(ctx, api.QueryRequest{Source: "C", Target: "P", Constraint: testConstraint})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
