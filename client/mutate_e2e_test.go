package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lscr"
	"lscr/api"
	"lscr/client"
	"lscr/server"
)

// liveMutableServer is liveServer exposing the engine and raw address,
// for the mutation e2e tests.
func liveMutableServer(t *testing.T, opts ...server.Option) (*client.Client, *lscr.Engine, *httptest.Server) {
	t.Helper()
	kg, err := lscr.Load(strings.NewReader(testKG))
	if err != nil {
		t.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{})
	srv := httptest.NewServer(server.New(eng, kg, opts...))
	t.Cleanup(srv.Close)
	return client.New(srv.URL), eng, srv
}

// TestClientMutateRoundTrip: a mutation batch commits through the live
// /v1/mutate endpoint and the answer flips exactly with the edit — the
// epoch published by Mutate is the one subsequent queries see.
func TestClientMutateRoundTrip(t *testing.T) {
	c, _, _ := liveMutableServer(t)
	ctx := context.Background()

	// Y is unknown and unreachable before the batch.
	q := api.QueryRequest{Source: "C", Target: "Y", Constraint: testConstraint, Algorithm: "uis"}
	if _, err := c.Query(ctx, q); err == nil {
		t.Fatal("query to unknown vertex succeeded before mutation")
	}

	res, err := c.Mutate(ctx, []api.Mutation{
		{Op: "add-edge", Subject: "P", Label: "apr", Object: "Y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch == 0 || res.Added != 1 || res.NewVertices != 1 {
		t.Fatalf("mutate result %+v", res)
	}
	resp, err := c.Query(ctx, q)
	if err != nil || !resp.Reachable {
		t.Fatalf("after insert: %+v, %v", resp, err)
	}

	// Deleting the bridge makes the same query answer false; deleting it
	// again is a 400 and changes nothing.
	if _, err := c.Mutate(ctx, []api.Mutation{
		{Op: "delete-edge", Subject: "X", Label: "apr", Object: "P"},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Query(ctx, q)
	if err != nil || resp.Reachable {
		t.Fatalf("after delete: %+v, %v", resp, err)
	}
	_, err = c.Mutate(ctx, []api.Mutation{
		{Op: "delete-edge", Subject: "X", Label: "apr", Object: "P"},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("double delete: %v", err)
	}

	// Health reflects the mutated view and the advanced epoch.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Vertices != 5 || h.Epoch.Epoch == 0 {
		t.Fatalf("health after mutations: %+v", h)
	}
}

// TestClientMutateAtomicBatch: one invalid mutation rejects the whole
// batch — the valid insertions before it are not applied.
func TestClientMutateAtomicBatch(t *testing.T) {
	c, eng, _ := liveMutableServer(t)
	ctx := context.Background()
	before := eng.Epoch()

	_, err := c.Mutate(ctx, []api.Mutation{
		{Op: "add-edge", Subject: "C", Label: "apr", Object: "Z1"},
		{Op: "add-edge", Subject: "Z1", Label: "apr", Object: "Z2"},
		{Op: "delete-edge", Subject: "Z9", Label: "apr", Object: "C"}, // unknown vertex
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid batch: %v", err)
	}
	if got := eng.Epoch(); got.Epoch != before.Epoch || got.OverlayOps != before.OverlayOps {
		t.Fatalf("rejected batch changed state: %+v -> %+v", before, got)
	}
	if eng.KG().NumVertices() != 4 {
		t.Fatal("rejected batch interned vertices")
	}
}

// TestClientMutateMidFlightDisconnect: a connection that dies while the
// mutation body is in flight applies nothing — the server never sees a
// decodable batch, so the graph cannot be torn.
func TestClientMutateMidFlightDisconnect(t *testing.T) {
	_, eng, srv := liveMutableServer(t)
	before := eng.Epoch()
	edgesBefore := eng.KG().NumEdges()

	body := `{"mutations":[{"op":"add-edge","subject":"C","label":"apr","object":"T1"},` +
		`{"op":"add-edge","subject":"T1","label":"apr","object":"T2"}]}`
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Announce the full length but send only half the body, then slam
	// the connection shut: the server's JSON decode must fail before
	// Engine.Apply ever runs.
	half := body[:len(body)/2]
	fmt.Fprintf(conn, "POST /v1/mutate HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		len(body), half)
	conn.Close()

	// Give the handler ample time to observe the aborted read; the state
	// must still be exactly the pre-request state afterwards.
	time.Sleep(100 * time.Millisecond)
	after := eng.Epoch()
	if after.Epoch != before.Epoch || after.OverlayOps != before.OverlayOps {
		t.Fatalf("disconnected mutation changed state: %+v -> %+v", before, after)
	}
	if got := eng.KG().NumEdges(); got != edgesBefore {
		t.Fatalf("edge count changed across disconnect: %d -> %d", edgesBefore, got)
	}
	if got := eng.KG().NumVertices(); got != 4 {
		t.Fatalf("disconnected mutation interned vertices: |V| = %d", got)
	}
}

// TestClientMutateReadOnly: a ReadOnly server answers 403 and applies
// nothing.
func TestClientMutateReadOnly(t *testing.T) {
	c, eng, _ := liveMutableServer(t, server.ReadOnly())
	_, err := c.Mutate(context.Background(), []api.Mutation{
		{Op: "add-vertex", Subject: "nope"},
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only mutate: %v", err)
	}
	if eng.KG().NumVertices() != 4 {
		t.Fatal("read-only server applied a mutation")
	}
}
