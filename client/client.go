// Package client is the typed Go client of the lscrd /v1 HTTP API.
//
//	c := client.New("http://localhost:8080")
//	resp, err := c.Query(ctx, api.QueryRequest{
//		Source: "SuspectC", Target: "SuspectP",
//		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
//	})
//
// Every call takes a context: cancelling it aborts the HTTP request,
// which in turn cancels the search server-side (lscrd propagates the
// request context into the engine). Non-2xx replies surface as
// *APIError carrying the HTTP status and the server's message.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"lscr/api"
)

// Client talks to one lscrd server. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the server at baseURL (scheme + host, with
// or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx reply from the server.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error text.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("lscrd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Query answers one request via POST /v1/query.
func (c *Client) Query(ctx context.Context, req api.QueryRequest) (api.QueryResponse, error) {
	var out api.QueryResponse
	err := c.post(ctx, "/"+api.Version+"/query", req, &out)
	return out, err
}

// Batch answers many requests via POST /v1/batch.
func (c *Client) Batch(ctx context.Context, req api.BatchRequest) (api.BatchResponse, error) {
	var out api.BatchResponse
	err := c.post(ctx, "/"+api.Version+"/batch", req, &out)
	return out, err
}

// Mutate commits one atomic mutation batch via POST /v1/mutate. The
// server applies either the whole batch or none of it: a validation
// error (unknown name or absent edge in a delete, malformed op), a
// connection dropped mid-request, or a read-only server leaves the
// graph untouched.
func (c *Client) Mutate(ctx context.Context, muts []api.Mutation) (api.MutateResponse, error) {
	var out api.MutateResponse
	err := c.post(ctx, "/"+api.Version+"/mutate", api.MutateRequest{Mutations: muts}, &out)
	return out, err
}

// Health reads GET /healthz.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var out api.Health
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return out, err
	}
	err = c.do(hreq, &out)
	return out, err
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.do(hreq, out)
}

func (c *Client) do(hreq *http.Request, out any) error {
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// Error bodies are small; cap the read anyway so a broken
		// server cannot make the client buffer garbage without bound.
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var apiErr api.Error
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
