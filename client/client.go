// Package client is the typed Go client of the lscrd /v1 HTTP API.
//
//	c := client.New("http://localhost:8080")
//	resp, err := c.Query(ctx, api.QueryRequest{
//		Source: "SuspectC", Target: "SuspectP",
//		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
//	})
//
// Every call takes a context: cancelling it aborts the HTTP request,
// which in turn cancels the search server-side (lscrd propagates the
// request context into the engine). Non-2xx replies surface as
// *APIError carrying the HTTP status and the server's message.
//
// Idempotent reads (Query, Batch, Health, Replicate, Segment) are
// retried on transient transport errors, overload shedding (429) and
// gateway unavailability (502/503) with jittered exponential backoff —
// the right behaviour against both a single restarting lscrd and the
// cluster gateway, whose 503 means "no replica eligible right now".
// A Retry-After hint on the reply raises the next backoff sleep, and
// the total time spent sleeping is capped by the retry budget
// (WithRetryBudget), so a shedding cluster slows clients down instead
// of being hammered, without parking them forever. Mutate is NEVER
// auto-retried: a mutation request whose reply was lost may have
// committed, and blindly re-sending it would double-apply the batch.
// Use WithRetry to tune or disable the policy.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"lscr/api"
)

// Retry defaults: up to DefaultRetryAttempts tries per idempotent read,
// with full-jitter backoff starting at DefaultRetryBackoff and doubling
// per attempt, spending at most DefaultRetryBudget waiting between
// attempts across the whole call.
const (
	DefaultRetryAttempts = 3
	DefaultRetryBackoff  = 25 * time.Millisecond
	DefaultRetryBudget   = 2 * time.Second
)

// Client talks to one lscrd server (or the cluster gateway, which
// speaks the same /v1 contract). It is safe for concurrent use.
type Client struct {
	base     string
	hc       *http.Client
	attempts int
	backoff  time.Duration
	budget   time.Duration
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is http.DefaultClient; nil
// keeps it.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithRetry tunes the idempotent-read retry policy: attempts is the
// total number of tries (1 disables retries), backoff the first sleep
// of the jittered exponential schedule. Mutate stays single-try
// regardless.
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(c *Client) {
		if attempts < 1 {
			attempts = 1
		}
		c.attempts = attempts
		c.backoff = backoff
	}
}

// WithRetryBudget caps the total time one call may spend sleeping
// between retry attempts — the Retry-After hint of an overloaded
// server (429/503) is honoured, but never past this budget, so a
// shedding cluster cannot park a client indefinitely. Negative means
// unlimited; the default is DefaultRetryBudget.
func WithRetryBudget(d time.Duration) Option {
	return func(c *Client) { c.budget = d }
}

// New builds a client for the server at baseURL (scheme + host, with
// or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:     strings.TrimRight(baseURL, "/"),
		hc:       http.DefaultClient,
		attempts: DefaultRetryAttempts,
		backoff:  DefaultRetryBackoff,
		budget:   DefaultRetryBudget,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx reply from the server.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error text.
	Message string
	// RetryAfter is the server's Retry-After hint (zero when absent):
	// an overloaded (429) or temporarily unavailable (503) server says
	// when it is worth coming back.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("lscrd: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Query answers one request via POST /v1/query.
func (c *Client) Query(ctx context.Context, req api.QueryRequest) (api.QueryResponse, error) {
	var out api.QueryResponse
	err := c.post(ctx, "/"+api.Version+"/query", req, &out, true)
	return out, err
}

// Batch answers many requests via POST /v1/batch.
func (c *Client) Batch(ctx context.Context, req api.BatchRequest) (api.BatchResponse, error) {
	var out api.BatchResponse
	err := c.post(ctx, "/"+api.Version+"/batch", req, &out, true)
	return out, err
}

// Mutate commits one atomic mutation batch via POST /v1/mutate. The
// server applies either the whole batch or none of it: a validation
// error (unknown name or absent edge in a delete, malformed op), a
// connection dropped mid-request, or a read-only server leaves the
// graph untouched.
//
// Mutate is never auto-retried: a transport error after the request
// was sent leaves the commit status unknown, and re-sending a batch
// that did commit would apply it twice. Callers who need to resolve
// the ambiguity compare the engine epoch (Health) before re-issuing.
func (c *Client) Mutate(ctx context.Context, muts []api.Mutation) (api.MutateResponse, error) {
	var out api.MutateResponse
	err := c.post(ctx, "/"+api.Version+"/mutate", api.MutateRequest{Mutations: muts}, &out, false)
	return out, err
}

// Health reads GET /healthz.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var out api.Health
	err := c.get(ctx, "/healthz", &out)
	return out, err
}

// Replicate reads the replication feed above the from cursor via GET
// /v1/replicate, long-polling up to wait server-side when the cursor
// is current. A cursor below the writer's WAL horizon surfaces as an
// *APIError with StatusGone: re-bootstrap from Segment.
func (c *Client) Replicate(ctx context.Context, from uint64, wait time.Duration) (api.ReplicateResponse, error) {
	var out api.ReplicateResponse
	path := fmt.Sprintf("/%s/replicate?from=%d&wait_ms=%d", api.Version, from, wait.Milliseconds())
	err := c.get(ctx, path, &out)
	return out, err
}

// Segment fetches the newest sealed segment image via GET /v1/segment
// and returns its bytes plus its base epoch — everything a follower
// needs to bootstrap (lscr.OpenReplicaSegment, then tail Replicate
// from the epoch).
func (c *Client) Segment(ctx context.Context) ([]byte, uint64, error) {
	var (
		data []byte
		base uint64
	)
	err := c.withRetry(ctx, true, func() error {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/"+api.Version+"/segment", nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(hreq)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return readAPIError(resp)
		}
		base, err = strconv.ParseUint(resp.Header.Get(api.SegmentEpochHeader), 10, 64)
		if err != nil {
			return fmt.Errorf("lscrd: bad %s header: %v", api.SegmentEpochHeader, err)
		}
		data, err = io.ReadAll(resp.Body)
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	return data, base, nil
}

func (c *Client) post(ctx context.Context, path string, body, out any, idempotent bool) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.withRetry(ctx, idempotent, func() error {
		// A fresh request per attempt: the body reader of a failed send
		// may already be consumed.
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		return c.do(hreq, out)
	})
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	return c.withRetry(ctx, true, func() error {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
		if err != nil {
			return err
		}
		return c.do(hreq, out)
	})
}

// withRetry runs one attempt of call, re-running it on retryable
// failures (transient transport errors, 429/502/503) when idempotent —
// with full-jitter exponential backoff between attempts, raised to the
// server's Retry-After hint when one came back — and exactly once
// otherwise. The caller's context bounds the whole schedule: its
// cancellation is never retried and cuts a backoff sleep short. The
// retry budget bounds the total time spent sleeping: a schedule whose
// next sleep would overrun it returns the last error instead.
func (c *Client) withRetry(ctx context.Context, idempotent bool, call func() error) error {
	attempts := 1
	if idempotent {
		attempts = c.attempts
	}
	var (
		err   error
		slept time.Duration
	)
	for try := 0; try < attempts; try++ {
		if try > 0 {
			d := jittered(c.backoff << (try - 1))
			// An overloaded server's Retry-After hint wins over the
			// backoff schedule — retrying sooner would only be shed
			// again — but never past the retry budget.
			if ra := retryAfterOf(err); ra > d {
				d = ra
			}
			if c.budget >= 0 && slept+d > c.budget {
				return err
			}
			slept += d
			if !sleepCtx(ctx, d) {
				return err
			}
		}
		if err = call(); err == nil {
			return nil
		}
		if ctx.Err() != nil || !retryable(err) {
			return err
		}
	}
	return err
}

// retryable classifies one failed attempt: overload shedding (429),
// gateway unavailability (502/503) and transport-level errors are
// worth re-trying; every other API error is a definitive answer, and a
// cancelled or expired context is the caller's own signal.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusTooManyRequests ||
			apiErr.StatusCode == http.StatusBadGateway ||
			apiErr.StatusCode == http.StatusServiceUnavailable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// retryAfterOf extracts the server's Retry-After hint from a failed
// attempt, zero when there is none.
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// jittered draws a uniformly random duration in [d/2, d] — full jitter
// keeps retries from synchronising across clients.
func jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// sleepCtx sleeps for d, reporting false when ctx expired first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (c *Client) do(hreq *http.Request, out any) error {
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return readAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// readAPIError drains a non-2xx reply into an *APIError. Error bodies
// are small; cap the read anyway so a broken server cannot make the
// client buffer garbage without bound.
func readAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var apiErr api.Error
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
		msg = apiErr.Error
	}
	out := &APIError{StatusCode: resp.StatusCode, Message: msg}
	// Retry-After in its integer-seconds form (the only form lscrd and
	// the gateway emit); HTTP-date values are ignored rather than
	// misparsed.
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs >= 0 {
			out.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return out
}
