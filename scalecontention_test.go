package lscr

// The scale contention test is the race-detector proof behind the scale
// benchmark tier: N goroutines hammer one engine built on a
// million-plus-edge LUBM graph with mixed algorithms (INS, UIS, UIS*,
// conjunctive) and witness reconstruction, and every answer must match
// the serial oracle's fingerprint. The graph is big enough to cross the
// engine's scratch-prewarm threshold, so the pooled epoch-stamped
// scratch paths (close map, frontier stamps, witness visited/parent
// tables) are all exercised under real contention.
//
// CI runs it under -race with LSCR_SCALE_TEST_EDGES set small (the race
// detector's ~10× slowdown makes the full graph impractical there); the
// plain test run uses the full ≥1M-edge default.

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"lscr/internal/graph"
	"lscr/internal/lubm"
)

// scaleTestEdges returns the edge target for the contended-reader test:
// the scale tier's default, overridable with LSCR_SCALE_TEST_EDGES for
// hosts (or race runs) where generating millions of edges is too slow.
func scaleTestEdges(t *testing.T) int {
	if v := os.Getenv("LSCR_SCALE_TEST_EDGES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad LSCR_SCALE_TEST_EDGES=%q: %v", v, err)
		}
		return n
	}
	return 1_200_000
}

// scaleFingerprint is the serial oracle's answer for one query.
type scaleFingerprint struct {
	reachable  bool
	satisfying int
}

func TestScaleContendedReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("generates and indexes a >=1M-edge graph (tune with LSCR_SCALE_TEST_EDGES)")
	}
	edges := scaleTestEdges(t)
	cfg := lubm.ConfigForEdges(edges)
	g := lubm.Generate(cfg)
	if g.NumEdges() < edges {
		t.Fatalf("generator produced %d edges, want >= %d", g.NumEdges(), edges)
	}
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 1})

	// A mixed workload over the real constraint vocabulary: random vertex
	// pairs, 2–3-label sets (narrow enough that the serial oracle stays
	// fast even for UIS), every algorithm represented. The conjunctive
	// entries pair adjacent Table 3 constraints.
	consts := lubm.Constraints()
	rng := rand.New(rand.NewSource(42))
	type caseQ struct {
		q     Query
		multi *MultiQuery
	}
	const nQueries = 24
	cases := make([]caseQ, nQueries)
	algos := []Algorithm{INS, UIS, UISStar, Conjunctive}
	for i := range cases {
		labels := make([]string, 2+rng.Intn(2))
		for j := range labels {
			labels[j] = g.LabelName(graph.Label(rng.Intn(g.NumLabels())))
		}
		algo := algos[i%len(algos)]
		q := Query{
			Source:     g.VertexName(graph.VertexID(rng.Intn(g.NumVertices()))),
			Target:     g.VertexName(graph.VertexID(rng.Intn(g.NumVertices()))),
			Labels:     labels,
			Constraint: consts[i%len(consts)].SPARQL,
			Algorithm:  algo,
		}
		if algo == INS {
			// INS prunes through V(S,G), so it can afford the full label
			// universe — the configuration the scale benchmark sweeps.
			q.Labels = nil
		}
		c := caseQ{q: q}
		if algo == Conjunctive {
			c.multi = &MultiQuery{
				Source: q.Source, Target: q.Target, Labels: q.Labels,
				Constraints: []string{
					consts[i%len(consts)].SPARQL,
					consts[(i+1)%len(consts)].SPARQL,
				},
			}
		}
		cases[i] = c
	}

	// Serial oracle pass.
	oracle := make([]scaleFingerprint, len(cases))
	for i, c := range cases {
		var (
			res Result
			err error
		)
		if c.multi != nil {
			res, err = eng.ReachAll(*c.multi)
		} else {
			res, err = eng.Reach(c.q)
		}
		if err != nil {
			t.Fatalf("serial oracle query %d: %v", i, err)
		}
		oracle[i] = scaleFingerprint{reachable: res.Reachable, satisfying: res.SatisfyingVertices}
	}

	// Contended pass: every goroutine replays the whole workload,
	// true-answer queries alternating through the witness path.
	const goroutines = 8
	const rounds = 2
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, c := range cases {
					var (
						res Result
						err error
					)
					wantWitness := oracle[i].reachable && (gi+r)%2 == 0
					switch {
					case c.multi != nil && wantWitness:
						var mp *MultiPath
						res, mp, err = eng.ReachAllWithWitness(*c.multi)
						if err == nil && mp == nil {
							err = fmt.Errorf("true conjunctive answer without witness")
						}
					case c.multi != nil:
						res, err = eng.ReachAll(*c.multi)
					case wantWitness:
						var p *Path
						res, p, err = eng.ReachWithWitness(c.q)
						if err == nil && p == nil {
							err = fmt.Errorf("true answer without witness")
						}
					default:
						res, err = eng.Reach(c.q)
					}
					if err != nil {
						errc <- fmt.Errorf("goroutine %d round %d query %d: %v", gi, r, i, err)
						return
					}
					got := scaleFingerprint{reachable: res.Reachable, satisfying: res.SatisfyingVertices}
					if got != oracle[i] {
						errc <- fmt.Errorf("goroutine %d round %d query %d: got %+v, oracle %+v",
							gi, r, i, got, oracle[i])
						return
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
