package lscr

import (
	"context"
	"strings"
	"testing"

	"lscr/internal/graph"
)

// TestMutateCompactionCatchUp produces the compaction/Apply race
// deterministically through the compactBarrier seam: batches that land
// after the compactor snapshotted its epoch — including
// dictionary-only batches, which stage no overlay log entry — must
// survive the swap via the catch-up replay.
func TestMutateCompactionCatchUp(t *testing.T) {
	kg, err := Load(strings.NewReader(`
<a> <l> <b> .
<b> <l> <c> .
<c> <m> <d> .
`))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(kg, Options{CompactAfter: -1})
	ctx := context.Background()

	// An overlay so the compaction has work.
	if _, err := eng.Apply(ctx, []Mutation{
		{Op: OpAddEdge, Subject: "d", Label: "l", Object: "e"},
		{Op: OpDeleteEdge, Subject: "c", Label: "m", Object: "d"},
	}); err != nil {
		t.Fatal(err)
	}

	// The barrier fires after the compactor has rebuilt from its
	// snapshot and before it takes the swap lock — exactly the window
	// where a concurrent Apply can land.
	compactBarrier = func() {
		compactBarrier = nil // once: the replayed ops must not re-enter
		// Deliberately dictionary-only: the batch grows no overlay log,
		// so only the epoch-sequence comparison can notice it.
		if _, err := eng.Apply(ctx, []Mutation{
			{Op: OpAddVertex, Subject: "ghost"},
			{Op: OpAddLabel, Label: "ghost-label"},
		}); err != nil {
			t.Errorf("apply during compaction: %v", err)
		}
	}
	defer func() { compactBarrier = nil }()
	if did, err := eng.Compact(ctx); err != nil || !did {
		t.Fatalf("Compact = %v, %v", did, err)
	}

	g := eng.KG().Graph()
	if g.Vertex("ghost") == graph.NoVertex {
		t.Fatal("dictionary-only vertex committed mid-compaction vanished after the swap")
	}
	if _, ok := g.LabelByName("ghost-label"); !ok {
		t.Fatal("dictionary-only label committed mid-compaction vanished after the swap")
	}
	// The mid-compaction batch stays as a fresh overlay on the new
	// base; a second compaction folds it and everything still holds.
	if _, err := eng.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	g = eng.KG().Graph()
	if g.HasOverlay() || g.Vertex("ghost") == graph.NoVertex {
		t.Fatalf("second compaction lost state: overlay=%v", g.HasOverlay())
	}
}
