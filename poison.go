package lscr

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Fail-stop durability contract. Once a WAL or segment write fails, the
// durable log can no longer be trusted to contain what the engine would
// acknowledge next, so the engine poisons itself rather than limp into
// a state a restart cannot reproduce: every subsequent Apply/Compact
// returns ErrPoisoned, while reads keep serving the last published
// epoch — that epoch was fully durable before it became visible, so
// serving it is always safe. Recovery is a process restart: Open
// replays the intact segment+WAL prefix and lands exactly on the last
// acknowledged state.

// ErrPoisoned marks an engine that hit a WAL or segment write failure
// and has entered fail-stop mode: mutations and compactions are
// refused, reads continue on the last published epoch, and a restart
// (Open on the same directory) recovers the durable prefix. Returned
// errors wrap the original write failure; use Poisoned to inspect it.
var ErrPoisoned = errors.New("lscr: engine poisoned by write failure")

// poisonState records the first write failure; later failures keep the
// original cause (first poison wins — it is the one that explains the
// rest).
type poisonState struct {
	cause error
	at    time.Time
}

type poisonPointer = atomic.Pointer[poisonState]

// poison enters fail-stop mode. The first caller's error is kept as the
// cause; concurrent or later poisonings are no-ops.
func (e *Engine) poison(cause error) {
	e.poisonp.CompareAndSwap(nil, &poisonState{cause: cause, at: time.Now()})
}

// fatal poisons the engine with err and returns it — the write-error
// exit path of the commit and compaction code.
func (e *Engine) fatal(err error) error {
	e.poison(err)
	return err
}

// Poisoned reports the engine's fail-stop state: nil while healthy,
// otherwise the original write failure that poisoned it. The server
// surfaces it on /healthz, and the gateway routes writes away from a
// poisoned writer.
func (e *Engine) Poisoned() error {
	if p := e.poisonp.Load(); p != nil {
		return p.cause
	}
	return nil
}

// poisonedErr builds the typed refusal Apply/Compact return after
// poisoning: errors.Is(err, ErrPoisoned) holds and the message carries
// the original cause and when it struck.
func (e *Engine) poisonedErr() error {
	p := e.poisonp.Load()
	if p == nil {
		return nil
	}
	return fmt.Errorf("%w (cause at %s: %v)", ErrPoisoned, p.at.Format(time.RFC3339), p.cause)
}
