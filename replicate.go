package lscr

import (
	"context"
	"errors"
	"fmt"
	"os"

	"lscr/internal/failpoint"
	"lscr/internal/graph"
	core "lscr/internal/lscr"
	"lscr/internal/segment"
)

// fpReplicateRead is the replication-feed failpoint: armed, it fails
// ReplicationRead before the log scan, which the follower sees as a
// transient feed error (it retries, it never corrupts its cursor).
const fpReplicateRead = "replicate-read"

// Replication.
//
// A persistent engine (Open/Create) doubles as a replication source:
// its WAL is an epoch-sequenced log of every committed batch and every
// compaction seal, so the epoch number is the replication cursor.
// ReplicationRead streams the intact records above a cursor;
// SegmentFile hands out the newest sealed segment for bootstrap. A
// follower process opens that segment image with OpenReplicaSegment and
// replays the feed through ApplyReplicated/SealReplicated — the same
// staging, interning and index-maintenance path Apply runs — so for
// every replicated epoch the follower's vertex and label IDs, and
// therefore its answers, are bit-identical to the writer's at that
// epoch (the cluster e2e tier pins this against a single-engine
// oracle). A replica engine refuses direct Apply/Compact: its epochs
// advance only with the feed.
//
// The feed carries name-level mutations, not physical pages, which is
// what makes replay through the normal commit path possible — and what
// makes the bit-identity argument one about determinism of the commit
// path rather than about byte-copying.

// Replication errors.
var (
	// ErrReplicaLag reports a replication cursor below the WAL horizon:
	// a compaction rotated the requested records away, so the follower
	// must re-bootstrap from the newest segment instead of tailing.
	ErrReplicaLag = errors.New("lscr: replication cursor below the WAL horizon; re-bootstrap from the newest segment")
	// ErrReplicaWrite marks a direct Apply or Compact on a replica
	// engine, whose state advances only through the replication feed.
	ErrReplicaWrite = errors.New("lscr: replica engines take writes only through the replication feed")
	// ErrNotReplica marks ApplyReplicated/SealReplicated on an engine
	// that is not a replica (the writer must use Apply).
	ErrNotReplica = errors.New("lscr: not a replica engine")
	// ErrReplicaCursor marks a replicated record that does not fit the
	// replica's state — wrong epoch, a batch that fails to stage, or a
	// no-op batch the writer would never have logged. The follower's
	// response is to re-bootstrap, never to guess.
	ErrReplicaCursor = errors.New("lscr: replicated record does not extend the replica's epoch")
	// ErrNoReplicationLog marks ReplicationRead/SegmentFile on an
	// in-memory engine, which has no log to replicate from.
	ErrNoReplicationLog = errors.New("lscr: engine is not persistent; nothing to replicate from")
)

// MaxReplicationBatches bounds the records one ReplicationRead returns;
// a lagging follower drains the rest on its next poll.
const MaxReplicationBatches = 4096

// ReplicationBatch is one record of the replication feed: the epoch it
// publishes and either the batch's mutations or a seal marker (the
// writer compacted; the follower folds its overlay at the same epoch).
type ReplicationBatch struct {
	Epoch     uint64     `json:"epoch"`
	Seal      bool       `json:"seal,omitempty"`
	Mutations []Mutation `json:"mutations,omitempty"`
}

// OpenReplicaSegment assembles a replica engine over a segment image
// fetched from the writer (the bytes of the writer's newest sealed
// segment file, typically via the server's /v1/segment endpoint). data
// must stay live and unmodified for the engine's lifetime — the graph
// arrays and dictionary strings alias it.
//
// The segment's recorded index parameters override the corresponding
// Options fields (as Open does), so index rebuilds at seal points match
// the writer's bit-for-bit. Automatic compaction is forced off: a
// replica folds its overlay exactly when the feed says the writer did,
// keeping the epoch sequences aligned. The engine starts at the
// segment's base epoch; tail the writer's feed from there.
func OpenReplicaSegment(data []byte, opts Options) (*Engine, error) {
	seg, err := segment.OpenBytes(data)
	if err != nil {
		return nil, err
	}
	opts.CompactAfter = -1
	opts.DataDir = ""
	e := &Engine{opts: opts, replica: true}
	var idx *core.LocalIndex
	if !opts.SkipIndex {
		e.opts.Landmarks, e.opts.IndexSeed = seg.IndexK, seg.IndexSeed
		idx = seg.Index
		if idx == nil {
			idx = core.NewLocalIndex(seg.Graph, e.indexParams())
		}
	}
	e.ep.Store(e.newEpoch(seg.BaseSeq, seg.Graph, idx, seg.BaseSeq))
	return e, nil
}

// ApplyReplicated commits one replicated batch: epoch seq's mutations
// as shipped by the writer's feed. It runs the same commit path as
// Apply (staging, interning order, index maintenance), which is what
// makes the replica's IDs and answers at epoch seq bit-identical to
// the writer's. seq must extend the replica's current epoch by exactly
// one; anything else — including a batch that fails to stage — returns
// an error wrapping ErrReplicaCursor and leaves the engine unchanged.
func (e *Engine) ApplyReplicated(ctx context.Context, seq uint64, muts []Mutation) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if !e.replica {
		return ErrNotReplica
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.ep.Load()
	if seq != cur.seq+1 {
		return fmt.Errorf("%w: batch at epoch %d onto epoch %d", ErrReplicaCursor, seq, cur.seq)
	}
	g, idx, err := e.commitMutations(cur, muts)
	if err != nil {
		return fmt.Errorf("%w: batch at epoch %d: %v", ErrReplicaCursor, seq, err)
	}
	if g == cur.kg.g {
		// The writer never logs no-op batches; receiving one means the
		// feed does not describe the writer's history.
		return fmt.Errorf("%w: batch at epoch %d is a no-op", ErrReplicaCursor, seq)
	}
	e.publishEpoch(e.newEpoch(seq, g, idx, cur.idxSeq))
	return nil
}

// SealReplicated mirrors a writer compaction at epoch seq: the replica
// folds its overlay into a fresh base CSR and rebuilds the local index
// with the writer's recorded parameters, publishing the result at the
// same epoch the writer's swap did (a seal bumps the epoch by exactly
// one on both sides, so the sequences stay aligned). With no overlay
// accumulated — a seal arriving right after bootstrap — only the epoch
// advances.
func (e *Engine) SealReplicated(ctx context.Context, seq uint64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if !e.replica {
		return ErrNotReplica
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.ep.Load()
	if seq != cur.seq+1 {
		return fmt.Errorf("%w: seal at epoch %d onto epoch %d", ErrReplicaCursor, seq, cur.seq)
	}
	g, idx := cur.kg.g, cur.idx
	if g.HasOverlay() {
		g = g.Compact()
		if idx != nil {
			idx = core.NewLocalIndex(g, e.indexParams())
		}
	}
	e.publishEpoch(e.newEpoch(seq, g, idx, cur.idxSeq))
	return nil
}

// commitMutations stages muts onto cur's view and derives the
// maintained index — the commit core shared by WAL replay and
// replication apply (Apply keeps its own copy because it also counts
// per-op results). The returned graph equals cur's when every mutation
// was an idempotent no-op; the caller decides whether that is legal.
func (e *Engine) commitMutations(cur *epoch, muts []Mutation) (*graph.Graph, *core.LocalIndex, error) {
	d := graph.NewDelta(cur.kg.g)
	for i, m := range muts {
		if err := stage(d, m); err != nil {
			return nil, nil, fmt.Errorf("mutation %d: %w", i, err)
		}
	}
	g, err := d.Commit()
	if err != nil {
		return nil, nil, err
	}
	if g == cur.kg.g {
		return g, cur.idx, nil
	}
	idx := cur.idx
	if idx != nil && !e.opts.NoIndexMaintenance && idx.ExactFor(cur.kg.g) {
		var mb core.MaintBatch
		idx, mb = idx.ApplyMutations(g, d.EdgeOps())
		e.maintBatches.Add(1)
		e.maintExtended.Add(int64(mb.LandmarksExtended))
		e.maintEntries.Add(int64(mb.EntriesAdded))
		e.maintInvalidated.Add(int64(mb.LandmarksInvalidated))
	}
	return g, idx, nil
}

// ReplicationRead returns up to max feed records with epochs above
// from, oldest first (max <= 0 selects MaxReplicationBatches). An
// empty result means the cursor is current — callers long-poll via
// EpochPublished. ErrReplicaLag means the records were rotated away by
// a compaction and the follower must re-bootstrap from SegmentFile.
//
// The read scans the log file independently of the appender, so it
// never blocks Apply; a record the scan sees is already durable in the
// log (Apply writes before it publishes), so nothing shipped here can
// be lost to a writer crash.
func (e *Engine) ReplicationRead(from uint64, max int) ([]ReplicationBatch, error) {
	if e.store == nil {
		return nil, ErrNoReplicationLog
	}
	if fp := failpoint.Eval(fpReplicateRead); fp != nil {
		return nil, fp
	}
	if max <= 0 || max > MaxReplicationBatches {
		max = MaxReplicationBatches
	}
	recs, err := segment.ReadWALAfter(segment.WALPath(e.store.dir), from)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		if e.current().seq > from {
			// Epochs above the cursor exist but their records are gone:
			// everything up to the current state was folded into a
			// segment and the log rotated past the cursor.
			return nil, ErrReplicaLag
		}
		return nil, nil
	}
	if len(recs) < max {
		max = len(recs)
	}
	out := make([]ReplicationBatch, 0, max)
	expected := from
	for _, rec := range recs {
		if len(out) == max {
			break
		}
		if rec.Seq != expected+1 {
			// The log is contiguous by construction; the cursor starting
			// below its horizon (or a rotation racing the scan) shows up
			// as a gap. Either way the follower re-bootstraps rather than
			// receive a torn feed.
			return nil, ErrReplicaLag
		}
		b := ReplicationBatch{Epoch: rec.Seq}
		switch rec.Kind {
		case segment.RecordBatch:
			ops, err := segment.DecodeOps(rec.Payload)
			if err != nil {
				return nil, fmt.Errorf("lscr: replication read at epoch %d: %w", rec.Seq, err)
			}
			muts, err := walMutations(ops)
			if err != nil {
				return nil, fmt.Errorf("lscr: replication read at epoch %d: %w", rec.Seq, err)
			}
			b.Mutations = muts
		case segment.RecordSeal:
			b.Seal = true
		default:
			return nil, fmt.Errorf("lscr: %w: wal record kind %d at epoch %d", ErrCorruptStore, rec.Kind, rec.Seq)
		}
		out = append(out, b)
		expected = rec.Seq
	}
	return out, nil
}

// SegmentFile opens the newest sealed segment for streaming to a
// bootstrapping follower and returns its base epoch — the cursor the
// follower tails the feed from. The returned file descriptor stays
// readable even if a concurrent compaction unlinks the segment
// mid-transfer; the caller closes it.
func (e *Engine) SegmentFile() (*os.File, uint64, error) {
	if e.store == nil {
		return nil, 0, ErrNoReplicationLog
	}
	base := e.store.segSeq.Load()
	f, err := os.Open(segment.PathFor(e.store.dir, base))
	if err != nil {
		// A compaction can remove the segment between the load and the
		// open; the replacement is already published, so retry against
		// the fresh base once.
		base = e.store.segSeq.Load()
		f, err = os.Open(segment.PathFor(e.store.dir, base))
	}
	if err != nil {
		return nil, 0, err
	}
	return f, base, nil
}

// EpochPublished returns a channel closed by the next epoch publish
// (Apply commit, compaction swap, or replicated apply/seal) — the
// wake-up behind the server's /v1/replicate long poll. Each publish
// consumes the channel; callers re-arm by calling EpochPublished again
// after it fires.
func (e *Engine) EpochPublished() <-chan struct{} {
	for {
		if ch := e.pubCh.Load(); ch != nil {
			return *ch
		}
		fresh := make(chan struct{})
		if e.pubCh.CompareAndSwap(nil, &fresh) {
			return fresh
		}
	}
}

// publishEpoch is the single post-construction epoch publish point: it
// swaps the serving epoch and wakes EpochPublished waiters.
func (e *Engine) publishEpoch(ep *epoch) {
	e.ep.Store(ep)
	if ch := e.pubCh.Swap(nil); ch != nil {
		close(*ch)
	}
}
