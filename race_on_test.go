//go:build race

package lscr

// raceEnabled reports whether the race detector is compiled in; the
// timing-budget tests skip under it (the detector slows execution by
// an order of magnitude, so wall-clock budgets stop meaning anything).
const raceEnabled = true
