package lscr

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Kill-point coverage for the two crash windows *inside* a persistent
// compaction, produced deterministically through the compactBarrier and
// sealBarrier seams:
//
//   - window A (compactBarrier): the rebuilt segment image exists only
//     as a .tmp file and the WAL carries no seal record. Recovery must
//     ignore the stray temp and replay the full batch tail onto the old
//     segment — the pre-compaction state, answer-identical to the live
//     engine.
//   - window B (sealBarrier): the seal record is durable and the epoch
//     swapped, but the image was never renamed into place. Recovery
//     replays the batches and then the seal — an epoch bump on the
//     replayed graph — landing on the exact post-compaction epoch.
//
// The name carries "Mutate" so the race-enabled CI tier runs it.
func TestMutateCrashRecoveryCompactionWindows(t *testing.T) {
	kg, err := Load(strings.NewReader(`
<a> <l> <b> .
<b> <l> <c> .
<c> <m> <d> .
<d> <l> <a> .
<e> <m> <b> .
`))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := Options{Landmarks: 4, IndexSeed: 1, CompactAfter: -1}
	eng, err := Create(dir, kg, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer eng.Close()
	ctx := context.Background()

	batches := [][]Mutation{
		{
			{Op: OpAddEdge, Subject: "d", Label: "l", Object: "e"},
			{Op: OpDeleteEdge, Subject: "c", Label: "m", Object: "d"},
		},
		{
			{Op: OpAddEdge, Subject: "e", Label: "l", Object: "f"},
			{Op: OpAddEdge, Subject: "b", Label: "m", Object: "f"},
		},
	}
	for i, batch := range batches {
		if _, err := eng.Apply(ctx, batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	var crashA, crashB string
	compactBarrier = func() {
		compactBarrier = nil
		crashA = persistCopyDir(t, dir)
	}
	sealBarrier = func() {
		sealBarrier = nil
		crashB = persistCopyDir(t, dir)
	}
	defer func() { compactBarrier, sealBarrier = nil, nil }()
	if did, err := eng.Compact(ctx); err != nil || !did {
		t.Fatalf("Compact = %v, %v", did, err)
	}
	if crashA == "" || crashB == "" {
		t.Fatal("barriers did not fire")
	}

	liveEpoch := eng.Epoch().Epoch
	reqs := persistCrashRequests()
	want := eng.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2})

	for _, tc := range []struct {
		name      string
		dir       string
		wantEpoch uint64
	}{
		{"before-seal", crashA, liveEpoch - 1},
		{"after-seal", crashB, liveEpoch},
	} {
		rec, err := Open(tc.dir, opts)
		if err != nil {
			t.Fatalf("%s: recovery Open: %v", tc.name, err)
		}
		if got := rec.Epoch().Epoch; got != tc.wantEpoch {
			rec.Close()
			t.Fatalf("%s: recovered epoch %d, want %d", tc.name, got, tc.wantEpoch)
		}
		got := rec.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2})
		for i := range reqs {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Errorf("%s: request %d error mismatch: %v vs %v", tc.name, i, got[i].Err, want[i].Err)
				continue
			}
			if got[i].Err == nil && got[i].Response.Reachable != want[i].Response.Reachable {
				t.Errorf("%s: request %d (%v): reachable %v, live says %v",
					tc.name, i, reqs[i].Algorithm, got[i].Response.Reachable, want[i].Response.Reachable)
			}
		}
		// The recovered engine keeps accepting durable writes.
		if _, err := rec.Apply(ctx, []Mutation{{Op: OpAddEdge, Subject: "f", Label: "m", Object: "a"}}); err != nil {
			t.Errorf("%s: Apply after recovery: %v", tc.name, err)
		} else if got := rec.Epoch().Epoch; got != tc.wantEpoch+1 {
			t.Errorf("%s: post-recovery Apply epoch %d, want %d", tc.name, got, tc.wantEpoch+1)
		}
		rec.Close()
		if t.Failed() {
			t.FailNow()
		}
	}
}

func persistCrashRequests() []Request {
	pairs := [][2]string{{"a", "d"}, {"a", "f"}, {"e", "c"}, {"d", "b"}}
	algos := []Algorithm{INS, UIS, UISStar, Conjunctive}
	var reqs []Request
	for i, p := range pairs {
		for _, algo := range algos {
			req := Request{Source: p[0], Target: p[1], Algorithm: algo}
			if i%2 == 0 {
				req.Labels = []string{"l"}
			}
			if algo == Conjunctive {
				req.Constraints = []string{`SELECT ?x WHERE { ?x <l> <b>. }`}
			} else {
				req.Constraint = `SELECT ?x WHERE { <a> <l> ?x. }`
			}
			reqs = append(reqs, req)
		}
	}
	return reqs
}

func persistCopyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		in, err := os.Open(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}
