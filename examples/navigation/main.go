// Navigation models the paper's traffic-navigation use case (§1 cites
// finding shortest paths with user requirements [8]): a road network
// whose edges are labelled by road type, with LSCR queries like "can I
// drive from Home to the Airport using only highways and arterials, with
// a fuel station that takes my charge card somewhere along the way?".
//
//	go run ./examples/navigation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"lscr"
)

func main() {
	kg, err := lscr.Load(strings.NewReader(buildRoadNetwork()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d junctions/POIs, %d segments\n", kg.NumVertices(), kg.NumEdges())
	eng := lscr.NewEngine(kg, lscr.Options{})

	drive := func(desc string, labels []string, constraint string) {
		res, path, err := eng.ReachWithWitness(lscr.Query{
			Source: "Home", Target: "Airport",
			Labels:     labels,
			Constraint: constraint,
			Algorithm:  lscr.INS,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Reachable {
			fmt.Printf("%s: no route\n", desc)
			return
		}
		fmt.Printf("%s:\n  route: %s\n  stop:  %s\n", desc, path, path.Satisfying)
	}

	// A junction with a fuel station accepting ChargeCardA.
	fuelStop := `SELECT ?x WHERE { ?x <has-poi> ?st. ?st <accepts> <ChargeCardA>. }`

	drive("highways+arterials with a compatible fuel stop",
		[]string{"highway", "arterial", "has-poi", "accepts"}, fuelStop)
	drive("highways only with a compatible fuel stop",
		[]string{"highway", "has-poi", "accepts"}, fuelStop)

	// Avoiding toll roads entirely (the toll label excluded).
	drive("no toll roads, any fuel stop",
		[]string{"highway", "arterial", "residential", "has-poi", "accepts"},
		`SELECT ?x WHERE { ?x <has-poi> ?st. ?st <type-of> <FuelStation>. }`)
}

// buildRoadNetwork lays out a grid of junctions J_r_c with a highway
// spine, arterial rows, residential columns and a few toll shortcuts;
// fuel stations hang off junctions via has-poi edges.
func buildRoadNetwork() string {
	var b strings.Builder
	add := func(s, p, o string) { fmt.Fprintf(&b, "<%s> <%s> <%s> .\n", s, p, o) }
	const rows, cols = 6, 8
	j := func(r, c int) string { return fmt.Sprintf("J_%d_%d", r, c) }

	add("Home", "residential", j(0, 0))
	add("Home", "arterial", j(0, 0)) // the main road out
	add(j(rows-1, cols-1), "arterial", "Airport")

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				label := "arterial"
				if r == rows/2 {
					label = "highway" // the spine
				}
				add(j(r, c), label, j(r, c+1))
			}
			if r+1 < rows {
				add(j(r, c), "residential", j(r+1, c))
			}
		}
	}
	// On-ramps: residential feeders onto the spine, plus a toll shortcut.
	add(j(0, 0), "arterial", j(rows/2, 0))
	add(j(rows/2, cols-1), "arterial", j(rows-1, cols-1))
	add("Home", "toll", j(rows-1, cols-1))

	// Fuel stations, some accepting ChargeCardA.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6; i++ {
		st := fmt.Sprintf("Fuel%d", i)
		add(j(rng.Intn(rows), rng.Intn(cols)), "has-poi", st)
		add(st, "type-of", "FuelStation")
		if i%2 == 0 {
			add(st, "accepts", "ChargeCardA")
		} else {
			add(st, "accepts", "ChargeCardB")
		}
	}
	// Put one compatible station right on the highway spine so the
	// highways-only query has a chance.
	add(j(rows/2, 3), "has-poi", "FuelSpine")
	add("FuelSpine", "type-of", "FuelStation")
	add("FuelSpine", "accepts", "ChargeCardA")
	return b.String()
}
