// Quickstart: build a tiny knowledge graph in memory and answer one LSCR
// query through the unified v1 API (Engine.Query) with each algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"lscr"
)

// The running example of the paper (Figure 3): five vertices, five edge
// labels, and the substructure constraint S0 = "?x is a friend of v3, and
// v3 likes something".
const kgText = `
<v0> <friendOf> <v1> .
<v0> <advisorOf> <v2> .
<v0> <likes> <v2> .
<v1> <friendOf> <v3> .
<v2> <friendOf> <v3> .
<v1> <likes> <v4> .
<v3> <likes> <v4> .
<v2> <follows> <v4> .
<v4> <hates> <v1> .
`

func main() {
	kg, err := lscr.Load(strings.NewReader(kgText))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d vertices, %d edges, %d labels\n",
		kg.NumVertices(), kg.NumEdges(), kg.NumLabels())

	eng := lscr.NewEngine(kg, lscr.Options{})
	ctx := context.Background()
	req := lscr.Request{
		Source: "v0",
		Target: "v4",
		Labels: []string{"likes", "follows"},
		// A vertex on the path must be a friend of v3, where v3 likes
		// something — the S0 of the paper's Figure 3(b).
		Constraint: `SELECT ?x WHERE { ?x <friendOf> <v3>. <v3> <likes> ?y. }`,
		// Real deployments set a deadline; cancellation aborts the
		// search mid-flight instead of running it to completion.
		Timeout: time.Second,
	}
	for _, algo := range []lscr.Algorithm{lscr.UIS, lscr.UISStar, lscr.INS} {
		req.Algorithm = algo
		resp, err := eng.Query(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5v reachable=%v elapsed=%v passed=%d\n",
			algo, resp.Reachable, resp.Elapsed, resp.Stats.PassedVertices)
	}

	// Asking for the evidence path costs one more flag.
	req.Algorithm = lscr.INS
	req.WantWitness = true
	resp, err := eng.Query(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness: %s (satisfying vertex: %s)\n",
		resp.Witness, resp.Witness.SatisfiedBy[0])

	// Tightening the label constraint to {likes} breaks the only valid
	// path (v0 -likes-> v2 -follows-> v4, with v2 satisfying S0):
	req.Labels = []string{"likes"}
	req.WantWitness = false
	resp, err = eng.Query(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with labels {likes} only: reachable=%v\n", resp.Reachable)
}
