// Academic runs the paper's Table 3 substructure constraints (S1–S5)
// against a generated LUBM-style university knowledge graph, asking
// reachability questions a registrar or auditor might pose — e.g. "is
// there an organisational path from this graduate student to that
// university that passes someone whose research interest is Research12?".
//
//	go run ./examples/academic
package main

import (
	"fmt"
	"log"

	"lscr"
	"lscr/internal/lubm"
)

func main() {
	cfg := lubm.DefaultConfig(1)
	kg := lscr.FromGraph(lubm.Generate(cfg))
	fmt.Printf("LUBM-style KG: %d vertices, %d edges, %d labels\n",
		kg.NumVertices(), kg.NumEdges(), kg.NumLabels())

	eng := lscr.NewEngine(kg, lscr.Options{})
	if st, ok := eng.Index(); ok {
		fmt.Printf("local index: %d landmarks, %d entries, %d KB\n\n",
			st.Landmarks, st.Entries, st.SizeBytes/1024)
	}

	// How selective is each Table 3 constraint on this KG?
	for _, c := range lubm.Constraints() {
		vs, err := eng.Select(c.SPARQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: |V(S,G)| = %d  (%s)\n", c.Name, len(vs), c.Blurb)
	}
	fmt.Println()

	// An auditor's question: can GraduateStudent4 of Department0 reach
	// University0 through membership/employment edges, passing someone
	// interested in Research12 (S1)?
	s1, _ := lubm.Constraint("S1")
	labels := []string{
		"ub:memberOf", "ub:advisor", "ub:worksFor",
		"ub:subOrganizationOf", "ub:hasMember", "ub:researchInterest",
	}
	for _, algo := range []lscr.Algorithm{lscr.UIS, lscr.UISStar, lscr.INS} {
		res, err := eng.Reach(lscr.Query{
			Source:     "GraduateStudent4.Department0.University0",
			Target:     "University0",
			Labels:     labels,
			Constraint: s1.SPARQL,
			Algorithm:  algo,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5v audit path exists=%v (%v, %d vertices)\n",
			algo, res.Reachable, res.Elapsed, res.Stats.PassedVertices)
	}

	// The same question restricted to course-taking edges only has no
	// path to the university at all.
	res, err := eng.Reach(lscr.Query{
		Source:     "GraduateStudent4.Department0.University0",
		Target:     "University0",
		Labels:     []string{"ub:takesCourse", "ub:researchInterest"},
		Constraint: s1.SPARQL,
		Algorithm:  lscr.INS,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("course-only path exists=%v\n", res.Reachable)
}
