// Fincrime reproduces the paper's §1 motivating scenario: verifying an
// economic-criminal relationship between Suspect C and Suspect P, given
// the tip "an indirect transaction from C to P occurred in April 2019, in
// which one of the middlemen and Amy are married".
//
// The KG models people as vertices; edges are either account transfers
// labelled with a coarse timestamp ("transfer2019-04") or social
// relationships ("married-to", "friend-of", "parent-of"). The LSCR query
// restricts paths to April-2019 transfers plus social edges, and demands
// a path vertex married to Amy.
//
//	go run ./examples/fincrime
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"lscr"
)

func main() {
	kg, err := lscr.Load(strings.NewReader(buildKG()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("financial KG: %d people/accounts, %d edges\n", kg.NumVertices(), kg.NumEdges())

	eng := lscr.NewEngine(kg, lscr.Options{})

	// Who is married to Amy? (the substructure constraint, standalone)
	spouses, err := eng.Select(`SELECT ?x WHERE { ?x <married-to> <Amy>. }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("married to Amy: %v\n", spouses)

	investigate := func(label string) {
		res, path, err := eng.ReachWithWitness(lscr.Query{
			Source:     "SuspectC",
			Target:     "SuspectP",
			Labels:     []string{label, "married-to"},
			Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
			Algorithm:  lscr.INS,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Reachable {
			fmt.Printf("window %s: no evidence (checked in %v, %d vertices touched)\n",
				label, res.Elapsed, res.Stats.PassedVertices)
			return
		}
		fmt.Printf("window %s: SUSPICIOUS (checked in %v)\n", label, res.Elapsed)
		fmt.Printf("  evidence chain: %s\n", path)
		fmt.Printf("  middleman married to Amy: %s\n", path.Satisfying)
	}
	// April 2019: the tip's window — the chain C -> X -> A -> P exists
	// and middleman X is married to Amy.
	investigate("transfer2019-04")
	// March 2019: transfers exist but none pass Amy's spouse.
	investigate("transfer2019-03")
}

// buildKG synthesises a small money-flow network around the hand-crafted
// evidence chain.
func buildKG() string {
	var b strings.Builder
	add := func(s, p, o string) { fmt.Fprintf(&b, "<%s> <%s> <%s> .\n", s, p, o) }

	// The evidence chain from the paper's Figure 1.
	add("SuspectC", "transfer2019-04", "MiddlemanX")
	add("MiddlemanX", "transfer2019-04", "AccountA")
	add("AccountA", "transfer2019-04", "SuspectP")
	add("MiddlemanX", "married-to", "Amy")
	add("Amy", "married-to", "MiddlemanX")

	// A March chain that does not pass Amy's spouse.
	add("SuspectC", "transfer2019-03", "CleanBroker")
	add("CleanBroker", "transfer2019-03", "SuspectP")

	// Background noise: a few hundred random transfers and relations.
	rng := rand.New(rand.NewSource(7))
	months := []string{"transfer2019-03", "transfer2019-04", "transfer2019-05"}
	rels := []string{"friend-of", "parent-of"}
	person := func(i int) string { return fmt.Sprintf("P%03d", i) }
	for i := 0; i < 120; i++ {
		add(person(rng.Intn(80)), months[rng.Intn(len(months))], person(rng.Intn(80)))
	}
	for i := 0; i < 40; i++ {
		add(person(rng.Intn(80)), rels[rng.Intn(len(rels))], person(rng.Intn(80)))
	}
	// A couple among the noise (not Amy's).
	add("P001", "married-to", "P002")
	add("P002", "married-to", "P001")
	return b.String()
}
