package lscr

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lscr/internal/failpoint"
	"lscr/internal/segment"
)

// Fail-stop contract (see poison.go): an injected WAL/segment write
// error must surface as the write error itself, pin the engine in
// ErrPoisoned for every later Apply/Compact, leave reads serving the
// last published epoch, and be fully recoverable by a restart. The
// names carry "Failstop" so the race-enabled CI tier runs them.

func failstopEngine(t *testing.T) (*Engine, string, Options) {
	t.Helper()
	failpoint.DisarmAll()
	t.Cleanup(failpoint.DisarmAll)
	kg, err := Load(strings.NewReader(`
<a> <l> <b> .
<b> <l> <c> .
<c> <m> <d> .
<d> <l> <a> .
<e> <m> <b> .
`))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := Options{Landmarks: 4, IndexSeed: 1, CompactAfter: -1}
	eng, err := Create(dir, kg, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return eng, dir, opts
}

func failstopCompare(t *testing.T, name string, got, want []QueryOutcome, reqs []Request) {
	t.Helper()
	for i := range reqs {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("%s: request %d error mismatch: %v vs %v", name, i, got[i].Err, want[i].Err)
		}
		if got[i].Err == nil && (got[i].Response.Reachable != want[i].Response.Reachable ||
			got[i].Response.Stats != want[i].Response.Stats) {
			t.Fatalf("%s: request %d diverged: %+v vs %+v", name, i, got[i].Response, want[i].Response)
		}
	}
}

func TestFailstopApplyWALErrorPoisonsAndRecovers(t *testing.T) {
	eng, dir, opts := failstopEngine(t)
	defer eng.Close()
	ctx := context.Background()

	if _, err := eng.Apply(ctx, []Mutation{{Op: OpAddEdge, Subject: "d", Label: "l", Object: "e"}}); err != nil {
		t.Fatalf("batch 1: %v", err)
	}
	ackedEpoch := eng.Epoch().Epoch
	reqs := persistCrashRequests()
	want := eng.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2})

	// The write error itself comes back — not ErrPoisoned — and nothing
	// is published.
	if err := failpoint.Set(segment.FPWALAppend, "error-once"); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Apply(ctx, []Mutation{{Op: OpAddEdge, Subject: "e", Label: "l", Object: "f"}})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("failing Apply = %v, want the injected write error", err)
	}
	if errors.Is(err, ErrPoisoned) {
		t.Fatalf("failing Apply returned ErrPoisoned, want the raw write error: %v", err)
	}
	if got := eng.Epoch().Epoch; got != ackedEpoch {
		t.Fatalf("failed Apply advanced epoch to %d, want %d", got, ackedEpoch)
	}

	// Every later mutation is refused with the typed sentinel.
	if _, err := eng.Apply(ctx, []Mutation{{Op: OpAddEdge, Subject: "b", Label: "m", Object: "f"}}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Apply after poison = %v, want ErrPoisoned", err)
	}
	if _, err := eng.Compact(ctx); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Compact after poison = %v, want ErrPoisoned", err)
	}
	if cause := eng.Poisoned(); !errors.Is(cause, failpoint.ErrInjected) {
		t.Fatalf("Poisoned() = %v, want the injected cause", cause)
	}

	// Reads keep serving the last published epoch, bit-identically.
	failstopCompare(t, "poisoned reads", eng.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2}), want, reqs)

	// Restart recovers the acknowledged prefix exactly and is writable.
	failpoint.DisarmAll()
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer rec.Close()
	if got := rec.Epoch().Epoch; got != ackedEpoch {
		t.Fatalf("recovered epoch %d, want %d", got, ackedEpoch)
	}
	failstopCompare(t, "recovered reads", rec.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2}), want, reqs)
	if rec.Poisoned() != nil {
		t.Fatalf("recovered engine still poisoned: %v", rec.Poisoned())
	}
	if _, err := rec.Apply(ctx, []Mutation{{Op: OpAddEdge, Subject: "e", Label: "l", Object: "f"}}); err != nil {
		t.Fatalf("Apply after recovery: %v", err)
	}
}

func TestFailstopWALSyncErrorRecoversDurableRecord(t *testing.T) {
	// An fsync that fails *after* the record bytes reached the file is
	// the ambiguous window: the batch was never acknowledged, but a
	// restart may legitimately find it intact and replay it. The
	// contract is prefix-exactness, so recovery must land either on the
	// acknowledged epoch or on acknowledged+1 with exactly that batch
	// applied — never anything else.
	failpoint.DisarmAll()
	t.Cleanup(failpoint.DisarmAll)
	const triples = `
<a> <l> <b> .
<b> <l> <c> .
<c> <m> <d> .
<d> <l> <a> .
<e> <m> <b> .
`
	kg, err := Load(strings.NewReader(triples))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := Options{Landmarks: 4, IndexSeed: 1, CompactAfter: -1}
	eng, err := Create(dir, kg, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer eng.Close()
	ctx := context.Background()

	batch1 := []Mutation{{Op: OpAddEdge, Subject: "d", Label: "l", Object: "e"}}
	pending := []Mutation{{Op: OpAddEdge, Subject: "e", Label: "l", Object: "f"}}
	if _, err := eng.Apply(ctx, batch1); err != nil {
		t.Fatal(err)
	}
	ackedEpoch := eng.Epoch().Epoch

	if err := failpoint.Set(segment.FPWALSync, "error-once"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(ctx, pending); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("failing Apply = %v, want injected error", err)
	}
	if _, err := eng.Apply(ctx, pending); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Apply after poison = %v, want ErrPoisoned", err)
	}

	failpoint.DisarmAll()
	eng.Close()
	rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer rec.Close()
	reqs := persistCrashRequests()

	// An in-memory oracle built from the same triples: the mutate
	// equivalence tier pins that the commit path is deterministic, so it
	// answers exactly as the writer would at each epoch.
	oracleKG, err := Load(strings.NewReader(triples))
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewEngine(oracleKG, opts)
	if _, err := oracle.Apply(ctx, batch1); err != nil {
		t.Fatal(err)
	}

	switch got := rec.Epoch().Epoch; got {
	case ackedEpoch:
		// The record did not survive; the acknowledged prefix is served.
	case ackedEpoch + 1:
		// The record survived its failed fsync; recovery replayed it.
		if _, err := oracle.Apply(ctx, pending); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("recovered epoch %d, want %d or %d", got, ackedEpoch, ackedEpoch+1)
	}
	failstopCompare(t, "recovered reads",
		rec.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2}),
		oracle.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2}), reqs)
}

func TestFailstopCompactSealErrorPoisonsAndRecovers(t *testing.T) {
	eng, dir, opts := failstopEngine(t)
	defer eng.Close()
	ctx := context.Background()

	batches := [][]Mutation{
		{{Op: OpAddEdge, Subject: "d", Label: "l", Object: "e"}},
		{{Op: OpAddEdge, Subject: "e", Label: "l", Object: "f"}},
	}
	for i, b := range batches {
		if _, err := eng.Apply(ctx, b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	ackedEpoch := eng.Epoch().Epoch
	reqs := persistCrashRequests()
	want := eng.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2})

	// The rename that publishes the sealed image fails: the epoch has
	// already swapped in memory (the seal record is durable), so reads
	// advance but the engine must fail stop for writes.
	if err := failpoint.Set(segment.FPSegRename, "error-once"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Compact(ctx); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Compact = %v, want injected error", err)
	}
	if _, err := eng.Apply(ctx, []Mutation{{Op: OpAddEdge, Subject: "b", Label: "m", Object: "f"}}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Apply after failed seal = %v, want ErrPoisoned", err)
	}
	failstopCompare(t, "poisoned reads", eng.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2}), want, reqs)

	// Restart: the seal record is durable but the image never appeared —
	// crash window B. Recovery replays the batches plus the seal bump
	// and must answer identically at the post-seal epoch.
	failpoint.DisarmAll()
	eng.Close()
	rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer rec.Close()
	if got := rec.Epoch().Epoch; got != ackedEpoch+1 {
		t.Fatalf("recovered epoch %d, want %d (batches + durable seal)", got, ackedEpoch+1)
	}
	failstopCompare(t, "recovered reads", rec.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2}), want, reqs)
	// And the recovered engine can seal successfully this time.
	if _, err := rec.Apply(ctx, []Mutation{{Op: OpAddEdge, Subject: "f", Label: "l", Object: "a"}}); err != nil {
		t.Fatalf("Apply after recovery: %v", err)
	}
	if did, err := rec.Compact(ctx); err != nil || !did {
		t.Fatalf("Compact after recovery = %v, %v", did, err)
	}
}

func TestFailstopBackgroundCompactionPoisonsWithoutPanic(t *testing.T) {
	failpoint.DisarmAll()
	t.Cleanup(failpoint.DisarmAll)
	kg, err := Load(strings.NewReader(`
<a> <l> <b> .
<b> <l> <c> .
`))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := Options{Landmarks: 2, IndexSeed: 1, CompactAfter: 2}
	eng, err := Create(dir, kg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	if err := failpoint.Set(segment.FPSegSync, "error-once"); err != nil {
		t.Fatal(err)
	}
	// Cross the threshold: the background compactor hits the segment
	// fsync failure. Pre-PR behaviour was a process panic; now it must
	// poison quietly.
	if _, err := eng.Apply(ctx, []Mutation{
		{Op: OpAddEdge, Subject: "c", Label: "l", Object: "d"},
		{Op: OpAddEdge, Subject: "d", Label: "l", Object: "e"},
	}); err != nil {
		t.Fatalf("threshold Apply: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Poisoned() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background compaction failure never poisoned the engine")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(eng.Poisoned(), failpoint.ErrInjected) {
		t.Fatalf("Poisoned() = %v, want injected cause", eng.Poisoned())
	}
	// Reads still answer on the poisoned engine.
	if _, err := eng.Query(ctx, Request{Source: "a", Target: "c", Constraint: `SELECT ?x WHERE { <a> <l> ?x. }`}); err != nil {
		t.Fatalf("read on poisoned engine: %v", err)
	}
}
