package lscr_test

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	pub "lscr"
)

// The persistence equivalence tier: an engine served from an on-disk
// store must be indistinguishable from the engine that wrote it.
//
//   - Opening a sealed segment is bit-identical to NewEngine on the
//     same edge set — all four algorithms, INS Stats included — because
//     the segment carries the compaction-rebuilt CSR and index and the
//     mmap'd arrays decode to the same values byte for byte.
//   - Replaying a WAL tail is bit-identical to the pre-shutdown live
//     engine: batches are logged by name and re-interned through the
//     same code path, so IDs, epochs and the maintained index match.
//   - A simulated crash (the data directory as a kill -9 would leave
//     it: copied while the engine is live, or with a torn WAL tail)
//     recovers to a per-prefix answer-identical engine.
//
// The test names carry "Mutate" so the race-enabled CI tier picks them
// up.

// copyDir clones a store directory — the on-disk state an abrupt kill
// would leave, given that sync-mode batches are fsynced before ack.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		in, err := os.Open(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// cloneModel deep-copies the ground-truth model so a prefix state can
// be pinned while the script continues.
func cloneModel(m *mutModel) *mutModel {
	c := newMutModel()
	for _, l := range m.labels {
		c.label(l)
	}
	for _, v := range m.vertices {
		c.vertex(v)
	}
	c.edges = append(c.edges, m.edges...)
	return c
}

// TestMutatePersistOpenIdentity: Create → mutate → Compact (seals a
// segment) → Close → Open must serve bit-identically to both the
// pre-shutdown engine and a from-scratch NewEngine on the final edge
// set, INS Stats included.
func TestMutatePersistOpenIdentity(t *testing.T) {
	const n, nLabels = 60, 4
	g0, model := mutSeedGraph(303, n, nLabels, 360)
	dir := t.TempDir()
	ctx := context.Background()
	bo := pub.BatchOptions{Concurrency: 4}
	reqs := mutRequests(n, nLabels)

	eng, err := pub.Create(dir, pub.FromGraph(g0), mutOpts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for step, batch := range mutScript(404, model, 6, 10) {
		if _, err := eng.Apply(ctx, batch); err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		for _, mut := range batch {
			model.apply(mut)
		}
	}
	if did, err := eng.Compact(ctx); err != nil || !did {
		t.Fatalf("Compact = %v, %v", did, err)
	}
	want := eng.QueryBatch(ctx, reqs, bo)
	epochBefore := eng.Epoch()
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reopened, err := pub.Open(dir, mutOpts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer reopened.Close()
	ep := reopened.Epoch()
	if ep.Epoch != epochBefore.Epoch || ep.IndexEpoch != epochBefore.IndexEpoch {
		t.Fatalf("reopened epoch %+v, want %+v", ep, epochBefore)
	}
	dur := reopened.Durability()
	if !dur.Persistent || dur.SegmentEpoch+1 != ep.Epoch {
		t.Fatalf("durability %+v inconsistent with epoch %d", dur, ep.Epoch)
	}
	got := reopened.QueryBatch(ctx, reqs, bo)
	for i := range reqs {
		if err := answersEqual(got[i], want[i], true); err != nil {
			t.Errorf("vs pre-shutdown, request %d (%v): %v", i, reqs[i].Algorithm, err)
		}
	}
	rebuilt := pub.NewEngine(pub.FromGraph(model.build()), mutOpts)
	fresh := rebuilt.QueryBatch(ctx, reqs, bo)
	for i := range reqs {
		if err := answersEqual(got[i], fresh[i], true); err != nil {
			t.Errorf("vs NewEngine, request %d (%v): %v", i, reqs[i].Algorithm, err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// The reopened engine keeps accepting (and logging) writes.
	extra := []pub.Mutation{{Op: pub.OpAddEdge, Subject: "v0", Label: "l0", Object: "v1"}}
	if _, err := reopened.Apply(ctx, extra); err != nil {
		t.Fatalf("Apply after reopen: %v", err)
	}
	model.apply(extra[0])
	rebuilt = pub.NewEngine(pub.FromGraph(model.build()), mutOpts)
	want = rebuilt.QueryBatch(ctx, reqs, bo)
	got = reopened.QueryBatch(ctx, reqs, bo)
	for i := range reqs {
		withStats := reqs[i].Algorithm != pub.INS
		if err := answersEqual(got[i], want[i], withStats); err != nil {
			t.Fatalf("post-reopen apply, request %d (%v): %v", i, reqs[i].Algorithm, err)
		}
	}
}

// TestMutatePersistRestartReplay: with no seal at all (every batch only
// in the WAL), reopening replays the tail through the normal commit
// path and restores the exact pre-shutdown engine — epochs, overlay,
// maintained index and all.
func TestMutatePersistRestartReplay(t *testing.T) {
	const n, nLabels = 50, 3
	g0, model := mutSeedGraph(77, n, nLabels, 280)
	dir := t.TempDir()
	ctx := context.Background()
	bo := pub.BatchOptions{Concurrency: 4}
	reqs := mutRequests(n, nLabels)

	eng, err := pub.Create(dir, pub.FromGraph(g0), mutOpts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for step, batch := range mutScript(88, model, 8, 10) {
		if _, err := eng.Apply(ctx, batch); err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		for _, mut := range batch {
			model.apply(mut)
		}
	}
	want := eng.QueryBatch(ctx, reqs, bo)
	epochBefore := eng.Epoch()
	maintBefore := eng.IndexMaintenance()
	if epochBefore.OverlayOps == 0 {
		t.Fatal("test needs an uncompacted overlay")
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reopened, err := pub.Open(dir, mutOpts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer reopened.Close()
	ep := reopened.Epoch()
	if ep.Epoch != epochBefore.Epoch || ep.IndexEpoch != epochBefore.IndexEpoch || ep.OverlayOps != epochBefore.OverlayOps {
		t.Fatalf("reopened epoch %+v, want %+v", ep, epochBefore)
	}
	if maint := reopened.IndexMaintenance(); maint.Batches != maintBefore.Batches || maint.DirtyLandmarks != maintBefore.DirtyLandmarks {
		t.Fatalf("reopened maintenance %+v, want %+v", maint, maintBefore)
	}
	got := reopened.QueryBatch(ctx, reqs, bo)
	for i := range reqs {
		if err := answersEqual(got[i], want[i], true); err != nil {
			t.Fatalf("request %d (%v): %v", i, reqs[i].Algorithm, err)
		}
	}
}

// TestMutateCrashRecoveryPerPrefix simulates a kill -9 after every
// committed batch — the data directory is copied while the engine is
// live — and requires recovery to answer exactly like a from-scratch
// rebuild on that prefix's edge set. A mid-script Compact exercises
// recovery from segment+tail states, not only seg-0+tail.
func TestMutateCrashRecoveryPerPrefix(t *testing.T) {
	const n, nLabels = 40, 3
	g0, model := mutSeedGraph(909, n, nLabels, 200)
	dir := t.TempDir()
	ctx := context.Background()
	bo := pub.BatchOptions{Concurrency: 4}
	reqs := mutRequests(n, nLabels)

	eng, err := pub.Create(dir, pub.FromGraph(g0), mutOpts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer eng.Close()
	script := mutScript(910, model, 6, 8)
	for step, batch := range script {
		if _, err := eng.Apply(ctx, batch); err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		for _, mut := range batch {
			model.apply(mut)
		}
		if step == len(script)/2 {
			if _, err := eng.Compact(ctx); err != nil {
				t.Fatalf("step %d: Compact: %v", step, err)
			}
		}

		crash := copyDir(t, dir)
		rec, err := pub.Open(crash, mutOpts)
		if err != nil {
			t.Fatalf("step %d: recovery Open: %v", step, err)
		}
		if got, want := rec.Epoch().Epoch, eng.Epoch().Epoch; got != want {
			rec.Close()
			t.Fatalf("step %d: recovered epoch %d, live epoch %d", step, got, want)
		}
		rebuilt := pub.NewEngine(pub.FromGraph(model.build()), mutOpts)
		want := rebuilt.QueryBatch(ctx, reqs, bo)
		got := rec.QueryBatch(ctx, reqs, bo)
		for i := range reqs {
			// The recovered INS index is the maintained one, not a fresh
			// rebuild: answers must match, stats only for the index-free
			// algorithms (same contract as the overlay tier).
			withStats := reqs[i].Algorithm != pub.INS
			if err := answersEqual(got[i], want[i], withStats); err != nil {
				t.Errorf("step %d, request %d (%v): %v", step, i, reqs[i].Algorithm, err)
			}
		}
		rec.Close()
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestMutateCrashRecoveryTornTail: a crash mid-append leaves a torn
// final record; recovery must truncate exactly that batch away and
// serve the longest durable prefix.
func TestMutateCrashRecoveryTornTail(t *testing.T) {
	const n, nLabels = 30, 3
	g0, model := mutSeedGraph(111, n, nLabels, 150)
	dir := t.TempDir()
	ctx := context.Background()
	bo := pub.BatchOptions{Concurrency: 2}
	reqs := mutRequests(n, nLabels)

	eng, err := pub.Create(dir, pub.FromGraph(g0), mutOpts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer eng.Close()
	script := mutScript(112, model, 2, 6)
	if _, err := eng.Apply(ctx, script[0]); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for _, mut := range script[0] {
		model.apply(mut)
	}
	prefix := cloneModel(model)
	if _, err := eng.Apply(ctx, script[1]); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	crash := copyDir(t, dir)
	walPath := filepath.Join(crash, "wal.log")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last batch's record mid-body.
	if err := os.Truncate(walPath, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	rec, err := pub.Open(crash, mutOpts)
	if err != nil {
		t.Fatalf("torn-tail Open: %v", err)
	}
	defer rec.Close()
	if got, want := rec.Epoch().Epoch, eng.Epoch().Epoch-1; got != want {
		t.Fatalf("torn-tail epoch %d, want %d", got, want)
	}
	rebuilt := pub.NewEngine(pub.FromGraph(prefix.build()), mutOpts)
	want := rebuilt.QueryBatch(ctx, reqs, bo)
	got := rec.QueryBatch(ctx, reqs, bo)
	for i := range reqs {
		withStats := reqs[i].Algorithm != pub.INS
		if err := answersEqual(got[i], want[i], withStats); err != nil {
			t.Fatalf("request %d (%v): %v", i, reqs[i].Algorithm, err)
		}
	}
}

// TestMutatePersistLifecycleErrors pins the store lifecycle contract:
// Open on nothing is ErrNoStore, Create over a store is ErrStoreExists,
// a flipped segment byte is ErrCorruptStore, Apply after Close fails
// without publishing.
func TestMutatePersistLifecycleErrors(t *testing.T) {
	g0, _ := mutSeedGraph(5, 20, 2, 60)
	ctx := context.Background()

	if _, err := pub.Open(t.TempDir(), mutOpts); !errors.Is(err, pub.ErrNoStore) {
		t.Fatalf("Open(empty) = %v, want ErrNoStore", err)
	}
	if _, err := pub.Open("", mutOpts); err == nil {
		t.Fatal("Open with no dir accepted")
	}

	dir := t.TempDir()
	eng, err := pub.Create(dir, pub.FromGraph(g0), mutOpts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := pub.Create(dir, pub.FromGraph(g0), mutOpts); !errors.Is(err, pub.ErrStoreExists) {
		t.Fatalf("second Create = %v, want ErrStoreExists", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	epoch := eng.Epoch().Epoch
	if _, err := eng.Apply(ctx, []pub.Mutation{{Op: pub.OpAddEdge, Subject: "v0", Label: "l0", Object: "v1"}}); err == nil {
		t.Fatal("Apply after Close accepted")
	}
	if eng.Epoch().Epoch != epoch {
		t.Fatal("failed post-Close Apply published an epoch")
	}

	// Flip one byte of the segment: Open must fail closed.
	crash := copyDir(t, dir)
	segs, err := filepath.Glob(filepath.Join(crash, "seg-*.lscrseg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Open(crash, mutOpts); !errors.Is(err, pub.ErrCorruptStore) {
		t.Fatalf("corrupt Open = %v, want ErrCorruptStore", err)
	}
}
