// Package lscr answers reachability queries with label and substructure
// constraints (LSCR) on knowledge graphs, implementing the algorithms of
// Wan & Wang, "Reachability Queries with Label and Substructure
// Constraints on Knowledge Graphs" (TKDE / ICDE 2023 extended abstract).
//
// An LSCR query asks: can vertex s reach vertex t along a path whose edge
// labels all belong to a label set L, such that some vertex on the path
// satisfies a substructure constraint S (expressed as a SPARQL SELECT over
// one projected variable)?
//
//	kg, _ := lscr.Load(file)                     // N-Triples-style input
//	eng := lscr.NewEngine(kg, lscr.Options{})    // builds the local index
//	res, _ := eng.Reach(lscr.Query{
//		Source: "SuspectC", Target: "SuspectP",
//		Labels: []string{"transfer2019-04", "married-to"},
//		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
//	})
//	fmt.Println(res.Reachable)
//
// Three algorithms are available: UIS (uninformed search with recall,
// works on any edge-labeled graph), UISStar (SPARQL-assisted uninformed
// search), and INS (informed search over a precomputed local index — the
// default and the paper's headline contribution).
//
// # Concurrency
//
// NewEngine builds the local index in parallel across
// Options.IndexWorkers goroutines (GOMAXPROCS by default); the result is
// bit-for-bit identical for every worker count. Once NewEngine (or
// NewEngineFromIndex) returns, the Engine is immutable: Reach, ReachAll,
// ReachWithWitness, ReachTraced, ReachBatch, Select and SelectAll may be
// called from any number of goroutines on the same Engine. Per-query
// state lives in pooled scratch, so concurrent queries do not contend on
// locks in the search itself. Build at most one index per Engine at a
// time — construction is the only mutating phase. ReachBatch answers a
// slice of queries over a bounded worker pool and is the preferred way
// to saturate all cores with one call.
package lscr

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	core "lscr/internal/lscr"
	"lscr/internal/pattern"
	"lscr/internal/rdf"
	"lscr/internal/sparql"
)

// KG is an immutable knowledge graph.
type KG struct {
	g *graph.Graph
}

// Load reads an N-Triples-style stream (see package documentation for the
// format: `<s> <p> <o> .` per line, quoted literals allowed) into a KG.
func Load(r io.Reader) (*KG, error) {
	g, err := rdf.Load(r)
	if err != nil {
		return nil, err
	}
	return &KG{g: g}, nil
}

// FromGraph wraps an already-built substrate graph. It is the hook the
// generator CLIs and the benchmark harness use.
func FromGraph(g *graph.Graph) *KG { return &KG{g: g} }

// Graph exposes the substrate for advanced callers (generators, harness).
func (kg *KG) Graph() *graph.Graph { return kg.g }

// NumVertices returns |V|.
func (kg *KG) NumVertices() int { return kg.g.NumVertices() }

// NumEdges returns |E|.
func (kg *KG) NumEdges() int { return kg.g.NumEdges() }

// NumLabels returns |ℒ|.
func (kg *KG) NumLabels() int { return kg.g.NumLabels() }

// Dump writes the KG back out as triples.
func (kg *KG) Dump(w io.Writer) error { return rdf.Dump(kg.g, w) }

// WriteSnapshot serialises the KG (dictionaries, edges, schema) in the
// binary snapshot format, which reloads much faster than triples.
func (kg *KG) WriteSnapshot(w io.Writer) error {
	_, err := kg.g.WriteTo(w)
	return err
}

// LoadSnapshot reads a KG written by WriteSnapshot.
func LoadSnapshot(r io.Reader) (*KG, error) {
	g, err := graph.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &KG{g: g}, nil
}

// Algorithm selects the query strategy.
type Algorithm int

// Available algorithms.
const (
	// INS is the informed, local-index-guided search (Algorithm 4) — the
	// default.
	INS Algorithm = iota
	// UIS is the uninformed baseline (Algorithm 1).
	UIS
	// UISStar is the SPARQL-assisted uninformed search (Algorithm 2).
	UISStar
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case INS:
		return "INS"
	case UIS:
		return "UIS"
	case UISStar:
		return "UIS*"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configures an Engine.
type Options struct {
	// SkipIndex disables local-index construction; INS queries then
	// return an error, but UIS/UISStar remain available.
	SkipIndex bool
	// Landmarks overrides the paper's k = log2(|V|)·√|V| landmark count.
	Landmarks int
	// IndexSeed drives the random schema-class selection of the landmark
	// selector; fixed seeds give reproducible indexes.
	IndexSeed int64
	// IndexWorkers bounds the goroutines used to build the local index.
	// 0 means GOMAXPROCS; 1 forces a sequential build. The built index is
	// identical for every worker count.
	IndexWorkers int
}

// Engine answers LSCR queries over one KG. It is immutable after
// construction and safe for concurrent use: any number of goroutines may
// issue queries against the same Engine (see the package comment's
// Concurrency section).
type Engine struct {
	kg  *KG
	idx *core.LocalIndex
	eng *sparql.Engine
}

// NewEngine prepares an engine, building the local index unless opts
// disables it. The build runs on opts.IndexWorkers goroutines
// (GOMAXPROCS when zero) and is the only mutating phase of an Engine's
// life.
func NewEngine(kg *KG, opts Options) *Engine {
	e := &Engine{kg: kg, eng: sparql.NewEngine(kg.g)}
	if !opts.SkipIndex {
		e.idx = core.NewLocalIndex(kg.g, core.IndexParams{
			K:       opts.Landmarks,
			Seed:    opts.IndexSeed,
			Workers: opts.IndexWorkers,
		})
	}
	return e
}

// IndexStats describes the built local index.
type IndexStats struct {
	Landmarks int
	Entries   int
	SizeBytes int64
}

// Index returns statistics about the local index, or false when the
// engine was built with SkipIndex.
func (e *Engine) Index() (IndexStats, bool) {
	if e.idx == nil {
		return IndexStats{}, false
	}
	return IndexStats{
		Landmarks: len(e.idx.Landmarks()),
		Entries:   e.idx.Entries(),
		SizeBytes: e.idx.SizeBytes(),
	}, true
}

// Query is one LSCR query in terms of names.
type Query struct {
	// Source and Target are vertex names.
	Source, Target string
	// Labels is the label constraint; empty means "all labels".
	Labels []string
	// Constraint is a SPARQL SELECT with one projected variable; it must
	// be non-empty.
	Constraint string
	// Algorithm selects the strategy; the zero value is INS.
	Algorithm Algorithm
}

// Stats re-exports the per-query measures.
type Stats = core.Stats

// Result is a query answer.
type Result struct {
	Reachable bool
	Stats     Stats
	Elapsed   time.Duration
	// SatisfyingVertices is |V(S,G)| as computed by the engine (UIS
	// evaluates the constraint lazily and reports -1).
	SatisfyingVertices int
}

// Errors returned by Reach.
var (
	ErrUnknownVertex = errors.New("lscr: unknown vertex name")
	ErrUnknownLabel  = errors.New("lscr: unknown label name")
	ErrNoIndex       = errors.New("lscr: engine built without index; INS unavailable")
)

// Reach answers q.
func (e *Engine) Reach(q Query) (Result, error) {
	g := e.kg.g
	s := g.Vertex(q.Source)
	if s == graph.NoVertex {
		return Result{}, fmt.Errorf("%w: %q", ErrUnknownVertex, q.Source)
	}
	t := g.Vertex(q.Target)
	if t == graph.NoVertex {
		return Result{}, fmt.Errorf("%w: %q", ErrUnknownVertex, q.Target)
	}
	var L labelset.Set
	if len(q.Labels) == 0 {
		L = g.LabelUniverse()
	} else {
		for _, name := range q.Labels {
			l, ok := g.LabelByName(name)
			if !ok {
				return Result{}, fmt.Errorf("%w: %q", ErrUnknownLabel, name)
			}
			L = L.Add(l)
		}
	}
	parsed, err := sparql.Parse(q.Constraint)
	if err != nil {
		return Result{}, err
	}
	cons, sat, err := parsed.Compile(g)
	if err != nil {
		return Result{}, err
	}
	cq := core.Query{Source: s, Target: t, Labels: L}
	start := time.Now()
	if !sat {
		// The constraint references entities absent from the KG: V(S,G)
		// is empty and the answer is false for every algorithm.
		return Result{Elapsed: time.Since(start)}, nil
	}
	cq.Constraint = cons

	var (
		ans Result
		st  Stats
		ok  bool
	)
	switch q.Algorithm {
	case UIS:
		ok, st, err = core.UIS(g, cq)
		ans.SatisfyingVertices = -1
	case UISStar:
		m, merr := pattern.NewMatcher(g, cons)
		if merr != nil {
			return Result{}, merr
		}
		vs := m.MatchAll()
		ans.SatisfyingVertices = len(vs)
		ok, st, err = core.UISStar(g, cq, vs)
	case INS:
		if e.idx == nil {
			return Result{}, ErrNoIndex
		}
		m, merr := pattern.NewMatcher(g, cons)
		if merr != nil {
			return Result{}, merr
		}
		vs := m.MatchAll()
		ans.SatisfyingVertices = len(vs)
		ok, st, err = core.INS(g, e.idx, cq, vs)
	default:
		return Result{}, fmt.Errorf("lscr: unknown algorithm %v", q.Algorithm)
	}
	if err != nil {
		return Result{}, err
	}
	ans.Reachable = ok
	ans.Stats = st
	ans.Elapsed = time.Since(start)
	return ans, nil
}

// MultiQuery is a conjunctive LSCR query: the path must pass, for every
// listed constraint, some vertex satisfying it (possibly different
// vertices, in any order). See Engine.ReachAll.
type MultiQuery struct {
	Source, Target string
	Labels         []string
	// Constraints are SPARQL SELECTs, each with one projected variable.
	// At most 16.
	Constraints []string
}

// ReachAll answers a conjunctive LSCR query with the generalised
// uninformed search (UIS over satisfied-set states). A constraint that
// references entities absent from the KG is unsatisfiable and makes the
// answer false.
func (e *Engine) ReachAll(q MultiQuery) (Result, error) {
	mq, res, earlyFalse, err := e.compileMulti(q)
	if err != nil {
		return Result{}, err
	}
	if earlyFalse {
		return res, nil
	}
	start := time.Now()
	ok, st, err := core.UISMulti(e.kg.g, mq)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Reachable:          ok,
		Stats:              st,
		Elapsed:            time.Since(start),
		SatisfyingVertices: -1,
	}, nil
}

// MultiPath is the witness of a true conjunctive answer: the walk plus,
// per constraint (in query order), the walk vertex satisfying it.
type MultiPath struct {
	Hops        []PathHop
	SatisfiedBy []string
}

// ReachAllWithWitness answers a conjunctive query and, when true, also
// returns the witness walk with one satisfying vertex per constraint.
func (e *Engine) ReachAllWithWitness(q MultiQuery) (Result, *MultiPath, error) {
	g := e.kg.g
	mq, res, earlyFalse, err := e.compileMulti(q)
	if err != nil {
		return Result{}, nil, err
	}
	if earlyFalse {
		return res, nil, nil
	}
	start := time.Now()
	ok, w, st, err := core.UISMultiWitness(g, mq)
	if err != nil {
		return Result{}, nil, err
	}
	res = Result{Reachable: ok, Stats: st, Elapsed: time.Since(start), SatisfyingVertices: -1}
	if !ok {
		return res, nil, nil
	}
	mp := &MultiPath{}
	for _, h := range w.Hops {
		mp.Hops = append(mp.Hops, PathHop{
			From:  g.VertexName(h.From),
			Label: g.LabelName(h.Label),
			To:    g.VertexName(h.To),
		})
	}
	for _, v := range w.SatisfiedBy {
		mp.SatisfiedBy = append(mp.SatisfiedBy, g.VertexName(v))
	}
	return res, mp, nil
}

// compileMulti resolves a MultiQuery's names; earlyFalse reports an
// unsatisfiable conjunct (V(S_i, G) empty by construction).
func (e *Engine) compileMulti(q MultiQuery) (core.MultiQuery, Result, bool, error) {
	g := e.kg.g
	s := g.Vertex(q.Source)
	if s == graph.NoVertex {
		return core.MultiQuery{}, Result{}, false, fmt.Errorf("%w: %q", ErrUnknownVertex, q.Source)
	}
	t := g.Vertex(q.Target)
	if t == graph.NoVertex {
		return core.MultiQuery{}, Result{}, false, fmt.Errorf("%w: %q", ErrUnknownVertex, q.Target)
	}
	var L labelset.Set
	if len(q.Labels) == 0 {
		L = g.LabelUniverse()
	} else {
		for _, name := range q.Labels {
			l, ok := g.LabelByName(name)
			if !ok {
				return core.MultiQuery{}, Result{}, false, fmt.Errorf("%w: %q", ErrUnknownLabel, name)
			}
			L = L.Add(l)
		}
	}
	mq := core.MultiQuery{Source: s, Target: t, Labels: L}
	for _, text := range q.Constraints {
		parsed, err := sparql.Parse(text)
		if err != nil {
			return core.MultiQuery{}, Result{}, false, err
		}
		cons, sat, err := parsed.Compile(g)
		if err != nil {
			return core.MultiQuery{}, Result{}, false, err
		}
		if !sat {
			return core.MultiQuery{}, Result{SatisfyingVertices: -1}, true, nil
		}
		mq.Constraints = append(mq.Constraints, cons)
	}
	return mq, Result{}, false, nil
}

// PathHop is one edge of a witness path, in vertex/label names.
type PathHop struct {
	From, Label, To string
}

// Path is a witness for a true LSCR answer: a concrete s→t walk whose
// labels all satisfy the label constraint and whose Satisfying vertex
// satisfies the substructure constraint. For the paper's crime-detection
// scenario this is the evidence chain itself.
type Path struct {
	Hops       []PathHop
	Satisfying string
}

// String renders the path as "a -[l]-> b -[m]-> c".
func (p *Path) String() string {
	if len(p.Hops) == 0 {
		return p.Satisfying
	}
	var b strings.Builder
	b.WriteString(p.Hops[0].From)
	for _, h := range p.Hops {
		fmt.Fprintf(&b, " -[%s]-> %s", h.Label, h.To)
	}
	return b.String()
}

// ReachWithWitness answers q and, when the answer is true, also returns a
// witness path. The witness is nil for false answers.
func (e *Engine) ReachWithWitness(q Query) (Result, *Path, error) {
	res, err := e.Reach(q)
	if err != nil || !res.Reachable {
		return res, nil, err
	}
	g := e.kg.g
	var L labelset.Set
	if len(q.Labels) == 0 {
		L = g.LabelUniverse()
	} else {
		for _, name := range q.Labels {
			l, _ := g.LabelByName(name) // validated by Reach already
			L = L.Add(l)
		}
	}
	w, ok := core.FindWitness(g, g.Vertex(q.Source), g.Vertex(q.Target), res.Stats.Satisfying, L)
	if !ok {
		// Cannot happen for a sound algorithm; fail loudly rather than
		// fabricate evidence.
		return res, nil, fmt.Errorf("lscr: internal error: no witness for a true answer")
	}
	p := &Path{Satisfying: g.VertexName(w.Satisfying)}
	for _, h := range w.Hops {
		p.Hops = append(p.Hops, PathHop{
			From:  g.VertexName(h.From),
			Label: g.LabelName(h.Label),
			To:    g.VertexName(h.To),
		})
	}
	return res, p, nil
}

// ReachTraced answers q while recording the search tree of Definition
// 3.2 (the paper's Figures 4, 6, 7) and writes it to dot as a Graphviz
// digraph: F-state nodes blue, T-state nodes red, index-driven markings
// dashed. Pass a nil dot writer to skip rendering (the Result still
// reflects the traced run).
func (e *Engine) ReachTraced(q Query, dot io.Writer) (Result, error) {
	g := e.kg.g
	s := g.Vertex(q.Source)
	if s == graph.NoVertex {
		return Result{}, fmt.Errorf("%w: %q", ErrUnknownVertex, q.Source)
	}
	t := g.Vertex(q.Target)
	if t == graph.NoVertex {
		return Result{}, fmt.Errorf("%w: %q", ErrUnknownVertex, q.Target)
	}
	var L labelset.Set
	if len(q.Labels) == 0 {
		L = g.LabelUniverse()
	} else {
		for _, name := range q.Labels {
			l, ok := g.LabelByName(name)
			if !ok {
				return Result{}, fmt.Errorf("%w: %q", ErrUnknownLabel, name)
			}
			L = L.Add(l)
		}
	}
	parsed, err := sparql.Parse(q.Constraint)
	if err != nil {
		return Result{}, err
	}
	cons, sat, err := parsed.Compile(g)
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	if !sat {
		return Result{Elapsed: time.Since(start)}, nil
	}
	cq := core.Query{Source: s, Target: t, Labels: L, Constraint: cons}

	var tree core.SearchTree
	var (
		ok  bool
		st  Stats
		nVS int
	)
	switch q.Algorithm {
	case UIS:
		ok, st, err = core.UISTraced(g, cq, &tree)
		nVS = -1
	case UISStar:
		m, merr := pattern.NewMatcher(g, cons)
		if merr != nil {
			return Result{}, merr
		}
		vs := m.MatchAll()
		nVS = len(vs)
		ok, st, err = core.UISStarTraced(g, cq, vs, &tree)
	case INS:
		if e.idx == nil {
			return Result{}, ErrNoIndex
		}
		m, merr := pattern.NewMatcher(g, cons)
		if merr != nil {
			return Result{}, merr
		}
		vs := m.MatchAll()
		nVS = len(vs)
		ok, st, err = core.INSTraced(g, e.idx, cq, vs, &tree)
	default:
		return Result{}, fmt.Errorf("lscr: unknown algorithm %v", q.Algorithm)
	}
	if err != nil {
		return Result{}, err
	}
	res := Result{Reachable: ok, Stats: st, Elapsed: time.Since(start), SatisfyingVertices: nVS}
	if dot != nil {
		if err := tree.WriteDOT(dot, q.Algorithm.String(), g.VertexName); err != nil {
			return res, err
		}
	}
	return res, nil
}

// SaveIndex serialises the engine's local index (format documented in the
// internal encoder: versioned magic + CRC32 footer). It fails when the
// engine was built with SkipIndex.
func (e *Engine) SaveIndex(w io.Writer) error {
	if e.idx == nil {
		return ErrNoIndex
	}
	_, err := e.idx.WriteTo(w)
	return err
}

// NewEngineFromIndex builds an engine whose local index is loaded from r
// (written earlier by SaveIndex against the same KG) instead of being
// recomputed.
func NewEngineFromIndex(kg *KG, r io.Reader) (*Engine, error) {
	idx, err := core.ReadLocalIndex(r, kg.g)
	if err != nil {
		return nil, err
	}
	return &Engine{kg: kg, idx: idx, eng: sparql.NewEngine(kg.g)}, nil
}

// Select evaluates a SPARQL SELECT and returns the matching vertex names
// (V(S,G) by name) — the substructure-constraint half of the system,
// usable standalone. Multi-variable queries project their first variable;
// use SelectAll for full rows.
func (e *Engine) Select(query string) ([]string, error) {
	ids, err := e.eng.Select(query)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(ids))
	for i, v := range ids {
		out[i] = e.kg.g.VertexName(v)
	}
	return out, nil
}

// SelectAll evaluates a (possibly multi-variable) SPARQL SELECT and
// returns one map per distinct result row, keyed by variable name.
func (e *Engine) SelectAll(query string) ([]map[string]string, error) {
	vars, rows, err := e.eng.SelectTuples(query)
	if err != nil {
		return nil, err
	}
	out := make([]map[string]string, 0, len(rows))
	for _, r := range rows {
		m := make(map[string]string, len(vars))
		for i, v := range vars {
			m[v] = e.kg.g.VertexName(r[i])
		}
		out = append(out, m)
	}
	return out, nil
}
