// Package lscr answers reachability queries with label and substructure
// constraints (LSCR) on knowledge graphs, implementing the algorithms of
// Wan & Wang, "Reachability Queries with Label and Substructure
// Constraints on Knowledge Graphs" (TKDE / ICDE 2023 extended abstract).
//
// An LSCR query asks: can vertex s reach vertex t along a path whose edge
// labels all belong to a label set L, such that some vertex on the path
// satisfies a substructure constraint S (expressed as a SPARQL SELECT over
// one projected variable)?
//
// Engine.Query is the entry point (v1 API): one context-aware call that
// covers single and conjunctive constraints, witnesses, traces,
// per-request algorithm choice and deadlines.
//
//	kg, _ := lscr.Load(file)                     // N-Triples-style input
//	eng := lscr.NewEngine(kg, lscr.Options{})    // builds the local index
//	resp, _ := eng.Query(ctx, lscr.Request{
//		Source: "SuspectC", Target: "SuspectP",
//		Labels: []string{"transfer2019-04", "married-to"},
//		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
//	})
//	fmt.Println(resp.Reachable)
//
// Cancelling ctx (or exceeding Request.Timeout) aborts the search
// mid-flight; the hot loops poll every few thousand edge expansions, so
// a cancelled query returns within microseconds of the signal. The
// pre-v1 methods (Reach, ReachAll, ReachWithWitness, ReachTraced,
// ReachBatch) remain as deprecated thin wrappers over Query and answer
// bit-identically.
//
// Three single-constraint algorithms are available: UIS (uninformed
// search with recall, works on any edge-labeled graph), UISStar
// (SPARQL-assisted uninformed search), and INS (informed search over a
// precomputed local index — the default and the paper's headline
// contribution). Multi-constraint requests run the Conjunctive
// generalisation of UIS.
//
// # Concurrency and live updates
//
// NewEngine builds the local index in parallel across
// Options.IndexWorkers goroutines (GOMAXPROCS by default); the result is
// bit-for-bit identical for every worker count. The Engine serves reads
// through immutable epochs: every query resolves against one atomic
// (graph view, index, constraint cache) snapshot, so Query, QueryBatch,
// Select, SelectAll and the deprecated wrappers may be called from any
// number of goroutines on the same Engine. Per-query state lives in
// pooled scratch, so concurrent queries do not contend on locks in the
// search itself. QueryBatch answers a slice of requests over a bounded
// worker pool and is the preferred way to saturate all cores with one
// call.
//
// Engine.Apply commits edge insertions and deletions (plus new-vertex
// and new-label interning) into a small sorted delta overlay and
// publishes a new epoch atomically — in-flight queries keep the epoch
// they started on, so a query never observes half a mutation batch. A
// background compactor folds the overlay into a fresh CSR and rebuilds
// the local index once the overlay exceeds Options.CompactAfter; see
// mutate.go for the full contract.
//
// Within one epoch compiled constraints never go stale: each epoch
// memoizes the parsed constraint and its V(S,G) vertex set in a
// concurrency-safe LRU keyed by constraint text (see
// Options.ConstraintCacheSize and Engine.CacheStats), so repeated
// constraints — the dominant production pattern — compile exactly once
// per epoch. Mutations invalidate the memoized V(S,G) wholesale by
// giving the new epoch a fresh cache.
package lscr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	core "lscr/internal/lscr"
	"lscr/internal/pattern"
	"lscr/internal/qcache"
	"lscr/internal/rdf"
	"lscr/internal/sparql"
)

// KG is an immutable knowledge graph.
type KG struct {
	g *graph.Graph
}

// Load reads an N-Triples-style stream (see package documentation for the
// format: `<s> <p> <o> .` per line, quoted literals allowed) into a KG.
func Load(r io.Reader) (*KG, error) {
	g, err := rdf.Load(r)
	if err != nil {
		return nil, err
	}
	return &KG{g: g}, nil
}

// FromGraph wraps an already-built substrate graph. It is the hook the
// generator CLIs and the benchmark harness use.
func FromGraph(g *graph.Graph) *KG { return &KG{g: g} }

// Graph exposes the substrate for advanced callers (generators, harness).
func (kg *KG) Graph() *graph.Graph { return kg.g }

// NumVertices returns |V|.
func (kg *KG) NumVertices() int { return kg.g.NumVertices() }

// NumEdges returns |E|.
func (kg *KG) NumEdges() int { return kg.g.NumEdges() }

// NumLabels returns |ℒ|.
func (kg *KG) NumLabels() int { return kg.g.NumLabels() }

// Dump writes the KG back out as triples.
func (kg *KG) Dump(w io.Writer) error { return rdf.Dump(kg.g, w) }

// WriteSnapshot serialises the KG (dictionaries, edges, schema) in the
// binary snapshot format, which reloads much faster than triples.
func (kg *KG) WriteSnapshot(w io.Writer) error {
	_, err := kg.g.WriteTo(w)
	return err
}

// LoadSnapshot reads a KG written by WriteSnapshot.
func LoadSnapshot(r io.Reader) (*KG, error) {
	g, err := graph.ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return &KG{g: g}, nil
}

// Algorithm selects the query strategy.
type Algorithm int

// Available algorithms.
const (
	// INS is the informed, local-index-guided search (Algorithm 4) — the
	// default.
	INS Algorithm = iota
	// UIS is the uninformed baseline (Algorithm 1).
	UIS
	// UISStar is the SPARQL-assisted uninformed search (Algorithm 2).
	UISStar
	// Conjunctive is the generalised uninformed search over
	// satisfied-constraint sets: the path must pass, for every
	// constraint of the request, some vertex satisfying it. It is the
	// only strategy for multi-constraint requests and may be selected
	// explicitly for single-constraint ones.
	Conjunctive
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case INS:
		return "INS"
	case UIS:
		return "UIS"
	case UISStar:
		return "UIS*"
	case Conjunctive:
		return "CONJ"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// DefaultConstraintCacheSize is the constraint-cache capacity selected
// when Options.ConstraintCacheSize is zero.
const DefaultConstraintCacheSize = 1024

// Options configures an Engine.
type Options struct {
	// SkipIndex disables local-index construction; INS queries then
	// return an error, but UIS/UISStar remain available.
	SkipIndex bool
	// Landmarks overrides the paper's k = log2(|V|)·√|V| landmark count.
	Landmarks int
	// IndexSeed drives the random schema-class selection of the landmark
	// selector; fixed seeds give reproducible indexes.
	IndexSeed int64
	// IndexWorkers bounds the goroutines used to build the local index.
	// 0 means GOMAXPROCS; 1 forces a sequential build. The built index is
	// identical for every worker count.
	IndexWorkers int
	// ConstraintCacheSize bounds the number of memoized compiled
	// constraints. Every query pays sparql.Parse + Compile and (for
	// UIS*/INS) the V(S,G) evaluation; because the KG is immutable these
	// results never go stale, so the engine memoizes them per constraint
	// text in a concurrency-safe LRU. 0 selects
	// DefaultConstraintCacheSize; a negative value disables the cache.
	//
	// The bound is an entry count, not bytes: a broad constraint's
	// memoized V(S,G) can hold O(|V|) vertex IDs, so on very large KGs
	// with many distinct broad constraints, size the cache (or disable
	// it) with that worst case — capacity × |V| IDs — in mind.
	ConstraintCacheSize int
	// CompactAfter bounds the mutation overlay: once an Apply leaves at
	// least this many accumulated edge operations uncompacted, a
	// background compaction folds them into a fresh CSR and rebuilds the
	// local index. 0 selects DefaultCompactAfter; a negative value
	// disables automatic compaction (Engine.Compact remains available).
	CompactAfter int
	// DataDir is the default data directory for Open and Create when
	// their dir argument is empty. It has no effect on NewEngine, which
	// stays purely in-memory.
	DataDir string
	// Durability selects the WAL fsync policy of a persistent engine
	// (Open/Create): DurabilitySync — the zero value — fsyncs every
	// committed batch before Apply acknowledges it; DurabilityLazy
	// leaves flushing to the OS, trading the most recent batches on a
	// crash for much cheaper writes. See persist.go.
	Durability Durability
	// NoIndexMaintenance disables incremental local-index maintenance:
	// Apply then publishes epochs that keep the pre-mutation index as a
	// heuristic only, so INS loses its landmark pruning until the next
	// compaction (the PR 5 behaviour). The default — maintenance on —
	// extends the index through every committed batch (insertions by
	// monotone propagation, deletions by per-landmark invalidation) so
	// INS keeps pruning against a current index. Exposed mainly for
	// benchmarking the maintenance win and as an escape hatch.
	NoIndexMaintenance bool
	// Failpoints arms fault-injection sites before a persistent engine
	// touches its files: a ";"-separated list of site=policy activations
	// (see internal/failpoint for sites and the policy grammar, e.g.
	// "wal-sync=error-once;seg-rename=error,every=3"). Applied by Open
	// and Create only; the registry is process-global, so in-memory
	// engines and running processes arm sites via the failpoint package
	// or the LSCR_FAILPOINTS environment variable instead. Empty — the
	// default — arms nothing and costs nothing on the I/O paths.
	Failpoints string
}

// Engine answers LSCR queries over one KG and accepts live mutations.
// Reads resolve against immutable epochs swapped atomically (RCU-style),
// so any number of goroutines may query while Apply commits changes
// (see the package comment's Concurrency section and mutate.go).
type Engine struct {
	opts Options

	// ep is the current epoch; every read path loads it exactly once and
	// works against that snapshot for its whole duration.
	ep atomic.Pointer[epoch]

	// mu serializes epoch publication (Apply and the compactor's swap).
	mu sync.Mutex
	// compactMu serializes whole compactions; compacting dedups the
	// background trigger; compactions counts completed ones.
	compactMu   sync.Mutex
	compacting  atomic.Bool
	compactions atomic.Int64

	// Cumulative index-maintenance counters (see MaintStats). They only
	// grow — per-epoch state (dirty landmarks, index epoch) lives on the
	// epoch itself.
	maintBatches     atomic.Int64
	maintExtended    atomic.Int64
	maintEntries     atomic.Int64
	maintInvalidated atomic.Int64

	// store is the persistence attachment (segment directory + WAL);
	// nil for a purely in-memory engine. See persist.go.
	store *store

	// pubCh, when non-nil, is closed (and cleared) by the next epoch
	// publish — the wake-up behind the server's /v1/replicate long poll.
	// Lazily armed by EpochPublished; see replicate.go.
	pubCh atomic.Pointer[chan struct{}]

	// replica marks an engine fed exclusively through the replication
	// feed (OpenReplicaSegment): Apply and Compact refuse, and
	// ApplyReplicated/SealReplicated drive the epochs instead.
	replica bool

	// poisonp, once set, pins the engine in fail-stop mode: the first
	// WAL/segment write failure is recorded and every later Apply/Compact
	// returns ErrPoisoned while reads keep serving the last published
	// (fully durable) epoch. See poison.go.
	poisonp poisonPointer
}

// epoch is one immutable serving snapshot: a graph view (base CSR plus
// optional overlay), the local index for the view, the SPARQL engine
// over the view, and the constraint cache whose memoized V(S,G) is
// valid exactly for this view. idxSeq is the index epoch threaded
// alongside the graph epoch: the seq of the last epoch whose view the
// index is exact for. With maintenance on it tracks seq; with
// maintenance off it lags until the next compaction, and idx is then
// only a heuristic (readers always get the (kg, idx, idxSeq) triple
// from one atomic load, so the pair they see is mutually consistent).
type epoch struct {
	seq    uint64
	idxSeq uint64
	kg     *KG
	idx    *core.LocalIndex
	eng    *sparql.Engine
	cache  *qcache.Cache[*compiledConstraint] // nil when disabled
}

// NewEngine prepares an engine, building the local index unless opts
// disables it. The build runs on opts.IndexWorkers goroutines
// (GOMAXPROCS when zero); once it returns the engine serves reads
// lock-free and accepts Apply batches.
func NewEngine(kg *KG, opts Options) *Engine {
	e := &Engine{opts: opts}
	var idx *core.LocalIndex
	if !opts.SkipIndex {
		idx = core.NewLocalIndex(kg.g, e.indexParams())
	}
	e.ep.Store(e.newEpoch(0, kg.g, idx, 0))
	prewarmScratch(kg.g)
	return e
}

// prewarmVertices is the graph size past which engine construction
// primes the pooled per-query scratch: below it the per-query arrays
// are small enough that first-query allocation is noise.
const prewarmVertices = 1 << 18

// prewarmScratch pre-sizes the pooled per-query scratch for g (one per
// GOMAXPROCS worker) so the first queries on a freshly opened
// multi-million-vertex engine don't each pay a tens-of-megabytes
// close-map/stamp/sat allocation — the first-query latency cliff the
// scale tier measures.
func prewarmScratch(g *graph.Graph) {
	if n := g.NumVertices(); n >= prewarmVertices {
		core.PrewarmScratch(n, runtime.GOMAXPROCS(0))
	}
}

// indexParams maps the engine options to index-build parameters; Apply's
// compactor reuses them so a rebuilt index matches a from-scratch build.
func (e *Engine) indexParams() core.IndexParams {
	return core.IndexParams{
		K:       e.opts.Landmarks,
		Seed:    e.opts.IndexSeed,
		Workers: e.opts.IndexWorkers,
	}
}

// newEpoch assembles a serving snapshot for g with a fresh constraint
// cache. prevIdxSeq carries the previous epoch's index epoch; it is
// advanced to seq whenever idx is exact for g (fresh build, maintained
// batch, or clean compaction).
func (e *Engine) newEpoch(seq uint64, g *graph.Graph, idx *core.LocalIndex, prevIdxSeq uint64) *epoch {
	idxSeq := prevIdxSeq
	if idx.ExactFor(g) {
		idxSeq = seq
	}
	return &epoch{
		seq:    seq,
		idxSeq: idxSeq,
		kg:     &KG{g: g},
		idx:    idx,
		eng:    sparql.NewEngine(g),
		cache:  newConstraintCache(e.opts.ConstraintCacheSize),
	}
}

// current returns the serving epoch.
func (e *Engine) current() *epoch { return e.ep.Load() }

// newConstraintCache maps the ConstraintCacheSize knob to a cache:
// negative disables, zero selects the default capacity.
func newConstraintCache(size int) *qcache.Cache[*compiledConstraint] {
	if size < 0 {
		return nil
	}
	if size == 0 {
		size = DefaultConstraintCacheSize
	}
	return qcache.New[*compiledConstraint](size)
}

// CacheStats is a point-in-time snapshot of the constraint cache.
type CacheStats struct {
	// Enabled is false when the engine was built with a negative
	// Options.ConstraintCacheSize; all other fields are then zero.
	Enabled bool `json:"enabled"`
	// Hits and Misses count cache lookups since construction.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Entries is the number of memoized constraints; Capacity the LRU
	// bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// CacheStats reports the current epoch's constraint-cache counters; the
// server's /healthz endpoint surfaces them for operational monitoring.
// Each Apply or compaction starts the new epoch with a fresh cache (its
// memoized V(S,G) sets are only valid for one graph view), so the
// counters reset on mutation.
func (e *Engine) CacheStats() CacheStats {
	return e.current().cacheStats()
}

// MaintStats is a point-in-time snapshot of incremental index
// maintenance (see mutate.go): cumulative counters since construction
// plus the serving epoch's index state. The server's /healthz surfaces
// it next to CacheStats.
type MaintStats struct {
	// Enabled is false when the engine has no index (SkipIndex) or was
	// built with NoIndexMaintenance; the cumulative counters are then
	// zero.
	Enabled bool `json:"enabled"`
	// Batches counts Apply batches whose index was maintained through.
	Batches int64 `json:"batches"`
	// LandmarksExtended counts per-batch landmarks extended by insert
	// propagation; EntriesAdded the minimal label sets accepted.
	LandmarksExtended int64 `json:"landmarks_extended"`
	EntriesAdded      int64 `json:"entries_added"`
	// LandmarksInvalidated counts landmarks marked dirty by deletions
	// (cumulative; compactions clear the dirty state but not this
	// counter).
	LandmarksInvalidated int64 `json:"landmarks_invalidated"`
	// DirtyLandmarks is the serving epoch's count of
	// deletion-invalidated landmarks currently excluded from pruning.
	DirtyLandmarks int `json:"dirty_landmarks"`
	// IndexEpoch is the index epoch: the last epoch whose graph view
	// the index is exact for. IndexCurrent reports IndexEpoch == Epoch,
	// i.e. INS is serving with live pruning (dirty landmarks aside).
	IndexEpoch   uint64 `json:"index_epoch"`
	IndexCurrent bool   `json:"index_current"`
}

// IndexMaintenance reports the index-maintenance counters for the
// serving epoch. The cumulative counters are monotonic across epochs;
// the per-epoch fields come from one atomic epoch load.
func (e *Engine) IndexMaintenance() MaintStats {
	return e.maintStats(e.current())
}

func (e *Engine) maintStats(ep *epoch) MaintStats {
	ms := MaintStats{
		Enabled:              ep.idx != nil && !e.opts.NoIndexMaintenance,
		Batches:              e.maintBatches.Load(),
		LandmarksExtended:    e.maintExtended.Load(),
		EntriesAdded:         e.maintEntries.Load(),
		LandmarksInvalidated: e.maintInvalidated.Load(),
		IndexEpoch:           ep.idxSeq,
	}
	if ep.idx != nil {
		ms.DirtyLandmarks = ep.idx.DirtyLandmarks()
		ms.IndexCurrent = ep.idx.ExactFor(ep.kg.g)
	}
	return ms
}

func (ep *epoch) cacheStats() CacheStats {
	if ep.cache == nil {
		return CacheStats{}
	}
	st := ep.cache.Stats()
	return CacheStats{
		Enabled:  true,
		Hits:     st.Hits,
		Misses:   st.Misses,
		Entries:  st.Entries,
		Capacity: st.Capacity,
	}
}

// IndexStats describes the built local index.
type IndexStats struct {
	Landmarks int
	Entries   int
	SizeBytes int64
}

// Index returns statistics about the current epoch's local index, or
// false when the engine was built with SkipIndex.
func (e *Engine) Index() (IndexStats, bool) {
	ep := e.current()
	if ep.idx == nil {
		return IndexStats{}, false
	}
	return IndexStats{
		Landmarks: len(ep.idx.Landmarks()),
		Entries:   ep.idx.Entries(),
		SizeBytes: ep.idx.SizeBytes(),
	}, true
}

// Query is one LSCR query in terms of names.
type Query struct {
	// Source and Target are vertex names.
	Source, Target string
	// Labels is the label constraint; empty means "all labels".
	Labels []string
	// Constraint is a SPARQL SELECT with one projected variable; it must
	// be non-empty.
	Constraint string
	// Algorithm selects the strategy; the zero value is INS.
	Algorithm Algorithm
}

// Stats re-exports the per-query measures.
type Stats = core.Stats

// Result is a query answer.
type Result struct {
	Reachable bool
	Stats     Stats
	Elapsed   time.Duration
	// SatisfyingVertices is |V(S,G)| as computed by the engine (UIS
	// evaluates the constraint lazily and reports -1).
	SatisfyingVertices int
}

// Errors returned by Query and the deprecated Reach family.
var (
	ErrUnknownVertex = errors.New("lscr: unknown vertex name")
	ErrUnknownLabel  = errors.New("lscr: unknown label name")
	ErrNoIndex       = errors.New("lscr: engine built without index; INS unavailable")
	// ErrUnknownAlgorithm marks a Request.Algorithm value outside the
	// defined set.
	ErrUnknownAlgorithm = errors.New("lscr: unknown algorithm")
	// ErrInvalidRequest marks a Request whose fields contradict each
	// other — both Constraint and Constraints set, a constraint count
	// the selected algorithm cannot take, or an option (trace) the
	// selected strategy does not support.
	ErrInvalidRequest = errors.New("lscr: invalid request")
	// ErrNoConstraints and ErrTooManyConstraints bound a conjunctive
	// request's constraint list (1 to MaxConstraints entries).
	ErrNoConstraints      = core.ErrNoConstraints
	ErrTooManyConstraints = core.ErrTooManyConstraints
	// ErrConstraintSyntax is the SPARQL parser's sentinel, re-exported so
	// callers (the HTTP server's status mapping, notably) can classify
	// malformed constraint text with errors.Is instead of string matching.
	ErrConstraintSyntax = sparql.ErrSyntax
	// ErrInvalidConstraint marks a constraint that parses as SPARQL but is
	// not a valid substructure constraint (Definition 2.2) — e.g. the
	// projected focus variable occurs in no triple pattern.
	ErrInvalidConstraint = errors.New("lscr: invalid substructure constraint")
)

// compiledConstraint is one memoized constraint-compilation result: the
// resolved pattern, its matcher, its satisfiability, and — computed
// lazily because UIS never needs it — the V(S,G) vertex set. Entries
// are immutable once published (vs is set exactly once under the
// sync.Once), so a single entry may serve any number of concurrent
// queries.
type compiledConstraint struct {
	cons *pattern.Constraint
	// m is the matcher over cons, built at compile time so evaluation
	// cannot fail later; nil when !sat (there is nothing to match).
	m *pattern.Matcher
	// sat is false when the constraint references entities absent from
	// the KG: V(S,G) is empty by construction and every query answers
	// false without searching.
	sat  bool
	once sync.Once
	vs   []graph.VertexID
}

// vertexSet returns the memoized V(S,G), evaluating it on first use.
// Callers must not mutate the returned slice (the search algorithms only
// read it).
func (cc *compiledConstraint) vertexSet() []graph.VertexID {
	cc.once.Do(func() { cc.vs = cc.m.MatchAll() })
	return cc.vs
}

// compileConstraint is the single query-compile path behind every query
// shape: it parses the constraint text, resolves it against the epoch's
// graph view, validates it, and memoizes the result (keyed by the exact
// constraint text) when the cache is enabled. The cache lives on the
// epoch, whose view is immutable, so entries never go stale; a mutation
// publishes a new epoch with a fresh cache.
func (ep *epoch) compileConstraint(text string) (*compiledConstraint, error) {
	if ep.cache != nil {
		if cc, ok := ep.cache.Get(text); ok {
			return cc, nil
		}
	}
	parsed, err := sparql.Parse(text)
	if err != nil {
		return nil, err
	}
	cons, sat, err := parsed.Compile(ep.kg.g)
	if err != nil {
		// Compile validates the pattern structure (Definition 2.2); its
		// only errors are validation failures on the client's text.
		return nil, classifyConstraintErr(err)
	}
	cc := &compiledConstraint{cons: cons, sat: sat}
	if sat {
		// Building the matcher here (it is just a validation pass plus a
		// wrapper) means V(S,G) evaluation cannot fail at query time.
		cc.m, err = pattern.NewMatcher(ep.kg.g, cons)
		if err != nil {
			return nil, classifyConstraintErr(err)
		}
	}
	if ep.cache != nil {
		// Two goroutines may race to compile the same text; both publish
		// equivalent immutable entries and the second Add wins harmlessly.
		ep.cache.Add(text, cc)
	}
	return cc, nil
}

// classifyConstraintErr tags a SPARQL-layer error with the matching
// exported sentinel so callers (the server's status mapping, notably)
// can classify it with errors.Is: parse failures already carry
// ErrConstraintSyntax; everything else the layer returns is a
// validation failure on the client's query text.
func classifyConstraintErr(err error) error {
	if errors.Is(err, ErrConstraintSyntax) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrInvalidConstraint, err)
}

// resolveLabels maps label names to the compiled label set; empty means
// the whole label universe.
func (ep *epoch) resolveLabels(labels []string) (labelset.Set, error) {
	g := ep.kg.g
	if len(labels) == 0 {
		return g.LabelUniverse(), nil
	}
	var L labelset.Set
	for _, name := range labels {
		l, ok := g.LabelByName(name)
		if !ok {
			return L, fmt.Errorf("%w: %q", ErrUnknownLabel, name)
		}
		L = L.Add(l)
	}
	return L, nil
}

// resolveEndpoints maps the query's vertex and label names to IDs — the
// name-resolution half of the compile path.
func (ep *epoch) resolveEndpoints(source, target string, labels []string) (core.Query, error) {
	g := ep.kg.g
	s := g.Vertex(source)
	if s == graph.NoVertex {
		return core.Query{}, fmt.Errorf("%w: %q", ErrUnknownVertex, source)
	}
	t := g.Vertex(target)
	if t == graph.NoVertex {
		return core.Query{}, fmt.Errorf("%w: %q", ErrUnknownVertex, target)
	}
	L, err := ep.resolveLabels(labels)
	if err != nil {
		return core.Query{}, err
	}
	return core.Query{Source: s, Target: t, Labels: L}, nil
}

// Reach answers q.
//
// Deprecated: use Query, which adds context cancellation, per-request
// deadlines, witnesses, traces and conjunctive constraints behind one
// entry point. Reach is a thin wrapper over Query with a background
// context and answers identically.
func (e *Engine) Reach(q Query) (Result, error) {
	resp, err := e.Query(context.Background(), q.request())
	return resp.result(), err
}

// request maps the deprecated single-constraint query shape onto the
// unified Request. The constraint goes through Constraints (not the
// shorthand field) so an empty text reaches the compiler and fails
// with the same syntax error it always did.
func (q Query) request() Request {
	return Request{
		Source:      q.Source,
		Target:      q.Target,
		Labels:      q.Labels,
		Constraints: []string{q.Constraint},
		Algorithm:   q.Algorithm,
	}
}

// MultiQuery is a conjunctive LSCR query: the path must pass, for every
// listed constraint, some vertex satisfying it (possibly different
// vertices, in any order). See Engine.ReachAll.
type MultiQuery struct {
	Source, Target string
	Labels         []string
	// Constraints are SPARQL SELECTs, each with one projected variable.
	// At most 16.
	Constraints []string
}

// ReachAll answers a conjunctive LSCR query with the generalised
// uninformed search (UIS over satisfied-set states). A constraint that
// references entities absent from the KG is unsatisfiable and makes the
// answer false.
//
// Deprecated: use Query with several Constraints (or Algorithm
// Conjunctive). ReachAll is a thin wrapper over Query with a background
// context and answers identically.
func (e *Engine) ReachAll(q MultiQuery) (Result, error) {
	resp, err := e.Query(context.Background(), q.request())
	return resp.result(), err
}

// request maps the deprecated conjunctive query shape onto the unified
// Request. Algorithm Conjunctive preserves ReachAll's semantics even
// for one constraint (the generalised search, not the single-
// constraint UIS).
func (q MultiQuery) request() Request {
	return Request{
		Source:      q.Source,
		Target:      q.Target,
		Labels:      q.Labels,
		Constraints: q.Constraints,
		Algorithm:   Conjunctive,
	}
}

// MultiPath is the witness of a true conjunctive answer: the walk plus,
// per constraint (in query order), the walk vertex satisfying it.
type MultiPath struct {
	Hops        []PathHop
	SatisfiedBy []string
}

// ReachAllWithWitness answers a conjunctive query and, when true, also
// returns the witness walk with one satisfying vertex per constraint.
//
// Deprecated: use Query with several Constraints and WantWitness set.
// ReachAllWithWitness is a thin wrapper over Query with a background
// context and answers identically.
func (e *Engine) ReachAllWithWitness(q MultiQuery) (Result, *MultiPath, error) {
	req := q.request()
	req.WantWitness = true
	resp, err := e.Query(context.Background(), req)
	return resp.result(), resp.Witness.ToMultiPath(), err
}

// PathHop is one edge of a witness path, in vertex/label names.
type PathHop struct {
	From, Label, To string
}

// Path is a witness for a true LSCR answer: a concrete s→t walk whose
// labels all satisfy the label constraint and whose Satisfying vertex
// satisfies the substructure constraint. For the paper's crime-detection
// scenario this is the evidence chain itself.
type Path struct {
	Hops       []PathHop
	Satisfying string
}

// String renders the path as "a -[l]-> b -[m]-> c".
func (p *Path) String() string {
	if len(p.Hops) == 0 {
		return p.Satisfying
	}
	var b strings.Builder
	b.WriteString(p.Hops[0].From)
	for _, h := range p.Hops {
		fmt.Fprintf(&b, " -[%s]-> %s", h.Label, h.To)
	}
	return b.String()
}

// ReachWithWitness answers q and, when the answer is true, also returns a
// witness path. The witness is nil for false answers.
//
// Deprecated: use Query with WantWitness set. ReachWithWitness is a
// thin wrapper over Query with a background context and answers
// identically.
func (e *Engine) ReachWithWitness(q Query) (Result, *Path, error) {
	req := q.request()
	req.WantWitness = true
	resp, err := e.Query(context.Background(), req)
	return resp.result(), resp.Witness.ToPath(), err
}

// ReachTraced answers q while recording the search tree of Definition
// 3.2 (the paper's Figures 4, 6, 7) and writes it to dot as a Graphviz
// digraph: F-state nodes blue, T-state nodes red, index-driven markings
// dashed. Pass a nil dot writer to skip rendering (the Result still
// reflects the traced run).
//
// Deprecated: use Query with WantTrace set; the rendered digraph comes
// back in Response.TraceDOT. ReachTraced is a thin wrapper over Query
// with a background context and answers identically.
func (e *Engine) ReachTraced(q Query, dot io.Writer) (Result, error) {
	req := q.request()
	req.WantTrace = true
	resp, err := e.Query(context.Background(), req)
	if err != nil {
		return Result{}, err
	}
	if dot != nil && resp.TraceDOT != "" {
		if _, err := io.WriteString(dot, resp.TraceDOT); err != nil {
			return resp.result(), err
		}
	}
	return resp.result(), nil
}

// SaveIndex serialises the current epoch's local index (format
// documented in the internal encoder: versioned magic + CRC32 footer).
// It fails when the engine was built with SkipIndex. The saved index
// describes the epoch's base CSR; if the epoch carries an uncompacted
// overlay, call Compact first to save an index covering every mutation.
func (e *Engine) SaveIndex(w io.Writer) error {
	ep := e.current()
	if ep.idx == nil {
		return ErrNoIndex
	}
	_, err := ep.idx.WriteTo(w)
	return err
}

// NewEngineFromIndex builds an engine whose local index is loaded from r
// (written earlier by SaveIndex against the same KG) instead of being
// recomputed. Only opts.ConstraintCacheSize applies — the index-build
// fields (SkipIndex, Landmarks, IndexSeed, IndexWorkers) are properties
// of the saved index and are ignored.
func NewEngineFromIndex(kg *KG, r io.Reader, opts Options) (*Engine, error) {
	idx, err := core.ReadLocalIndex(r, kg.g)
	if err != nil {
		return nil, err
	}
	e := &Engine{opts: opts}
	e.ep.Store(e.newEpoch(0, kg.g, idx, 0))
	prewarmScratch(kg.g)
	return e, nil
}

// Select evaluates a SPARQL SELECT and returns the matching vertex names
// (V(S,G) by name) — the substructure-constraint half of the system,
// usable standalone. Multi-variable queries project their first variable;
// use SelectAll for full rows.
func (e *Engine) Select(query string) ([]string, error) {
	ep := e.current()
	ids, err := ep.eng.Select(query)
	if err != nil {
		return nil, classifyConstraintErr(err)
	}
	out := make([]string, len(ids))
	for i, v := range ids {
		out[i] = ep.kg.g.VertexName(v)
	}
	return out, nil
}

// SelectAll evaluates a (possibly multi-variable) SPARQL SELECT and
// returns one map per distinct result row, keyed by variable name.
func (e *Engine) SelectAll(query string) ([]map[string]string, error) {
	ep := e.current()
	vars, rows, err := ep.eng.SelectTuples(query)
	if err != nil {
		return nil, classifyConstraintErr(err)
	}
	out := make([]map[string]string, 0, len(rows))
	for _, r := range rows {
		m := make(map[string]string, len(vars))
		for i, v := range vars {
			m[v] = ep.kg.g.VertexName(r[i])
		}
		out = append(out, m)
	}
	return out, nil
}
