package lscr

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// fincrimeKG is the paper's §1 scenario as a triple stream: an indirect
// transaction chain from SuspectC to SuspectP where middleman X is
// married to Amy.
const fincrimeKG = `
<SuspectC> <transfer2019-04> <MiddlemanX> .
<MiddlemanX> <transfer2019-04> <AccountA> .
<AccountA> <transfer2019-04> <SuspectP> .
<MiddlemanX> <married-to> <Amy> .
<SuspectC> <transfer2019-05> <SuspectP> .
<Decoy> <married-to> <Beth> .
<SuspectC> <friend-of> <Decoy> .
`

func loadFincrime(t *testing.T) *KG {
	t.Helper()
	kg, err := Load(strings.NewReader(fincrimeKG))
	if err != nil {
		t.Fatal(err)
	}
	return kg
}

func TestPublicAPIScenario(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	if st, ok := eng.Index(); !ok || st.Landmarks == 0 {
		t.Fatalf("index stats: %+v ok=%v", st, ok)
	}
	q := Query{
		Source: "SuspectC", Target: "SuspectP",
		Labels:     []string{"transfer2019-04", "married-to"},
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
	}
	for _, algo := range []Algorithm{INS, UIS, UISStar} {
		q.Algorithm = algo
		res, err := eng.Reach(q)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !res.Reachable {
			t.Errorf("%v: the April 2019 chain through MiddlemanX exists", algo)
		}
	}
	// Restricting to May transfers breaks the substructure condition:
	// the direct May edge passes no married-to-Amy vertex.
	q.Labels = []string{"transfer2019-05"}
	q.Algorithm = INS
	res, err := eng.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Error("May-only transfer should not satisfy the constraint")
	}
}

func TestPublicAPIEmptyLabelsMeansUniverse(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	res, err := eng.Reach(Query{
		Source: "SuspectC", Target: "SuspectP",
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Error("universe label constraint should find the chain")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	c := `SELECT ?x WHERE { ?x <married-to> <Amy>. }`
	if _, err := eng.Reach(Query{Source: "nope", Target: "SuspectP", Constraint: c}); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := eng.Reach(Query{Source: "SuspectC", Target: "nope", Constraint: c}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := eng.Reach(Query{Source: "SuspectC", Target: "SuspectP", Labels: []string{"bogus"}, Constraint: c}); err == nil {
		t.Error("unknown label accepted")
	}
	if _, err := eng.Reach(Query{Source: "SuspectC", Target: "SuspectP", Constraint: "garbage"}); err == nil {
		t.Error("malformed constraint accepted")
	}
	if _, err := eng.Reach(Query{Source: "SuspectC", Target: "SuspectP", Constraint: c, Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Unknown entities in the constraint are a valid empty result.
	res, err := eng.Reach(Query{Source: "SuspectC", Target: "SuspectP",
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Nobody>. }`})
	if err != nil || res.Reachable {
		t.Errorf("unknown constraint entity: res=%+v err=%v", res, err)
	}
	// SkipIndex forbids INS but not the others.
	noIdx := NewEngine(kg, Options{SkipIndex: true})
	if _, ok := noIdx.Index(); ok {
		t.Error("Index() reported stats without an index")
	}
	if _, err := noIdx.Reach(Query{Source: "SuspectC", Target: "SuspectP", Constraint: c}); err != ErrNoIndex {
		t.Errorf("INS without index: %v", err)
	}
	if _, err := noIdx.Reach(Query{Source: "SuspectC", Target: "SuspectP", Constraint: c, Algorithm: UIS}); err != nil {
		t.Errorf("UIS without index: %v", err)
	}
}

// TestUnsatisfiableConstraintConsistency: the unsatisfiable-constraint
// early return reports SatisfyingVertices exactly as the normal path
// would — UIS evaluates lazily (-1), UIS*/INS report |V(S,G)| = 0. The
// early return used to answer 0 for UIS, diverging from every other UIS
// result.
func TestUnsatisfiableConstraintConsistency(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	q := Query{Source: "SuspectC", Target: "SuspectP",
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Nobody>. }`}
	want := map[Algorithm]int{UIS: -1, UISStar: 0, INS: 0}
	for algo, sv := range want {
		q.Algorithm = algo
		res, err := eng.Reach(q)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Reachable {
			t.Errorf("%v: unsatisfiable constraint answered true", algo)
		}
		if res.SatisfyingVertices != sv {
			t.Errorf("%v: SatisfyingVertices = %d, want %d", algo, res.SatisfyingVertices, sv)
		}
	}
	// The early return still validates the algorithm and index like the
	// normal path.
	q.Algorithm = Algorithm(99)
	if _, err := eng.Reach(q); err == nil {
		t.Error("unknown algorithm accepted on the early-return path")
	}
	noIdx := NewEngine(kg, Options{SkipIndex: true})
	q.Algorithm = INS
	if _, err := noIdx.Reach(q); err != ErrNoIndex {
		t.Errorf("INS without index on the early-return path: %v", err)
	}
}

// TestErrorSentinels: parse and validation failures are classifiable
// with errors.Is through the exported sentinels.
func TestErrorSentinels(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	_, err := eng.Reach(Query{Source: "SuspectC", Target: "SuspectP", Constraint: "SELECT garbage"})
	if !errors.Is(err, ErrConstraintSyntax) {
		t.Errorf("parse failure is not ErrConstraintSyntax: %v", err)
	}
	_, err = eng.Reach(Query{Source: "SuspectC", Target: "SuspectP",
		Constraint: `SELECT ?x WHERE { ?y <married-to> <Amy>. }`})
	if !errors.Is(err, ErrInvalidConstraint) {
		t.Errorf("focus-unused failure is not ErrInvalidConstraint: %v", err)
	}
	_, err = eng.Reach(Query{Source: "nope", Target: "SuspectP",
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`})
	if !errors.Is(err, ErrUnknownVertex) {
		t.Errorf("unknown source is not ErrUnknownVertex: %v", err)
	}
	// Select bypasses the constraint-compile path but must classify its
	// errors identically: parse failures carry ErrConstraintSyntax,
	// validation failures ErrInvalidConstraint.
	if _, err := eng.Select("SELECT garbage"); !errors.Is(err, ErrConstraintSyntax) {
		t.Errorf("Select parse failure is not ErrConstraintSyntax: %v", err)
	}
	if _, err := eng.Select(`SELECT ?x WHERE { ?y <married-to> <Amy>. }`); !errors.Is(err, ErrInvalidConstraint) {
		t.Errorf("Select focus-unused failure is not ErrInvalidConstraint: %v", err)
	}
	if _, err := eng.SelectAll(`SELECT ?x WHERE { ?y <married-to> <Amy>. }`); !errors.Is(err, ErrInvalidConstraint) {
		t.Errorf("SelectAll focus-unused failure is not ErrInvalidConstraint: %v", err)
	}
}

// TestCacheStatsCounters: hits/misses/entries track Reach traffic, and a
// negative ConstraintCacheSize disables the cache entirely.
func TestCacheStatsCounters(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	if st := eng.CacheStats(); !st.Enabled || st.Capacity != DefaultConstraintCacheSize ||
		st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("fresh cache stats = %+v", st)
	}
	q := Query{Source: "SuspectC", Target: "SuspectP",
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`}
	for i := 0; i < 5; i++ {
		if _, err := eng.Reach(q); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.CacheStats(); st.Misses != 1 || st.Hits != 4 || st.Entries != 1 {
		t.Fatalf("after 5 identical queries: %+v", st)
	}

	off := NewEngine(kg, Options{SkipIndex: true, ConstraintCacheSize: -1})
	q.Algorithm = UIS
	if _, err := off.Reach(q); err != nil {
		t.Fatal(err)
	}
	if st := off.CacheStats(); st.Enabled || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled cache stats = %+v", st)
	}
}

func TestPublicSelect(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{SkipIndex: true})
	names, err := eng.Select(`SELECT ?x WHERE { ?x <married-to> ?y. }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("Select = %v", names)
	}
}

func TestPublicSelectAll(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{SkipIndex: true})
	rows, err := eng.SelectAll(`SELECT ?x ?y WHERE { ?x <married-to> ?y. }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	found := false
	for _, r := range rows {
		if r["x"] == "MiddlemanX" && r["y"] == "Amy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing MiddlemanX/Amy row: %v", rows)
	}
	if _, err := eng.SelectAll("garbage"); err == nil {
		t.Error("malformed query accepted")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	kg := loadFincrime(t)
	var buf bytes.Buffer
	if err := kg.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	kg2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kg2.NumVertices() != kg.NumVertices() || kg2.NumEdges() != kg.NumEdges() || kg2.NumLabels() != kg.NumLabels() {
		t.Fatal("round trip changed the KG")
	}
}

func TestAlgorithmString(t *testing.T) {
	if INS.String() != "INS" || UIS.String() != "UIS" || UISStar.String() != "UIS*" {
		t.Error("Algorithm.String broken")
	}
	if Algorithm(42).String() == "" {
		t.Error("unknown algorithm renders empty")
	}
}

func TestLoadError(t *testing.T) {
	if _, err := Load(strings.NewReader("not a triple")); err == nil {
		t.Error("malformed input accepted")
	}
}
