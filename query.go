package lscr

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	core "lscr/internal/lscr"
)

// Request is one LSCR query in the unified v1 API: it subsumes the
// whole deprecated Reach* family. A request with one constraint runs
// the selected single-constraint Algorithm (INS by default); a request
// with several constraints — or with Algorithm set to Conjunctive —
// runs the generalised conjunctive search, which requires a path
// passing, for every constraint, some vertex satisfying it.
type Request struct {
	// Source and Target are vertex names.
	Source, Target string
	// Labels is the label constraint; empty means "all labels".
	Labels []string
	// Constraint is the single substructure constraint (a SPARQL SELECT
	// with one projected variable) — shorthand for a one-element
	// Constraints. Setting both fields is an error.
	Constraint string
	// Constraints lists the substructure constraints. One constraint
	// selects the single-constraint algorithms; several (at most
	// MaxConstraints) select the conjunctive search.
	Constraints []string
	// Algorithm picks the strategy for single-constraint requests; the
	// zero value is INS. Conjunctive forces the conjunctive search even
	// for one constraint. Multi-constraint requests run conjunctively:
	// leave Algorithm zero or set it to Conjunctive explicitly.
	Algorithm Algorithm
	// WantWitness also returns, for a true answer, a concrete witness
	// path with the satisfying vertex per constraint.
	WantWitness bool
	// WantTrace records the search tree of Definition 3.2 and returns
	// it rendered as Graphviz DOT. Not supported for conjunctive
	// requests.
	WantTrace bool
	// Timeout, when positive, bounds this request: the context passed
	// to Query is additionally limited to Timeout, so the search aborts
	// with context.DeadlineExceeded once it expires.
	Timeout time.Duration
}

// MaxConstraints bounds a conjunctive request's constraint count.
const MaxConstraints = core.MaxMultiConstraints

// constraintTexts resolves the Constraint shorthand against
// Constraints.
func (r Request) constraintTexts() ([]string, error) {
	if r.Constraint != "" {
		if len(r.Constraints) > 0 {
			return nil, fmt.Errorf("%w: both Constraint and Constraints are set", ErrInvalidRequest)
		}
		return []string{r.Constraint}, nil
	}
	return r.Constraints, nil
}

// Witness certifies a true answer: a concrete Source→Target walk whose
// labels all satisfy the label constraint, plus — per constraint, in
// request order — a walk vertex satisfying it. For the paper's
// crime-detection scenario this is the evidence chain itself.
type Witness struct {
	Hops []PathHop
	// SatisfiedBy[i] is the walk vertex satisfying the i'th constraint.
	SatisfiedBy []string
}

// String renders the walk as "a -[l]-> b -[m]-> c".
func (w *Witness) String() string {
	var b strings.Builder
	if len(w.Hops) == 0 {
		if len(w.SatisfiedBy) > 0 {
			return w.SatisfiedBy[0]
		}
		return ""
	}
	b.WriteString(w.Hops[0].From)
	for _, h := range w.Hops {
		fmt.Fprintf(&b, " -[%s]-> %s", h.Label, h.To)
	}
	return b.String()
}

// ToPath converts to the pre-v1 single-constraint witness shape. It
// is the compatibility shim behind the deprecated ReachWithWitness
// wrapper and the server's deprecated /reach route; new code should
// consume Witness directly.
func (w *Witness) ToPath() *Path {
	if w == nil {
		return nil
	}
	p := &Path{Hops: w.Hops}
	if len(w.SatisfiedBy) > 0 {
		p.Satisfying = w.SatisfiedBy[0]
	}
	return p
}

// ToMultiPath converts to the pre-v1 conjunctive witness shape (see
// ToPath).
func (w *Witness) ToMultiPath() *MultiPath {
	if w == nil {
		return nil
	}
	return &MultiPath{Hops: w.Hops, SatisfiedBy: w.SatisfiedBy}
}

// Response is a query answer.
type Response struct {
	Reachable bool
	// Stats carries the paper's per-query evaluation measures.
	Stats Stats
	// Elapsed is the search time (excluding name resolution, constraint
	// compilation and witness reconstruction).
	Elapsed time.Duration
	// SatisfyingVertices is |V(S,G)| as computed by the engine; the
	// algorithms that evaluate the constraint lazily (UIS and the
	// conjunctive search) report -1.
	SatisfyingVertices int
	// Algorithm is the strategy that actually ran (Conjunctive for
	// multi-constraint requests).
	Algorithm Algorithm
	// Witness is set for true answers when the request asked for one.
	Witness *Witness
	// TraceDOT is the recorded search tree rendered as a Graphviz
	// digraph, when the request asked for one and a search ran.
	TraceDOT string
}

// result converts to the deprecated Result shape.
func (r Response) result() Result {
	return Result{
		Reachable:          r.Reachable,
		Stats:              r.Stats,
		Elapsed:            r.Elapsed,
		SatisfyingVertices: r.SatisfyingVertices,
	}
}

// interruptFrom derives the core layer's poll function from ctx. A
// context that can never be cancelled — one whose Done returns nil,
// like context.Background() and context.TODO() — yields a nil poll
// function, which keeps the search loops on their zero-overhead path
// and makes the answer bit-identical to the deprecated context-free
// methods.
//
// Deadlines are additionally checked against the clock, not just the
// Done channel: closing Done relies on a runtime timer getting
// scheduled, which on a saturated single-core host can lag ~10 ms
// behind expiry — long enough for a short query to finish and defeat
// a tight per-request budget.
func interruptFrom(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	deadline, hasDeadline := ctx.Deadline()
	return func() error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if hasDeadline && !time.Now().Before(deadline) {
			return context.DeadlineExceeded
		}
		return nil
	}
}

// Query answers req, honouring ctx: cancellation or deadline expiry
// aborts the search mid-flight (the hot loops poll every few thousand
// edge expansions) and returns ctx.Err(). A non-cancellable context —
// context.Background(), context.TODO(), or any context whose Done
// channel is nil — skips the poll entirely, so the answer is
// bit-identical to the deprecated Reach family at zero overhead.
// Query is safe for concurrent use, like every read path of the
// Engine; it resolves against the epoch current when it starts, so a
// concurrent Apply or compaction never changes an in-flight answer.
func (e *Engine) Query(ctx context.Context, req Request) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	itr := interruptFrom(ctx)
	if itr != nil {
		if err := itr(); err != nil {
			return Response{}, err
		}
	}
	texts, err := req.constraintTexts()
	if err != nil {
		return Response{}, err
	}
	// The epoch is loaded exactly once: graph view, index, caches and
	// name resolution all come from this snapshot for the whole query.
	ep := e.current()
	cq, err := ep.resolveEndpoints(req.Source, req.Target, req.Labels)
	if err != nil {
		return Response{}, err
	}
	cq.Interrupt = itr
	if req.Algorithm == Conjunctive || len(texts) > 1 {
		return ep.queryMulti(req, cq, texts)
	}
	return ep.querySingle(req, cq, texts)
}

// querySingle runs a one-constraint request with the selected
// single-constraint algorithm. It is the engine behind the deprecated
// Reach, ReachWithWitness and ReachTraced.
func (ep *epoch) querySingle(req Request, cq core.Query, texts []string) (Response, error) {
	g := ep.kg.g
	switch req.Algorithm {
	case INS, UIS, UISStar:
	default:
		return Response{}, fmt.Errorf("%w %v", ErrUnknownAlgorithm, req.Algorithm)
	}
	if req.Algorithm == INS && ep.idx == nil {
		return Response{}, ErrNoIndex
	}
	if len(texts) != 1 {
		return Response{}, fmt.Errorf("%w: algorithm %v takes exactly one constraint, got %d",
			ErrInvalidRequest, req.Algorithm, len(texts))
	}
	cc, err := ep.compileConstraint(texts[0])
	if err != nil {
		return Response{}, err
	}
	if cq.Interrupt != nil {
		// Compilation may have been slow; honour a deadline that fired
		// during it before starting the search.
		if err := cq.Interrupt(); err != nil {
			return Response{}, err
		}
	}
	resp := Response{Algorithm: req.Algorithm}
	start := time.Now()
	if !cc.sat {
		// The constraint references entities absent from the KG: V(S,G)
		// is empty and the answer is false for every algorithm.
		// SatisfyingVertices mirrors the normal path's convention — UIS
		// evaluates the constraint lazily and reports -1, UIS*/INS
		// report |V(S,G)| = 0.
		resp.Elapsed = time.Since(start)
		if req.Algorithm == UIS {
			resp.SatisfyingVertices = -1
		}
		return resp, nil
	}
	cq.Constraint = cc.cons

	var tree *core.SearchTree
	if req.WantTrace {
		tree = &core.SearchTree{}
	}
	var (
		ok  bool
		st  Stats
		nVS int
	)
	switch req.Algorithm {
	case UIS:
		if tree != nil {
			ok, st, err = core.UISTraced(g, cq, tree)
		} else {
			ok, st, err = core.UIS(g, cq)
		}
		nVS = -1
	case UISStar:
		vs := cc.vertexSet()
		nVS = len(vs)
		if tree != nil {
			ok, st, err = core.UISStarTraced(g, cq, vs, tree)
		} else {
			ok, st, err = core.UISStar(g, cq, vs)
		}
	case INS:
		vs := cc.vertexSet()
		nVS = len(vs)
		if tree != nil {
			ok, st, err = core.INSTraced(g, ep.idx, cq, vs, tree)
		} else {
			ok, st, err = core.INS(g, ep.idx, cq, vs)
		}
	}
	if err != nil {
		return Response{}, err
	}
	resp.Reachable = ok
	resp.Stats = st
	resp.Elapsed = time.Since(start)
	resp.SatisfyingVertices = nVS
	if tree != nil {
		var b strings.Builder
		if err := tree.WriteDOT(&b, req.Algorithm.String(), g.VertexName); err != nil {
			return Response{}, err
		}
		resp.TraceDOT = b.String()
	}
	if req.WantWitness && ok {
		w, found := core.FindWitness(g, cq.Source, cq.Target, st.Satisfying, cq.Labels)
		if !found {
			// Cannot happen for a sound algorithm; fail loudly rather
			// than fabricate evidence.
			return resp, fmt.Errorf("lscr: internal error: no witness for a true answer")
		}
		uw := &Witness{SatisfiedBy: []string{g.VertexName(w.Satisfying)}}
		for _, h := range w.Hops {
			uw.Hops = append(uw.Hops, PathHop{
				From:  g.VertexName(h.From),
				Label: g.LabelName(h.Label),
				To:    g.VertexName(h.To),
			})
		}
		resp.Witness = uw
	}
	return resp, nil
}

// queryMulti runs a conjunctive request with the generalised
// uninformed search. It is the engine behind the deprecated ReachAll
// and ReachAllWithWitness.
func (ep *epoch) queryMulti(req Request, cq core.Query, texts []string) (Response, error) {
	g := ep.kg.g
	if req.WantTrace {
		return Response{}, fmt.Errorf("%w: trace is not supported for conjunctive requests", ErrInvalidRequest)
	}
	// The zero Algorithm (INS) on a multi-constraint request means "the
	// caller did not pick": the conjunctive search is the only strategy
	// for conjunctions. An explicit single-constraint choice is a
	// contradiction worth reporting.
	if req.Algorithm != Conjunctive && req.Algorithm != INS {
		return Response{}, fmt.Errorf("%w: algorithm %v cannot answer a %d-constraint conjunction",
			ErrInvalidRequest, req.Algorithm, len(texts))
	}
	mq := core.MultiQuery{
		Source:    cq.Source,
		Target:    cq.Target,
		Labels:    cq.Labels,
		Interrupt: cq.Interrupt,
	}
	for _, text := range texts {
		cc, err := ep.compileConstraint(text)
		if err != nil {
			return Response{}, err
		}
		if !cc.sat {
			// An unsatisfiable conjunct (V(S_i, G) empty by
			// construction) makes the answer false without searching.
			return Response{SatisfyingVertices: -1, Algorithm: Conjunctive}, nil
		}
		mq.Constraints = append(mq.Constraints, cc.cons)
	}
	if cq.Interrupt != nil {
		if err := cq.Interrupt(); err != nil {
			return Response{}, err
		}
	}
	resp := Response{SatisfyingVertices: -1, Algorithm: Conjunctive}
	start := time.Now()
	if !req.WantWitness {
		ok, st, err := core.UISMulti(g, mq)
		if err != nil {
			return Response{}, err
		}
		resp.Reachable = ok
		resp.Stats = st
		resp.Elapsed = time.Since(start)
		return resp, nil
	}
	ok, w, st, err := core.UISMultiWitness(g, mq)
	if err != nil {
		return Response{}, err
	}
	resp.Reachable = ok
	resp.Stats = st
	resp.Elapsed = time.Since(start)
	if ok {
		uw := &Witness{}
		for _, h := range w.Hops {
			uw.Hops = append(uw.Hops, PathHop{
				From:  g.VertexName(h.From),
				Label: g.LabelName(h.Label),
				To:    g.VertexName(h.To),
			})
		}
		for _, v := range w.SatisfiedBy {
			uw.SatisfiedBy = append(uw.SatisfiedBy, g.VertexName(v))
		}
		resp.Witness = uw
	}
	return resp, nil
}

// BatchOptions configures QueryBatch.
type BatchOptions struct {
	// Concurrency bounds the worker goroutines; 0 means GOMAXPROCS.
	// The fan-out is additionally clamped to the batch length.
	Concurrency int
}

// QueryOutcome pairs one request of a QueryBatch call with its answer.
// Exactly one of Err or a meaningful Response is set per entry.
type QueryOutcome struct {
	Response Response
	Err      error
}

// QueryBatch answers every request of reqs over a bounded worker pool,
// returning outcomes in request order; a failing request records its
// error in its own slot without affecting the others. Answers are
// identical to calling Query once per request serially, and repeated
// constraint texts compile once via the engine's constraint cache.
//
// Cancelling ctx stops the batch promptly: requests already running
// abort mid-search, and slots not yet scheduled record ctx.Err()
// without running at all.
func (e *Engine) QueryBatch(ctx context.Context, reqs []Request, opts BatchOptions) []QueryOutcome {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]QueryOutcome, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	concurrency := opts.Concurrency
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	if concurrency > len(reqs) {
		concurrency = len(reqs)
	}
	run := func(i int) {
		if err := ctx.Err(); err != nil {
			// The batch was cancelled before this slot was scheduled.
			out[i].Err = err
			return
		}
		out[i].Response, out[i].Err = e.Query(ctx, reqs[i])
	}
	if concurrency == 1 {
		for i := range reqs {
			run(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return out
}
