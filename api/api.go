// Package api is the versioned wire contract of the lscrd HTTP
// service: the JSON shapes of the /v1 endpoints plus the conversions
// between them and the engine's native Request/Response. The server
// (package lscr/server) and the typed client (package lscr/client)
// both build on these types, so they cannot drift apart.
package api

import (
	"fmt"
	"strings"
	"time"

	"lscr"
)

// Version is the API generation these types describe; it is also the
// path prefix of the endpoints (/v1/query, /v1/batch).
const Version = "v1"

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	Source string   `json:"source"`
	Target string   `json:"target"`
	Labels []string `json:"labels,omitempty"`
	// Constraint is shorthand for a one-element Constraints; setting
	// both is an error.
	Constraint  string   `json:"constraint,omitempty"`
	Constraints []string `json:"constraints,omitempty"`
	// Algorithm is "ins" (default), "uis", "uisstar" or "conjunctive".
	Algorithm string `json:"algorithm,omitempty"`
	Witness   bool   `json:"witness,omitempty"`
	Trace     bool   `json:"trace,omitempty"`
	// TimeoutMS bounds this query server-side, in milliseconds; expiry
	// answers 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Hop is one edge of a witness walk.
type Hop struct {
	From  string `json:"from"`
	Label string `json:"label"`
	To    string `json:"to"`
}

// Witness certifies a true answer: the walk plus, per constraint (in
// request order), the walk vertex satisfying it.
type Witness struct {
	Hops        []Hop    `json:"hops"`
	SatisfiedBy []string `json:"satisfied_by"`
}

// QueryResponse is the POST /v1/query reply.
type QueryResponse struct {
	Reachable          bool     `json:"reachable"`
	ElapsedUS          int64    `json:"elapsed_us"`
	PassedVertices     int      `json:"passed_vertices"`
	SearchTreeNodes    int      `json:"search_tree_nodes"`
	SatisfyingVertices int      `json:"satisfying_vertices"`
	Algorithm          string   `json:"algorithm"`
	Witness            *Witness `json:"witness,omitempty"`
	TraceDOT           string   `json:"trace_dot,omitempty"`
}

// BatchRequest is the POST /v1/batch body. Concurrency 0 means all
// cores (the server clamps it to the cores it actually has).
type BatchRequest struct {
	Queries     []QueryRequest `json:"queries"`
	Concurrency int            `json:"concurrency,omitempty"`
}

// BatchItem is one /v1/batch result: either the query-response fields
// or a per-query error (a bad query does not fail its batch).
type BatchItem struct {
	QueryResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/batch reply.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	Count   int         `json:"count"`
}

// Mutation is one operation of a POST /v1/mutate batch. Op is
// "add-edge", "delete-edge", "add-vertex" or "add-label"; add-edge and
// delete-edge use subject/label/object, add-vertex uses subject,
// add-label uses label.
type Mutation struct {
	Op      string `json:"op"`
	Subject string `json:"subject,omitempty"`
	Label   string `json:"label,omitempty"`
	Object  string `json:"object,omitempty"`
}

// MutateRequest is the POST /v1/mutate body. The batch commits
// atomically: on any error (unknown name or absent edge in a delete,
// malformed mutation, client disconnect before the body arrived)
// nothing is applied.
type MutateRequest struct {
	Mutations []Mutation `json:"mutations"`
}

// MutateResponse is the POST /v1/mutate reply.
type MutateResponse struct {
	// Epoch is the sequence number of the published snapshot; queries
	// issued after this reply see the batch.
	Epoch uint64 `json:"epoch"`
	// Added/Deleted count the batch's edge operations; NewVertices and
	// NewLabels the names it interned.
	Added       int `json:"added"`
	Deleted     int `json:"deleted"`
	NewVertices int `json:"new_vertices"`
	NewLabels   int `json:"new_labels"`
	// OverlayOps is the server's uncompacted operation count after the
	// batch; CompactionStarted reports that the batch crossed the
	// compaction threshold.
	OverlayOps        int  `json:"overlay_ops"`
	CompactionStarted bool `json:"compaction_started"`
}

// Health is the GET /healthz reply.
type Health struct {
	Status   string          `json:"status"`
	Version  string          `json:"version"`
	API      string          `json:"api"`
	Vertices int             `json:"vertices"`
	Edges    int             `json:"edges"`
	Labels   int             `json:"labels"`
	Cache    lscr.CacheStats `json:"cache"`
	Epoch    lscr.EpochInfo  `json:"epoch"`
	// Maintenance reports incremental index maintenance: cumulative
	// counters plus the serving epoch's dirty-landmark count and index
	// epoch, consistent with Epoch.
	Maintenance lscr.MaintStats `json:"maintenance"`
	// Durability reports the persistence state: sealed-segment epoch,
	// WAL tail size and last-fsync time for a persistent engine
	// (lscrd -data), Persistent=false for an in-memory one.
	Durability lscr.DurabilityInfo `json:"durability"`
}

// Error is the body of every non-2xx reply.
type Error struct {
	Error string `json:"error"`
}

// ParseAlgorithm maps a wire algorithm name to the engine's enum.
func ParseAlgorithm(s string) (lscr.Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "ins":
		return lscr.INS, nil
	case "uis":
		return lscr.UIS, nil
	case "uisstar", "uis*":
		return lscr.UISStar, nil
	case "conjunctive", "conj", "multi":
		return lscr.Conjunctive, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

// AlgorithmName maps the engine's enum to its canonical wire name.
func AlgorithmName(a lscr.Algorithm) string {
	switch a {
	case lscr.INS:
		return "ins"
	case lscr.UIS:
		return "uis"
	case lscr.UISStar:
		return "uisstar"
	case lscr.Conjunctive:
		return "conjunctive"
	}
	return a.String()
}

// ToRequest converts the wire shape to the engine's Request.
func (r QueryRequest) ToRequest() (lscr.Request, error) {
	algo, err := ParseAlgorithm(r.Algorithm)
	if err != nil {
		return lscr.Request{}, err
	}
	return lscr.Request{
		Source:      r.Source,
		Target:      r.Target,
		Labels:      r.Labels,
		Constraint:  r.Constraint,
		Constraints: r.Constraints,
		Algorithm:   algo,
		WantWitness: r.Witness,
		WantTrace:   r.Trace,
		Timeout:     time.Duration(r.TimeoutMS) * time.Millisecond,
	}, nil
}

// ToMutations converts the wire batch to the engine's mutation shape.
// Op strings pass through verbatim; the engine validates them (an
// unknown op rejects the whole batch).
func (r MutateRequest) ToMutations() []lscr.Mutation {
	out := make([]lscr.Mutation, len(r.Mutations))
	for i, m := range r.Mutations {
		out[i] = lscr.Mutation{
			Op:      lscr.MutationOp(m.Op),
			Subject: m.Subject,
			Label:   m.Label,
			Object:  m.Object,
		}
	}
	return out
}

// FromApplyResult converts the engine's apply report to the wire shape.
func FromApplyResult(res lscr.ApplyResult) MutateResponse {
	return MutateResponse{
		Epoch:             res.Epoch,
		Added:             res.Added,
		Deleted:           res.Deleted,
		NewVertices:       res.NewVertices,
		NewLabels:         res.NewLabels,
		OverlayOps:        res.OverlayOps,
		CompactionStarted: res.CompactionStarted,
	}
}

// FromResponse converts the engine's Response to the wire shape.
func FromResponse(resp lscr.Response) QueryResponse {
	out := QueryResponse{
		Reachable:          resp.Reachable,
		ElapsedUS:          resp.Elapsed.Microseconds(),
		PassedVertices:     resp.Stats.PassedVertices,
		SearchTreeNodes:    resp.Stats.SearchTreeNodes,
		SatisfyingVertices: resp.SatisfyingVertices,
		Algorithm:          AlgorithmName(resp.Algorithm),
		TraceDOT:           resp.TraceDOT,
	}
	if w := resp.Witness; w != nil {
		ww := &Witness{SatisfiedBy: w.SatisfiedBy}
		for _, h := range w.Hops {
			ww.Hops = append(ww.Hops, Hop{From: h.From, Label: h.Label, To: h.To})
		}
		out.Witness = ww
	}
	return out
}
