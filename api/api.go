// Package api is the versioned wire contract of the lscrd HTTP
// service: the JSON shapes of the /v1 endpoints plus the conversions
// between them and the engine's native Request/Response. The server
// (package lscr/server) and the typed client (package lscr/client)
// both build on these types, so they cannot drift apart.
package api

import (
	"fmt"
	"strings"
	"time"

	"lscr"
)

// Version is the API generation these types describe; it is also the
// path prefix of the endpoints (/v1/query, /v1/batch).
const Version = "v1"

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	Source string   `json:"source"`
	Target string   `json:"target"`
	Labels []string `json:"labels,omitempty"`
	// Constraint is shorthand for a one-element Constraints; setting
	// both is an error.
	Constraint  string   `json:"constraint,omitempty"`
	Constraints []string `json:"constraints,omitempty"`
	// Algorithm is "ins" (default), "uis", "uisstar" or "conjunctive".
	Algorithm string `json:"algorithm,omitempty"`
	Witness   bool   `json:"witness,omitempty"`
	Trace     bool   `json:"trace,omitempty"`
	// TimeoutMS bounds this query server-side, in milliseconds; expiry
	// answers 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Hop is one edge of a witness walk.
type Hop struct {
	From  string `json:"from"`
	Label string `json:"label"`
	To    string `json:"to"`
}

// Witness certifies a true answer: the walk plus, per constraint (in
// request order), the walk vertex satisfying it.
type Witness struct {
	Hops        []Hop    `json:"hops"`
	SatisfiedBy []string `json:"satisfied_by"`
}

// QueryResponse is the POST /v1/query reply.
type QueryResponse struct {
	Reachable          bool     `json:"reachable"`
	ElapsedUS          int64    `json:"elapsed_us"`
	PassedVertices     int      `json:"passed_vertices"`
	SearchTreeNodes    int      `json:"search_tree_nodes"`
	SatisfyingVertices int      `json:"satisfying_vertices"`
	Algorithm          string   `json:"algorithm"`
	Witness            *Witness `json:"witness,omitempty"`
	TraceDOT           string   `json:"trace_dot,omitempty"`
}

// BatchRequest is the POST /v1/batch body. Concurrency 0 means all
// cores (the server clamps it to the cores it actually has).
type BatchRequest struct {
	Queries     []QueryRequest `json:"queries"`
	Concurrency int            `json:"concurrency,omitempty"`
}

// BatchItem is one /v1/batch result: either the query-response fields
// or a per-query error (a bad query does not fail its batch).
type BatchItem struct {
	QueryResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/batch reply.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	Count   int         `json:"count"`
}

// Mutation is one operation of a POST /v1/mutate batch. Op is
// "add-edge", "delete-edge", "add-vertex" or "add-label"; add-edge and
// delete-edge use subject/label/object, add-vertex uses subject,
// add-label uses label.
type Mutation struct {
	Op      string `json:"op"`
	Subject string `json:"subject,omitempty"`
	Label   string `json:"label,omitempty"`
	Object  string `json:"object,omitempty"`
}

// MutateRequest is the POST /v1/mutate body. The batch commits
// atomically: on any error (unknown name or absent edge in a delete,
// malformed mutation, client disconnect before the body arrived)
// nothing is applied.
type MutateRequest struct {
	Mutations []Mutation `json:"mutations"`
}

// MutateResponse is the POST /v1/mutate reply.
type MutateResponse struct {
	// Epoch is the sequence number of the published snapshot; queries
	// issued after this reply see the batch.
	Epoch uint64 `json:"epoch"`
	// Added/Deleted count the batch's edge operations; NewVertices and
	// NewLabels the names it interned.
	Added       int `json:"added"`
	Deleted     int `json:"deleted"`
	NewVertices int `json:"new_vertices"`
	NewLabels   int `json:"new_labels"`
	// OverlayOps is the server's uncompacted operation count after the
	// batch; CompactionStarted reports that the batch crossed the
	// compaction threshold.
	OverlayOps        int  `json:"overlay_ops"`
	CompactionStarted bool `json:"compaction_started"`
}

// ReplicateBatch is one record of the GET /v1/replicate feed: the
// epoch it publishes, and either the mutation batch committed at that
// epoch or a seal marker (the writer compacted there; a follower folds
// its overlay at the same epoch).
type ReplicateBatch struct {
	Epoch     uint64     `json:"epoch"`
	Seal      bool       `json:"seal,omitempty"`
	Mutations []Mutation `json:"mutations,omitempty"`
}

// ReplicateResponse is the GET /v1/replicate reply: the feed records
// above the requested cursor (empty when the cursor was current for the
// whole long-poll window) plus the writer's serving and durable epochs
// at reply time, which let a follower report its own lag.
type ReplicateResponse struct {
	From         uint64           `json:"from"`
	Batches      []ReplicateBatch `json:"batches"`
	Epoch        uint64           `json:"epoch"`
	DurableEpoch uint64           `json:"durable_epoch"`
}

// SegmentEpochHeader carries the base epoch of the segment streamed by
// GET /v1/segment — the cursor a bootstrapping follower tails from.
const SegmentEpochHeader = "X-LSCR-Segment-Epoch"

// BudgetHeader carries the caller's remaining deadline budget in
// milliseconds. The gateway stamps it on relayed requests from its own
// context deadline, so a backend's admission queue and query both run
// under the time the end client actually has left.
const BudgetHeader = "X-LSCR-Budget-MS"

// AdmissionStats reports the server's admission gate on /healthz:
// bounded-inflight with a short wait queue; requests beyond both are
// shed with 429 + Retry-After.
type AdmissionStats struct {
	// Enabled is false when the server runs ungated (no WithAdmission);
	// all other fields are then zero.
	Enabled bool `json:"enabled"`
	// MaxInflight and MaxQueue are the configured bounds.
	MaxInflight int `json:"max_inflight,omitempty"`
	MaxQueue    int `json:"max_queue,omitempty"`
	// Inflight and Queued are point-in-time gauges.
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	// Admitted and Shed count requests since start.
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
}

// ReplicaHealth is one backend's state as the cluster gateway sees it.
type ReplicaHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Breaker is "closed" (routable) or "open" (failed out, cooling
	// down).
	Breaker string `json:"breaker"`
	// Epoch is the backend's last observed serving epoch; Lag is the
	// writer's epoch minus it.
	Epoch uint64 `json:"epoch"`
	Lag   uint64 `json:"lag"`
	// LatencyUS is the EWMA of recent read latencies, in microseconds.
	LatencyUS int64  `json:"latency_us"`
	Error     string `json:"error,omitempty"`
	// Shedding reports that the backend recently answered 429 and is
	// being routed around until its Retry-After elapses.
	Shedding bool `json:"shedding,omitempty"`
	// Poisoned reports that the backend's /healthz carried a fail-stop
	// poison cause; the gateway fails mutations static while reads
	// continue on the followers.
	Poisoned bool `json:"poisoned,omitempty"`
}

// ClusterHealth is the gateway's GET /healthz reply.
type ClusterHealth struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	API     string `json:"api"`
	// Role distinguishes the gateway's health shape from a single
	// engine's ("gateway").
	Role string `json:"role"`
	// Epoch is the cluster head: the writer's serving epoch.
	Epoch    uint64          `json:"epoch"`
	Writer   ReplicaHealth   `json:"writer"`
	Replicas []ReplicaHealth `json:"replicas"`
	// Sheds counts reads and mutations the gateway answered 429/503 for
	// because every eligible backend was shedding (or the writer was
	// poisoned); Inflight is the gateway's current hedged-read gauge.
	Sheds    int64 `json:"sheds"`
	Inflight int64 `json:"inflight"`
	// WriterPoisoned mirrors the writer's fail-stop state: mutations are
	// refused at the gateway while reads keep flowing to followers.
	WriterPoisoned bool `json:"writer_poisoned,omitempty"`
}

// Health is the GET /healthz reply.
type Health struct {
	Status   string          `json:"status"`
	Version  string          `json:"version"`
	API      string          `json:"api"`
	Vertices int             `json:"vertices"`
	Edges    int             `json:"edges"`
	Labels   int             `json:"labels"`
	Cache    lscr.CacheStats `json:"cache"`
	Epoch    lscr.EpochInfo  `json:"epoch"`
	// Maintenance reports incremental index maintenance: cumulative
	// counters plus the serving epoch's dirty-landmark count and index
	// epoch, consistent with Epoch.
	Maintenance lscr.MaintStats `json:"maintenance"`
	// Durability reports the persistence state: sealed-segment epoch,
	// WAL tail size and last-fsync time for a persistent engine
	// (lscrd -data), Persistent=false for an in-memory one.
	Durability lscr.DurabilityInfo `json:"durability"`
	// Poisoned carries the engine's fail-stop cause when a WAL/segment
	// write failure pinned it read-only (Status is then "degraded");
	// empty while healthy.
	Poisoned string `json:"poisoned,omitempty"`
	// Admission reports the load-shedding gate (zero-valued with
	// Enabled=false when the server runs ungated).
	Admission AdmissionStats `json:"admission"`
}

// Error is the body of every non-2xx reply.
type Error struct {
	Error string `json:"error"`
}

// ParseAlgorithm maps a wire algorithm name to the engine's enum.
func ParseAlgorithm(s string) (lscr.Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "ins":
		return lscr.INS, nil
	case "uis":
		return lscr.UIS, nil
	case "uisstar", "uis*":
		return lscr.UISStar, nil
	case "conjunctive", "conj", "multi":
		return lscr.Conjunctive, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

// AlgorithmName maps the engine's enum to its canonical wire name.
func AlgorithmName(a lscr.Algorithm) string {
	switch a {
	case lscr.INS:
		return "ins"
	case lscr.UIS:
		return "uis"
	case lscr.UISStar:
		return "uisstar"
	case lscr.Conjunctive:
		return "conjunctive"
	}
	return a.String()
}

// ToRequest converts the wire shape to the engine's Request.
func (r QueryRequest) ToRequest() (lscr.Request, error) {
	algo, err := ParseAlgorithm(r.Algorithm)
	if err != nil {
		return lscr.Request{}, err
	}
	return lscr.Request{
		Source:      r.Source,
		Target:      r.Target,
		Labels:      r.Labels,
		Constraint:  r.Constraint,
		Constraints: r.Constraints,
		Algorithm:   algo,
		WantWitness: r.Witness,
		WantTrace:   r.Trace,
		Timeout:     time.Duration(r.TimeoutMS) * time.Millisecond,
	}, nil
}

// ToMutations converts the wire batch to the engine's mutation shape.
// Op strings pass through verbatim; the engine validates them (an
// unknown op rejects the whole batch).
func (r MutateRequest) ToMutations() []lscr.Mutation {
	return ToEngineMutations(r.Mutations)
}

// ToEngineMutations converts wire mutations to the engine's shape.
func ToEngineMutations(ms []Mutation) []lscr.Mutation {
	out := make([]lscr.Mutation, len(ms))
	for i, m := range ms {
		out[i] = lscr.Mutation{
			Op:      lscr.MutationOp(m.Op),
			Subject: m.Subject,
			Label:   m.Label,
			Object:  m.Object,
		}
	}
	return out
}

// FromMutations converts engine mutations to the wire shape.
func FromMutations(ms []lscr.Mutation) []Mutation {
	out := make([]Mutation, len(ms))
	for i, m := range ms {
		out[i] = Mutation{
			Op:      string(m.Op),
			Subject: m.Subject,
			Label:   m.Label,
			Object:  m.Object,
		}
	}
	return out
}

// FromReplicationBatches converts the engine's feed records to the wire
// shape.
func FromReplicationBatches(batches []lscr.ReplicationBatch) []ReplicateBatch {
	out := make([]ReplicateBatch, len(batches))
	for i, b := range batches {
		out[i] = ReplicateBatch{Epoch: b.Epoch, Seal: b.Seal, Mutations: FromMutations(b.Mutations)}
	}
	return out
}

// ToReplicationBatch converts one wire feed record back to the engine's
// shape (the follower side).
func (b ReplicateBatch) ToReplicationBatch() lscr.ReplicationBatch {
	return lscr.ReplicationBatch{Epoch: b.Epoch, Seal: b.Seal, Mutations: ToEngineMutations(b.Mutations)}
}

// FromApplyResult converts the engine's apply report to the wire shape.
func FromApplyResult(res lscr.ApplyResult) MutateResponse {
	return MutateResponse{
		Epoch:             res.Epoch,
		Added:             res.Added,
		Deleted:           res.Deleted,
		NewVertices:       res.NewVertices,
		NewLabels:         res.NewLabels,
		OverlayOps:        res.OverlayOps,
		CompactionStarted: res.CompactionStarted,
	}
}

// FromResponse converts the engine's Response to the wire shape.
func FromResponse(resp lscr.Response) QueryResponse {
	out := QueryResponse{
		Reachable:          resp.Reachable,
		ElapsedUS:          resp.Elapsed.Microseconds(),
		PassedVertices:     resp.Stats.PassedVertices,
		SearchTreeNodes:    resp.Stats.SearchTreeNodes,
		SatisfyingVertices: resp.SatisfyingVertices,
		Algorithm:          AlgorithmName(resp.Algorithm),
		TraceDOT:           resp.TraceDOT,
	}
	if w := resp.Witness; w != nil {
		ww := &Witness{SatisfiedBy: w.SatisfiedBy}
		for _, h := range w.Hops {
			ww.Hops = append(ww.Hops, Hop{From: h.From, Label: h.Label, To: h.To})
		}
		out.Witness = ww
	}
	return out
}
