package lscr

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchResult pairs one query of a ReachBatch call with its outcome.
// Exactly one of Err or a meaningful Result is set per entry.
type BatchResult struct {
	Result Result
	Err    error
}

// ReachBatch answers every query of qs, fanning the work out over at
// most concurrency goroutines (GOMAXPROCS when concurrency <= 0).
// Results are returned in query order, one BatchResult per query; a
// failing query (unknown vertex, malformed constraint, ...) records its
// error in its own slot without affecting the others.
//
// The batch runs entirely on the receiver: answers are identical to
// calling Reach once per query serially. It is itself safe to call
// concurrently, and is the throughput-oriented entry point — the server
// and benchmark CLIs use it to keep every core busy. Batches go through
// the same constraint-compile path as Reach, so a batch repeating few
// distinct constraints compiles each exactly once and serves the rest
// from the engine's constraint cache.
func (e *Engine) ReachBatch(qs []Query, concurrency int) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	if concurrency > len(qs) {
		concurrency = len(qs)
	}
	if concurrency == 1 {
		for i := range qs {
			out[i].Result, out[i].Err = e.Reach(qs[i])
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				out[i].Result, out[i].Err = e.Reach(qs[i])
			}
		}()
	}
	wg.Wait()
	return out
}
