package lscr

import "context"

// BatchResult pairs one query of a ReachBatch call with its outcome.
// Exactly one of Err or a meaningful Result is set per entry.
type BatchResult struct {
	Result Result
	Err    error
}

// ReachBatch answers every query of qs, fanning the work out over at
// most concurrency goroutines (GOMAXPROCS when concurrency <= 0).
// Results are returned in query order, one BatchResult per query; a
// failing query (unknown vertex, malformed constraint, ...) records its
// error in its own slot without affecting the others.
//
// Deprecated: use QueryBatch, which takes a context so a disconnected
// client or an expired deadline stops the batch instead of letting it
// run to completion. ReachBatch is a thin wrapper over QueryBatch with
// a background context and answers identically.
func (e *Engine) ReachBatch(qs []Query, concurrency int) []BatchResult {
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		reqs[i] = q.request()
	}
	outcomes := e.QueryBatch(context.Background(), reqs, BatchOptions{Concurrency: concurrency})
	out := make([]BatchResult, len(qs))
	for i, o := range outcomes {
		out[i] = BatchResult{Result: o.Response.result(), Err: o.Err}
	}
	return out
}
