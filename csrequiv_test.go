package lscr_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	pub "lscr"
	"lscr/internal/graph"
	"lscr/internal/lubm"
)

// TestConcurrentCSRLayoutEquivalence is the CSR equivalence tier: on the
// D1 dataset, Engine.Query must answer with bit-identical Reachable,
// Stats and SatisfyingVertices whether the graph carries the label-run
// index (labeled scan skips non-matching runs) or a WithoutLabelIndex
// view (degenerate one-edge runs, the seed layout's per-edge filtering
// scan) — across all four algorithms, under concurrent load. It runs in
// the race-enabled CI tier (name matches the Concurrent filter).
func TestConcurrentCSRLayoutEquivalence(t *testing.T) {
	cfg := lubm.DefaultConfig(1) // D1
	cfg.Seed = 1
	g := lubm.Generate(cfg)

	// Two engines over the same storage: one with the label-run index,
	// one with the filtering view. The index build itself walks the same
	// CSR arrays in the same order, so the local indexes are identical
	// and the comparison isolates query-time scanning.
	opts := pub.Options{IndexSeed: 7, Landmarks: 64}
	engLabeled := pub.NewEngine(pub.FromGraph(g), opts)
	engFilter := pub.NewEngine(pub.FromGraph(g.WithoutLabelIndex()), opts)

	consts := lubm.Constraints()
	algos := []pub.Algorithm{pub.INS, pub.UIS, pub.UISStar, pub.Conjunctive}
	rng := rand.New(rand.NewSource(11))
	var reqs []pub.Request
	for i := 0; i < 48; i++ {
		labels := make([]string, 0, 2)
		if i%4 != 0 { // every fourth request uses the whole label universe
			for len(labels) < 1+i%2 {
				labels = append(labels, g.LabelName(graph.Label(rng.Intn(g.NumLabels()))))
			}
		}
		req := pub.Request{
			Source:    g.VertexName(graph.VertexID(rng.Intn(g.NumVertices()))),
			Target:    g.VertexName(graph.VertexID(rng.Intn(g.NumVertices()))),
			Labels:    labels,
			Algorithm: algos[i%len(algos)],
		}
		if req.Algorithm == pub.Conjunctive {
			req.Constraints = []string{
				consts[i%len(consts)].SPARQL,
				consts[(i+1)%len(consts)].SPARQL,
			}
		} else {
			req.Constraint = consts[i%len(consts)].SPARQL
		}
		reqs = append(reqs, req)
	}

	ctx := context.Background()
	bo := pub.BatchOptions{Concurrency: 4}
	labeled := engLabeled.QueryBatch(ctx, reqs, bo)
	filtered := engFilter.QueryBatch(ctx, reqs, bo)

	for i := range reqs {
		le, fe := labeled[i].Err, filtered[i].Err
		if (le == nil) != (fe == nil) || (le != nil && le.Error() != fe.Error()) {
			t.Fatalf("request %d (%v): error mismatch: labeled=%v filter=%v", i, reqs[i].Algorithm, le, fe)
		}
		if le != nil {
			continue
		}
		lr, fr := labeled[i].Response, filtered[i].Response
		if lr.Reachable != fr.Reachable || lr.Stats != fr.Stats ||
			lr.SatisfyingVertices != fr.SatisfyingVertices || lr.Algorithm != fr.Algorithm {
			t.Errorf("request %d (%v): labeled {reach=%v stats=%+v vs=%d} != filter {reach=%v stats=%+v vs=%d}",
				i, reqs[i].Algorithm,
				lr.Reachable, lr.Stats, lr.SatisfyingVertices,
				fr.Reachable, fr.Stats, fr.SatisfyingVertices)
		}
	}

	// The same batch answered twice on the same engine must also agree —
	// guards against scratch-pool state leaking between concurrent runs.
	again := engLabeled.QueryBatch(ctx, reqs, bo)
	for i := range reqs {
		if labeled[i].Err != nil {
			continue
		}
		if labeled[i].Response.Reachable != again[i].Response.Reachable ||
			labeled[i].Response.Stats != again[i].Response.Stats {
			t.Errorf("request %d: labeled engine not deterministic across runs", i)
		}
	}
}

// TestConcurrentCSRLayoutEquivalenceLegacyReach pins the deprecated
// wrapper surface to the same equivalence on a few spot queries, so the
// v1 path is not the only one covered.
func TestConcurrentCSRLayoutEquivalenceLegacyReach(t *testing.T) {
	cfg := lubm.DefaultConfig(1)
	cfg.Seed = 1
	g := lubm.Generate(cfg)
	opts := pub.Options{IndexSeed: 7, Landmarks: 32}
	engLabeled := pub.NewEngine(pub.FromGraph(g), opts)
	engFilter := pub.NewEngine(pub.FromGraph(g.WithoutLabelIndex()), opts)
	consts := lubm.Constraints()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		q := pub.Query{
			Source:     g.VertexName(graph.VertexID(rng.Intn(g.NumVertices()))),
			Target:     g.VertexName(graph.VertexID(rng.Intn(g.NumVertices()))),
			Constraint: consts[i%len(consts)].SPARQL,
			Algorithm:  pub.Algorithm(i % 3),
		}
		lr, lerr := engLabeled.Reach(q)
		fr, ferr := engFilter.Reach(q)
		if (lerr == nil) != (ferr == nil) {
			t.Fatalf("query %d: error mismatch %v vs %v", i, lerr, ferr)
		}
		if lerr == nil && (lr.Reachable != fr.Reachable || lr.Stats != fr.Stats) {
			t.Errorf("query %d: %s", i, fmt.Sprintf("labeled %+v != filter %+v", lr, fr))
		}
	}
}
