//go:build !race

package lscr

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
