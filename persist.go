package lscr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"lscr/internal/failpoint"
	"lscr/internal/graph"
	core "lscr/internal/lscr"
	"lscr/internal/segment"
)

// Persistent engines.
//
// Create seals the engine's state into an on-disk segment — the base
// CSR in both directions, the label-run index, the string dictionaries,
// the schema and the local index, laid out as aligned little-endian
// flat arrays with per-section checksums (internal/segment) — and
// attaches a write-ahead log. Open maps the newest segment back
// (near-zero-copy: the graph arrays and dictionary strings alias the
// mapping) and replays the WAL tail through the engine's normal commit
// path, so a restart costs one checksum pass plus the tail replay
// instead of a full parse and index build.
//
// Durability contract: Apply appends the committed batch to the WAL —
// and, under DurabilitySync, fsyncs it — before the new epoch becomes
// visible to any reader. A crash therefore loses at most batches whose
// Apply never returned (none under sync mode; under lazy mode, batches
// the OS had not yet flushed). Compaction doubles as the seal: the
// folded CSR and freshly rebuilt index are written as a new segment,
// the swap is recorded in the WAL, and the log is truncated to the
// suffix the new segment does not cover — an LSM-style rewrite that
// keeps the WAL short and the next boot instant. Recovery replays
// batches by name through the same interning path as Apply, which
// makes the recovered engine's vertex and label IDs — and therefore
// its answers, epoch numbers and INS statistics — identical to the
// pre-crash run's.
//
// A persistence I/O failure — a WAL append or fsync inside Apply, or
// any write inside a compaction seal — poisons the engine (fail-stop,
// see poison.go): the failing call returns the write error, every
// later Apply/Compact returns ErrPoisoned, and reads keep serving the
// last published epoch, which was fully durable before it became
// visible. An engine that can no longer honour its durability contract
// must not keep acknowledging writes; a restart (Open on the same
// directory) recovers the durable prefix exactly.

// Durability selects the WAL fsync policy of a persistent engine.
type Durability int

const (
	// DurabilitySync (the default) fsyncs the WAL before Apply returns:
	// an acknowledged batch survives any crash.
	DurabilitySync Durability = iota
	// DurabilityLazy appends without fsync and leaves flushing to the
	// OS: Apply is much cheaper, and a crash may lose the most recent
	// batches (but never corrupts the store — recovery truncates the
	// torn tail and serves the longest durable prefix).
	DurabilityLazy
)

// String names the durability mode.
func (d Durability) String() string {
	switch d {
	case DurabilitySync:
		return "sync"
	case DurabilityLazy:
		return "lazy"
	}
	return fmt.Sprintf("Durability(%d)", int(d))
}

// Persistence errors.
var (
	// ErrNoStore marks a data directory with no sealed segment; callers
	// typically fall back to Create.
	ErrNoStore = errors.New("lscr: no store in data directory")
	// ErrStoreExists marks a Create against a directory that already
	// holds a store.
	ErrStoreExists = errors.New("lscr: store already exists")
	// ErrCorruptStore marks an unreadable or internally inconsistent
	// store: every checksum, framing and replay-consistency failure from
	// Open wraps it. It is the same sentinel the lower layers use, so
	// one errors.Is covers the whole persistence stack.
	ErrCorruptStore = graph.ErrCorrupt
)

// store is the persistence attachment of an Engine: the data
// directory, the WAL, and the boot segment's mapping (kept until Close
// — compactions build heap-backed bases, so at most one mapping is
// live per engine, and old epochs may alias it until the process
// drains).
type store struct {
	dir      string
	wal      *segment.WAL
	seg      *segment.Segment // boot mapping; nil for Create-fresh engines
	syncEach bool
	segSeq   atomic.Uint64 // newest sealed segment's base epoch
	// durable is the newest epoch known to be on stable storage: every
	// logged batch under sync mode, only boot state and seals under lazy
	// mode. lastSeal is the wall clock (UnixNano) of the newest segment
	// seal. Both feed DurabilityInfo, which /healthz surfaces for the
	// cluster coordinator's lag display.
	durable  atomic.Uint64
	lastSeal atomic.Int64
}

// logBatch makes one committed Apply batch durable. It runs before the
// epoch publish, so a batch is never visible without being logged.
func (s *store) logBatch(seq uint64, muts []Mutation) error {
	if err := s.wal.Append(segment.RecordBatch, seq, segment.EncodeOps(walOps(muts)), s.syncEach); err != nil {
		return err
	}
	if s.syncEach {
		s.durable.Store(seq)
	}
	return nil
}

// sealAppend records a compaction swap: epoch seq published a state
// whose prefix is covered by the segment sealed at baseSeq. Seal
// records are always fsynced — compactions are rare, and the record
// must be durable before the segment becomes the newest on disk.
func (s *store) sealAppend(seq, baseSeq uint64) error {
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], baseSeq)
	if err := s.wal.Append(segment.RecordSeal, seq, payload[:], true); err != nil {
		return err
	}
	s.durable.Store(seq)
	return nil
}

// Create builds an engine for kg exactly as NewEngine would, then seals
// its state into a fresh store at dir (created if absent; empty when
// dir is empty, Options.DataDir is used). It fails with ErrStoreExists
// when dir already holds a segment, and refuses a directory with a
// non-empty WAL but no segment rather than silently discarding logged
// batches.
func Create(dir string, kg *KG, opts Options) (*Engine, error) {
	if err := armFailpoints(opts); err != nil {
		return nil, err
	}
	dir, err := resolveDataDir(dir, opts)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if paths, err := segment.List(dir); err != nil {
		return nil, err
	} else if len(paths) > 0 {
		return nil, fmt.Errorf("%w: %s", ErrStoreExists, dir)
	}
	e := NewEngine(kg, opts)
	ep := e.current()
	if _, err := segment.Write(dir, 0, ep.kg.g, ep.idx, e.opts.Landmarks, e.opts.IndexSeed); err != nil {
		return nil, err
	}
	wal, recs, err := segment.OpenWAL(segment.WALPath(dir))
	if err != nil {
		return nil, err
	}
	if len(recs) > 0 {
		wal.Close()
		return nil, fmt.Errorf("lscr: %w: directory has a %d-record WAL but held no segment", ErrCorruptStore, len(recs))
	}
	st := &store{dir: dir, wal: wal, syncEach: opts.Durability == DurabilitySync}
	st.lastSeal.Store(time.Now().UnixNano())
	e.store = st
	return e, nil
}

// Open maps the newest segment in dir (Options.DataDir when dir is
// empty), replays the WAL tail through the normal commit path, and
// returns an engine identical — answers, epoch numbers, INS statistics
// — to the one that last served the store. It returns ErrNoStore when
// the directory holds no segment and an error wrapping ErrCorruptStore
// when checksums, framing or replay consistency fail.
//
// The index build parameters recorded in the segment override the
// corresponding Options fields, so later compactions rebuild the same
// index the store was created with; Options.SkipIndex is still
// honoured. Close must be called (after draining queries) to release
// the mapping and the WAL.
func Open(dir string, opts Options) (*Engine, error) {
	if err := armFailpoints(opts); err != nil {
		return nil, err
	}
	dir, err := resolveDataDir(dir, opts)
	if err != nil {
		return nil, err
	}
	removeStrayTemps(dir)
	seg, err := segment.OpenDir(dir)
	if errors.Is(err, segment.ErrNoSegment) || errors.Is(err, os.ErrNotExist) {
		// A directory with no segment and a nonexistent directory both
		// mean "no store yet": callers fall back to Create either way.
		return nil, fmt.Errorf("%w: %s", ErrNoStore, dir)
	}
	if err != nil {
		return nil, err
	}
	committed := false
	defer func() {
		if !committed {
			seg.Close()
		}
	}()

	e := &Engine{opts: opts}
	var idx *core.LocalIndex
	if !opts.SkipIndex {
		// The build parameters are a property of the store, not of this
		// process's Options: adopt them so compaction rebuilds match the
		// sealed index.
		e.opts.Landmarks, e.opts.IndexSeed = seg.IndexK, seg.IndexSeed
		idx = seg.Index
		if idx == nil {
			// Index-less store opened by an engine that wants INS.
			idx = core.NewLocalIndex(seg.Graph, e.indexParams())
		}
	}
	e.ep.Store(e.newEpoch(seg.BaseSeq, seg.Graph, idx, seg.BaseSeq))
	prewarmScratch(seg.Graph)

	wal, recs, err := segment.OpenWAL(segment.WALPath(dir))
	if err != nil {
		return nil, err
	}
	st := &store{dir: dir, wal: wal, seg: seg, syncEach: opts.Durability == DurabilitySync}
	st.segSeq.Store(seg.BaseSeq)
	if fi, err := os.Stat(seg.Path); err == nil {
		st.lastSeal.Store(fi.ModTime().UnixNano())
	}
	e.store = st
	if err := e.replayWAL(recs, seg.BaseSeq); err != nil {
		wal.Close()
		return nil, err
	}
	// Everything replayed was read back from disk, so the whole boot
	// state is durable regardless of mode.
	st.durable.Store(e.current().seq)
	committed = true
	// The replayed tail may already exceed the compaction threshold
	// (e.g. a crash loop that never reached a seal); re-seal in the
	// background exactly as a threshold-crossing Apply would.
	if t := e.compactThreshold(); t >= 0 && e.current().kg.g.OverlaySize() >= t {
		e.startCompaction()
	}
	return e, nil
}

// armFailpoints applies Options.Failpoints before the store's files are
// touched. The registry is process-global (see internal/failpoint), so
// the option is a convenience for wiring faults through Open/Create;
// tests and the chaos tier arm sites directly.
func armFailpoints(opts Options) error {
	if opts.Failpoints == "" {
		return nil
	}
	return failpoint.Arm(opts.Failpoints)
}

// resolveDataDir applies the Options.DataDir default.
func resolveDataDir(dir string, opts Options) (string, error) {
	if dir == "" {
		dir = opts.DataDir
	}
	if dir == "" {
		return "", errors.New("lscr: no data directory (pass dir or set Options.DataDir)")
	}
	return dir, nil
}

// removeStrayTemps deletes temp files a crashed writer left behind
// (never-published segment images, interrupted WAL rotations).
func removeStrayTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
}

// replayWAL re-commits the log tail onto the boot epoch. Records at or
// below the segment's base epoch are covered by the segment itself
// (present only when a crash hit between segment publish and log
// rotation); everything above it must continue gaplessly from the
// segment — a gap means the store is inconsistent and serving it could
// silently drop committed batches.
func (e *Engine) replayWAL(recs []segment.WALRecord, baseSeq uint64) error {
	expected := baseSeq
	for _, rec := range recs {
		if rec.Seq <= baseSeq {
			continue
		}
		if rec.Seq != expected+1 {
			return fmt.Errorf("lscr: %w: wal gap: record at epoch %d follows %d", ErrCorruptStore, rec.Seq, expected)
		}
		switch rec.Kind {
		case segment.RecordBatch:
			ops, err := segment.DecodeOps(rec.Payload)
			if err != nil {
				return fmt.Errorf("lscr: wal batch at epoch %d: %w", rec.Seq, err)
			}
			muts, err := walMutations(ops)
			if err != nil {
				return fmt.Errorf("lscr: wal batch at epoch %d: %w", rec.Seq, err)
			}
			if err := e.applyReplay(rec.Seq, muts); err != nil {
				return err
			}
		case segment.RecordSeal:
			// The pre-crash engine published a compacted epoch here. The
			// replayed view (base + overlay) answers identically to the
			// folded CSR it never got to map, so recovery just takes the
			// epoch bump; the next compaction re-seals.
			cur := e.ep.Load()
			e.publishEpoch(e.newEpoch(rec.Seq, cur.kg.g, cur.idx, cur.idxSeq))
		default:
			return fmt.Errorf("lscr: %w: wal record kind %d at epoch %d", ErrCorruptStore, rec.Kind, rec.Seq)
		}
		expected = rec.Seq
	}
	return nil
}

// applyReplay is Apply's commit path for one logged batch: same
// staging, same interning order, same index maintenance — minus the
// WAL append (the batch is already durable) and the compaction
// trigger. Divergence from the logged epoch number, or a batch that
// stages to a no-op (Apply never logs those), means the store does not
// describe a real engine history.
func (e *Engine) applyReplay(seq uint64, muts []Mutation) error {
	cur := e.ep.Load()
	if seq != cur.seq+1 {
		return fmt.Errorf("lscr: %w: wal batch at epoch %d onto epoch %d", ErrCorruptStore, seq, cur.seq)
	}
	g, idx, err := e.commitMutations(cur, muts)
	if err != nil {
		return fmt.Errorf("lscr: %w: wal batch at epoch %d: %v", ErrCorruptStore, seq, err)
	}
	if g == cur.kg.g {
		return fmt.Errorf("lscr: %w: wal batch at epoch %d is a no-op", ErrCorruptStore, seq)
	}
	e.publishEpoch(e.newEpoch(seq, g, idx, cur.idxSeq))
	return nil
}

// Close releases the persistence attachment: it waits for an in-flight
// compaction, syncs and closes the WAL, and unmaps the boot segment.
// Callers must drain queries first — epochs predating the last
// compaction alias the mapping. Close is idempotent; a nil-store
// (purely in-memory) engine closes trivially. Apply fails after Close.
func (e *Engine) Close() error {
	// compactMu waits out an in-flight compaction (it uses the WAL and
	// the segment directory); no new one can start afterwards because
	// Apply's WAL append fails once the log is closed.
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.store == nil {
		return nil
	}
	err := e.store.wal.Close()
	if e.store.seg != nil {
		if cerr := e.store.seg.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// DurabilityInfo is a point-in-time snapshot of an engine's
// persistence state, surfaced by the server's /healthz next to the
// epoch info.
type DurabilityInfo struct {
	// Persistent is false for in-memory engines (NewEngine); all other
	// fields are then zero.
	Persistent bool `json:"persistent"`
	// Mode is the WAL fsync policy ("sync" or "lazy").
	Mode string `json:"mode,omitempty"`
	// SegmentEpoch is the newest sealed segment's base epoch: the store
	// can serve every epoch from there through the WAL tail.
	SegmentEpoch uint64 `json:"segment_epoch"`
	// WALRecords and WALBytes measure the un-compacted log tail.
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// LastSync is the wall-clock time of the last WAL fsync (zero until
	// the first one).
	LastSync time.Time `json:"last_sync,omitzero"`
	// DurableEpoch is the newest epoch known to be on stable storage:
	// every committed batch under sync mode; under lazy mode only the
	// boot state and compaction seals (batches in between ride on the
	// OS cache). The cluster coordinator compares it across replicas.
	DurableEpoch uint64 `json:"durable_epoch"`
	// LastSeal is the wall-clock time of the newest segment seal (the
	// boot segment's file time until this process compacts).
	LastSeal time.Time `json:"last_seal,omitzero"`
}

// Durability reports the engine's persistence state.
func (e *Engine) Durability() DurabilityInfo {
	if e.store == nil {
		return DurabilityInfo{}
	}
	st := e.store.wal.Stats()
	mode := DurabilityLazy
	if e.store.syncEach {
		mode = DurabilitySync
	}
	info := DurabilityInfo{
		Persistent:   true,
		Mode:         mode.String(),
		SegmentEpoch: e.store.segSeq.Load(),
		WALRecords:   st.Records,
		WALBytes:     st.Bytes,
		LastSync:     st.LastSync,
		DurableEpoch: e.store.durable.Load(),
	}
	if ns := e.store.lastSeal.Load(); ns != 0 {
		info.LastSeal = time.Unix(0, ns)
	}
	return info
}

// walOps maps an Apply batch to the WAL codec's op list.
func walOps(muts []Mutation) []segment.Op {
	ops := make([]segment.Op, len(muts))
	for i, m := range muts {
		ops[i] = segment.Op{
			Kind:    walKind(m.Op),
			Subject: m.Subject,
			Label:   m.Label,
			Object:  m.Object,
		}
	}
	return ops
}

// walMutations maps a decoded WAL batch back to Apply mutations.
func walMutations(ops []segment.Op) ([]Mutation, error) {
	muts := make([]Mutation, len(ops))
	for i, op := range ops {
		mop, ok := walOpName(op.Kind)
		if !ok {
			return nil, fmt.Errorf("%w: op kind %d", ErrCorruptStore, op.Kind)
		}
		muts[i] = Mutation{Op: mop, Subject: op.Subject, Label: op.Label, Object: op.Object}
	}
	return muts, nil
}

func walKind(op MutationOp) byte {
	switch op {
	case OpAddEdge:
		return segment.OpAddEdge
	case OpDeleteEdge:
		return segment.OpDeleteEdge
	case OpAddVertex:
		return segment.OpAddVertex
	case OpAddLabel:
		return segment.OpAddLabel
	}
	return 0 // unreachable: Apply validates ops before logging
}

func walOpName(kind byte) (MutationOp, bool) {
	switch kind {
	case segment.OpAddEdge:
		return OpAddEdge, true
	case segment.OpDeleteEdge:
		return OpDeleteEdge, true
	case segment.OpAddVertex:
		return OpAddVertex, true
	case segment.OpAddLabel:
		return OpAddLabel, true
	}
	return "", false
}
