package lscr_test

import (
	"fmt"
	"log"
	"strings"

	"lscr"
)

// The paper's §1 scenario: an indirect April-2019 transaction from C to P
// through a middleman married to Amy.
const exampleKG = `
<SuspectC> <transfer2019-04> <MiddlemanX> .
<MiddlemanX> <transfer2019-04> <SuspectP> .
<MiddlemanX> <married-to> <Amy> .
<SuspectC> <transfer2019-05> <SuspectP> .
`

func ExampleEngine_Reach() {
	kg, err := lscr.Load(strings.NewReader(exampleKG))
	if err != nil {
		log.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{})
	res, err := eng.Reach(lscr.Query{
		Source: "SuspectC", Target: "SuspectP",
		Labels:     []string{"transfer2019-04", "married-to"},
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Reachable)
	// Output: true
}

func ExampleEngine_ReachWithWitness() {
	kg, err := lscr.Load(strings.NewReader(exampleKG))
	if err != nil {
		log.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{})
	_, path, err := eng.ReachWithWitness(lscr.Query{
		Source: "SuspectC", Target: "SuspectP",
		Labels:     []string{"transfer2019-04", "married-to"},
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(path)
	fmt.Println("middleman:", path.Satisfying)
	// Output:
	// SuspectC -[transfer2019-04]-> MiddlemanX -[transfer2019-04]-> SuspectP
	// middleman: MiddlemanX
}

func ExampleEngine_Select() {
	kg, err := lscr.Load(strings.NewReader(exampleKG))
	if err != nil {
		log.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{SkipIndex: true})
	names, err := eng.Select(`SELECT ?x WHERE { ?x <married-to> <Amy>. }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(names)
	// Output: [MiddlemanX]
}

func ExampleEngine_ReachAll() {
	kg, err := lscr.Load(strings.NewReader(exampleKG))
	if err != nil {
		log.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{SkipIndex: true})
	res, err := eng.ReachAll(lscr.MultiQuery{
		Source: "SuspectC", Target: "SuspectP",
		Labels: []string{"transfer2019-04", "married-to"},
		Constraints: []string{
			`SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
			`SELECT ?x WHERE { ?x <transfer2019-04> <SuspectP>. }`,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Reachable)
	// Output: true
}
