package lscr

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"lscr/internal/graph"
	core "lscr/internal/lscr"
	"lscr/internal/segment"
)

// Live graph mutations.
//
// Engine.Apply commits a batch of edge insertions/deletions (plus
// new-vertex and new-label interning) atomically: the whole batch is
// validated against the current epoch first, then a new epoch — the
// same base CSR with a small sorted delta overlay layered on top — is
// published with one atomic pointer swap. Either every mutation of the
// batch is visible or none is; a reader never observes a torn batch,
// and queries already in flight keep the epoch they started on
// (RCU-style snapshot isolation).
//
// Traversal reads the overlay through the same label-run scan shape as
// the base CSR: a mutated vertex answers from its complete merged row
// (insertions merged in, deletions masked, (label, head)-sorted), an
// untouched vertex from its base row. UIS, UIS* and the conjunctive
// search — which consult no precomputed index — therefore answer on an
// overlay view exactly as they would on a from-scratch rebuild of the
// same edge set, bit-identical Stats included.
//
// INS stays index-guided under writes: unless Options.NoIndexMaintenance
// is set, the commit path derives a maintained local index for every
// published epoch (core.ApplyMutations). Insertions extend the affected
// landmark's II/EIT entries by monotone propagation — exactly the
// entries a frozen-assignment rebuild on the new view would hold, the
// property the maintained-equivalence tier and the maintenance fuzz
// target pin — while a deletion invalidates only the one landmark whose
// region sources the deleted edge; INS excludes dirty landmarks from its
// Check/Cut/Push shortcuts and keeps pruning with every clean one. The
// derivation is copy-on-write (untouched landmarks share storage across
// epochs) and costs time proportional to the affected regions, not |G|.
// Compaction rebuilds the index from scratch, clearing all dirtiness.
// The epoch carries an index epoch (idxSeq) alongside the graph epoch,
// so a reader's single atomic load always yields a mutually consistent
// (graph, index) pair.
//
// Once the overlay accumulates Options.CompactAfter edge operations, a
// background compactor folds it into a fresh base CSR, rebuilds the
// local index with the engine's original parameters, replays any
// mutations that landed mid-rebuild, and swaps the result in. After a
// compaction the engine is bit-for-bit the engine NewEngine would build
// on the current edge set: compaction preserves vertex/label IDs and
// the index build is deterministic per (graph, seed) — the property the
// mutate equivalence tier pins under -race.

// MutationOp names one mutation kind on the wire and in the Go API.
type MutationOp string

// Mutation operations.
const (
	// OpAddEdge inserts one edge instance (the graph is a multigraph;
	// parallel edges accumulate). Unknown subject/object vertices and
	// unknown labels are interned on first use.
	OpAddEdge MutationOp = "add-edge"
	// OpDeleteEdge removes one instance of the triple; it fails with
	// ErrEdgeNotFound when no instance remains at that point of the
	// batch.
	OpDeleteEdge MutationOp = "delete-edge"
	// OpAddVertex interns a (possibly isolated) vertex by name; a no-op
	// when the name exists.
	OpAddVertex MutationOp = "add-vertex"
	// OpAddLabel interns a label by name; a no-op when the name exists.
	OpAddLabel MutationOp = "add-label"
)

// Mutation is one operation of an Apply batch, in terms of names (like
// every public surface of the engine). Subject/Label/Object are
// required per Op: add-edge and delete-edge use all three, add-vertex
// uses Subject, add-label uses Label.
type Mutation struct {
	Op      MutationOp `json:"op"`
	Subject string     `json:"subject,omitempty"`
	Label   string     `json:"label,omitempty"`
	Object  string     `json:"object,omitempty"`
}

// Mutation errors.
var (
	// ErrEdgeNotFound marks the deletion of an edge with no remaining
	// instance.
	ErrEdgeNotFound = errors.New("lscr: edge not found")
	// ErrInvalidMutation marks a mutation whose op is unknown or whose
	// fields do not fit its op.
	ErrInvalidMutation = errors.New("lscr: invalid mutation")
)

// DefaultCompactAfter is the overlay-size threshold selected when
// Options.CompactAfter is zero: compaction (a full CSR + index rebuild)
// is amortised over at least this many mutations.
const DefaultCompactAfter = 4096

// ApplyResult reports one committed batch.
type ApplyResult struct {
	// Epoch is the sequence number of the published epoch.
	Epoch uint64 `json:"epoch"`
	// Added and Deleted count the batch's edge operations.
	Added   int `json:"added"`
	Deleted int `json:"deleted"`
	// NewVertices and NewLabels count names interned by the batch.
	NewVertices int `json:"new_vertices"`
	NewLabels   int `json:"new_labels"`
	// OverlayOps is the total uncompacted operation count after the
	// batch.
	OverlayOps int `json:"overlay_ops"`
	// CompactionStarted reports that this batch crossed the
	// CompactAfter threshold and kicked off a background compaction.
	CompactionStarted bool `json:"compaction_started"`
}

// EpochInfo is a point-in-time snapshot of the engine's epoch state,
// surfaced by the server's /healthz.
type EpochInfo struct {
	// Epoch is the serving epoch's sequence number (0 at construction,
	// +1 per Apply or compaction swap).
	Epoch uint64 `json:"epoch"`
	// IndexEpoch is the last epoch whose graph view the local index is
	// exact for; it equals Epoch while incremental maintenance keeps up
	// (always, unless disabled) and lags until the next compaction
	// otherwise.
	IndexEpoch uint64 `json:"index_epoch"`
	// OverlayOps is the serving epoch's uncompacted operation count.
	OverlayOps int `json:"overlay_ops"`
	// Compactions counts completed compactions.
	Compactions int64 `json:"compactions"`
}

// KG returns the current epoch's knowledge-graph view. Like every read
// it is a consistent immutable snapshot; mutations committed later
// appear only in later KG() results.
func (e *Engine) KG() *KG { return e.current().kg }

// Epoch reports the engine's current epoch state.
func (e *Engine) Epoch() EpochInfo {
	return e.epochInfo(e.current())
}

func (e *Engine) epochInfo(ep *epoch) EpochInfo {
	return EpochInfo{
		Epoch:       ep.seq,
		IndexEpoch:  ep.idxSeq,
		OverlayOps:  ep.kg.g.OverlaySize(),
		Compactions: e.compactions.Load(),
	}
}

// Health returns a mutually consistent snapshot for monitoring
// surfaces: the KG view, the constraint-cache counters, the epoch info
// and the maintenance stats are all derived from one epoch load, so the
// numbers describe the same serving state even while mutations commit
// concurrently (separate KG()/CacheStats()/Epoch()/IndexMaintenance()
// calls could each observe a different epoch).
func (e *Engine) Health() (*KG, CacheStats, EpochInfo, MaintStats) {
	ep := e.current()
	return ep.kg, ep.cacheStats(), e.epochInfo(ep), e.maintStats(ep)
}

// Apply atomically commits muts in order. On any error — an unknown
// name or missing edge in a delete, a malformed mutation, a cancelled
// ctx — nothing is published and the engine state is unchanged. On
// success the new epoch is visible to every query started after Apply
// returns (and to none started before).
//
// Apply batches serialize with each other and with compaction swaps;
// reads are never blocked. The per-batch cost is proportional to the
// overlay size plus the degrees of the touched vertices, not to |G|.
func (e *Engine) Apply(ctx context.Context, muts []Mutation) (ApplyResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return ApplyResult{}, err
	}
	if e.replica {
		return ApplyResult{}, ErrReplicaWrite
	}
	// Fail-stop: after a write failure the durable log no longer matches
	// what the engine would acknowledge, so mutations are refused until a
	// restart re-derives the state from disk. Poisoning is monotonic, so
	// checking before the lock cannot race into a stale acceptance.
	if err := e.poisonedErr(); err != nil {
		return ApplyResult{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.ep.Load()
	if len(muts) == 0 {
		return ApplyResult{Epoch: cur.seq, OverlayOps: cur.kg.g.OverlaySize()}, nil
	}
	d := graph.NewDelta(cur.kg.g)
	res := ApplyResult{}
	for i, m := range muts {
		if err := stage(d, m); err != nil {
			return ApplyResult{}, fmt.Errorf("mutation %d: %w", i, err)
		}
		switch m.Op {
		case OpAddEdge:
			res.Added++
		case OpDeleteEdge:
			res.Deleted++
		}
	}
	// Validation may have taken a while on a big batch; honour a
	// cancellation that fired during it before publishing.
	if err := ctx.Err(); err != nil {
		return ApplyResult{}, err
	}
	res.NewVertices = d.NewVertices()
	res.NewLabels = d.NewLabels()
	g, err := d.Commit()
	if err != nil {
		// Staging validates every op; a Commit failure is an internal
		// inconsistency and must not publish.
		return ApplyResult{}, err
	}
	if g == cur.kg.g {
		// Every mutation was an idempotent no-op (interning names that
		// already exist): the view is unchanged, so publishing a new
		// epoch would only throw away the constraint cache for nothing.
		res.Epoch = cur.seq
		res.OverlayOps = g.OverlaySize()
		return res, nil
	}
	// Maintain the local index through the batch so the published epoch
	// pairs the new view with an index exact for it. The derivation never
	// touches cur.idx, so readers on older epochs are unaffected. If the
	// index already lagged (maintenance off, or an index loaded for
	// another view), it is left as-is — deriving from a stale base would
	// launder staleness into an index INS would trust.
	idx := cur.idx
	if idx != nil && !e.opts.NoIndexMaintenance && idx.ExactFor(cur.kg.g) {
		var mb core.MaintBatch
		idx, mb = idx.ApplyMutations(g, d.EdgeOps())
		e.maintBatches.Add(1)
		e.maintExtended.Add(int64(mb.LandmarksExtended))
		e.maintEntries.Add(int64(mb.EntriesAdded))
		e.maintInvalidated.Add(int64(mb.LandmarksInvalidated))
	}
	ep := e.newEpoch(cur.seq+1, g, idx, cur.idxSeq)
	if e.store != nil {
		// Durability point: the batch is in the WAL (and, in sync mode,
		// on stable storage) before any reader can observe its epoch. On
		// failure nothing is published, the caller gets the write error
		// itself, and the engine poisons: the log may now hold a torn or
		// unsynced prefix, so no further writes are acknowledged until a
		// restart re-derives the state from disk.
		if err := e.store.logBatch(ep.seq, muts); err != nil {
			return ApplyResult{}, e.fatal(err)
		}
	}
	e.publishEpoch(ep)
	res.Epoch = ep.seq
	res.OverlayOps = g.OverlaySize()
	if t := e.compactThreshold(); t >= 0 && res.OverlayOps >= t {
		res.CompactionStarted = e.startCompaction()
	}
	return res, nil
}

// stage translates one wire-level mutation into delta operations.
func stage(d *graph.Delta, m Mutation) error {
	switch m.Op {
	case OpAddEdge:
		if m.Subject == "" || m.Label == "" || m.Object == "" {
			return fmt.Errorf("%w: add-edge needs subject, label and object", ErrInvalidMutation)
		}
		if err := d.AddEdgeNames(m.Subject, m.Label, m.Object); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidMutation, err)
		}
		return nil
	case OpDeleteEdge:
		if m.Subject == "" || m.Label == "" || m.Object == "" {
			return fmt.Errorf("%w: delete-edge needs subject, label and object", ErrInvalidMutation)
		}
		s, ok := d.LookupVertex(m.Subject)
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownVertex, m.Subject)
		}
		t, ok := d.LookupVertex(m.Object)
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownVertex, m.Object)
		}
		l, ok := d.LookupLabel(m.Label)
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownLabel, m.Label)
		}
		if err := d.DeleteEdge(s, l, t); err != nil {
			if errors.Is(err, graph.ErrEdgeNotFound) {
				return fmt.Errorf("%w: (%s, %s, %s)", ErrEdgeNotFound, m.Subject, m.Label, m.Object)
			}
			return err
		}
		return nil
	case OpAddVertex:
		if m.Subject == "" {
			return fmt.Errorf("%w: add-vertex needs a subject name", ErrInvalidMutation)
		}
		d.Vertex(m.Subject)
		return nil
	case OpAddLabel:
		if m.Label == "" {
			return fmt.Errorf("%w: add-label needs a label name", ErrInvalidMutation)
		}
		if _, err := d.Label(m.Label); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidMutation, err)
		}
		return nil
	}
	return fmt.Errorf("%w: unknown op %q", ErrInvalidMutation, m.Op)
}

// compactThreshold resolves Options.CompactAfter: the default when
// zero, -1 (disabled) when negative.
func (e *Engine) compactThreshold() int {
	switch {
	case e.opts.CompactAfter < 0:
		return -1
	case e.opts.CompactAfter == 0:
		return DefaultCompactAfter
	}
	return e.opts.CompactAfter
}

// startCompaction spawns the background compactor unless one is already
// running.
func (e *Engine) startCompaction() bool {
	if !e.compacting.CompareAndSwap(false, true) {
		return false
	}
	go func() {
		defer e.compacting.Store(false)
		// A compaction failure — an I/O fault sealing the segment or an
		// internal overlay inconsistency — poisons the engine (compact
		// does it before returning): reads keep serving, writes are
		// refused, /healthz reports degraded. Nothing to do here.
		e.compact()
	}()
	return true
}

// Compact synchronously folds the current overlay into a fresh base CSR
// and rebuilds the local index, making INS's landmark pruning exact
// again. It reports false when there was nothing to compact. Reads stay
// unblocked for the whole rebuild; only the final pointer swap
// serializes with Apply. If a background compaction is in flight,
// Compact waits for it and then compacts whatever overlay remains.
func (e *Engine) Compact(ctx context.Context) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if e.replica {
		return false, ErrReplicaWrite
	}
	return e.compact()
}

// compactBarrier, when non-nil, runs between the heavy rebuild phase
// and the catch-up swap — a test-only seam that lets the race between
// an in-flight compaction and a concurrent Apply be produced
// deterministically (see TestMutateCompactionCatchUp*).
var compactBarrier func()

// sealBarrier, when non-nil, runs after the seal record is durable and
// the epoch is swapped but before the segment image is renamed into
// place — the other crash window inside a persistent compaction, used
// by the kill-point recovery tests.
var sealBarrier func()

// compact is the shared compaction body: rebuild outside the locks,
// catch up on mutations that landed mid-rebuild, swap. On a persistent
// engine the compaction doubles as the segment seal: the folded CSR and
// fresh index are written as a segment image before the swap, the swap
// itself appends a durable seal record, and only then is the image
// published (rename) and the WAL truncated to the uncovered suffix —
// in every crash window the newest on-disk segment plus the WAL tail
// still reproduce the serving state exactly.
func (e *Engine) compact() (bool, error) {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	if err := e.poisonedErr(); err != nil {
		return false, err
	}

	snap := e.ep.Load()
	if !snap.kg.g.HasOverlay() {
		return false, nil
	}
	snapOps := snap.kg.g.OverlaySize()
	// The heavy phase runs against the immutable snapshot with no lock
	// held: fold the overlay into a fresh CSR, then rebuild the local
	// index for it exactly as NewEngine would.
	base := snap.kg.g.Compact()
	var idx *core.LocalIndex
	if !e.opts.SkipIndex {
		idx = core.NewLocalIndex(base, e.indexParams())
	}
	// Seal the rebuilt state as an unpublished segment image, still
	// outside the engine lock (a full serialisation pass).
	var tmpSeg string
	if e.store != nil {
		var err error
		tmpSeg, err = segment.WriteTemp(e.store.dir, snap.seq, base, idx, e.opts.Landmarks, e.opts.IndexSeed)
		if err != nil {
			// No swap happened: the serving state is untouched, but the
			// store may hold a partial temp image and the seal cannot be
			// trusted to succeed — fail stop (reads continue, restart
			// sweeps the stray temp and recovers).
			return false, e.fatal(err)
		}
	}
	if compactBarrier != nil {
		compactBarrier()
	}

	if err := e.compactSwap(snap, snapOps, base, idx, tmpSeg); err != nil {
		if tmpSeg != "" {
			os.Remove(tmpSeg)
		}
		// Either the seal record failed to become durable or the replay
		// found an internal inconsistency; both leave the on-disk state
		// behind the serving state in ways only a restart resolves.
		return false, e.fatal(err)
	}

	if sealBarrier != nil {
		sealBarrier()
	}
	// Publish the image and truncate the log, holding only compactMu:
	// readers and Apply proceed, and the order (seal record durable →
	// rename → rotate) keeps every intermediate crash recoverable.
	if e.store != nil {
		// The epoch is already swapped; any failure from here on leaves
		// disk lagging the serving state (a recoverable lag — the seal
		// record is durable, so a restart replays to the same epoch), but
		// further writes cannot be trusted: fail stop.
		final, err := segment.Commit(tmpSeg)
		if err != nil {
			return false, e.fatal(err)
		}
		e.store.segSeq.Store(snap.seq)
		e.store.lastSeal.Store(time.Now().UnixNano())
		if err := e.store.wal.Rotate(snap.seq); err != nil {
			return false, e.fatal(err)
		}
		if err := segment.RemoveObsolete(e.store.dir, final); err != nil {
			return false, e.fatal(err)
		}
	}
	return true, nil
}

// compactSwap is compact's locked phase: catch up on batches that
// landed mid-rebuild, make the seal durable, publish the epoch.
func (e *Engine) compactSwap(snap *epoch, snapOps int, base *graph.Graph, idx *core.LocalIndex, tmpSeg string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.ep.Load()
	g := base
	if cur.seq != snap.seq {
		// Applies landed while we rebuilt. Their edge ops are the
		// suffix of the current overlay log (bases only change here,
		// under compactMu), and a batch may also have grown only the
		// dictionaries (add-vertex/add-label stage no log entry), so
		// the seq comparison — not the log length — decides whether to
		// catch up. Replay onto the fresh base is exact: IDs are stable
		// across compaction.
		var err error
		g, err = graph.ReplayOnto(base, cur.kg.g, snapOps)
		if err != nil {
			return err
		}
		// The fresh index describes base; maintain it through the
		// caught-up suffix so pruning is live immediately after a racy
		// compaction too, not just after a quiet one. (The segment image
		// keeps the fresh index — ApplyMutations is copy-on-write.)
		if idx != nil && !e.opts.NoIndexMaintenance {
			idx, _ = idx.ApplyMutations(g, cur.kg.g.OverlayEdgeOps(snapOps))
		}
	}
	if e.store != nil {
		// The seal record carries the epoch bump and the covered prefix;
		// it must be durable before the segment can become the newest.
		if err := e.store.sealAppend(cur.seq+1, snap.seq); err != nil {
			return err
		}
	}
	e.publishEpoch(e.newEpoch(cur.seq+1, g, idx, cur.idxSeq))
	e.compactions.Add(1)
	return nil
}
