package lscr_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	pub "lscr"
	"lscr/internal/graph"
)

// The mutate equivalence tier: after every prefix of a random mutation
// script, the live engine must answer exactly like an engine rebuilt
// from scratch on that prefix's final edge set.
//
//   - On an uncompacted overlay, the index-free algorithms (UIS, UIS*,
//     Conjunctive) must be bit-identical — Reachable, Stats and
//     SatisfyingVertices — because the overlay view is observationally
//     identical to the rebuilt CSR; INS (whose Stats depend on the
//     compaction-rebuilt index) must agree on Reachable.
//   - After Engine.Compact, all four algorithms must be bit-identical:
//     compaction preserves IDs and the index build is deterministic per
//     (graph, seed), so the compacted engine IS the rebuilt engine.
//
// The test names carry "Mutate" so the race-enabled CI tier picks them
// up; TestMutateConcurrentApplyQuery additionally runs queries
// concurrently with Apply and compaction swaps under -race.

// mutEdge is one edge in terms of names.
type mutEdge struct{ s, l, t string }

// mutModel is the test-side ground truth the engine must match: the
// dictionaries in intern order and the surviving edge multiset. It is
// maintained independently of the engine, mutation by mutation, and
// rebuilt from scratch through a Builder per prefix.
type mutModel struct {
	vertices []string
	vset     map[string]bool
	labels   []string
	lset     map[string]bool
	edges    []mutEdge
}

func newMutModel() *mutModel {
	return &mutModel{vset: make(map[string]bool), lset: make(map[string]bool)}
}

func (m *mutModel) vertex(name string) {
	if !m.vset[name] {
		m.vset[name] = true
		m.vertices = append(m.vertices, name)
	}
}

func (m *mutModel) label(name string) {
	if !m.lset[name] {
		m.lset[name] = true
		m.labels = append(m.labels, name)
	}
}

// apply mirrors one engine mutation into the model. Interning order
// matches the engine's (subject, label, object — see Delta.AddEdgeNames).
func (m *mutModel) apply(mut pub.Mutation) {
	switch mut.Op {
	case pub.OpAddEdge:
		m.vertex(mut.Subject)
		m.label(mut.Label)
		m.vertex(mut.Object)
		m.edges = append(m.edges, mutEdge{mut.Subject, mut.Label, mut.Object})
	case pub.OpDeleteEdge:
		for i, e := range m.edges {
			if e == (mutEdge{mut.Subject, mut.Label, mut.Object}) {
				m.edges = append(m.edges[:i], m.edges[i+1:]...)
				break
			}
		}
	case pub.OpAddVertex:
		m.vertex(mut.Subject)
	case pub.OpAddLabel:
		m.label(mut.Label)
	}
}

// build rebuilds the model's graph from scratch — "an engine rebuilt on
// the final edge set", with the same dictionaries in the same ID order.
func (m *mutModel) build() *graph.Graph {
	b := graph.NewBuilder()
	for _, l := range m.labels {
		b.Label(l)
	}
	for _, v := range m.vertices {
		b.Vertex(v)
	}
	for _, e := range m.edges {
		b.AddEdgeNames(e.s, e.l, e.t)
	}
	return b.Build()
}

// mutSeedGraph builds the deterministic schema-free base graph (landmark
// selection falls back to degree order, so rebuilt engines need no
// schema replication) and the model mirroring it.
func mutSeedGraph(seed int64, n, nLabels, nEdges int) (*graph.Graph, *mutModel) {
	rng := rand.New(rand.NewSource(seed))
	m := newMutModel()
	for i := 0; i < nLabels; i++ {
		m.label(fmt.Sprintf("l%d", i))
	}
	for i := 0; i < n; i++ {
		m.vertex(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < nEdges; i++ {
		m.edges = append(m.edges, mutEdge{
			fmt.Sprintf("v%d", rng.Intn(n)),
			fmt.Sprintf("l%d", rng.Intn(nLabels)),
			fmt.Sprintf("v%d", rng.Intn(n)),
		})
	}
	return m.build(), m
}

// mutScript derives a deterministic mutation script: batches of edge
// insertions (sometimes via brand-new vertices and labels) and
// deletions of surviving edges, tracked against a shadow copy of the
// model so deletes always target present instances.
func mutScript(seed int64, m *mutModel, batches, opsPerBatch int) [][]pub.Mutation {
	rng := rand.New(rand.NewSource(seed))
	shadow := newMutModel()
	for _, l := range m.labels {
		shadow.label(l)
	}
	for _, v := range m.vertices {
		shadow.vertex(v)
	}
	shadow.edges = append(shadow.edges, m.edges...)

	var script [][]pub.Mutation
	for bi := 0; bi < batches; bi++ {
		var batch []pub.Mutation
		for oi := 0; oi < opsPerBatch; oi++ {
			var mut pub.Mutation
			switch {
			case len(shadow.edges) > 0 && rng.Intn(3) == 0:
				e := shadow.edges[rng.Intn(len(shadow.edges))]
				mut = pub.Mutation{Op: pub.OpDeleteEdge, Subject: e.s, Label: e.l, Object: e.t}
			case rng.Intn(8) == 0:
				mut = pub.Mutation{Op: pub.OpAddVertex, Subject: fmt.Sprintf("iso%d_%d", bi, oi)}
			default:
				s := shadow.vertices[rng.Intn(len(shadow.vertices))]
				t := shadow.vertices[rng.Intn(len(shadow.vertices))]
				if rng.Intn(5) == 0 {
					s = fmt.Sprintf("w%d_%d", bi, oi)
				}
				l := shadow.labels[rng.Intn(len(shadow.labels))]
				mut = pub.Mutation{Op: pub.OpAddEdge, Subject: s, Label: l, Object: t}
			}
			shadow.apply(mut)
			batch = append(batch, mut)
		}
		script = append(script, batch)
	}
	return script
}

// mutRequests builds the fixed query workload: every algorithm over a
// grid of endpoints, label subsets and substructure constraints.
func mutRequests(n, nLabels int) []pub.Request {
	consts := []string{
		`SELECT ?x WHERE { ?x <l0> <v1>. }`,
		`SELECT ?x WHERE { <v2> <l1> ?x. }`,
		`SELECT ?x WHERE { ?x <l0> ?y. ?y <l1> <v3>. }`,
	}
	algos := []pub.Algorithm{pub.INS, pub.UIS, pub.UISStar, pub.Conjunctive}
	var reqs []pub.Request
	for i := 0; i < 32; i++ {
		req := pub.Request{
			Source:    fmt.Sprintf("v%d", (i*7)%n),
			Target:    fmt.Sprintf("v%d", (i*13+5)%n),
			Algorithm: algos[i%len(algos)],
		}
		if i%3 != 0 {
			req.Labels = []string{fmt.Sprintf("l%d", i%nLabels)}
			if i%2 == 0 {
				req.Labels = append(req.Labels, fmt.Sprintf("l%d", (i+1)%nLabels))
			}
		}
		if req.Algorithm == pub.Conjunctive {
			req.Constraints = []string{consts[i%len(consts)], consts[(i+1)%len(consts)]}
		} else {
			req.Constraint = consts[i%len(consts)]
		}
		reqs = append(reqs, req)
	}
	return reqs
}

var mutOpts = pub.Options{Landmarks: 24, IndexSeed: 7, CompactAfter: -1}

// answersEqual compares two query outcomes; withStats demands
// bit-identical Stats and SatisfyingVertices, not just the answer.
func answersEqual(a, b pub.QueryOutcome, withStats bool) error {
	if (a.Err == nil) != (b.Err == nil) {
		return fmt.Errorf("error mismatch: %v vs %v", a.Err, b.Err)
	}
	if a.Err != nil {
		if a.Err.Error() != b.Err.Error() {
			return fmt.Errorf("error text mismatch: %v vs %v", a.Err, b.Err)
		}
		return nil
	}
	if a.Response.Reachable != b.Response.Reachable {
		return fmt.Errorf("reachable %v vs %v", a.Response.Reachable, b.Response.Reachable)
	}
	if withStats {
		if a.Response.Stats != b.Response.Stats || a.Response.SatisfyingVertices != b.Response.SatisfyingVertices {
			return fmt.Errorf("stats {%+v vs=%d} vs {%+v vs=%d}",
				a.Response.Stats, a.Response.SatisfyingVertices,
				b.Response.Stats, b.Response.SatisfyingVertices)
		}
	}
	return nil
}

// TestMutatePrefixEquivalence is the core tier: at every script prefix,
// the live engine equals a from-scratch rebuild — index-free algorithms
// bit-identically even on the uncompacted overlay, all four algorithms
// bit-identically after Compact.
func TestMutatePrefixEquivalence(t *testing.T) {
	const n, nLabels = 60, 4
	g0, model := mutSeedGraph(101, n, nLabels, 360)
	eng := pub.NewEngine(pub.FromGraph(g0), mutOpts)
	script := mutScript(202, model, 10, 12)
	reqs := mutRequests(n, nLabels)
	ctx := context.Background()
	bo := pub.BatchOptions{Concurrency: 4}

	for step, batch := range script {
		res, err := eng.Apply(ctx, batch)
		if err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		if res.Epoch == 0 {
			t.Fatalf("step %d: epoch not advanced", step)
		}
		for _, mut := range batch {
			model.apply(mut)
		}
		rebuilt := pub.NewEngine(pub.FromGraph(model.build()), mutOpts)
		want := rebuilt.QueryBatch(ctx, reqs, bo)

		// Overlay mode: UIS/UIS*/Conjunctive bit-identical, INS exact.
		if eng.Epoch().OverlayOps == 0 {
			t.Fatalf("step %d: expected an uncompacted overlay", step)
		}
		got := eng.QueryBatch(ctx, reqs, bo)
		for i := range reqs {
			withStats := reqs[i].Algorithm != pub.INS
			if err := answersEqual(got[i], want[i], withStats); err != nil {
				t.Errorf("step %d overlay, request %d (%v): %v", step, i, reqs[i].Algorithm, err)
			}
		}

		// Compacted: everything bit-identical, including INS Stats.
		if did, err := eng.Compact(ctx); err != nil || !did {
			t.Fatalf("step %d: Compact = %v, %v", step, did, err)
		}
		if ops := eng.Epoch().OverlayOps; ops != 0 {
			t.Fatalf("step %d: %d overlay ops survived compaction", step, ops)
		}
		got = eng.QueryBatch(ctx, reqs, bo)
		for i := range reqs {
			if err := answersEqual(got[i], want[i], true); err != nil {
				t.Errorf("step %d compacted, request %d (%v): %v", step, i, reqs[i].Algorithm, err)
			}
		}
		if t.Failed() {
			t.FailNow()
		}

		// KG view bookkeeping agrees with the model.
		kg := eng.KG()
		if kg.NumVertices() != len(model.vertices) || kg.NumEdges() != len(model.edges) || kg.NumLabels() != len(model.labels) {
			t.Fatalf("step %d: KG dims (%d,%d,%d) != model (%d,%d,%d)", step,
				kg.NumVertices(), kg.NumEdges(), kg.NumLabels(),
				len(model.vertices), len(model.edges), len(model.labels))
		}
	}
}

// TestMutatePrefixEquivalenceOverlayChain is the same equivalence with
// no compaction at all: the overlay chains across every batch, proving
// long overlay histories stay observationally exact.
func TestMutatePrefixEquivalenceOverlayChain(t *testing.T) {
	const n, nLabels = 50, 3
	g0, model := mutSeedGraph(33, n, nLabels, 280)
	eng := pub.NewEngine(pub.FromGraph(g0), mutOpts)
	script := mutScript(44, model, 8, 10)
	reqs := mutRequests(n, nLabels)
	ctx := context.Background()
	bo := pub.BatchOptions{Concurrency: 4}

	for step, batch := range script {
		if _, err := eng.Apply(ctx, batch); err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		for _, mut := range batch {
			model.apply(mut)
		}
		rebuilt := pub.NewEngine(pub.FromGraph(model.build()), mutOpts)
		want := rebuilt.QueryBatch(ctx, reqs, bo)
		got := eng.QueryBatch(ctx, reqs, bo)
		for i := range reqs {
			withStats := reqs[i].Algorithm != pub.INS
			if err := answersEqual(got[i], want[i], withStats); err != nil {
				t.Fatalf("step %d, request %d (%v): %v", step, i, reqs[i].Algorithm, err)
			}
		}
	}
	if eng.Epoch().OverlayOps == 0 {
		t.Fatal("chain test never accumulated an overlay")
	}
}

// TestMutateApplyAtomicity pins the all-or-nothing contract: a batch
// that fails validation at its last mutation publishes nothing, even
// though earlier mutations of the same batch were individually valid.
func TestMutateApplyAtomicity(t *testing.T) {
	g0, _ := mutSeedGraph(5, 20, 2, 60)
	eng := pub.NewEngine(pub.FromGraph(g0), mutOpts)
	ctx := context.Background()
	before := eng.Epoch()
	kgBefore := eng.KG()

	_, err := eng.Apply(ctx, []pub.Mutation{
		{Op: pub.OpAddEdge, Subject: "v0", Label: "l0", Object: "nova"},
		{Op: pub.OpDeleteEdge, Subject: "v0", Label: "l0", Object: "no-such-vertex"},
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	after := eng.Epoch()
	if after.Epoch != before.Epoch || after.OverlayOps != before.OverlayOps {
		t.Fatalf("failed batch changed epoch state: %+v -> %+v", before, after)
	}
	kg := eng.KG()
	if kg != kgBefore {
		t.Fatal("failed batch swapped the KG view")
	}
	if kg.Graph().Vertex("nova") != graph.NoVertex {
		t.Fatal("failed batch leaked an interned vertex")
	}

	// A cancelled context publishes nothing either.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.Apply(cctx, []pub.Mutation{{Op: pub.OpAddVertex, Subject: "x"}}); err == nil {
		t.Fatal("cancelled Apply succeeded")
	}
	if eng.Epoch().Epoch != before.Epoch {
		t.Fatal("cancelled Apply advanced the epoch")
	}
}

// TestMutateConcurrentApplyQuery floods the engine with queries from
// many goroutines while the script commits and compactions swap epochs
// underneath, under -race. Every response observed concurrently must be
// byte-for-byte one of the per-prefix serial answers — i.e. every query
// saw one consistent epoch, never a torn or mixed view.
func TestMutateConcurrentApplyQuery(t *testing.T) {
	// Large enough that probe searches take real time relative to the
	// writer's Apply/Compact cadence, so many queries genuinely span an
	// epoch swap (including the compactor's) mid-flight.
	const n, nLabels = 250, 3
	_, model := mutSeedGraph(71, n, nLabels, 700)
	// The script is derived before "sink" is interned, so no mutation
	// ever touches it: the probe below can never reach it, UIS sweeps
	// the entire reachable set every time, and its PassedVertices is a
	// sharp fingerprint of the exact edge set — the serial pass below
	// records one distinct fingerprint per prefix.
	script := mutScript(72, model, 6, 8)
	model.vertex("sink")
	g0 := model.build()

	// Candidate probes all run UIS (no index dependence), so each
	// Response is a deterministic function of the prefix alone. The
	// serial pass records every candidate's per-prefix fingerprint and
	// the concurrent pass uses the candidate whose fingerprint
	// discriminates the most prefixes — a probe whose answer never moves
	// would validate nothing.
	candidates := make([]pub.Request, 20)
	for i := range candidates {
		candidates[i] = pub.Request{
			Source:     fmt.Sprintf("v%d", i*11),
			Target:     "sink",
			Labels:     []string{fmt.Sprintf("l%d", i%nLabels)},
			Constraint: `SELECT ?x WHERE { ?x <l0> ?y. }`,
			Algorithm:  pub.UIS,
		}
	}

	// probeKey canonicalises a Response down to its deterministic fields
	// (Elapsed is wall clock and must not participate).
	probeKey := func(r pub.Response) string {
		return fmt.Sprintf("%v/%+v/%d", r.Reachable, r.Stats, r.SatisfyingVertices)
	}

	// Serial pass: the exact valid Response set per candidate, one entry
	// per prefix.
	serial := pub.NewEngine(pub.FromGraph(g0), mutOpts)
	ctx := context.Background()
	validSets := make([]map[string]bool, len(candidates))
	record := func() {
		for i, c := range candidates {
			snap, err := serial.Query(ctx, c)
			if err != nil {
				t.Fatal(err)
			}
			if validSets[i] == nil {
				validSets[i] = make(map[string]bool)
			}
			validSets[i][probeKey(snap)] = true
		}
	}
	record()
	for _, batch := range script {
		if _, err := serial.Apply(ctx, batch); err != nil {
			t.Fatal(err)
		}
		record()
	}
	best := 0
	for i := range validSets {
		if len(validSets[i]) > len(validSets[best]) {
			best = i
		}
	}
	probe, valid := candidates[best], validSets[best]
	if len(valid) < 2 {
		t.Fatalf("no candidate probe discriminates any prefix (best has %d fingerprints)", len(valid))
	}

	// Concurrent pass on a fresh engine: readers hammer the probe (and a
	// mixed workload) while the writer applies and compacts.
	eng := pub.NewEngine(pub.FromGraph(g0), mutOpts)
	reqs := mutRequests(n, nLabels)
	var wg sync.WaitGroup
	var probes atomic.Int64
	stop := make(chan struct{})
	errc := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := eng.Query(ctx, probe)
				if err != nil {
					errc <- fmt.Errorf("probe: %v", err)
					return
				}
				if !valid[probeKey(resp)] {
					errc <- fmt.Errorf("probe answered outside every prefix: %+v", resp)
					return
				}
				probes.Add(1)
				if _, err := eng.Query(ctx, reqs[i%len(reqs)]); err != nil {
					errc <- fmt.Errorf("mixed workload: %v", err)
					return
				}
				i++
			}
		}(w)
	}
	for _, batch := range script {
		if _, err := eng.Apply(ctx, batch); err != nil {
			t.Fatalf("Apply under load: %v", err)
		}
		// Compaction rebuilds the CSR and index, so readers keep
		// answering — many mid-swap — while it runs and lands. The
		// writer then waits until at least one more probe completes, so
		// every epoch (overlay and compacted alike) is actually observed
		// under load, even on a single-core scheduler.
		if _, err := eng.Compact(ctx); err != nil {
			t.Fatalf("Compact under load: %v", err)
		}
		waitFrom := probes.Load()
		deadline := time.Now().Add(10 * time.Second)
		for probes.Load() == waitFrom && len(errc) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("readers made no progress for 10s")
			}
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if probes.Load() == 0 {
		t.Fatal("no probe query completed concurrently with the writer; the test observed nothing")
	}
	t.Logf("%d probe answers validated against %d prefix snapshots", probes.Load(), len(valid))
}

// TestMutateDictionaryOnlyBatchSurvivesCompaction regression-tests the
// compactor's catch-up path for batches that grow only the
// dictionaries: an add-vertex committed while a compaction is
// rebuilding stages no overlay log entry, so a catch-up keyed on log
// length (instead of the epoch sequence) would silently drop the
// vertex when the compacted base swaps in.
func TestMutateDictionaryOnlyBatchSurvivesCompaction(t *testing.T) {
	const n, nLabels = 120, 3
	g0, model := mutSeedGraph(13, n, nLabels, 900)
	eng := pub.NewEngine(pub.FromGraph(g0), mutOpts)
	ctx := context.Background()
	script := mutScript(14, model, 30, 6)

	for i, batch := range script {
		// Create an overlay so the compaction below has real work,
		// then race a dictionary-only batch against it.
		if _, err := eng.Apply(ctx, batch); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := eng.Compact(ctx)
			done <- err
		}()
		ghost := fmt.Sprintf("ghost%d", i)
		if _, err := eng.Apply(ctx, []pub.Mutation{{Op: pub.OpAddVertex, Subject: ghost}}); err != nil {
			t.Fatalf("ghost apply %d: %v", i, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
		if eng.KG().Graph().Vertex(ghost) == graph.NoVertex {
			t.Fatalf("vertex %q committed during compaction vanished after the swap", ghost)
		}
	}
}

// TestMutateNoOpBatchKeepsEpoch regression-tests idempotent batches:
// interning names that already exist changes nothing, so no epoch may
// be published (publishing would discard the constraint cache).
func TestMutateNoOpBatchKeepsEpoch(t *testing.T) {
	g0, _ := mutSeedGraph(17, 20, 2, 60)
	eng := pub.NewEngine(pub.FromGraph(g0), mutOpts)
	ctx := context.Background()
	// Prime the constraint cache.
	if _, err := eng.Query(ctx, pub.Request{
		Source: "v0", Target: "v1", Constraint: `SELECT ?x WHERE { ?x <l0> ?y. }`, Algorithm: pub.UIS,
	}); err != nil {
		t.Fatal(err)
	}
	before := eng.Epoch()
	cacheBefore := eng.CacheStats()
	if cacheBefore.Entries == 0 {
		t.Fatal("cache not primed")
	}
	res, err := eng.Apply(ctx, []pub.Mutation{
		{Op: pub.OpAddVertex, Subject: "v0"}, // already interned
		{Op: pub.OpAddLabel, Label: "l1"},    // already interned
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != before.Epoch || res.NewVertices != 0 || res.NewLabels != 0 {
		t.Fatalf("no-op batch published: %+v (before %+v)", res, before)
	}
	if after := eng.CacheStats(); after.Entries != cacheBefore.Entries {
		t.Fatalf("no-op batch dropped the constraint cache: %+v -> %+v", cacheBefore, after)
	}

	// Engine.Health reads one epoch: its numbers must be mutually
	// consistent by construction.
	kg, _, info, maint := eng.Health()
	if kg.Graph().OverlaySize() != info.OverlayOps {
		t.Fatalf("Health inconsistent: kg overlay %d vs info %d", kg.Graph().OverlaySize(), info.OverlayOps)
	}
	if maint.IndexEpoch != info.IndexEpoch {
		t.Fatalf("Health inconsistent: maint index epoch %d vs info %d", maint.IndexEpoch, info.IndexEpoch)
	}
}

// TestMutateMaintenanceCounters walks the maintenance lifecycle through
// the public surface (IndexMaintenance / Health, what /healthz serves):
// insert-only batches keep every landmark clean with the index epoch
// tracking the graph epoch; a deletion invalidates at least one
// landmark; compaction clears the dirty set and the index is current
// again.
func TestMutateMaintenanceCounters(t *testing.T) {
	const n, nLabels = 60, 3
	g0, model := mutSeedGraph(23, n, nLabels, 300)
	eng := pub.NewEngine(pub.FromGraph(g0), mutOpts)
	ctx := context.Background()

	if m := eng.IndexMaintenance(); !m.Enabled || m.Batches != 0 || m.DirtyLandmarks != 0 || !m.IndexCurrent {
		t.Fatalf("fresh engine maintenance state: %+v", m)
	}

	// Insert-only: maintenance runs, nothing goes dirty, index current.
	var inserts []pub.Mutation
	for i := 0; i < 12; i++ {
		mut := pub.Mutation{
			Op:      pub.OpAddEdge,
			Subject: fmt.Sprintf("v%d", (i*5)%n),
			Label:   fmt.Sprintf("l%d", i%nLabels),
			Object:  fmt.Sprintf("v%d", (i*9+2)%n),
		}
		inserts = append(inserts, mut)
		model.apply(mut)
	}
	if _, err := eng.Apply(ctx, inserts); err != nil {
		t.Fatal(err)
	}
	m := eng.IndexMaintenance()
	if m.Batches != 1 || m.DirtyLandmarks != 0 || !m.IndexCurrent || m.LandmarksInvalidated != 0 {
		t.Fatalf("after insert-only batch: %+v", m)
	}
	if info := eng.Epoch(); m.IndexEpoch != info.Epoch {
		t.Fatalf("index epoch %d lags graph epoch %d after insert-only batch", m.IndexEpoch, info.Epoch)
	}

	// Deletions: at least one landmark must eventually go dirty (edges
	// sourced outside every region are the only exception, so a handful
	// of deletes is plenty at K=24 on 60 vertices).
	for i := 0; i < 10 && eng.IndexMaintenance().DirtyLandmarks == 0; i++ {
		e := model.edges[0]
		mut := pub.Mutation{Op: pub.OpDeleteEdge, Subject: e.s, Label: e.l, Object: e.t}
		model.apply(mut)
		if _, err := eng.Apply(ctx, []pub.Mutation{mut}); err != nil {
			t.Fatal(err)
		}
	}
	m = eng.IndexMaintenance()
	if m.DirtyLandmarks == 0 || m.LandmarksInvalidated == 0 {
		t.Fatalf("deletions never invalidated a landmark: %+v", m)
	}
	if !m.IndexCurrent {
		t.Fatalf("maintained index must stay current (dirty landmarks are excluded, not stale): %+v", m)
	}

	// Compaction rebuilds invalidated landmarks: dirty set clears.
	if did, err := eng.Compact(ctx); err != nil || !did {
		t.Fatalf("Compact = %v, %v", did, err)
	}
	m = eng.IndexMaintenance()
	if m.DirtyLandmarks != 0 || !m.IndexCurrent {
		t.Fatalf("after compaction: %+v", m)
	}
	if _, _, info, maint := eng.Health(); maint.DirtyLandmarks != 0 || maint.IndexEpoch != info.IndexEpoch {
		t.Fatalf("Health disagrees with IndexMaintenance: %+v vs epoch %+v", maint, info)
	}
}

// TestMutateMaintainedDeterminism: two engines fed the identical script
// answer bit-identically at every prefix — all four algorithms, Stats
// included (INS's Stats are a function of the maintained index, so this
// pins maintenance determinism end to end).
func TestMutateMaintainedDeterminism(t *testing.T) {
	const n, nLabels = 50, 3
	g0a, model := mutSeedGraph(61, n, nLabels, 250)
	g0b, _ := mutSeedGraph(61, n, nLabels, 250)
	ea := pub.NewEngine(pub.FromGraph(g0a), mutOpts)
	eb := pub.NewEngine(pub.FromGraph(g0b), mutOpts)
	script := mutScript(62, model, 6, 10)
	reqs := mutRequests(n, nLabels)
	ctx := context.Background()
	bo := pub.BatchOptions{Concurrency: 4}

	for step, batch := range script {
		if _, err := ea.Apply(ctx, batch); err != nil {
			t.Fatal(err)
		}
		if _, err := eb.Apply(ctx, batch); err != nil {
			t.Fatal(err)
		}
		ra := ea.QueryBatch(ctx, reqs, bo)
		rb := eb.QueryBatch(ctx, reqs, bo)
		for i := range reqs {
			if err := answersEqual(ra[i], rb[i], true); err != nil {
				t.Fatalf("step %d, request %d (%v): %v", step, i, reqs[i].Algorithm, err)
			}
		}
		ma, mb := ea.IndexMaintenance(), eb.IndexMaintenance()
		if ma != mb {
			t.Fatalf("step %d: maintenance state diverged: %+v vs %+v", step, ma, mb)
		}
	}
	if ea.IndexMaintenance().Batches == 0 {
		t.Fatal("script never exercised maintenance")
	}
}

// TestMutateBackgroundCompaction drives Apply past a tiny CompactAfter
// threshold and waits for the background compactor to land, proving the
// trigger path (not just the synchronous Compact) and that the swapped
// epoch answers like a from-scratch rebuild.
func TestMutateBackgroundCompaction(t *testing.T) {
	const n, nLabels = 30, 3
	g0, model := mutSeedGraph(9, n, nLabels, 150)
	opts := mutOpts
	opts.CompactAfter = 5 // tiny: nearly every batch crosses it
	eng := pub.NewEngine(pub.FromGraph(g0), opts)
	script := mutScript(10, model, 5, 8)
	ctx := context.Background()

	started := false
	for _, batch := range script {
		res, err := eng.Apply(ctx, batch)
		if err != nil {
			t.Fatal(err)
		}
		started = started || res.CompactionStarted
		for _, mut := range batch {
			model.apply(mut)
		}
	}
	if !started {
		t.Fatal("no background compaction was ever started")
	}
	// Compact() waits for any in-flight background run (compactMu) and
	// folds whatever remains, so the state below is deterministic.
	if _, err := eng.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	info := eng.Epoch()
	if info.Compactions == 0 {
		t.Fatal("no compaction recorded")
	}
	if info.OverlayOps != 0 {
		t.Fatalf("%d overlay ops left after final compaction", info.OverlayOps)
	}

	rebuilt := pub.NewEngine(pub.FromGraph(model.build()), opts)
	reqs := mutRequests(n, nLabels)
	want := rebuilt.QueryBatch(ctx, reqs, pub.BatchOptions{})
	got := eng.QueryBatch(ctx, reqs, pub.BatchOptions{})
	for i := range reqs {
		if err := answersEqual(got[i], want[i], true); err != nil {
			t.Errorf("request %d (%v): %v", i, reqs[i].Algorithm, err)
		}
	}
}
