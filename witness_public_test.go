package lscr

import (
	"bytes"
	"strings"
	"testing"
)

func TestReachWithWitness(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	q := Query{
		Source: "SuspectC", Target: "SuspectP",
		Labels:     []string{"transfer2019-04", "married-to"},
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
	}
	for _, algo := range []Algorithm{INS, UIS, UISStar} {
		q.Algorithm = algo
		res, path, err := eng.ReachWithWitness(q)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !res.Reachable || path == nil {
			t.Fatalf("%v: no witness for reachable query", algo)
		}
		if path.Satisfying != "MiddlemanX" {
			t.Errorf("%v: satisfying = %q, want MiddlemanX", algo, path.Satisfying)
		}
		s := path.String()
		if !strings.HasPrefix(s, "SuspectC ") || !strings.HasSuffix(s, " SuspectP") {
			t.Errorf("%v: path = %q", algo, s)
		}
	}
	// False answers carry no witness.
	q.Labels = []string{"transfer2019-05"}
	q.Algorithm = INS
	res, path, err := eng.ReachWithWitness(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable || path != nil {
		t.Fatal("witness fabricated for false answer")
	}
	// Errors propagate.
	q.Source = "nobody"
	if _, _, err := eng.ReachWithWitness(q); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestWitnessZeroLengthPathString(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	// MiddlemanX -> MiddlemanX with MiddlemanX satisfying: empty path.
	res, path, err := eng.ReachWithWitness(Query{
		Source: "MiddlemanX", Target: "MiddlemanX",
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
	})
	if err != nil || !res.Reachable || path == nil {
		t.Fatalf("res=%+v path=%v err=%v", res, path, err)
	}
	if len(path.Hops) != 0 || path.String() != "MiddlemanX" {
		t.Fatalf("path = %+v (%q)", path.Hops, path.String())
	}
}

func TestSaveLoadIndex(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	var buf bytes.Buffer
	if err := eng.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewEngineFromIndex(kg, &buf, Options{ConstraintCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CacheStats().Enabled {
		t.Fatal("ConstraintCacheSize not applied on the load path")
	}
	q := Query{
		Source: "SuspectC", Target: "SuspectP",
		Labels:     []string{"transfer2019-04", "married-to"},
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
	}
	a, err := eng.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reachable != b.Reachable {
		t.Fatal("loaded index answers differently")
	}
	st1, _ := eng.Index()
	st2, ok := loaded.Index()
	if !ok || st1.Entries != st2.Entries || st1.Landmarks != st2.Landmarks {
		t.Fatalf("index stats differ: %+v vs %+v", st1, st2)
	}
}

func TestSaveIndexWithoutIndex(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{SkipIndex: true})
	var buf bytes.Buffer
	if err := eng.SaveIndex(&buf); err != ErrNoIndex {
		t.Fatalf("err = %v, want ErrNoIndex", err)
	}
}

func TestNewEngineFromIndexRejectsGarbage(t *testing.T) {
	kg := loadFincrime(t)
	if _, err := NewEngineFromIndex(kg, strings.NewReader("junk"), Options{}); err == nil {
		t.Fatal("garbage index accepted")
	}
}
