package lscr

import (
	"strings"
	"testing"
)

func TestReachAll(t *testing.T) {
	kg, err := Load(strings.NewReader(`
<C> <apr> <X> .
<X> <apr> <A> .
<A> <apr> <P> .
<X> <married> <Amy> .
<A> <flag> <Offshore> .
<C> <apr> <Clean> .
<Clean> <apr> <P> .
`))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(kg, Options{SkipIndex: true})
	q := MultiQuery{
		Source: "C", Target: "P",
		Labels: []string{"apr"},
		Constraints: []string{
			`SELECT ?x WHERE { ?x <married> <Amy>. }`,
			`SELECT ?x WHERE { ?x <flag> <Offshore>. }`,
		},
	}
	res, err := eng.ReachAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("C->X->A->P satisfies both conjuncts")
	}
	// Adding an unsatisfiable conjunct flips the answer.
	q.Constraints = append(q.Constraints, `SELECT ?x WHERE { ?x <flag> <Nonexistent>. }`)
	res, err = eng.ReachAll(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatal("unsatisfiable conjunct answered true")
	}
	// Restricting labels so the only path avoids the flagged account.
	q.Constraints = q.Constraints[:2]
	q.Labels = []string{"apr", "married"}
	res, err = eng.ReachAll(q)
	if err != nil || !res.Reachable {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestReachAllWithWitness(t *testing.T) {
	kg, err := Load(strings.NewReader(`
<C> <apr> <X> .
<X> <apr> <A> .
<A> <apr> <P> .
<X> <married> <Amy> .
<A> <flag> <Offshore> .
`))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(kg, Options{SkipIndex: true})
	q := MultiQuery{
		Source: "C", Target: "P",
		Labels: []string{"apr"},
		Constraints: []string{
			`SELECT ?x WHERE { ?x <married> <Amy>. }`,
			`SELECT ?x WHERE { ?x <flag> <Offshore>. }`,
		},
	}
	res, mp, err := eng.ReachAllWithWitness(q)
	if err != nil || !res.Reachable || mp == nil {
		t.Fatalf("res=%+v mp=%v err=%v", res, mp, err)
	}
	if len(mp.SatisfiedBy) != 2 || mp.SatisfiedBy[0] != "X" || mp.SatisfiedBy[1] != "A" {
		t.Fatalf("SatisfiedBy = %v, want [X A]", mp.SatisfiedBy)
	}
	if len(mp.Hops) != 3 || mp.Hops[0].From != "C" || mp.Hops[2].To != "P" {
		t.Fatalf("Hops = %v", mp.Hops)
	}
	// False: no witness.
	q.Constraints = append(q.Constraints, `SELECT ?x WHERE { ?x <flag> <Nothing>. }`)
	res, mp, err = eng.ReachAllWithWitness(q)
	if err != nil || res.Reachable || mp != nil {
		t.Fatalf("unsat conjunct: res=%+v mp=%v err=%v", res, mp, err)
	}
	// Errors propagate.
	q.Source = "nobody"
	if _, _, err := eng.ReachAllWithWitness(q); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestReachAllErrors(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{SkipIndex: true})
	c := `SELECT ?x WHERE { ?x <married-to> <Amy>. }`
	if _, err := eng.ReachAll(MultiQuery{Source: "nope", Target: "SuspectP", Constraints: []string{c}}); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := eng.ReachAll(MultiQuery{Source: "SuspectC", Target: "nope", Constraints: []string{c}}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := eng.ReachAll(MultiQuery{Source: "SuspectC", Target: "SuspectP",
		Labels: []string{"bogus"}, Constraints: []string{c}}); err == nil {
		t.Error("unknown label accepted")
	}
	if _, err := eng.ReachAll(MultiQuery{Source: "SuspectC", Target: "SuspectP",
		Constraints: []string{"garbage"}}); err == nil {
		t.Error("malformed constraint accepted")
	}
	if _, err := eng.ReachAll(MultiQuery{Source: "SuspectC", Target: "SuspectP"}); err == nil {
		t.Error("empty conjunction accepted")
	}
}
