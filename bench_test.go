// The external test package breaks the cycle that would otherwise run
// through internal/bench, which imports the public lscr package for its
// throughput harness.
package lscr_test

// One testing.B benchmark per table and figure of the paper's evaluation
// section (§6), each delegating to the internal/bench harness. The first
// iteration of every benchmark prints the regenerated table to stdout
// (captured in bench_output.txt by the EXPERIMENTS.md workflow); further
// iterations measure end-to-end experiment cost against io.Discard.
//
// Scales are laptop defaults; run `go run ./cmd/lscrbench -exp <id>
// -scale N -queries M` for larger reproductions.

import (
	"io"
	"os"
	"sync"
	"testing"

	"lscr/internal/bench"
)

var benchCfg = bench.Config{Scale: 1, QueriesPerGroup: 8, Seed: 1}

var printOnce sync.Map // experiment id -> *sync.Once

func runExperiment(b *testing.B, id string, f func(io.Writer, bench.Config) error) {
	b.Helper()
	onceI, _ := printOnce.LoadOrStore(id, new(sync.Once))
	once := onceI.(*sync.Once)
	for i := 0; i < b.N; i++ {
		var w io.Writer = io.Discard
		printed := false
		once.Do(func() { w = os.Stdout; printed = true })
		if printed {
			os.Stdout.WriteString("\n==== " + id + " ====\n")
		}
		if err := f(w, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	runExperiment(b, "table2", bench.RunTable2)
}

func BenchmarkFig5Density(b *testing.B) {
	runExperiment(b, "fig5a", bench.RunFig5Density)
}

func BenchmarkFig5Scale(b *testing.B) {
	runExperiment(b, "fig5b", bench.RunFig5Scale)
}

func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10", "S1") }
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11", "S2") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12", "S3") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13", "S4") }
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14", "S5") }

func benchFigure(b *testing.B, id, constraint string) {
	runExperiment(b, id, func(w io.Writer, cfg bench.Config) error {
		return bench.RunFigure(w, constraint, cfg)
	})
}

func BenchmarkFig15(b *testing.B) {
	runExperiment(b, "fig15", bench.RunFig15)
}

func BenchmarkAblationRho(b *testing.B) {
	runExperiment(b, "ablation-rho", bench.RunAblationRho)
}

func BenchmarkAblationLandmarks(b *testing.B) {
	runExperiment(b, "ablation-landmarks", bench.RunAblationLandmarks)
}

func BenchmarkAblationQueue(b *testing.B) {
	runExperiment(b, "ablation-queue", bench.RunAblationQueue)
}

func BenchmarkAblationVSOrder(b *testing.B) {
	runExperiment(b, "ablation-vsorder", bench.RunAblationVSOrder)
}
