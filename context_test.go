package lscr

// The context tier: proofs of the v1 API's cancellation semantics.
// Mid-query cancellation must abort the hot search loops promptly
// (ISSUE acceptance: within 50 ms on a LUBM-scale graph), deadline
// expiry must surface as context.DeadlineExceeded, and — the flip
// side — a context that never fires must leave answers bit-identical
// to the deprecated context-free methods.

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"lscr/internal/graph"
	"lscr/internal/testkg"
)

// cancelPromptness is the acceptance budget: a cancelled query must
// return within this long of the cancel signal. The original 50 ms
// acceptance figure flakes on loaded single-core hosts (a GC pause or
// scheduler stall routinely exceeds it with the query already aborted);
// the budget distinguishes prompt abort from running to completion —
// the exhaustive queries here take whole seconds — so tripling it keeps
// the proof while absorbing host noise.
const cancelPromptness = 150 * time.Millisecond

// bigEngine lazily builds a LUBM-scale engine (hundreds of thousands
// of vertices, >10^6 edges) whose exhaustive false queries run long
// enough that a cancel signal always lands mid-search. The landmark
// count is capped so the one-off index build stays cheap; the search
// still has to sweep the whole reachable graph.
var bigOnce = sync.Once{}
var bigEng *Engine

// bigUnreachable is a vertex with no in-edges: every (u<i>,
// bigUnreachable) query is false, forcing an exhaustive search.
const bigUnreachable = "unreachable-sink"

func bigEngine(t *testing.T) *Engine {
	t.Helper()
	bigOnce.Do(func() {
		const (
			n = 300_000
			m = 1_200_000
		)
		rng := rand.New(rand.NewSource(11))
		b := graph.NewBuilder()
		for i := 0; i < n; i++ {
			b.Vertex("u" + strconv.Itoa(i))
		}
		for i := 0; i < 4; i++ {
			b.Label("l" + strconv.Itoa(i))
		}
		for i := 0; i < m; i++ {
			b.AddEdge(
				graph.VertexID(rng.Intn(n)),
				graph.Label(rng.Intn(4)),
				graph.VertexID(rng.Intn(n)),
			)
		}
		// The sink has one out-edge (so the name resolves) and no
		// in-edges (so it is unreachable from everywhere else).
		b.AddEdgeNames(bigUnreachable, "l0", "u0")
		bigEng = NewEngine(FromGraph(b.Build()), Options{Landmarks: 32, IndexSeed: 5})
	})
	return bigEng
}

// bigRequest is an exhaustive false query on the big graph: the
// constraint is satisfiable (huge V(S,G)) but the target is
// unreachable, so every algorithm sweeps the graph.
func bigRequest(algo Algorithm) Request {
	return Request{
		Source:     "u0",
		Target:     bigUnreachable,
		Constraint: `SELECT ?x WHERE { ?x <l0> ?y. }`,
		Algorithm:  algo,
	}
}

// TestQueryCancelPromptly cancels a query mid-search, for each
// algorithm, and requires context.Canceled back within the promptness
// budget. A handful of attempts guard against the (never observed)
// case of the query finishing before the cancel lands.
func TestQueryCancelPromptly(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock promptness budget is defined for normal builds; -race slows execution ~10x")
	}
	eng := bigEngine(t)
	for _, algo := range []Algorithm{UIS, UISStar, INS, Conjunctive} {
		t.Run(algo.String(), func(t *testing.T) {
			delay := 2 * time.Millisecond
			for attempt := 0; attempt < 5; attempt++ {
				ctx, cancel := context.WithCancel(context.Background())
				type outcome struct {
					err      error
					returned time.Time
				}
				done := make(chan outcome, 1)
				go func() {
					_, err := eng.Query(ctx, bigRequest(algo))
					done <- outcome{err: err, returned: time.Now()}
				}()
				time.Sleep(delay)
				cancelled := time.Now()
				cancel()
				out := <-done
				if out.err == nil {
					// Finished before the cancel; try again sooner.
					delay /= 2
					if delay <= 0 {
						delay = 100 * time.Microsecond
					}
					continue
				}
				if !errors.Is(out.err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", out.err)
				}
				if lag := out.returned.Sub(cancelled); lag > cancelPromptness {
					t.Fatalf("cancelled query returned after %v, budget %v", lag, cancelPromptness)
				}
				return
			}
			t.Fatalf("query never survived past the cancel delay; graph too small for the test")
		})
	}
}

// TestQueryDeadlineExceeded: a per-request Timeout far below the
// query's runtime surfaces as context.DeadlineExceeded, and an
// already-expired caller context never starts the search at all.
func TestQueryDeadlineExceeded(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock promptness budget is defined for normal builds; -race slows execution ~10x")
	}
	eng := bigEngine(t)
	req := bigRequest(UIS)
	req.Timeout = time.Millisecond
	start := time.Now()
	_, err := eng.Query(context.Background(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if lag := time.Since(start); lag > req.Timeout+cancelPromptness {
		t.Fatalf("deadline-bound query returned after %v", lag)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := eng.Query(ctx, bigRequest(INS)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context: err = %v, want context.DeadlineExceeded", err)
	}
}

// equivEngine is a modest shared fixture for the equivalence tests.
func equivEngine(t *testing.T) (*Engine, []Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	const nVertices = 400
	g := testkg.Random(rng, nVertices, 1600, 4)
	eng := NewEngine(FromGraph(g), Options{IndexSeed: 9})
	return eng, stressWorkload(rng, nVertices, 48)
}

// zeroElapsed strips the only legitimately nondeterministic field.
func zeroElapsed(r Result) Result {
	r.Elapsed = 0
	return r
}

// TestConcurrentQueryLegacyEquivalence: with a background context,
// Query answers bit-identically to the deprecated Reach / ReachAll /
// ReachWithWitness — and identically again through a cancellable (but
// never cancelled) context, whose interrupt polling must not perturb
// the search. Hammered from many goroutines so the race tier covers
// the new paths.
func TestConcurrentQueryLegacyEquivalence(t *testing.T) {
	eng, qs := equivEngine(t)

	// Serial ground truth via the deprecated wrappers.
	type truth struct {
		res   Result
		path  *Path
		all   Result
		multi *MultiPath
	}
	want := make([]truth, len(qs))
	for i, q := range qs {
		res, path, err := eng.ReachWithWitness(q)
		if err != nil {
			t.Fatalf("serial ReachWithWitness %d: %v", i, err)
		}
		mq := MultiQuery{Source: q.Source, Target: q.Target, Labels: q.Labels,
			Constraints: []string{q.Constraint}}
		all, multi, err := eng.ReachAllWithWitness(mq)
		if err != nil {
			t.Fatalf("serial ReachAllWithWitness %d: %v", i, err)
		}
		want[i] = truth{res: zeroElapsed(res), path: path, all: zeroElapsed(all), multi: multi}
	}

	// Never-fired cancellable context: Done() != nil, so the interrupt
	// path is live in every hot loop.
	armed, disarm := context.WithCancel(context.Background())
	defer disarm()

	const goroutines = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, q := range qs {
				for _, ctx := range []context.Context{context.Background(), armed} {
					req := q.request()
					req.WantWitness = true
					resp, err := eng.Query(ctx, req)
					if err != nil {
						errc <- err
						return
					}
					if got := zeroElapsed(resp.result()); !reflect.DeepEqual(got, want[i].res) {
						t.Errorf("worker %d query %d: Result %+v, want %+v", w, i, got, want[i].res)
						return
					}
					if !reflect.DeepEqual(resp.Witness.ToPath(), want[i].path) {
						t.Errorf("worker %d query %d: witness diverged", w, i)
						return
					}
					mreq := Request{Source: q.Source, Target: q.Target, Labels: q.Labels,
						Constraints: []string{q.Constraint}, Algorithm: Conjunctive, WantWitness: true}
					mresp, err := eng.Query(ctx, mreq)
					if err != nil {
						errc <- err
						return
					}
					if got := zeroElapsed(mresp.result()); !reflect.DeepEqual(got, want[i].all) {
						t.Errorf("worker %d query %d: conjunctive Result %+v, want %+v", w, i, got, want[i].all)
						return
					}
					if !reflect.DeepEqual(mresp.Witness.ToMultiPath(), want[i].multi) {
						t.Errorf("worker %d query %d: conjunctive witness diverged", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("concurrent Query errored: %v", err)
	}
}

// TestQueryBatchCancelUnscheduled: a batch whose context is already
// cancelled runs nothing — every slot records ctx.Err().
func TestQueryBatchCancelUnscheduled(t *testing.T) {
	eng, qs := equivEngine(t)
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		reqs[i] = q.request()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, o := range eng.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 4}) {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("slot %d: err = %v, want context.Canceled", i, o.Err)
		}
	}
}

// TestQueryBatchCancelMidFlight: cancelling mid-batch stops
// scheduling — trailing slots record context.Canceled instead of
// running to completion, and the batch returns promptly.
func TestQueryBatchCancelMidFlight(t *testing.T) {
	eng, qs := equivEngine(t)
	// A batch big enough that it cannot complete before the cancel.
	const batchSize = 4096
	reqs := make([]Request, batchSize)
	for i := range reqs {
		reqs[i] = qs[i%len(qs)].request()
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(3*time.Millisecond, cancel)
	start := time.Now()
	out := eng.QueryBatch(ctx, reqs, BatchOptions{Concurrency: 2})
	elapsed := time.Since(start)
	defer cancel()

	var completed, cancelled int
	for i, o := range out {
		switch {
		case o.Err == nil:
			completed++
		case errors.Is(o.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("slot %d: unexpected error %v", i, o.Err)
		}
	}
	if cancelled == 0 {
		t.Fatalf("no slot was cancelled (completed=%d); batch finished before the cancel", completed)
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled batch still took %v", elapsed)
	}
	t.Logf("batch cancelled after %v: %d completed, %d cancelled", elapsed, completed, cancelled)
}
