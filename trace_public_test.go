package lscr

import (
	"bytes"
	"strings"
	"testing"
)

func TestReachTraced(t *testing.T) {
	kg := loadFincrime(t)
	eng := NewEngine(kg, Options{})
	q := Query{
		Source: "SuspectC", Target: "SuspectP",
		Labels:     []string{"transfer2019-04", "married-to"},
		Constraint: `SELECT ?x WHERE { ?x <married-to> <Amy>. }`,
	}
	for _, algo := range []Algorithm{UIS, UISStar, INS} {
		q.Algorithm = algo
		var dot bytes.Buffer
		res, err := eng.ReachTraced(q, &dot)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !res.Reachable {
			t.Fatalf("%v: unreachable", algo)
		}
		out := dot.String()
		if !strings.Contains(out, "digraph") || !strings.Contains(out, "SuspectC_F") {
			t.Errorf("%v: DOT output malformed:\n%s", algo, out)
		}
	}
	// Nil writer skips rendering but still answers.
	q.Algorithm = INS
	res, err := eng.ReachTraced(q, nil)
	if err != nil || !res.Reachable {
		t.Fatalf("nil writer: %+v %v", res, err)
	}
	// Errors propagate.
	q.Source = "nobody"
	if _, err := eng.ReachTraced(q, nil); err == nil {
		t.Fatal("unknown source accepted")
	}
	q.Source = "SuspectC"
	q.Constraint = "garbage"
	if _, err := eng.ReachTraced(q, nil); err == nil {
		t.Fatal("malformed constraint accepted")
	}
	q.Constraint = `SELECT ?x WHERE { ?x <married-to> <Nobody>. }`
	res, err = eng.ReachTraced(q, nil)
	if err != nil || res.Reachable {
		t.Fatalf("unsatisfiable constraint: %+v %v", res, err)
	}
	noIdx := NewEngine(kg, Options{SkipIndex: true})
	q.Constraint = `SELECT ?x WHERE { ?x <married-to> <Amy>. }`
	q.Algorithm = INS
	if _, err := noIdx.ReachTraced(q, nil); err != ErrNoIndex {
		t.Fatalf("INS without index: %v", err)
	}
	q.Algorithm = Algorithm(77)
	if _, err := eng.ReachTraced(q, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
