// Command lscrd serves LSCR queries over HTTP.
//
//	lscrd -kg graph.nt -addr :8080
//
// Endpoints (all JSON):
//
//	GET  /healthz           — liveness + KG stats
//	POST /reach             — {"source","target","labels":[],"constraint","algorithm","witness"}
//	POST /reachbatch        — {"queries":[<reach bodies>],"concurrency":N}
//	POST /reachall          — {"source","target","labels":[],"constraints":[]}
//	POST /select            — {"query"}
//
// The server is read-only: the KG and index are built once at startup
// (across -workers goroutines) and shared by concurrent requests — the
// Engine's concurrency contract is what lets net/http fan requests out
// without any locking here. /reachbatch additionally parallelises inside
// a single request via Engine.ReachBatch.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"lscr"
)

func main() {
	var (
		kgPath  = flag.String("kg", "", "path to the KG (triples or snapshot; required)")
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "index-build goroutines (0 = all cores)")
	)
	flag.Parse()
	if *kgPath == "" {
		fmt.Fprintln(os.Stderr, "lscrd: -kg is required")
		os.Exit(2)
	}
	eng, kg, err := load(*kgPath, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrd:", err)
		os.Exit(2)
	}
	log.Printf("serving %d vertices / %d edges on %s", kg.NumVertices(), kg.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, newHandler(eng, kg)))
}

func load(path string, workers int) (*lscr.Engine, *lscr.KG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var kg *lscr.KG
	if head, err := br.Peek(8); err == nil && string(head) == "LSCRKG01" {
		kg, err = lscr.LoadSnapshot(br)
		if err != nil {
			return nil, nil, err
		}
	} else {
		kg, err = lscr.Load(br)
		if err != nil {
			return nil, nil, err
		}
	}
	return lscr.NewEngine(kg, lscr.Options{IndexWorkers: workers}), kg, nil
}

// reachRequest is the /reach body.
type reachRequest struct {
	Source     string   `json:"source"`
	Target     string   `json:"target"`
	Labels     []string `json:"labels,omitempty"`
	Constraint string   `json:"constraint"`
	Algorithm  string   `json:"algorithm,omitempty"`
	Witness    bool     `json:"witness,omitempty"`
}

// reachResponse is the /reach reply.
type reachResponse struct {
	Reachable bool       `json:"reachable"`
	ElapsedUS int64      `json:"elapsed_us"`
	Passed    int        `json:"passed_vertices"`
	Witness   *lscr.Path `json:"witness,omitempty"`
	Algorithm string     `json:"algorithm"`
}

// reachAllRequest is the /reachall body.
type reachAllRequest struct {
	Source      string   `json:"source"`
	Target      string   `json:"target"`
	Labels      []string `json:"labels,omitempty"`
	Constraints []string `json:"constraints"`
}

// maxBatchBody bounds a /reachbatch request body (32 MiB ≈ hundreds of
// thousands of queries — far above any sane batch, far below OOM).
const maxBatchBody = 32 << 20

// batchRequest is the /reachbatch body. Concurrency 0 means all cores.
type batchRequest struct {
	Queries     []reachRequest `json:"queries"`
	Concurrency int            `json:"concurrency,omitempty"`
}

// batchItem is one /reachbatch result: either the reach fields or a
// per-query error (bad names in one query do not fail the batch).
type batchItem struct {
	Reachable bool   `json:"reachable"`
	ElapsedUS int64  `json:"elapsed_us"`
	Passed    int    `json:"passed_vertices"`
	Algorithm string `json:"algorithm,omitempty"`
	Error     string `json:"error,omitempty"`
}

// newHandler wires the endpoints.
func newHandler(eng *lscr.Engine, kg *lscr.KG) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"vertices": kg.NumVertices(),
			"edges":    kg.NumEdges(),
			"labels":   kg.NumLabels(),
		})
	})
	mux.HandleFunc("POST /reach", func(w http.ResponseWriter, r *http.Request) {
		var req reachRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		algo, err := parseAlgo(req.Algorithm)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		q := lscr.Query{
			Source: req.Source, Target: req.Target,
			Labels: req.Labels, Constraint: req.Constraint, Algorithm: algo,
		}
		start := time.Now()
		var (
			res  lscr.Result
			path *lscr.Path
		)
		if req.Witness {
			res, path, err = eng.ReachWithWitness(q)
		} else {
			res, err = eng.Reach(q)
		}
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, reachResponse{
			Reachable: res.Reachable,
			ElapsedUS: time.Since(start).Microseconds(),
			Passed:    res.Stats.PassedVertices,
			Witness:   path,
			Algorithm: algo.String(),
		})
	})
	mux.HandleFunc("POST /reachbatch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		// Bound what one request can cost: the body is capped before
		// decoding, and the client's fan-out wish is clamped to the
		// cores actually available (ReachBatch itself only clamps to
		// the batch length).
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
			return
		}
		if req.Concurrency < 0 || req.Concurrency > runtime.GOMAXPROCS(0) {
			req.Concurrency = runtime.GOMAXPROCS(0)
		}
		items := make([]batchItem, len(req.Queries))
		queries := make([]lscr.Query, 0, len(req.Queries))
		slots := make([]int, 0, len(req.Queries)) // queries[j] answers items[slots[j]]
		for i, rq := range req.Queries {
			algo, err := parseAlgo(rq.Algorithm)
			if err != nil {
				items[i].Error = err.Error()
				continue
			}
			items[i].Algorithm = algo.String()
			queries = append(queries, lscr.Query{
				Source: rq.Source, Target: rq.Target,
				Labels: rq.Labels, Constraint: rq.Constraint, Algorithm: algo,
			})
			slots = append(slots, i)
		}
		for j, br := range eng.ReachBatch(queries, req.Concurrency) {
			it := &items[slots[j]]
			if br.Err != nil {
				it.Error = br.Err.Error()
				continue
			}
			it.Reachable = br.Result.Reachable
			it.ElapsedUS = br.Result.Elapsed.Microseconds()
			it.Passed = br.Result.Stats.PassedVertices
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": items, "count": len(items)})
	})
	mux.HandleFunc("POST /reachall", func(w http.ResponseWriter, r *http.Request) {
		var req reachAllRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		res, mp, err := eng.ReachAllWithWitness(lscr.MultiQuery{
			Source: req.Source, Target: req.Target,
			Labels: req.Labels, Constraints: req.Constraints,
		})
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"reachable":       res.Reachable,
			"passed_vertices": res.Stats.PassedVertices,
			"witness":         mp,
		})
	})
	mux.HandleFunc("POST /select", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		rows, err := eng.SelectAll(req.Query)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rows": rows, "count": len(rows)})
	})
	return mux
}

func parseAlgo(s string) (lscr.Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "ins":
		return lscr.INS, nil
	case "uis":
		return lscr.UIS, nil
	case "uisstar", "uis*":
		return lscr.UISStar, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

// statusFor maps engine errors to HTTP statuses: bad names are client
// errors, everything else is a 500.
func statusFor(err error) int {
	msg := err.Error()
	if strings.Contains(msg, "unknown vertex") || strings.Contains(msg, "unknown label") ||
		strings.Contains(msg, "syntax error") || strings.Contains(msg, "constraint") {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("lscrd: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
