// Command lscrd serves LSCR queries over HTTP.
//
//	lscrd -kg graph.nt -addr :8080
//
// The endpoints — /v1/query, /v1/batch, /v1/mutate, /healthz, plus the
// deprecated pre-v1 routes — are implemented by package lscr/server;
// this command only loads the KG, builds the engine and manages the
// listener lifecycle. The KG and index are built once at startup
// (across -workers goroutines); /v1/mutate then commits live edge
// changes into the engine's delta overlay (compacted in the background
// after -compact-after operations) unless -readonly disables it.
// Request bodies are size-capped, the listener runs with read/write
// timeouts, in-flight requests drain gracefully on SIGINT/SIGTERM, and
// every search runs under the request's context so disconnected
// clients stop consuming CPU.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lscr"
	"lscr/internal/buildinfo"
	"lscr/server"
)

// Server limits: slow-client protection and the drain budget on
// shutdown. ReadTimeout bounds how long a client may dribble a body in;
// WriteTimeout bounds the whole response (generous — a batch can
// legitimately compute for a while); shutdownGrace bounds how long
// in-flight requests may run after SIGINT/SIGTERM.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 30 * time.Second
	writeTimeout      = 2 * time.Minute
	idleTimeout       = 2 * time.Minute
	shutdownGrace     = 15 * time.Second
)

func main() {
	var (
		kgPath       = flag.String("kg", "", "path to the KG (triples or snapshot; required)")
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "index-build goroutines (0 = all cores)")
		cacheSize    = flag.Int("cache", 0, "constraint-cache capacity (0 = default, negative = disabled)")
		compactAfter = flag.Int("compact-after", 0, "overlay ops before background compaction (0 = default, negative = manual only)")
		readonly     = flag.Bool("readonly", false, "disable /v1/mutate (403)")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("lscrd", buildinfo.Version())
		return
	}
	if *kgPath == "" {
		fmt.Fprintln(os.Stderr, "lscrd: -kg is required")
		os.Exit(2)
	}
	eng, kg, err := load(*kgPath, *workers, *cacheSize, *compactAfter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrd:", err)
		os.Exit(2)
	}
	var srvOpts []server.Option
	if *readonly {
		srvOpts = append(srvOpts, server.ReadOnly())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrd:", err)
		os.Exit(2)
	}
	log.Printf("lscrd %s serving %d vertices / %d edges on %s",
		buildinfo.Version(), kg.NumVertices(), kg.NumEdges(), ln.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{
		Handler:           server.New(eng, kg, srvOpts...),
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	if err := serve(ctx, srv, ln); err != nil {
		log.Fatal("lscrd: ", err)
	}
	log.Print("lscrd: shut down cleanly")
}

// serve runs srv on ln until ctx is cancelled (SIGINT/SIGTERM in main),
// then drains in-flight requests for up to shutdownGrace before
// returning. A clean drain returns nil.
func serve(ctx context.Context, srv *http.Server, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

func load(path string, workers, cacheSize, compactAfter int) (*lscr.Engine, *lscr.KG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var kg *lscr.KG
	if head, err := br.Peek(8); err == nil && string(head) == "LSCRKG01" {
		kg, err = lscr.LoadSnapshot(br)
		if err != nil {
			return nil, nil, err
		}
	} else {
		kg, err = lscr.Load(br)
		if err != nil {
			return nil, nil, err
		}
	}
	opts := lscr.Options{IndexWorkers: workers, ConstraintCacheSize: cacheSize, CompactAfter: compactAfter}
	return lscr.NewEngine(kg, opts), kg, nil
}
