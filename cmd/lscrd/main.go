// Command lscrd serves LSCR queries over HTTP.
//
//	lscrd -kg graph.nt -addr :8080
//
// Endpoints (all JSON):
//
//	GET  /healthz           — liveness + KG stats
//	POST /reach             — {"source","target","labels":[],"constraint","algorithm","witness"}
//	POST /reachbatch        — {"queries":[<reach bodies>],"concurrency":N}
//	POST /reachall          — {"source","target","labels":[],"constraints":[]}
//	POST /select            — {"query"}
//
// The server is read-only: the KG and index are built once at startup
// (across -workers goroutines) and shared by concurrent requests — the
// Engine's concurrency contract is what lets net/http fan requests out
// without any locking here. /reachbatch additionally parallelises inside
// a single request via Engine.ReachBatch.
//
// Operational behavior: repeated constraint texts are served from the
// engine's memoized constraint cache (-cache bounds its capacity;
// /healthz reports hits/misses/entries); every request body is
// size-capped; the listener runs with read/write timeouts and drains
// in-flight requests gracefully on SIGINT/SIGTERM. Client mistakes —
// unknown names, malformed or invalid constraints, and requesting INS
// from an index-less server — answer 400; only genuine server faults
// answer 500.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"lscr"
)

// Server limits: slow-client protection and the drain budget on
// shutdown. ReadTimeout bounds how long a client may dribble a body in;
// WriteTimeout bounds the whole response (generous — /reachbatch can
// legitimately compute for a while); shutdownGrace bounds how long
// in-flight requests may run after SIGINT/SIGTERM.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 30 * time.Second
	writeTimeout      = 2 * time.Minute
	idleTimeout       = 2 * time.Minute
	shutdownGrace     = 15 * time.Second
)

func main() {
	var (
		kgPath    = flag.String("kg", "", "path to the KG (triples or snapshot; required)")
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "index-build goroutines (0 = all cores)")
		cacheSize = flag.Int("cache", 0, "constraint-cache capacity (0 = default, negative = disabled)")
	)
	flag.Parse()
	if *kgPath == "" {
		fmt.Fprintln(os.Stderr, "lscrd: -kg is required")
		os.Exit(2)
	}
	eng, kg, err := load(*kgPath, *workers, *cacheSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrd:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrd:", err)
		os.Exit(2)
	}
	log.Printf("serving %d vertices / %d edges on %s", kg.NumVertices(), kg.NumEdges(), ln.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{
		Handler:           newHandler(eng, kg),
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	if err := serve(ctx, srv, ln); err != nil {
		log.Fatal("lscrd: ", err)
	}
	log.Print("lscrd: shut down cleanly")
}

// serve runs srv on ln until ctx is cancelled (SIGINT/SIGTERM in main),
// then drains in-flight requests for up to shutdownGrace before
// returning. A clean drain returns nil.
func serve(ctx context.Context, srv *http.Server, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

func load(path string, workers, cacheSize int) (*lscr.Engine, *lscr.KG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var kg *lscr.KG
	if head, err := br.Peek(8); err == nil && string(head) == "LSCRKG01" {
		kg, err = lscr.LoadSnapshot(br)
		if err != nil {
			return nil, nil, err
		}
	} else {
		kg, err = lscr.Load(br)
		if err != nil {
			return nil, nil, err
		}
	}
	opts := lscr.Options{IndexWorkers: workers, ConstraintCacheSize: cacheSize}
	return lscr.NewEngine(kg, opts), kg, nil
}

// reachRequest is the /reach body.
type reachRequest struct {
	Source     string   `json:"source"`
	Target     string   `json:"target"`
	Labels     []string `json:"labels,omitempty"`
	Constraint string   `json:"constraint"`
	Algorithm  string   `json:"algorithm,omitempty"`
	Witness    bool     `json:"witness,omitempty"`
}

// reachResponse is the /reach reply.
type reachResponse struct {
	Reachable bool       `json:"reachable"`
	ElapsedUS int64      `json:"elapsed_us"`
	Passed    int        `json:"passed_vertices"`
	Witness   *lscr.Path `json:"witness,omitempty"`
	Algorithm string     `json:"algorithm"`
}

// reachAllRequest is the /reachall body.
type reachAllRequest struct {
	Source      string   `json:"source"`
	Target      string   `json:"target"`
	Labels      []string `json:"labels,omitempty"`
	Constraints []string `json:"constraints"`
}

// maxBatchBody bounds a /reachbatch request body (32 MiB ≈ hundreds of
// thousands of queries — far above any sane batch, far below OOM).
// maxQueryBody bounds the single-query endpoints (/reach, /reachall,
// /select), whose bodies are one query each — 1 MiB is far beyond any
// real SPARQL constraint yet keeps a hostile client from making the
// decoder buffer an arbitrarily large body.
const (
	maxBatchBody = 32 << 20
	maxQueryBody = 1 << 20
)

// batchRequest is the /reachbatch body. Concurrency 0 means all cores.
type batchRequest struct {
	Queries     []reachRequest `json:"queries"`
	Concurrency int            `json:"concurrency,omitempty"`
}

// batchItem is one /reachbatch result: either the reach fields or a
// per-query error (bad names in one query do not fail the batch).
type batchItem struct {
	Reachable bool   `json:"reachable"`
	ElapsedUS int64  `json:"elapsed_us"`
	Passed    int    `json:"passed_vertices"`
	Algorithm string `json:"algorithm,omitempty"`
	Error     string `json:"error,omitempty"`
}

// newHandler wires the endpoints.
func newHandler(eng *lscr.Engine, kg *lscr.KG) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"vertices": kg.NumVertices(),
			"edges":    kg.NumEdges(),
			"labels":   kg.NumLabels(),
			"cache":    eng.CacheStats(),
		})
	})
	mux.HandleFunc("POST /reach", func(w http.ResponseWriter, r *http.Request) {
		var req reachRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		algo, err := parseAlgo(req.Algorithm)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		q := lscr.Query{
			Source: req.Source, Target: req.Target,
			Labels: req.Labels, Constraint: req.Constraint, Algorithm: algo,
		}
		start := time.Now()
		var (
			res  lscr.Result
			path *lscr.Path
		)
		if req.Witness {
			res, path, err = eng.ReachWithWitness(q)
		} else {
			res, err = eng.Reach(q)
		}
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, reachResponse{
			Reachable: res.Reachable,
			ElapsedUS: time.Since(start).Microseconds(),
			Passed:    res.Stats.PassedVertices,
			Witness:   path,
			Algorithm: algo.String(),
		})
	})
	mux.HandleFunc("POST /reachbatch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		// Bound what one request can cost: the body is capped before
		// decoding, and the client's fan-out wish is clamped to the
		// cores actually available (ReachBatch itself only clamps to
		// the batch length).
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
			return
		}
		if req.Concurrency < 0 || req.Concurrency > runtime.GOMAXPROCS(0) {
			req.Concurrency = runtime.GOMAXPROCS(0)
		}
		items := make([]batchItem, len(req.Queries))
		queries := make([]lscr.Query, 0, len(req.Queries))
		slots := make([]int, 0, len(req.Queries)) // queries[j] answers items[slots[j]]
		for i, rq := range req.Queries {
			algo, err := parseAlgo(rq.Algorithm)
			if err != nil {
				items[i].Error = err.Error()
				continue
			}
			items[i].Algorithm = algo.String()
			queries = append(queries, lscr.Query{
				Source: rq.Source, Target: rq.Target,
				Labels: rq.Labels, Constraint: rq.Constraint, Algorithm: algo,
			})
			slots = append(slots, i)
		}
		for j, br := range eng.ReachBatch(queries, req.Concurrency) {
			it := &items[slots[j]]
			if br.Err != nil {
				it.Error = br.Err.Error()
				continue
			}
			it.Reachable = br.Result.Reachable
			it.ElapsedUS = br.Result.Elapsed.Microseconds()
			it.Passed = br.Result.Stats.PassedVertices
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": items, "count": len(items)})
	})
	mux.HandleFunc("POST /reachall", func(w http.ResponseWriter, r *http.Request) {
		var req reachAllRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		res, mp, err := eng.ReachAllWithWitness(lscr.MultiQuery{
			Source: req.Source, Target: req.Target,
			Labels: req.Labels, Constraints: req.Constraints,
		})
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"reachable":       res.Reachable,
			"passed_vertices": res.Stats.PassedVertices,
			"witness":         mp,
		})
	})
	mux.HandleFunc("POST /select", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		rows, err := eng.SelectAll(req.Query)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rows": rows, "count": len(rows)})
	})
	return mux
}

func parseAlgo(s string) (lscr.Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "ins":
		return lscr.INS, nil
	case "uis":
		return lscr.UIS, nil
	case "uisstar", "uis*":
		return lscr.UISStar, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

// statusFor maps engine errors to HTTP statuses via the exported
// sentinels: everything the client controls — names, constraint text,
// and the choice of an algorithm this server cannot run (ErrNoIndex) —
// is a 400; anything else is a genuine server-side 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, lscr.ErrUnknownVertex),
		errors.Is(err, lscr.ErrUnknownLabel),
		errors.Is(err, lscr.ErrConstraintSyntax),
		errors.Is(err, lscr.ErrInvalidConstraint),
		errors.Is(err, lscr.ErrNoIndex):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("lscrd: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
