// Command lscrd serves LSCR queries over HTTP.
//
//	lscrd -data /var/lib/lscr -kg graph.nt -addr :8080
//
// The endpoints — /v1/query, /v1/batch, /v1/mutate, /healthz, plus the
// deprecated pre-v1 routes — are implemented by package lscr/server;
// this command only provisions the engine and manages the listener
// lifecycle.
//
// With -data the engine is persistent: the first boot parses -kg,
// builds the index and seals both into an on-disk segment; every later
// boot mmaps the newest segment and replays the mutation WAL tail —
// near-instant restart, crash recovery included. /v1/mutate batches
// are WAL-logged (fsynced per batch unless -durability lazy) before
// they are acknowledged, and a clean shutdown re-seals so the next
// boot replays nothing. Without -data the engine is purely in-memory:
// the KG and index are built at startup (across -workers goroutines)
// and mutations do not survive the process.
//
// With -follow the process is a read replica instead: it bootstraps
// from the writer's newest sealed segment (GET /v1/segment), tails its
// WAL feed (GET /v1/replicate) through the engine's normal commit
// path, and serves the read-only /v1 surface — bit-identical answers
// to the writer at every replicated epoch. Put cmd/lscrgw in front to
// get one logical engine over the fleet.
//
// Request bodies are size-capped, the listener runs with read/write
// timeouts, in-flight requests drain gracefully on SIGINT/SIGTERM, and
// every search runs under the request's context so disconnected
// clients stop consuming CPU. With -max-inflight the /v1 query and
// mutate surface runs behind an admission gate (writer and follower
// modes alike): past -max-inflight executing plus -max-queue waiting
// requests, excess load is shed with 429 + Retry-After instead of an
// unbounded latency tail; /healthz is never gated so probes always see
// a saturated server.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lscr"
	"lscr/internal/buildinfo"
	"lscr/internal/cluster"
	"lscr/server"
)

// Server limits: slow-client protection and the drain budget on
// shutdown. ReadTimeout bounds how long a client may dribble a body in;
// WriteTimeout bounds the whole response (generous — a batch can
// legitimately compute for a while); shutdownGrace bounds how long
// in-flight requests may run after SIGINT/SIGTERM.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 30 * time.Second
	writeTimeout      = 2 * time.Minute
	idleTimeout       = 2 * time.Minute
	shutdownGrace     = 15 * time.Second
)

func main() {
	var (
		kgPath       = flag.String("kg", "", "path to the KG (triples or snapshot; required unless -data holds a store)")
		dataDir      = flag.String("data", "", "data directory: open the store there, or create one from -kg on first boot")
		durability   = flag.String("durability", "sync", "WAL fsync policy for -data: sync (per batch) or lazy")
		indexPath    = flag.String("index", "", "deprecated: load a SaveIndex file instead of building the index; superseded by -data")
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "index-build goroutines (0 = all cores)")
		cacheSize    = flag.Int("cache", 0, "constraint-cache capacity (0 = default, negative = disabled)")
		compactAfter = flag.Int("compact-after", 0, "overlay ops before background compaction (0 = default, negative = manual only)")
		readonly     = flag.Bool("readonly", false, "disable /v1/mutate (403)")
		follow       = flag.String("follow", "", "follower mode: bootstrap from this writer URL and tail its WAL feed (read-only replica)")
		maxInflight  = flag.Int("max-inflight", 0, "admission control: concurrent requests allowed to execute (0 = unbounded)")
		maxQueue     = flag.Int("max-queue", 0, "admission control: requests that may wait for a slot (0 = same as -max-inflight)")
		queueWait    = flag.Duration("queue-wait", 0, "admission control: max queue wait before shedding (0 = 50ms default)")
		retryAfter   = flag.Duration("retry-after", 0, "admission control: Retry-After hint on shed responses (0 = 1s default)")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("lscrd", buildinfo.Version())
		return
	}
	admission := server.AdmissionOptions{
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		QueueWait:   *queueWait,
		RetryAfter:  *retryAfter,
	}
	if *follow != "" {
		if *kgPath != "" || *dataDir != "" || *indexPath != "" {
			fmt.Fprintln(os.Stderr, "lscrd: -follow replicates the writer's state; it cannot be combined with -kg, -data or -index")
			os.Exit(2)
		}
		runFollower(*follow, *addr, lscr.Options{IndexWorkers: *workers, ConstraintCacheSize: *cacheSize}, admission)
		return
	}
	opts := lscr.Options{IndexWorkers: *workers, ConstraintCacheSize: *cacheSize, CompactAfter: *compactAfter}
	switch *durability {
	case "sync":
		opts.Durability = lscr.DurabilitySync
	case "lazy":
		opts.Durability = lscr.DurabilityLazy
	default:
		fmt.Fprintf(os.Stderr, "lscrd: -durability must be sync or lazy, got %q\n", *durability)
		os.Exit(2)
	}
	if *kgPath == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "lscrd: -kg or -data is required")
		os.Exit(2)
	}
	eng, err := provision(*dataDir, *kgPath, *indexPath, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrd:", err)
		os.Exit(2)
	}
	kg := eng.KG()
	var srvOpts []server.Option
	if *readonly {
		srvOpts = append(srvOpts, server.ReadOnly())
	}
	srvOpts = append(srvOpts, server.WithAdmission(admission))
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrd:", err)
		os.Exit(2)
	}
	log.Printf("lscrd %s serving %d vertices / %d edges on %s",
		buildinfo.Version(), kg.NumVertices(), kg.NumEdges(), ln.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{
		Handler:           server.New(eng, kg, srvOpts...),
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	if err := serve(ctx, srv, ln); err != nil {
		log.Fatal("lscrd: ", err)
	}
	// Graceful-shutdown seal: with -data, fold whatever overlay the run
	// accumulated into a fresh segment so the next boot replays nothing,
	// then release the WAL and mapping. In-flight requests have drained.
	if *dataDir != "" {
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		if _, err := eng.Compact(sctx); err != nil {
			log.Print("lscrd: shutdown seal failed: ", err)
		}
		cancel()
		if err := eng.Close(); err != nil {
			log.Print("lscrd: close: ", err)
		}
	}
	log.Print("lscrd: shut down cleanly")
}

// runFollower runs lscrd as a read replica: bootstrap from the
// writer's newest sealed segment, tail its WAL feed, and serve the
// read-only /v1 surface. No -kg/-data — the writer is the source of
// truth; a restart simply re-bootstraps.
func runFollower(writer, addr string, opts lscr.Options, admission server.AdmissionOptions) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	f, err := cluster.StartFollower(ctx, cluster.FollowerConfig{
		Writer:        writer,
		Options:       opts,
		ServerOptions: []server.Option{server.WithAdmission(admission)},
		Logf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrd:", err)
		os.Exit(2)
	}
	defer f.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrd:", err)
		os.Exit(2)
	}
	log.Printf("lscrd %s following %s at epoch %d on %s",
		buildinfo.Version(), writer, f.Epoch(), ln.Addr())
	srv := &http.Server{
		Handler:           f,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	if err := serve(ctx, srv, ln); err != nil {
		log.Fatal("lscrd: ", err)
	}
	log.Print("lscrd: shut down cleanly")
}

// provision builds the engine: from a data directory (opening the
// store, or creating one from -kg on first boot), from a saved index
// (deprecated -index path), or in-memory from -kg alone.
func provision(dataDir, kgPath, indexPath string, opts lscr.Options) (*lscr.Engine, error) {
	if dataDir != "" {
		if indexPath != "" {
			return nil, errors.New("-index cannot be combined with -data (the store carries its own index)")
		}
		eng, err := lscr.Open(dataDir, opts)
		if err == nil {
			log.Printf("lscrd: opened store %s", dataDir)
			return eng, nil
		}
		if !errors.Is(err, lscr.ErrNoStore) {
			return nil, err
		}
		if kgPath == "" {
			return nil, fmt.Errorf("%s holds no store and -kg was not given", dataDir)
		}
		kg, err := loadKG(kgPath)
		if err != nil {
			return nil, err
		}
		log.Printf("lscrd: creating store %s from %s", dataDir, kgPath)
		return lscr.Create(dataDir, kg, opts)
	}
	kg, err := loadKG(kgPath)
	if err != nil {
		return nil, err
	}
	if indexPath != "" {
		log.Print("lscrd: -index is deprecated; use -data for persistent state")
		f, err := os.Open(indexPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return lscr.NewEngineFromIndex(kg, bufio.NewReader(f), opts)
	}
	return lscr.NewEngine(kg, opts), nil
}

// serve runs srv on ln until ctx is cancelled (SIGINT/SIGTERM in main),
// then drains in-flight requests for up to shutdownGrace before
// returning. A clean drain returns nil.
func serve(ctx context.Context, srv *http.Server, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}

// loadKG reads a KG file, sniffing the binary-snapshot magic.
func loadKG(path string) (*lscr.KG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if head, err := br.Peek(8); err == nil && string(head) == "LSCRKG01" {
		return lscr.LoadSnapshot(br)
	}
	return lscr.Load(br)
}
