package main

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lscr"
	"lscr/server"
)

// Endpoint behavior is tested in package lscr/server; these tests cover
// what the command itself owns: KG loading and the listener lifecycle.

const testKG = `
<C> <apr> <X> .
<X> <apr> <P> .
<X> <married> <Amy> .
<C> <may> <P> .
`

// TestServeGracefulShutdown: cancelling the serve context drains the
// listener and returns nil (the SIGINT/SIGTERM path in main).
func TestServeGracefulShutdown(t *testing.T) {
	kg, err := lscr.Load(strings.NewReader(testKG))
	if err != nil {
		t.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(eng, kg)}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestLoadHelper(t *testing.T) {
	dir := t.TempDir()
	triples := filepath.Join(dir, "kg.nt")
	if err := os.WriteFile(triples, []byte(testKG), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, kg, err := load(triples, 1, 0, 0)
	if err != nil || eng == nil || kg.NumVertices() != 4 {
		t.Fatalf("triples load: %v", err)
	}
	// Snapshot path.
	snap := filepath.Join(dir, "kg.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := kg.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, kg2, err := load(snap, 0, 0, 0); err != nil || kg2.NumVertices() != kg.NumVertices() {
		t.Fatalf("snapshot load: %v", err)
	}
	if _, _, err := load(filepath.Join(dir, "missing"), 0, 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}
