package main

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lscr"
	"lscr/server"
)

// Endpoint behavior is tested in package lscr/server; these tests cover
// what the command itself owns: KG loading and the listener lifecycle.

const testKG = `
<C> <apr> <X> .
<X> <apr> <P> .
<X> <married> <Amy> .
<C> <may> <P> .
`

// TestServeGracefulShutdown: cancelling the serve context drains the
// listener and returns nil (the SIGINT/SIGTERM path in main).
func TestServeGracefulShutdown(t *testing.T) {
	kg, err := lscr.Load(strings.NewReader(testKG))
	if err != nil {
		t.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(eng, kg)}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestLoadHelper(t *testing.T) {
	dir := t.TempDir()
	triples := filepath.Join(dir, "kg.nt")
	if err := os.WriteFile(triples, []byte(testKG), 0o644); err != nil {
		t.Fatal(err)
	}
	kg, err := loadKG(triples)
	if err != nil || kg.NumVertices() != 4 {
		t.Fatalf("triples load: %v", err)
	}
	// Snapshot path.
	snap := filepath.Join(dir, "kg.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := kg.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if kg2, err := loadKG(snap); err != nil || kg2.NumVertices() != kg.NumVertices() {
		t.Fatalf("snapshot load: %v", err)
	}
	if _, err := loadKG(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestProvisionDataDir: first boot creates the store from -kg, the
// second opens it without -kg, the saved-index path stays available
// and refuses to combine with -data.
func TestProvisionDataDir(t *testing.T) {
	dir := t.TempDir()
	triples := filepath.Join(dir, "kg.nt")
	if err := os.WriteFile(triples, []byte(testKG), 0o644); err != nil {
		t.Fatal(err)
	}
	data := filepath.Join(dir, "store")
	opts := lscr.Options{IndexWorkers: 1}

	if _, err := provision(data, "", "", opts); err == nil {
		t.Fatal("empty dir without -kg accepted")
	}
	eng, err := provision(data, triples, "", opts)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	eng2, err := provision(data, "", "", opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	if n := eng2.KG().NumVertices(); n != 4 {
		t.Fatalf("reopened store has %d vertices, want 4", n)
	}
	if !eng2.Durability().Persistent {
		t.Fatal("reopened engine not persistent")
	}
	if _, err := provision(data, "", filepath.Join(dir, "idx"), opts); err == nil {
		t.Fatal("-index with -data accepted")
	}

	// Deprecated saved-index path, without -data.
	idxPath := filepath.Join(dir, "kg.idx")
	f, err := os.Create(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	kg, _ := loadKG(triples)
	if err := lscr.NewEngine(kg, opts).SaveIndex(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	eng3, err := provision("", triples, idxPath, opts)
	if err != nil {
		t.Fatalf("saved-index provision: %v", err)
	}
	if _, ok := eng3.Index(); !ok {
		t.Fatal("saved-index engine has no index")
	}
}
