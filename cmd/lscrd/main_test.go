package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lscr"
)

const testKG = `
<C> <apr> <X> .
<X> <apr> <P> .
<X> <married> <Amy> .
<C> <may> <P> .
`

func testServer(t *testing.T) *httptest.Server {
	return testServerOpts(t, lscr.Options{})
}

func testServerOpts(t *testing.T, opts lscr.Options) *httptest.Server {
	t.Helper()
	kg, err := lscr.Load(strings.NewReader(testKG))
	if err != nil {
		t.Fatal(err)
	}
	eng := lscr.NewEngine(kg, opts)
	srv := httptest.NewServer(newHandler(eng, kg))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" || out["vertices"].(float64) != 4 {
		t.Fatalf("healthz = %v", out)
	}
}

func TestReachEndpoint(t *testing.T) {
	srv := testServer(t)
	for _, algo := range []string{"", "ins", "uis", "uisstar"} {
		resp, out := postJSON(t, srv.URL+"/reach", reachRequest{
			Source: "C", Target: "P",
			Labels:     []string{"apr", "married"},
			Constraint: `SELECT ?x WHERE { ?x <married> <Amy>. }`,
			Algorithm:  algo,
			Witness:    true,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d: %v", algo, resp.StatusCode, out)
		}
		if out["reachable"] != true {
			t.Fatalf("%q: %v", algo, out)
		}
		w, ok := out["witness"].(map[string]any)
		if !ok || w["Satisfying"] != "X" {
			t.Fatalf("%q: witness = %v", algo, out["witness"])
		}
	}
}

func TestReachEndpointFalse(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/reach", reachRequest{
		Source: "C", Target: "P",
		Labels:     []string{"may"},
		Constraint: `SELECT ?x WHERE { ?x <married> <Amy>. }`,
	})
	if resp.StatusCode != http.StatusOK || out["reachable"] != false {
		t.Fatalf("status=%d out=%v", resp.StatusCode, out)
	}
	if _, present := out["witness"]; present {
		t.Fatalf("false answer carries witness: %v", out)
	}
}

func TestReachEndpointErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name string
		body any
	}{
		{"unknown vertex", reachRequest{Source: "nope", Target: "P",
			Constraint: `SELECT ?x WHERE { ?x <married> <Amy>. }`}},
		{"bad algorithm", reachRequest{Source: "C", Target: "P",
			Constraint: `SELECT ?x WHERE { ?x <married> <Amy>. }`, Algorithm: "dijkstra"}},
		{"bad constraint", reachRequest{Source: "C", Target: "P", Constraint: "garbage"}},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, srv.URL+"/reach", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v)", tc.name, resp.StatusCode, out)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/reach", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
}

func TestReachBatchEndpoint(t *testing.T) {
	srv := testServer(t)
	cons := `SELECT ?x WHERE { ?x <married> <Amy>. }`
	req := batchRequest{
		Concurrency: 4,
		Queries: []reachRequest{
			{Source: "C", Target: "P", Labels: []string{"apr", "married"}, Constraint: cons},
			{Source: "C", Target: "P", Labels: []string{"may"}, Constraint: cons},
			{Source: "nope", Target: "P", Constraint: cons},
			{Source: "C", Target: "P", Constraint: cons, Algorithm: "dijkstra"},
			{Source: "C", Target: "P", Labels: []string{"apr", "married"}, Constraint: cons, Algorithm: "uis"},
		},
	}
	resp, out := postJSON(t, srv.URL+"/reachbatch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["count"].(float64) != 5 {
		t.Fatalf("count = %v", out["count"])
	}
	results := out["results"].([]any)
	want := []struct {
		reachable bool
		hasError  bool
	}{
		{true, false},  // evidence chain exists
		{false, false}, // label set excludes the chain
		{false, true},  // unknown vertex: per-item error
		{false, true},  // unknown algorithm: per-item error
		{true, false},  // same answer via UIS
	}
	for i, w := range want {
		item := results[i].(map[string]any)
		if item["reachable"] != w.reachable {
			t.Errorf("query %d: reachable = %v, want %v", i, item["reachable"], w.reachable)
		}
		_, gotErr := item["error"]
		if gotErr != w.hasError {
			t.Errorf("query %d: error present = %v, want %v (%v)", i, gotErr, w.hasError, item)
		}
	}

	// Whole-batch failures: empty batch and malformed JSON.
	resp, _ = postJSON(t, srv.URL+"/reachbatch", batchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", resp.StatusCode)
	}
	raw, err := http.Post(srv.URL+"/reachbatch", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", raw.StatusCode)
	}
}

func TestReachAllEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/reachall", reachAllRequest{
		Source: "C", Target: "P",
		Labels: []string{"apr"},
		Constraints: []string{
			`SELECT ?x WHERE { ?x <married> <Amy>. }`,
		},
	})
	if resp.StatusCode != http.StatusOK || out["reachable"] != true {
		t.Fatalf("status=%d out=%v", resp.StatusCode, out)
	}
}

func TestSelectEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, out := postJSON(t, srv.URL+"/select", map[string]string{
		"query": `SELECT ?x ?y WHERE { ?x <married> ?y. }`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d out=%v", resp.StatusCode, out)
	}
	if out["count"].(float64) != 1 {
		t.Fatalf("select = %v", out)
	}
	resp, _ = postJSON(t, srv.URL+"/select", map[string]string{"query": "junk"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d", resp.StatusCode)
	}
	// Parseable but invalid (focus variable unused) is still the
	// client's mistake, not a 500.
	resp, _ = postJSON(t, srv.URL+"/select", map[string]string{
		"query": `SELECT ?x WHERE { ?y <married> <Amy>. }`,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid query: status %d, want 400", resp.StatusCode)
	}
}

// TestStatusForSentinels: the status mapping works on error identity,
// not message substrings — including wrapped sentinels — and ErrNoIndex
// is a client error (the client picked an algorithm this server cannot
// run), not a 500.
func TestStatusForSentinels(t *testing.T) {
	srv := testServerOpts(t, lscr.Options{SkipIndex: true})
	cons := `SELECT ?x WHERE { ?x <married> <Amy>. }`
	cases := []struct {
		name string
		body reachRequest
		want int
	}{
		{"ins without index", reachRequest{Source: "C", Target: "P", Constraint: cons, Algorithm: "ins"}, http.StatusBadRequest},
		{"uis still works", reachRequest{Source: "C", Target: "P", Constraint: cons, Algorithm: "uis"}, http.StatusOK},
		{"unknown vertex", reachRequest{Source: "nope", Target: "P", Constraint: cons, Algorithm: "uis"}, http.StatusBadRequest},
		{"unknown label", reachRequest{Source: "C", Target: "P", Labels: []string{"bogus"}, Constraint: cons, Algorithm: "uis"}, http.StatusBadRequest},
		{"syntax error", reachRequest{Source: "C", Target: "P", Constraint: "SELECT garbage", Algorithm: "uis"}, http.StatusBadRequest},
		{"invalid constraint", reachRequest{Source: "C", Target: "P",
			Constraint: `SELECT ?x WHERE { ?y <married> <Amy>. }`, Algorithm: "uis"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, srv.URL+"/reach", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.want, out)
		}
	}
}

// TestBodyLimits: every endpoint rejects an oversized body instead of
// buffering it.
func TestBodyLimits(t *testing.T) {
	srv := testServer(t)
	huge := `{"source":"C","target":"P","constraint":"` +
		strings.Repeat("x", maxQueryBody+1024) + `"}`
	for _, ep := range []string{"/reach", "/reachall", "/select"} {
		resp, err := http.Post(srv.URL+ep, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: oversized body answered %d, want 400", ep, resp.StatusCode)
		}
	}
}

// TestHealthzCacheStats: /healthz surfaces the constraint cache counters.
func TestHealthzCacheStats(t *testing.T) {
	srv := testServer(t)
	cons := `SELECT ?x WHERE { ?x <married> <Amy>. }`
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, srv.URL+"/reach", reachRequest{Source: "C", Target: "P", Constraint: cons})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reach %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Cache lscr.CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Cache.Enabled || out.Cache.Misses != 1 || out.Cache.Hits != 2 || out.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v", out.Cache)
	}
}

// TestServeGracefulShutdown: cancelling the serve context drains the
// listener and returns nil (the SIGINT/SIGTERM path in main).
func TestServeGracefulShutdown(t *testing.T) {
	kg, err := lscr.Load(strings.NewReader(testKG))
	if err != nil {
		t.Fatal(err)
	}
	eng := lscr.NewEngine(kg, lscr.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newHandler(eng, kg)}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while serving: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestLoadHelper(t *testing.T) {
	dir := t.TempDir()
	triples := filepath.Join(dir, "kg.nt")
	if err := os.WriteFile(triples, []byte(testKG), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, kg, err := load(triples, 1, 0)
	if err != nil || eng == nil || kg.NumVertices() != 4 {
		t.Fatalf("triples load: %v", err)
	}
	// Snapshot path.
	snap := filepath.Join(dir, "kg.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := kg.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, kg2, err := load(snap, 0, 0); err != nil || kg2.NumVertices() != kg.NumVertices() {
		t.Fatalf("snapshot load: %v", err)
	}
	if _, _, err := load(filepath.Join(dir, "missing"), 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}
