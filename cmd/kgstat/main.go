// Command kgstat prints structural statistics of a knowledge graph:
// sizes, density, label histogram, degree distribution and strongly
// connected component structure.
//
//	kgstat -kg graph.nt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"lscr/internal/graph"
	"lscr/internal/lcr"
	"lscr/internal/rdf"
)

func main() {
	kgPath := flag.String("kg", "", "path to the KG (triples or snapshot; required)")
	top := flag.Int("top", 10, "show the top-N labels and degrees")
	flag.Parse()
	if *kgPath == "" {
		fmt.Fprintln(os.Stderr, "kgstat: -kg is required")
		os.Exit(2)
	}
	f, err := os.Open(*kgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kgstat:", err)
		os.Exit(2)
	}
	defer f.Close()
	if err := run(os.Stdout, f, *top); err != nil {
		fmt.Fprintln(os.Stderr, "kgstat:", err)
		os.Exit(2)
	}
}

func run(w io.Writer, r io.Reader, top int) error {
	br := bufio.NewReader(r)
	var (
		g   *graph.Graph
		err error
	)
	if head, perr := br.Peek(8); perr == nil && string(head) == "LSCRKG01" {
		g, err = graph.ReadSnapshot(br)
	} else {
		g, err = rdf.Load(br)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "vertices  %d\n", g.NumVertices())
	fmt.Fprintf(w, "edges     %d\n", g.NumEdges())
	fmt.Fprintf(w, "labels    %d\n", g.NumLabels())
	fmt.Fprintf(w, "density   %.2f\n", g.Density())
	fmt.Fprintf(w, "classes   %d (schema instances: %d)\n",
		len(g.Schema().Classes()), g.Schema().NumInstances())

	// Label histogram.
	counts := make([]int, g.NumLabels())
	g.Triples(func(tr graph.Triple) bool {
		counts[tr.Label]++
		return true
	})
	type lc struct {
		name string
		n    int
	}
	var labels []lc
	for i, n := range counts {
		labels = append(labels, lc{g.LabelName(graph.Label(i)), n})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].n > labels[j].n })
	fmt.Fprintf(w, "\ntop labels:\n")
	for i, l := range labels {
		if i == top {
			break
		}
		fmt.Fprintf(w, "  %-40s %d\n", l.name, l.n)
	}

	// Degree distribution.
	degs := make([]int, g.NumVertices())
	maxOut, maxIn := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		degs[v] = g.Degree(graph.VertexID(v))
		if d := g.OutDegree(graph.VertexID(v)); d > maxOut {
			maxOut = d
		}
		if d := g.InDegree(graph.VertexID(v)); d > maxIn {
			maxIn = d
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	fmt.Fprintf(w, "\ndegrees: max-out %d, max-in %d", maxOut, maxIn)
	if n := len(degs); n > 0 {
		fmt.Fprintf(w, ", median %d, p99 %d\n", degs[n/2], degs[n/100])
	} else {
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "top total degrees:\n")
	hubs := make([]graph.VertexID, g.NumVertices())
	for i := range hubs {
		hubs[i] = graph.VertexID(i)
	}
	sort.Slice(hubs, func(i, j int) bool {
		return g.Degree(hubs[i]) > g.Degree(hubs[j])
	})
	for i, v := range hubs {
		if i == top {
			break
		}
		fmt.Fprintf(w, "  %-40s %d\n", g.VertexName(v), g.Degree(v))
	}

	// SCC structure (plain Tarjan; no closures).
	_, members := lcr.SCCs(g)
	largest := 0
	nontrivial := 0
	for _, m := range members {
		if len(m) > largest {
			largest = len(m)
		}
		if len(m) > 1 {
			nontrivial++
		}
	}
	fmt.Fprintf(w, "\nSCCs: %d total, %d non-trivial, largest %d vertices\n",
		len(members), nontrivial, largest)
	return nil
}
