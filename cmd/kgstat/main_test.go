package main

import (
	"bytes"
	"strings"
	"testing"

	"lscr/internal/lubm"
)

func TestRunOnTriples(t *testing.T) {
	var in bytes.Buffer
	in.WriteString("<a> <p> <b> .\n<b> <p> <a> .\n<b> <q> <c> .\n")
	var out bytes.Buffer
	if err := run(&out, &in, 5); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"vertices  3", "edges     3", "labels    2",
		"top labels", "SCCs: 2 total, 1 non-trivial, largest 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunOnSnapshot(t *testing.T) {
	cfg := lubm.DefaultConfig(1)
	cfg.DeptsPerUniversity = 1 // keep the SCC closure small for test speed
	g := lubm.Generate(cfg)
	var snap bytes.Buffer
	if _, err := g.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, &snap, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "density") {
		t.Errorf("output missing density:\n%s", out.String())
	}
}

func TestRunBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, strings.NewReader("junk"), 3); err == nil {
		t.Fatal("garbage accepted")
	}
}
