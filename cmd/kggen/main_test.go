package main

import (
	"bytes"
	"testing"

	"lscr/internal/graph"
	"lscr/internal/rdf"
)

func TestRunLUBM(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "lubm", "triples", 1, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	g, err := rdf.Load(&buf)
	if err != nil {
		t.Fatalf("output is not loadable: %v", err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty output")
	}
}

func TestRunYago(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "yago", "triples", 0, 500, 0, 1); err != nil {
		t.Fatal(err)
	}
	g, err := rdf.Load(&buf)
	if err != nil {
		t.Fatalf("output is not loadable: %v", err)
	}
	if g.NumVertices() < 500 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
}

func TestRunSnapshotFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "lubm", "snapshot", 1, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("snapshot output not loadable: %v", err)
	}
	if g.NumVertices() == 0 {
		t.Fatal("empty snapshot")
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "lubm", "xml", 1, 1, 0, 1); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", "triples", 1, 1, 0, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunEdgeTarget(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "yago", "triples", 0, 0, 5000, 1); err != nil {
		t.Fatal(err)
	}
	g, err := rdf.Load(&buf)
	if err != nil {
		t.Fatalf("output is not loadable: %v", err)
	}
	if g.NumEdges() < 5000 {
		t.Fatalf("-edges 5000 produced only %d edges", g.NumEdges())
	}
}
