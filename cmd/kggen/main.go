// Command kggen emits a synthetic knowledge graph as an N-Triples-style
// stream on stdout.
//
// Usage:
//
//	kggen -kind lubm -scale 2 > lubm2.nt     # LUBM-style, 2 universities
//	kggen -kind yago -entities 50000 > y.nt  # YAGO-style scale-free KG
//	kggen -kind lubm -edges 1200000 > big.nt # sized by edge target instead
//
// -edges overrides -scale/-entities: the generator is scaled so the
// output has at least that many edges (the scale benchmark tier's
// sizing knob).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lscr/internal/graph"
	"lscr/internal/lubm"
	"lscr/internal/rdf"
	"lscr/internal/yagogen"
)

func main() {
	var (
		kind     = flag.String("kind", "lubm", "generator: lubm or yago")
		scale    = flag.Int("scale", 1, "lubm: number of universities")
		entities = flag.Int("entities", 10000, "yago: number of entities")
		seed     = flag.Int64("seed", 1, "generator seed")
		format   = flag.String("format", "triples", "output format: triples or snapshot")
		edges    = flag.Int("edges", 0, "size the graph by edge target instead of -scale/-entities")
	)
	flag.Parse()
	if err := run(os.Stdout, *kind, *format, *scale, *entities, *edges, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "kggen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, kind, format string, scale, entities, edges int, seed int64) error {
	var g *graph.Graph
	switch kind {
	case "lubm":
		cfg := lubm.DefaultConfig(scale)
		if edges > 0 {
			cfg = lubm.ConfigForEdges(edges)
		}
		cfg.Seed = seed
		g = lubm.Generate(cfg)
	case "yago":
		cfg := yagogen.DefaultConfig(entities)
		if edges > 0 {
			cfg = yagogen.ConfigForEdges(edges)
		}
		cfg.Seed = seed
		g = yagogen.Generate(cfg)
	default:
		return fmt.Errorf("unknown generator kind %q", kind)
	}
	switch format {
	case "triples":
		return rdf.Dump(g, w)
	case "snapshot":
		_, err := g.WriteTo(w)
		return err
	default:
		return fmt.Errorf("unknown output format %q", format)
	}
}
