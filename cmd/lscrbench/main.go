// Command lscrbench regenerates the paper's tables and figures (§6) at
// laptop scale, and measures this implementation's parallel scaling.
//
// Usage:
//
//	lscrbench -exp fig10            # Figure 10 (constraint S1)
//	lscrbench -exp table2 -scale 2  # Table 2 at double scale
//	lscrbench -exp all -queries 50  # every paper experiment
//	lscrbench -exp parallel         # index-build + query-fanout speedup
//	lscrbench -exp parallel-json    # same, as BENCH_parallel.json
//	lscrbench -exp throughput -concurrency 8
//	                                # end-to-end QPS through Engine.ReachBatch
//	lscrbench -exp cachespeedup     # warm-vs-cold constraint-cache QPS
//	lscrbench -exp cachespeedup-json# same, as BENCH_cache.json
//	lscrbench -exp serverclient     # typed client → live lscrd /v1 QPS
//	lscrbench -exp csr              # CSR labeled-scan vs filter traversal QPS
//	lscrbench -exp csr-json         # same, as BENCH_csr.json
//	lscrbench -exp mutate           # mixed read/write workload over Engine.Apply
//	lscrbench -exp mutate-json      # same, as BENCH_mutate.json
//	lscrbench -exp insdyn           # maintained vs stale-index INS over a growing overlay
//	lscrbench -exp insdyn-json      # same, as BENCH_insdyn.json
//	lscrbench -exp restart          # cold boot: parse+rebuild vs segment mmap vs crash recovery
//	lscrbench -exp restart-json     # same, as BENCH_restart.json
//	lscrbench -exp replica          # gateway read scaling over 1 vs 2 WAL-fed followers
//	lscrbench -exp replica-json     # same, as BENCH_replica.json
//	lscrbench -exp chaos            # fault schedules over writer+followers+gateway
//	lscrbench -exp chaos-json       # same, as BENCH_chaos.json
//	lscrbench -exp scale -edges 1200000
//	                                # multi-million-edge tier: gen + index +
//	                                # contended throughput + cache + mutate
//	lscrbench -exp scale-json       # same, as BENCH_scale.json
//
// Experiments: table2, fig5a, fig5b, fig10, fig11, fig12, fig13, fig14,
// fig15, ablation-rho, ablation-landmarks, ablation-queue,
// ablation-vsorder, parallel, parallel-json, throughput, cachespeedup,
// cachespeedup-json, serverclient, csr, csr-json, mutate, mutate-json,
// insdyn, insdyn-json, restart, restart-json, replica, replica-json,
// chaos, chaos-json, all. "all" runs the paper experiments only — the
// machine-dependent scaling sweeps (parallel*, throughput,
// cachespeedup*, serverclient, csr*, mutate*, insdyn*, restart*,
// replica*) and the chaos tier (chaos*) are invoked explicitly.
// The mutate experiments exit nonzero unless the mutated engine
// answered identically to a rebuild on the final edge set; the insdyn
// experiments exit nonzero unless the maintained and
// maintenance-disabled engines answered identically at every overlay
// size; the restart experiments exit nonzero unless the segment-booted
// engine was bit-identical to the rebuilt one and the crash-recovered
// engine matched a rebuild on the final edge set; the replica
// experiments exit nonzero unless both followers answered bit-identically
// to the writer. The chaos experiments (-schedules fault schedules over
// a live writer+2-follower+gateway cluster) exit nonzero on any
// divergence from the fault-free oracle, a missing overload shed, or a
// goroutine leak.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lscr/internal/bench"
	"lscr/internal/buildinfo"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id (table2, fig5a, fig5b, fig10..fig15, ablation-rho, ablation-landmarks, ablation-queue, parallel, parallel-json, throughput, cachespeedup, cachespeedup-json, serverclient, csr, csr-json, mutate, mutate-json, restart, restart-json, all)")
		scale       = flag.Int("scale", 1, "dataset scale multiplier")
		queries     = flag.Int("queries", 15, "queries per true/false group (paper: 1000)")
		seed        = flag.Int64("seed", 1, "workload and generator seed")
		concurrency = flag.Int("concurrency", 0, "throughput mode: ReachBatch fan-out (0 = all cores)")
		schedules   = flag.Int("schedules", 50, "chaos mode: deterministic fault schedules to run")
		edges       = flag.Int("edges", bench.DefaultScaleEdges, "scale mode: generated KG edge target")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("lscrbench", buildinfo.Version())
		return
	}
	cfg := bench.Config{Scale: *scale, QueriesPerGroup: *queries, Seed: *seed}
	if err := run(os.Stdout, *exp, cfg, *concurrency, *schedules, *edges); err != nil {
		fmt.Fprintln(os.Stderr, "lscrbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, cfg bench.Config, concurrency, schedules, edges int) error {
	runners := map[string]func(io.Writer, bench.Config) error{
		"table2":             bench.RunTable2,
		"fig5a":              bench.RunFig5Density,
		"fig5b":              bench.RunFig5Scale,
		"fig10":              figure("S1"),
		"fig11":              figure("S2"),
		"fig12":              figure("S3"),
		"fig13":              figure("S4"),
		"fig14":              figure("S5"),
		"fig15":              bench.RunFig15,
		"ablation-rho":       bench.RunAblationRho,
		"ablation-vsorder":   bench.RunAblationVSOrder,
		"ablation-landmarks": bench.RunAblationLandmarks,
		"ablation-queue":     bench.RunAblationQueue,
		"parallel":           bench.RunParallel,
		"parallel-json":      bench.RunParallelJSON,
		"csr":                bench.RunCSR,
		"csr-json":           bench.RunCSRJSON,
		"throughput": func(w io.Writer, cfg bench.Config) error {
			return bench.RunThroughput(w, cfg, concurrency)
		},
		"cachespeedup": func(w io.Writer, cfg bench.Config) error {
			return bench.RunCacheSpeedup(w, cfg, concurrency)
		},
		"cachespeedup-json": func(w io.Writer, cfg bench.Config) error {
			return bench.RunCacheSpeedupJSON(w, cfg, concurrency)
		},
		"serverclient": func(w io.Writer, cfg bench.Config) error {
			return bench.RunServerClient(w, cfg, concurrency)
		},
		"mutate": func(w io.Writer, cfg bench.Config) error {
			return bench.RunMutate(w, cfg, concurrency)
		},
		"mutate-json": func(w io.Writer, cfg bench.Config) error {
			return bench.RunMutateJSON(w, cfg, concurrency)
		},
		"insdyn": func(w io.Writer, cfg bench.Config) error {
			return bench.RunInsDyn(w, cfg, concurrency)
		},
		"insdyn-json": func(w io.Writer, cfg bench.Config) error {
			return bench.RunInsDynJSON(w, cfg, concurrency)
		},
		"restart": func(w io.Writer, cfg bench.Config) error {
			return bench.RunRestart(w, cfg, concurrency)
		},
		"restart-json": func(w io.Writer, cfg bench.Config) error {
			return bench.RunRestartJSON(w, cfg, concurrency)
		},
		"replica": func(w io.Writer, cfg bench.Config) error {
			return bench.RunReplica(w, cfg, concurrency)
		},
		"replica-json": func(w io.Writer, cfg bench.Config) error {
			return bench.RunReplicaJSON(w, cfg, concurrency)
		},
		"chaos": func(w io.Writer, cfg bench.Config) error {
			return bench.RunChaos(w, cfg, schedules)
		},
		"chaos-json": func(w io.Writer, cfg bench.Config) error {
			return bench.RunChaosJSON(w, cfg, schedules)
		},
		"scale": func(w io.Writer, cfg bench.Config) error {
			return bench.RunScale(w, cfg, edges)
		},
		"scale-json": func(w io.Writer, cfg bench.Config) error {
			return bench.RunScaleJSON(w, cfg, edges)
		},
	}
	if exp == "all" {
		order := []string{
			"table2", "fig5a", "fig5b",
			"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
			"ablation-rho", "ablation-landmarks", "ablation-queue",
			"ablation-vsorder",
		}
		for _, id := range order {
			fmt.Fprintf(w, "==== %s ====\n", id)
			if err := runners[id](w, cfg); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return r(w, cfg)
}

func figure(s string) func(io.Writer, bench.Config) error {
	return func(w io.Writer, cfg bench.Config) error {
		return bench.RunFigure(w, s, cfg)
	}
}
