package main

import (
	"bytes"
	"strings"
	"testing"

	"lscr/internal/bench"
)

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", bench.Config{}, 0, 1, 0); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real (small) index")
	}
	var buf bytes.Buffer
	cfg := bench.Config{Scale: 1, QueriesPerGroup: 3, Seed: 1}
	if err := run(&buf, "throughput", cfg, 4, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "answers identical and correct") {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) experiment")
	}
	var buf bytes.Buffer
	cfg := bench.Config{Scale: 1, QueriesPerGroup: 3, Seed: 1}
	if err := run(&buf, "ablation-queue", cfg, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UIS*") {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}
