// Command lscrgw is the cluster gateway: it serves the same /v1 wire
// contract as a single lscrd over a replicated fleet.
//
//	lscrgw -writer http://w:8080 -replica http://r1:8081 -replica http://r2:8082 -addr :8000
//
// Reads (/v1/query, /v1/batch, legacy routes) are routed across
// healthy, fresh replicas — a per-replica circuit breaker fed by
// background /healthz probes and in-band forwarding results takes
// failing replicas out of rotation, and a hedged second attempt bounds
// tail latency. Batches fan out across replicas and merge back in
// request order. Writes (/v1/mutate) fan in to the single designated
// writer, which replicates committed batches to followers over its WAL
// feed. /healthz reports the whole cluster: per-replica breaker state,
// epochs and lag behind the writer.
//
// Consistency: every answer is computed at some published epoch of the
// writer's history (per-epoch identity — replicas replay the writer's
// WAL through the same commit path), and -staleness bounds how many
// epochs behind the writer a read may be served.
//
// Overload and failure: a backend that sheds (429) is routed around for
// a cooldown without tripping its breaker — overloaded is not broken —
// and when every backend sheds, the 429 and its Retry-After are relayed
// so the client's retry policy takes over. -budget bounds each read and
// propagates the remaining time to backends so queue time counts
// against the caller's deadline. A writer whose /healthz reports
// fail-stop poisoning makes mutations fail static (503 + Retry-After)
// at the gateway while reads keep flowing to replicas.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lscr/api"
	"lscr/internal/buildinfo"
	"lscr/internal/cluster"
)

// Same listener limits as lscrd: the gateway fronts the same traffic.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 30 * time.Second
	writeTimeout      = 2 * time.Minute
	idleTimeout       = 2 * time.Minute
	shutdownGrace     = 15 * time.Second
)

// urlList collects repeated (or comma-separated) -replica flags.
type urlList []string

func (u *urlList) String() string { return strings.Join(*u, ",") }

func (u *urlList) Set(v string) error {
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			*u = append(*u, s)
		}
	}
	return nil
}

func main() {
	var replicas urlList
	var (
		writer      = flag.String("writer", "", "base URL of the writer lscrd (required)")
		addr        = flag.String("addr", ":8000", "listen address")
		probe       = flag.Duration("probe-interval", cluster.DefaultProbeInterval, "health-probe interval")
		hedge       = flag.Duration("hedge-after", cluster.DefaultHedgeAfter, "launch a hedged read after this long (negative = never)")
		staleness   = flag.Uint64("staleness", 0, "max epochs a replica may lag the writer and still serve reads (0 = unbounded)")
		budget      = flag.Duration("budget", 0, "per-read deadline budget, propagated to backends via "+api.BudgetHeader+" (0 = none)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Var(&replicas, "replica", "replica base URL (repeatable, or comma-separated)")
	flag.Parse()
	if *showVersion {
		fmt.Println("lscrgw", buildinfo.Version())
		return
	}
	if *writer == "" {
		fmt.Fprintln(os.Stderr, "lscrgw: -writer is required")
		os.Exit(2)
	}
	co := cluster.NewCoordinator(cluster.Config{
		Writer:         *writer,
		Replicas:       replicas,
		ProbeInterval:  *probe,
		HedgeAfter:     *hedge,
		StalenessBound: *staleness,
		RequestBudget:  *budget,
		Logf:           log.Printf,
	})
	co.Start()
	defer co.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscrgw:", err)
		os.Exit(2)
	}
	log.Printf("lscrgw %s routing writer %s + %d replica(s) on %s",
		buildinfo.Version(), *writer, len(replicas), ln.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{
		Handler:           co,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	if err := serve(ctx, srv, ln); err != nil {
		log.Fatal("lscrgw: ", err)
	}
	log.Print("lscrgw: shut down cleanly")
}

// serve runs srv on ln until ctx is cancelled, then drains in-flight
// requests for up to shutdownGrace.
func serve(ctx context.Context, srv *http.Server, ln net.Listener) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return srv.Shutdown(sctx)
	}
}
