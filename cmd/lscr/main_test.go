package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lscr"
)

const testKG = `
<C> <apr> <X> .
<X> <apr> <P> .
<X> <married> <Amy> .
<C> <may> <P> .
`

const marriedToAmy = `SELECT ?x WHERE { ?x <married> <Amy>. }`

func writeKG(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "kg.nt")
	if err := os.WriteFile(p, []byte(testKG), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func baseOpts(p string) options {
	return options{
		kgPath: p, from: "C", to: "P",
		labels: "apr,married", constraint: marriedToAmy, algoName: "ins",
	}
}

func TestRunReachable(t *testing.T) {
	p := writeKG(t)
	for _, algo := range []string{"ins", "uis", "uisstar"} {
		o := baseOpts(p)
		o.algoName = algo
		o.verbose = true
		var buf bytes.Buffer
		code, err := run(context.Background(), &buf, o)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if code != 0 || !strings.Contains(buf.String(), "reachable") {
			t.Errorf("%s: code=%d out=%q", algo, code, buf.String())
		}
	}
}

func TestRunWitness(t *testing.T) {
	p := writeKG(t)
	o := baseOpts(p)
	o.witness = true
	var buf bytes.Buffer
	code, err := run(context.Background(), &buf, o)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	out := buf.String()
	if !strings.Contains(out, "witness: C -[apr]-> X") {
		t.Errorf("witness missing: %q", out)
	}
	if !strings.Contains(out, "satisfying vertex: X") {
		t.Errorf("satisfying vertex missing: %q", out)
	}
}

func TestRunSearchTree(t *testing.T) {
	p := writeKG(t)
	dotPath := filepath.Join(t.TempDir(), "tree.dot")
	o := baseOpts(p)
	o.searchTree = dotPath
	var buf bytes.Buffer
	if code, err := run(context.Background(), &buf, o); err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Fatalf("DOT output malformed: %q", data)
	}
}

func TestRunNotReachable(t *testing.T) {
	p := writeKG(t)
	o := baseOpts(p)
	o.labels = "may"
	var buf bytes.Buffer
	code, err := run(context.Background(), &buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(buf.String(), "not reachable") {
		t.Errorf("code=%d out=%q", code, buf.String())
	}
}

func TestRunIndexFileRoundTrip(t *testing.T) {
	p := writeKG(t)
	idxPath := filepath.Join(t.TempDir(), "kg.idx")
	o := baseOpts(p)
	o.indexFile = idxPath
	var buf bytes.Buffer
	if code, err := run(context.Background(), &buf, o); err != nil || code != 0 {
		t.Fatalf("first run (build+save): code=%d err=%v", code, err)
	}
	if _, err := os.Stat(idxPath); err != nil {
		t.Fatalf("index not saved: %v", err)
	}
	// Second run loads the saved index.
	if code, err := run(context.Background(), &buf, o); err != nil || code != 0 {
		t.Fatalf("second run (load): code=%d err=%v", code, err)
	}
}

func TestRunSnapshotInput(t *testing.T) {
	p := writeKG(t)
	// Convert the triple file into a snapshot and query it.
	f, err := os.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	kg, err := lscr.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "kg.snap")
	out, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := kg.WriteSnapshot(out); err != nil {
		t.Fatal(err)
	}
	out.Close()
	o := baseOpts(snapPath)
	var buf bytes.Buffer
	if code, err := run(context.Background(), &buf, o); err != nil || code != 0 {
		t.Fatalf("snapshot query: code=%d err=%v", code, err)
	}
}

func TestRunErrors(t *testing.T) {
	p := writeKG(t)
	cases := []struct {
		name string
		mod  func(*options)
	}{
		{"missing flags", func(o *options) { o.kgPath = "" }},
		{"bad algorithm", func(o *options) { o.algoName = "astar" }},
		{"missing file", func(o *options) { o.kgPath = p + ".nope" }},
		{"ins without index", func(o *options) { o.noIndex = true }},
		{"unknown vertex", func(o *options) { o.from = "nobody" }},
		{"bad index file", func(o *options) { o.indexFile = p }}, // triples are not an index
	}
	for _, tc := range cases {
		o := baseOpts(p)
		tc.mod(&o)
		var buf bytes.Buffer
		if _, err := run(context.Background(), &buf, o); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRunNoIndexUIS(t *testing.T) {
	p := writeKG(t)
	o := baseOpts(p)
	o.noIndex = true
	o.algoName = "uis"
	var buf bytes.Buffer
	code, err := run(context.Background(), &buf, o)
	if err != nil || code != 0 {
		t.Fatalf("uis without index: code=%d err=%v", code, err)
	}
}
