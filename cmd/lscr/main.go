// Command lscr answers label- and substructure-constrained reachability
// queries over a knowledge graph stored as an N-Triples-style file or a
// binary snapshot (auto-detected).
//
// Usage:
//
//	lscr -kg graph.nt -from SuspectC -to SuspectP \
//	     -labels transfer2019-04,married-to \
//	     -constraint "SELECT ?x WHERE { ?x <married-to> <Amy>. }" \
//	     -witness
//
// The local index can be persisted across runs with -index-file: the
// first run builds and saves it, later runs load it. Exit status 0 means
// reachable, 1 means not reachable, 2 means error.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"lscr"
	"lscr/internal/buildinfo"
)

func main() {
	var opts options
	flag.StringVar(&opts.kgPath, "kg", "", "path to the KG (triples or snapshot; required)")
	flag.StringVar(&opts.from, "from", "", "source vertex name (required)")
	flag.StringVar(&opts.to, "to", "", "target vertex name (required)")
	flag.StringVar(&opts.labels, "labels", "", "comma-separated label constraint (empty = all labels)")
	flag.StringVar(&opts.constraint, "constraint", "", "SPARQL substructure constraint (required)")
	flag.StringVar(&opts.algoName, "algo", "ins", "algorithm: ins, uis or uisstar")
	flag.StringVar(&opts.indexFile, "index-file", "", "load the local index from this file, or build and save it there")
	flag.BoolVar(&opts.noIndex, "no-index", false, "skip local-index construction (forbids -algo ins)")
	flag.BoolVar(&opts.witness, "witness", false, "print the evidence path on a true answer")
	flag.StringVar(&opts.searchTree, "search-tree", "", "write the search tree as Graphviz DOT to this file")
	flag.BoolVar(&opts.verbose, "v", false, "print statistics")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("lscr", buildinfo.Version())
		return
	}
	// SIGINT/SIGTERM cancel the query mid-search instead of killing the
	// process with the index half-built or the answer half-printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, os.Stdout, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lscr:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

type options struct {
	kgPath, from, to, labels, constraint, algoName, indexFile string
	searchTree                                                string
	noIndex, witness, verbose                                 bool
}

func run(ctx context.Context, w io.Writer, o options) (int, error) {
	if o.kgPath == "" || o.from == "" || o.to == "" || o.constraint == "" {
		return 2, errors.New("-kg, -from, -to and -constraint are required")
	}
	var algo lscr.Algorithm
	switch strings.ToLower(o.algoName) {
	case "ins":
		algo = lscr.INS
	case "uis":
		algo = lscr.UIS
	case "uisstar", "uis*":
		algo = lscr.UISStar
	default:
		return 2, fmt.Errorf("unknown algorithm %q", o.algoName)
	}
	kg, err := loadKG(o.kgPath)
	if err != nil {
		return 2, err
	}
	eng, err := buildEngine(kg, o)
	if err != nil {
		return 2, err
	}
	req := lscr.Request{
		Source: o.from, Target: o.to,
		Constraint:  o.constraint,
		Algorithm:   algo,
		WantWitness: o.witness,
		WantTrace:   o.searchTree != "",
	}
	if o.labels != "" {
		req.Labels = strings.Split(o.labels, ",")
	}
	resp, err := eng.Query(ctx, req)
	if err != nil {
		return 2, err
	}
	if o.searchTree != "" {
		if err := os.WriteFile(o.searchTree, []byte(resp.TraceDOT), 0o644); err != nil {
			return 2, err
		}
	}
	if o.verbose {
		fmt.Fprintf(os.Stderr, "algorithm=%v elapsed=%v passed=%d treeNodes=%d |V(S,G)|=%d\n",
			algo, resp.Elapsed, resp.Stats.PassedVertices, resp.Stats.SearchTreeNodes,
			resp.SatisfyingVertices)
	}
	if !resp.Reachable {
		fmt.Fprintln(w, "not reachable")
		return 1, nil
	}
	fmt.Fprintln(w, "reachable")
	if o.witness && resp.Witness != nil {
		fmt.Fprintf(w, "witness: %s\n", resp.Witness)
		fmt.Fprintf(w, "satisfying vertex: %s\n", resp.Witness.SatisfiedBy[0])
	}
	return 0, nil
}

// loadKG sniffs the file format: binary snapshots start with "LSCRKG01",
// anything else is parsed as triples.
func loadKG(path string) (*lscr.KG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(8)
	if err == nil && string(head) == "LSCRKG01" {
		return lscr.LoadSnapshot(br)
	}
	return lscr.Load(br)
}

// buildEngine loads the index from -index-file when present, otherwise
// builds it (and saves it when -index-file names a new file).
func buildEngine(kg *lscr.KG, o options) (*lscr.Engine, error) {
	if o.noIndex {
		return lscr.NewEngine(kg, lscr.Options{SkipIndex: true}), nil
	}
	if o.indexFile != "" {
		if f, err := os.Open(o.indexFile); err == nil {
			defer f.Close()
			eng, err := lscr.NewEngineFromIndex(kg, bufio.NewReader(f), lscr.Options{})
			if err != nil {
				return nil, fmt.Errorf("loading %s: %w", o.indexFile, err)
			}
			return eng, nil
		}
	}
	eng := lscr.NewEngine(kg, lscr.Options{})
	if o.indexFile != "" {
		f, err := os.Create(o.indexFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := eng.SaveIndex(f); err != nil {
			return nil, err
		}
	}
	return eng, nil
}
