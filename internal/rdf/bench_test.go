package rdf

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkParseLine(b *testing.B) {
	line := `<GraduateStudent4.Department0.University0> <ub:takesCourse> <Course3_1.Department0.University0> .`
	for i := 0; i < b.N; i++ {
		if _, ok, err := ParseLine(line); !ok || err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoad(b *testing.B) {
	// A synthetic 30k-triple stream (the lubm generator lives above this
	// package, so the corpus is built inline).
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(1))
	w := NewWriter(&buf)
	for i := 0; i < 30000; i++ {
		if err := w.Write(Triple{
			Subject:   fmt.Sprintf("entity%d", rng.Intn(8000)),
			Predicate: fmt.Sprintf("rel%d", rng.Intn(12)),
			Object:    fmt.Sprintf("entity%d", rng.Intn(8000)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
