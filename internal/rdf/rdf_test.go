package rdf

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		in   string
		want Triple
		ok   bool
		err  bool
	}{
		{`<a> <p> <b> .`, Triple{"a", "p", "b"}, true, false},
		{`  <a> <p> <b> .  `, Triple{"a", "p", "b"}, true, false},
		{`<a> <p> "lit" .`, Triple{"a", "p", "lit"}, true, false},
		{``, Triple{}, false, false},
		{`   `, Triple{}, false, false},
		{`# comment`, Triple{}, false, false},
		{`<a> <p> <b>`, Triple{}, false, true},       // no dot
		{`<a> <p> .`, Triple{}, false, true},         // missing object
		{`<a> <p> <b> <c> .`, Triple{}, false, true}, // four terms
		{`<a <p> <b> .`, Triple{}, false, true},      // unterminated IRI
		{`<a> <p> "lit .`, Triple{}, false, true},    // unterminated literal
		{`a <p> <b> .`, Triple{}, false, true},       // bare term
	}
	for _, tc := range cases {
		got, ok, err := ParseLine(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseLine(%q) err = %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if ok != tc.ok || got != tc.want {
			t.Errorf("ParseLine(%q) = %+v, %v; want %+v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestParseLiteralEscapes(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`<a> <p> "say \"hi\"" .`, `say "hi"`},
		{`<a> <p> "back\\slash" .`, `back\slash`},
		{`<a> <p> "line\nbreak" .`, "line\nbreak"},
		{`<a> <p> "tab\there" .`, "tab\there"},
		{`<a> <p> "cr\rhere" .`, "cr\rhere"},
		{`<a> <p> "unié" .`, "unié"},
		{`<a> <p> "astral\U0001F600" .`, "astral\U0001F600"},
	}
	for _, tc := range cases {
		got, ok, err := ParseLine(tc.in)
		if err != nil || !ok {
			t.Errorf("ParseLine(%q): ok=%v err=%v", tc.in, ok, err)
			continue
		}
		if got.Object != tc.want {
			t.Errorf("ParseLine(%q).Object = %q, want %q", tc.in, got.Object, tc.want)
		}
	}
	bad := []string{
		`<a> <p> "dangling\` + `" .`,
		`<a> <p> "bad\q" .`,
		`<a> <p> "trunc\u00" .`,
		`<a> <p> "bad\uZZZZ" .`,
	}
	for _, in := range bad {
		if _, _, err := ParseLine(in); err == nil {
			t.Errorf("ParseLine(%q) accepted", in)
		}
	}
}

func TestParseLiteralTagsAndDatatypes(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`<a> <p> "hello"@en .`, "hello"},
		{`<a> <p> "bonjour"@fr-CA .`, "bonjour"},
		{`<a> <p> "42"^^<xsd:integer> .`, "42"},
	}
	for _, tc := range cases {
		got, ok, err := ParseLine(tc.in)
		if err != nil || !ok {
			t.Errorf("ParseLine(%q): ok=%v err=%v", tc.in, ok, err)
			continue
		}
		if got.Object != tc.want {
			t.Errorf("ParseLine(%q).Object = %q, want %q", tc.in, got.Object, tc.want)
		}
	}
	bad := []string{
		`<a> <p> "x"@ .`,
		`<a> <p> "x"^^<unclosed .`,
	}
	for _, in := range bad {
		if _, _, err := ParseLine(in); err == nil {
			t.Errorf("ParseLine(%q) accepted", in)
		}
	}
}

func TestReaderLineNumbers(t *testing.T) {
	in := "<a> <p> <b> .\n# skip\nbroken\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Next(); err != nil {
		t.Fatalf("first triple: %v", err)
	}
	_, err := r.Next()
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %v", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("error string %q lacks line number", pe.Error())
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader("# only a comment\n"))
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestIsVocabulary(t *testing.T) {
	for _, p := range []string{TypePredicate, SubClassOfPredicate, DomainPredicate, RangePredicate} {
		if !IsVocabulary(p) {
			t.Errorf("IsVocabulary(%q) = false", p)
		}
	}
	if IsVocabulary("likes") {
		t.Error("IsVocabulary(likes) = true")
	}
}

func TestLoadBuildsSchemaAndEdges(t *testing.T) {
	// The Figure 2 example KG.
	src := `
<eg:Researcher> <rdf:type> <rdfs:Class> .
<eg:Researcher> <rdfs:subClassOf> <eg:Person> .
<eg:workWith> <rdfs:domain> <eg:Researcher> .
<eg:workWith> <rdfs:range> <eg:Researcher> .
<Taylor> <rdf:type> <eg:Researcher> .
<Walker> <rdf:type> <eg:Researcher> .
<Taylor> <eg:workWith> <Walker> .
<Walker> <eg:workWith> <Taylor> .
`
	g, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 8 {
		t.Errorf("NumEdges = %d, want 8 (vocabulary triples are edges too)", g.NumEdges())
	}
	s := g.Schema()
	if got := s.Instances("eg:Researcher"); len(got) != 2 {
		t.Errorf("Researcher instances = %v", got)
	}
	if sup := s.SuperClasses("eg:Researcher"); len(sup) != 1 || sup[0] != "eg:Person" {
		t.Errorf("SuperClasses = %v", sup)
	}
	if d, ok := s.Domain("eg:workWith"); !ok || d != "eg:Researcher" {
		t.Errorf("Domain = %q %v", d, ok)
	}
	taylor := g.Vertex("Taylor")
	walker := g.Vertex("Walker")
	l, ok := g.LabelByName("eg:workWith")
	if !ok || !g.HasEdge(taylor, l, walker) || !g.HasEdge(walker, l, taylor) {
		t.Error("workWith edges missing")
	}
}

func TestLoadError(t *testing.T) {
	if _, err := Load(strings.NewReader("junk\n")); err == nil {
		t.Fatal("want error")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	src := "<a> <p> <b> .\n<b> <q> <c> .\n<c> <rdf:type> <K> .\n"
	g, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Dump(g, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", g2, g)
	}
	if got := g2.Schema().Instances("K"); len(got) != 1 {
		t.Errorf("schema lost in round trip: %v", got)
	}
}

// Property: FormatTriple → ParseLine is the identity for IRI-safe names.
func TestCodecRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		b.WriteByte('n') // never empty
		for _, r := range s {
			if r > ' ' && r != '<' && r != '>' && r != '"' && r < 127 {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	prop := func(s, p, o string) bool {
		tr := Triple{sanitize(s), sanitize(p), sanitize(o)}
		got, ok, err := ParseLine(FormatTriple(tr))
		return err == nil && ok && got == tr
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
