// Package rdf implements the RDF substrate the paper assumes: a triple
// codec in an N-Triples-like line format, the RDFS vocabulary the schema
// layer understands, and a loader that turns a triple stream into the
// graph substrate (data edges + schema store).
//
// The paper (§2): "KGs are stored by RDF triples and formatted by RDFS".
// Triples whose predicate is an RDFS vocabulary term populate the schema
// store LS; everything else becomes a labeled data edge.
package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lscr/internal/graph"
)

// RDFS/RDF vocabulary terms recognised by the loader.
const (
	TypePredicate       = "rdf:type"
	SubClassOfPredicate = "rdfs:subClassOf"
	DomainPredicate     = "rdfs:domain"
	RangePredicate      = "rdfs:range"
	ClassTerm           = "rdfs:Class"
)

// IsVocabulary reports whether predicate is one of the RDFS vocabulary
// terms that route a triple into the schema store rather than the edge set.
func IsVocabulary(predicate string) bool {
	switch predicate {
	case TypePredicate, SubClassOfPredicate, DomainPredicate, RangePredicate:
		return true
	}
	return false
}

// Triple is one parsed statement.
type Triple struct {
	Subject   string
	Predicate string
	Object    string
}

// ParseError reports a malformed line with its 1-based line number.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("rdf: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// ParseLine parses one statement of the form
//
//	<subject> <predicate> <object> .
//
// Terms are wrapped in angle brackets; literal objects may instead be
// wrapped in double quotes. Trailing "." is required. Empty lines and
// lines starting with '#' yield ok=false with no error.
func ParseLine(line string) (t Triple, ok bool, err error) {
	s := strings.TrimSpace(line)
	if s == "" || strings.HasPrefix(s, "#") {
		return Triple{}, false, nil
	}
	if !strings.HasSuffix(s, ".") {
		return Triple{}, false, fmt.Errorf("missing terminating dot")
	}
	s = strings.TrimSpace(strings.TrimSuffix(s, "."))

	subj, rest, err := readTerm(s)
	if err != nil {
		return Triple{}, false, fmt.Errorf("subject: %w", err)
	}
	pred, rest, err := readTerm(rest)
	if err != nil {
		return Triple{}, false, fmt.Errorf("predicate: %w", err)
	}
	obj, rest, err := readTerm(rest)
	if err != nil {
		return Triple{}, false, fmt.Errorf("object: %w", err)
	}
	if strings.TrimSpace(rest) != "" {
		return Triple{}, false, fmt.Errorf("trailing garbage %q", rest)
	}
	return Triple{subj, pred, obj}, true, nil
}

// readTerm consumes one <...> or "..." term from the front of s.
// Literals support the N-Triples escape sequences (\" \\ \n \t \r and
// \uXXXX/\UXXXXXXXX) and may carry a language tag (@en) or datatype
// (^^<iri>); tags and datatypes are parsed and dropped — the substrate
// interns literals by their lexical value.
func readTerm(s string) (term, rest string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", "", fmt.Errorf("missing term")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated IRI")
		}
		return s[1:end], s[end+1:], nil
	case '"':
		val, rest, err := readLiteral(s)
		if err != nil {
			return "", "", err
		}
		// Optional language tag or datatype.
		switch {
		case strings.HasPrefix(rest, "@"):
			i := 1
			for i < len(rest) && (rest[i] == '-' || isAlnum(rest[i])) {
				i++
			}
			if i == 1 {
				return "", "", fmt.Errorf("empty language tag")
			}
			rest = rest[i:]
		case strings.HasPrefix(rest, "^^<"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return "", "", fmt.Errorf("unterminated datatype IRI")
			}
			rest = rest[end+1:]
		}
		return val, rest, nil
	default:
		return "", "", fmt.Errorf("term must start with '<' or '\"', got %q", s[0])
	}
}

// readLiteral consumes a quoted literal with escapes; s starts at '"'.
func readLiteral(s string) (val, rest string, err error) {
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'u', 'U':
				width := 4
				if s[i] == 'U' {
					width = 8
				}
				if i+width >= len(s) {
					return "", "", fmt.Errorf("truncated \\%c escape", s[i])
				}
				r, perr := strconv.ParseUint(s[i+1:i+1+width], 16, 32)
				if perr != nil {
					return "", "", fmt.Errorf("bad \\%c escape: %v", s[i], perr)
				}
				b.WriteRune(rune(r))
				i += width
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated literal")
}

func isAlnum(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// FormatTriple renders t in the line format understood by ParseLine.
// Objects containing spaces or starting with a quote are emitted as IRIs
// regardless; the codec is symmetric for names that avoid '<', '>' and '"'.
func FormatTriple(t Triple) string {
	return fmt.Sprintf("<%s> <%s> <%s> .", t.Subject, t.Predicate, t.Object)
}

// Reader parses a triple stream line by line.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r. Lines longer than 1 MiB are rejected by the scanner.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// Next returns the next triple, io.EOF at end of stream, or a *ParseError.
func (r *Reader) Next() (Triple, error) {
	for r.sc.Scan() {
		r.line++
		t, ok, err := ParseLine(r.sc.Text())
		if err != nil {
			return Triple{}, &ParseError{Line: r.line, Text: r.sc.Text(), Msg: err.Error()}
		}
		if ok {
			return t, nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

// Writer serialises triples in the line format.
type Writer struct {
	w *bufio.Writer
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one triple.
func (w *Writer) Write(t Triple) error {
	_, err := w.w.WriteString(FormatTriple(t) + "\n")
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Load reads a triple stream and builds a Graph. RDFS vocabulary triples
// populate the schema store; all triples (vocabulary included) also become
// labeled edges, matching the paper's view of a KG as an edge-labeled
// graph whose label set may include RDF vocabulary terms (§5.1.2 discusses
// edges labeled "rdf:type" etc.).
func Load(r io.Reader) (*graph.Graph, error) {
	b := graph.NewBuilder()
	rd := NewReader(r)
	for {
		t, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		AddTriple(b, t)
	}
	return b.Build(), nil
}

// AddTriple records one triple into the builder: schema bookkeeping for
// vocabulary predicates plus a labeled edge in all cases.
func AddTriple(b *graph.Builder, t Triple) {
	s := b.Vertex(t.Subject)
	o := b.Vertex(t.Object)
	switch t.Predicate {
	case TypePredicate:
		if t.Object == ClassTerm {
			b.Schema().AddClass(t.Subject)
		} else {
			b.Schema().AddInstance(t.Object, s)
		}
	case SubClassOfPredicate:
		b.Schema().AddSubClassOf(t.Subject, t.Object)
	case DomainPredicate:
		b.Schema().SetDomain(t.Subject, t.Object)
	case RangePredicate:
		b.Schema().SetRange(t.Subject, t.Object)
	}
	b.AddEdge(s, b.Label(t.Predicate), o)
}

// Dump writes every edge of g as a triple stream. Schema facts are
// recoverable because vocabulary triples are stored as edges too.
func Dump(g *graph.Graph, w io.Writer) error {
	wr := NewWriter(w)
	var err error
	g.Triples(func(tr graph.Triple) bool {
		err = wr.Write(Triple{
			Subject:   g.VertexName(tr.Subject),
			Predicate: g.LabelName(tr.Label),
			Object:    g.VertexName(tr.Object),
		})
		return err == nil
	})
	if err != nil {
		return err
	}
	return wr.Flush()
}
