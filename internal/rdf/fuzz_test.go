package rdf

import (
	"strings"
	"testing"
)

// FuzzParseLine asserts the parser never panics and that accepted lines
// re-serialise into re-parsable triples (for IRI-safe content).
func FuzzParseLine(f *testing.F) {
	for _, seed := range []string{
		`<a> <p> <b> .`,
		`<a> <p> "lit" .`,
		`<a> <p> "esc\"aped" .`,
		`<a> <p> "x"@en .`,
		`<a> <p> "42"^^<xsd:int> .`,
		`# comment`,
		``,
		`<a <p> <b> .`,
		`<a> <p> "A" .`,
		strings.Repeat("<x> ", 100),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, ok, err := ParseLine(line)
		if err != nil || !ok {
			return
		}
		// Accepted triples with IRI-safe members must round trip.
		if strings.ContainsAny(tr.Subject+tr.Predicate+tr.Object, "<>\"\n") {
			return
		}
		got, ok2, err2 := ParseLine(FormatTriple(tr))
		if err2 != nil || !ok2 || got != tr {
			t.Fatalf("round trip of %+v failed: %+v ok=%v err=%v", tr, got, ok2, err2)
		}
	})
}
