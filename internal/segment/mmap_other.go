//go:build !unix

package segment

import "os"

// mapFile reads path into memory on platforms without the mmap path;
// Open behaves identically, minus the zero-copy startup.
func mapFile(path string) ([]byte, func() error, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, nil, nil
}
