package segment

import (
	"errors"
	"os"
	"testing"

	"lscr/internal/failpoint"
)

// Mid-rotate and mid-append fault coverage via failpoints. The existing
// WAL tests only cover torn *tails* (a crash after the process wrote a
// partial record); these drive the rotation rewrite itself into write,
// fsync and rename failures and assert the log never loses an
// acknowledged record.

func walWithRecords(t *testing.T, n int) (*WAL, string) {
	t.Helper()
	dir := t.TempDir()
	path := WALPath(dir)
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal has %d records", len(recs))
	}
	for i := 1; i <= n; i++ {
		if err := w.Append(RecordBatch, uint64(i), []byte{byte(i), 0xAB, 0xCD}, true); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	return w, path
}

func reopenSeqs(t *testing.T, path string) []uint64 {
	t.Helper()
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	seqs := make([]uint64, len(recs))
	for i, r := range recs {
		seqs[i] = r.Seq
	}
	return seqs
}

func wantSeqs(t *testing.T, got []uint64, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered seqs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered seqs %v, want %v", got, want)
		}
	}
}

func assertNoTemp(t *testing.T, path string) {
	t.Helper()
	if _, err := os.Stat(path + tmpSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rotate failure left temp log behind (stat err: %v)", err)
	}
}

func TestWALRotateWriteErrorKeepsOriginal(t *testing.T) {
	defer failpoint.DisarmAll()
	w, path := walWithRecords(t, 4)
	if err := failpoint.Set(FPWALRotateWrite, "error-once"); err != nil {
		t.Fatal(err)
	}
	err := w.Rotate(2)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Rotate = %v, want injected error", err)
	}
	assertNoTemp(t, path)
	// The live log must be untouched and still appendable.
	if err := w.Append(RecordBatch, 5, []byte{5}, true); err != nil {
		t.Fatalf("append after failed rotate: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, reopenSeqs(t, path), 1, 2, 3, 4, 5)
}

func TestWALRotateTornWriteKeepsOriginal(t *testing.T) {
	defer failpoint.DisarmAll()
	w, path := walWithRecords(t, 4)
	// Fire on the second copied record, persisting a 5-byte prefix of it
	// into the temp log before failing.
	if err := failpoint.Set(FPWALRotateWrite, "torn=5,every=2,once"); err != nil {
		t.Fatal(err)
	}
	err := w.Rotate(1)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Rotate = %v, want injected error", err)
	}
	assertNoTemp(t, path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, reopenSeqs(t, path), 1, 2, 3, 4)
}

func TestWALRotateSyncErrorKeepsOriginal(t *testing.T) {
	defer failpoint.DisarmAll()
	w, path := walWithRecords(t, 3)
	if err := failpoint.Set(FPWALRotateSync, "error-once"); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(1); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Rotate = %v, want injected error", err)
	}
	assertNoTemp(t, path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, reopenSeqs(t, path), 1, 2, 3)
}

func TestWALRotateRenameErrorKeepsOriginal(t *testing.T) {
	defer failpoint.DisarmAll()
	w, path := walWithRecords(t, 3)
	if err := failpoint.Set(FPWALRotateRename, "error-once"); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(2); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Rotate = %v, want injected error", err)
	}
	assertNoTemp(t, path)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, reopenSeqs(t, path), 1, 2, 3)
}

func TestWALRotateDirSyncErrorAfterRename(t *testing.T) {
	defer failpoint.DisarmAll()
	w, path := walWithRecords(t, 3)
	if err := failpoint.Set(FPDirSync, "error-once"); err != nil {
		t.Fatal(err)
	}
	// The rename has already happened when the directory fsync fails, so
	// the caller sees an error (and will poison the engine) but the
	// on-disk log is the rotated one — reopen must land on the kept
	// suffix, never a half state.
	if err := w.Rotate(1); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Rotate = %v, want injected error", err)
	}
	w.Close()
	wantSeqs(t, reopenSeqs(t, path), 2, 3)
}

func TestWALAppendTornRecoversIntactPrefix(t *testing.T) {
	defer failpoint.DisarmAll()
	w, path := walWithRecords(t, 2)
	if err := failpoint.Set(FPWALAppend, "torn=9,once"); err != nil {
		t.Fatal(err)
	}
	err := w.Append(RecordBatch, 3, []byte{3, 3, 3}, true)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("torn append = %v, want injected error", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn 9-byte prefix is on disk; reopen must truncate it away
	// and recover exactly the acknowledged records.
	wantSeqs(t, reopenSeqs(t, path), 1, 2)
	// And the truncation must leave the file appendable at the right
	// offset: reopen + append + reopen again.
	w2, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(RecordBatch, 3, []byte{3}, true); err != nil {
		t.Fatalf("append after torn recovery: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	wantSeqs(t, reopenSeqs(t, path), 1, 2, 3)
}

func TestWALAppendSyncErrorSurfaces(t *testing.T) {
	defer failpoint.DisarmAll()
	w, path := walWithRecords(t, 1)
	if err := failpoint.Set(FPWALSync, "error-once"); err != nil {
		t.Fatal(err)
	}
	err := w.Append(RecordBatch, 2, []byte{2}, true)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("append with failing fsync = %v, want injected error", err)
	}
	// The record bytes were written; whether they survive a crash is
	// undefined, but a clean close + reopen sees them.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs := reopenSeqs(t, path)
	if len(seqs) < 1 || seqs[0] != 1 {
		t.Fatalf("recovered seqs %v, want prefix [1 ...]", seqs)
	}
}

func TestSegmentWriteTempFaults(t *testing.T) {
	defer failpoint.DisarmAll()
	// seg-write with torn leaves a stray temp (crash mid-image); plain
	// error cleans up after itself.
	dir := t.TempDir()
	if err := failpoint.Set(FPSegWrite, "torn=16,once"); err != nil {
		t.Fatal(err)
	}
	_, err := WriteTemp(dir, 7, nil, nil, 0, 0)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("WriteTemp torn = %v, want injected error", err)
	}
	tmpPath := PathFor(dir, 7) + tmpSuffix
	st, serr := os.Stat(tmpPath)
	if serr != nil || st.Size() != 16 {
		t.Fatalf("torn WriteTemp temp file: stat=%v size=%v, want 16-byte stray", serr, st)
	}
	if err := failpoint.Set(FPSegWrite, "error-once"); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteTemp(dir, 8, nil, nil, 0, 0); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("WriteTemp error = %v, want injected error", err)
	}
	if _, err := os.Stat(PathFor(dir, 8) + tmpSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("error-mode WriteTemp left its temp file behind")
	}
}
