package segment

import (
	"encoding/binary"
)

// Mutation-batch codec for WAL batch records. The engine logs batches
// in the same name-level terms as its public Apply API — replay then
// re-interns names through the identical code path, which is what makes
// recovered vertex/label IDs bit-identical to the pre-crash run.
//
// Layout: count u32, then per op: kind u8 | subject | label | object,
// each string u32-length-prefixed.

// Op kinds mirror the engine's MutationOp values.
const (
	OpAddEdge    byte = 1
	OpDeleteEdge byte = 2
	OpAddVertex  byte = 3
	OpAddLabel   byte = 4
)

// Op is one logged mutation.
type Op struct {
	Kind                   byte
	Subject, Label, Object string
}

const opMinBytes = 13 // kind + three empty length-prefixed strings

// EncodeOps serialises a batch.
func EncodeOps(ops []Op) []byte {
	n := 4
	for _, op := range ops {
		n += opMinBytes + len(op.Subject) + len(op.Label) + len(op.Object)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ops)))
	for _, op := range ops {
		out = append(out, op.Kind)
		out = appendStr(out, op.Subject)
		out = appendStr(out, op.Label)
		out = appendStr(out, op.Object)
	}
	return out
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// DecodeOps deserialises a batch. Counts and lengths are untrusted and
// validated against the remaining input before any allocation.
func DecodeOps(b []byte) ([]Op, error) {
	if len(b) < 4 {
		return nil, corruptf("ops payload truncated")
	}
	n := int64(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n*opMinBytes > int64(len(b)) {
		return nil, corruptf("ops count %d exceeds payload", n)
	}
	ops := make([]Op, 0, n)
	for i := int64(0); i < n; i++ {
		if len(b) < 1 {
			return nil, corruptf("ops payload truncated")
		}
		op := Op{Kind: b[0]}
		b = b[1:]
		var err error
		if op.Subject, b, err = takeStr(b); err != nil {
			return nil, err
		}
		if op.Label, b, err = takeStr(b); err != nil {
			return nil, err
		}
		if op.Object, b, err = takeStr(b); err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	if len(b) != 0 {
		return nil, corruptf("ops payload has %d trailing bytes", len(b))
	}
	return ops, nil
}

func takeStr(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, corruptf("ops string truncated")
	}
	n := int64(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n > int64(len(b)) {
		return "", nil, corruptf("ops string length %d exceeds payload", n)
	}
	return string(b[:n]), b[n:], nil
}
