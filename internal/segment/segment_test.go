package segment

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lscr/internal/graph"
	lscrcore "lscr/internal/lscr"
)

// testGraph builds a small multigraph with a schema, enough structure
// to exercise every section: several labels, parallel edges, an
// isolated vertex, class instances and subclass pairs.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < 40; i++ {
		b.AddEdgeNames(fmt.Sprintf("v%d", i), fmt.Sprintf("l%d", i%5), fmt.Sprintf("v%d", (i*7+3)%23))
	}
	b.AddEdgeNames("v1", "l0", "v2") // parallel edge
	b.Vertex("isolated")
	s := b.Schema()
	s.AddInstance("Person", b.Vertex("v1"))
	s.AddInstance("Person", b.Vertex("v3"))
	s.AddInstance("City", b.Vertex("v5"))
	s.AddSubClassOf("Person", "Agent")
	s.SetDomain("l0", "Person")
	s.SetRange("l0", "City")
	return b.Build()
}

func triples(g *graph.Graph) []graph.Triple {
	var out []graph.Triple
	g.Triples(func(tr graph.Triple) bool { out = append(out, tr); return true })
	return out
}

func TestSegmentRoundTrip(t *testing.T) {
	g := testGraph(t)
	idx := lscrcore.NewLocalIndex(g, lscrcore.IndexParams{K: 6, Seed: 42})
	dir := t.TempDir()

	path, err := Write(dir, 7, g, idx, 6, 42)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if want := PathFor(dir, 7); path != want {
		t.Fatalf("path %q, want %q", path, want)
	}
	seg, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer seg.Close()

	if seg.BaseSeq != 7 || seg.IndexK != 6 || seg.IndexSeed != 42 {
		t.Fatalf("meta = (%d, %d, %d), want (7, 6, 42)", seg.BaseSeq, seg.IndexK, seg.IndexSeed)
	}
	h := seg.Graph
	if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() || h.NumLabels() != g.NumLabels() {
		t.Fatalf("sizes: got %v, want %v", h, g)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if h.VertexName(graph.VertexID(v)) != g.VertexName(graph.VertexID(v)) {
			t.Fatalf("vertex %d name mismatch", v)
		}
		if h.Vertex(g.VertexName(graph.VertexID(v))) != graph.VertexID(v) {
			t.Fatalf("vertex %d lookup mismatch", v)
		}
	}
	for l := 0; l < g.NumLabels(); l++ {
		if h.LabelName(graph.Label(l)) != g.LabelName(graph.Label(l)) {
			t.Fatalf("label %d name mismatch", l)
		}
	}
	gt, ht := triples(g), triples(h)
	if len(gt) != len(ht) {
		t.Fatalf("triple counts: %d vs %d", len(gt), len(ht))
	}
	for i := range gt {
		if gt[i] != ht[i] {
			t.Fatalf("triple %d: %v vs %v", i, gt[i], ht[i])
		}
	}
	gs, hs := g.Schema(), h.Schema()
	gc, hc := gs.Classes(), hs.Classes()
	if len(gc) != len(hc) {
		t.Fatalf("schema classes: %v vs %v", gc, hc)
	}
	for i, c := range gc {
		if hc[i] != c {
			t.Fatalf("schema class %d: %q vs %q", i, hc[i], c)
		}
		gi, hi := gs.Instances(c), hs.Instances(c)
		if len(gi) != len(hi) {
			t.Fatalf("class %q instances: %v vs %v", c, gi, hi)
		}
		for j := range gi {
			if gi[j] != hi[j] {
				t.Fatalf("class %q instance %d differs", c, j)
			}
		}
	}
	if d, ok := hs.Domain("l0"); !ok || d != "Person" {
		t.Fatalf("domain(l0) = %q, %v", d, ok)
	}
	if seg.Index == nil {
		t.Fatal("index section missing")
	}
	if err := idx.EqualStructure(seg.Index); err != nil {
		t.Fatalf("index structure: %v", err)
	}
}

func TestSegmentNoIndex(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	if _, err := Write(dir, 0, g, nil, 0, 0); err != nil {
		t.Fatalf("Write: %v", err)
	}
	seg, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer seg.Close()
	if seg.Index != nil {
		t.Fatal("unexpected index")
	}
}

func TestOpenDirPicksNewest(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	for _, seq := range []uint64{0, 12, 5} {
		if _, err := Write(dir, seq, g, nil, 0, 0); err != nil {
			t.Fatalf("Write(%d): %v", seq, err)
		}
	}
	seg, err := OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer seg.Close()
	if seg.BaseSeq != 12 {
		t.Fatalf("BaseSeq = %d, want 12", seg.BaseSeq)
	}
	if err := RemoveObsolete(dir, PathFor(dir, 12)); err != nil {
		t.Fatalf("RemoveObsolete: %v", err)
	}
	paths, _ := List(dir)
	if len(paths) != 1 || paths[0] != PathFor(dir, 12) {
		t.Fatalf("after prune: %v", paths)
	}
}

func TestOpenDirEmpty(t *testing.T) {
	if _, err := OpenDir(t.TempDir()); !errors.Is(err, ErrNoSegment) {
		t.Fatalf("err = %v, want ErrNoSegment", err)
	}
}

// TestSegmentCorruptionDetected flips every byte of a sealed segment in
// turn (coarse stride for speed) and asserts Open fails closed with a
// typed error rather than succeeding or panicking.
func TestSegmentCorruptionDetected(t *testing.T) {
	g := testGraph(t)
	idx := lscrcore.NewLocalIndex(g, lscrcore.IndexParams{K: 4, Seed: 1})
	dir := t.TempDir()
	path, err := Write(dir, 1, g, idx, 4, 1)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(orig); pos += 37 {
		mut := bytes.Clone(orig)
		mut[pos] ^= 0x5a
		if _, err := OpenBytes(mut); err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
	// Truncations must fail closed too.
	for _, n := range []int{0, 7, 40, len(orig) / 2, len(orig) - 1} {
		if _, err := OpenBytes(orig[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestWALRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	path := WALPath(dir)
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal has %d records", len(recs))
	}
	batches := [][]Op{
		{{Kind: OpAddEdge, Subject: "a", Label: "l", Object: "b"}},
		{{Kind: OpDeleteEdge, Subject: "a", Label: "l", Object: "b"}, {Kind: OpAddVertex, Subject: "c"}},
	}
	for i, b := range batches {
		if err := w.Append(RecordBatch, uint64(i+1), EncodeOps(b), true); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Append(RecordSeal, 3, nil, true); err != nil {
		t.Fatalf("Append seal: %v", err)
	}
	st := w.Stats()
	if st.Records != 3 || st.LastSync.IsZero() {
		t.Fatalf("stats = %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	w2.Close()
	if len(recs) != 3 || recs[2].Kind != RecordSeal || recs[2].Seq != 3 {
		t.Fatalf("replayed %d records: %+v", len(recs), recs)
	}
	ops, err := DecodeOps(recs[1].Payload)
	if err != nil || len(ops) != 2 || ops[1].Subject != "c" {
		t.Fatalf("decode: %v %+v", err, ops)
	}

	// Tear the tail mid-record: replay drops exactly the torn record.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	w3, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("torn reopen: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn replay kept %d records, want 2", len(recs))
	}
	// The torn suffix must be gone so new appends start clean.
	if err := w3.Append(RecordSeal, 3, nil, true); err != nil {
		t.Fatalf("append after tear: %v", err)
	}
	w3.Close()
	w4, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatalf("reopen after re-append: %v", err)
	}
	w4.Close()
	if len(recs) != 3 || recs[2].Seq != 3 {
		t.Fatalf("after re-append: %+v", recs)
	}
}

func TestWALRotate(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for seq := uint64(1); seq <= 5; seq++ {
		if err := w.Append(RecordBatch, seq, EncodeOps([]Op{{Kind: OpAddVertex, Subject: "x"}}), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(3); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if st := w.Stats(); st.Records != 2 {
		t.Fatalf("post-rotate records = %d, want 2", st.Records)
	}
	// Appends after rotation land in the new file.
	if err := w.Append(RecordBatch, 6, nil, true); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, recs, err := OpenWAL(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Seq != 4 || recs[2].Seq != 6 {
		t.Fatalf("rotated wal: %+v", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, walName+tmpSuffix)); !os.IsNotExist(err) {
		t.Fatalf("rotate temp left behind: %v", err)
	}
}

func TestOpsCodecHostileInput(t *testing.T) {
	ops := []Op{{Kind: OpAddEdge, Subject: "s", Label: "l", Object: "o"}}
	enc := EncodeOps(ops)
	dec, err := DecodeOps(enc)
	if err != nil || len(dec) != 1 || dec[0] != ops[0] {
		t.Fatalf("round trip: %v %+v", err, dec)
	}
	for _, b := range [][]byte{
		nil,
		{0xff, 0xff, 0xff, 0xff},    // huge count, no data
		enc[:len(enc)-2],            // truncated string
		append(bytes.Clone(enc), 0), // trailing garbage
	} {
		if _, err := DecodeOps(b); err == nil {
			t.Fatalf("hostile input %v decoded", b)
		}
	}
}
