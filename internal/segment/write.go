package segment

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"lscr/internal/failpoint"
	"lscr/internal/graph"
	lscrcore "lscr/internal/lscr"
)

const (
	segPrefix = "seg-"
	segSuffix = ".lscrseg"
	tmpSuffix = ".tmp"
)

// PathFor returns the canonical segment path for a base sequence
// number. Names sort lexically in seq order (zero-padded hex), so List
// needs no metadata reads.
func PathFor(dir string, baseSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, baseSeq, segSuffix))
}

// List returns the sealed segment paths in dir in ascending base-seq
// order. Temp files are ignored.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		if _, err := strconv.ParseUint(seq, 16, 64); err != nil {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// Write seals a complete segment for g (which must be overlay-free;
// callers compact first) and idx (nil for an index-less engine)
// atomically: temp file, fsync, rename, directory fsync. indexK and
// indexSeed record the engine's index-build parameters so Open can
// reconstruct equivalent Options. It returns the final path.
func Write(dir string, baseSeq uint64, g *graph.Graph, idx *lscrcore.LocalIndex, indexK int, indexSeed int64) (string, error) {
	tmp, err := WriteTemp(dir, baseSeq, g, idx, indexK, indexSeed)
	if err != nil {
		return "", err
	}
	return Commit(tmp)
}

// WriteTemp writes and fsyncs the full segment image as a temp file in
// dir without making it visible; Commit publishes it. The split exists
// for the compactor, which prepares the image outside the engine's
// locks and publishes it only after the sealing WAL record is durable.
func WriteTemp(dir string, baseSeq uint64, g *graph.Graph, idx *lscrcore.LocalIndex, indexK int, indexSeed int64) (string, error) {
	tmpPath := PathFor(dir, baseSeq) + tmpSuffix
	f, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if fp := failpoint.Eval(FPSegWrite); fp != nil {
		if fp.Torn > 0 {
			// Crash mid-image: leave a partial temp file behind — exactly
			// the stray Open's removeStrayTemps must sweep.
			f.Write(zeroPad[:min(fp.Torn, len(zeroPad))])
			f.Close()
			return "", fp
		}
		f.Close()
		os.Remove(tmpPath)
		return "", fp
	}
	if err := writeSegment(f, baseSeq, g, idx, indexK, indexSeed); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return "", err
	}
	if fp := failpoint.Eval(FPSegSync); fp != nil {
		f.Close()
		os.Remove(tmpPath)
		return "", fp
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpPath)
		return "", err
	}
	return tmpPath, nil
}

// Commit renames a WriteTemp file to its final segment name and fsyncs
// the directory, making the seal durable.
func Commit(tmpPath string) (string, error) {
	final := strings.TrimSuffix(tmpPath, tmpSuffix)
	if final == tmpPath {
		return "", fmt.Errorf("segment: %q is not a temp segment", tmpPath)
	}
	if fp := failpoint.Eval(FPSegRename); fp != nil {
		return "", fp
	}
	if err := os.Rename(tmpPath, final); err != nil {
		return "", err
	}
	if err := syncDir(filepath.Dir(final)); err != nil {
		return "", err
	}
	return final, nil
}

// RemoveObsolete deletes sealed segments older than keepPath. Unix
// unlink semantics keep any still-mmap'd older segment readable until
// the mapping is closed.
func RemoveObsolete(dir, keepPath string) error {
	paths, err := List(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, p := range paths {
		if p < keepPath {
			if err := os.Remove(p); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func syncDir(dir string) error {
	if fp := failpoint.Eval(FPDirSync); fp != nil {
		return fp
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeSegment(f *os.File, baseSeq uint64, g *graph.Graph, idx *lscrcore.LocalIndex, indexK int, indexSeed int64) error {
	out, in, ok := g.BaseViews()
	if !ok {
		return errors.New("segment: graph carries an uncompacted overlay")
	}
	names, labels := g.VertexNames(), g.LabelNames()

	h := &header{baseSeq: baseSeq, indexK: int64(indexK), indexSeed: indexSeed}
	type section struct {
		id   uint32
		emit func(*segWriter)
	}
	secs := []section{
		{secLabelDict, func(sw *segWriter) { sw.dict(labels) }},
		{secVertexDict, func(sw *segWriter) { sw.dict(names) }},
		{secNameIdx, func(sw *segWriter) { sw.nameIdx(names) }},
		{secCSROut, func(sw *segWriter) { sw.csr(out) }},
		{secCSRIn, func(sw *segWriter) { sw.csr(in) }},
		{secSchema, func(sw *segWriter) {
			if _, err := graph.WriteSchema(sw, g.Schema()); err != nil && sw.err == nil {
				sw.err = err
			}
		}},
	}
	if idx != nil {
		h.flags |= flagHasIndex
		secs = append(secs, section{secIndex, func(sw *segWriter) {
			if _, err := lscrcore.WriteIndexPayload(sw, idx); err != nil && sw.err == nil {
				sw.err = err
			}
		}})
	}

	sw := &segWriter{f: f, w: bufio.NewWriterSize(f, 1<<20), crc: crc32.New(castagnoli)}
	// Zero placeholder for the header+table; the real bytes are patched
	// in once every section's offset, length and CRC are known.
	headerLen := headerSize + tableEntry*len(secs)
	sw.zeros(headerLen)
	for _, s := range secs {
		sw.align8()
		off := sw.n
		sw.crc.Reset()
		s.emit(sw)
		h.sections = append(h.sections, tableSection{
			id:  s.id,
			crc: sw.crc.Sum32(),
			off: uint64(off),
			len: uint64(sw.n - off),
		})
	}
	if sw.err != nil {
		return sw.err
	}
	hdr := encodeHeader(h)
	var foot [footerSize]byte
	binary.LittleEndian.PutUint32(foot[0:4], checksum(hdr))
	copy(foot[8:16], footMagic)
	sw.raw(foot[:])
	if sw.err != nil {
		return sw.err
	}
	if err := sw.w.Flush(); err != nil {
		return err
	}
	_, err := f.WriteAt(hdr, 0)
	return err
}

// segWriter tracks position and the running section CRC. Write tees
// into the checksum, so the schema and index codecs can stream through
// it directly.
type segWriter struct {
	f   *os.File
	w   *bufio.Writer
	crc hash.Hash32
	n   int64
	err error
	buf []byte
}

var _ io.Writer = (*segWriter)(nil)

func (sw *segWriter) Write(p []byte) (int, error) {
	if sw.err != nil {
		return 0, sw.err
	}
	n, err := sw.w.Write(p)
	sw.crc.Write(p[:n])
	sw.n += int64(n)
	sw.err = err
	if err != nil {
		return n, err
	}
	return n, nil
}

func (sw *segWriter) raw(p []byte) { sw.Write(p) }

func (sw *segWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	sw.raw(b[:])
}

func (sw *segWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	sw.raw(b[:])
}

var zeroPad [4096]byte

func (sw *segWriter) zeros(n int) {
	for n > 0 && sw.err == nil {
		c := min(n, len(zeroPad))
		sw.raw(zeroPad[:c])
		n -= c
	}
}

func (sw *segWriter) align8() { sw.zeros(int(align8(sw.n) - sw.n)) }

// dict writes a string table: count, (count+1) cumulative byte offsets,
// padding, then the concatenated names.
func (sw *segWriter) dict(names []string) {
	sw.u32(uint32(len(names)))
	sw.u32(0)
	cum := uint32(0)
	sw.u32(0)
	for _, nm := range names {
		cum += uint32(len(nm))
		sw.u32(cum)
	}
	sw.align8()
	for _, nm := range names {
		sw.raw([]byte(nm))
	}
}

// nameIdx writes the vertex ids permuted into ascending-name order —
// the boot-side replacement for the name→id hash map. The sort runs at
// seal time (background compaction), never on the boot path.
func (sw *segWriter) nameIdx(names []string) {
	perm := make([]uint32, len(names))
	for i := range perm {
		perm[i] = uint32(i)
	}
	sort.Slice(perm, func(i, j int) bool { return names[perm[i]] < names[perm[j]] })
	sw.u32s(perm)
}

// csr writes one adjacency direction: counts, then the five flat
// arrays, each 8-aligned.
func (sw *segWriter) csr(v graph.AdjView) {
	sw.u64(uint64(len(v.Edges)))
	sw.u32(uint32(len(v.Off) - 1))
	sw.u32(uint32(len(v.RunStart)))
	sw.u32s(v.Off)
	sw.align8()
	sw.u32s(v.RunOff)
	sw.align8()
	sw.u32s(v.RunStart)
	sw.align8()
	buf := sw.chunk()
	for _, l := range v.RunLabel {
		buf = append(buf, byte(l))
		if len(buf) == cap(buf) {
			sw.raw(buf)
			buf = buf[:0]
		}
	}
	sw.raw(buf)
	sw.buf = buf[:0]
	sw.align8()
	sw.edges(v.Edges)
}

func (sw *segWriter) u32s(a []uint32) {
	buf := sw.chunk()
	for _, v := range a {
		buf = binary.LittleEndian.AppendUint32(buf, v)
		if len(buf) >= cap(buf)-4 {
			sw.raw(buf)
			buf = buf[:0]
		}
	}
	sw.raw(buf)
	sw.buf = buf[:0]
}

func (sw *segWriter) edges(es []graph.Edge) {
	buf := sw.chunk()
	for _, e := range es {
		buf = appendEdge(buf, e)
		if len(buf) >= cap(buf)-edgeBytes {
			sw.raw(buf)
			buf = buf[:0]
		}
	}
	sw.raw(buf)
	sw.buf = buf[:0]
}

func (sw *segWriter) chunk() []byte {
	if cap(sw.buf) < 64*1024 {
		sw.buf = make([]byte, 0, 64*1024)
	}
	return sw.buf[:0]
}
