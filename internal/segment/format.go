// Package segment is the persistence subsystem: immutable on-disk
// segments holding a complete engine state (base CSR both directions,
// label-run index, string dictionaries, RDFS schema and the local
// index) as aligned little-endian flat arrays, plus a checksummed
// write-ahead log (WAL) that makes mutation batches durable between
// segment seals.
//
// A segment is written atomically (temp file + fsync + rename + dir
// fsync) and opened via mmap: the graph arrays and dictionary strings
// alias the mapping directly (see alias.go), so opening a segment costs
// one checksum pass and the dictionary-map rebuild instead of a full
// parse + index build. Boot-time recovery = open the newest segment
// (state at its base sequence number) and replay the WAL tail through
// the engine's normal commit path.
//
// # Segment layout
//
//	header    magic "LSCRSEG1" | baseSeq u64 | indexK i64 | indexSeed i64
//	          flags u32 | sectionCount u32
//	table     sectionCount × (id u32, crc32 u32, off u64, len u64)
//	sections  8-byte aligned, zero-padded between
//	footer    crc32(header+table) u32 | reserved u32 | magic "LSCRSEGF"
//
// Section payloads (ids below): the label and vertex dictionaries are
// offset+blob string tables; the two CSR sections hold the five flat
// arrays of one adjacency direction; the schema section reuses the
// snapshot schema codec; the index section is the bare LSCRIDX3 payload
// (lscr.WriteIndexPayload). Every section is individually CRC32'd in
// the table, and the footer CRC covers the header and table themselves,
// so a truncated or bit-flipped file fails closed before any array is
// trusted. Structural validation on top of the checksums
// (graph.AdjView.Validate and the index payload's budget checks) makes
// Open safe on hostile bytes, not just on torn writes.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"lscr/internal/graph"
)

// File-format constants.
const (
	segMagic    = "LSCRSEG1"
	footMagic   = "LSCRSEGF"
	headerSize  = 40 // magic 8 + baseSeq 8 + indexK 8 + indexSeed 8 + flags 4 + count 4
	tableEntry  = 24 // id 4 + crc 4 + off 8 + len 8
	footerSize  = 16 // crc 4 + reserved 4 + magic 8
	maxSections = 16

	flagHasIndex = 1 << 0
)

// Section ids.
const (
	secLabelDict  uint32 = 1
	secVertexDict uint32 = 2
	secCSROut     uint32 = 3
	secCSRIn      uint32 = 4
	secSchema     uint32 = 5
	secIndex      uint32 = 6
	// secNameIdx holds the vertex ids permuted into ascending-name
	// order: Vertex() binary-searches it over the mmap'd dictionary, so
	// opening a segment never builds a name→id hash map.
	secNameIdx uint32 = 7
)

// castagnoli is the CRC-32C table behind every segment and WAL
// checksum. The Castagnoli polynomial has a dedicated instruction on
// amd64 (SSE4.2) and arm64 (ARMv8 CRC), so the whole-file integrity
// pass a boot performs runs at memory speed instead of table-lookup
// speed — it is the dominant honest cost of opening a segment.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ErrCorrupt re-exports the persistence stack's corruption sentinel:
// every malformed-segment and malformed-WAL error wraps it.
var ErrCorrupt = graph.ErrCorrupt

// ErrNoSegment reports a data directory with no sealed segment.
var ErrNoSegment = errors.New("segment: no segment in directory")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("segment: %w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// header is the decoded fixed header plus section table.
type header struct {
	baseSeq   uint64
	indexK    int64
	indexSeed int64
	flags     uint32
	sections  []tableSection
}

type tableSection struct {
	id  uint32
	crc uint32
	off uint64
	len uint64
}

func (h *header) section(id uint32) (tableSection, bool) {
	for _, s := range h.sections {
		if s.id == id {
			return s, true
		}
	}
	return tableSection{}, false
}

// encodeHeader renders the fixed header and section table.
func encodeHeader(h *header) []byte {
	b := make([]byte, headerSize+tableEntry*len(h.sections))
	copy(b[0:8], segMagic)
	binary.LittleEndian.PutUint64(b[8:16], h.baseSeq)
	binary.LittleEndian.PutUint64(b[16:24], uint64(h.indexK))
	binary.LittleEndian.PutUint64(b[24:32], uint64(h.indexSeed))
	binary.LittleEndian.PutUint32(b[32:36], h.flags)
	binary.LittleEndian.PutUint32(b[36:40], uint32(len(h.sections)))
	for i, s := range h.sections {
		e := b[headerSize+i*tableEntry:]
		binary.LittleEndian.PutUint32(e[0:4], s.id)
		binary.LittleEndian.PutUint32(e[4:8], s.crc)
		binary.LittleEndian.PutUint64(e[8:16], s.off)
		binary.LittleEndian.PutUint64(e[16:24], s.len)
	}
	return b
}

// parseHeader validates the framing of a whole segment image — magic,
// footer, header CRC, section-table bounds, per-section CRCs — and
// returns the decoded header. After it succeeds every table entry
// denotes an in-bounds, checksum-verified byte range of data.
func parseHeader(data []byte) (*header, error) {
	if len(data) < headerSize+footerSize {
		return nil, corruptf("file too small (%d bytes)", len(data))
	}
	if string(data[0:8]) != segMagic {
		return nil, corruptf("bad magic")
	}
	foot := data[len(data)-footerSize:]
	if string(foot[8:16]) != footMagic {
		return nil, corruptf("bad footer magic")
	}
	count := binary.LittleEndian.Uint32(data[36:40])
	if count > maxSections {
		return nil, corruptf("section count %d", count)
	}
	headerLen := headerSize + tableEntry*int(count)
	if headerLen+footerSize > len(data) {
		return nil, corruptf("truncated section table")
	}
	if binary.LittleEndian.Uint32(foot[0:4]) != checksum(data[:headerLen]) {
		return nil, corruptf("header checksum mismatch")
	}
	h := &header{
		baseSeq:   binary.LittleEndian.Uint64(data[8:16]),
		indexK:    int64(binary.LittleEndian.Uint64(data[16:24])),
		indexSeed: int64(binary.LittleEndian.Uint64(data[24:32])),
		flags:     binary.LittleEndian.Uint32(data[32:36]),
		sections:  make([]tableSection, count),
	}
	body := uint64(len(data) - footerSize)
	seen := make(map[uint32]bool, count)
	for i := range h.sections {
		e := data[headerSize+i*tableEntry:]
		s := tableSection{
			id:  binary.LittleEndian.Uint32(e[0:4]),
			crc: binary.LittleEndian.Uint32(e[4:8]),
			off: binary.LittleEndian.Uint64(e[8:16]),
			len: binary.LittleEndian.Uint64(e[16:24]),
		}
		if seen[s.id] {
			return nil, corruptf("duplicate section %d", s.id)
		}
		seen[s.id] = true
		if s.off < uint64(headerLen) || s.off > body || s.len > body-s.off {
			return nil, corruptf("section %d out of bounds", s.id)
		}
		if checksum(data[s.off:s.off+s.len]) != s.crc {
			return nil, corruptf("section %d checksum mismatch", s.id)
		}
		h.sections[i] = s
	}
	// Alignment padding between sections and the footer's reserved word
	// are the only bytes no checksum covers; require them zero (the
	// writer emits nothing else there) so that no byte of the file can
	// flip undetected.
	order := make([]tableSection, len(h.sections))
	copy(order, h.sections)
	sort.Slice(order, func(i, j int) bool { return order[i].off < order[j].off })
	pos := uint64(headerLen)
	for _, s := range order {
		if s.off < pos {
			return nil, corruptf("section %d overlaps its predecessor", s.id)
		}
		if !allZero(data[pos:s.off]) {
			return nil, corruptf("nonzero padding before section %d", s.id)
		}
		pos = s.off + s.len
	}
	if !allZero(data[pos:body]) || !allZero(foot[4:8]) {
		return nil, corruptf("nonzero padding after sections")
	}
	return h, nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// sectionBytes returns the verified byte range of section id, or an
// error naming it when required is set and the section is absent.
func sectionBytes(data []byte, h *header, id uint32) ([]byte, error) {
	s, ok := h.section(id)
	if !ok {
		return nil, corruptf("missing section %d", id)
	}
	return data[s.off : s.off+s.len : s.off+s.len], nil
}

func align8(n int64) int64 { return (n + 7) &^ 7 }
