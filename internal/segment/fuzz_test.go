package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lscr/internal/graph"
	core "lscr/internal/lscr"
)

// Fuzz tier: segment and WAL readers parse attacker-controlled bytes
// at boot, so they must fail closed — an error, never a panic, a hang
// or an absurd allocation — on arbitrary input. Valid images are
// seeded so the fuzzer mutates from realistic structure.

// fuzzSegmentBytes builds one valid segment image to seed from.
func fuzzSegmentBytes(f *testing.F, withIndex bool) []byte {
	f.Helper()
	g := testGraph(f)
	var idx *core.LocalIndex
	indexK := 0
	if withIndex {
		indexK = 4
		idx = core.NewLocalIndex(g, core.IndexParams{K: indexK, Seed: 9, Workers: 1})
	}
	dir := f.TempDir()
	path, err := Write(dir, 3, g, idx, indexK, 9)
	if err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzSegmentOpen: OpenBytes on arbitrary bytes either fails with an
// error or yields a segment whose graph is safe to traverse.
func FuzzSegmentOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	full := fuzzSegmentBytes(f, true)
	f.Add(full)
	f.Add(fuzzSegmentBytes(f, false))
	f.Add(full[:len(full)-7])
	truncTable := append([]byte(nil), full...)
	f.Add(truncTable[:64])

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := OpenBytes(data)
		if err != nil {
			return
		}
		// Accepted input: the decoded graph must be internally
		// consistent enough to walk without faulting.
		g := seg.Graph
		n, m := g.NumVertices(), g.NumEdges()
		if n < 0 || m < 0 {
			t.Fatalf("negative sizes: %d vertices, %d edges", n, m)
		}
		for v := 0; v < n && v < 64; v++ {
			_ = g.Out(graph.VertexID(v))
			_ = g.In(graph.VertexID(v))
		}
		if seg.Index != nil {
			if err := seg.Index.EqualStructure(seg.Index); err != nil {
				t.Fatalf("decoded index not self-equal: %v", err)
			}
		}
		seg.Close()
	})
}

// FuzzWALReplay: opening a log file with arbitrary contents either
// fails or recovers a clean record prefix that survives re-opening
// and further appends; batch payloads feed DecodeOps, which must not
// panic or over-allocate either.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	{
		dir := f.TempDir()
		w, _, err := OpenWAL(filepath.Join(dir, walName))
		if err != nil {
			f.Fatal(err)
		}
		payload := EncodeOps([]Op{
			{Kind: OpAddEdge, Subject: "a", Label: "l", Object: "b"},
			{Kind: OpDeleteEdge, Subject: "a", Label: "l", Object: "b"},
			{Kind: OpAddVertex, Subject: "c"},
		})
		if err := w.Append(RecordBatch, 1, payload, false); err != nil {
			f.Fatal(err)
		}
		if err := w.Append(RecordSeal, 2, []byte{1, 0, 0, 0, 0, 0, 0, 0}, true); err != nil {
			f.Fatal(err)
		}
		w.Close()
		data, err := os.ReadFile(filepath.Join(dir, walName))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)-3]) // torn tail
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := OpenWAL(path)
		if err != nil {
			return
		}
		for _, rec := range recs {
			if rec.Kind == RecordBatch {
				if _, err := DecodeOps(rec.Payload); err != nil {
					continue
				}
			}
		}
		// The recovered prefix must be stable: appending past it and
		// re-opening yields the same records plus the new one.
		next := uint64(1)
		if len(recs) > 0 {
			next = recs[len(recs)-1].Seq + 1
			if next == 0 { // Seq saturated; nothing left to append after
				return
			}
		}
		if err := w.Append(RecordBatch, next, EncodeOps([]Op{{Kind: OpAddVertex, Subject: "z"}}), false); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		_, recs2, err := OpenWAL(path)
		if err != nil {
			t.Fatalf("re-open after append: %v", err)
		}
		if len(recs2) != len(recs)+1 {
			t.Fatalf("recovered %d records, then %d after one append", len(recs), len(recs2))
		}
		for i, rec := range recs {
			if rec.Kind != recs2[i].Kind || rec.Seq != recs2[i].Seq || !bytes.Equal(rec.Payload, recs2[i].Payload) {
				t.Fatalf("record %d changed across reopen", i)
			}
		}
	})
}
