//go:build unix

package segment

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned cleanup unmaps; it is nil
// only when the data is heap-backed (the empty-file case).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, corruptf("segment larger than address space")
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
