package segment

import (
	"os"
)

// ReadWALAfter opens the log at path read-only and returns every intact
// record with Seq > from, in append order — the streaming read behind
// the engine's replication feed. It shares scanWAL with recovery, so a
// torn tail (a record cut short mid-append) simply ends the scan; the
// writer's own handle keeps appending undisturbed.
//
// The read races benignly with both appenders and rotation: an append
// landing mid-scan is either seen whole or cut at the tail (the caller
// polls again), and a rotation swapping the file under us leaves the
// scan on the old inode, whose records are a superset of the rotated
// suffix. A nonexistent log reads as empty.
func ReadWALAfter(path string, from uint64) ([]WALRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, _, err := scanWAL(f)
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, rec := range recs {
		if rec.Seq > from {
			out = append(out, rec)
		}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}
