package segment

// Failpoint sites threaded through the durability hot paths. Arm them
// via failpoint.Set/Arm (or LSCR_FAILPOINTS) to simulate disk faults:
// an "error" policy makes the operation fail cleanly before touching
// the file, "torn=K" persists a K-byte prefix first — a crash
// mid-write.
const (
	// FPWALAppend fires in WAL.Append before the record write.
	FPWALAppend = "wal-append"
	// FPWALSync fires before any WAL fsync (Append in sync mode, Sync,
	// the pre-rotation flush).
	FPWALSync = "wal-sync"
	// FPWALRotateWrite fires per record while Rotate copies the kept
	// suffix into the temp log.
	FPWALRotateWrite = "wal-rotate-write"
	// FPWALRotateSync fires before Rotate fsyncs the temp log.
	FPWALRotateSync = "wal-rotate-sync"
	// FPWALRotateRename fires before Rotate renames the temp log over
	// the live one.
	FPWALRotateRename = "wal-rotate-rename"
	// FPSegWrite fires in WriteTemp before the segment image is written.
	FPSegWrite = "seg-write"
	// FPSegSync fires in WriteTemp before the segment fsync.
	FPSegSync = "seg-sync"
	// FPSegRename fires in Commit before the temp→final rename.
	FPSegRename = "seg-rename"
	// FPDirSync fires in the directory fsync that seals both Commit and
	// WAL rotation.
	FPDirSync = "dir-sync"
)
