package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lscr/internal/failpoint"
)

// Write-ahead log. Every committed Apply batch is appended (and, in
// sync mode, fsynced) before its epoch is published, so a crash loses
// at most batches the caller was never told succeeded. Compaction
// appends a "seal" record carrying the epoch bump it publishes, so a
// recovered engine lands on exactly the pre-crash epoch sequence.
//
// Layout: magic "LSCRWAL1", then records
//
//	len u32 | crc32(body) u32 | body = kind u8 | seq u64 | payload
//
// Records are appended strictly in epoch order (the engine serializes
// publishers), so replay is a single forward scan. A torn tail — a
// record cut short or failing its CRC, the signature of a crash
// mid-append — is truncated away on open; anything after it is by
// construction unacknowledged.

const (
	walMagic     = "LSCRWAL1"
	walName      = "wal.log"
	recHeader    = 8 // len u32 + crc u32
	recBodyMin   = 9 // kind u8 + seq u64
	maxRecordLen = 1 << 30
)

// Record kinds.
const (
	// RecordBatch carries one committed Apply batch (EncodeMutations
	// payload) published at Seq.
	RecordBatch byte = 1
	// RecordSeal carries a compaction swap: the epoch bump to Seq that
	// sealed the segment at the previous state. Payload is the sealed
	// segment's base seq (u64).
	RecordSeal byte = 2
)

// WALRecord is one decoded log record.
type WALRecord struct {
	Kind    byte
	Seq     uint64
	Payload []byte
}

// WALPath returns the log path inside a data directory.
func WALPath(dir string) string { return filepath.Join(dir, walName) }

// WAL is an append-only mutation log. Methods are safe for concurrent
// use; appends and rotation serialize on an internal mutex.
type WAL struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	size     int64
	records  int
	dirty    bool
	lastSync time.Time
}

// WALStats is a point-in-time durability snapshot for monitoring.
type WALStats struct {
	Records  int
	Bytes    int64
	LastSync time.Time // zero until the first fsync
}

// OpenWAL opens (creating if absent) the log at path, replays every
// intact record and truncates a torn tail. The returned records are in
// append order with strictly increasing Seq.
func OpenWAL(path string) (*WAL, []WALRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, path: path}
	recs, good, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if good == 0 {
		if st, serr := f.Stat(); serr == nil && st.Size() >= int64(len(walMagic)) {
			// A full-length file with an unreadable magic is not a torn
			// append; refuse to silently wipe committed batches.
			f.Close()
			return nil, nil, corruptf("wal magic unreadable")
		}
		// New file (or a crash mid-magic): (re)write the magic.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		good = int64(len(walMagic))
	} else if st, err := f.Stat(); err == nil && st.Size() > good {
		// Torn tail: drop the unacknowledged suffix.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.size = good
	w.records = len(recs)
	return w, recs, nil
}

// scanWAL reads records until EOF or the first torn/corrupt one,
// returning the intact records and the byte offset they end at (0 when
// even the magic is unreadable).
func scanWAL(f *os.File) ([]WALRecord, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != walMagic {
		return nil, 0, nil
	}
	var recs []WALRecord
	good := int64(len(walMagic))
	hdr := make([]byte, recHeader)
	var lastSeq uint64
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return recs, good, nil
		}
		bodyLen := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if bodyLen < recBodyMin || bodyLen > maxRecordLen {
			return recs, good, nil
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(f, body); err != nil {
			return recs, good, nil
		}
		if checksum(body) != wantCRC {
			return recs, good, nil
		}
		rec := WALRecord{
			Kind:    body[0],
			Seq:     binary.LittleEndian.Uint64(body[1:9]),
			Payload: body[9:],
		}
		if len(recs) > 0 && rec.Seq <= lastSeq {
			// Sequence regression cannot come from a torn append; the
			// file is damaged beyond tail truncation.
			return nil, 0, corruptf("wal sequence regression at %d", rec.Seq)
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
		good += int64(recHeader) + int64(bodyLen)
	}
}

// Append writes one record; with sync it is fsynced before returning —
// the durability point of an Apply batch.
func (w *WAL) Append(kind byte, seq uint64, payload []byte, sync bool) error {
	if len(payload) > maxRecordLen-recBodyMin {
		return fmt.Errorf("segment: wal record too large (%d bytes)", len(payload))
	}
	buf := make([]byte, recHeader+recBodyMin+len(payload))
	body := buf[recHeader:]
	body[0] = kind
	binary.LittleEndian.PutUint64(body[1:9], seq)
	copy(body[9:], payload)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:8], checksum(body))

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("segment: wal closed")
	}
	if fp := failpoint.Eval(FPWALAppend); fp != nil {
		if fp.Torn > 0 {
			// A crash mid-append: a prefix of the record reaches the file
			// but is never acknowledged. Size/record counters stay put —
			// the torn bytes are exactly what reopen truncates away.
			w.f.Write(buf[:min(fp.Torn, len(buf))])
		}
		return fp
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	w.size += int64(len(buf))
	w.records++
	w.dirty = true
	if sync {
		return w.syncLocked()
	}
	return nil
}

// Sync flushes lazily-appended records to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.f == nil || !w.dirty {
		return nil
	}
	if fp := failpoint.Eval(FPWALSync); fp != nil {
		return fp
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.lastSync = time.Now()
	return nil
}

// Rotate rewrites the log keeping only records with Seq > keepAfter —
// the post-seal truncation: everything at or below the sealed segment's
// base seq is covered by the segment itself. The rewrite is atomic
// (temp + fsync + rename) and appends issued after Rotate returns go to
// the new file.
func (w *WAL) Rotate(keepAfter uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("segment: wal closed")
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	recs, _, err := scanWAL(w.f)
	if err != nil {
		return err
	}
	tmpPath := w.path + tmpSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	size := int64(len(walMagic))
	kept := 0
	// Assign the outer err: a record-copy failure must survive this
	// block, not die in an if-scoped shadow.
	_, err = tmp.Write([]byte(walMagic))
	if err == nil {
		for _, r := range recs {
			if r.Seq <= keepAfter {
				continue
			}
			buf := make([]byte, recHeader+recBodyMin+len(r.Payload))
			body := buf[recHeader:]
			body[0] = r.Kind
			binary.LittleEndian.PutUint64(body[1:9], r.Seq)
			copy(body[9:], r.Payload)
			binary.LittleEndian.PutUint32(buf[0:4], uint32(len(body)))
			binary.LittleEndian.PutUint32(buf[4:8], checksum(body))
			if fp := failpoint.Eval(FPWALRotateWrite); fp != nil {
				if fp.Torn > 0 {
					tmp.Write(buf[:min(fp.Torn, len(buf))])
				}
				err = fp
				break
			}
			if _, err = tmp.Write(buf); err != nil {
				break
			}
			size += int64(len(buf))
			kept++
		}
	}
	if err == nil {
		if fp := failpoint.Eval(FPWALRotateSync); fp != nil {
			err = fp
		} else {
			err = tmp.Sync()
		}
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return err
	}
	if fp := failpoint.Eval(FPWALRotateRename); fp != nil {
		os.Remove(tmpPath)
		return fp
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return err
	}
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return err
	}
	w.f.Close()
	w.f = f
	w.size = size
	w.records = kept
	w.dirty = false
	return nil
}

// Stats reports the log's current durability state.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{Records: w.records, Bytes: w.size, LastSync: w.lastSync}
}

// Close syncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
