package segment

import (
	"encoding/binary"
	"unsafe"

	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// Zero-copy section views. The file format is little-endian with every
// numeric array 8-byte aligned, which is exactly the in-memory layout
// of the graph's flat arrays on little-endian hosts — so Open can alias
// []uint32 and []graph.Edge views straight over the mmap'd bytes
// instead of decoding element by element. The aliasing is gated three
// ways at runtime: host endianness, the compiler's actual Edge struct
// layout, and the alignment of the specific byte slice (an mmap base is
// page-aligned and sections are 8-aligned, but fuzz inputs need not
// be); whenever a gate fails the helpers fall back to an allocate+decode
// copy with identical results. The write path never relies on the
// struct layout — it encodes fields explicitly (To u32, Label u8, three
// zero padding bytes) so the on-disk bytes are deterministic.

// hostLittleEndian reports the byte order of the running machine.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// edgeLayoutOK reports whether graph.Edge has the layout the file
// format mirrors: 8 bytes total, To at offset 0, Label at offset 4.
var edgeLayoutOK = unsafe.Sizeof(graph.Edge{}) == 8 &&
	unsafe.Offsetof(graph.Edge{}.To) == 0 &&
	unsafe.Offsetof(graph.Edge{}.Label) == 4

const edgeBytes = 8

func aligned(b []byte, align uintptr) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%align == 0
}

// u32View returns b's first n little-endian uint32s, aliasing when the
// host allows it.
func u32View(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned(b, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// edgeView returns b's first n encoded edges, aliasing when the host
// allows it. The three padding bytes per edge are zero on disk; the
// decode path ignores them.
func edgeView(b []byte, n int) []graph.Edge {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && edgeLayoutOK && aligned(b, 8) {
		return unsafe.Slice((*graph.Edge)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]graph.Edge, n)
	for i := range out {
		e := b[i*edgeBytes:]
		out[i] = graph.Edge{
			To:    graph.VertexID(binary.LittleEndian.Uint32(e[0:4])),
			Label: graph.Label(e[4]),
		}
	}
	return out
}

// labelView returns b's first n labels. Labels are single bytes, so the
// view aliases unconditionally.
func labelView(b []byte, n int) []labelset.Label {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*labelset.Label)(unsafe.Pointer(&b[0])), n)
}

// stringView returns b as a string without copying. The caller owns the
// aliasing contract: the backing bytes must stay mapped and unmodified
// for the lifetime of the string.
func stringView(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// appendEdge encodes one edge in the on-disk layout.
func appendEdge(dst []byte, e graph.Edge) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.To))
	return append(dst, byte(e.Label), 0, 0, 0)
}
