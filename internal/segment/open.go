package segment

import (
	"fmt"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	lscrcore "lscr/internal/lscr"
)

// Segment is one opened on-disk segment: a complete engine state at
// BaseSeq. Graph (and Index, when present) alias the underlying mapping
// — they stay valid until Close, which must not run while anything
// still reads them.
type Segment struct {
	Path      string
	BaseSeq   uint64
	IndexK    int
	IndexSeed int64
	Size      int64
	Graph     *graph.Graph
	Index     *lscrcore.LocalIndex // nil when the segment has no index section

	unmap func() error // nil when the data is heap-backed
}

// Close releases the mapping. The Graph/Index become invalid; callers
// drain readers first.
func (s *Segment) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	return u()
}

// OpenDir opens the newest sealed segment in dir, or ErrNoSegment when
// none exists. Older segments are not fallbacks: the WAL is rotated
// against the newest seal, so silently serving an older base could drop
// committed batches. A corrupt newest segment is therefore an error.
func OpenDir(dir string) (*Segment, error) {
	paths, err := List(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, ErrNoSegment
	}
	return Open(paths[len(paths)-1])
}

// Open maps path and assembles the engine state over the mapping.
func Open(path string) (*Segment, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	seg, err := OpenBytes(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	seg.Path = path
	seg.unmap = unmap
	return seg, nil
}

// OpenBytes assembles a Segment over an in-memory image. data must stay
// live and unmodified for the Segment's lifetime (the graph arrays and
// dictionary strings alias it). It is the whole untrusted-input surface:
// checksums, bounds and structural invariants are all verified here, so
// arbitrary bytes can fail but never panic or over-allocate — the
// contract FuzzSegmentOpen exercises.
func OpenBytes(data []byte) (*Segment, error) {
	h, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	labelSec, err := sectionBytes(data, h, secLabelDict)
	if err != nil {
		return nil, err
	}
	labels, err := parseDict(labelSec)
	if err != nil {
		return nil, fmt.Errorf("label dict: %w", err)
	}
	if len(labels) > labelset.MaxLabels {
		return nil, corruptf("label count %d exceeds universe %d", len(labels), labelset.MaxLabels)
	}
	nameSec, err := sectionBytes(data, h, secVertexDict)
	if err != nil {
		return nil, err
	}
	names, err := parseDict(nameSec)
	if err != nil {
		return nil, fmt.Errorf("vertex dict: %w", err)
	}
	orderSec, err := sectionBytes(data, h, secNameIdx)
	if err != nil {
		return nil, err
	}
	if len(orderSec) != 4*len(names) {
		return nil, corruptf("name order holds %d bytes for %d vertices", len(orderSec), len(names))
	}
	nameOrder := u32View(orderSec, len(names))
	outSec, err := sectionBytes(data, h, secCSROut)
	if err != nil {
		return nil, err
	}
	out, err := parseCSR(outSec, len(names))
	if err != nil {
		return nil, fmt.Errorf("csr-out: %w", err)
	}
	inSec, err := sectionBytes(data, h, secCSRIn)
	if err != nil {
		return nil, err
	}
	in, err := parseCSR(inSec, len(names))
	if err != nil {
		return nil, fmt.Errorf("csr-in: %w", err)
	}
	schemaSec, err := sectionBytes(data, h, secSchema)
	if err != nil {
		return nil, err
	}
	schema, err := graph.ReadSchema(schemaSec, len(names))
	if err != nil {
		return nil, err
	}
	g, err := graph.FromParts(names, labels, nameOrder, out, in, schema)
	if err != nil {
		return nil, err
	}
	seg := &Segment{
		BaseSeq:   h.baseSeq,
		IndexK:    int(h.indexK),
		IndexSeed: h.indexSeed,
		Size:      int64(len(data)),
		Graph:     g,
	}
	if h.flags&flagHasIndex != 0 {
		idxSec, err := sectionBytes(data, h, secIndex)
		if err != nil {
			return nil, err
		}
		idx, err := lscrcore.ReadIndexPayload(idxSec, g)
		if err != nil {
			return nil, err
		}
		seg.Index = idx
	}
	return seg, nil
}

// parseDict decodes a string-table section: count, count+1 cumulative
// offsets, padding, blob. The returned strings alias the section bytes.
func parseDict(b []byte) ([]string, error) {
	if len(b) < 8 {
		return nil, corruptf("dict too small")
	}
	n := int64(u32at(b, 0))
	offEnd := 8 + 4*(n+1)
	if offEnd > int64(len(b)) {
		return nil, corruptf("dict offsets truncated")
	}
	offs := u32View(b[8:offEnd], int(n+1))
	blobStart := align8(offEnd)
	if blobStart > int64(len(b)) {
		return nil, corruptf("dict blob truncated")
	}
	blob := b[blobStart:]
	if offs[0] != 0 || int64(offs[n]) != int64(len(blob)) {
		return nil, corruptf("dict blob bounds")
	}
	names := make([]string, n)
	for i := range names {
		lo, hi := offs[i], offs[i+1]
		if lo > hi {
			return nil, corruptf("dict offsets not monotone")
		}
		names[i] = stringView(blob[lo:hi])
	}
	return names, nil
}

// parseCSR decodes one adjacency direction's flat arrays, aliasing the
// section bytes where the host allows. Structural validation of the
// arrays themselves happens in graph.FromParts; this only sizes and
// slices the section safely.
func parseCSR(b []byte, nV int) (graph.AdjView, error) {
	if len(b) < 16 {
		return graph.AdjView{}, corruptf("csr header truncated")
	}
	nE := int64(u64at(b, 0))
	gotV := int64(u32at(b, 8))
	nRuns := int64(u32at(b, 12))
	if gotV != int64(nV) {
		return graph.AdjView{}, corruptf("csr |V|=%d, dictionary |V|=%d", gotV, nV)
	}
	c := cursor{b: b, pos: 16}
	off := c.u32s(gotV + 1)
	runOff := c.u32s(gotV + 1)
	runStart := c.u32s(nRuns)
	runLabel := c.labels(nRuns)
	edges := c.edges(nE)
	if c.err != nil {
		return graph.AdjView{}, c.err
	}
	return graph.AdjView{
		Edges:    edges,
		Off:      off,
		RunStart: runStart,
		RunLabel: runLabel,
		RunOff:   runOff,
	}, nil
}

// cursor slices aligned arrays out of a section with overflow-safe
// bounds checks.
type cursor struct {
	b   []byte
	pos int64
	err error
}

func (c *cursor) take(n, elem int64) []byte {
	if c.err != nil {
		return nil
	}
	c.pos = align8(c.pos)
	if n < 0 || n > (int64(len(c.b))-c.pos)/elem {
		c.err = corruptf("csr array truncated")
		return nil
	}
	out := c.b[c.pos : c.pos+n*elem]
	c.pos += n * elem
	return out
}

func (c *cursor) u32s(n int64) []uint32 {
	b := c.take(n, 4)
	if c.err != nil {
		return nil
	}
	return u32View(b, int(n))
}

func (c *cursor) labels(n int64) []labelset.Label {
	b := c.take(n, 1)
	if c.err != nil {
		return nil
	}
	return labelView(b, int(n))
}

func (c *cursor) edges(n int64) []graph.Edge {
	b := c.take(n, edgeBytes)
	if c.err != nil {
		return nil
	}
	return edgeView(b, int(n))
}

func u32at(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

func u64at(b []byte, i int) uint64 {
	return uint64(u32at(b, i)) | uint64(u32at(b, i+4))<<32
}
