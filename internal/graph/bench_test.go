package graph

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
)

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	gb := NewBuilder()
	for i := 0; i < n; i++ {
		gb.Vertex("v" + strconv.Itoa(i))
	}
	for i := 0; i < 8; i++ {
		gb.Label("l" + strconv.Itoa(i))
	}
	for i := 0; i < m; i++ {
		gb.AddEdge(VertexID(rng.Intn(n)), Label(rng.Intn(8)), VertexID(rng.Intn(n)))
	}
	return gb.Build()
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	type edge struct {
		s, o VertexID
		l    Label
	}
	const n, m = 10000, 40000
	edges := make([]edge, m)
	for i := range edges {
		edges[i] = edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), Label(rng.Intn(8))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb := NewBuilder()
		for j := 0; j < n; j++ {
			gb.Vertex("v" + strconv.Itoa(j))
		}
		for j := 0; j < 8; j++ {
			gb.Label("l" + strconv.Itoa(j))
		}
		for _, e := range edges {
			gb.AddEdge(e.s, e.l, e.o)
		}
		g := gb.Build()
		if g.NumEdges() != m {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 10000, 40000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(VertexID(rng.Intn(10000)), Label(rng.Intn(8)), VertexID(rng.Intn(10000)))
	}
}

func BenchmarkSnapshotWrite(b *testing.B) {
	g := benchGraph(b, 10000, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotRead(b *testing.B) {
	g := benchGraph(b, 10000, 40000)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
