package graph

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"

	"lscr/internal/labelset"
)

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	gb := NewBuilder()
	for i := 0; i < n; i++ {
		gb.Vertex("v" + strconv.Itoa(i))
	}
	for i := 0; i < 8; i++ {
		gb.Label("l" + strconv.Itoa(i))
	}
	for i := 0; i < m; i++ {
		gb.AddEdge(VertexID(rng.Intn(n)), Label(rng.Intn(8)), VertexID(rng.Intn(n)))
	}
	return gb.Build()
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	type edge struct {
		s, o VertexID
		l    Label
	}
	const n, m = 10000, 40000
	edges := make([]edge, m)
	for i := range edges {
		edges[i] = edge{VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), Label(rng.Intn(8))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb := NewBuilder()
		for j := 0; j < n; j++ {
			gb.Vertex("v" + strconv.Itoa(j))
		}
		for j := 0; j < 8; j++ {
			gb.Label("l" + strconv.Itoa(j))
		}
		for _, e := range edges {
			gb.AddEdge(e.s, e.l, e.o)
		}
		g := gb.Build()
		if g.NumEdges() != m {
			b.Fatal("bad build")
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 10000, 40000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(VertexID(rng.Intn(10000)), Label(rng.Intn(8)), VertexID(rng.Intn(10000)))
	}
}

// hubGraph has one vertex of out-degree `deg` — the shape where HasEdge's
// binary search over the sorted CSR run beats the seed layout's linear
// scan by orders of magnitude, and where the label-run index pays off
// most.
func hubGraph(b *testing.B, deg int) (*Graph, VertexID) {
	b.Helper()
	gb := NewBuilder()
	hub := gb.Vertex("hub")
	for i := 0; i < 8; i++ {
		gb.Label("l" + strconv.Itoa(i))
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < deg; i++ {
		gb.AddEdge(hub, Label(rng.Intn(8)), gb.Vertex("s"+strconv.Itoa(i)))
	}
	return gb.Build(), hub
}

// BenchmarkHasEdgeHub is the regression guard for HasEdge's complexity:
// with a 20k-degree hub the pre-CSR linear scan averaged ~10k edge
// comparisons per probe; the binary search does ~15.
func BenchmarkHasEdgeHub(b *testing.B) {
	g, hub := hubGraph(b, 20000)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(hub, Label(rng.Intn(8)), VertexID(rng.Intn(20000)))
	}
}

// BenchmarkScan compares the two adjacency access patterns on a selective
// 1-of-8-labels constraint over a high-degree vertex: "labeled" walks only
// the matching label run via the run index, "filter" (the seed layout's
// pattern, via WithoutLabelIndex) scans all edges and tests each label.
func BenchmarkScan(b *testing.B) {
	g, hub := hubGraph(b, 20000)
	L := labelset.New(3)
	for _, mode := range []struct {
		name string
		g    *Graph
	}{
		{"labeled", g},
		{"filter", g.WithoutLabelIndex()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				it := mode.g.OutLabeled(hub, L)
				for run, ok := it.Next(); ok; run, ok = it.Next() {
					total += len(run)
				}
			}
			if total == 0 {
				b.Fatal("no edges matched")
			}
		})
	}
}

func BenchmarkSnapshotWrite(b *testing.B) {
	g := benchGraph(b, 10000, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotRead(b *testing.B) {
	g := benchGraph(b, 10000, 40000)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
