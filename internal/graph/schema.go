package graph

import "sort"

// Schema is the RDFS store LS of Definition 2.1: it records class
// membership ("rdf:type"), the class hierarchy ("rdfs:subClassOf") and
// property domains/ranges. INS's landmark selection (Algorithm 3, line 1)
// consults it to pick instance vertices of randomly chosen classes.
//
// A Schema is mutable while the Builder is live and should be treated as
// read-only once the Graph is built.
type Schema struct {
	classes    map[string]bool
	instances  map[string][]VertexID // class name -> instance vertices
	classOf    map[VertexID][]string // vertex -> class names
	subClassOf map[string][]string   // class -> super classes
	domains    map[string]string     // property -> domain class
	ranges     map[string]string     // property -> range class
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{
		classes:    make(map[string]bool),
		instances:  make(map[string][]VertexID),
		classOf:    make(map[VertexID][]string),
		subClassOf: make(map[string][]string),
		domains:    make(map[string]string),
		ranges:     make(map[string]string),
	}
}

// AddClass declares a class.
func (s *Schema) AddClass(name string) { s.classes[name] = true }

// AddInstance records that vertex v is an instance of class.
func (s *Schema) AddInstance(class string, v VertexID) {
	s.classes[class] = true
	s.instances[class] = append(s.instances[class], v)
	s.classOf[v] = append(s.classOf[v], class)
}

// AddSubClassOf records class ⊑ super.
func (s *Schema) AddSubClassOf(class, super string) {
	s.classes[class] = true
	s.classes[super] = true
	s.subClassOf[class] = append(s.subClassOf[class], super)
}

// SetDomain records rdfs:domain of a property.
func (s *Schema) SetDomain(property, class string) { s.domains[property] = class }

// SetRange records rdfs:range of a property.
func (s *Schema) SetRange(property, class string) { s.ranges[property] = class }

// Classes returns all declared class names, sorted for determinism.
func (s *Schema) Classes() []string {
	out := make([]string, 0, len(s.classes))
	for c := range s.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Instances returns the instance vertices of class. The slice aliases
// internal storage and must not be mutated.
func (s *Schema) Instances(class string) []VertexID { return s.instances[class] }

// ClassesOf returns the classes vertex v is an instance of.
func (s *Schema) ClassesOf(v VertexID) []string { return s.classOf[v] }

// IsInstance reports whether v is a recorded instance of class.
func (s *Schema) IsInstance(v VertexID, class string) bool {
	for _, c := range s.classOf[v] {
		if c == class {
			return true
		}
	}
	return false
}

// SuperClasses returns the direct superclasses of class.
func (s *Schema) SuperClasses(class string) []string { return s.subClassOf[class] }

// Domain returns the rdfs:domain of property, if recorded.
func (s *Schema) Domain(property string) (string, bool) {
	c, ok := s.domains[property]
	return c, ok
}

// Range returns the rdfs:range of property, if recorded.
func (s *Schema) Range(property string) (string, bool) {
	c, ok := s.ranges[property]
	return c, ok
}

// NumInstances returns the total number of (class, instance) records.
func (s *Schema) NumInstances() int {
	n := 0
	for _, vs := range s.instances {
		n += len(vs)
	}
	return n
}
