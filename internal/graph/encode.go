package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Binary KG snapshots. Loading a large KG from triples re-parses and
// re-interns every name; the snapshot format stores the dictionaries and
// edge list directly and reloads about an order of magnitude faster.
//
// Layout (little-endian, CRC32 footer):
//
//	magic "LSCRKG01"
//	|L| | label names (len-prefixed)
//	|V| | vertex names (len-prefixed)
//	|E| | edges (subject u32, label u8, object u32)
//	schema: classes, instances per class, subclass pairs, domains, ranges
//	crc32 of everything above
var (
	// ErrBadSnapshot reports a malformed or corrupt snapshot stream.
	ErrBadSnapshot = errors.New("graph: bad snapshot")
)

const snapshotMagic = "LSCRKG01"

// WriteTo serialises the graph (with schema). It implements io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(w)
	out := &snapWriter{w: io.MultiWriter(bw, crc)}

	// The observational accessors (not the base arrays) drive the walk,
	// so an overlay view snapshots its merged state; reloading yields the
	// compacted graph.
	out.raw([]byte(snapshotMagic))
	out.u32(uint32(g.NumLabels()))
	for l := 0; l < g.NumLabels(); l++ {
		out.str(g.LabelName(Label(l)))
	}
	out.u32(uint32(g.NumVertices()))
	for v := 0; v < g.NumVertices(); v++ {
		out.str(g.VertexName(VertexID(v)))
	}
	out.u32(uint32(g.NumEdges()))
	g.Triples(func(tr Triple) bool {
		out.u32(uint32(tr.Subject))
		out.raw([]byte{byte(tr.Label)})
		out.u32(uint32(tr.Object))
		return true
	})

	s := g.schema
	classes := s.Classes()
	out.u32(uint32(len(classes)))
	for _, c := range classes {
		out.str(c)
		inst := s.Instances(c)
		out.u32(uint32(len(inst)))
		for _, v := range inst {
			out.u32(uint32(v))
		}
		sup := s.SuperClasses(c)
		out.u32(uint32(len(sup)))
		for _, sc := range sup {
			out.str(sc)
		}
	}
	out.u32(uint32(len(s.domains)))
	for _, p := range sortedStrings(s.domains) {
		out.str(p)
		out.str(s.domains[p])
	}
	out.u32(uint32(len(s.ranges)))
	for _, p := range sortedStrings(s.ranges) {
		out.str(p)
		out.str(s.ranges[p])
	}
	if out.err != nil {
		return out.n, out.err
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := bw.Write(foot[:]); err != nil {
		return out.n, err
	}
	if err := bw.Flush(); err != nil {
		return out.n, err
	}
	return out.n + 4, nil
}

// ReadSnapshot deserialises a graph written by WriteTo.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	in := &snapReader{r: io.TeeReader(br, crc)}

	magic := in.raw(len(snapshotMagic))
	if in.err != nil || string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	b := NewBuilder()
	nLabels := int(in.u32())
	for i := 0; i < nLabels && in.err == nil; i++ {
		b.Label(in.str())
	}
	nVerts := int(in.u32())
	for i := 0; i < nVerts && in.err == nil; i++ {
		b.Vertex(in.str())
	}
	nEdges := int(in.u32())
	for i := 0; i < nEdges && in.err == nil; i++ {
		s := in.u32()
		l := in.raw(1)
		o := in.u32()
		if in.err != nil {
			break
		}
		if int(s) >= nVerts || int(o) >= nVerts || int(l[0]) >= nLabels {
			return nil, fmt.Errorf("%w: edge out of range", ErrBadSnapshot)
		}
		b.AddEdge(VertexID(s), Label(l[0]), VertexID(o))
	}
	nClasses := int(in.u32())
	for i := 0; i < nClasses && in.err == nil; i++ {
		class := in.str()
		b.Schema().AddClass(class)
		nInst := int(in.u32())
		for j := 0; j < nInst && in.err == nil; j++ {
			v := in.u32()
			if int(v) >= nVerts {
				return nil, fmt.Errorf("%w: instance out of range", ErrBadSnapshot)
			}
			b.Schema().AddInstance(class, VertexID(v))
		}
		nSup := int(in.u32())
		for j := 0; j < nSup && in.err == nil; j++ {
			b.Schema().AddSubClassOf(class, in.str())
		}
	}
	nDom := int(in.u32())
	for i := 0; i < nDom && in.err == nil; i++ {
		p := in.str()
		b.Schema().SetDomain(p, in.str())
	}
	nRan := int(in.u32())
	for i := 0; i < nRan && in.err == nil; i++ {
		p := in.str()
		b.Schema().SetRange(p, in.str())
	}
	if in.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, in.err)
	}
	want := crc.Sum32()
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return nil, fmt.Errorf("%w: missing footer", ErrBadSnapshot)
	}
	if binary.LittleEndian.Uint32(foot[:]) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	return b.Build(), nil
}

type snapWriter struct {
	w   io.Writer
	n   int64
	err error
	buf [4]byte
}

func (s *snapWriter) raw(p []byte) {
	if s.err != nil {
		return
	}
	n, err := s.w.Write(p)
	s.n += int64(n)
	s.err = err
}

func (s *snapWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(s.buf[:], v)
	s.raw(s.buf[:])
}

func (s *snapWriter) str(v string) {
	s.u32(uint32(len(v)))
	s.raw([]byte(v))
}

type snapReader struct {
	r   io.Reader
	err error
	buf [4]byte
}

func (s *snapReader) raw(n int) []byte {
	if s.err != nil {
		return nil
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(s.r, p); err != nil {
		s.err = err
		return nil
	}
	return p
}

func (s *snapReader) u32() uint32 {
	if s.err != nil {
		return 0
	}
	if _, err := io.ReadFull(s.r, s.buf[:]); err != nil {
		s.err = err
		return 0
	}
	return binary.LittleEndian.Uint32(s.buf[:])
}

func (s *snapReader) str() string {
	n := s.u32()
	if s.err != nil || n > 1<<24 {
		if s.err == nil {
			s.err = fmt.Errorf("string length %d too large", n)
		}
		return ""
	}
	return string(s.raw(int(n)))
}

func sortedStrings(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
