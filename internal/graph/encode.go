package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"lscr/internal/labelset"
)

// Binary KG snapshots. Loading a large KG from triples re-parses and
// re-interns every name; the snapshot format stores the dictionaries and
// edge list directly and reloads about an order of magnitude faster.
//
// Layout (little-endian, CRC32 footer):
//
//	magic "LSCRKG01"
//	|L| | label names (len-prefixed)
//	|V| | vertex names (len-prefixed)
//	|E| | edges (subject u32, label u8, object u32)
//	schema: classes, instances per class, subclass pairs, domains, ranges
//	crc32 of everything above
var (
	// ErrCorrupt reports untrusted input (a snapshot, index or segment
	// stream) that is truncated, malformed or hostile. Every decoder in
	// the persistence stack wraps it, so callers can classify any
	// bad-bytes failure with one errors.Is regardless of which layer
	// noticed first.
	ErrCorrupt = errors.New("graph: corrupt or truncated input")
	// ErrBadSnapshot reports a malformed or corrupt snapshot stream. It
	// wraps ErrCorrupt.
	ErrBadSnapshot = fmt.Errorf("bad snapshot: %w", ErrCorrupt)
)

const snapshotMagic = "LSCRKG01"

// WriteTo serialises the graph (with schema). It implements io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(w)
	out := &snapWriter{w: io.MultiWriter(bw, crc)}

	// The observational accessors (not the base arrays) drive the walk,
	// so an overlay view snapshots its merged state; reloading yields the
	// compacted graph.
	out.raw([]byte(snapshotMagic))
	out.u32(uint32(g.NumLabels()))
	for l := 0; l < g.NumLabels(); l++ {
		out.str(g.LabelName(Label(l)))
	}
	out.u32(uint32(g.NumVertices()))
	for v := 0; v < g.NumVertices(); v++ {
		out.str(g.VertexName(VertexID(v)))
	}
	out.u32(uint32(g.NumEdges()))
	g.Triples(func(tr Triple) bool {
		out.u32(uint32(tr.Subject))
		out.raw([]byte{byte(tr.Label)})
		out.u32(uint32(tr.Object))
		return true
	})
	g.schema.writeTo(out)
	if out.err != nil {
		return out.n, out.err
	}
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := bw.Write(foot[:]); err != nil {
		return out.n, err
	}
	if err := bw.Flush(); err != nil {
		return out.n, err
	}
	return out.n + 4, nil
}

// WriteSchema serialises s alone (classes, instances, subclass pairs,
// domains, ranges) — the schema section of a segment. It implements the
// same byte layout the snapshot format embeds.
func WriteSchema(w io.Writer, s *Schema) (int64, error) {
	out := &snapWriter{w: w}
	s.writeTo(out)
	return out.n, out.err
}

func (s *Schema) writeTo(out *snapWriter) {
	classes := s.Classes()
	out.u32(uint32(len(classes)))
	for _, c := range classes {
		out.str(c)
		inst := s.Instances(c)
		out.u32(uint32(len(inst)))
		for _, v := range inst {
			out.u32(uint32(v))
		}
		sup := s.SuperClasses(c)
		out.u32(uint32(len(sup)))
		for _, sc := range sup {
			out.str(sc)
		}
	}
	out.u32(uint32(len(s.domains)))
	for _, p := range sortedStrings(s.domains) {
		out.str(p)
		out.str(s.domains[p])
	}
	out.u32(uint32(len(s.ranges)))
	for _, p := range sortedStrings(s.ranges) {
		out.str(p)
		out.str(s.ranges[p])
	}
}

// ReadSnapshot deserialises a graph written by WriteTo. Length prefixes
// are untrusted: every count is either bounded up front (the label
// universe) or consumed incrementally so a hostile count fails with
// ErrBadSnapshot after reading at most the bytes actually present,
// never by allocating what the prefix promises.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	in := &snapReader{r: io.TeeReader(br, crc)}

	magic := in.raw(len(snapshotMagic))
	if in.err != nil || string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	b := NewBuilder()
	nLabels := int(in.u32())
	if in.err == nil && nLabels > labelset.MaxLabels {
		return nil, fmt.Errorf("%w: label count %d exceeds universe %d", ErrBadSnapshot, nLabels, labelset.MaxLabels)
	}
	for i := 0; i < nLabels && in.err == nil; i++ {
		b.Label(in.str())
	}
	nVerts := int(in.u32())
	for i := 0; i < nVerts && in.err == nil; i++ {
		b.Vertex(in.str())
	}
	nEdges := int(in.u32())
	for i := 0; i < nEdges && in.err == nil; i++ {
		s := in.u32()
		l := in.raw(1)
		o := in.u32()
		if in.err != nil {
			break
		}
		if int(s) >= nVerts || int(o) >= nVerts || int(l[0]) >= nLabels {
			return nil, fmt.Errorf("%w: edge out of range", ErrBadSnapshot)
		}
		b.AddEdge(VertexID(s), Label(l[0]), VertexID(o))
	}
	if in.err == nil {
		in.err = readSchemaInto(in, b.Schema(), nVerts)
	}
	if in.err != nil {
		if errors.Is(in.err, ErrCorrupt) {
			return nil, in.err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, in.err)
	}
	want := crc.Sum32()
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return nil, fmt.Errorf("%w: missing footer", ErrBadSnapshot)
	}
	if binary.LittleEndian.Uint32(foot[:]) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	return b.Build(), nil
}

// ReadSchema deserialises a schema written by WriteSchema from its
// exact section bytes, validating instance vertices against nVerts. It
// is the segment boot path's schema decoder: a flat cursor over b (the
// snapshot path keeps its streaming reader), instance lists decoded in
// bulk, and the per-vertex class lists carved out of one backing array
// — tens of thousands of per-vertex appends otherwise dominate opening
// a segment. Every count is validated against the bytes remaining
// before anything is allocated for it.
func ReadSchema(b []byte, nVerts int) (*Schema, error) {
	in := &sectionCursor{b: b}
	s := NewSchema()
	type classRec struct {
		name string
		inst []VertexID
	}
	nClasses := int(in.count(8)) // per class ≥ name len u32 + instance count u32
	var recs []classRec
	for i := 0; i < nClasses && in.err == nil; i++ {
		class := in.str()
		if in.err != nil {
			break
		}
		s.AddClass(class)
		nInst := int(in.count(4))
		inst := make([]VertexID, nInst)
		for j := range inst {
			v := in.u32()
			if in.err == nil && int(v) >= nVerts {
				return nil, fmt.Errorf("%w: schema instance out of range", ErrCorrupt)
			}
			inst[j] = VertexID(v)
		}
		if len(inst) > 0 {
			s.instances[class] = inst
			recs = append(recs, classRec{class, inst})
		}
		nSup := int(in.count(4))
		for j := 0; j < nSup && in.err == nil; j++ {
			s.AddSubClassOf(class, in.str())
		}
	}
	nDom := int(in.count(8))
	for i := 0; i < nDom && in.err == nil; i++ {
		p := in.str()
		s.SetDomain(p, in.str())
	}
	nRan := int(in.count(8))
	for i := 0; i < nRan && in.err == nil; i++ {
		p := in.str()
		s.SetRange(p, in.str())
	}
	if in.err != nil {
		return nil, fmt.Errorf("%w: schema: %v", ErrCorrupt, in.err)
	}
	if in.off != len(in.b) {
		return nil, fmt.Errorf("%w: schema: %d trailing bytes", ErrCorrupt, len(in.b)-in.off)
	}

	// classOf: a counting pass sizes one shared backing array; the fill
	// pass preserves the per-vertex class order AddInstance would have
	// produced (classes in serialised order). Sub-slices are
	// capacity-trimmed so a later AddInstance reallocates instead of
	// clobbering a neighbouring vertex's list.
	cnt := make([]int32, nVerts)
	total := 0
	for _, r := range recs {
		for _, v := range r.inst {
			cnt[v]++
		}
		total += len(r.inst)
	}
	backing := make([]string, total)
	start := make([]int32, nVerts)
	sum := int32(0)
	nWith := 0
	for v, c := range cnt {
		start[v] = sum
		sum += c
		if c > 0 {
			nWith++
		}
	}
	next := append([]int32(nil), start...)
	for _, r := range recs {
		for _, v := range r.inst {
			backing[next[v]] = r.name
			next[v]++
		}
	}
	s.classOf = make(map[VertexID][]string, nWith)
	for v := 0; v < nVerts; v++ {
		if cnt[v] == 0 {
			continue
		}
		lo, hi := start[v], start[v]+cnt[v]
		s.classOf[VertexID(v)] = backing[lo:hi:hi]
	}
	return s, nil
}

// sectionCursor walks a section's bytes with bounds-checked slice
// reads; the first failure sticks in err.
type sectionCursor struct {
	b   []byte
	off int
	err error
}

func (c *sectionCursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if len(c.b)-c.off < 4 {
		c.err = fmt.Errorf("%w: section truncated", ErrCorrupt)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *sectionCursor) str() string {
	n := int(c.u32())
	if c.err != nil {
		return ""
	}
	if n > len(c.b)-c.off {
		c.err = fmt.Errorf("%w: string past section end", ErrCorrupt)
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

// count reads a u32 element count whose elements occupy at least
// minElemBytes each and rejects counts the remaining bytes cannot
// possibly back.
func (c *sectionCursor) count(minElemBytes int) uint32 {
	n := c.u32()
	if c.err == nil && int64(n)*int64(minElemBytes) > int64(len(c.b)-c.off) {
		c.err = fmt.Errorf("%w: count %d exceeds remaining section", ErrCorrupt, n)
		return 0
	}
	return n
}

func readSchemaInto(in *snapReader, s *Schema, nVerts int) error {
	nClasses := int(in.u32())
	for i := 0; i < nClasses && in.err == nil; i++ {
		class := in.str()
		s.AddClass(class)
		nInst := int(in.u32())
		for j := 0; j < nInst && in.err == nil; j++ {
			v := in.u32()
			if in.err == nil && int(v) >= nVerts {
				return fmt.Errorf("%w: instance out of range", ErrBadSnapshot)
			}
			s.AddInstance(class, VertexID(v))
		}
		nSup := int(in.u32())
		for j := 0; j < nSup && in.err == nil; j++ {
			s.AddSubClassOf(class, in.str())
		}
	}
	nDom := int(in.u32())
	for i := 0; i < nDom && in.err == nil; i++ {
		p := in.str()
		s.SetDomain(p, in.str())
	}
	nRan := int(in.u32())
	for i := 0; i < nRan && in.err == nil; i++ {
		p := in.str()
		s.SetRange(p, in.str())
	}
	return in.err
}

type snapWriter struct {
	w   io.Writer
	n   int64
	err error
	buf [4]byte
}

func (s *snapWriter) raw(p []byte) {
	if s.err != nil {
		return
	}
	n, err := s.w.Write(p)
	s.n += int64(n)
	s.err = err
}

func (s *snapWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(s.buf[:], v)
	s.raw(s.buf[:])
}

func (s *snapWriter) str(v string) {
	s.u32(uint32(len(v)))
	s.raw([]byte(v))
}

type snapReader struct {
	r   io.Reader
	err error
	buf [4]byte
}

func (s *snapReader) raw(n int) []byte {
	if s.err != nil {
		return nil
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(s.r, p); err != nil {
		s.err = err
		return nil
	}
	return p
}

func (s *snapReader) u32() uint32 {
	if s.err != nil {
		return 0
	}
	if _, err := io.ReadFull(s.r, s.buf[:]); err != nil {
		s.err = err
		return 0
	}
	return binary.LittleEndian.Uint32(s.buf[:])
}

func (s *snapReader) str() string {
	n := s.u32()
	if s.err != nil || n > 1<<24 {
		if s.err == nil {
			s.err = fmt.Errorf("%w: string length %d too large", ErrCorrupt, n)
		}
		return ""
	}
	return string(s.raw(int(n)))
}

func sortedStrings(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
