package graph

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// deltaModel is the test-side truth the overlay must agree with: the
// dictionaries in intern order and the surviving edge multiset, kept as
// a list so deletions can remove exactly one instance.
type deltaModel struct {
	names   []string
	nameIDs map[string]VertexID
	labels  []string
	edges   []Triple
}

func (m *deltaModel) vertex(name string) VertexID {
	if id, ok := m.nameIDs[name]; ok {
		return id
	}
	id := VertexID(len(m.names))
	m.names = append(m.names, name)
	m.nameIDs[name] = id
	return id
}

// build rebuilds the model from scratch through a Builder — the
// "engine rebuilt on the final edge set" the overlay must match.
func (m *deltaModel) build() *Graph {
	b := NewBuilder()
	for _, l := range m.labels {
		b.Label(l)
	}
	for _, v := range m.names {
		b.Vertex(v)
	}
	for _, e := range m.edges {
		b.AddEdge(e.Subject, e.Label, e.Object)
	}
	return b.Build()
}

// runDeltaScript builds a random base graph, applies `batches` random
// mutation batches through Delta.Commit (mirrored into the model), and
// returns the final overlay view plus the model.
func runDeltaScript(seed int64, n, m, nLabels, batches, opsPerBatch int) (*Graph, *deltaModel, error) {
	rng := rand.New(rand.NewSource(seed))
	b, edges := randomTriples(seed, n, m, nLabels)
	g := b.Build()

	model := &deltaModel{nameIDs: make(map[string]VertexID)}
	for i := 0; i < n; i++ {
		model.vertex(vname(i))
	}
	for i := 0; i < nLabels; i++ {
		model.labels = append(model.labels, "l"+string(rune('a'+i)))
	}
	model.edges = append(model.edges, edges...)

	for bi := 0; bi < batches; bi++ {
		d := NewDelta(g)
		for oi := 0; oi < opsPerBatch; oi++ {
			if len(model.edges) > 0 && rng.Intn(3) == 0 {
				// Delete one random surviving instance.
				i := rng.Intn(len(model.edges))
				e := model.edges[i]
				if err := d.DeleteEdge(e.Subject, e.Label, e.Object); err != nil {
					return nil, nil, fmt.Errorf("batch %d op %d: DeleteEdge(%v): %w", bi, oi, e, err)
				}
				model.edges = append(model.edges[:i], model.edges[i+1:]...)
				continue
			}
			// Insert, sometimes via a brand-new vertex name.
			sName := model.names[rng.Intn(len(model.names))]
			tName := model.names[rng.Intn(len(model.names))]
			if rng.Intn(4) == 0 {
				sName = fmt.Sprintf("w%d_%d", bi, oi)
			}
			l := Label(rng.Intn(nLabels))
			if err := d.AddEdgeNames(sName, "l"+string(rune('a'+int(l))), tName); err != nil {
				return nil, nil, fmt.Errorf("batch %d op %d: AddEdgeNames: %w", bi, oi, err)
			}
			model.edges = append(model.edges, Triple{model.vertex(sName), l, model.vertex(tName)})
		}
		var err error
		g, err = d.Commit()
		if err != nil {
			return nil, nil, fmt.Errorf("batch %d: Commit: %w", bi, err)
		}
	}
	return g, model, nil
}

// checkDeltaAgainstModel asserts the overlay view and its compaction are
// both observationally identical to a from-scratch rebuild on the final
// edge set: same dictionaries in the same ID order, same Out/In
// multisets, ordered Triples, HasEdge relation and label-run purity
// (via the shared CSR property checker), and byte-identical snapshots.
func checkDeltaAgainstModel(t *testing.T, g *Graph, model *deltaModel) {
	t.Helper()
	built := model.build()
	ref := newRefGraph(len(model.names), model.edges)

	if g.NumVertices() != len(model.names) || g.NumLabels() != len(model.labels) {
		t.Fatalf("overlay dims |V|=%d |L|=%d, want %d/%d",
			g.NumVertices(), g.NumLabels(), len(model.names), len(model.labels))
	}
	for i, name := range model.names {
		if g.VertexName(VertexID(i)) != name || g.Vertex(name) != VertexID(i) {
			t.Fatalf("vertex dictionary diverges at %d (%q)", i, name)
		}
	}
	for i, name := range model.labels {
		if g.LabelName(Label(i)) != name {
			t.Fatalf("label dictionary diverges at %d (%q)", i, name)
		}
		if l, ok := g.LabelByName(name); !ok || l != Label(i) {
			t.Fatalf("LabelByName(%q) = %v,%v want %d", name, l, ok, i)
		}
	}

	// The full CSR observational property suite, on the live overlay...
	checkCSRAgainstRef(t, g, ref, model.edges, len(model.labels))
	// ...and on its compaction.
	compacted := g.Compact()
	if compacted.HasOverlay() {
		t.Fatal("Compact left an overlay behind")
	}
	checkCSRAgainstRef(t, compacted, ref, model.edges, len(model.labels))

	// Apply-then-compact must equal build-from-final-edges bit for bit:
	// the snapshot serialisation is a total observation of the graph.
	var a, b bytes.Buffer
	if _, err := compacted.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := built.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("apply-then-compact snapshot differs from build-from-final-edges")
	}
	// The overlay view itself snapshots identically too (WriteTo walks
	// the merged observational state).
	var c bytes.Buffer
	if _, err := g.WriteTo(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Bytes(), b.Bytes()) {
		t.Fatal("overlay snapshot differs from build-from-final-edges")
	}
}

// Property: for random mutation scripts, apply-then-compact is
// observationally identical to building from the final edge set.
func TestDeltaCompactEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 40; i++ {
		n := rng.Intn(20) + 1
		m := rng.Intn(128)
		nLabels := rng.Intn(5) + 1
		batches := rng.Intn(4) + 1
		ops := rng.Intn(24) + 1
		seed := rng.Int63()
		t.Logf("shape %d: seed=%d n=%d m=%d labels=%d batches=%d ops=%d", i, seed, n, m, nLabels, batches, ops)
		g, model, err := runDeltaScript(seed, n, m, nLabels, batches, ops)
		if err != nil {
			t.Fatal(err)
		}
		checkDeltaAgainstModel(t, g, model)
	}
}

// FuzzDeltaCompactEquivalence drives the same equivalence from fuzzed
// script shapes, mirroring FuzzCSREquivalence.
func FuzzDeltaCompactEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(40), uint8(3), uint8(2), uint8(10))
	f.Add(int64(42), uint8(1), uint8(0), uint8(1), uint8(1), uint8(1))
	f.Add(int64(-7), uint8(19), uint8(200), uint8(5), uint8(3), uint8(30))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw, lRaw, bRaw, oRaw uint8) {
		n := int(nRaw%20) + 1
		m := int(mRaw % 128)
		nLabels := int(lRaw%5) + 1
		batches := int(bRaw%4) + 1
		ops := int(oRaw%24) + 1
		g, model, err := runDeltaScript(seed, n, m, nLabels, batches, ops)
		if err != nil {
			t.Fatal(err)
		}
		checkDeltaAgainstModel(t, g, model)
	})
}

// TestDeltaValidation pins the staging error contract: deletes of absent
// instances fail (multiset-aware against earlier staged ops), failed
// batches publish nothing, and empty commits return the view itself.
func TestDeltaValidation(t *testing.T) {
	b := NewBuilder()
	b.AddEdgeNames("a", "l", "b")
	b.AddEdgeNames("a", "l", "b") // parallel instance
	g := b.Build()
	a, l, bb := g.Vertex("a"), Label(0), g.Vertex("b")

	d := NewDelta(g)
	if err := d.DeleteEdge(a, l, bb); err != nil {
		t.Fatalf("first delete: %v", err)
	}
	if err := d.DeleteEdge(a, l, bb); err != nil {
		t.Fatalf("second delete (second instance): %v", err)
	}
	if err := d.DeleteEdge(a, l, bb); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("third delete: got %v, want ErrEdgeNotFound", err)
	}
	if err := d.DeleteEdge(a, Label(9), bb); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("unknown label delete: got %v, want ErrVertexRange", err)
	}
	h, err := d.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 0 || h.HasEdge(a, l, bb) {
		t.Fatalf("both instances should be gone: |E|=%d", h.NumEdges())
	}
	if g.NumEdges() != 2 || !g.HasEdge(a, l, bb) {
		t.Fatal("commit mutated the staged-against view")
	}

	// A delete staged after an add in the same batch must see the add.
	d2 := NewDelta(g)
	if err := d2.AddEdgeNames("x", "l", "y"); err != nil {
		t.Fatal(err)
	}
	if err := d2.DeleteEdge(d2.Vertex("x"), l, d2.Vertex("y")); err != nil {
		t.Fatalf("delete of same-batch add: %v", err)
	}

	// Empty commit: the view is returned unchanged, no overlay appears.
	d3 := NewDelta(g)
	h3, err := d3.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if h3 != g {
		t.Fatal("empty commit should return the view itself")
	}
}

// TestDeltaChainOverlayLog pins OverlaySize accounting across chained
// commits and the ReplayOnto catch-up path the compactor uses.
func TestDeltaChainOverlayLog(t *testing.T) {
	b := NewBuilder()
	b.AddEdgeNames("a", "l", "b")
	g0 := b.Build()

	d := NewDelta(g0)
	if err := d.AddEdgeNames("b", "l", "c"); err != nil {
		t.Fatal(err)
	}
	g1, err := d.Commit()
	if err != nil {
		t.Fatal(err)
	}
	d = NewDelta(g1)
	if err := d.AddEdgeNames("c", "m", "d"); err != nil {
		t.Fatal(err)
	}
	if l, ok := g1.LabelByName("l"); !ok {
		t.Fatal("label l missing")
	} else if err := d.DeleteEdge(g1.Vertex("a"), l, g1.Vertex("b")); err != nil {
		t.Fatal(err)
	}
	g2, err := d.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if g1.OverlaySize() != 1 || g2.OverlaySize() != 3 {
		t.Fatalf("overlay sizes %d/%d, want 1/3", g1.OverlaySize(), g2.OverlaySize())
	}

	// Compact g1's state, then replay g2's suffix onto it: the result
	// must snapshot identically to g2.
	base := g1.Compact()
	caught, err := ReplayOnto(base, g2, g1.OverlaySize())
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if _, err := g2.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := caught.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("replayed suffix diverges from the live overlay view")
	}
}
