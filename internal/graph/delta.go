package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"lscr/internal/labelset"
)

// Live mutations. A Graph built by Build is a frozen CSR; Delta stages a
// batch of edge insertions/deletions (plus new-vertex and new-label
// interning) against any Graph view and Commit produces a NEW immutable
// Graph that layers the accumulated changes over the same base CSR as a
// small overlay. The base arrays are never modified, so readers holding
// the old Graph keep a fully consistent view forever — the engine layer
// swaps the current view atomically (RCU-style epochs).
//
// # Overlay layout
//
// The overlay stores, per direction, the COMPLETE merged adjacency row of
// every vertex touched by a mutation since the base was built: base edges
// minus deletions plus insertions, (label, head)-sorted with a label-run
// index — the exact shape of a base CSR row, packed into one mini-CSR
// indexed by a dense slot number. OutRuns/InRuns and friends answer from
// the patch row when the vertex is touched and from the base row
// otherwise, so the hot loops keep their run-scan shape: merged label
// runs, deletions already masked, zero per-edge branching. An untouched
// read costs one nil check (no overlay) or one bitmap probe.
//
// Deletions use multiset semantics (the graph is a multigraph): one
// DeleteEdge removes one instance of the triple and fails with
// ErrEdgeNotFound when no instance remains.
//
// Compact folds the overlay back into a fresh base CSR that is
// observationally identical to the overlay view (same dictionaries in
// the same ID order, same ordered Triples, same runs) — the property the
// delta fuzz suite pins down.

// Mutation errors.
var (
	// ErrEdgeNotFound reports a DeleteEdge whose triple has no remaining
	// instance in the staged view.
	ErrEdgeNotFound = errors.New("graph: edge not found")
	// ErrLabelSpace reports label interning beyond labelset.MaxLabels.
	ErrLabelSpace = fmt.Errorf("graph: label universe exceeds %d", labelset.MaxLabels)
	// ErrVertexRange reports an edge endpoint outside the staged view.
	ErrVertexRange = errors.New("graph: vertex out of range")
)

// deltaOp is one resolved edge mutation of the overlay log, in commit
// order. The log is what a compactor replays onto a fresh base when
// mutations land while it is rebuilding.
type deltaOp struct {
	del bool
	t   Triple
}

// overlay is the immutable delta layered over a base CSR. All slices and
// maps are frozen at Commit; successive commits build new overlays.
type overlay struct {
	baseV int // vertex-dictionary size of the base
	baseL int // label-dictionary size of the base

	names    []string // new vertices: VertexID = baseV + position
	nameIDs  map[string]VertexID
	labels   []string // new labels: Label = baseL + position
	labelIDs map[string]Label

	log     []deltaOp
	added   int // edge insertions in log
	deleted int // edge deletions in log

	out, in patchAdj
}

// patchAdj holds the merged adjacency rows of the touched vertices of one
// direction as a mini-CSR: row i of a covers the vertex with slot i.
type patchAdj struct {
	touched []uint64 // bitmap over all view vertices
	slot    map[VertexID]uint32
	a       adjacency
}

// has reports whether v owns a patch row.
func (p *patchAdj) has(v VertexID) bool {
	w := uint(v) >> 6
	return w < uint(len(p.touched)) && p.touched[w]&(1<<(uint(v)&63)) != 0
}

// row returns the merged edge row of v, falling back to the base row for
// untouched base vertices; untouched new vertices have no edges.
func (p *patchAdj) row(v VertexID, base *adjacency, baseV int) []Edge {
	if p.has(v) {
		return p.a.run(VertexID(p.slot[v]))
	}
	if int(v) < baseV {
		return base.run(v)
	}
	return nil
}

// runs is row as the raw label-run view.
func (p *patchAdj) runs(v VertexID, base *adjacency, baseV int) EdgeRuns {
	if p.has(v) {
		return p.a.runs(VertexID(p.slot[v]))
	}
	if int(v) < baseV {
		return base.runs(v)
	}
	return EdgeRuns{}
}

// labeled is row as the constraint-filtered run iterator.
func (p *patchAdj) labeled(v VertexID, L labelset.Set, base *adjacency, baseV int) LabeledEdges {
	if p.has(v) {
		return p.a.labeled(VertexID(p.slot[v]), L)
	}
	if int(v) < baseV {
		return base.labeled(v, L)
	}
	return LabeledEdges{}
}

// with is row restricted to one exact label.
func (p *patchAdj) with(v VertexID, l Label, base *adjacency, baseV int) []Edge {
	if p.has(v) {
		return p.a.with(VertexID(p.slot[v]), l)
	}
	if int(v) < baseV {
		return base.with(v, l)
	}
	return nil
}

// Delta stages one batch of mutations against a Graph view. It is not
// safe for concurrent use; the engine layer serializes writers. Staging
// never modifies the view — Commit returns a new Graph and leaves the
// old one (and the Delta) untouched.
type Delta struct {
	g *Graph

	names    []string // interned beyond the view, in intern order
	nameIDs  map[string]VertexID
	labels   []string
	labelIDs map[string]Label

	ops []deltaOp
	// counts tracks the staged multiset delta per triple so DeleteEdge
	// can validate against (view + earlier staged ops).
	counts map[Triple]int
}

// NewDelta stages against the view g.
func NewDelta(g *Graph) *Delta {
	return &Delta{
		g:        g,
		nameIDs:  make(map[string]VertexID),
		labelIDs: make(map[string]Label),
		counts:   make(map[Triple]int),
	}
}

// Ops returns the number of staged edge operations.
func (d *Delta) Ops() int { return len(d.ops) }

// EdgeOp is one resolved edge mutation in commit order, exported for the
// index-maintenance layer: incremental index updates consume exactly the
// validated op stream a batch commits.
type EdgeOp struct {
	Del bool
	T   Triple
}

// EdgeOps returns the staged edge operations in commit order.
func (d *Delta) EdgeOps() []EdgeOp {
	ops := make([]EdgeOp, len(d.ops))
	for i, op := range d.ops {
		ops[i] = EdgeOp{Del: op.del, T: op.t}
	}
	return ops
}

// OverlayEdgeOps returns the overlay log suffix log[from:] as edge
// operations — the mutations that landed after a compactor snapshotted
// its epoch at from logged ops, which its rebuilt index must be
// maintained through.
func (g *Graph) OverlayEdgeOps(from int) []EdgeOp {
	if g.ov == nil || from >= len(g.ov.log) {
		return nil
	}
	log := g.ov.log[from:]
	ops := make([]EdgeOp, len(log))
	for i, op := range log {
		ops[i] = EdgeOp{Del: op.del, T: op.t}
	}
	return ops
}

// NewVertices returns the number of vertices staged beyond the view.
func (d *Delta) NewVertices() int { return len(d.names) }

// NewLabels returns the number of labels staged beyond the view.
func (d *Delta) NewLabels() int { return len(d.labels) }

// LookupVertex resolves a vertex name against the view plus the staged
// interns, without creating it.
func (d *Delta) LookupVertex(name string) (VertexID, bool) {
	if id := d.g.Vertex(name); id != NoVertex {
		return id, true
	}
	id, ok := d.nameIDs[name]
	return id, ok
}

// LookupLabel is LookupVertex for labels.
func (d *Delta) LookupLabel(name string) (Label, bool) {
	if l, ok := d.g.LabelByName(name); ok {
		return l, true
	}
	l, ok := d.labelIDs[name]
	return l, ok
}

// Vertex interns a vertex by name, creating it (beyond the view) on
// first use.
func (d *Delta) Vertex(name string) VertexID {
	if id, ok := d.LookupVertex(name); ok {
		return id
	}
	id := VertexID(d.g.NumVertices() + len(d.names))
	d.names = append(d.names, name)
	d.nameIDs[name] = id
	return id
}

// Label interns a label by name. Unlike Builder.Label it returns
// ErrLabelSpace instead of panicking when the single-word label universe
// is full — mutation batches are client input.
func (d *Delta) Label(name string) (Label, error) {
	if l, ok := d.LookupLabel(name); ok {
		return l, nil
	}
	if d.g.NumLabels()+len(d.labels) >= labelset.MaxLabels {
		return 0, fmt.Errorf("%w (adding %q)", ErrLabelSpace, name)
	}
	l := Label(d.g.NumLabels() + len(d.labels))
	d.labels = append(d.labels, name)
	d.labelIDs[name] = l
	return l, nil
}

// numVertices is the staged view's vertex count.
func (d *Delta) numVertices() int { return d.g.NumVertices() + len(d.names) }

// numLabels is the staged view's label count.
func (d *Delta) numLabels() int { return d.g.NumLabels() + len(d.labels) }

// AddEdge stages the insertion of (s, l, t). Parallel edges and
// self-loops are permitted, as in Builder.
func (d *Delta) AddEdge(s VertexID, l Label, t VertexID) error {
	if int(s) >= d.numVertices() || int(t) >= d.numVertices() {
		return fmt.Errorf("%w: (%d, %d, %d)", ErrVertexRange, s, l, t)
	}
	if int(l) >= d.numLabels() {
		return fmt.Errorf("%w: label %d of (%d, %d, %d)", ErrVertexRange, l, s, l, t)
	}
	tr := Triple{Subject: s, Label: l, Object: t}
	d.ops = append(d.ops, deltaOp{t: tr})
	d.counts[tr]++
	return nil
}

// AddEdgeNames interns the endpoint and label names (subject, label,
// object — the same order Builder.AddEdgeNames interns, so replaying one
// script through a Builder or a Delta yields identical IDs) and stages
// the edge.
func (d *Delta) AddEdgeNames(s, label, t string) error {
	sv := d.Vertex(s)
	l, err := d.Label(label)
	if err != nil {
		return err
	}
	return d.AddEdge(sv, l, d.Vertex(t))
}

// DeleteEdge stages the removal of one instance of (s, l, t). It fails
// with ErrEdgeNotFound when the staged view (the underlying view plus
// earlier staged ops) holds no remaining instance.
func (d *Delta) DeleteEdge(s VertexID, l Label, t VertexID) error {
	if int(s) >= d.numVertices() || int(t) >= d.numVertices() || int(l) >= d.numLabels() {
		return fmt.Errorf("%w: (%d, %d, %d)", ErrVertexRange, s, l, t)
	}
	tr := Triple{Subject: s, Label: l, Object: t}
	if d.g.countEdge(s, l, t)+d.counts[tr] <= 0 {
		return fmt.Errorf("%w: (%d, %d, %d)", ErrEdgeNotFound, s, l, t)
	}
	d.ops = append(d.ops, deltaOp{del: true, t: tr})
	d.counts[tr]--
	return nil
}

// Commit freezes the staged batch into a new Graph sharing the view's
// base CSR, with the combined overlay (the view's overlay, if any, plus
// this Delta) rebuilt. The receiver Graph is left untouched; the Delta
// must not be reused. An error is an internal inconsistency (staging
// validates every op), reported rather than swallowed so a corrupted
// overlay can never be published.
func (d *Delta) Commit() (*Graph, error) {
	g := d.g
	if len(d.ops) == 0 && len(d.names) == 0 && len(d.labels) == 0 {
		return g, nil // nothing staged: the view is already the result
	}
	ov := &overlay{
		baseV: len(g.names),
		baseL: len(g.labelNames),
	}
	if old := g.ov; old != nil {
		// Immutable-append: full slice expressions force a copy whenever
		// the old backing array would be shared and overwritten.
		ov.names = append(old.names[:len(old.names):len(old.names)], d.names...)
		ov.labels = append(old.labels[:len(old.labels):len(old.labels)], d.labels...)
		ov.log = append(old.log[:len(old.log):len(old.log)], d.ops...)
	} else {
		ov.names = d.names
		ov.labels = d.labels
		ov.log = d.ops
	}
	ov.nameIDs = make(map[string]VertexID, len(ov.names))
	for i, name := range ov.names {
		ov.nameIDs[name] = VertexID(ov.baseV + i)
	}
	ov.labelIDs = make(map[string]Label, len(ov.labels))
	for i, name := range ov.labels {
		ov.labelIDs[name] = Label(ov.baseL + i)
	}
	for _, op := range ov.log {
		if op.del {
			ov.deleted++
		} else {
			ov.added++
		}
	}
	nV := ov.baseV + len(ov.names)
	var err error
	ov.out, err = buildPatch(ov.log, &g.out, ov.baseV, nV, false)
	if err != nil {
		return nil, err
	}
	ov.in, err = buildPatch(ov.log, &g.in, ov.baseV, nV, true)
	if err != nil {
		return nil, err
	}
	h := *g
	h.ov = ov
	return &h, nil
}

// buildPatch materialises one direction's patch mini-CSR from the full
// overlay log: for every vertex an op touches, its complete merged row
// (base minus deletions plus insertions, (label, head)-sorted).
func buildPatch(log []deltaOp, base *adjacency, baseV, nV int, inDir bool) (patchAdj, error) {
	adds := make(map[VertexID][]Edge)
	dels := make(map[VertexID][]Edge)
	for _, op := range log {
		v, e := op.t.Subject, Edge{To: op.t.Object, Label: op.t.Label}
		if inDir {
			v, e = op.t.Object, Edge{To: op.t.Subject, Label: op.t.Label}
		}
		if op.del {
			dels[v] = append(dels[v], e)
		} else {
			adds[v] = append(adds[v], e)
		}
	}
	touched := make([]VertexID, 0, len(adds)+len(dels))
	for v := range adds {
		touched = append(touched, v)
	}
	for v := range dels {
		if _, ok := adds[v]; !ok {
			touched = append(touched, v)
		}
	}
	slices.Sort(touched)

	p := patchAdj{
		touched: make([]uint64, (nV+63)/64),
		slot:    make(map[VertexID]uint32, len(touched)),
	}
	p.a.off = make([]uint32, 1, len(touched)+1)
	p.a.runOff = make([]uint32, 1, len(touched)+1)
	for _, v := range touched {
		p.touched[uint(v)>>6] |= 1 << (uint(v) & 63)
		p.slot[v] = uint32(len(p.a.off) - 1)

		var row []Edge
		if int(v) < baseV {
			row = append(row, base.run(v)...)
		}
		row = append(row, adds[v]...)
		slices.SortFunc(row, func(a, b Edge) int {
			if a.Label != b.Label {
				return int(a.Label) - int(b.Label)
			}
			return int(a.To) - int(b.To)
		})
		for _, del := range dels[v] {
			i := sort.Search(len(row), func(i int) bool {
				e := row[i]
				return e.Label > del.Label || e.Label == del.Label && e.To >= del.To
			})
			if i >= len(row) || row[i] != del {
				return patchAdj{}, fmt.Errorf("%w: overlay rebuild lost (%v, %v)", ErrEdgeNotFound, v, del)
			}
			row = append(row[:i], row[i+1:]...)
		}

		for i, e := range row {
			if i == 0 || e.Label != row[i-1].Label {
				p.a.runStart = append(p.a.runStart, uint32(len(p.a.edges)+i))
				p.a.runLabel = append(p.a.runLabel, e.Label)
			}
		}
		p.a.edges = append(p.a.edges, row...)
		p.a.off = append(p.a.off, uint32(len(p.a.edges)))
		p.a.runOff = append(p.a.runOff, uint32(len(p.a.runStart)))
	}
	return p, nil
}

// HasOverlay reports whether g carries uncompacted mutations.
func (g *Graph) HasOverlay() bool { return g.ov != nil }

// OverlaySize returns the number of edge mutations accumulated in the
// overlay since the base CSR was built (0 without an overlay). The
// engine's compaction threshold reads it.
func (g *Graph) OverlaySize() int {
	if g.ov == nil {
		return 0
	}
	return len(g.ov.log)
}

// Compact folds the overlay into a fresh base CSR. The result is
// observationally identical to g — same dictionaries in the same ID
// order, same ordered Triples, same schema — with no overlay, so every
// read is a plain base-CSR access again. Without an overlay it returns g
// itself.
func (g *Graph) Compact() *Graph {
	if g.ov == nil {
		return g
	}
	b := NewBuilder()
	b.schema = g.schema
	for l := 0; l < g.NumLabels(); l++ {
		b.Label(g.LabelName(Label(l)))
	}
	for v := 0; v < g.NumVertices(); v++ {
		b.Vertex(g.VertexName(VertexID(v)))
	}
	g.Triples(func(t Triple) bool {
		b.AddEdge(t.Subject, t.Label, t.Object)
		return true
	})
	return b.Build()
}

// replayOnto re-applies the overlay suffix cur.log[fromOps:] (plus any
// dictionary entries the suffix needs) onto base, which must be an
// observationally identical rebuild of cur's state at fromOps — the
// compactor's catch-up step for mutations that landed while it was
// rebuilding. Vertex and label IDs are stable across the replay.
func replayOnto(base, cur *Graph, fromOps int) (*Graph, error) {
	d := NewDelta(base)
	for l := base.NumLabels(); l < cur.NumLabels(); l++ {
		if _, err := d.Label(cur.LabelName(Label(l))); err != nil {
			return nil, err
		}
	}
	for v := base.NumVertices(); v < cur.NumVertices(); v++ {
		d.Vertex(cur.VertexName(VertexID(v)))
	}
	log := cur.ov.log[fromOps:]
	for _, op := range log {
		var err error
		if op.del {
			err = d.DeleteEdge(op.t.Subject, op.t.Label, op.t.Object)
		} else {
			err = d.AddEdge(op.t.Subject, op.t.Label, op.t.Object)
		}
		if err != nil {
			return nil, fmt.Errorf("graph: overlay replay: %w", err)
		}
	}
	return d.Commit()
}

// ReplayOnto is replayOnto for the engine layer: it requires cur to
// carry an overlay with at least fromOps logged operations.
func ReplayOnto(base, cur *Graph, fromOps int) (*Graph, error) {
	if cur.ov == nil || fromOps > len(cur.ov.log) {
		return nil, fmt.Errorf("graph: replay bounds: have %d ops, from %d", cur.OverlaySize(), fromOps)
	}
	return replayOnto(base, cur, fromOps)
}

// countEdge returns the multiplicity of (s, l, t) in the view. Vertices
// beyond the view (a Delta's freshly staged ones) have no edges yet.
func (g *Graph) countEdge(s VertexID, l Label, t VertexID) int {
	if int(s) >= g.NumVertices() {
		return 0
	}
	es := g.Out(s)
	lo := sort.Search(len(es), func(i int) bool {
		e := es[i]
		return e.Label > l || e.Label == l && e.To >= t
	})
	hi := lo
	for hi < len(es) && es[hi].Label == l && es[hi].To == t {
		hi++
	}
	return hi - lo
}
