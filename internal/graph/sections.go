package graph

import "fmt"

// Section views: the raw flat arrays behind an overlay-free Graph,
// exposed so the segment layer (internal/segment) can write them to disk
// as aligned little-endian sections and reassemble a Graph directly over
// mmap'd bytes without re-deriving anything. The views alias internal
// storage and must be treated as read-only.

// AdjView is the raw CSR of one adjacency direction: the edges of vertex
// v occupy Edges[Off[v]:Off[v+1]] and its label runs occupy
// RunStart/RunLabel[RunOff[v]:RunOff[v+1]] — exactly the layout
// documented on the unexported adjacency struct.
type AdjView struct {
	Edges    []Edge
	Off      []uint32 // len |V|+1
	RunStart []uint32
	RunLabel []Label
	RunOff   []uint32 // len |V|+1
}

// BaseViews returns the raw CSR arrays of both directions. It reports
// ok=false for an overlay view (whose merged state is not a pair of flat
// arrays); callers persist a compacted graph.
func (g *Graph) BaseViews() (out, in AdjView, ok bool) {
	if g.ov != nil {
		return AdjView{}, AdjView{}, false
	}
	return adjView(&g.out), adjView(&g.in), true
}

func adjView(a *adjacency) AdjView {
	return AdjView{
		Edges:    a.edges,
		Off:      a.off,
		RunStart: a.runStart,
		RunLabel: a.runLabel,
		RunOff:   a.runOff,
	}
}

// VertexNames returns the base vertex dictionary, index = VertexID. Only
// valid for an overlay-free graph (BaseViews gatekeeps).
func (g *Graph) VertexNames() []string { return g.names }

// LabelNames returns the base label dictionary, index = Label.
func (g *Graph) LabelNames() []string { return g.labelNames }

// Validate checks the structural invariants every traversal accessor
// relies on, so a Graph assembled from untrusted bytes (a corrupt or
// hostile segment that happened to pass its checksums) can never index
// out of bounds or slice backwards: offset arrays of the right length,
// monotone and in range; every run inside its vertex's edge range; every
// edge's head and label in range; each vertex's run sorted by
// (label, head) with the run index agreeing label-for-label. The cost is
// one linear pass over the arrays.
func (v AdjView) Validate(nV, nLabels int) error {
	nE := len(v.Edges)
	nR := len(v.RunStart)
	if len(v.Off) != nV+1 || len(v.RunOff) != nV+1 {
		return fmt.Errorf("%w: offset array length", ErrCorrupt)
	}
	if len(v.RunLabel) != nR {
		return fmt.Errorf("%w: run index length", ErrCorrupt)
	}
	if v.Off[0] != 0 || v.Off[nV] != uint32(nE) || v.RunOff[0] != 0 || v.RunOff[nV] != uint32(nR) {
		return fmt.Errorf("%w: offset bounds", ErrCorrupt)
	}
	for i := 0; i < nV; i++ {
		if v.Off[i] > v.Off[i+1] || v.RunOff[i] > v.RunOff[i+1] {
			return fmt.Errorf("%w: non-monotone offsets at vertex %d", ErrCorrupt, i)
		}
	}
	for i := 0; i < nV; i++ {
		lo, hi := v.Off[i], v.Off[i+1]
		rlo, rhi := v.RunOff[i], v.RunOff[i+1]
		if hi > lo && rhi == rlo {
			return fmt.Errorf("%w: vertex %d has edges but no runs", ErrCorrupt, i)
		}
		for ri := rlo; ri < rhi; ri++ {
			start := v.RunStart[ri]
			end := hi
			if ri+1 < rhi {
				end = v.RunStart[ri+1]
			}
			if start < lo || start > end || end > hi {
				return fmt.Errorf("%w: run %d outside vertex %d", ErrCorrupt, ri, i)
			}
			if ri == rlo && start != lo {
				return fmt.Errorf("%w: first run of vertex %d misaligned", ErrCorrupt, i)
			}
			label := v.RunLabel[ri]
			if int(label) >= nLabels {
				return fmt.Errorf("%w: run label out of range", ErrCorrupt)
			}
			if ri > rlo && label <= v.RunLabel[ri-1] {
				return fmt.Errorf("%w: run labels not ascending at vertex %d", ErrCorrupt, i)
			}
			for j := start; j < end; j++ {
				e := v.Edges[j]
				if uint32(e.To) >= uint32(nV) {
					return fmt.Errorf("%w: edge head out of range", ErrCorrupt)
				}
				if e.Label != label {
					return fmt.Errorf("%w: edge label disagrees with run", ErrCorrupt)
				}
				if j > start && v.Edges[j-1].To > e.To {
					return fmt.Errorf("%w: edges not sorted at vertex %d", ErrCorrupt, i)
				}
			}
		}
	}
	return nil
}

// FromParts assembles an immutable base-CSR Graph directly over the
// given arrays — the zero-copy open path. The slices (and the strings in
// the dictionaries) are aliased, not copied, so they may point into
// mmap'd storage; they must never be mutated afterwards. Both views are
// validated (see AdjView.Validate) and must describe the same edge
// multiset size. A nil schema means an empty one.
//
// nameOrder, when non-nil, is the vertex ids permuted into strictly
// ascending name order (a segment's name-index section): Vertex then
// binary-searches it instead of a hash map, so assembling the graph
// allocates no per-name storage at all. It is validated here — in-range,
// strictly ascending — which both proves it a permutation and rejects
// duplicate names. A nil nameOrder falls back to building the map.
func FromParts(names, labelNames []string, nameOrder []uint32, out, in AdjView, schema *Schema) (*Graph, error) {
	nV, nL := len(names), len(labelNames)
	if err := out.Validate(nV, nL); err != nil {
		return nil, fmt.Errorf("out adjacency: %w", err)
	}
	if err := in.Validate(nV, nL); err != nil {
		return nil, fmt.Errorf("in adjacency: %w", err)
	}
	if len(out.Edges) != len(in.Edges) {
		return nil, fmt.Errorf("%w: direction edge counts disagree (%d vs %d)", ErrCorrupt, len(out.Edges), len(in.Edges))
	}
	if schema == nil {
		schema = NewSchema()
	}
	g := &Graph{
		names:      names,
		labelNames: labelNames,
		numEdges:   len(out.Edges),
		labelIDs:   make(map[string]Label, nL),
		schema:     schema,
	}
	if nameOrder != nil {
		if len(nameOrder) != nV {
			return nil, fmt.Errorf("%w: name order holds %d entries for %d vertices", ErrCorrupt, len(nameOrder), nV)
		}
		for i, p := range nameOrder {
			if int(p) >= nV {
				return nil, fmt.Errorf("%w: name order entry out of range", ErrCorrupt)
			}
			// Strictly ascending + in-range + full length ⇒ a permutation
			// with no duplicate names: a repeated id or name would force
			// equality between sorted neighbours.
			if i > 0 && names[nameOrder[i-1]] >= names[p] {
				return nil, fmt.Errorf("%w: name order not strictly ascending at %d", ErrCorrupt, i)
			}
		}
		g.nameOrder = nameOrder
	} else {
		// Blind inserts; a collision shows up as a short map, and the
		// failure path (cold) can still name the culprit: a duplicate's
		// first occurrence maps to the later index.
		g.vertexIDs = make(map[string]VertexID, nV)
		for i, name := range names {
			g.vertexIDs[name] = VertexID(i)
		}
		if len(g.vertexIDs) != nV {
			for i, name := range names {
				if g.vertexIDs[name] != VertexID(i) {
					return nil, fmt.Errorf("%w: duplicate vertex name %q", ErrCorrupt, name)
				}
			}
		}
	}
	for i, name := range labelNames {
		g.labelIDs[name] = Label(i)
	}
	if len(g.labelIDs) != nL {
		for i, name := range labelNames {
			if g.labelIDs[name] != Label(i) {
				return nil, fmt.Errorf("%w: duplicate label name %q", ErrCorrupt, name)
			}
		}
	}
	g.out = viewAdj(out)
	g.in = viewAdj(in)
	return g, nil
}

func viewAdj(v AdjView) adjacency {
	return adjacency{
		edges:    v.Edges,
		off:      v.Off,
		runStart: v.RunStart,
		runLabel: v.RunLabel,
		runOff:   v.RunOff,
	}
}
