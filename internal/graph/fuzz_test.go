package graph

import (
	"bytes"
	"testing"
)

// FuzzReadSnapshot asserts the snapshot reader never panics and never
// accepts corrupted input as a valid graph (the CRC must catch every
// mutation this fuzzer makes outside the footer itself).
func FuzzReadSnapshot(f *testing.F) {
	g := snapshotFixture()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid, -1, byte(0))
	f.Add(valid, 10, byte(0xFF))
	f.Add([]byte("LSCRKG01"), -1, byte(0))
	f.Add([]byte{}, -1, byte(0))
	f.Fuzz(func(t *testing.T, data []byte, flipAt int, flipBy byte) {
		mutated := append([]byte(nil), data...)
		if flipAt >= 0 && flipAt < len(mutated) {
			mutated[flipAt] ^= flipBy
		}
		got, err := ReadSnapshot(bytes.NewReader(mutated))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent.
		if got.NumVertices() < 0 || got.NumEdges() < 0 {
			t.Fatal("accepted snapshot inconsistent")
		}
		got.Triples(func(tr Triple) bool {
			if int(tr.Subject) >= got.NumVertices() || int(tr.Object) >= got.NumVertices() {
				t.Fatal("edge out of range in accepted snapshot")
			}
			return true
		})
	})
}
