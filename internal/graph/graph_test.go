package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/labelset"
)

func buildRunning(t *testing.T) (*Graph, map[string]VertexID) {
	t.Helper()
	b := NewBuilder()
	// The running example G0 of Figure 3(a): v0..v4 with labels
	// friendOf, likes, follows, advisorOf, hates.
	edges := [][3]string{
		{"v0", "friendOf", "v3"},
		{"v0", "friendOf", "v1"},
		{"v1", "friendOf", "v3"},
		{"v2", "friendOf", "v3"},
		{"v0", "advisorOf", "v2"},
		{"v2", "follows", "v4"},
		{"v1", "likes", "v4"},
		{"v3", "likes", "v4"},
		{"v4", "hates", "v1"},
	}
	for _, e := range edges {
		b.AddEdgeNames(e[0], e[1], e[2])
	}
	g := b.Build()
	ids := map[string]VertexID{}
	for _, n := range []string{"v0", "v1", "v2", "v3", "v4"} {
		ids[n] = g.Vertex(n)
	}
	return g, ids
}

func TestBuildAndLookups(t *testing.T) {
	g, ids := buildRunning(t)
	if g.NumVertices() != 5 || g.NumEdges() != 9 || g.NumLabels() != 5 {
		t.Fatalf("%v", g)
	}
	if g.Vertex("nope") != NoVertex {
		t.Error("missing vertex lookup should return NoVertex")
	}
	if _, ok := g.LabelByName("nope"); ok {
		t.Error("missing label lookup should fail")
	}
	l, ok := g.LabelByName("friendOf")
	if !ok {
		t.Fatal("friendOf missing")
	}
	if g.LabelName(l) != "friendOf" {
		t.Error("label dictionary round trip failed")
	}
	if g.VertexName(ids["v3"]) != "v3" {
		t.Error("vertex dictionary round trip failed")
	}
	if !g.HasEdge(ids["v0"], l, ids["v3"]) {
		t.Error("HasEdge(v0,friendOf,v3) = false")
	}
	if g.HasEdge(ids["v3"], l, ids["v0"]) {
		t.Error("reverse edge should not exist")
	}
}

func TestDegreesAndAdjacency(t *testing.T) {
	g, ids := buildRunning(t)
	if d := g.OutDegree(ids["v0"]); d != 3 {
		t.Errorf("OutDegree(v0) = %d, want 3", d)
	}
	if d := g.InDegree(ids["v4"]); d != 3 {
		t.Errorf("InDegree(v4) = %d, want 3", d)
	}
	if d := g.Degree(ids["v4"]); d != 4 {
		t.Errorf("Degree(v4) = %d, want 4", d)
	}
	// In-edges of v3 must name v0, v1, v2 as sources.
	srcs := map[VertexID]bool{}
	for _, e := range g.In(ids["v3"]) {
		srcs[e.To] = true
	}
	for _, n := range []string{"v0", "v1", "v2"} {
		if !srcs[ids[n]] {
			t.Errorf("in-edge from %s missing", n)
		}
	}
}

func TestTriplesIteration(t *testing.T) {
	g, _ := buildRunning(t)
	n := 0
	g.Triples(func(tr Triple) bool { n++; return true })
	if n != g.NumEdges() {
		t.Fatalf("iterated %d, want %d", n, g.NumEdges())
	}
	n = 0
	g.Triples(func(tr Triple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop iterated %d, want 3", n)
	}
}

func TestParallelEdgesAndSelfLoops(t *testing.T) {
	b := NewBuilder()
	a := b.Vertex("a")
	l1, l2 := b.Label("p"), b.Label("q")
	b.AddEdge(a, l1, a)
	b.AddEdge(a, l1, a)
	b.AddEdge(a, l2, a)
	g := b.Build()
	if g.NumEdges() != 3 || g.OutDegree(a) != 3 || g.InDegree(a) != 3 {
		t.Fatalf("multigraph handling broken: %v", g)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder().Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.Density() != 0 {
		t.Fatal("empty graph not empty")
	}
	if g.LabelUniverse() != labelset.Set(0) {
		t.Fatal("empty universe not empty")
	}
}

func TestLabelUniverseAndDensity(t *testing.T) {
	g, _ := buildRunning(t)
	if g.LabelUniverse().Len() != 5 {
		t.Errorf("universe = %v", g.LabelUniverse())
	}
	if got, want := g.Density(), 9.0/5.0; got != want {
		t.Errorf("density = %f, want %f", got, want)
	}
}

func TestLabelOverflowPanics(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < labelset.MaxLabels; i++ {
		b.Label(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on 65th label")
		}
	}()
	b.Label("overflow")
}

func TestVertexInterning(t *testing.T) {
	b := NewBuilder()
	v1 := b.Vertex("x")
	v2 := b.Vertex("x")
	if v1 != v2 {
		t.Fatal("interning returned different ids")
	}
	if b.NumVertices() != 1 {
		t.Fatal("duplicate vertex created")
	}
}

func TestSchema(t *testing.T) {
	b := NewBuilder()
	v := b.Vertex("Taylor")
	w := b.Vertex("Walker")
	s := b.Schema()
	s.AddInstance("Researcher", v)
	s.AddInstance("Researcher", w)
	s.AddSubClassOf("Researcher", "Person")
	s.SetDomain("workWith", "Researcher")
	s.SetRange("workWith", "Researcher")
	g := b.Build()

	sc := g.Schema()
	if got := sc.Instances("Researcher"); len(got) != 2 {
		t.Fatalf("Instances = %v", got)
	}
	if !sc.IsInstance(v, "Researcher") || sc.IsInstance(v, "Person") {
		t.Error("IsInstance misbehaves")
	}
	if got := sc.ClassesOf(v); len(got) != 1 || got[0] != "Researcher" {
		t.Errorf("ClassesOf = %v", got)
	}
	if got := sc.SuperClasses("Researcher"); len(got) != 1 || got[0] != "Person" {
		t.Errorf("SuperClasses = %v", got)
	}
	if d, ok := sc.Domain("workWith"); !ok || d != "Researcher" {
		t.Errorf("Domain = %v %v", d, ok)
	}
	if r, ok := sc.Range("workWith"); !ok || r != "Researcher" {
		t.Errorf("Range = %v %v", r, ok)
	}
	cs := sc.Classes()
	if len(cs) != 2 || cs[0] != "Person" || cs[1] != "Researcher" {
		t.Errorf("Classes = %v", cs)
	}
	if sc.NumInstances() != 2 {
		t.Errorf("NumInstances = %d", sc.NumInstances())
	}
	if _, ok := sc.Domain("unknown"); ok {
		t.Error("unknown property has a domain")
	}
}

// Property: a random edge list builds into a graph whose out- and in-
// adjacency agree edge-for-edge, and whose edge count matches.
func TestBuildAdjacencyConsistencyProperty(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%40) + 1
		m := int(mRaw)
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.Vertex(vname(i))
		}
		type key struct {
			s, t VertexID
			l    Label
		}
		want := map[key]int{}
		for i := 0; i < m; i++ {
			s := VertexID(rng.Intn(n))
			tv := VertexID(rng.Intn(n))
			l := Label(rng.Intn(8))
			// Interning labels lazily: ensure label exists.
			for int(l) >= 0 && int(l) > len("")-1 {
				break
			}
			b.Label(string(rune('a' + l)))
			b.AddEdge(s, l, tv)
			want[key{s, tv, l}]++
		}
		g := b.Build()
		if g.NumEdges() != m {
			return false
		}
		gotOut := map[key]int{}
		for v := 0; v < n; v++ {
			for _, e := range g.Out(VertexID(v)) {
				gotOut[key{VertexID(v), e.To, e.Label}]++
			}
		}
		gotIn := map[key]int{}
		for v := 0; v < n; v++ {
			for _, e := range g.In(VertexID(v)) {
				gotIn[key{e.To, VertexID(v), e.Label}]++
			}
		}
		if len(gotOut) != len(want) || len(gotIn) != len(want) {
			return false
		}
		for k, c := range want {
			if gotOut[k] != c || gotIn[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func vname(i int) string {
	return "v" + string(rune('A'+i%26)) + string(rune('0'+i/26))
}
