package graph

import (
	"math/rand"
	"testing"

	"lscr/internal/labelset"
)

// refGraph is the seed slice-of-slices layout, rebuilt naively from a
// triple list in insertion order. The CSR graph must be observationally
// identical to it: same Out/In edge multisets per vertex, same Triples
// multiset, same HasEdge relation.
type refGraph struct {
	out, in [][]Edge
}

func newRefGraph(n int, edges []Triple) *refGraph {
	r := &refGraph{out: make([][]Edge, n), in: make([][]Edge, n)}
	for _, e := range edges {
		r.out[e.Subject] = append(r.out[e.Subject], Edge{To: e.Object, Label: e.Label})
		r.in[e.Object] = append(r.in[e.Object], Edge{To: e.Subject, Label: e.Label})
	}
	return r
}

type edgeKey struct {
	v VertexID
	e Edge
}

func multiset(adj [][]Edge) map[edgeKey]int {
	m := map[edgeKey]int{}
	for v, es := range adj {
		for _, e := range es {
			m[edgeKey{VertexID(v), e}]++
		}
	}
	return m
}

func graphMultiset(g *Graph, in bool) map[edgeKey]int {
	m := map[edgeKey]int{}
	for v := 0; v < g.NumVertices(); v++ {
		es := g.Out(VertexID(v))
		if in {
			es = g.In(VertexID(v))
		}
		for _, e := range es {
			m[edgeKey{VertexID(v), e}]++
		}
	}
	return m
}

func equalMultisets(a, b map[edgeKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, c := range a {
		if b[k] != c {
			return false
		}
	}
	return true
}

// randomTriples derives a deterministic edge list from a seed.
func randomTriples(seed int64, n, m, nLabels int) (*Builder, []Triple) {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.Vertex(vname(i))
	}
	for i := 0; i < nLabels; i++ {
		b.Label("l" + string(rune('a'+i)))
	}
	edges := make([]Triple, 0, m)
	for i := 0; i < m; i++ {
		t := Triple{
			Subject: VertexID(rng.Intn(n)),
			Label:   Label(rng.Intn(nLabels)),
			Object:  VertexID(rng.Intn(n)),
		}
		b.AddEdge(t.Subject, t.Label, t.Object)
		edges = append(edges, t)
	}
	return b, edges
}

// checkCSRAgainstRef asserts every observational property of the CSR
// graph against the seed-layout reference. It is shared by the quick
// property test and the fuzzer.
func checkCSRAgainstRef(t *testing.T, g *Graph, ref *refGraph, edges []Triple, nLabels int) {
	t.Helper()
	if g.NumEdges() != len(edges) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), len(edges))
	}
	// Same Out/In multisets as the seed layout.
	if !equalMultisets(graphMultiset(g, false), multiset(ref.out)) {
		t.Fatal("Out multiset differs from seed layout")
	}
	if !equalMultisets(graphMultiset(g, true), multiset(ref.in)) {
		t.Fatal("In multiset differs from seed layout")
	}
	// Triples enumerates the same edge multiset, in (s, l, o) order.
	var last Triple
	seen := 0
	trip := map[Triple]int{}
	g.Triples(func(tr Triple) bool {
		if seen > 0 {
			if tr.Subject < last.Subject ||
				tr.Subject == last.Subject && tr.Label < last.Label ||
				tr.Subject == last.Subject && tr.Label == last.Label && tr.Object < last.Object {
				t.Fatalf("Triples out of order: %v after %v", tr, last)
			}
		}
		last = tr
		seen++
		trip[tr]++
		return true
	})
	if seen != len(edges) {
		t.Fatalf("Triples enumerated %d edges, want %d", seen, len(edges))
	}
	want := map[Triple]int{}
	for _, e := range edges {
		want[e]++
	}
	for k, c := range want {
		if trip[k] != c {
			t.Fatalf("Triples multiset differs at %v: %d vs %d", k, trip[k], c)
		}
	}
	noIdx := g.WithoutLabelIndex()
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		es := g.Out(id)
		// Runs sorted by (label, head).
		for i := 1; i < len(es); i++ {
			if es[i].Label < es[i-1].Label ||
				es[i].Label == es[i-1].Label && es[i].To < es[i-1].To {
				t.Fatalf("Out(%d) not sorted at %d: %v", v, i, es)
			}
		}
		for l := 0; l < nLabels; l++ {
			// OutWith returns exactly the edges with that label.
			got := g.OutWith(id, Label(l))
			cnt := 0
			for _, e := range es {
				if e.Label == Label(l) {
					cnt++
				}
			}
			if len(got) != cnt {
				t.Fatalf("OutWith(%d,%d) = %d edges, want %d", v, l, len(got), cnt)
			}
			for _, e := range got {
				if e.Label != Label(l) {
					t.Fatalf("OutWith(%d,%d) yielded label %d", v, l, e.Label)
				}
			}
		}
		// OutLabeled over a random constraint set yields exactly the
		// filtered subsequence, in order — with and without the label-run
		// index.
		L := labelset.Set(uint64(v)*0x9e3779b97f4a7c15+0xb5) & labelset.Universe(nLabels)
		var wantSeq, gotSeq, gotSeqNoIdx []Edge
		for _, e := range es {
			if L.Contains(e.Label) {
				wantSeq = append(wantSeq, e)
			}
		}
		it := g.OutLabeled(id, L)
		for run, ok := it.Next(); ok; run, ok = it.Next() {
			if len(run) == 0 {
				t.Fatalf("OutLabeled(%d) yielded empty run", v)
			}
			for _, e := range run[1:] {
				if e.Label != run[0].Label {
					t.Fatalf("OutLabeled(%d) run not label-pure: %v", v, run)
				}
			}
			gotSeq = append(gotSeq, run...)
		}
		it = noIdx.OutLabeled(id, L)
		for run, ok := it.Next(); ok; run, ok = it.Next() {
			gotSeqNoIdx = append(gotSeqNoIdx, run...)
		}
		// The raw EdgeRuns view (the hot loops' form) must agree with the
		// iterator, on both the indexed graph and the degenerate view.
		for gi, gr := range []*Graph{g, noIdx} {
			var viaRuns []Edge
			rs := gr.OutRuns(id)
			for ri, n := 0, rs.Len(); ri < n; ri++ {
				if !L.Contains(rs.Label(ri)) {
					continue
				}
				run := rs.Run(ri)
				if len(run) == 0 {
					t.Fatalf("graph %d: OutRuns(%d).Run(%d) empty", gi, v, ri)
				}
				for _, e := range run {
					if e.Label != rs.Label(ri) {
						t.Fatalf("graph %d: OutRuns(%d) run %d not label-pure", gi, v, ri)
					}
				}
				viaRuns = append(viaRuns, run...)
			}
			if len(viaRuns) != len(wantSeq) {
				t.Fatalf("graph %d: OutRuns(%d, %v) yielded %d edges, want %d", gi, v, L, len(viaRuns), len(wantSeq))
			}
			for i := range wantSeq {
				if viaRuns[i] != wantSeq[i] {
					t.Fatalf("graph %d: OutRuns(%d, %v) diverges at %d", gi, v, L, i)
				}
			}
		}
		if len(gotSeq) != len(wantSeq) || len(gotSeqNoIdx) != len(wantSeq) {
			t.Fatalf("OutLabeled(%d, %v) yielded %d/%d edges, want %d", v, L, len(gotSeq), len(gotSeqNoIdx), len(wantSeq))
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] || gotSeqNoIdx[i] != wantSeq[i] {
				t.Fatalf("OutLabeled(%d, %v) diverges at %d", v, L, i)
			}
		}
		// InLabeled mirrors the in-adjacency the same way.
		var wantIn, gotIn []Edge
		for _, e := range g.In(id) {
			if L.Contains(e.Label) {
				wantIn = append(wantIn, e)
			}
		}
		iit := g.InLabeled(id, L)
		for run, ok := iit.Next(); ok; run, ok = iit.Next() {
			gotIn = append(gotIn, run...)
		}
		if len(gotIn) != len(wantIn) {
			t.Fatalf("InLabeled(%d) yielded %d edges, want %d", v, len(gotIn), len(wantIn))
		}
		for i := range wantIn {
			if gotIn[i] != wantIn[i] {
				t.Fatalf("InLabeled(%d) diverges at %d", v, i)
			}
		}
	}
	// HasEdge agrees with the reference relation (binary search vs scan),
	// both on present edges and on a probe grid.
	for _, e := range edges {
		if !g.HasEdge(e.Subject, e.Label, e.Object) {
			t.Fatalf("HasEdge misses present edge %v", e)
		}
	}
	rng := rand.New(rand.NewSource(int64(len(edges))))
	for i := 0; i < 200 && g.NumVertices() > 0; i++ {
		s := VertexID(rng.Intn(g.NumVertices()))
		o := VertexID(rng.Intn(g.NumVertices()))
		l := Label(rng.Intn(nLabels))
		want := false
		for _, e := range ref.out[s] {
			if e.To == o && e.Label == l {
				want = true
				break
			}
		}
		if got := g.HasEdge(s, l, o); got != want {
			t.Fatalf("HasEdge(%d,%d,%d) = %v, want %v", s, l, o, got, want)
		}
	}
}

// Property: for random edge lists, the CSR graph is observationally
// identical to the seed slice-of-slices layout.
func TestCSRObservationalEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		n := rng.Intn(30) + 1
		m := rng.Intn(256)
		nLabels := rng.Intn(6) + 1
		seed := rng.Int63()
		t.Logf("shape %d: seed=%d n=%d m=%d labels=%d", i, seed, n, m, nLabels)
		b, edges := randomTriples(seed, n, m, nLabels)
		checkCSRAgainstRef(t, b.Build(), newRefGraph(n, edges), edges, nLabels)
	}
}

// FuzzCSREquivalence drives the same observational-equivalence check from
// fuzzed shape parameters.
func FuzzCSREquivalence(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(40), uint8(3))
	f.Add(int64(42), uint8(1), uint8(0), uint8(1))
	f.Add(int64(-9), uint8(29), uint8(255), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw, lRaw uint8) {
		n := int(nRaw%30) + 1
		m := int(mRaw)
		nLabels := int(lRaw%6) + 1
		b, edges := randomTriples(seed, n, m, nLabels)
		g := b.Build()
		checkCSRAgainstRef(t, g, newRefGraph(n, edges), edges, nLabels)
	})
}
