package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func snapshotFixture() *Graph {
	b := NewBuilder()
	b.AddEdgeNames("Taylor", "eg:workWith", "Walker")
	b.AddEdgeNames("Walker", "eg:workWith", "Taylor")
	b.AddEdgeNames("Taylor", "rdf:type", "eg:Researcher")
	b.Schema().AddInstance("eg:Researcher", b.Vertex("Taylor"))
	b.Schema().AddInstance("eg:Researcher", b.Vertex("Walker"))
	b.Schema().AddSubClassOf("eg:Researcher", "eg:Person")
	b.Schema().SetDomain("eg:workWith", "eg:Researcher")
	b.Schema().SetRange("eg:workWith", "eg:Researcher")
	return b.Build()
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := snapshotFixture()
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() || got.NumLabels() != g.NumLabels() {
		t.Fatalf("sizes changed: %v vs %v", got, g)
	}
	// Names and edges survive.
	for v := 0; v < g.NumVertices(); v++ {
		if got.VertexName(VertexID(v)) != g.VertexName(VertexID(v)) {
			t.Fatal("vertex dictionary changed")
		}
	}
	w, ok := got.LabelByName("eg:workWith")
	if !ok || !got.HasEdge(got.Vertex("Taylor"), w, got.Vertex("Walker")) {
		t.Fatal("edges changed")
	}
	// Schema survives.
	if len(got.Schema().Instances("eg:Researcher")) != 2 {
		t.Fatal("instances lost")
	}
	if sup := got.Schema().SuperClasses("eg:Researcher"); len(sup) != 1 || sup[0] != "eg:Person" {
		t.Fatal("subclass lost")
	}
	if d, ok := got.Schema().Domain("eg:workWith"); !ok || d != "eg:Researcher" {
		t.Fatal("domain lost")
	}
	if r, ok := got.Schema().Range("eg:workWith"); !ok || r != "eg:Researcher" {
		t.Fatal("range lost")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ReadSnapshot(bytes.NewReader([]byte("NOTMAGIC"))); err == nil {
		t.Error("bad magic accepted")
	}
	g := snapshotFixture()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt a payload byte.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
		t.Error("corrupt payload accepted")
	}
	// Truncate.
	if _, err := ReadSnapshot(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Error("truncated payload accepted")
	}
}

// Property: random graphs survive the snapshot round trip edge-for-edge.
func TestSnapshotRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.Vertex(vname(i))
		}
		nl := rng.Intn(5) + 1
		for i := 0; i < nl; i++ {
			b.Label(string(rune('a' + i)))
		}
		m := rng.Intn(50)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), Label(rng.Intn(nl)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
			return false
		}
		same := true
		i := 0
		var edges []Triple
		g.Triples(func(tr Triple) bool { edges = append(edges, tr); return true })
		got.Triples(func(tr Triple) bool {
			if i >= len(edges) || edges[i] != tr {
				same = false
				return false
			}
			i++
			return true
		})
		return same && i == len(edges)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
