// Package graph implements the knowledge-graph substrate of the paper: a
// directed edge-labeled multigraph G = (V, E, ℒ, LS) (Definition 2.1) with
// vertex and label dictionaries and an RDFS schema store LS.
//
// Vertices are dense uint32 IDs assigned by a Builder; adjacency is stored
// both forward and backward so search algorithms and the SPARQL engine can
// traverse either direction. A Graph is immutable after Build and safe for
// concurrent readers.
//
// # Storage layout
//
// Adjacency is CSR (compressed sparse row): one flat []Edge array per
// direction plus a []uint32 offset array, so Out(v)/In(v) are contiguous
// subslices with no per-vertex pointer hop. Each vertex's edge run is
// sorted by (label, head), and a compact per-vertex label-run index
// records where each label's sub-run starts. Every search the paper
// defines spends its inner loop walking adjacency and discarding edges
// whose label is outside the query's label constraint L; the label-grouped
// layout lets OutLabeled/InLabeled skip non-matching edges entirely — for
// a selective L the traversal touches only the matching runs instead of
// testing every edge — and makes HasEdge a binary search instead of a
// linear scan.
package graph

import (
	"fmt"
	"slices"
	"sort"

	"lscr/internal/labelset"
)

// VertexID identifies a vertex. IDs are dense: 0..NumVertices-1.
type VertexID uint32

// NoVertex is a sentinel returned by lookups that find nothing.
const NoVertex = VertexID(^uint32(0))

// Label identifies an edge label; it is the same numeric space as
// labelset.Label.
type Label = labelset.Label

// Edge is one labeled arc endpoint as seen from some vertex's adjacency
// list. For an out-edge, To is the head; for an in-edge, To is the tail.
type Edge struct {
	To    VertexID
	Label Label
}

// Triple is a fully specified labeled edge (s, l, t).
type Triple struct {
	Subject VertexID
	Label   Label
	Object  VertexID
}

// adjacency is one direction of the CSR storage: the edges of vertex v
// occupy edges[off[v]:off[v+1]], sorted by (Label, To), and the label runs
// of v occupy runLabel/runStart[runOff[v]:runOff[v+1]] — run i covers
// edges[runStart[i] : next run's start or off[v+1]). A WithoutLabelIndex
// view carries a degenerate run index (one run per edge), which turns
// labeled iteration into a per-edge filtering scan on the same code path.
type adjacency struct {
	edges []Edge
	off   []uint32 // len |V|+1

	runStart []uint32 // absolute offset into edges where run begins
	runLabel []Label  // the run's label
	runOff   []uint32 // len |V|+1; runs of v: [runOff[v], runOff[v+1])
}

// run returns the full contiguous edge run of v.
func (a *adjacency) run(v VertexID) []Edge { return a.edges[a.off[v]:a.off[v+1]:a.off[v+1]] }

// with returns the contiguous sub-run of v's edges carrying exactly label
// l, located by binary search over the (label, head)-sorted run.
func (a *adjacency) with(v VertexID, l Label) []Edge {
	es := a.run(v)
	lo := sort.Search(len(es), func(i int) bool { return es[i].Label >= l })
	hi := lo
	for hi < len(es) && es[hi].Label == l {
		hi++
	}
	return es[lo:hi:hi]
}

// labeled returns an iterator over the label-pure runs of v whose label is
// in L.
func (a *adjacency) labeled(v VertexID, L labelset.Set) LabeledEdges {
	return LabeledEdges{a: a, L: L, i: a.runOff[v], n: a.runOff[v+1], vend: a.off[v+1]}
}

// runs returns the raw label-run view of v.
func (a *adjacency) runs(v VertexID) EdgeRuns {
	return EdgeRuns{a: a, lo: a.runOff[v], hi: a.runOff[v+1], end: a.off[v+1]}
}

// EdgeRuns is the raw label-run view of one vertex's adjacency: Label(i)
// is the label of run i and Run(i) its contiguous edge slice. Hot loops
// test each run label against the constraint set and read only the
// matching runs — with no function call per run (the accessors all
// inline) and no struct copy per vertex (the view is one pointer and
// three offsets):
//
//	rs := g.OutRuns(u)
//	for ri, n := 0, rs.Len(); ri < n; ri++ {
//		if !L.Contains(rs.Label(ri)) {
//			continue
//		}
//		for _, e := range rs.Run(ri) { ... }
//	}
//
// On a WithoutLabelIndex view the runs are degenerate (one edge each), so
// the same loop performs the seed layout's per-edge filtering scan.
type EdgeRuns struct {
	a      *adjacency
	lo, hi uint32 // run index range of the vertex
	end    uint32 // end edge offset of the vertex's whole run
}

// Len returns the number of label runs of the vertex.
func (r EdgeRuns) Len() int { return int(r.hi - r.lo) }

// Label returns the label of run i (runs are in ascending label order).
func (r EdgeRuns) Label(i int) Label { return r.a.runLabel[r.lo+uint32(i)] }

// Run returns the edges of run i. The slice aliases graph storage and
// must not be mutated.
func (r EdgeRuns) Run(i int) []Edge {
	a := r.a
	ri := r.lo + uint32(i)
	start := a.runStart[ri]
	end := r.end
	if ri+1 < r.hi {
		end = a.runStart[ri+1]
	}
	return a.edges[start:end:end]
}

// LabeledEdges iterates the edges of one vertex whose label belongs to a
// constraint set L, as a sequence of label-pure contiguous runs. Obtain one
// from Graph.OutLabeled or Graph.InLabeled; the zero value is an empty
// iterator. The yielded slices alias graph storage and must not be
// mutated. The struct is a bare cursor (one pointer and three offsets) so
// hot loops can hold it in registers.
type LabeledEdges struct {
	a    *adjacency
	L    labelset.Set
	i, n uint32 // run index range of the vertex
	vend uint32 // end edge offset of the vertex's whole run
}

// Next returns the next non-empty run of edges whose (single) label is in
// the constraint set, or ok=false when the iteration is done. With the
// label-run index each matching run comes back in one step and
// non-matching edges are never touched; on a WithoutLabelIndex view the
// runs are degenerate (one edge each), so Next filters edge by edge — the
// pre-CSR access pattern.
func (it *LabeledEdges) Next() (run []Edge, ok bool) {
	for it.i < it.n {
		i := it.i
		it.i++
		a := it.a
		if it.L.Contains(a.runLabel[i]) {
			start := a.runStart[i]
			end := it.vend
			if it.i < it.n {
				end = a.runStart[it.i]
			}
			return a.edges[start:end:end], true
		}
	}
	return nil, false
}

// Graph is an immutable edge-labeled multigraph with dictionaries and an
// RDFS schema. Build one with a Builder. A Graph produced by
// Delta.Commit additionally carries an overlay (see delta.go); every
// accessor below answers for the merged view, and the base arrays are
// shared untouched across commits.
type Graph struct {
	names      []string            // base vertex id -> name
	vertexIDs  map[string]VertexID // base name -> vertex id; nil when nameOrder serves lookups
	nameOrder  []uint32            // base ids in ascending-name order; the segment boot path's map replacement
	labelNames []string            // base label id -> name
	labelIDs   map[string]Label    // base name -> label id

	out adjacency
	in  adjacency

	ov *overlay // nil for a plain base CSR

	numEdges int // base edge count; overlay adds/deletes tracked in ov
	schema   *Schema
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int {
	if g.ov != nil {
		return len(g.names) + len(g.ov.names)
	}
	return len(g.names)
}

// NumEdges returns |E|.
func (g *Graph) NumEdges() int {
	if g.ov != nil {
		return g.numEdges + g.ov.added - g.ov.deleted
	}
	return g.numEdges
}

// NumLabels returns |ℒ|.
func (g *Graph) NumLabels() int {
	if g.ov != nil {
		return len(g.labelNames) + len(g.ov.labels)
	}
	return len(g.labelNames)
}

// LabelUniverse returns the label set containing every label of the graph.
func (g *Graph) LabelUniverse() labelset.Set { return labelset.Universe(g.NumLabels()) }

// VertexName returns the dictionary name of v.
func (g *Graph) VertexName(v VertexID) string {
	if int(v) < len(g.names) {
		return g.names[v]
	}
	return g.ov.names[int(v)-len(g.names)]
}

// Vertex looks up a vertex by name, returning NoVertex if absent.
func (g *Graph) Vertex(name string) VertexID {
	if g.vertexIDs != nil {
		if id, ok := g.vertexIDs[name]; ok {
			return id
		}
	} else if id, ok := g.searchName(name); ok {
		return id
	}
	if g.ov != nil {
		if id, ok := g.ov.nameIDs[name]; ok {
			return id
		}
	}
	return NoVertex
}

// searchName resolves a base vertex name through nameOrder, the sorted
// permutation a segment carries so boot never has to build (or allocate)
// a hash map over the dictionary. A lookup is log2|V| string probes of
// the mmap'd dictionary — nanoseconds against a query's traversal work.
func (g *Graph) searchName(name string) (VertexID, bool) {
	lo, hi := 0, len(g.nameOrder)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.names[g.nameOrder[mid]] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.nameOrder) {
		if id := g.nameOrder[lo]; g.names[id] == name {
			return VertexID(id), true
		}
	}
	return 0, false
}

// LabelName returns the dictionary name of l.
func (g *Graph) LabelName(l Label) string {
	if int(l) < len(g.labelNames) {
		return g.labelNames[l]
	}
	return g.ov.labels[int(l)-len(g.labelNames)]
}

// LabelByName looks up a label by name. The second result reports whether
// the label exists.
func (g *Graph) LabelByName(name string) (Label, bool) {
	if l, ok := g.labelIDs[name]; ok {
		return l, true
	}
	if g.ov != nil {
		if l, ok := g.ov.labelIDs[name]; ok {
			return l, true
		}
	}
	return 0, false
}

// Out returns the out-edges of v, sorted by (label, head). The slice is a
// contiguous CSR run (base or patch row); it aliases internal storage and
// must not be mutated.
func (g *Graph) Out(v VertexID) []Edge {
	if ov := g.ov; ov != nil {
		return ov.out.row(v, &g.out, ov.baseV)
	}
	return g.out.run(v)
}

// In returns the in-edges of v (Edge.To is the source vertex), sorted by
// (label, tail). The slice aliases internal storage and must not be
// mutated.
func (g *Graph) In(v VertexID) []Edge {
	if ov := g.ov; ov != nil {
		return ov.in.row(v, &g.in, ov.baseV)
	}
	return g.in.run(v)
}

// OutLabeled iterates the out-edges of v whose label is in L, one
// label-pure run at a time, skipping non-matching label runs entirely.
// With L = LabelUniverse it enumerates every edge, grouped by label.
func (g *Graph) OutLabeled(v VertexID, L labelset.Set) LabeledEdges {
	if ov := g.ov; ov != nil {
		return ov.out.labeled(v, L, &g.out, ov.baseV)
	}
	return g.out.labeled(v, L)
}

// InLabeled is OutLabeled over the in-adjacency (Edge.To is the source
// vertex).
func (g *Graph) InLabeled(v VertexID, L labelset.Set) LabeledEdges {
	if ov := g.ov; ov != nil {
		return ov.in.labeled(v, L, &g.in, ov.baseV)
	}
	return g.in.labeled(v, L)
}

// OutRuns returns the raw label-run view of v's out-edges — the
// zero-call-per-run form of OutLabeled for the innermost search loops
// (see EdgeRuns). On an overlay view a mutated vertex answers from its
// merged patch row (same run shape, deletions already masked) and an
// untouched vertex from its base row.
func (g *Graph) OutRuns(v VertexID) EdgeRuns {
	if ov := g.ov; ov != nil {
		return ov.out.runs(v, &g.out, ov.baseV)
	}
	return g.out.runs(v)
}

// InRuns is OutRuns over the in-adjacency.
func (g *Graph) InRuns(v VertexID) EdgeRuns {
	if ov := g.ov; ov != nil {
		return ov.in.runs(v, &g.in, ov.baseV)
	}
	return g.in.runs(v)
}

// OutWith returns the out-edges of v labeled exactly l, located by binary
// search — no edges outside the run are touched. The slice aliases
// internal storage and must not be mutated.
func (g *Graph) OutWith(v VertexID, l Label) []Edge {
	if ov := g.ov; ov != nil {
		return ov.out.with(v, l, &g.out, ov.baseV)
	}
	return g.out.with(v, l)
}

// InWith is OutWith over the in-adjacency.
func (g *Graph) InWith(v VertexID, l Label) []Edge {
	if ov := g.ov; ov != nil {
		return ov.in.with(v, l, &g.in, ov.baseV)
	}
	return g.in.with(v, l)
}

// OutDegree returns the number of out-edges of v.
func (g *Graph) OutDegree(v VertexID) int {
	if g.ov != nil {
		return len(g.Out(v))
	}
	return int(g.out.off[v+1] - g.out.off[v])
}

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v VertexID) int {
	if g.ov != nil {
		return len(g.In(v))
	}
	return int(g.in.off[v+1] - g.in.off[v])
}

// Degree returns the total degree of v.
func (g *Graph) Degree(v VertexID) int { return g.OutDegree(v) + g.InDegree(v) }

// HasEdge reports whether the edge (s, l, t) exists, by binary search over
// the (label, head)-sorted run of s — O(log deg) instead of the O(deg)
// scan the slice-of-slices layout forced. On an overlay view the search
// runs over s's merged row, so deleted instances do not count.
func (g *Graph) HasEdge(s VertexID, l Label, t VertexID) bool {
	es := g.Out(s)
	i := sort.Search(len(es), func(i int) bool {
		e := es[i]
		return e.Label > l || e.Label == l && e.To >= t
	})
	return i < len(es) && es[i].Label == l && es[i].To == t
}

// Triples calls fn for every edge of the graph, in (subject, label,
// object) order. It stops early if fn returns false.
func (g *Graph) Triples(fn func(Triple) bool) {
	n := g.NumVertices()
	for s := 0; s < n; s++ {
		for _, e := range g.Out(VertexID(s)) {
			if !fn(Triple{VertexID(s), e.Label, e.To}) {
				return
			}
		}
	}
}

// WithoutLabelIndex returns a view of g that shares the CSR edge storage
// (same edges, same offsets, same iteration order) but replaces the
// label-run index with degenerate one-edge runs: OutLabeled/InLabeled and
// OutRuns/InRuns then scan every edge of the vertex and test its label —
// exactly the access pattern of the pre-CSR slice-of-slices layout, on
// the identical code path. It exists so benchmarks and equivalence tests
// can compare the labeled scan against the filtering scan on bit-identical
// search behaviour.
func (g *Graph) WithoutLabelIndex() *Graph {
	h := *g
	h.out = degenerateRuns(g.out)
	h.in = degenerateRuns(g.in)
	if g.ov != nil {
		ov := *g.ov
		ov.out.a = degenerateRuns(g.ov.out.a)
		ov.in.a = degenerateRuns(g.ov.in.a)
		h.ov = &ov
	}
	return &h
}

// degenerateRuns rebuilds an adjacency's run index as one run per edge.
func degenerateRuns(a adjacency) adjacency {
	d := a
	d.runOff = a.off
	d.runStart = make([]uint32, len(a.edges))
	d.runLabel = make([]Label, len(a.edges))
	for i, e := range a.edges {
		d.runStart[i] = uint32(i)
		d.runLabel[i] = e.Label
	}
	return d
}

// Schema returns the RDFS schema store LS. It is never nil.
func (g *Graph) Schema() *Schema { return g.schema }

// Density returns |E|/|V|, the D of Figure 5.
func (g *Graph) Density() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// String summarises the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(|V|=%d |E|=%d |L|=%d)", g.NumVertices(), g.NumEdges(), g.NumLabels())
}

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	names      []string
	vertexIDs  map[string]VertexID
	labelNames []string
	labelIDs   map[string]Label

	edges  []Triple
	schema *Schema
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		vertexIDs: make(map[string]VertexID),
		labelIDs:  make(map[string]Label),
		schema:    NewSchema(),
	}
}

// Vertex interns a vertex by name and returns its ID, creating it on first
// use.
func (b *Builder) Vertex(name string) VertexID {
	if id, ok := b.vertexIDs[name]; ok {
		return id
	}
	id := VertexID(len(b.names))
	b.names = append(b.names, name)
	b.vertexIDs[name] = id
	return id
}

// Label interns a label by name and returns its ID. It panics if more than
// labelset.MaxLabels distinct labels are interned; the substrate's label
// universe is a single machine word by design (see package labelset).
func (b *Builder) Label(name string) Label {
	if l, ok := b.labelIDs[name]; ok {
		return l
	}
	if len(b.labelNames) >= labelset.MaxLabels {
		panic(fmt.Sprintf("graph: label universe exceeds %d (adding %q)", labelset.MaxLabels, name))
	}
	l := Label(len(b.labelNames))
	b.labelNames = append(b.labelNames, name)
	b.labelIDs[name] = l
	return l
}

// AddEdge records the edge (s, l, t). Parallel edges and self-loops are
// permitted (the graph is a multigraph).
func (b *Builder) AddEdge(s VertexID, l Label, t VertexID) {
	b.edges = append(b.edges, Triple{s, l, t})
}

// AddEdgeNames interns the endpoint and label names and records the edge.
func (b *Builder) AddEdgeNames(s, label, t string) {
	b.AddEdge(b.Vertex(s), b.Label(label), b.Vertex(t))
}

// Schema returns the mutable schema store being built.
func (b *Builder) Schema() *Schema { return b.schema }

// NumVertices returns the number of vertices interned so far.
func (b *Builder) NumVertices() int { return len(b.names) }

// NumEdges returns the number of edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the Builder into an immutable CSR Graph: flat edge arrays
// per direction, each vertex's run sorted by (label, head) with the
// label-run index alongside. The Builder may not be used afterwards.
func (b *Builder) Build() *Graph {
	n := len(b.names)
	g := &Graph{
		names:      b.names,
		vertexIDs:  b.vertexIDs,
		labelNames: b.labelNames,
		labelIDs:   b.labelIDs,
		numEdges:   len(b.edges),
		schema:     b.schema,
	}
	// One in-place sort of the triple list per direction; the flat edge
	// arrays then fill sequentially, so Build allocates exactly the final
	// storage.
	slices.SortFunc(b.edges, func(a, c Triple) int {
		if a.Subject != c.Subject {
			return int(a.Subject) - int(c.Subject)
		}
		if a.Label != c.Label {
			return int(a.Label) - int(c.Label)
		}
		return int(a.Object) - int(c.Object)
	})
	g.out = buildCSR(b.edges, n, func(t Triple) (VertexID, Edge) {
		return t.Subject, Edge{To: t.Object, Label: t.Label}
	})
	slices.SortFunc(b.edges, func(a, c Triple) int {
		if a.Object != c.Object {
			return int(a.Object) - int(c.Object)
		}
		if a.Label != c.Label {
			return int(a.Label) - int(c.Label)
		}
		return int(a.Subject) - int(c.Subject)
	})
	g.in = buildCSR(b.edges, n, func(t Triple) (VertexID, Edge) {
		return t.Object, Edge{To: t.Subject, Label: t.Label}
	})
	b.edges = nil
	return g
}

// buildCSR lays the (already vertex-then-label sorted) triples out as one
// adjacency direction, computing the offsets and the label-run index in a
// single pass.
func buildCSR(edges []Triple, n int, extract func(Triple) (VertexID, Edge)) adjacency {
	a := adjacency{
		edges:  make([]Edge, len(edges)),
		off:    make([]uint32, n+1),
		runOff: make([]uint32, n+1),
	}
	cur := VertexID(0)
	lastLabel := Label(0)
	for i, t := range edges {
		v, e := extract(t)
		for cur < v { // close out empty and finished vertices
			cur++
			a.off[cur] = uint32(i)
			a.runOff[cur] = uint32(len(a.runStart))
		}
		if len(a.runStart) == int(a.runOff[v]) || e.Label != lastLabel {
			a.runStart = append(a.runStart, uint32(i))
			a.runLabel = append(a.runLabel, e.Label)
			lastLabel = e.Label
		}
		a.edges[i] = e
	}
	for cur < VertexID(n) {
		cur++
		a.off[cur] = uint32(len(edges))
		a.runOff[cur] = uint32(len(a.runStart))
	}
	return a
}
