// Package graph implements the knowledge-graph substrate of the paper: a
// directed edge-labeled multigraph G = (V, E, ℒ, LS) (Definition 2.1) with
// vertex and label dictionaries and an RDFS schema store LS.
//
// Vertices are dense uint32 IDs assigned by a Builder; adjacency is stored
// both forward and backward so search algorithms and the SPARQL engine can
// traverse either direction. A Graph is immutable after Build and safe for
// concurrent readers.
package graph

import (
	"fmt"

	"lscr/internal/labelset"
)

// VertexID identifies a vertex. IDs are dense: 0..NumVertices-1.
type VertexID uint32

// NoVertex is a sentinel returned by lookups that find nothing.
const NoVertex = VertexID(^uint32(0))

// Label identifies an edge label; it is the same numeric space as
// labelset.Label.
type Label = labelset.Label

// Edge is one labeled arc endpoint as seen from some vertex's adjacency
// list. For an out-edge, To is the head; for an in-edge, To is the tail.
type Edge struct {
	To    VertexID
	Label Label
}

// Triple is a fully specified labeled edge (s, l, t).
type Triple struct {
	Subject VertexID
	Label   Label
	Object  VertexID
}

// Graph is an immutable edge-labeled multigraph with dictionaries and an
// RDFS schema. Build one with a Builder.
type Graph struct {
	names      []string            // vertex id -> name
	vertexIDs  map[string]VertexID // name -> vertex id
	labelNames []string            // label id -> name
	labelIDs   map[string]Label    // name -> label id

	out [][]Edge
	in  [][]Edge

	numEdges int
	schema   *Schema
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.names) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumLabels returns |ℒ|.
func (g *Graph) NumLabels() int { return len(g.labelNames) }

// LabelUniverse returns the label set containing every label of the graph.
func (g *Graph) LabelUniverse() labelset.Set { return labelset.Universe(g.NumLabels()) }

// VertexName returns the dictionary name of v.
func (g *Graph) VertexName(v VertexID) string { return g.names[v] }

// Vertex looks up a vertex by name, returning NoVertex if absent.
func (g *Graph) Vertex(name string) VertexID {
	if id, ok := g.vertexIDs[name]; ok {
		return id
	}
	return NoVertex
}

// LabelName returns the dictionary name of l.
func (g *Graph) LabelName(l Label) string { return g.labelNames[l] }

// LabelByName looks up a label by name. The second result reports whether
// the label exists.
func (g *Graph) LabelByName(name string) (Label, bool) {
	l, ok := g.labelIDs[name]
	return l, ok
}

// Out returns the out-edges of v. The slice aliases internal storage and
// must not be mutated.
func (g *Graph) Out(v VertexID) []Edge { return g.out[v] }

// In returns the in-edges of v (Edge.To is the source vertex). The slice
// aliases internal storage and must not be mutated.
func (g *Graph) In(v VertexID) []Edge { return g.in[v] }

// OutDegree returns the number of out-edges of v.
func (g *Graph) OutDegree(v VertexID) int { return len(g.out[v]) }

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v VertexID) int { return len(g.in[v]) }

// Degree returns the total degree of v.
func (g *Graph) Degree(v VertexID) int { return len(g.out[v]) + len(g.in[v]) }

// HasEdge reports whether the edge (s, l, t) exists.
func (g *Graph) HasEdge(s VertexID, l Label, t VertexID) bool {
	for _, e := range g.out[s] {
		if e.To == t && e.Label == l {
			return true
		}
	}
	return false
}

// Triples calls fn for every edge of the graph, in subject order. It stops
// early if fn returns false.
func (g *Graph) Triples(fn func(Triple) bool) {
	for s := range g.out {
		for _, e := range g.out[s] {
			if !fn(Triple{VertexID(s), e.Label, e.To}) {
				return
			}
		}
	}
}

// Schema returns the RDFS schema store LS. It is never nil.
func (g *Graph) Schema() *Schema { return g.schema }

// Density returns |E|/|V|, the D of Figure 5.
func (g *Graph) Density() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.numEdges) / float64(g.NumVertices())
}

// String summarises the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(|V|=%d |E|=%d |L|=%d)", g.NumVertices(), g.numEdges, g.NumLabels())
}

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	names      []string
	vertexIDs  map[string]VertexID
	labelNames []string
	labelIDs   map[string]Label

	edges  []Triple
	schema *Schema
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		vertexIDs: make(map[string]VertexID),
		labelIDs:  make(map[string]Label),
		schema:    NewSchema(),
	}
}

// Vertex interns a vertex by name and returns its ID, creating it on first
// use.
func (b *Builder) Vertex(name string) VertexID {
	if id, ok := b.vertexIDs[name]; ok {
		return id
	}
	id := VertexID(len(b.names))
	b.names = append(b.names, name)
	b.vertexIDs[name] = id
	return id
}

// Label interns a label by name and returns its ID. It panics if more than
// labelset.MaxLabels distinct labels are interned; the substrate's label
// universe is a single machine word by design (see package labelset).
func (b *Builder) Label(name string) Label {
	if l, ok := b.labelIDs[name]; ok {
		return l
	}
	if len(b.labelNames) >= labelset.MaxLabels {
		panic(fmt.Sprintf("graph: label universe exceeds %d (adding %q)", labelset.MaxLabels, name))
	}
	l := Label(len(b.labelNames))
	b.labelNames = append(b.labelNames, name)
	b.labelIDs[name] = l
	return l
}

// AddEdge records the edge (s, l, t). Parallel edges and self-loops are
// permitted (the graph is a multigraph).
func (b *Builder) AddEdge(s VertexID, l Label, t VertexID) {
	b.edges = append(b.edges, Triple{s, l, t})
}

// AddEdgeNames interns the endpoint and label names and records the edge.
func (b *Builder) AddEdgeNames(s, label, t string) {
	b.AddEdge(b.Vertex(s), b.Label(label), b.Vertex(t))
}

// Schema returns the mutable schema store being built.
func (b *Builder) Schema() *Schema { return b.schema }

// NumVertices returns the number of vertices interned so far.
func (b *Builder) NumVertices() int { return len(b.names) }

// NumEdges returns the number of edges recorded so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build freezes the Builder into an immutable Graph. The Builder may not
// be used afterwards.
func (b *Builder) Build() *Graph {
	n := len(b.names)
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for _, e := range b.edges {
		outDeg[e.Subject]++
		inDeg[e.Object]++
	}
	out := make([][]Edge, n)
	in := make([][]Edge, n)
	// Two backing arrays shared by all adjacency slices keep the graph
	// cache-friendly and halve allocator pressure on large builds.
	outBack := make([]Edge, len(b.edges))
	inBack := make([]Edge, len(b.edges))
	var op, ip int
	for v := 0; v < n; v++ {
		out[v] = outBack[op : op : op+int(outDeg[v])]
		op += int(outDeg[v])
		in[v] = inBack[ip : ip : ip+int(inDeg[v])]
		ip += int(inDeg[v])
	}
	for _, e := range b.edges {
		out[e.Subject] = append(out[e.Subject], Edge{To: e.Object, Label: e.Label})
		in[e.Object] = append(in[e.Object], Edge{To: e.Subject, Label: e.Label})
	}
	g := &Graph{
		names:      b.names,
		vertexIDs:  b.vertexIDs,
		labelNames: b.labelNames,
		labelIDs:   b.labelIDs,
		out:        out,
		in:         in,
		numEdges:   len(b.edges),
		schema:     b.schema,
	}
	b.edges = nil
	return g
}
