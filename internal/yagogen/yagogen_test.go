package yagogen

import (
	"sort"
	"testing"

	"lscr/internal/graph"
)

func TestGenerateBasics(t *testing.T) {
	g := Generate(DefaultConfig(2000))
	if g.NumVertices() < 2000 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	d := g.Density()
	if d < 1.5 || d > 5 {
		t.Errorf("density = %.2f, want YAGO-like ≈ 3", d)
	}
	if g.NumLabels() > 40 {
		t.Errorf("labels = %d, exceeds expectation", g.NumLabels())
	}
	if g.Schema().NumInstances() != 2000 {
		t.Errorf("schema instances = %d, want 2000", g.Schema().NumInstances())
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(DefaultConfig(500))
	b := Generate(DefaultConfig(500))
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("not deterministic")
	}
}

// TestScaleFree: the in-degree distribution must be heavy-tailed — the
// top 1% of vertices should hold a disproportionate share of in-edges.
func TestScaleFree(t *testing.T) {
	g := Generate(DefaultConfig(5000))
	degs := make([]int, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		degs[v] = g.InDegree(graph.VertexID(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	total := 0
	for _, d := range degs {
		total += d
	}
	top := 0
	for _, d := range degs[:len(degs)/100] {
		top += d
	}
	share := float64(top) / float64(total)
	if share < 0.25 {
		t.Errorf("top-1%% in-degree share = %.2f, want heavy tail (> 0.25)", share)
	}
}

func TestDegenerateConfigs(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Entities: 1},
		{Entities: 3, EdgesPerEntity: 0, Classes: 0, Relations: 0},
	} {
		g := Generate(cfg)
		if g.NumVertices() == 0 {
			t.Errorf("config %+v yields empty graph", cfg)
		}
	}
}

func TestZipfIndexBounds(t *testing.T) {
	g := Generate(Config{Entities: 100, EdgesPerEntity: 2, Classes: 1, Relations: 1, Seed: 5})
	if g.NumVertices() == 0 {
		t.Fatal("empty")
	}
}

func TestConfigForEdges(t *testing.T) {
	for _, target := range []int{1, 30000, 120000} {
		cfg := ConfigForEdges(target)
		g := Generate(cfg)
		if g.NumEdges() < target {
			t.Errorf("ConfigForEdges(%d) generated only %d edges", target, g.NumEdges())
		}
	}
}
