// Package yagogen generates scale-free knowledge graphs in the shape of
// YAGO [18], the real KG of the paper's §6.2 experiment. The original
// YAGO dump is not redistributable here; what the experiment actually
// exercises — a scale-free degree distribution, a class/instance schema
// layer, and a Zipfian relation-label mix over which random substructure
// constraints of controlled |V(S,G)| can be generated — is reproduced
// synthetically (see DESIGN.md §5).
//
// The generator uses preferential attachment (the paper cites [20] for
// RDFS representing KGs as scale-free networks): each new entity attaches
// its out-edges to targets sampled proportionally to degree, producing a
// heavy-tailed in-degree distribution like YAGO's.
package yagogen

import (
	"fmt"
	"math/rand"

	"lscr/internal/graph"
	"lscr/internal/rdf"
)

// Config parametrises the generator.
type Config struct {
	// Entities is the number of instance vertices (classes and literals
	// are added on top).
	Entities int
	// EdgesPerEntity is the mean number of relation out-edges per entity
	// (YAGO: |E|/|V| ≈ 3.2 including type edges).
	EdgesPerEntity int
	// Classes is the size of the class layer.
	Classes int
	// Relations is the number of relation labels (plus rdf:type).
	Relations int
	Seed      int64
}

// DefaultConfig returns a configuration mirroring YAGO's shape at the
// given entity count.
func DefaultConfig(entities int) Config {
	return Config{
		Entities:       entities,
		EdgesPerEntity: 2,
		Classes:        40,
		Relations:      30,
		Seed:           1,
	}
}

// edgesPerEntity is the measured total edge yield per entity at
// DefaultConfig (relation out-edges plus type/taxonomy edges ≈ 3.0;
// rounded down so ConfigForEdges overshoots rather than undershoots).
const edgesPerEntity = 2.8

// ConfigForEdges returns a DefaultConfig scaled so the generated graph
// has at least edges edges — the sizing knob of the scale benchmark
// tier and kggen's -edges flag.
func ConfigForEdges(edges int) Config {
	entities := int(float64(edges)/edgesPerEntity) + 1
	if entities < 2 {
		entities = 2
	}
	return DefaultConfig(entities)
}

// Generate builds the knowledge graph.
func Generate(cfg Config) *graph.Graph {
	if cfg.Entities < 2 {
		cfg.Entities = 2
	}
	if cfg.EdgesPerEntity < 1 {
		cfg.EdgesPerEntity = 1
	}
	if cfg.Classes < 1 {
		cfg.Classes = 1
	}
	if cfg.Relations < 1 {
		cfg.Relations = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	classZipf := rand.NewZipf(rng, 1.5, 1, uint64(cfg.Classes-1))
	relZipf := rand.NewZipf(rng, 1.2, 4, uint64(cfg.Relations-1))
	b := graph.NewBuilder()

	// Class layer with a subclass chain, like YAGO's taxonomy backbone.
	classes := make([]string, cfg.Classes)
	for i := range classes {
		classes[i] = fmt.Sprintf("class%d", i)
		b.Schema().AddClass(classes[i])
		if i > 0 {
			rdf.AddTriple(b, rdf.Triple{
				Subject:   classes[i],
				Predicate: rdf.SubClassOfPredicate,
				Object:    classes[(i-1)/2],
			})
		}
	}
	relations := make([]string, cfg.Relations)
	for i := range relations {
		relations[i] = fmt.Sprintf("rel%d", i)
	}

	// Entities with preferential attachment. The repeated-targets slice
	// doubles as the attachment distribution: every edge endpoint is
	// appended, so sampling uniformly from it is degree-proportional.
	entities := make([]graph.VertexID, cfg.Entities)
	var attach []graph.VertexID
	typeLabel := b.Label(rdf.TypePredicate)
	for i := 0; i < cfg.Entities; i++ {
		name := fmt.Sprintf("e%d", i)
		v := b.Vertex(name)
		entities[i] = v
		// Zipfian class choice: low class IDs are much more common.
		class := classes[classZipf.Uint64()]
		b.Schema().AddInstance(class, v)
		b.AddEdge(v, typeLabel, b.Vertex(class))
		attach = append(attach, v)

		m := 1 + rng.Intn(2*cfg.EdgesPerEntity-1)
		for j := 0; j < m && i > 0; j++ {
			var target graph.VertexID
			if rng.Intn(5) == 0 {
				target = entities[rng.Intn(i)] // uniform escape hatch
			} else {
				target = attach[rng.Intn(len(attach))]
			}
			if target == v {
				continue
			}
			rel := relations[relZipf.Uint64()]
			// Half the relations point away from the new entity, half
			// toward it (YAGO mixes e.g. bornIn with hasChild), keeping
			// forward reachability rich and cyclic like the real KG.
			if rng.Intn(2) == 0 {
				b.AddEdge(v, b.Label(rel), target)
			} else {
				b.AddEdge(target, b.Label(rel), v)
			}
			attach = append(attach, target, v)
		}
	}
	return b.Build()
}
