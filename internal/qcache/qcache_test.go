package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestSingleShardStrictLRU(t *testing.T) {
	// Capacity below the shard fan-out degrades to one shard, which must
	// behave as a textbook LRU.
	c := New[int](2)
	if len(c.shards) != 2 {
		t.Fatalf("capacity 2: %d shards, want 2", len(c.shards))
	}
	c = New[int](1)
	if len(c.shards) != 1 {
		t.Fatalf("capacity 1: %d shards, want 1", len(c.shards))
	}
	c.Add("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Add("b", 2) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived eviction at capacity 1")
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %d, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Capacity != 1 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionEvictsLeastRecentlyUsed(t *testing.T) {
	// New(3) yields 2 shards (largest power of two ≤ 3). To test strict
	// recency deterministically we need one shard: craft keys until three
	// land in the same shard of a 2-shard cache.
	c := New[int](2) // 2 shards × capacity 1
	keys := sameShardKeys(c.mask, 3)
	c.Add(keys[0], 0)
	c.Add(keys[1], 1) // evicts keys[0] within the shared shard
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest same-shard key survived")
	}
	if v, ok := c.Get(keys[1]); !ok || v != 1 {
		t.Fatal("newest same-shard key evicted")
	}
	// Refreshing recency protects an entry from eviction.
	c.Add(keys[1], 1)
	c.Get(keys[1])
	c.Add(keys[2], 2)
	if _, ok := c.Get(keys[2]); !ok {
		t.Fatal("inserted key missing")
	}
}

// sameShardKeys generates n distinct keys hashing into the same shard.
func sameShardKeys(mask uint32, n int) []string {
	want := uint32(0)
	var out []string
	for i := 0; len(out) < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if fnv1a(k)&mask == want {
			out = append(out, k)
		}
	}
	return out
}

func TestCapacityNeverExceeded(t *testing.T) {
	const capacity = 8
	c := New[int](capacity)
	for i := 0; i < 200; i++ {
		c.Add(fmt.Sprintf("key-%d", i), i)
		if n := c.Len(); n > capacity {
			t.Fatalf("after %d inserts: %d entries > capacity %d", i+1, n, capacity)
		}
	}
	st := c.Stats()
	if st.Capacity != capacity {
		t.Fatalf("capacity sums to %d, want %d", st.Capacity, capacity)
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := New[int](4)
	c.Add("k", 1)
	c.Add("k", 2)
	if v, _ := c.Get("k"); v != 2 {
		t.Fatalf("update lost: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate entry for one key: Len = %d", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	// Hammer one cache from many goroutines; run under -race. Counters
	// must balance: every Get is exactly one hit or one miss.
	c := New[int](32)
	const goroutines = 8
	const ops = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("key-%d", (g*7+i)%48)
				if _, ok := c.Get(key); !ok {
					c.Add(key, i)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*ops {
		t.Fatalf("hits %d + misses %d != %d gets", st.Hits, st.Misses, goroutines*ops)
	}
	if st.Entries > 32 {
		t.Fatalf("entries %d exceed capacity", st.Entries)
	}
}

func TestNewPanicsOnNonPositiveCapacity(t *testing.T) {
	for _, bad := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New[int](bad)
		}()
	}
}
