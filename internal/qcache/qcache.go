// Package qcache provides a concurrency-safe, sharded LRU cache keyed
// by string. The public engine uses it to memoize compiled substructure
// constraints together with their V(S,G) vertex sets: the KG and the
// Engine are immutable after construction, so a cached entry never needs
// invalidation — the cache is a pure capacity/recency structure.
//
// Concurrency: keys are distributed over power-of-two many shards by an
// FNV-1a hash, each shard guarded by its own mutex, so concurrent
// readers with disjoint keys rarely contend. Within one shard, Get is a
// map lookup plus an LRU-list move; Add evicts the least recently used
// entry when the shard is at capacity. All operations are O(1). Shards
// are padded to cache-line multiples so readers on disjoint shards do
// not false-share mutex words (see shard).
package qcache

import (
	"container/list"
	"sync"
	"unsafe"
)

// defaultShards bounds the shard fan-out. 16 shards keep contention
// negligible at any realistic core count while staying cheap to sum in
// Stats.
const defaultShards = 16

// Cache is a sharded LRU cache from string keys to V values. The zero
// value is not usable; call New.
type Cache[V any] struct {
	shards []shard
	mask   uint32
}

// shardState is the mutable per-shard state. It carries no V so its
// size is a compile-time constant, which lets shard pad it exactly.
type shardState struct {
	mu           sync.Mutex
	capacity     int
	order        *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses int64
}

// cacheLine is the assumed L1 line size.
const cacheLine = 64

// shard pads shardState to a multiple of two cache lines. All shards
// live adjacently in one slice; unpadded, two ~48-byte shards share a
// 64-byte line and concurrent readers on disjoint shards ping-pong the
// line holding both mutex words. Two lines rather than one because the
// slice base is only guaranteed 8-byte-aligned (one line of padding can
// still leave a shard's trailing hot counters on the same line as its
// neighbour's mutex) and because x86's adjacent-line prefetcher pulls
// lines in pairs. BenchmarkCacheGetContended (-cpu 1,4) measures the
// effect against the unpadded layout.
type shard struct {
	shardState
	_ [(2*cacheLine - unsafe.Sizeof(shardState{})%(2*cacheLine)) % (2 * cacheLine)]byte
}

type entry[V any] struct {
	key string
	val V
}

// New returns a cache holding at most capacity entries in total.
// Capacity must be positive. The shard count is the largest power of
// two that is at most min(defaultShards, capacity), so small caches
// degrade to a single strict-LRU shard.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		panic("qcache: capacity must be positive")
	}
	n := 1
	for n*2 <= defaultShards && n*2 <= capacity {
		n *= 2
	}
	c := &Cache[V]{shards: make([]shard, n), mask: uint32(n - 1)}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = base
		if i < rem {
			s.capacity++
		}
		s.order = list.New()
		s.items = make(map[string]*list.Element, s.capacity)
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash, inlined to avoid per-call allocation.
func fnv1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

func (c *Cache[V]) shardFor(key string) *shard {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the value cached under key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.hits++
		s.order.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	s.misses++
	var zero V
	return zero, false
}

// Add inserts (or refreshes) key → val as the most recently used entry,
// evicting the least recently used entry of the key's shard when the
// shard is full.
func (c *Cache[V]) Add(key string, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry[V]).val = val
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		delete(s.items, oldest.Value.(*entry[V]).key)
		s.order.Remove(oldest)
	}
	s.items[key] = s.order.PushFront(&entry[V]{key: key, val: val})
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits     int64
	Misses   int64
	Entries  int
	Capacity int
	Shards   int
}

// Stats sums the per-shard counters.
func (c *Cache[V]) Stats() Stats {
	st := Stats{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Entries += s.order.Len()
		st.Capacity += s.capacity
		s.mu.Unlock()
	}
	return st
}
