package qcache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestShardPadding pins the layout contract the contention fix relies
// on: shards are a multiple of two cache lines, so two shards' mutex
// words can never land on the same 64-byte line (nor on the adjacent
// line the hardware prefetcher pairs with it) regardless of where the
// runtime places the backing array.
func TestShardPadding(t *testing.T) {
	if sz := unsafe.Sizeof(shard{}); sz%(2*cacheLine) != 0 {
		t.Fatalf("shard size = %d, want a multiple of %d", sz, 2*cacheLine)
	}
	c := New[int](1024)
	if len(c.shards) < 2 {
		t.Fatalf("expected multiple shards, got %d", len(c.shards))
	}
	a := uintptr(unsafe.Pointer(&c.shards[0].mu))
	b := uintptr(unsafe.Pointer(&c.shards[1].mu))
	if d := b - a; d < 2*cacheLine {
		t.Fatalf("adjacent shard mutexes %d bytes apart, want >= %d", d, 2*cacheLine)
	}
}

// legacyShard reproduces the pre-padding layout: ~48-byte shards packed
// adjacently, so shard i's mutex shares a cache line with shard i-1's
// hot hit/miss counters. Kept test-only as the "before" arm of the
// contention benchmark.
type legacyShard struct {
	mu           sync.Mutex
	capacity     int
	order        *list.List
	items        map[string]*list.Element
	hits, misses int64
}

type legacyCache struct {
	shards []legacyShard
	mask   uint32
}

func newLegacy(capacity, shards int) *legacyCache {
	c := &legacyCache{shards: make([]legacyShard, shards), mask: uint32(shards - 1)}
	per := capacity / shards
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = per
		s.order = list.New()
		s.items = make(map[string]*list.Element, per)
	}
	return c
}

func (c *legacyCache) get(key string) (int, bool) {
	s := &c.shards[fnv1a(key)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.hits++
		s.order.MoveToFront(el)
		return el.Value.(*entry[int]).val, true
	}
	s.misses++
	return 0, false
}

func (c *legacyCache) add(key string, val int) {
	s := &c.shards[fnv1a(key)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		delete(s.items, oldest.Value.(*entry[int]).key)
		s.order.Remove(oldest)
	}
	s.items[key] = s.order.PushFront(&entry[int]{key: key, val: val})
}

// contentionKeys builds one key set per worker slot, each slot's keys
// hashing to a distinct shard, so concurrent Gets are logically
// disjoint: any slowdown at -cpu > 1 relative to the padded layout is
// false sharing, not lock contention.
func contentionKeys(shards, perSlot int) [][]string {
	out := make([][]string, shards)
	next := 0
	for len(out[0]) < perSlot {
		key := fmt.Sprintf("k%d", next)
		next++
		slot := int(fnv1a(key) & uint32(shards-1))
		if len(out[slot]) < perSlot {
			out[slot] = append(out[slot], key)
		}
	}
	// Top up the slots the greedy pass left short.
	for slot := range out {
		for len(out[slot]) < perSlot {
			key := fmt.Sprintf("k%d", next)
			next++
			if int(fnv1a(key)&uint32(shards-1)) == slot {
				out[slot] = append(out[slot], key)
			}
		}
	}
	return out
}

// Run with: go test ./internal/qcache -bench CacheGetContended -cpu 1,4
// The padded/legacy pair is the before/after proof of the false-sharing
// fix: legacy throughput collapses as -cpu grows while the padded real
// cache scales with the hardware.
func BenchmarkCacheGetContended(b *testing.B) {
	const shards, perSlot = 16, 64
	keys := contentionKeys(shards, perSlot)

	b.Run("padded", func(b *testing.B) {
		c := New[int](shards * perSlot)
		for _, slot := range keys {
			for i, k := range slot {
				c.Add(k, i)
			}
		}
		var slot atomic.Uint32
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			mine := keys[int(slot.Add(1)-1)%shards]
			i := 0
			for pb.Next() {
				c.Get(mine[i%len(mine)])
				i++
			}
		})
	})

	b.Run("legacy-unpadded", func(b *testing.B) {
		c := newLegacy(shards*perSlot, shards)
		for _, slot := range keys {
			for i, k := range slot {
				c.add(k, i)
			}
		}
		var slot atomic.Uint32
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			mine := keys[int(slot.Add(1)-1)%shards]
			i := 0
			for pb.Next() {
				c.get(mine[i%len(mine)])
				i++
			}
		})
	})
}
