package sparql

import (
	"strings"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/testkg"
)

func exampleGraph() *graph.Graph {
	g, _ := testkg.RunningExample()
	return g
}

func TestParseBasics(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x <friendOf> <v3>. <v3> <likes> ?y. }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Focus != "x" || len(q.Patterns) != 2 {
		t.Fatalf("query = %+v", q)
	}
	if !q.Patterns[0].Subject.IsVar || q.Patterns[0].Subject.Text != "x" {
		t.Errorf("subject = %+v", q.Patterns[0].Subject)
	}
	if q.Patterns[0].Predicate != "friendOf" || q.Patterns[0].Object.Text != "v3" {
		t.Errorf("pattern = %+v", q.Patterns[0])
	}
}

func TestParseVariants(t *testing.T) {
	good := []string{
		`select ?x where { ?x <p> <a> . }`,                    // lowercase keywords
		`SELECT ?x WHERE { ?x <p> 'lit'. }`,                   // single-quoted literal
		`SELECT ?x WHERE { ?x <p> "lit". }`,                   // double-quoted literal
		`SELECT ?x WHERE {?x <p> <a>}`,                        // no trailing dot
		`SELECT ?x WHERE { ?x <p> <a>. ?x <q> ?y . }`,         // multiple patterns
		"SELECT ?x\nWHERE {\n ?x <p> <a> .\n}",                // newlines
		`SELECT ?x WHERE { ?x <ub:name> 'GraduateStudent4'.}`, // paper style, no space before '.'
	}
	for _, s := range good {
		if _, err := Parse(s); err != nil {
			t.Errorf("Parse(%q) failed: %v", s, err)
		}
	}
	bad := []string{
		``,
		`WHERE { ?x <p> <a>. }`,              // missing SELECT
		`SELECT x WHERE { ?x <p> <a>. }`,     // focus not a variable
		`SELECT ?x { ?x <p> <a>. }`,          // missing WHERE
		`SELECT ?x WHERE ?x <p> <a>.`,        // missing braces
		`SELECT ?x WHERE { }`,                // empty group
		`SELECT ?x WHERE { ?x ?p <a>. }`,     // variable predicate
		`SELECT ?x WHERE { ?x <p> <a>. } x`,  // trailing tokens
		`SELECT ?x WHERE { ?x <p <a>. }`,     // unterminated IRI
		`SELECT ?x WHERE { ?x <p> 'lit. }`,   // unterminated literal
		`SELECT ? WHERE { ?x <p> <a>. }`,     // empty var name
		`SELECT ?x WHERE { ?x <p> <a> <b>.}`, // 4-term triple
		`SELECT ?x WHERE { ?x <p> <a>, }`,    // bad separator byte
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestSelectRunningExample(t *testing.T) {
	g := exampleGraph()
	e := NewEngine(g)
	// S0 of Figure 3(b): only v1 and v2 satisfy it (§3 of the paper).
	got, err := e.Select(`SELECT ?x WHERE { ?x <friendOf> <v3>. <v3> <likes> ?y. }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.VertexID{g.Vertex("v1"), g.Vertex("v2")}
	if len(got) != len(want) {
		t.Fatalf("V(S0,G0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("V(S0,G0) = %v, want %v", got, want)
		}
	}
}

func TestSelectUnknownNamesYieldEmpty(t *testing.T) {
	e := NewEngine(exampleGraph())
	for _, q := range []string{
		`SELECT ?x WHERE { ?x <nosuchlabel> <v3>. }`,
		`SELECT ?x WHERE { ?x <friendOf> <nosuchvertex>. }`,
	} {
		got, err := e.Select(q)
		if err != nil {
			t.Errorf("Select(%q) error: %v", q, err)
		}
		if len(got) != 0 {
			t.Errorf("Select(%q) = %v, want empty", q, got)
		}
	}
}

func TestSelectFocusUnused(t *testing.T) {
	e := NewEngine(exampleGraph())
	if _, err := e.Select(`SELECT ?z WHERE { ?x <friendOf> <v3>. }`); err == nil {
		t.Fatal("want validation error for unused focus")
	}
}

func TestSelectMalformed(t *testing.T) {
	e := NewEngine(exampleGraph())
	if _, err := e.Select(`garbage`); err == nil {
		t.Fatal("want parse error")
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `SELECT ?x WHERE { ?x <friendOf> <v3>. <v3> <likes> ?y. }`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip: %q != %q", q2.String(), q.String())
	}
}

// Property: any query assembled from sanitized identifiers parses, and its
// String() re-parses to an identical AST.
func TestParsePrintParseProperty(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		b.WriteByte('n')
		for _, r := range s {
			if r < 128 && (r == ':' || r == '_' || r == '-' ||
				'a' <= r && r <= 'z' || 'A' <= r && r <= 'Z' || '0' <= r && r <= '9') {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	prop := func(focus, p1, s1, o1 string, sVar, oVar bool) bool {
		f := sanitize(focus)
		q := &Query{Focus: f}
		st := Term{IsVar: sVar, Text: sanitize(s1)}
		ot := Term{IsVar: oVar, Text: sanitize(o1)}
		if sVar {
			st.Text = f // keep focus used
		}
		q.Patterns = append(q.Patterns, TriplePat{st, sanitize(p1), ot})
		q2, err := Parse(q.String())
		if err != nil {
			return false
		}
		return q2.String() == q.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectTuplesMultiVar(t *testing.T) {
	g := exampleGraph()
	e := NewEngine(g)
	vars, rows, err := e.SelectTuples(`SELECT ?x ?y WHERE { ?x <friendOf> ?y. }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Fatalf("vars = %v", vars)
	}
	// friendOf edges: v0->v1, v1->v3, v2->v3.
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	seen := map[[2]string]bool{}
	for _, r := range rows {
		seen[[2]string{g.VertexName(r[0]), g.VertexName(r[1])}] = true
	}
	for _, want := range [][2]string{{"v0", "v1"}, {"v1", "v3"}, {"v2", "v3"}} {
		if !seen[want] {
			t.Errorf("missing tuple %v in %v", want, rows)
		}
	}
}

func TestSelectTuplesDistinct(t *testing.T) {
	g := exampleGraph()
	e := NewEngine(g)
	// ?x projected alone over a two-variable pattern: duplicates from
	// different ?y bindings must collapse.
	vars, rows, err := e.SelectTuples(`SELECT ?x WHERE { ?x <friendOf> ?y. }`)
	if err != nil || len(vars) != 1 {
		t.Fatal(err)
	}
	if len(rows) != 3 { // v0, v1, v2
		t.Fatalf("rows = %v", rows)
	}
}

// Property: SelectTuples projected on the focus variable equals Select.
func TestSelectTuplesAgreesWithSelect(t *testing.T) {
	g := exampleGraph()
	e := NewEngine(g)
	for _, q := range []string{
		`SELECT ?x WHERE { ?x <friendOf> <v3>. <v3> <likes> ?y. }`,
		`SELECT ?x WHERE { ?x <likes> ?y. }`,
		`SELECT ?x WHERE { ?x <friendOf> ?y. ?y <likes> ?z. }`,
	} {
		want, err := e.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		_, rows, err := e.SelectTuples(q)
		if err != nil {
			t.Fatal(err)
		}
		got := map[graph.VertexID]bool{}
		for _, r := range rows {
			got[r[0]] = true
		}
		if len(got) != len(want) {
			t.Fatalf("%s: tuples %v vs select %v", q, rows, want)
		}
		for _, v := range want {
			if !got[v] {
				t.Fatalf("%s: missing %v", q, v)
			}
		}
	}
}

func TestSelectTuplesErrors(t *testing.T) {
	e := NewEngine(exampleGraph())
	if _, _, err := e.SelectTuples(`garbage`); err == nil {
		t.Error("parse error not surfaced")
	}
	// Unknown entity: empty result, no error.
	vars, rows, err := e.SelectTuples(`SELECT ?x ?y WHERE { ?x <friendOf> <nosuch>. ?x <likes> ?y. }`)
	if err != nil || len(rows) != 0 || len(vars) != 2 {
		t.Errorf("vars=%v rows=%v err=%v", vars, rows, err)
	}
}

func TestParseMultiVarRoundTrip(t *testing.T) {
	q, err := Parse(`SELECT ?a ?b WHERE { ?a <p> ?b. }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 2 || q.Focus != "a" {
		t.Fatalf("query = %+v", q)
	}
	q2, err := Parse(q.String())
	if err != nil || q2.String() != q.String() {
		t.Fatalf("round trip: %q vs %q (%v)", q2.String(), q.String(), err)
	}
}

func TestTable3StyleQueries(t *testing.T) {
	// The S1/S2 shapes of Table 3 parse (semantics tested in the lubm
	// package where the dataset exists).
	for _, q := range []string{
		`SELECT ?x WHERE { ?x <ub:researchInterest> 'Research12'.}`,
		`SELECT ?x WHERE { ?x <ub:researchInterest> 'Research12'. ?x <rdf:type> <ub:AssociateProfessor>.}`,
		`SELECT ?x WHERE {?x <rdf:type> <ub:UndergraduateStudent>. ?x <ub:takesCourse> ?y. ?y <rdf:type> <ub:Course>.}`,
	} {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}
