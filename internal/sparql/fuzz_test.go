package sparql

import "testing"

// FuzzParse asserts the SPARQL parser never panics, and that accepted
// queries survive a print/parse round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`SELECT ?x WHERE { ?x <p> <a>. }`,
		`SELECT ?x ?y WHERE { ?x <p> ?y. ?y <q> 'lit'. }`,
		`select ?x where {?x <p> <a>}`,
		`SELECT ?x WHERE { }`,
		`SELECT WHERE`,
		`SELECT ?x WHERE { ?x <p `,
		`SELECT ?x WHERE { ?x <p> "unterminated }`,
		"SELECT ?x\nWHERE\t{ ?x <p> <a> . }",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("printed form of accepted query does not parse: %q -> %q: %v", src, q.String(), err)
		}
		if q2.String() != q.String() {
			t.Fatalf("round trip changed: %q vs %q", q2.String(), q.String())
		}
	})
}
