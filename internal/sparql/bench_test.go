package sparql

import (
	"testing"

	"lscr/internal/lubm"
)

const benchQuery = `SELECT ?x WHERE {?x <rdf:type> <ub:UndergraduateStudent>. ?x <ub:takesCourse> ?y. ?y <rdf:type> <ub:Course>.}`

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectS1(b *testing.B) {
	g := lubm.Generate(lubm.DefaultConfig(1))
	e := NewEngine(g)
	c, _ := lubm.Constraint("S1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Select(c.SPARQL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectS3(b *testing.B) {
	g := lubm.Generate(lubm.DefaultConfig(1))
	e := NewEngine(g)
	c, _ := lubm.Constraint("S3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Select(c.SPARQL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectS4EightPatterns(b *testing.B) {
	g := lubm.Generate(lubm.DefaultConfig(1))
	e := NewEngine(g)
	c, _ := lubm.Constraint("S4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Select(c.SPARQL); err != nil {
			b.Fatal(err)
		}
	}
}
