// Package sparql implements the miniature SPARQL engine the paper's UIS*
// and INS algorithms rely on to obtain V(S,G) (§4): a parser for
// single-projection SELECT queries over basic graph patterns, and an
// evaluator backed by the pattern matcher.
//
// Supported grammar (whitespace-insensitive, keywords case-insensitive):
//
//	SELECT ?x WHERE { triple . triple . ... }
//	triple  := term term term
//	term    := ?name | <iri> | 'literal' | "literal"
//
// Literals denote vertices named by their content (the graph substrate
// interns literals as vertices, mirroring the paper's treatment of e.g.
// 'Research12' in Table 3). The engine is exact and returns the full
// result set, which is exactly how the paper configures its engine
// (UNIMax = Max = +∞, Eδ = 1; §6 "Settings").
package sparql

import (
	"errors"
	"fmt"
	"strings"
	"unicode"

	"lscr/internal/graph"
	"lscr/internal/pattern"
)

// Term is a parsed query term.
type Term struct {
	IsVar bool
	Text  string // variable name (no '?') or entity/label name
}

// TriplePat is a parsed triple pattern. The predicate must be a constant.
type TriplePat struct {
	Subject   Term
	Predicate string
	Object    Term
}

// Query is the AST of a SELECT query. Vars holds every projected
// variable in order; Focus is the first one (the substructure-constraint
// machinery projects exactly one variable, the ?x of Definition 2.2,
// while SelectTuples handles multi-variable projections).
type Query struct {
	Focus    string   // first projected variable name, without '?'
	Vars     []string // all projected variables
	Patterns []TriplePat
}

// Parse errors.
var (
	ErrSyntax = errors.New("sparql: syntax error")
)

type parser struct {
	toks []token
	pos  int
}

type tokKind uint8

const (
	tokWord tokKind = iota // bare keyword (SELECT, WHERE)
	tokVar                 // ?name
	tokIRI                 // <...>
	tokLit                 // '...' or "..."
	tokLBrace
	tokRBrace
	tokDot
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{"})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}"})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, "."})
			i++
		case c == '?':
			j := i + 1
			for j < len(s) && (isWordByte(s[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("%w: empty variable name at offset %d", ErrSyntax, i)
			}
			toks = append(toks, token{tokVar, s[i+1 : j]})
			i = j
		case c == '<':
			j := strings.IndexByte(s[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("%w: unterminated IRI at offset %d", ErrSyntax, i)
			}
			toks = append(toks, token{tokIRI, s[i+1 : i+j]})
			i += j + 1
		case c == '\'' || c == '"':
			j := strings.IndexByte(s[i+1:], c)
			if j < 0 {
				return nil, fmt.Errorf("%w: unterminated literal at offset %d", ErrSyntax, i)
			}
			toks = append(toks, token{tokLit, s[i+1 : i+1+j]})
			i += j + 2
		case isWordByte(c):
			j := i
			for j < len(s) && isWordByte(s[j]) {
				j++
			}
			toks = append(toks, token{tokWord, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("%w: unexpected byte %q at offset %d", ErrSyntax, c, i)
		}
	}
	return toks, nil
}

func isWordByte(c byte) bool {
	return c == '_' || c == ':' || c == '-' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// Parse parses a SELECT query.
func Parse(s string) (*Query, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if !p.keyword("SELECT") {
		return nil, fmt.Errorf("%w: expected SELECT", ErrSyntax)
	}
	var vars []string
	for {
		v, ok := p.take(tokVar)
		if !ok {
			break
		}
		vars = append(vars, v.text)
	}
	if len(vars) == 0 {
		return nil, fmt.Errorf("%w: expected projected variable after SELECT", ErrSyntax)
	}
	if !p.keyword("WHERE") {
		return nil, fmt.Errorf("%w: expected WHERE", ErrSyntax)
	}
	if _, ok := p.take(tokLBrace); !ok {
		return nil, fmt.Errorf("%w: expected '{'", ErrSyntax)
	}
	q := &Query{Focus: vars[0], Vars: vars}
	for {
		if _, ok := p.take(tokRBrace); ok {
			break
		}
		subj, err := p.term()
		if err != nil {
			return nil, err
		}
		pred, ok := p.take(tokIRI)
		if !ok {
			return nil, fmt.Errorf("%w: predicate must be an IRI", ErrSyntax)
		}
		obj, err := p.term()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, TriplePat{subj, pred.text, obj})
		// A dot after each triple; optional before '}'.
		if _, ok := p.take(tokDot); !ok {
			if _, ok := p.take(tokRBrace); ok {
				break
			}
			return nil, fmt.Errorf("%w: expected '.' or '}' after triple", ErrSyntax)
		}
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("%w: trailing tokens after '}'", ErrSyntax)
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("%w: empty pattern group", ErrSyntax)
	}
	return q, nil
}

func (p *parser) keyword(kw string) bool {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == tokWord && strings.EqualFold(p.toks[p.pos].text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) take(k tokKind) (token, bool) {
	if p.pos < len(p.toks) && p.toks[p.pos].kind == k {
		p.pos++
		return p.toks[p.pos-1], true
	}
	return token{}, false
}

func (p *parser) term() (Term, error) {
	if t, ok := p.take(tokVar); ok {
		return Term{IsVar: true, Text: t.text}, nil
	}
	if t, ok := p.take(tokIRI); ok {
		return Term{Text: t.text}, nil
	}
	if t, ok := p.take(tokLit); ok {
		return Term{Text: t.text}, nil
	}
	return Term{}, fmt.Errorf("%w: expected term", ErrSyntax)
}

// String renders the query back to parsable text.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT")
	vars := q.Vars
	if len(vars) == 0 {
		vars = []string{q.Focus}
	}
	for _, v := range vars {
		fmt.Fprintf(&b, " ?%s", v)
	}
	b.WriteString(" WHERE {")
	for _, p := range q.Patterns {
		b.WriteByte(' ')
		b.WriteString(renderTerm(p.Subject))
		fmt.Fprintf(&b, " <%s> ", p.Predicate)
		b.WriteString(renderTerm(p.Object))
		b.WriteByte('.')
	}
	b.WriteString(" }")
	return b.String()
}

func renderTerm(t Term) string {
	if t.IsVar {
		return "?" + t.Text
	}
	return "<" + t.Text + ">"
}

// Compile resolves the query's entity and label names against g. The
// second result reports satisfiability: false means some constant vertex
// or predicate does not exist in g, so V(S,G) is empty by construction
// (no error — the query is well-formed, it just has no matches).
func (q *Query) Compile(g *graph.Graph) (*pattern.Constraint, bool, error) {
	c := &pattern.Constraint{Focus: q.Focus}
	for _, tp := range q.Patterns {
		l, ok := g.LabelByName(tp.Predicate)
		if !ok {
			return nil, false, nil
		}
		s, ok := compileTerm(g, tp.Subject)
		if !ok {
			return nil, false, nil
		}
		o, ok := compileTerm(g, tp.Object)
		if !ok {
			return nil, false, nil
		}
		c.Patterns = append(c.Patterns, pattern.TriplePattern{Subject: s, Label: l, Object: o})
	}
	if err := c.Validate(); err != nil {
		return nil, false, err
	}
	return c, true, nil
}

func compileTerm(g *graph.Graph, t Term) (pattern.Term, bool) {
	if t.IsVar {
		return pattern.V(t.Text), true
	}
	v := g.Vertex(t.Text)
	if v == graph.NoVertex {
		return pattern.Term{}, false
	}
	return pattern.C(v), true
}

// Engine evaluates SELECT queries against one graph. It is safe for
// concurrent use.
type Engine struct {
	g *graph.Graph
}

// NewEngine returns an engine over g.
func NewEngine(g *graph.Graph) *Engine { return &Engine{g: g} }

// Select parses, compiles and evaluates the query, returning V(S,G) in
// ascending vertex order. Unknown entities or predicates yield an empty
// result; malformed queries yield an error.
func (e *Engine) Select(query string) ([]graph.VertexID, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return e.SelectQuery(q)
}

// SelectQuery evaluates a parsed query, projecting its first variable.
func (e *Engine) SelectQuery(q *Query) ([]graph.VertexID, error) {
	c, sat, err := q.Compile(e.g)
	if err != nil {
		return nil, err
	}
	if !sat {
		return nil, nil
	}
	m, err := pattern.NewMatcher(e.g, c)
	if err != nil {
		return nil, err
	}
	return m.MatchAll(), nil
}

// SelectTuples parses and evaluates a (possibly multi-variable) SELECT,
// returning the distinct projected tuples in the order found. Unknown
// entities yield an empty result, as in Select.
func (e *Engine) SelectTuples(query string) (vars []string, rows [][]graph.VertexID, err error) {
	q, err := Parse(query)
	if err != nil {
		return nil, nil, err
	}
	c, sat, err := q.Compile(e.g)
	if err != nil {
		return nil, nil, err
	}
	if !sat {
		return q.Vars, nil, nil
	}
	m, err := pattern.NewMatcher(e.g, c)
	if err != nil {
		return nil, nil, err
	}
	err = m.EnumerateBindings(q.Vars, func(tuple []graph.VertexID) bool {
		rows = append(rows, append([]graph.VertexID(nil), tuple...))
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	return q.Vars, rows, nil
}
