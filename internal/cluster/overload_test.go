package cluster_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lscr"
	"lscr/api"
	"lscr/client"
	"lscr/internal/cluster"
	"lscr/internal/failpoint"
	"lscr/server"
)

// stubBackend fakes one lscrd: a canned /healthz plus a caller-chosen
// /v1/query handler. Good enough for routing tests — the coordinator
// only ever sees wire responses.
func stubBackend(t *testing.T, healthz string, query http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(healthz))
	})
	if query != nil {
		mux.HandleFunc("POST /v1/query", query)
	}
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func answer200(body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}
}

func answer429(retryAfter string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", retryAfter)
		http.Error(w, `{"error":"server overloaded; retry later"}`, http.StatusTooManyRequests)
	}
}

func gatewayHealth(t *testing.T, url string) api.ClusterHealth {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.ClusterHealth
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestOverloadShedRedirectsRead: a replica answering 429 loses the
// read — redispatched to the healthy replica, no breaker trip — and
// shows up as shedding (not unhealthy) on the gateway's /healthz.
func TestOverloadShedRedirectsRead(t *testing.T) {
	const okHealth = `{"status":"ok"}`
	shedding := stubBackend(t, okHealth, answer429("1"))
	healthy := stubBackend(t, okHealth, answer200(`{"reachable":true}`))
	writer := stubBackend(t, okHealth, nil)

	gw := cluster.NewCoordinator(cluster.Config{
		Writer:   writer.URL,
		Replicas: []string{shedding.URL, healthy.URL},
		Logf:     t.Logf,
	})
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(gwSrv.Close)

	c := client.New(gwSrv.URL, client.WithRetry(1, 0))
	// Several reads: round-robin will land some primaries on the
	// shedding replica; every one must still come back 200.
	for i := 0; i < 6; i++ {
		resp, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"})
		if err != nil {
			t.Fatalf("read %d through shedding cluster: %v", i, err)
		}
		if !resp.Reachable {
			t.Fatalf("read %d: %+v", i, resp)
		}
	}
	h := gatewayHealth(t, gwSrv.URL)
	var shed, broken int
	for _, r := range h.Replicas {
		if r.Shedding {
			shed++
		}
		if r.Breaker != "closed" {
			broken++
		}
	}
	if shed != 1 {
		t.Fatalf("replicas shedding = %d, want 1: %+v", shed, h.Replicas)
	}
	if broken != 0 {
		t.Fatalf("a shed opened a breaker: %+v", h.Replicas)
	}
	if h.Sheds != 0 {
		t.Fatalf("gateway relayed %d sheds despite a healthy replica", h.Sheds)
	}
}

// TestOverloadRelays429WhenSaturated: when every backend sheds, the
// gateway relays the 429 — Retry-After intact, sheds counter up — so
// the client's retry policy takes over instead of seeing a fake 502.
func TestOverloadRelays429WhenSaturated(t *testing.T) {
	const okHealth = `{"status":"ok"}`
	a := stubBackend(t, okHealth, answer429("7"))
	b := stubBackend(t, okHealth, answer429("7"))
	writer := stubBackend(t, okHealth, answer429("7"))

	gw := cluster.NewCoordinator(cluster.Config{
		Writer:   writer.URL,
		Replicas: []string{a.URL, b.URL},
		Logf:     t.Logf,
	})
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(gwSrv.Close)

	req, err := http.NewRequest("POST", gwSrv.URL+"/v1/query", strings.NewReader(`{"source":"a","target":"b"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated cluster answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want relayed %q", ra, "7")
	}
	if h := gatewayHealth(t, gwSrv.URL); h.Sheds < 1 {
		t.Fatalf("sheds counter = %d, want >= 1", h.Sheds)
	}
}

// TestOverloadBudgetPropagates: with Config.RequestBudget set, every
// forwarded read carries the remaining budget in api.BudgetHeader.
func TestOverloadBudgetPropagates(t *testing.T) {
	const okHealth = `{"status":"ok"}`
	var gotBudget atomic.Int64
	backend := stubBackend(t, okHealth, func(w http.ResponseWriter, r *http.Request) {
		if ms, err := strconv.ParseInt(r.Header.Get(api.BudgetHeader), 10, 64); err == nil {
			gotBudget.Store(ms)
		}
		answer200(`{"reachable":true}`)(w, r)
	})
	writer := stubBackend(t, okHealth, nil)
	gw := cluster.NewCoordinator(cluster.Config{
		Writer:        writer.URL,
		Replicas:      []string{backend.URL},
		RequestBudget: 750 * time.Millisecond,
		Logf:          t.Logf,
	})
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(gwSrv.Close)

	c := client.New(gwSrv.URL, client.WithRetry(1, 0))
	if _, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"}); err != nil {
		t.Fatal(err)
	}
	ms := gotBudget.Load()
	if ms <= 0 || ms > 750 {
		t.Fatalf("backend saw budget %dms, want (0, 750]", ms)
	}
}

// TestOverloadWriterPoisonedFailsStatic: once a probe sees the
// writer's degraded (poisoned) /healthz, mutations short-circuit at
// the gateway with 503 + Retry-After and the cluster health says so;
// reads keep routing to replicas.
func TestOverloadWriterPoisonedFailsStatic(t *testing.T) {
	writer := stubBackend(t, `{"status":"degraded","poisoned":"injected wal failure"}`, nil)
	replica := stubBackend(t, `{"status":"ok"}`, answer200(`{"reachable":true}`))
	gw := cluster.NewCoordinator(cluster.Config{
		Writer:   writer.URL,
		Replicas: []string{replica.URL},
		Logf:     t.Logf,
	})
	gw.ProbeNow(context.Background())
	gwSrv := httptest.NewServer(gw)
	t.Cleanup(gwSrv.Close)

	resp, err := http.Post(gwSrv.URL+"/v1/mutate", "application/json",
		strings.NewReader(`{"mutations":[{"op":"add-vertex","subject":"x"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutate against poisoned writer = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("poisoned-writer 503 carried no Retry-After")
	}

	h := gatewayHealth(t, gwSrv.URL)
	if !h.WriterPoisoned || h.Status != "degraded" {
		t.Fatalf("cluster health = status %q writerPoisoned %v", h.Status, h.WriterPoisoned)
	}

	c := client.New(gwSrv.URL, client.WithRetry(1, 0))
	if _, err := c.Query(context.Background(), api.QueryRequest{Source: "a", Target: "b"}); err != nil {
		t.Fatalf("read while writer poisoned: %v", err)
	}
}

// TestChaosFollowerBootstrapFailpoint: an injected bootstrap failure
// surfaces cleanly from StartFollower, and the next attempt (the
// supervisor's restart) succeeds once the one-shot policy is spent.
func TestChaosFollowerBootstrapFailpoint(t *testing.T) {
	dir := t.TempDir()
	kg, err := lscr.Load(strings.NewReader(e2eKG))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lscr.Create(dir, kg, lscr.Options{CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	writerSrv := serveOn(t, "127.0.0.1:0", server.New(eng, eng.KG()))
	t.Cleanup(writerSrv.Close)

	if err := failpoint.Set(cluster.FPFollowerBootstrap, "error-once"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisarmAll()
	cfg := cluster.FollowerConfig{Writer: writerSrv.URL, Poll: 100 * time.Millisecond, Retry: 10 * time.Millisecond}
	if _, err := cluster.StartFollower(context.Background(), cfg); err == nil {
		t.Fatal("bootstrap succeeded through an armed error-once failpoint")
	}
	f, err := cluster.StartFollower(context.Background(), cfg)
	if err != nil {
		t.Fatalf("second bootstrap (failpoint spent): %v", err)
	}
	t.Cleanup(f.Close)
	if got, want := f.Epoch(), eng.Epoch().Epoch; got != want {
		t.Fatalf("follower epoch = %d after bootstrap, want %d", got, want)
	}
}
