package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lscr"
	"lscr/api"
	"lscr/client"
	"lscr/internal/cluster"
	"lscr/server"
)

const e2eKG = `
<C> <apr> <X> .
<X> <apr> <P> .
<X> <married> <Amy> .
<C> <may> <P> .
`

const e2eConstraint = `SELECT ?x WHERE { ?x <married> <Amy>. }`

// compareQueries is the probe set the identity checks run against
// every engine: reachable and unreachable pairs, a witness request
// (search-order dependent — identical only under identical indexes),
// and an unknown-vertex error.
var compareQueries = []api.QueryRequest{
	{Source: "C", Target: "P", Labels: []string{"apr", "married"}, Constraint: e2eConstraint},
	{Source: "C", Target: "P", Labels: []string{"apr", "married"}, Constraint: e2eConstraint, Witness: true},
	{Source: "C", Target: "Amy", Labels: []string{"apr", "married"}, Constraint: e2eConstraint},
	{Source: "P", Target: "C", Labels: []string{"apr", "married"}, Constraint: e2eConstraint},
	{Source: "C", Target: "N1", Labels: []string{"apr", "married"}, Constraint: e2eConstraint},
	{Source: "C", Target: "P", Labels: []string{"apr", "married"}, Constraint: e2eConstraint, Algorithm: "uis"},
	{Source: "no-such-vertex", Target: "P", Constraint: e2eConstraint},
}

// answers runs the probe set against one /v1 endpoint and flattens
// each reply (timing zeroed) to a comparable string.
func answers(t *testing.T, c *client.Client) []string {
	t.Helper()
	ctx := context.Background()
	out := make([]string, len(compareQueries))
	for i, q := range compareQueries {
		resp, err := c.Query(ctx, q)
		if err != nil {
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("query %d: %v", i, err)
			}
			out[i] = fmt.Sprintf("error %d: %s", apiErr.StatusCode, apiErr.Message)
			continue
		}
		resp.ElapsedUS = 0
		raw, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(raw)
	}
	return out
}

// mustSame asserts two engines' probe answers are bit-identical.
func mustSame(t *testing.T, what string, want, got []string) {
	t.Helper()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s diverged on query %d:\n  oracle: %s\n  got:    %s", what, i, want[i], got[i])
		}
	}
}

func waitEpoch(t *testing.T, f *cluster.Follower, ep uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if f.Epoch() >= ep {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower stuck at epoch %d, want >= %d", f.Epoch(), ep)
}

// harness is one live cluster: a persistent writer on a re-bindable
// address, two followers tailing it, a gateway over the three, and an
// in-memory oracle engine fed the same mutation batches.
type harness struct {
	dir        string
	writerEng  *lscr.Engine
	writerSrv  *httptest.Server
	writerAddr string
	f1, f2     *cluster.Follower
	f1Srv      *httptest.Server
	f2Srv      *httptest.Server
	gw         *cluster.Coordinator
	gwSrv      *httptest.Server
	oracle     *lscr.Engine
	oracleSrv  *httptest.Server
}

func loadKG(t *testing.T) *lscr.KG {
	t.Helper()
	kg, err := lscr.Load(strings.NewReader(e2eKG))
	if err != nil {
		t.Fatal(err)
	}
	return kg
}

// serveOn mounts h on a real listener bound to addr ("127.0.0.1:0"
// picks a port; a concrete addr re-binds it, which is how the writer
// restarts in place).
func serveOn(t *testing.T, addr string, h http.Handler) *httptest.Server {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(h)
	srv.Listener.Close()
	srv.Listener = ln
	srv.Start()
	return srv
}

// newHarness boots the cluster. CompactAfter -1 keeps compaction
// manual, so every seal happens at a quiescent point — the regime in
// which follower state (graph AND index) is bit-identical to the
// writer's, making the answer comparison exact.
func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{dir: t.TempDir()}
	opts := lscr.Options{CompactAfter: -1}

	eng, err := lscr.Create(h.dir, loadKG(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	h.writerEng = eng
	h.writerSrv = serveOn(t, "127.0.0.1:0", server.New(eng, eng.KG()))
	h.writerAddr = h.writerSrv.Listener.Addr().String()
	t.Cleanup(func() { h.writerSrv.Close() })

	fcfg := cluster.FollowerConfig{
		Writer: h.writerSrv.URL,
		Poll:   150 * time.Millisecond,
		Retry:  25 * time.Millisecond,
	}
	ctx := context.Background()
	if h.f1, err = cluster.StartFollower(ctx, fcfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.f1.Close)
	if h.f2, err = cluster.StartFollower(ctx, fcfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.f2.Close)
	h.f1Srv = httptest.NewServer(h.f1)
	t.Cleanup(h.f1Srv.Close)
	h.f2Srv = httptest.NewServer(h.f2)
	t.Cleanup(h.f2Srv.Close)

	h.gw = cluster.NewCoordinator(cluster.Config{
		Writer:        h.writerSrv.URL,
		Replicas:      []string{h.f1Srv.URL, h.f2Srv.URL},
		ProbeInterval: 100 * time.Millisecond,
		Logf:          t.Logf,
	})
	h.gw.Start()
	t.Cleanup(h.gw.Close)
	h.gwSrv = httptest.NewServer(h.gw)
	t.Cleanup(h.gwSrv.Close)

	h.oracle = lscr.NewEngine(loadKG(t), opts)
	h.oracleSrv = httptest.NewServer(server.New(h.oracle, h.oracle.KG()))
	t.Cleanup(h.oracleSrv.Close)
	return h
}

// mutate commits one batch through the gateway AND on the oracle, then
// waits for both followers to replicate past the committed epoch.
func (h *harness) mutate(t *testing.T, muts []api.Mutation) uint64 {
	t.Helper()
	ctx := context.Background()
	resp, err := client.New(h.gwSrv.URL).Mutate(ctx, muts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.oracle.Apply(ctx, api.ToEngineMutations(muts)); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, h.f1, resp.Epoch)
	waitEpoch(t, h.f2, resp.Epoch)
	return resp.Epoch
}

// checkIdentity compares writer, both followers and the gateway
// against the oracle at the current (settled) epoch.
func (h *harness) checkIdentity(t *testing.T, when string) {
	t.Helper()
	want := answers(t, client.New(h.oracleSrv.URL))
	mustSame(t, when+": writer", want, answers(t, client.New(h.writerSrv.URL)))
	mustSame(t, when+": follower 1", want, answers(t, client.New(h.f1Srv.URL)))
	mustSame(t, when+": follower 2", want, answers(t, client.New(h.f2Srv.URL)))
	// The gateway routes each read to some replica; run the probe set a
	// few times so both replicas (and hedges) are exercised.
	gw := client.New(h.gwSrv.URL)
	for i := 0; i < 3; i++ {
		mustSame(t, when+": gateway", want, answers(t, gw))
	}
}

// seal compacts writer and oracle at a quiescent point and waits for
// the followers to replay the seal record.
func (h *harness) seal(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	if _, err := h.writerEng.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := h.oracle.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	head := h.writerEng.Epoch().Epoch
	waitEpoch(t, h.f1, head)
	waitEpoch(t, h.f2, head)
}

var e2eRounds = [][]api.Mutation{
	{
		{Op: "add-edge", Subject: "P", Label: "apr", Object: "N1"},
		{Op: "add-edge", Subject: "N1", Label: "married", Object: "Amy"},
	},
	{
		{Op: "delete-edge", Subject: "C", Label: "may", Object: "P"},
		{Op: "add-vertex", Subject: "N2"},
	},
	{
		{Op: "add-edge", Subject: "N2", Label: "apr", Object: "C"},
		{Op: "add-edge", Subject: "N1", Label: "apr", Object: "N2"},
	},
}

// TestReplicaClusterIdentity: 1 writer + 2 followers + gateway answer
// bit-identically to a single in-memory engine fed the same mutation
// batches, at every replicated epoch — through live mutations, a
// writer compaction (seal) replayed by the followers, and mutations on
// top of the sealed state. This is the answer-identity proof the
// replication design rests on: followers replay the writer's WAL
// through the engine's normal commit path, so there is nothing else
// they could answer.
func TestReplicaClusterIdentity(t *testing.T) {
	h := newHarness(t)
	h.checkIdentity(t, "bootstrap")

	h.mutate(t, e2eRounds[0])
	h.checkIdentity(t, "round 1")

	h.mutate(t, e2eRounds[1])
	h.checkIdentity(t, "round 2")

	h.seal(t)
	h.checkIdentity(t, "after seal")

	h.mutate(t, e2eRounds[2])
	h.checkIdentity(t, "round 3 (post-seal)")

	// Batch fan-out/merge through the gateway: per-request order and
	// error mapping must match the oracle answering the same batch.
	ctx := context.Background()
	req := api.BatchRequest{Queries: compareQueries}
	want, err := client.New(h.oracleSrv.URL).Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.New(h.gwSrv.URL).Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count {
		t.Fatalf("batch count %d vs oracle %d", got.Count, want.Count)
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		w.ElapsedUS, g.ElapsedUS = 0, 0
		wraw, _ := json.Marshal(w)
		graw, _ := json.Marshal(g)
		if string(wraw) != string(graw) {
			t.Fatalf("batch item %d diverged:\n  oracle: %s\n  gateway: %s", i, wraw, graw)
		}
	}
}

// TestReplicaFollowerCrashRetail: a follower dies, misses mutations
// AND a compaction that rotates the WAL past its cursor, and a
// replacement bootstraps from the newest sealed segment and catches up
// to identical answers. A feed read at the pre-rotation cursor answers
// 410 Gone — the signal that drives re-bootstrap.
func TestReplicaFollowerCrashRetail(t *testing.T) {
	h := newHarness(t)
	h.mutate(t, e2eRounds[0])
	crashCursor := h.f1.Epoch()
	h.f1.Close() // crash: stops tailing, state frozen

	// The cluster moves on: more mutations, then a seal, which rotates
	// the WAL up to the sealed epoch.
	h2 := h.mutateSansF1(t, e2eRounds[1])
	_ = h2
	ctx := context.Background()
	if _, err := h.writerEng.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := h.oracle.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	h.mutateSansF1(t, e2eRounds[2])

	// The crashed follower's cursor now lies below the WAL horizon.
	wcli := client.New(h.writerSrv.URL)
	_, err := wcli.Replicate(ctx, crashCursor, 0)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusGone {
		t.Fatalf("replicate below horizon: %v, want 410 Gone", err)
	}

	// A replacement bootstraps from the newest segment and re-tails.
	fr, err := cluster.StartFollower(ctx, cluster.FollowerConfig{
		Writer: h.writerSrv.URL,
		Poll:   150 * time.Millisecond,
		Retry:  25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	waitEpoch(t, fr, h.writerEng.Epoch().Epoch)
	frSrv := httptest.NewServer(fr)
	defer frSrv.Close()
	want := answers(t, client.New(h.oracleSrv.URL))
	mustSame(t, "re-bootstrapped follower", want, answers(t, client.New(frSrv.URL)))
}

// mutateSansF1 is h.mutate for the phase in which follower 1 is down:
// only follower 2 is waited on.
func (h *harness) mutateSansF1(t *testing.T, muts []api.Mutation) uint64 {
	t.Helper()
	ctx := context.Background()
	resp, err := client.New(h.gwSrv.URL).Mutate(ctx, muts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.oracle.Apply(ctx, api.ToEngineMutations(muts)); err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, h.f2, resp.Epoch)
	return resp.Epoch
}

// TestReplicaWriterRestart: the writer process dies and comes back on
// the same address (lscr.Open over its data directory — WAL replay
// restores the exact epoch). The followers' tail loops ride out the
// outage with backoff and resume from their cursors — no re-bootstrap
// — and the next mutation reaches them with answers still identical
// to the oracle.
func TestReplicaWriterRestart(t *testing.T) {
	h := newHarness(t)
	h.mutate(t, e2eRounds[0])
	h.checkIdentity(t, "pre-restart")
	bootstrapsBefore := h.f1.Bootstraps() + h.f2.Bootstraps()

	// Crash the writer: listener gone, engine closed without a seal, so
	// restart exercises WAL replay.
	h.writerSrv.Close()
	if err := h.writerEng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen on the same address.
	eng, err := lscr.Open(h.dir, lscr.Options{CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	h.writerEng = eng
	h.writerSrv = serveOn(t, h.writerAddr, server.New(eng, eng.KG()))
	t.Cleanup(func() { h.writerSrv.Close() })

	// The followers re-tail from their cursors once the feed is back.
	h.mutate(t, e2eRounds[1])
	h.checkIdentity(t, "post-restart")
	if got := h.f1.Bootstraps() + h.f2.Bootstraps(); got != bootstrapsBefore {
		t.Fatalf("writer restart forced %d re-bootstraps; followers must re-tail from their cursors", got-bootstrapsBefore)
	}
}
