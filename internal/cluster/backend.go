package cluster

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"lscr/client"
)

// backend is one lscrd process behind the coordinator: its base URL, a
// typed client for probes, and the health state the router consults —
// a consecutive-failure circuit breaker, the last observed serving
// epoch, and an EWMA of read latencies.
type backend struct {
	url string
	cli *client.Client

	// fails counts consecutive transient failures; crossing the
	// threshold opens the breaker until openUntil (UnixNano). A success
	// closes the breaker and zeroes the count.
	fails     atomic.Int64
	openUntil atomic.Int64

	// epoch is the backend's serving epoch from its last good probe;
	// latencyUS an exponentially weighted moving average of observed
	// read latencies; lastErr the last probe/forward error text (empty
	// when healthy).
	epoch     atomic.Uint64
	latencyUS atomic.Int64
	lastErr   atomic.Pointer[string]

	// shedUntil (UnixNano) marks a backend that answered 429: it is
	// overloaded, not broken, so it leaves the read rotation briefly
	// without feeding the breaker — tripping the breaker on shed would
	// dogpile the surviving backends. poisoned mirrors the backend's
	// fail-stop state from its last probe: it still serves reads but
	// refuses writes until restarted.
	shedUntil atomic.Int64
	poisoned  atomic.Bool
}

func newBackend(url string, hc *http.Client) *backend {
	b := &backend{
		url: url,
		// The coordinator is its own retry layer (redispatch + hedging);
		// client-level retries underneath it would only blur the breaker's
		// failure signal.
		cli: client.New(url, client.WithHTTPClient(hc), client.WithRetry(1, 0)),
	}
	empty := ""
	b.lastErr.Store(&empty)
	return b
}

// available reports whether the breaker admits traffic.
func (b *backend) available(now time.Time) bool {
	return now.UnixNano() >= b.openUntil.Load()
}

// shed takes the backend out of the read rotation for cooldown after a
// 429, without touching the breaker.
func (b *backend) shed(cooldown time.Duration) {
	b.shedUntil.Store(time.Now().Add(cooldown).UnixNano())
}

// shedding reports whether the backend recently shed load.
func (b *backend) shedding(now time.Time) bool {
	return now.UnixNano() < b.shedUntil.Load()
}

// success records one good exchange: the breaker closes, the failure
// count resets, and the latency EWMA absorbs the observation (1/4
// weight — responsive to shifts, stable against single outliers).
func (b *backend) success(elapsed time.Duration) {
	b.fails.Store(0)
	empty := ""
	b.lastErr.Store(&empty)
	obs := elapsed.Microseconds()
	for {
		old := b.latencyUS.Load()
		next := obs
		if old != 0 {
			next = (old*3 + obs) / 4
		}
		if b.latencyUS.CompareAndSwap(old, next) {
			return
		}
	}
}

// failure records one transient failure; threshold consecutive ones
// open the breaker for cooldown.
func (b *backend) failure(err error, threshold int, cooldown time.Duration) {
	msg := err.Error()
	b.lastErr.Store(&msg)
	if b.fails.Add(1) >= int64(threshold) {
		b.fails.Store(0)
		b.openUntil.Store(time.Now().Add(cooldown).UnixNano())
	}
}

// probe refreshes the backend's epoch from its /healthz and feeds the
// breaker, so an unreachable backend fails out of the read rotation
// even with no traffic flowing.
func (b *backend) probe(ctx context.Context, timeout time.Duration, threshold int, cooldown time.Duration) (uint64, bool) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := time.Now()
	h, err := b.cli.Health(pctx)
	if err != nil {
		b.failure(err, threshold, cooldown)
		return 0, false
	}
	b.success(time.Since(start))
	b.epoch.Store(h.Epoch.Epoch)
	b.poisoned.Store(h.Poisoned != "")
	return h.Epoch.Epoch, true
}
