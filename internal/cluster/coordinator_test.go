package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lscr/api"
	"lscr/client"
)

// fakeBackend is a scripted lscrd stand-in: it answers /v1/query and
// /v1/batch by echoing each query's Source into the response Algorithm
// field (so tests can see who answered what, and that merge order is
// preserved), after an optional per-request delay. It counts hits per
// path.
type fakeBackend struct {
	name    string
	delay   time.Duration
	queries atomic.Int64
	batches atomic.Int64
	srv     *httptest.Server
}

func newFakeBackend(t *testing.T, name string, delay time.Duration) *fakeBackend {
	t.Helper()
	f := &fakeBackend{name: name, delay: delay}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		f.queries.Add(1)
		var q api.QueryRequest
		json.NewDecoder(r.Body).Decode(&q)
		f.sleep(r)
		writeJSON(w, http.StatusOK, api.QueryResponse{Reachable: true, Algorithm: f.name + ":" + q.Source})
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		f.batches.Add(1)
		var b api.BatchRequest
		json.NewDecoder(r.Body).Decode(&b)
		f.sleep(r)
		items := make([]api.BatchItem, len(b.Queries))
		for i, q := range b.Queries {
			items[i] = api.BatchItem{QueryResponse: api.QueryResponse{Reachable: true, Algorithm: f.name + ":" + q.Source}}
		}
		writeJSON(w, http.StatusOK, api.BatchResponse{Results: items, Count: len(items)})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeBackend) sleep(r *http.Request) {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-r.Context().Done():
		}
	}
}

func (f *fakeBackend) url() string { return f.srv.URL }

// postJSON sends one request through the coordinator handler.
func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func batchOf(sources ...string) api.BatchRequest {
	req := api.BatchRequest{}
	for _, s := range sources {
		req.Queries = append(req.Queries, api.QueryRequest{Source: s, Target: "t"})
	}
	return req
}

// TestReplicaDownMidBatch: one of the two replicas a batch fans out to
// is dead. Its partition is redispatched to the surviving replica, and
// the merged response still answers every query in request order.
func TestReplicaDownMidBatch(t *testing.T) {
	live := newFakeBackend(t, "live", 0)
	dead := newFakeBackend(t, "dead", 0)
	dead.srv.Close() // down before the batch arrives

	co := NewCoordinator(Config{
		Writer:   live.url(),
		Replicas: []string{live.url(), dead.srv.URL},
	})
	w := postJSON(t, co, "/v1/batch", batchOf("q0", "q1", "q2", "q3", "q4"))
	if w.Code != http.StatusOK {
		t.Fatalf("batch answered %d: %s", w.Code, w.Body)
	}
	var resp api.BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 5 {
		t.Fatalf("count = %d", resp.Count)
	}
	for i, it := range resp.Results {
		want := fmt.Sprintf("q%d", i)
		if it.Error != "" || !strings.HasSuffix(it.Algorithm, ":"+want) {
			t.Fatalf("item %d = %+v, want an answer for %s", i, it, want)
		}
	}
	if got := live.batches.Load(); got != 2 {
		t.Fatalf("survivor saw %d sub-batches, want 2 (own partition + redispatched one)", got)
	}
}

// TestReplicaDownMidBatchBothFail: when a partition's replica and its
// redispatch target are both down, only that partition's slots answer
// per-item gateway errors — the rest of the batch still merges in
// order.
func TestReplicaDownMidBatchBothFail(t *testing.T) {
	deadA := newFakeBackend(t, "a", 0)
	deadB := newFakeBackend(t, "b", 0)
	deadA.srv.Close()
	deadB.srv.Close()
	writer := newFakeBackend(t, "writer", 0)

	co := NewCoordinator(Config{
		Writer:   writer.url(),
		Replicas: []string{deadA.srv.URL, deadB.srv.URL},
	})
	w := postJSON(t, co, "/v1/batch", batchOf("q0", "q1", "q2"))
	if w.Code != http.StatusOK {
		t.Fatalf("batch answered %d: %s", w.Code, w.Body)
	}
	var resp api.BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 {
		t.Fatalf("count = %d", resp.Count)
	}
	for i, it := range resp.Results {
		if it.Error == "" || !strings.HasPrefix(it.Error, "gateway: ") {
			t.Fatalf("item %d = %+v, want a gateway error", i, it)
		}
	}
}

// TestReplicaStalenessBound: a replica lagging past the staleness
// bound is never routed a read; the fresh replica takes them all. Once
// every replica is stale, reads fall back to the writer (never stale by
// definition).
func TestReplicaStalenessBound(t *testing.T) {
	fresh := newFakeBackend(t, "fresh", 0)
	stale := newFakeBackend(t, "stale", 0)
	writer := newFakeBackend(t, "writer", 0)

	co := NewCoordinator(Config{
		Writer:         writer.url(),
		Replicas:       []string{fresh.url(), stale.url()},
		StalenessBound: 2,
		HedgeAfter:     -1,
	})
	co.writerEpoch.Store(10)
	co.replicas[0].epoch.Store(10) // at head
	co.replicas[1].epoch.Store(5)  // lag 5 > bound 2

	q := api.QueryRequest{Source: "s", Target: "t"}
	for i := 0; i < 8; i++ {
		if w := postJSON(t, co, "/v1/query", q); w.Code != http.StatusOK {
			t.Fatalf("query answered %d: %s", w.Code, w.Body)
		}
	}
	if got := stale.queries.Load(); got != 0 {
		t.Fatalf("stale replica served %d reads, want 0", got)
	}
	if got := fresh.queries.Load(); got != 8 {
		t.Fatalf("fresh replica served %d reads, want 8", got)
	}

	// The gateway's health view marks the laggard unhealthy with its lag.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	co.ServeHTTP(w, req)
	var ch api.ClusterHealth
	if err := json.Unmarshal(w.Body.Bytes(), &ch); err != nil {
		t.Fatal(err)
	}
	if len(ch.Replicas) != 2 || ch.Replicas[1].Healthy || ch.Replicas[1].Lag != 5 {
		t.Fatalf("cluster health = %+v", ch)
	}
	if !ch.Replicas[0].Healthy {
		t.Fatalf("fresh replica reported unhealthy: %+v", ch.Replicas[0])
	}

	// Both replicas stale -> the writer takes the reads.
	co.replicas[0].epoch.Store(5)
	for i := 0; i < 4; i++ {
		if w := postJSON(t, co, "/v1/query", q); w.Code != http.StatusOK {
			t.Fatalf("fallback query answered %d: %s", w.Code, w.Body)
		}
	}
	if got := writer.queries.Load(); got != 4 {
		t.Fatalf("writer served %d fallback reads, want 4", got)
	}
	if got := fresh.queries.Load(); got != 8 {
		t.Fatalf("stale-now replica served %d extra reads", got-8)
	}
}

// TestReplicaHedgedSlowWins: the primary replica stalls, the hedge
// timer fires a second copy against the other replica, and that copy's
// answer is relayed while the slow one's is drained and discarded —
// the client sees the fast answer well before the slow replica would
// have replied, and the slow replica's breaker stays closed (slow is
// not failed).
func TestReplicaHedgedSlowWins(t *testing.T) {
	slow := newFakeBackend(t, "slow", 2*time.Second)
	fast := newFakeBackend(t, "fast", 0)

	co := NewCoordinator(Config{
		Writer:     fast.url(),
		Replicas:   []string{slow.url(), fast.url()},
		HedgeAfter: 10 * time.Millisecond,
	})
	// Pin round-robin so the slow replica is the primary pick.
	co.rr.Store(1)

	start := time.Now()
	w := postJSON(t, co, "/v1/query", api.QueryRequest{Source: "s", Target: "t"})
	elapsed := time.Since(start)
	if w.Code != http.StatusOK {
		t.Fatalf("query answered %d: %s", w.Code, w.Body)
	}
	var resp api.QueryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "fast:s" {
		t.Fatalf("answered by %q, want the hedged fast replica", resp.Algorithm)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("hedge saved nothing: %v", elapsed)
	}
	if got := slow.queries.Load(); got != 1 {
		t.Fatalf("slow replica saw %d requests, want 1 (the losing primary)", got)
	}
	if !co.replicas[0].available(time.Now()) {
		t.Fatal("losing (merely slow) replica's breaker opened")
	}
}

// TestReplicaBreakerOpensAndHeals: consecutive probe failures take a
// backend out of the rotation; the breaker re-admits it after cooldown
// and a successful probe closes it.
func TestReplicaBreakerOpensAndHeals(t *testing.T) {
	up := newFakeBackend(t, "up", 0)
	down := newFakeBackend(t, "down", 0)
	down.srv.Close()

	co := NewCoordinator(Config{
		Writer:        up.url(),
		Replicas:      []string{up.url(), down.srv.URL},
		FailThreshold: 2,
		Cooldown:      50 * time.Millisecond,
		HedgeAfter:    -1,
	})
	ctx := context.Background()
	co.ProbeNow(ctx)
	co.ProbeNow(ctx)
	if co.replicas[1].available(time.Now()) {
		t.Fatal("breaker still closed after threshold probe failures")
	}
	// Reads keep flowing through the healthy replica meanwhile.
	if w := postJSON(t, co, "/v1/query", api.QueryRequest{Source: "s", Target: "t"}); w.Code != http.StatusOK {
		t.Fatalf("query during outage answered %d", w.Code)
	}
	time.Sleep(60 * time.Millisecond)
	if !co.replicas[1].available(time.Now()) {
		t.Fatal("breaker did not re-admit after cooldown")
	}
}

// TestReplicaMutateFansInToWriter: /v1/mutate goes to the writer
// exactly once, never to a replica, and a success advances the
// gateway's view of the cluster head.
func TestReplicaMutateFansInToWriter(t *testing.T) {
	var mutates atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mutate", func(w http.ResponseWriter, r *http.Request) {
		mutates.Add(1)
		writeJSON(w, http.StatusOK, api.MutateResponse{Epoch: 7, Added: 1})
	})
	writer := httptest.NewServer(mux)
	t.Cleanup(writer.Close)
	replica := newFakeBackend(t, "r", 0)

	co := NewCoordinator(Config{Writer: writer.URL, Replicas: []string{replica.url()}})
	w := postJSON(t, co, "/v1/mutate", api.MutateRequest{Mutations: []api.Mutation{{Op: "add-vertex", Subject: "v"}}})
	if w.Code != http.StatusOK {
		t.Fatalf("mutate answered %d: %s", w.Code, w.Body)
	}
	if got := mutates.Load(); got != 1 {
		t.Fatalf("writer saw %d mutates, want 1", got)
	}
	if got := co.writerEpoch.Load(); got != 7 {
		t.Fatalf("cluster head = %d after mutate, want 7", got)
	}
}

// TestReplicaMutateWriterDown: a writer transport failure surfaces as
// 502 from the gateway, and the gateway has sent the mutation exactly
// once — it never retries a write whose commit status is unknown.
func TestReplicaMutateWriterDown(t *testing.T) {
	writer := newFakeBackend(t, "w", 0)
	writer.srv.Close()
	replica := newFakeBackend(t, "r", 0)

	co := NewCoordinator(Config{Writer: writer.srv.URL, Replicas: []string{replica.url()}})
	w := postJSON(t, co, "/v1/mutate", api.MutateRequest{Mutations: []api.Mutation{{Op: "add-vertex", Subject: "v"}}})
	if w.Code != http.StatusBadGateway {
		t.Fatalf("mutate against dead writer answered %d", w.Code)
	}
}

// transientErr must not classify a caller-cancelled context as worth
// redispatching.
func TestReplicaTransientErrClassification(t *testing.T) {
	if transientErr(context.Canceled) {
		t.Fatal("context.Canceled classified transient")
	}
	if !transientErr(&client.APIError{StatusCode: http.StatusServiceUnavailable}) {
		t.Fatal("503 not classified transient")
	}
	if transientErr(&client.APIError{StatusCode: http.StatusBadRequest}) {
		t.Fatal("400 classified transient")
	}
}
