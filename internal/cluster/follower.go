package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"lscr"
	"lscr/client"
	"lscr/internal/failpoint"
	"lscr/server"
)

// Follower defaults.
const (
	DefaultFollowerPoll  = 5 * time.Second
	DefaultFollowerRetry = 500 * time.Millisecond
)

// FollowerConfig wires a Follower.
type FollowerConfig struct {
	// Writer is the base URL of the writer lscrd (or the gateway, which
	// proxies the replication endpoints to it).
	Writer string
	// Options configures the replica engine; index parameters are
	// overridden by the fetched segment's (as lscr.Open does), so
	// rebuilds at seal points match the writer bit-for-bit.
	Options lscr.Options
	// Poll is the server-side long-poll window per replication read
	// (DefaultFollowerPoll when zero); Retry the backoff after a failed
	// read (DefaultFollowerRetry when zero).
	Poll  time.Duration
	Retry time.Duration
	// HTTPClient carries the replication traffic; http.DefaultClient
	// when nil. It must not impose a global timeout shorter than Poll.
	HTTPClient *http.Client
	// ServerOptions are applied to the read-only handler each bootstrap
	// builds (e.g. server.WithAdmission for overload protection on the
	// replica's own listener).
	ServerOptions []server.Option
	// Logf receives tail-loop events; discarded when nil.
	Logf func(format string, args ...any)
}

// followerState is one bootstrapped serving generation: the replica
// engine and the read-only handler over it. Re-bootstraps swap the
// whole pair atomically, so requests always hit a consistent
// (engine, handler) generation.
type followerState struct {
	eng *lscr.Engine
	h   http.Handler
}

// Follower is a read replica: it bootstraps from the writer's newest
// sealed segment, then tails the WAL feed, replaying every batch
// through the engine's normal commit path — so at every epoch it
// serves, its answers are bit-identical to the writer's at that epoch.
// It is an http.Handler serving the read-only /v1 surface (mutations
// answer 403; clients send writes to the writer or the gateway).
//
// The tail loop survives writer restarts (transport errors back off
// and re-poll from the cursor — the writer's WAL is durable, so the
// feed resumes where it left) and falls back to a full re-bootstrap
// when the cursor drops below the writer's WAL horizon (410 Gone) or
// the feed stops fitting the replica's state (divergence is never
// papered over).
type Follower struct {
	cfg    FollowerConfig
	cli    *client.Client
	state  atomic.Pointer[followerState]
	cursor atomic.Uint64
	// bootstraps counts initial + re-bootstraps (observability, tests).
	bootstraps atomic.Int64

	cancel context.CancelFunc
	done   chan struct{}
}

// StartFollower bootstraps a replica from cfg.Writer (synchronously —
// when it returns, the follower serves reads at the fetched segment's
// epoch) and starts the tail loop. Close stops the loop.
func StartFollower(ctx context.Context, cfg FollowerConfig) (*Follower, error) {
	f := &Follower{
		cfg: cfg,
		cli: client.New(cfg.Writer, client.WithHTTPClient(cfg.HTTPClient)),
	}
	if err := f.bootstrap(ctx); err != nil {
		return nil, err
	}
	tctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go f.tail(tctx)
	return f, nil
}

// FPFollowerBootstrap is the failpoint site evaluated at the top of a
// follower bootstrap; armed error policies exercise the rebootstrap
// retry loop (a transiently unreachable writer at bootstrap time).
const FPFollowerBootstrap = "follower-bootstrap"

// bootstrap fetches the writer's newest sealed segment, opens a fresh
// replica engine over it, and swaps it in; the cursor restarts at the
// segment's base epoch.
func (f *Follower) bootstrap(ctx context.Context) error {
	if fp := failpoint.Eval(FPFollowerBootstrap); fp != nil {
		return fmt.Errorf("cluster: follower bootstrap: %w", fp)
	}
	data, base, err := f.cli.Segment(ctx)
	if err != nil {
		return fmt.Errorf("cluster: follower bootstrap: %w", err)
	}
	eng, err := lscr.OpenReplicaSegment(data, f.cfg.Options)
	if err != nil {
		return fmt.Errorf("cluster: follower bootstrap: %w", err)
	}
	f.state.Store(&followerState{
		eng: eng,
		h:   server.New(eng, eng.KG(), append([]server.Option{server.ReadOnly()}, f.cfg.ServerOptions...)...),
	})
	f.cursor.Store(base)
	f.bootstraps.Add(1)
	f.logf("bootstrapped at epoch %d (%d bytes)", base, len(data))
	return nil
}

// tail is the replication loop: long-poll the feed at the cursor,
// replay, advance; 410/divergence re-bootstraps, transport errors back
// off and re-poll (which is exactly what a writer restart looks like
// from here — the cursor survives, the writer's WAL is durable, so
// tailing resumes where it stopped).
func (f *Follower) tail(ctx context.Context) {
	defer close(f.done)
	for ctx.Err() == nil {
		resp, err := f.cli.Replicate(ctx, f.cursor.Load(), f.poll())
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			var apiErr *client.APIError
			if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusGone {
				f.logf("cursor %d below writer's WAL horizon; re-bootstrapping", f.cursor.Load())
				f.rebootstrap(ctx)
				continue
			}
			f.logf("replicate from %d: %v", f.cursor.Load(), err)
			f.sleep(ctx)
			continue
		}
		eng := f.state.Load().eng
		diverged := false
		for _, b := range resp.Batches {
			rb := b.ToReplicationBatch()
			if rb.Seal {
				err = eng.SealReplicated(ctx, rb.Epoch)
			} else {
				err = eng.ApplyReplicated(ctx, rb.Epoch, rb.Mutations)
			}
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				// A feed record that does not extend this replica —
				// whatever the cause — is grounds for a clean restart
				// from the segment, never for guessing.
				f.logf("replay epoch %d: %v; re-bootstrapping", rb.Epoch, err)
				f.rebootstrap(ctx)
				diverged = true
				break
			}
			f.cursor.Store(rb.Epoch)
		}
		if diverged {
			continue
		}
	}
}

// rebootstrap retries bootstrap until it succeeds or ctx ends.
func (f *Follower) rebootstrap(ctx context.Context) {
	for ctx.Err() == nil {
		if err := f.bootstrap(ctx); err == nil {
			return
		} else {
			f.logf("%v", err)
		}
		f.sleep(ctx)
	}
}

func (f *Follower) sleep(ctx context.Context) {
	t := time.NewTimer(f.retry())
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func (f *Follower) poll() time.Duration {
	if f.cfg.Poll > 0 {
		return f.cfg.Poll
	}
	return DefaultFollowerPoll
}

func (f *Follower) retry() time.Duration {
	if f.cfg.Retry > 0 {
		return f.cfg.Retry
	}
	return DefaultFollowerRetry
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf("follower: "+format, args...)
	}
}

// ServeHTTP serves the read-only /v1 surface over the current replica
// generation.
func (f *Follower) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.state.Load().h.ServeHTTP(w, r)
}

// Engine returns the current replica engine (a re-bootstrap may swap
// it; callers hold the returned pointer for at most one operation).
func (f *Follower) Engine() *lscr.Engine { return f.state.Load().eng }

// Epoch is the replica's serving epoch.
func (f *Follower) Epoch() uint64 { return f.Engine().Epoch().Epoch }

// Bootstraps counts segment bootstraps (1 after StartFollower; +1 per
// re-bootstrap).
func (f *Follower) Bootstraps() int64 { return f.bootstraps.Load() }

// Close stops the tail loop.
func (f *Follower) Close() {
	f.cancel()
	<-f.done
}
