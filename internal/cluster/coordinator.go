// Package cluster is the replicated serving tier: one writer lscrd,
// any number of follower replicas fed by the writer's WAL, and a
// coordinator (cmd/lscrgw) that presents the whole group as one
// logical engine behind the existing /v1 wire contract.
//
// Reads are routed health-aware: every backend carries a
// consecutive-failure circuit breaker fed by background /healthz
// probes and by in-band forwarding results, plus a staleness check
// (its last observed epoch vs the writer's); eligible replicas take
// queries round-robin, and a hedge request fires against a second
// replica when the first is slow. Batches fan out across the eligible
// replicas and merge preserving per-request order and error mapping.
// Writes fan in through the single writer; followers replay its WAL
// feed through the engine's normal commit path, so at every replicated
// epoch a follower's answers are bit-identical to the writer's (the
// e2e tier proves this against a single-engine oracle).
//
// Consistency: per-epoch identity with bounded staleness on reads — a
// read served by a replica at epoch E sees exactly the writer's epoch-E
// state, and the coordinator only routes to replicas within
// Config.StalenessBound epochs of the writer's head (the writer itself
// is the always-fresh fallback).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lscr/api"
	"lscr/client"
	"lscr/internal/buildinfo"
	"lscr/internal/failpoint"
	"lscr/server"
)

// Routing defaults.
const (
	DefaultProbeInterval = 500 * time.Millisecond
	DefaultHedgeAfter    = 20 * time.Millisecond
	DefaultFailThreshold = 3
	DefaultCooldown      = time.Second
	// maxRelayBody caps what the coordinator buffers of one backend
	// response before relaying it.
	maxRelayBody = 64 << 20
)

// Config wires a Coordinator.
type Config struct {
	// Writer is the base URL of the single writing lscrd; mutations fan
	// in here, and reads fall back to it when no replica is eligible.
	Writer string
	// Replicas are the base URLs of the read replicas (followers; the
	// writer's URL may be listed too to include it in the rotation).
	Replicas []string
	// ProbeInterval is the /healthz probe period (DefaultProbeInterval
	// when zero); probes refresh per-backend epochs and feed breakers.
	ProbeInterval time.Duration
	// HedgeAfter is how long a /v1/query waits on its primary replica
	// before hedging to a second one (DefaultHedgeAfter when zero,
	// negative disables hedging).
	HedgeAfter time.Duration
	// StalenessBound is the maximum number of epochs a replica may lag
	// the writer's head and still take reads; 0 means unbounded.
	StalenessBound uint64
	// FailThreshold consecutive transient failures open a backend's
	// breaker for Cooldown (defaults DefaultFailThreshold and
	// DefaultCooldown).
	FailThreshold int
	Cooldown      time.Duration
	// RequestBudget bounds each read end-to-end (queue time on the
	// backend included: the gateway stamps the remaining budget into
	// api.BudgetHeader on every forwarded attempt, and lscrd turns it
	// into the request's context deadline). 0 means unbounded.
	RequestBudget time.Duration
	// HTTPClient carries all backend traffic; http.DefaultClient when
	// nil.
	HTTPClient *http.Client
	// Logf receives routing events (failovers, breaker trips);
	// log.Printf when nil.
	Logf func(format string, args ...any)
}

// Coordinator is the gateway handler: one logical /v1 engine over many
// lscrd processes. Build with NewCoordinator, optionally Start the
// probe loop, mount as an http.Handler, Close to stop probing.
type Coordinator struct {
	cfg      Config
	hc       *http.Client
	writer   *backend
	replicas []*backend
	mux      *http.ServeMux

	// writerEpoch is the cluster head: the writer's serving epoch from
	// its last good probe or mutate reply. rr drives round-robin.
	writerEpoch atomic.Uint64
	rr          atomic.Uint64

	// sheds counts reads the cluster shed (a backend answered 429 and
	// no alternative could take the request); inflight counts reads
	// currently dispatched. Both are exported on /healthz so overload
	// is observable at the gateway.
	sheds    atomic.Int64
	inflight atomic.Int64

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCoordinator assembles the gateway. It does not probe: call Start
// for the background loop (or ProbeNow for one synchronous round).
func NewCoordinator(cfg Config) *Coordinator {
	co := &Coordinator{cfg: cfg, hc: cfg.HTTPClient}
	if co.hc == nil {
		co.hc = http.DefaultClient
	}
	co.writer = newBackend(cfg.Writer, co.hc)
	for _, u := range cfg.Replicas {
		if u == cfg.Writer {
			// One breaker per process: a writer listed in the rotation
			// shares its backend state with the write path.
			co.replicas = append(co.replicas, co.writer)
			continue
		}
		co.replicas = append(co.replicas, newBackend(u, co.hc))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", co.healthz)
	mux.HandleFunc("GET /v1/healthz", co.healthz)
	mux.HandleFunc("POST /v1/query", co.readHedged(server.MaxQueryBody))
	mux.HandleFunc("POST /v1/batch", co.v1Batch)
	mux.HandleFunc("POST /v1/mutate", co.v1Mutate)
	// The replication endpoints only make sense against the writer's
	// log; proxying them lets followers bootstrap through the gateway.
	mux.HandleFunc("GET /v1/replicate", co.toWriter)
	mux.HandleFunc("GET /v1/segment", co.toWriter)
	// Deprecated pre-v1 reads route like /v1/query.
	mux.HandleFunc("POST /reach", co.readHedged(server.MaxQueryBody))
	mux.HandleFunc("POST /reachall", co.readHedged(server.MaxQueryBody))
	mux.HandleFunc("POST /reachbatch", co.readHedged(server.MaxBatchBody))
	mux.HandleFunc("POST /select", co.readHedged(server.MaxQueryBody))
	co.mux = mux
	return co
}

func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	co.mux.ServeHTTP(w, r)
}

// Start launches the background probe loop; Close stops it.
func (co *Coordinator) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	co.cancel = cancel
	co.wg.Add(1)
	go func() {
		defer co.wg.Done()
		tick := time.NewTicker(co.probeInterval())
		defer tick.Stop()
		co.ProbeNow(ctx)
		for {
			select {
			case <-tick.C:
				co.ProbeNow(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Close stops the probe loop (idempotent; a never-Started coordinator
// closes trivially).
func (co *Coordinator) Close() {
	if co.cancel != nil {
		co.cancel()
		co.cancel = nil
	}
	co.wg.Wait()
}

// ProbeNow probes every backend once, concurrently, updating epochs
// and breakers. The background loop calls it on each tick; tests call
// it directly for deterministic routing state.
func (co *Coordinator) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	probeOne := func(b *backend, isWriter bool) {
		defer wg.Done()
		ep, ok := b.probe(ctx, co.probeInterval(), co.failThreshold(), co.cooldown())
		if ok && isWriter {
			co.writerEpoch.Store(ep)
		}
	}
	wg.Add(1)
	go probeOne(co.writer, true)
	for _, b := range co.replicas {
		if b == co.writer {
			continue
		}
		wg.Add(1)
		go probeOne(b, false)
	}
	wg.Wait()
}

func (co *Coordinator) probeInterval() time.Duration {
	if co.cfg.ProbeInterval > 0 {
		return co.cfg.ProbeInterval
	}
	return DefaultProbeInterval
}

func (co *Coordinator) hedgeAfter() time.Duration {
	switch {
	case co.cfg.HedgeAfter < 0:
		return 0
	case co.cfg.HedgeAfter == 0:
		return DefaultHedgeAfter
	}
	return co.cfg.HedgeAfter
}

func (co *Coordinator) failThreshold() int {
	if co.cfg.FailThreshold > 0 {
		return co.cfg.FailThreshold
	}
	return DefaultFailThreshold
}

func (co *Coordinator) cooldown() time.Duration {
	if co.cfg.Cooldown > 0 {
		return co.cfg.Cooldown
	}
	return DefaultCooldown
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
		return
	}
	log.Printf("lscrgw: "+format, args...)
}

// fresh reports whether b is within the staleness bound of the
// cluster head.
func (co *Coordinator) fresh(b *backend) bool {
	if co.cfg.StalenessBound == 0 || b == co.writer {
		return true
	}
	head := co.writerEpoch.Load()
	ep := b.epoch.Load()
	return ep >= head || head-ep <= co.cfg.StalenessBound
}

// pickRead selects the next read backend round-robin among eligible
// replicas (breaker closed, within the staleness bound), excluding
// those already tried; when no replica qualifies it falls back to the
// writer, which is never stale. nil means nothing can serve the read.
func (co *Coordinator) pickRead(tried map[*backend]bool) *backend {
	now := time.Now()
	if n := len(co.replicas); n > 0 {
		start := co.rr.Add(1)
		for i := 0; i < n; i++ {
			b := co.replicas[(start+uint64(i))%uint64(n)]
			if tried[b] || !b.available(now) || b.shedding(now) || !co.fresh(b) {
				continue
			}
			return b
		}
	}
	if w := co.writer; !tried[w] && w.available(now) && !w.shedding(now) {
		return w
	}
	return nil
}

// eligibleReads snapshots every backend pickRead could currently
// return, replicas first — the fan-out set for batch partitioning.
func (co *Coordinator) eligibleReads() []*backend {
	now := time.Now()
	var out []*backend
	for _, b := range co.replicas {
		if b.available(now) && !b.shedding(now) && co.fresh(b) {
			out = append(out, b)
		}
	}
	if len(out) == 0 && co.writer.available(now) && !co.writer.shedding(now) {
		out = append(out, co.writer)
	}
	return out
}

// attemptResult is one forwarded exchange with a backend.
type attemptResult struct {
	b       *backend
	status  int
	header  http.Header
	body    []byte
	err     error
	elapsed time.Duration
}

// transient reports a failure worth redispatching: the backend did not
// produce a definitive answer (transport error, or it is itself a
// gateway-ish 502/503).
func (res *attemptResult) transient() bool {
	return res.err != nil ||
		res.status == http.StatusBadGateway ||
		res.status == http.StatusServiceUnavailable
}

func (res *attemptResult) failureErr() error {
	if res.err != nil {
		return res.err
	}
	return fmt.Errorf("backend answered %d", res.status)
}

// FPGatewayDispatch is the failpoint site evaluated per forwarded
// attempt; an armed error policy makes the dispatch fail as if the
// backend were unreachable, exercising redispatch and breaker paths.
const FPGatewayDispatch = "gateway-dispatch"

// attempt forwards one buffered request to b and buffers the reply.
// The remaining context budget travels in api.BudgetHeader, so a
// backend's admission queue spends the caller's time, not its own
// unbounded patience.
func (co *Coordinator) attempt(ctx context.Context, b *backend, method, path, rawQuery string, body []byte, contentType string) attemptResult {
	if fp := failpoint.Eval(FPGatewayDispatch); fp != nil {
		return attemptResult{b: b, err: fp}
	}
	url := b.url + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return attemptResult{b: b, err: err}
	}
	if contentType != "" {
		hreq.Header.Set("Content-Type", contentType)
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			hreq.Header.Set(api.BudgetHeader, strconv.FormatInt(ms, 10))
		}
	}
	start := time.Now()
	resp, err := co.hc.Do(hreq)
	if err != nil {
		return attemptResult{b: b, err: err, elapsed: time.Since(start)}
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxRelayBody))
	if err != nil {
		return attemptResult{b: b, err: err, elapsed: time.Since(start)}
	}
	return attemptResult{
		b:       b,
		status:  resp.StatusCode,
		header:  resp.Header,
		body:    respBody,
		elapsed: time.Since(start),
	}
}

// relay writes a backend reply through to the client, preserving the
// Retry-After hint of a shedding or poisoned backend.
func relay(w http.ResponseWriter, res attemptResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if eh := res.header.Get(api.SegmentEpochHeader); eh != "" {
		w.Header().Set(api.SegmentEpochHeader, eh)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// readHedged builds the handler for single-request reads: route to an
// eligible replica, hedge to a second after hedgeAfter, redispatch on
// transient failure, first definitive answer wins. The request body is
// buffered up front so every attempt re-sends identical bytes. A 429
// is handled shed-aware: the backend leaves the rotation briefly (no
// breaker hit — it is overloaded, not broken) and the read is
// redispatched once elsewhere; only when nothing else can take it does
// the 429 relay to the client, Retry-After intact.
func (co *Coordinator) readHedged(maxBody int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		co.inflight.Add(1)
		defer co.inflight.Add(-1)
		ctx := r.Context()
		if d := co.cfg.RequestBudget; d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		actx, cancelAttempts := context.WithCancel(ctx)
		defer cancelAttempts()

		// Buffered wide enough for every backend plus the writer, so a
		// losing attempt's send never blocks after the handler returns.
		results := make(chan attemptResult, len(co.replicas)+2)
		tried := make(map[*backend]bool)
		inflight := 0
		launch := func(b *backend) {
			tried[b] = true
			inflight++
			go func() {
				results <- co.attempt(actx, b, r.Method, r.URL.Path, r.URL.RawQuery, body, r.Header.Get("Content-Type"))
			}()
		}
		primary := co.pickRead(tried)
		if primary == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("no eligible backend"))
			return
		}
		launch(primary)
		var hedge <-chan time.Time
		if d := co.hedgeAfter(); d > 0 {
			t := time.NewTimer(d)
			defer t.Stop()
			hedge = t.C
		}
		var (
			lastErr  error
			lastShed *attemptResult
		)
		for {
			select {
			case res := <-results:
				inflight--
				if res.status == http.StatusTooManyRequests {
					// Shed, not broken: pull the backend out of the
					// rotation for a cooldown without feeding its breaker,
					// and give the read one chance elsewhere. Relaying the
					// 429 (Retry-After intact) is the fallback, not a 502 —
					// the client's retry policy knows what to do with it.
					res.b.shed(co.cooldown())
					co.logf("read via %s shed (429)", res.b.url)
					if nb := co.pickRead(tried); nb != nil {
						launch(nb)
						continue
					}
					if inflight > 0 {
						lastShed = &res
						continue // a hedge may still answer
					}
					co.sheds.Add(1)
					relay(w, res)
					return
				}
				if res.transient() {
					lastErr = res.failureErr()
					res.b.failure(lastErr, co.failThreshold(), co.cooldown())
					co.logf("read via %s failed: %v", res.b.url, lastErr)
					if nb := co.pickRead(tried); nb != nil {
						launch(nb)
						continue
					}
					if inflight > 0 {
						continue // a hedge may still answer
					}
					if lastShed != nil {
						co.sheds.Add(1)
						relay(w, *lastShed)
						return
					}
					writeError(w, http.StatusBadGateway, fmt.Errorf("no backend answered: %v", lastErr))
					return
				}
				res.b.success(res.elapsed)
				relay(w, res)
				return
			case <-hedge:
				hedge = nil
				if nb := co.pickRead(tried); nb != nil {
					launch(nb)
				}
			case <-ctx.Done():
				return
			}
		}
	}
}

// v1Batch fans a batch out across the eligible replicas and merges the
// group replies back into request order. A group whose replica fails
// transiently is redispatched once to another eligible replica; if
// that also fails, its slots answer per-item errors (the other groups'
// answers still stand — a replica going down mid-batch degrades, never
// corrupts, the merge).
func (co *Coordinator) v1Batch(w http.ResponseWriter, r *http.Request) {
	var wire api.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, server.MaxBatchBody)).Decode(&wire); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(wire.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	backends := co.eligibleReads()
	if len(backends) == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("no eligible backend"))
		return
	}
	// Partition round-robin: queries i, i+n, i+2n… go to backend i. The
	// slot map carries each sub-batch answer back to its request index.
	groups := make([][]api.QueryRequest, len(backends))
	slots := make([][]int, len(backends))
	for i, q := range wire.Queries {
		g := i % len(backends)
		groups[g] = append(groups[g], q)
		slots[g] = append(slots[g], i)
	}
	items := make([]api.BatchItem, len(wire.Queries))
	var wg sync.WaitGroup
	for g := range groups {
		if len(groups[g]) == 0 {
			continue
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			co.runGroup(r.Context(), backends, g, groups[g], slots[g], wire.Concurrency, items)
		}(g)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, api.BatchResponse{Results: items, Count: len(items)})
}

// runGroup sends one partition to its backend, redispatching once on
// transient failure, and writes the answers into their slots.
func (co *Coordinator) runGroup(ctx context.Context, backends []*backend, g int, queries []api.QueryRequest, slots []int, concurrency int, items []api.BatchItem) {
	req := api.BatchRequest{Queries: queries, Concurrency: concurrency}
	targets := []*backend{backends[g]}
	if alt := backends[(g+1)%len(backends)]; alt != targets[0] {
		targets = append(targets, alt)
	}
	var lastErr error
	for _, b := range targets {
		start := time.Now()
		resp, err := b.cli.Batch(ctx, req)
		if err == nil {
			b.success(time.Since(start))
			for j, it := range resp.Results {
				if j < len(slots) {
					items[slots[j]] = it
				}
			}
			return
		}
		lastErr = err
		if !transientErr(err) {
			// A definitive refusal maps onto every slot of the group.
			break
		}
		b.failure(err, co.failThreshold(), co.cooldown())
		co.logf("batch group via %s failed: %v", b.url, err)
	}
	for _, slot := range slots {
		items[slot] = api.BatchItem{Error: fmt.Sprintf("gateway: %v", lastErr)}
	}
}

// transientErr classifies a typed-client error like
// attemptResult.transient does a raw one.
func transientErr(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusBadGateway ||
			apiErr.StatusCode == http.StatusServiceUnavailable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// v1Mutate fans the mutation in through the single writer, exactly
// once — the gateway never retries a write (the reply may have been
// lost after the commit), matching the typed client's contract.
func (co *Coordinator) v1Mutate(w http.ResponseWriter, r *http.Request) {
	if co.writer.poisoned.Load() {
		// The writer fail-stopped its write path (probe saw the
		// degraded /healthz): fail static here instead of burning the
		// writer's 503 path per request. Reads keep routing normally.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			errors.New("writer is poisoned (fail-stop after write error); restart it to resume writes"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxBatchBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res := co.attempt(r.Context(), co.writer, http.MethodPost, "/v1/mutate", "", body, r.Header.Get("Content-Type"))
	if res.err != nil {
		co.writer.failure(res.err, co.failThreshold(), co.cooldown())
		writeError(w, http.StatusBadGateway, fmt.Errorf("writer unavailable: %v", res.err))
		return
	}
	if res.status/100 == 2 {
		co.writer.success(res.elapsed)
		// The reply carries the committed epoch: advance the cluster
		// head immediately so staleness checks see the write without
		// waiting for the next probe.
		var mr api.MutateResponse
		if json.Unmarshal(res.body, &mr) == nil && mr.Epoch > co.writerEpoch.Load() {
			co.writerEpoch.Store(mr.Epoch)
		}
	}
	relay(w, res)
}

// toWriter forwards a request to the writer verbatim (replication
// endpoints).
func (co *Coordinator) toWriter(w http.ResponseWriter, r *http.Request) {
	res := co.attempt(r.Context(), co.writer, r.Method, r.URL.Path, r.URL.RawQuery, nil, "")
	if res.err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("writer unavailable: %v", res.err))
		return
	}
	relay(w, res)
}

// healthz reports the gateway's routing view of the cluster.
func (co *Coordinator) healthz(w http.ResponseWriter, r *http.Request) {
	head := co.writerEpoch.Load()
	out := api.ClusterHealth{
		Status:         "ok",
		Version:        buildinfo.Version(),
		API:            api.Version,
		Role:           "gateway",
		Epoch:          head,
		Writer:         co.backendHealth(co.writer, head),
		Sheds:          co.sheds.Load(),
		Inflight:       co.inflight.Load(),
		WriterPoisoned: co.writer.poisoned.Load(),
	}
	for _, b := range co.replicas {
		out.Replicas = append(out.Replicas, co.backendHealth(b, head))
	}
	if len(co.eligibleReads()) == 0 || out.WriterPoisoned {
		out.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, out)
}

func (co *Coordinator) backendHealth(b *backend, head uint64) api.ReplicaHealth {
	now := time.Now()
	rh := api.ReplicaHealth{
		URL:       b.url,
		Breaker:   "closed",
		Epoch:     b.epoch.Load(),
		LatencyUS: b.latencyUS.Load(),
		Shedding:  b.shedding(now),
		Poisoned:  b.poisoned.Load(),
	}
	if !b.available(now) {
		rh.Breaker = "open"
	}
	if head > rh.Epoch {
		rh.Lag = head - rh.Epoch
	}
	if msg := b.lastErr.Load(); msg != nil && *msg != "" {
		rh.Error = *msg
	}
	rh.Healthy = rh.Breaker == "closed" && rh.Error == "" && co.fresh(b)
	return rh
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("lscrgw: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, api.Error{Error: err.Error()})
}
