package workload

import (
	"math/rand"
	"testing"

	"lscr/internal/graph"
	"lscr/internal/lscr"
	"lscr/internal/lubm"
	"lscr/internal/pattern"
	"lscr/internal/sparql"
	"lscr/internal/testkg"
	"lscr/internal/yagogen"
)

func lubmFixture(t *testing.T) (*graph.Graph, *pattern.Constraint, []graph.VertexID) {
	t.Helper()
	cfg := lubm.DefaultConfig(1)
	cfg.DeptsPerUniversity = 4
	g := lubm.Generate(cfg)
	nc, _ := lubm.Constraint("S1")
	q, err := sparql.Parse(nc.SPARQL)
	if err != nil {
		t.Fatal(err)
	}
	cons, sat, err := q.Compile(g)
	if err != nil || !sat {
		t.Fatalf("compile S1: %v sat=%v", err, sat)
	}
	m, err := pattern.NewMatcher(g, cons)
	if err != nil {
		t.Fatal(err)
	}
	return g, cons, m.MatchAll()
}

func TestGenerateGroups(t *testing.T) {
	g, cons, vs := lubmFixture(t)
	trueQ, falseQ, err := Generate(g, cons, vs, Config{Count: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(trueQ) == 0 || len(falseQ) == 0 {
		t.Fatalf("groups: true=%d false=%d", len(trueQ), len(falseQ))
	}
	// Every query's expectation must match a fresh UIS run.
	for _, q := range append(append([]Query{}, trueQ...), falseQ...) {
		ans, _, err := lscr.UIS(g, q.Query)
		if err != nil {
			t.Fatal(err)
		}
		if ans != q.Expected {
			t.Fatalf("ground truth mismatch: got %v want %v", ans, q.Expected)
		}
	}
}

func TestLabelSizeBuckets(t *testing.T) {
	g, cons, vs := lubmFixture(t)
	trueQ, falseQ, err := Generate(g, cons, vs, Config{Count: 15, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tl := g.NumLabels()
	lo, hi := int(0.2*float64(tl)), int(0.8*float64(tl))+1
	for _, q := range append(append([]Query{}, trueQ...), falseQ...) {
		size := q.Labels.Len()
		if size < lo-1 || size > hi {
			t.Errorf("label size %d outside [%d,%d]", size, lo, hi)
		}
	}
}

func TestTargetsNotTrivial(t *testing.T) {
	g, cons, vs := lubmFixture(t)
	trueQ, _, err := Generate(g, cons, vs, Config{Count: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range trueQ {
		if q.Source == q.Target {
			t.Error("trivial s == t query produced")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	g, cons, vs := lubmFixture(t)
	if _, _, err := Generate(g, cons, vs, Config{Count: 0}); err == nil {
		t.Error("Count=0 accepted")
	}
	b := graph.NewBuilder()
	b.Vertex("only")
	tiny := b.Build()
	if _, _, err := Generate(tiny, cons, vs, Config{Count: 1}); err == nil {
		t.Error("one-vertex graph accepted")
	}
}

func TestGenerateOnRunningExample(t *testing.T) {
	g, ids := testkg.RunningExample()
	friendOf, _ := g.LabelByName("friendOf")
	likes, _ := g.LabelByName("likes")
	cons := &pattern.Constraint{
		Focus: "x",
		Patterns: []pattern.TriplePattern{
			{Subject: pattern.V("x"), Label: friendOf, Object: pattern.C(ids["v3"])},
			{Subject: pattern.C(ids["v3"]), Label: likes, Object: pattern.V("y")},
		},
	}
	m, _ := pattern.NewMatcher(g, cons)
	vs := m.MatchAll()
	// The tiny graph needs the tree filter off.
	trueQ, falseQ, err := Generate(g, cons, vs, Config{Count: 3, Seed: 5, SkipTreeFilter: true, MaxAttempts: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range append(append([]Query{}, trueQ...), falseQ...) {
		ans, _, err := lscr.UIS(g, q.Query)
		if err != nil || ans != q.Expected {
			t.Fatalf("mismatch on tiny graph: %v vs %v (%v)", ans, q.Expected, err)
		}
	}
}

func TestRandomConstraintSized(t *testing.T) {
	g := yagogen.Generate(yagogen.DefaultConfig(8000))
	rng := rand.New(rand.NewSource(17))
	for _, m := range []int{10, 100, 1000} {
		c, vs, err := RandomConstraintSized(rng, g, m)
		if err != nil {
			t.Fatalf("magnitude %d: %v", m, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("magnitude %d: invalid constraint: %v", m, err)
		}
		lo, hi := int(0.8*float64(m)), int(1.2*float64(m))
		if len(vs) < lo || len(vs) > hi {
			t.Fatalf("magnitude %d: |V(S,G)| = %d outside [%d,%d]", m, len(vs), lo, hi)
		}
		// V(S,G) must be exactly the matcher's result.
		mt, _ := pattern.NewMatcher(g, c)
		if got := mt.MatchAll(); len(got) != len(vs) {
			t.Fatalf("magnitude %d: stale V(S,G)", m)
		}
	}
}

func TestRandomConstraintSizedErrors(t *testing.T) {
	g, _ := testkg.RunningExample()
	rng := rand.New(rand.NewSource(1))
	if _, _, err := RandomConstraintSized(rng, g, 0); err == nil {
		t.Error("magnitude 0 accepted")
	}
	// A 5-vertex graph cannot produce |V(S,G)| ≈ 1000.
	if _, _, err := RandomConstraintSized(rng, g, 1000); err == nil {
		t.Error("impossible magnitude accepted")
	}
}
