// Package workload implements the paper's evaluation-query generation
// (§6.1.1 for LUBM, §6.2 for YAGO): groups of true- and false-LSCR
// queries with the irrelevant variables controlled —
//
//   - label-constraint sizes are uniform across the three buckets
//     [0.2t,0.4t), [0.4t,0.6t), [0.6t,0.8t] of the label-universe size t;
//   - targets are filtered so s does not reach t within log|V| BFS
//     levels (queries that are too easy are discarded);
//   - queries whose UIS search tree is smaller than a random threshold in
//     [10·log|V|, |V|/(10·log|V|)] are discarded;
//   - the three false-query types (s-L↛t ∧ s-S->t, s-L->t ∧ s-S↛t,
//     s-L↛t ∧ s-S↛t) appear in uniform proportion.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/lcr"
	"lscr/internal/lscr"
	"lscr/internal/pattern"
)

// Query is an evaluation query with its ground-truth answer.
type Query struct {
	lscr.Query
	Expected bool
}

// Config controls generation.
type Config struct {
	// Count is the number of queries per group (the paper uses 1000; the
	// scaled-down harness uses less).
	Count int
	Seed  int64
	// MaxAttempts bounds the candidate loop per group; when exhausted,
	// Generate returns what it has (possibly short groups) rather than
	// spinning forever on graphs where some bucket is unreachable.
	MaxAttempts int
	// SkipTreeFilter disables the |T| threshold (useful on tiny graphs
	// where the paper's range is degenerate).
	SkipTreeFilter bool
}

// falseKind enumerates the three false-query possibilities of §6.1.1.
type falseKind int

const (
	falseOnlySubstructure falseKind = iota // s-L↛t ∧ s-S->t
	falseOnlyLabel                         // s-L->t ∧ s-S↛t
	falseNeither                           // s-L↛t ∧ s-S↛t
	numFalseKinds
)

// Generate produces a group of true and a group of false LSCR queries for
// the given substructure constraint. vs is V(S,G) (precomputed by the
// caller's SPARQL engine); it must be the full result set.
func Generate(g *graph.Graph, cons *pattern.Constraint, vs []graph.VertexID, cfg Config) (trueQ, falseQ []Query, err error) {
	if cfg.Count <= 0 {
		return nil, nil, errors.New("workload: Count must be positive")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = cfg.Count * 400
	}
	n := g.NumVertices()
	if n < 2 {
		return nil, nil, errors.New("workload: graph too small")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := &generator{
		g: g, cons: cons, vs: vs, rng: rng, cfg: cfg,
		logV: math.Max(1, math.Log2(float64(n))),
	}

	var trueBuckets, falseBuckets [3]int
	var falseKinds [numFalseKinds]int
	perBucketTrue := (cfg.Count + 2) / 3
	perBucketFalse := (cfg.Count + 2) / 3
	perKind := (cfg.Count + int(numFalseKinds) - 1) / int(numFalseKinds)

	for attempts := 0; attempts < cfg.MaxAttempts &&
		(len(trueQ) < cfg.Count || len(falseQ) < cfg.Count); attempts++ {
		q, bucket, ok := gen.candidate()
		if !ok {
			continue
		}
		ans, tree, err := lscr.UISWithTreeSize(g, q)
		if err != nil {
			return nil, nil, err
		}
		if !cfg.SkipTreeFilter && !gen.treeSizeOK(tree) {
			continue
		}
		if ans {
			if len(trueQ) >= cfg.Count || trueBuckets[bucket] >= perBucketTrue {
				continue
			}
			trueBuckets[bucket]++
			trueQ = append(trueQ, Query{Query: q, Expected: true})
			continue
		}
		if len(falseQ) >= cfg.Count || falseBuckets[bucket] >= perBucketFalse {
			continue
		}
		kind := gen.classifyFalse(q)
		if falseKinds[kind] >= perKind {
			continue
		}
		falseKinds[kind]++
		falseBuckets[bucket]++
		falseQ = append(falseQ, Query{Query: q, Expected: false})
	}
	if len(trueQ) == 0 && len(falseQ) == 0 {
		return nil, nil, fmt.Errorf("workload: no acceptable queries in %d attempts", cfg.MaxAttempts)
	}
	return trueQ, falseQ, nil
}

type generator struct {
	g    *graph.Graph
	cons *pattern.Constraint
	vs   []graph.VertexID
	rng  *rand.Rand
	cfg  Config
	logV float64
}

// candidate draws (s, L) at random, picks a non-trivial target by the
// log|V|-level BFS filter, and reports the label-size bucket.
func (gen *generator) candidate() (lscr.Query, int, bool) {
	g := gen.g
	s := graph.VertexID(gen.rng.Intn(g.NumVertices()))
	L, bucket := gen.randomLabelSet()
	t, ok := gen.pickTarget(s, L)
	if !ok {
		return lscr.Query{}, 0, false
	}
	return lscr.Query{Source: s, Target: t, Labels: L, Constraint: gen.cons}, bucket, true
}

// randomLabelSet draws |L| uniformly from one of the three buckets over
// [0.2t, 0.8t] and then |L| distinct labels.
func (gen *generator) randomLabelSet() (labelset.Set, int) {
	t := gen.g.NumLabels()
	bucket := gen.rng.Intn(3)
	lo := float64(t) * (0.2 + 0.2*float64(bucket))
	hi := lo + 0.2*float64(t)
	size := int(lo) + gen.rng.Intn(int(hi-lo)+1)
	if size < 1 {
		size = 1
	}
	if size > t {
		size = t
	}
	perm := gen.rng.Perm(t)
	var L labelset.Set
	for _, l := range perm[:size] {
		L = L.Add(labelset.Label(l))
	}
	return L, bucket
}

// pickTarget runs a label-constrained BFS from s for log|V| iterations
// (vertex expansions) and returns a random vertex the BFS did not explore
// ("for filtering out the vertices that s reaches only with a few steps",
// §6.1.1).
func (gen *generator) pickTarget(s graph.VertexID, L labelset.Set) (graph.VertexID, bool) {
	g := gen.g
	n := g.NumVertices()
	explored := make([]bool, n)
	explored[s] = true
	queue := []graph.VertexID{s}
	count := 1
	for iter := 0; iter < int(gen.logV) && len(queue) > 0; iter++ {
		u := queue[0]
		queue = queue[1:]
		it := g.OutLabeled(u, L)
		for run, ok := it.Next(); ok; run, ok = it.Next() {
			for _, e := range run {
				if !explored[e.To] {
					explored[e.To] = true
					count++
					queue = append(queue, e.To)
				}
			}
		}
	}
	if count == n {
		return 0, false // everything is near s; no valid target
	}
	// Uniform choice among unexplored via reservoir sampling.
	var t graph.VertexID
	seen := 0
	for v := 0; v < n; v++ {
		if explored[v] {
			continue
		}
		seen++
		if gen.rng.Intn(seen) == 0 {
			t = graph.VertexID(v)
		}
	}
	return t, seen > 0
}

// treeSizeOK applies the paper's |T| filter: a random min in
// [10·log|V|, |V|/(10·log|V|)] and |T| ≥ min. Degenerate ranges (small
// graphs) clamp to the lower bound.
func (gen *generator) treeSizeOK(tree int) bool {
	lo := 10 * gen.logV
	hi := float64(gen.g.NumVertices()) / (10 * gen.logV)
	if hi < lo {
		hi = lo
	}
	min := lo + gen.rng.Float64()*(hi-lo)
	return float64(tree) >= min
}

// classifyFalse determines which of the three §6.1.1 false types q is.
// The substructure-reachability half intersects a forward reachable set
// from s with a backward reachable set from t (two BFS runs) instead of
// one BFS per satisfying vertex.
func (gen *generator) classifyFalse(q lscr.Query) falseKind {
	labelReach := lcr.Reach(gen.g, q.Source, q.Target, q.Labels)
	all := gen.g.LabelUniverse()
	fwd := make([]bool, gen.g.NumVertices())
	for _, v := range lcr.ReachableSet(gen.g, q.Source, all) {
		fwd[v] = true
	}
	bwd := make([]bool, gen.g.NumVertices())
	for _, v := range lcr.ReachableSetReverse(gen.g, q.Target, all) {
		bwd[v] = true
	}
	subReach := false
	for _, v := range gen.vs {
		if fwd[v] && bwd[v] {
			subReach = true
			break
		}
	}
	switch {
	case !labelReach && subReach:
		return falseOnlySubstructure
	case labelReach && !subReach:
		return falseOnlyLabel
	default:
		return falseNeither
	}
}
