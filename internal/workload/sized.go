package workload

import (
	"errors"
	"math/rand"

	"lscr/internal/graph"
	"lscr/internal/pattern"
)

// RandomConstraintSized generates a random substructure constraint whose
// result-set size |V(S,G)| lies in [0.8m, 1.2m], the §6.2 procedure for
// the YAGO experiment: start from a random instance vertex with a
// low-selectivity constraint containing it, then gradually and randomly
// adjust (generalise or specialise) until the size lands in the window.
//
// It returns the constraint and its V(S,G). An error means no constraint
// hit the window within the attempt budget; callers usually retry with a
// different seed or accept a neighbouring magnitude.
func RandomConstraintSized(rng *rand.Rand, g *graph.Graph, m int) (*pattern.Constraint, []graph.VertexID, error) {
	if m < 1 {
		return nil, nil, errors.New("workload: magnitude must be ≥ 1")
	}
	lo, hi := int(0.8*float64(m)), int(1.2*float64(m))
	if lo < 1 {
		lo = 1
	}

	for attempt := 0; attempt < 120; attempt++ {
		c := seedConstraint(rng, g)
		if c == nil {
			continue
		}
		for step := 0; step < 20; step++ {
			mt, err := pattern.NewMatcher(g, c)
			if err != nil {
				break
			}
			// The cap makes over-wide candidates cheap to reject: on big
			// graphs an early constraint can match hundreds of thousands
			// of vertices, and enumerating them all just to learn "too
			// large" dominated sizing time.
			vs, complete := mt.MatchCapped(hi)
			switch {
			case complete && len(vs) >= lo && len(vs) <= hi:
				return c, vs, nil
			case complete && len(vs) < lo:
				c = generalize(rng, g, c)
			default:
				c2 := specialize(rng, g, c, vs)
				if c2 == nil {
					break
				}
				c = c2
			}
			if c == nil {
				break
			}
		}
	}
	return nil, nil, errors.New("workload: could not hit size window")
}

// seedConstraint builds a one-pattern constraint anchored at a random
// vertex's random edge, guaranteed to match at least that vertex.
func seedConstraint(rng *rand.Rand, g *graph.Graph) *pattern.Constraint {
	n := g.NumVertices()
	for try := 0; try < 20; try++ {
		v := graph.VertexID(rng.Intn(n))
		out, in := g.Out(v), g.In(v)
		if len(out) == 0 && len(in) == 0 {
			continue
		}
		var tp pattern.TriplePattern
		if len(out) > 0 && (len(in) == 0 || rng.Intn(2) == 0) {
			e := out[rng.Intn(len(out))]
			tp = pattern.TriplePattern{Subject: pattern.V("x"), Label: e.Label, Object: pattern.C(e.To)}
		} else {
			e := in[rng.Intn(len(in))]
			tp = pattern.TriplePattern{Subject: pattern.C(e.To), Label: e.Label, Object: pattern.V("x")}
		}
		return &pattern.Constraint{Focus: "x", Patterns: []pattern.TriplePattern{tp}}
	}
	return nil
}

// generalize widens the constraint: drop a non-essential pattern,
// replace a constant endpoint with a fresh variable, or switch a
// pattern's label to a more common one.
func generalize(rng *rand.Rand, g *graph.Graph, c *pattern.Constraint) *pattern.Constraint {
	out := &pattern.Constraint{Focus: c.Focus, Patterns: append([]pattern.TriplePattern(nil), c.Patterns...)}
	switch {
	case len(out.Patterns) > 1 && rng.Intn(2) == 0:
		i := rng.Intn(len(out.Patterns))
		out.Patterns = append(out.Patterns[:i], out.Patterns[i+1:]...)
		if out.Validate() == nil {
			return out
		}
		return nil
	case rng.Intn(3) == 0 && g.NumLabels() > 1:
		// Re-label a random pattern: different labels have wildly
		// different frequencies under Zipfian mixes.
		i := rng.Intn(len(out.Patterns))
		out.Patterns[i].Label = graph.Label(rng.Intn(g.NumLabels()))
		return out
	}
	// Replace a constant with a variable.
	for _, i := range rng.Perm(len(out.Patterns)) {
		p := out.Patterns[i]
		if p.Object.Kind == pattern.Const {
			p.Object = pattern.V("g0")
			out.Patterns[i] = p
			return out
		}
		if p.Subject.Kind == pattern.Const {
			p.Subject = pattern.V("g1")
			out.Patterns[i] = p
			return out
		}
	}
	return out
}

// specialize narrows the constraint by adding a pattern drawn from the
// edges of a random currently-matching vertex, so the result set stays
// non-empty.
func specialize(rng *rand.Rand, g *graph.Graph, c *pattern.Constraint, vs []graph.VertexID) *pattern.Constraint {
	if len(c.Patterns) >= 6 || len(vs) == 0 {
		return nil
	}
	v := vs[rng.Intn(len(vs))]
	out, in := g.Out(v), g.In(v)
	if len(out) == 0 && len(in) == 0 {
		return nil
	}
	nc := &pattern.Constraint{Focus: c.Focus, Patterns: append([]pattern.TriplePattern(nil), c.Patterns...)}
	if len(out) > 0 && (len(in) == 0 || rng.Intn(2) == 0) {
		e := out[rng.Intn(len(out))]
		nc.Patterns = append(nc.Patterns, pattern.TriplePattern{
			Subject: pattern.V("x"), Label: e.Label, Object: pattern.C(e.To),
		})
	} else {
		e := in[rng.Intn(len(in))]
		nc.Patterns = append(nc.Patterns, pattern.TriplePattern{
			Subject: pattern.C(e.To), Label: e.Label, Object: pattern.V("x"),
		})
	}
	return nc
}
