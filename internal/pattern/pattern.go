// Package pattern implements substructure constraints (Definition 2.2 of
// the paper) and their evaluation on a knowledge graph.
//
// A substructure constraint S = (?x, V_S, E_S, E_?) is represented as a
// basic graph pattern: a list of triple patterns whose endpoints are
// either constant vertices (V_S, joined by the concrete edges E_S) or
// variables (the ?u/?v endpoints of E_?), plus a designated focus
// variable ?x. A vertex v satisfies S when substituting v for ?x leaves
// the pattern satisfiable in G (Definition 2.2's "the result is still a
// substructure or a variable-substructure of G").
//
// Two operations matter to the paper's algorithms:
//
//   - SCck(v, S): does v satisfy S? (used per-vertex by UIS, §3)
//   - V(S, G): all vertices that satisfy S (obtained "by implementing
//     SPARQL engines" for UIS* and INS, §4–§5)
package pattern

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"lscr/internal/graph"
)

// TermKind discriminates triple-pattern endpoints.
type TermKind uint8

const (
	// Const is a concrete vertex of the graph.
	Const TermKind = iota
	// Var is a named variable; the focus variable ?x is a Var whose name
	// equals Constraint.Focus.
	Var
)

// Term is one endpoint of a triple pattern.
type Term struct {
	Kind   TermKind
	Vertex graph.VertexID // valid when Kind == Const
	Name   string         // valid when Kind == Var (without the '?')
}

// C returns a constant term.
func C(v graph.VertexID) Term { return Term{Kind: Const, Vertex: v} }

// V returns a variable term.
func V(name string) Term { return Term{Kind: Var, Name: name} }

// String renders the term for diagnostics.
func (t Term) String() string {
	if t.Kind == Var {
		return "?" + t.Name
	}
	return fmt.Sprintf("#%d", t.Vertex)
}

// TriplePattern is one edge pattern (subject, label, object).
type TriplePattern struct {
	Subject Term
	Label   graph.Label
	Object  Term
}

// Constraint is a substructure constraint: a basic graph pattern with a
// focus variable. Construct one directly or via the sparql package, then
// call Validate.
type Constraint struct {
	Focus    string // name of ?x
	Patterns []TriplePattern
}

// Validation errors.
var (
	ErrNoFocus      = errors.New("pattern: constraint has no focus variable")
	ErrFocusUnused  = errors.New("pattern: focus variable appears in no pattern")
	ErrEmptyPattern = errors.New("pattern: constraint has no triple patterns")
)

// Validate checks the structural requirements of Definition 2.2: a
// non-empty pattern in which the focus variable occurs (∃e ∈ E_? incident
// to ?x or pointing at ?x).
func (c *Constraint) Validate() error {
	if c.Focus == "" {
		return ErrNoFocus
	}
	if len(c.Patterns) == 0 {
		return ErrEmptyPattern
	}
	for _, p := range c.Patterns {
		if p.Subject.Kind == Var && p.Subject.Name == c.Focus {
			return nil
		}
		if p.Object.Kind == Var && p.Object.Name == c.Focus {
			return nil
		}
	}
	return ErrFocusUnused
}

// Vars returns the distinct variable names of the constraint, focus first,
// remainder sorted.
func (c *Constraint) Vars() []string {
	seen := map[string]bool{}
	var rest []string
	add := func(t Term) {
		if t.Kind == Var && !seen[t.Name] {
			seen[t.Name] = true
			if t.Name != c.Focus {
				rest = append(rest, t.Name)
			}
		}
	}
	for _, p := range c.Patterns {
		add(p.Subject)
		add(p.Object)
	}
	sort.Strings(rest)
	out := make([]string, 0, len(rest)+1)
	if seen[c.Focus] {
		out = append(out, c.Focus)
	}
	return append(out, rest...)
}

// String renders the constraint in a SPARQL-like form using numeric IDs.
func (c *Constraint) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "S(?%s){", c.Focus)
	for i, p := range c.Patterns {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v -%d-> %v.", p.Subject, p.Label, p.Object)
	}
	b.WriteByte('}')
	return b.String()
}

// Cost returns |V_S| + |E_S| + |E_?|, the per-check term of Theorem 3.3,
// approximated as constants + patterns.
func (c *Constraint) Cost() int {
	consts := map[graph.VertexID]bool{}
	for _, p := range c.Patterns {
		if p.Subject.Kind == Const {
			consts[p.Subject.Vertex] = true
		}
		if p.Object.Kind == Const {
			consts[p.Object.Vertex] = true
		}
	}
	return len(consts) + len(c.Patterns)
}

// Matcher evaluates a constraint against a graph. It is cheap to create;
// create one per (graph, constraint) pair. A Matcher is safe for
// concurrent use because evaluation state lives on the stack of each call.
type Matcher struct {
	g *graph.Graph
	c *Constraint
}

// NewMatcher validates c and returns a Matcher for it.
func NewMatcher(g *graph.Graph, c *Constraint) (*Matcher, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Matcher{g: g, c: c}, nil
}

// Check implements SCck(v, S): it reports whether vertex v satisfies the
// constraint.
func (m *Matcher) Check(v graph.VertexID) bool {
	bind := map[string]graph.VertexID{m.c.Focus: v}
	return m.solve(bind, newPatternSet(len(m.c.Patterns)))
}

// MatchAll computes V(S, G): every vertex that satisfies the constraint,
// in ascending ID order. This is the repository's stand-in for the exact
// SPARQL engine the paper configures (UNIMax = Max = +∞, Eδ = 1 ⇒ the full
// exact result set).
func (m *Matcher) MatchAll() []graph.VertexID {
	cands := m.focusCandidates()
	var out []graph.VertexID
	for _, v := range cands {
		if m.Check(v) {
			out = append(out, v)
		}
	}
	return out
}

// MatchCapped is MatchAll with an early exit: it stops scanning as soon
// as more than limit satisfying vertices are found and reports complete
// = false. Workload sizing loops over multi-million-vertex graphs use
// it to reject over-wide candidate constraints without enumerating the
// full V(S, G); when complete is true the returned set is exactly
// MatchAll's.
func (m *Matcher) MatchCapped(limit int) (vs []graph.VertexID, complete bool) {
	for _, v := range m.focusCandidates() {
		if m.Check(v) {
			vs = append(vs, v)
			if len(vs) > limit {
				return vs, false
			}
		}
	}
	return vs, true
}

// focusCandidates narrows the vertices worth checking, using the most
// selective pattern that touches the focus variable. Falls back to all
// vertices when no pattern pins the focus next to a constant.
func (m *Matcher) focusCandidates() []graph.VertexID {
	g, c := m.g, m.c
	best := -1
	bestLen := g.NumVertices() + 1
	bestOut := false // candidate from Out(const) vs In(const)
	for i, p := range c.Patterns {
		if p.Subject.Kind == Var && p.Subject.Name == c.Focus && p.Object.Kind == Const {
			// (?x, l, const): candidates are in-neighbors of const via l.
			if n := g.InDegree(p.Object.Vertex); n < bestLen {
				best, bestLen, bestOut = i, n, false
			}
		}
		if p.Object.Kind == Var && p.Object.Name == c.Focus && p.Subject.Kind == Const {
			// (const, l, ?x): candidates are out-neighbors of const via l.
			if n := g.OutDegree(p.Subject.Vertex); n < bestLen {
				best, bestLen, bestOut = i, n, true
			}
		}
	}
	if best < 0 {
		all := make([]graph.VertexID, g.NumVertices())
		for i := range all {
			all[i] = graph.VertexID(i)
		}
		return all
	}
	p := c.Patterns[best]
	// The CSR label runs hand over exactly the edges carrying the
	// pattern's label, already sorted by endpoint, so candidate collection
	// touches no non-matching edges and needs no re-sort — only the
	// multigraph dedup pass.
	var run []graph.Edge
	if bestOut {
		run = g.OutWith(p.Subject.Vertex, p.Label)
	} else {
		run = g.InWith(p.Object.Vertex, p.Label)
	}
	out := make([]graph.VertexID, 0, len(run))
	for _, e := range run {
		if len(out) == 0 || out[len(out)-1] != e.To {
			out = append(out, e.To)
		}
	}
	return out
}

// patternSet tracks which patterns are still unmatched (bitmask over at
// most 64 patterns; beyond that a bool slice would be needed, and the
// paper's constraints have ≤ 8 patterns).
type patternSet uint64

func newPatternSet(n int) patternSet {
	if n > 64 {
		panic("pattern: more than 64 triple patterns")
	}
	if n == 64 {
		return ^patternSet(0)
	}
	return patternSet(1)<<uint(n) - 1
}

func (s patternSet) remove(i int) patternSet { return s &^ (1 << uint(i)) }
func (s patternSet) has(i int) bool          { return s&(1<<uint(i)) != 0 }
func (s patternSet) empty() bool             { return s == 0 }

// solve reports whether the remaining patterns are satisfiable under bind.
// It picks the cheapest remaining pattern (fully bound < one-bound by
// degree < unbound), verifies or enumerates it, and recurses.
func (m *Matcher) solve(bind map[string]graph.VertexID, remaining patternSet) bool {
	if remaining.empty() {
		return true
	}
	g := m.g
	bestIdx, bestCost := -1, int(^uint(0)>>1)
	for i, p := range m.c.Patterns {
		if !remaining.has(i) {
			continue
		}
		cost := m.patternCost(p, bind)
		if cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	p := m.c.Patterns[bestIdx]
	rest := remaining.remove(bestIdx)

	sv, sBound := resolve(p.Subject, bind)
	ov, oBound := resolve(p.Object, bind)
	switch {
	case sBound && oBound:
		return g.HasEdge(sv, p.Label, ov) && m.solve(bind, rest)
	case sBound:
		for _, e := range g.OutWith(sv, p.Label) {
			bind[p.Object.Name] = e.To
			if m.solve(bind, rest) {
				delete(bind, p.Object.Name)
				return true
			}
		}
		delete(bind, p.Object.Name)
		return false
	case oBound:
		for _, e := range g.InWith(ov, p.Label) {
			bind[p.Subject.Name] = e.To
			if m.solve(bind, rest) {
				delete(bind, p.Subject.Name)
				return true
			}
		}
		delete(bind, p.Subject.Name)
		return false
	default:
		// Neither endpoint bound: enumerate all edges with the label,
		// one label run per vertex. This is the worst case; the cost
		// ordering avoids it whenever a cheaper pattern exists.
		sameVar := p.Subject.Kind == Var && p.Object.Kind == Var && p.Subject.Name == p.Object.Name
		for s := 0; s < g.NumVertices(); s++ {
			for _, e := range g.OutWith(graph.VertexID(s), p.Label) {
				if sameVar {
					if graph.VertexID(s) != e.To {
						continue
					}
					bind[p.Subject.Name] = graph.VertexID(s)
				} else {
					bind[p.Subject.Name] = graph.VertexID(s)
					bind[p.Object.Name] = e.To
				}
				if m.solve(bind, rest) {
					delete(bind, p.Subject.Name)
					if !sameVar {
						delete(bind, p.Object.Name)
					}
					return true
				}
			}
		}
		delete(bind, p.Subject.Name)
		if !sameVar {
			delete(bind, p.Object.Name)
		}
		return false
	}
}

// EnumerateBindings enumerates the distinct assignments of vars over all
// solutions of the constraint's pattern, calling fn with one tuple per
// distinct assignment (slice reused between calls; copy to retain). fn
// returning false stops the enumeration. Every name in vars must be a
// variable of the constraint.
func (m *Matcher) EnumerateBindings(vars []string, fn func([]graph.VertexID) bool) error {
	have := map[string]bool{}
	for _, v := range m.c.Vars() {
		have[v] = true
	}
	for _, v := range vars {
		if !have[v] {
			return fmt.Errorf("pattern: projected variable %q not in constraint", v)
		}
	}
	seen := map[string]bool{}
	tuple := make([]graph.VertexID, len(vars))
	keyBuf := make([]byte, 0, len(vars)*5)
	bind := map[string]graph.VertexID{}
	m.enumerate(bind, newPatternSet(len(m.c.Patterns)), func() bool {
		for i, v := range vars {
			tuple[i] = bind[v]
		}
		keyBuf = keyBuf[:0]
		for _, id := range tuple {
			keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24), ',')
		}
		if seen[string(keyBuf)] {
			return true
		}
		seen[string(keyBuf)] = true
		return fn(tuple)
	})
	return nil
}

// enumerate is solve generalised to visit every solution; emit is called
// with m's bind fully covering the remaining patterns' variables and
// returns false to stop. enumerate returns false when stopped.
func (m *Matcher) enumerate(bind map[string]graph.VertexID, remaining patternSet, emit func() bool) bool {
	if remaining.empty() {
		return emit()
	}
	g := m.g
	bestIdx, bestCost := -1, int(^uint(0)>>1)
	for i, p := range m.c.Patterns {
		if !remaining.has(i) {
			continue
		}
		cost := m.patternCost(p, bind)
		if cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	p := m.c.Patterns[bestIdx]
	rest := remaining.remove(bestIdx)

	sv, sBound := resolve(p.Subject, bind)
	ov, oBound := resolve(p.Object, bind)
	switch {
	case sBound && oBound:
		if !g.HasEdge(sv, p.Label, ov) {
			return true
		}
		return m.enumerate(bind, rest, emit)
	case sBound:
		for _, e := range g.OutWith(sv, p.Label) {
			bind[p.Object.Name] = e.To
			if !m.enumerate(bind, rest, emit) {
				delete(bind, p.Object.Name)
				return false
			}
		}
		delete(bind, p.Object.Name)
		return true
	case oBound:
		for _, e := range g.InWith(ov, p.Label) {
			bind[p.Subject.Name] = e.To
			if !m.enumerate(bind, rest, emit) {
				delete(bind, p.Subject.Name)
				return false
			}
		}
		delete(bind, p.Subject.Name)
		return true
	default:
		sameVar := p.Subject.Kind == Var && p.Object.Kind == Var && p.Subject.Name == p.Object.Name
		for s := 0; s < g.NumVertices(); s++ {
			for _, e := range g.OutWith(graph.VertexID(s), p.Label) {
				if sameVar {
					if graph.VertexID(s) != e.To {
						continue
					}
					bind[p.Subject.Name] = graph.VertexID(s)
				} else {
					bind[p.Subject.Name] = graph.VertexID(s)
					bind[p.Object.Name] = e.To
				}
				if !m.enumerate(bind, rest, emit) {
					delete(bind, p.Subject.Name)
					if !sameVar {
						delete(bind, p.Object.Name)
					}
					return false
				}
			}
		}
		delete(bind, p.Subject.Name)
		if !sameVar {
			delete(bind, p.Object.Name)
		}
		return true
	}
}

// patternCost estimates the branching factor of evaluating p under bind.
func (m *Matcher) patternCost(p TriplePattern, bind map[string]graph.VertexID) int {
	sv, sBound := resolve(p.Subject, bind)
	ov, oBound := resolve(p.Object, bind)
	switch {
	case sBound && oBound:
		return 0
	case sBound:
		return 1 + m.g.OutDegree(sv)
	case oBound:
		return 1 + m.g.InDegree(ov)
	default:
		return m.g.NumEdges() + 2
	}
}

// resolve returns the concrete vertex of t under bind, if any.
func resolve(t Term, bind map[string]graph.VertexID) (graph.VertexID, bool) {
	if t.Kind == Const {
		return t.Vertex, true
	}
	v, ok := bind[t.Name]
	return v, ok
}
