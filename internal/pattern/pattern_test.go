package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/testkg"
)

// runningExample builds G0 of Figure 3(a) (see testkg.RunningExample for
// the reconstruction notes) and the substructure constraint S0 of Figure
// 3(b): S0 = (?x, {v3}, {}, {(?x,friendOf,v3),(v3,likes,?y)}).
func runningExample(t testing.TB) (*graph.Graph, *Constraint, map[string]graph.VertexID) {
	g, ids := testkg.RunningExample()
	friendOf, _ := g.LabelByName("friendOf")
	likes, _ := g.LabelByName("likes")
	s0 := &Constraint{
		Focus: "x",
		Patterns: []TriplePattern{
			{Subject: V("x"), Label: friendOf, Object: C(ids["v3"])},
			{Subject: C(ids["v3"]), Label: likes, Object: V("y")},
		},
	}
	return g, s0, ids
}

func TestRunningExampleSCck(t *testing.T) {
	g, s0, ids := runningExample(t)
	m, err := NewMatcher(g, s0)
	if err != nil {
		t.Fatal(err)
	}
	// §3 of the paper: "only v1 and v2 could satisfy S0".
	want := map[string]bool{"v0": false, "v1": true, "v2": true, "v3": false, "v4": false}
	for name, sat := range want {
		if got := m.Check(ids[name]); got != sat {
			t.Errorf("SCck(%s) = %v, want %v", name, got, sat)
		}
	}
}

func TestRunningExampleMatchAll(t *testing.T) {
	g, s0, ids := runningExample(t)
	m, err := NewMatcher(g, s0)
	if err != nil {
		t.Fatal(err)
	}
	got := m.MatchAll()
	want := []graph.VertexID{ids["v1"], ids["v2"]}
	if len(got) != len(want) {
		t.Fatalf("V(S0,G0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("V(S0,G0) = %v, want %v", got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	g, s0, _ := runningExample(t)
	if err := s0.Validate(); err != nil {
		t.Fatalf("valid constraint rejected: %v", err)
	}
	bad := &Constraint{Focus: "", Patterns: s0.Patterns}
	if err := bad.Validate(); err != ErrNoFocus {
		t.Errorf("want ErrNoFocus, got %v", err)
	}
	bad = &Constraint{Focus: "x"}
	if err := bad.Validate(); err != ErrEmptyPattern {
		t.Errorf("want ErrEmptyPattern, got %v", err)
	}
	bad = &Constraint{Focus: "z", Patterns: s0.Patterns[1:]} // only (v3,likes,?y)
	if err := bad.Validate(); err != ErrFocusUnused {
		t.Errorf("want ErrFocusUnused, got %v", err)
	}
	if _, err := NewMatcher(g, bad); err == nil {
		t.Error("NewMatcher accepted invalid constraint")
	}
}

func TestVars(t *testing.T) {
	_, s0, _ := runningExample(t)
	vars := s0.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestCost(t *testing.T) {
	_, s0, _ := runningExample(t)
	// One distinct constant (v3) + two patterns.
	if got := s0.Cost(); got != 3 {
		t.Errorf("Cost = %d, want 3", got)
	}
}

func TestMultiHopConstraint(t *testing.T) {
	// ?x -p-> ?y -p-> ?z -q-> end : chain with no constant adjacent to ?x.
	b := graph.NewBuilder()
	p, q := b.Label("p"), b.Label("q")
	a, bb, c, d := b.Vertex("a"), b.Vertex("b"), b.Vertex("c"), b.Vertex("d")
	e := b.Vertex("end")
	b.AddEdge(a, p, bb)
	b.AddEdge(bb, p, c)
	b.AddEdge(c, q, e)
	b.AddEdge(d, p, a) // d -p-> a -p-> b, but b has no q edge
	g := b.Build()
	cons := &Constraint{
		Focus: "x",
		Patterns: []TriplePattern{
			{Subject: V("x"), Label: p, Object: V("y")},
			{Subject: V("y"), Label: p, Object: V("z")},
			{Subject: V("z"), Label: q, Object: C(e)},
		},
	}
	m, err := NewMatcher(g, cons)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Check(a) {
		t.Error("a should satisfy (a-p->b-p->c-q->end)")
	}
	for _, v := range []graph.VertexID{bb, c, d, e} {
		if m.Check(v) {
			t.Errorf("%s should not satisfy", g.VertexName(v))
		}
	}
	all := m.MatchAll()
	if len(all) != 1 || all[0] != a {
		t.Errorf("MatchAll = %v", all)
	}
}

func TestFullyUnboundPattern(t *testing.T) {
	// A pattern whose evaluation must fall into the edge-scan branch:
	// focus constrained only transitively via an unbound pair.
	b := graph.NewBuilder()
	p, q := b.Label("p"), b.Label("q")
	x1, y1 := b.Vertex("x1"), b.Vertex("y1")
	x2 := b.Vertex("x2")
	b.AddEdge(x1, p, y1)
	b.AddEdge(y1, q, y1) // self loop under q
	b.AddEdge(x2, p, x2)
	g := b.Build()
	cons := &Constraint{
		Focus: "x",
		Patterns: []TriplePattern{
			{Subject: V("x"), Label: p, Object: V("y")},
			{Subject: V("y"), Label: q, Object: V("y")}, // same-var pattern
		},
	}
	m, err := NewMatcher(g, cons)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Check(x1) {
		t.Error("x1 should satisfy")
	}
	if m.Check(x2) {
		t.Error("x2 should not satisfy (x2's p-target has no q self-loop)")
	}
}

func TestSelfLoopFocus(t *testing.T) {
	b := graph.NewBuilder()
	p := b.Label("p")
	a := b.Vertex("a")
	c := b.Vertex("c")
	b.AddEdge(a, p, a)
	b.AddEdge(c, p, a)
	g := b.Build()
	cons := &Constraint{
		Focus:    "x",
		Patterns: []TriplePattern{{Subject: V("x"), Label: p, Object: V("x")}},
	}
	m, err := NewMatcher(g, cons)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Check(a) || m.Check(c) {
		t.Error("self-loop focus matching broken")
	}
	all := m.MatchAll()
	if len(all) != 1 || all[0] != a {
		t.Errorf("MatchAll = %v", all)
	}
}

func TestUnsatisfiableConstraint(t *testing.T) {
	g, _, ids := runningExample(t)
	likes, _ := g.LabelByName("likes")
	cons := &Constraint{
		Focus: "x",
		Patterns: []TriplePattern{
			{Subject: V("x"), Label: likes, Object: C(ids["v0"])}, // nothing likes v0
		},
	}
	m, err := NewMatcher(g, cons)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MatchAll(); len(got) != 0 {
		t.Errorf("MatchAll = %v, want empty", got)
	}
}

func TestConstraintString(t *testing.T) {
	_, s0, _ := runningExample(t)
	s := s0.String()
	if s == "" || s[0] != 'S' {
		t.Errorf("String = %q", s)
	}
}

func TestEnumerateBindings(t *testing.T) {
	g, s0, ids := runningExample(t)
	m, err := NewMatcher(g, s0)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]graph.VertexID
	err = m.EnumerateBindings([]string{"x", "y"}, func(tuple []graph.VertexID) bool {
		rows = append(rows, append([]graph.VertexID(nil), tuple...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// S0 solutions: x ∈ {v1,v2}, y = v4 (v3's only likes-target).
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r[1] != ids["v4"] {
			t.Errorf("y = %v, want v4", r[1])
		}
		if r[0] != ids["v1"] && r[0] != ids["v2"] {
			t.Errorf("x = %v", r[0])
		}
	}
	// Early stop.
	n := 0
	if err := m.EnumerateBindings([]string{"x"}, func([]graph.VertexID) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
	// Unknown projected variable.
	if err := m.EnumerateBindings([]string{"zzz"}, nil); err == nil {
		t.Fatal("unknown variable accepted")
	}
}

// Property: EnumerateBindings on the focus variable yields exactly the
// MatchAll set.
func TestEnumerateAgreesWithMatchAllProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testkg.Random(rng, rng.Intn(8)+2, rng.Intn(20), rng.Intn(3)+1)
		c := randomConstraintLocal(rng, g)
		m, err := NewMatcher(g, c)
		if err != nil {
			return false
		}
		want := map[graph.VertexID]bool{}
		for _, v := range m.MatchAll() {
			want[v] = true
		}
		got := map[graph.VertexID]bool{}
		if err := m.EnumerateBindings([]string{c.Focus}, func(tuple []graph.VertexID) bool {
			got[tuple[0]] = true
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for v := range want {
			if !got[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomConstraintLocal mirrors testkg/pat.RandomConstraint without the
// import (which would cycle through this package's tests).
func randomConstraintLocal(rng *rand.Rand, g *graph.Graph) *Constraint {
	n, nl := g.NumVertices(), g.NumLabels()
	vars := []string{"y", "z"}
	term := func() Term {
		switch rng.Intn(3) {
		case 0:
			return C(graph.VertexID(rng.Intn(n)))
		case 1:
			return V("x")
		default:
			return V(vars[rng.Intn(len(vars))])
		}
	}
	np := rng.Intn(3) + 1
	c := &Constraint{Focus: "x"}
	for i := 0; i < np; i++ {
		c.Patterns = append(c.Patterns, TriplePattern{
			Subject: term(), Label: graph.Label(rng.Intn(nl)), Object: term(),
		})
	}
	c.Patterns[0].Subject = V("x")
	return c
}

// naiveCheck enumerates all variable assignments by brute force.
func naiveCheck(g *graph.Graph, c *Constraint, focus graph.VertexID) bool {
	vars := c.Vars()
	n := g.NumVertices()
	bind := map[string]graph.VertexID{c.Focus: focus}
	rest := vars[1:]
	var rec func(i int) bool
	holds := func() bool {
		for _, p := range c.Patterns {
			s, _ := resolve(p.Subject, bind)
			o, _ := resolve(p.Object, bind)
			if !g.HasEdge(s, p.Label, o) {
				return false
			}
		}
		return true
	}
	rec = func(i int) bool {
		if i == len(rest) {
			return holds()
		}
		for v := 0; v < n; v++ {
			bind[rest[i]] = graph.VertexID(v)
			if rec(i + 1) {
				return true
			}
		}
		delete(bind, rest[i])
		return false
	}
	return rec(0)
}

// Property: the backtracking matcher agrees with brute-force enumeration
// on random small graphs and random 1–3 pattern constraints.
func TestMatcherAgreesWithBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder()
		n := rng.Intn(6) + 2
		for i := 0; i < n; i++ {
			b.Vertex(string(rune('a' + i)))
		}
		nl := rng.Intn(3) + 1
		for i := 0; i < nl; i++ {
			b.Label(string(rune('p' + i)))
		}
		m := rng.Intn(12)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.Label(rng.Intn(nl)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Build()

		varNames := []string{"x", "y", "z"}
		term := func() Term {
			if rng.Intn(2) == 0 {
				return C(graph.VertexID(rng.Intn(n)))
			}
			return V(varNames[rng.Intn(len(varNames))])
		}
		np := rng.Intn(3) + 1
		c := &Constraint{Focus: "x"}
		for i := 0; i < np; i++ {
			c.Patterns = append(c.Patterns, TriplePattern{
				Subject: term(), Label: graph.Label(rng.Intn(nl)), Object: term(),
			})
		}
		// Force the focus to appear.
		c.Patterns[0].Subject = V("x")
		mt, err := NewMatcher(g, c)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if mt.Check(graph.VertexID(v)) != naiveCheck(g, c, graph.VertexID(v)) {
				return false
			}
		}
		// MatchAll must equal the set of Check-true vertices.
		got := mt.MatchAll()
		idx := 0
		for v := 0; v < n; v++ {
			sat := mt.Check(graph.VertexID(v))
			inAll := idx < len(got) && got[idx] == graph.VertexID(v)
			if inAll {
				idx++
			}
			if sat != inAll {
				return false
			}
		}
		return idx == len(got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
