package lcr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/testkg"
)

func TestTarjanOnKnownGraph(t *testing.T) {
	// Two 2-cycles joined by a one-way bridge plus an isolated vertex.
	b := graph.NewBuilder()
	p := b.Label("p")
	a, bb := b.Vertex("a"), b.Vertex("b")
	c, d := b.Vertex("c"), b.Vertex("d")
	iso := b.Vertex("iso")
	b.AddEdge(a, p, bb)
	b.AddEdge(bb, p, a)
	b.AddEdge(bb, p, c)
	b.AddEdge(c, p, d)
	b.AddEdge(d, p, c)
	g := b.Build()
	sccOf, comps := tarjanSCC(g)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if sccOf[a] != sccOf[bb] || sccOf[c] != sccOf[d] {
		t.Fatal("cycle members split across components")
	}
	if sccOf[a] == sccOf[c] || sccOf[iso] == sccOf[a] || sccOf[iso] == sccOf[c] {
		t.Fatal("distinct components merged")
	}
}

// TestTarjanAgainstMutualReachability: u and v share a component iff
// they reach each other.
func TestTarjanAgainstMutualReachability(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		g := testkg.Random(rng, n, rng.Intn(45), rng.Intn(3)+1)
		sccOf, _ := tarjanSCC(g)
		all := g.LabelUniverse()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				mutual := Reach(g, graph.VertexID(u), graph.VertexID(v), all) &&
					Reach(g, graph.VertexID(v), graph.VertexID(u), all)
				if (sccOf[u] == sccOf[v]) != mutual {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCIndexRunningExample(t *testing.T) {
	g, ids := testkg.RunningExample()
	idx := NewSCCIndex(g)
	cases := []struct {
		s, t   string
		labels []string
		want   bool
	}{
		{"v0", "v3", []string{"friendOf"}, true},
		{"v0", "v3", []string{"likes", "follows"}, false},
		{"v0", "v4", []string{"likes", "follows"}, true},
		{"v3", "v4", []string{"likes"}, true},
		{"v4", "v3", []string{"hates", "friendOf"}, true},
		{"v4", "v0", []string{"hates", "friendOf", "likes", "follows", "advisorOf"}, false},
		{"v1", "v1", nil, true},
	}
	for _, tc := range cases {
		if got := idx.Reach(ids[tc.s], ids[tc.t], lset(t, g, tc.labels...)); got != tc.want {
			t.Errorf("SCC.Reach(%s,%s,%v) = %v, want %v", tc.s, tc.t, tc.labels, got, tc.want)
		}
	}
	// v1, v3, v4 form a cycle (likes/hates/friendOf) — one component.
	if idx.Component(ids["v1"]) != idx.Component(ids["v4"]) ||
		idx.Component(ids["v3"]) != idx.Component(ids["v4"]) {
		t.Error("cycle not recognised as one component")
	}
	if idx.Entries() == 0 || idx.SizeBytes() <= 0 {
		t.Error("index accounting empty")
	}
}

// TestSCCIndexAgreesWithReachProperty cross-validates against online BFS
// on random graphs (which are cyclic often enough to exercise the local
// closures).
func TestSCCIndexAgreesWithReachProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(14) + 2
		g := testkg.Random(rng, n, rng.Intn(45), rng.Intn(4)+1)
		idx := NewSCCIndex(g)
		for probe := 0; probe < 25; probe++ {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			L := labelset.Set(rng.Uint64()) & g.LabelUniverse()
			if idx.Reach(s, tt, L) != Reach(g, s, tt, L) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCIndexSelfLoop(t *testing.T) {
	b := graph.NewBuilder()
	p, q := b.Label("p"), b.Label("q")
	a := b.Vertex("a")
	c := b.Vertex("c")
	b.AddEdge(a, p, a) // self loop: singleton SCC with a non-trivial closure
	b.AddEdge(a, q, c)
	g := b.Build()
	idx := NewSCCIndex(g)
	if !idx.Reach(a, a, labelset.New(p)) {
		t.Error("self loop lost")
	}
	if !idx.Reach(a, c, labelset.New(q)) {
		t.Error("cross edge lost")
	}
	if idx.Reach(a, c, labelset.New(p)) {
		t.Error("label constraint ignored")
	}
}

func TestSCCIndexAcyclicHasEmptyClosures(t *testing.T) {
	// On a DAG every component is a singleton without self-loops: the
	// local closures must be empty and all work happens online.
	b := graph.NewBuilder()
	p := b.Label("p")
	for i := 0; i < 9; i++ {
		b.AddEdge(b.Vertex(vn(i)), p, b.Vertex(vn(i+1)))
	}
	g := b.Build()
	idx := NewSCCIndex(g)
	if idx.NumComponents() != g.NumVertices() {
		t.Fatalf("components = %d, want %d", idx.NumComponents(), g.NumVertices())
	}
	if idx.Entries() != 0 {
		t.Fatalf("DAG closure entries = %d, want 0", idx.Entries())
	}
	if !idx.Reach(g.Vertex(vn(0)), g.Vertex(vn(9)), labelset.New(p)) {
		t.Fatal("chain lost")
	}
}
