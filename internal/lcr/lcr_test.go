package lcr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/testkg"
)

// lset builds a label constraint from label names on g.
func lset(t testing.TB, g *graph.Graph, names ...string) labelset.Set {
	t.Helper()
	var s labelset.Set
	for _, n := range names {
		l, ok := g.LabelByName(n)
		if !ok {
			t.Fatalf("label %q not in graph", n)
		}
		s = s.Add(l)
	}
	return s
}

func TestReachRunningExample(t *testing.T) {
	g, ids := testkg.RunningExample()
	cases := []struct {
		s, t   string
		labels []string
		want   bool
	}{
		{"v0", "v3", []string{"friendOf"}, true},
		{"v0", "v3", []string{"likes", "follows"}, false},
		{"v0", "v4", []string{"likes", "follows"}, true},
		{"v0", "v4", []string{"friendOf", "likes"}, true},
		{"v0", "v4", []string{"advisorOf", "follows"}, true},
		{"v0", "v4", []string{"friendOf"}, false},
		{"v3", "v4", []string{"likes"}, true},
		{"v4", "v3", []string{"hates", "friendOf"}, true},
		{"v4", "v0", []string{"hates", "friendOf", "likes", "follows", "advisorOf"}, false},
		{"v0", "v0", nil, true}, // s == t with empty constraint
	}
	for _, tc := range cases {
		L := lset(t, g, tc.labels...)
		if got := Reach(g, ids[tc.s], ids[tc.t], L); got != tc.want {
			t.Errorf("Reach(%s,%s,%v) = %v, want %v", tc.s, tc.t, tc.labels, got, tc.want)
		}
		if got := ReachDFS(g, ids[tc.s], ids[tc.t], L); got != tc.want {
			t.Errorf("ReachDFS(%s,%s,%v) = %v, want %v", tc.s, tc.t, tc.labels, got, tc.want)
		}
	}
}

func TestSourceCMSPaperValues(t *testing.T) {
	g, ids := testkg.RunningExample()
	cms := SourceCMS(g, ids["v0"])

	// §2: M(v0,v3) = {{friendOf}}.
	wantV3 := labelset.NewCMS(lset(t, g, "friendOf"))
	if !cms[ids["v3"]].Equal(wantV3) {
		t.Errorf("M(v0,v3) = %v, want %v", cms[ids["v3"]], wantV3)
	}
	// §2: M(v0,v4) = {{friendOf,likes},{advisorOf,follows},{likes,follows}}.
	wantV4 := labelset.NewCMS(
		lset(t, g, "friendOf", "likes"),
		lset(t, g, "advisorOf", "follows"),
		lset(t, g, "likes", "follows"),
	)
	if !cms[ids["v4"]].Equal(wantV4) {
		t.Errorf("M(v0,v4) = %v, want %v", cms[ids["v4"]], wantV4)
	}
	// M(v0,v0) = {∅}.
	if !cms[ids["v0"]].Equal(labelset.NewCMS(labelset.Set(0))) {
		t.Errorf("M(v0,v0) = %v, want [{}]", cms[ids["v0"]])
	}
}

func TestSourceCMSUnreachable(t *testing.T) {
	g, ids := testkg.RunningExample()
	cms := SourceCMS(g, ids["v4"])
	// v4 reaches v1, v3, v4 (via hates/friendOf/likes) but never v0 or v2.
	if cms[ids["v0"]] != nil || cms[ids["v2"]] != nil {
		t.Errorf("v4 should not reach v0/v2: %v %v", cms[ids["v0"]], cms[ids["v2"]])
	}
	if cms[ids["v1"]] == nil || cms[ids["v3"]] == nil {
		t.Error("v4 should reach v1 and v3")
	}
}

// naiveReach explores the product space (vertex × labelset) — a trivially
// correct but exponential oracle.
func naiveReach(g *graph.Graph, s, t graph.VertexID, L labelset.Set) bool {
	if s == t {
		return true
	}
	type st struct {
		v graph.VertexID
		l labelset.Set
	}
	seen := map[st]bool{{s, 0}: true}
	queue := []st{{s, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Out(cur.v) {
			if !L.Contains(e.Label) {
				continue
			}
			n := st{e.To, cur.l.Add(e.Label)}
			if e.To == t {
				return true
			}
			if !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		}
	}
	return false
}

func TestReachAgainstOracleProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		g := testkg.Random(rng, n, rng.Intn(25), rng.Intn(4)+1)
		L := labelset.Set(rng.Uint64()) & g.LabelUniverse()
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		want := naiveReach(g, s, tt, L)
		return Reach(g, s, tt, L) == want && ReachDFS(g, s, tt, L) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SourceCMS covering agrees with online Reach for random
// constraints, and every recorded set is realizable (sound) and minimal.
func TestSourceCMSAgreesWithReachProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		g := testkg.Random(rng, n, rng.Intn(25), rng.Intn(4)+1)
		s := graph.VertexID(rng.Intn(n))
		cms := SourceCMS(g, s)
		for v := 0; v < n; v++ {
			c := cms[v]
			// Soundness: each minimal set L must witness s -L-> v.
			if c != nil {
				for _, ls := range c.Sets() {
					if !Reach(g, s, graph.VertexID(v), ls) {
						return false
					}
				}
			}
			// Completeness on random probes.
			for p := 0; p < 8; p++ {
				L := labelset.Set(rng.Uint64()) & g.LabelUniverse()
				want := Reach(g, s, graph.VertexID(v), L)
				got := graph.VertexID(v) == s || c.Covers(L)
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReachableSet(t *testing.T) {
	g, ids := testkg.RunningExample()
	got := ReachableSet(g, ids["v0"], lset(t, g, "friendOf"))
	want := map[graph.VertexID]bool{ids["v0"]: true, ids["v1"]: true, ids["v3"]: true}
	if len(got) != len(want) {
		t.Fatalf("ReachableSet = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected vertex %v in %v", v, got)
		}
	}
}

func TestReachableSetReverse(t *testing.T) {
	g, ids := testkg.RunningExample()
	got := ReachableSetReverse(g, ids["v4"], lset(t, g, "likes", "follows"))
	want := map[graph.VertexID]bool{
		ids["v4"]: true, ids["v3"]: true, ids["v1"]: true, ids["v2"]: true, ids["v0"]: true,
	}
	if len(got) != len(want) {
		t.Fatalf("reverse set = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected %v in %v", v, got)
		}
	}
}

// Property: v ∈ ReachableSetReverse(t, L) iff Reach(v, t, L).
func TestReverseAgreesWithForwardProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		g := testkg.Random(rng, n, rng.Intn(30), rng.Intn(4)+1)
		L := labelset.Set(rng.Uint64()) & g.LabelUniverse()
		tt := graph.VertexID(rng.Intn(n))
		in := make([]bool, n)
		for _, v := range ReachableSetReverse(g, tt, L) {
			in[v] = true
		}
		for v := 0; v < n; v++ {
			if in[v] != Reach(g, graph.VertexID(v), tt, L) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFullTC(t *testing.T) {
	g, ids := testkg.RunningExample()
	tc := NewFullTC(g)
	if !tc.Reach(ids["v0"], ids["v4"], lset(t, g, "likes", "follows")) {
		t.Error("FullTC misses v0->v4 under {likes,follows}")
	}
	if tc.Reach(ids["v0"], ids["v3"], lset(t, g, "likes", "follows")) {
		t.Error("FullTC claims v0->v3 under {likes,follows}")
	}
	if tc.CMS(ids["v4"], ids["v0"]) != nil {
		t.Error("FullTC claims v4 reaches v0")
	}
	if tc.Entries() == 0 {
		t.Error("FullTC has no entries")
	}
}

func TestFullTCAgreesWithReachProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		g := testkg.Random(rng, n, rng.Intn(20), rng.Intn(3)+1)
		tc := NewFullTC(g)
		for probe := 0; probe < 20; probe++ {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			L := labelset.Set(rng.Uint64()) & g.LabelUniverse()
			if tc.Reach(s, tt, L) != Reach(g, s, tt, L) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanningTreeIndex(t *testing.T) {
	g, ids := testkg.RunningExample()
	idx := NewSpanningTreeIndex(g)
	cases := []struct {
		s, t   string
		labels []string
		want   bool
	}{
		{"v0", "v3", []string{"friendOf"}, true},
		{"v0", "v3", []string{"likes", "follows"}, false},
		{"v0", "v4", []string{"likes", "follows"}, true},
		{"v3", "v4", []string{"likes"}, true},
		{"v4", "v0", []string{"hates", "friendOf", "likes", "follows", "advisorOf"}, false},
		{"v2", "v2", nil, true},
	}
	for _, tc := range cases {
		if got := idx.Reach(ids[tc.s], ids[tc.t], lset(t, g, tc.labels...)); got != tc.want {
			t.Errorf("SpanningTree.Reach(%s,%s,%v) = %v, want %v", tc.s, tc.t, tc.labels, got, tc.want)
		}
	}
	if idx.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
}

func TestSpanningTreeAgreesWithReachProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		g := testkg.Random(rng, n, rng.Intn(25), rng.Intn(4)+1)
		idx := NewSpanningTreeIndex(g)
		for probe := 0; probe < 20; probe++ {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			L := labelset.Set(rng.Uint64()) & g.LabelUniverse()
			if idx.Reach(s, tt, L) != Reach(g, s, tt, L) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanningTreeEntriesCompressed(t *testing.T) {
	// A pure path graph with one label: the tree covers everything, so the
	// partial closure must be empty.
	b := graph.NewBuilder()
	p := b.Label("p")
	for i := 0; i < 9; i++ {
		b.AddEdge(b.Vertex(vn(i)), p, b.Vertex(vn(i+1)))
	}
	g := b.Build()
	idx := NewSpanningTreeIndex(g)
	if idx.Entries() != 0 {
		t.Errorf("path graph partial closure has %d entries, want 0", idx.Entries())
	}
	full := NewFullTC(g)
	if full.Entries() == 0 {
		t.Error("full TC should not be empty")
	}
}

func vn(i int) string { return "n" + string(rune('a'+i)) }

func TestDefaultK(t *testing.T) {
	if k := DefaultK(100); k != 100 {
		t.Errorf("DefaultK(100) = %d, want clamped 100", k)
	}
	if k := DefaultK(1000000); k != 1250+1000 {
		t.Errorf("DefaultK(1e6) = %d, want 2250", k)
	}
}

func TestLandmarkIndex(t *testing.T) {
	g, ids := testkg.RunningExample()
	idx := NewLandmarkIndex(g, LandmarkParams{K: 2, B: 2})
	if len(idx.Landmarks()) != 2 {
		t.Fatalf("landmarks = %v", idx.Landmarks())
	}
	nl := 0
	for v := 0; v < g.NumVertices(); v++ {
		if idx.IsLandmark(graph.VertexID(v)) {
			nl++
		}
	}
	if nl != 2 {
		t.Fatalf("IsLandmark count = %d", nl)
	}
	cases := []struct {
		s, t   string
		labels []string
		want   bool
	}{
		{"v0", "v4", []string{"likes", "follows"}, true},
		{"v0", "v3", []string{"likes", "follows"}, false},
		{"v0", "v3", []string{"friendOf"}, true},
		{"v3", "v4", []string{"likes"}, true},
		{"v1", "v1", nil, true},
	}
	for _, tc := range cases {
		if got := idx.Reach(ids[tc.s], ids[tc.t], lset(t, g, tc.labels...)); got != tc.want {
			t.Errorf("Landmark.Reach(%s,%s,%v) = %v, want %v", tc.s, tc.t, tc.labels, got, tc.want)
		}
	}
	if idx.Entries() == 0 || idx.SizeBytes() <= 0 {
		t.Error("index accounting empty")
	}
}

func TestLandmarkAgreesWithReachProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		g := testkg.Random(rng, n, rng.Intn(30), rng.Intn(4)+1)
		idx := NewLandmarkIndex(g, LandmarkParams{K: rng.Intn(n) + 1, B: rng.Intn(4) + 1, SkipRL: true})
		for probe := 0; probe < 20; probe++ {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			L := labelset.Set(rng.Uint64()) & g.LabelUniverse()
			if idx.Reach(s, tt, L) != Reach(g, s, tt, L) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLandmarkRLFastPath exercises the R_L precomputation of [19]: small
// label constraints on landmark sources answer from the precomputed
// reachable set and must agree with online BFS.
func TestLandmarkRLFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := testkg.Random(rng, 20, 60, 4) // |L|=4 → R_L covers |L| ≤ 2
	idx := NewLandmarkIndex(g, LandmarkParams{K: 4, B: 2})
	for _, s := range idx.Landmarks() {
		for _, L := range []labelset.Set{0, labelset.New(0), labelset.New(1), labelset.New(0, 2)} {
			for v := 0; v < g.NumVertices(); v++ {
				want := Reach(g, s, graph.VertexID(v), L)
				if got := idx.Reach(s, graph.VertexID(v), L); got != want {
					t.Fatalf("RL path: Reach(%d,%d,%v) = %v, want %v", s, v, L, got, want)
				}
			}
		}
	}
}

func TestSmallSubsets(t *testing.T) {
	got := smallSubsets(4, 2)
	// C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11.
	if len(got) != 11 {
		t.Fatalf("len = %d, want 11", len(got))
	}
	seen := map[labelset.Set]bool{}
	for _, s := range got {
		if s.Len() > 2 {
			t.Errorf("subset %v too large", s)
		}
		if seen[s] {
			t.Errorf("duplicate subset %v", s)
		}
		seen[s] = true
	}
}
