// Package lcr implements label-constrained reachability (LCR) machinery:
// the online search the paper applies directly to LCR queries (§3), the
// full-transitive-closure CMS computation of Jin et al. [6], a spanning-
// tree-compressed index in the style of [6] (the "Sampling-Tree" of
// Figure 5), and a landmark index in the style of Valstar et al. [19]
// (the "Traditional" columns of Table 2).
//
// These are the baselines the paper argues cannot scale to KGs; they are
// implemented so the repository can regenerate Figure 5 and Table 2 and
// so the LSCR algorithms have a correctness oracle.
package lcr

import (
	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// Reach reports whether s can reach t under label constraint L (s -L-> t),
// using BFS. The label constraint prunes the search space, so the cost is
// O(|V| + |E|) (§1 of the paper).
func Reach(g *graph.Graph, s, t graph.VertexID, L labelset.Set) bool {
	if s == t {
		return true
	}
	visited := make([]bool, g.NumVertices())
	visited[s] = true
	queue := []graph.VertexID{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		it := g.OutLabeled(u, L)
		for run, ok := it.Next(); ok; run, ok = it.Next() {
			for _, e := range run {
				if visited[e.To] {
					continue
				}
				if e.To == t {
					return true
				}
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return false
}

// ReachDFS is Reach with depth-first exploration; it exists because the
// paper discusses both uninformed strategies (§3) and tests compare them.
func ReachDFS(g *graph.Graph, s, t graph.VertexID, L labelset.Set) bool {
	if s == t {
		return true
	}
	visited := make([]bool, g.NumVertices())
	visited[s] = true
	stack := []graph.VertexID{s}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		it := g.OutLabeled(u, L)
		for run, ok := it.Next(); ok; run, ok = it.Next() {
			for _, e := range run {
				if visited[e.To] {
					continue
				}
				if e.To == t {
					return true
				}
				visited[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return false
}

// ReachableSet returns every vertex reachable from s under L, including s.
func ReachableSet(g *graph.Graph, s graph.VertexID, L labelset.Set) []graph.VertexID {
	visited := make([]bool, g.NumVertices())
	visited[s] = true
	out := []graph.VertexID{s}
	for i := 0; i < len(out); i++ {
		it := g.OutLabeled(out[i], L)
		for run, ok := it.Next(); ok; run, ok = it.Next() {
			for _, e := range run {
				if !visited[e.To] {
					visited[e.To] = true
					out = append(out, e.To)
				}
			}
		}
	}
	return out
}

// ReachableSetReverse returns every vertex that can reach t under L,
// including t (a backward BFS over in-edges).
func ReachableSetReverse(g *graph.Graph, t graph.VertexID, L labelset.Set) []graph.VertexID {
	visited := make([]bool, g.NumVertices())
	visited[t] = true
	out := []graph.VertexID{t}
	for i := 0; i < len(out); i++ {
		it := g.InLabeled(out[i], L)
		for run, ok := it.Next(); ok; run, ok = it.Next() {
			for _, e := range run {
				if !visited[e.To] {
					visited[e.To] = true
					out = append(out, e.To)
				}
			}
		}
	}
	return out
}

// SourceCMS computes M(s, v) — the collection of minimal sufficient path
// label sets (Definition 2.3) — for every vertex v reachable from s. The
// result is indexed by vertex ID; unreachable vertices have a nil entry.
// s itself gets the CMS {∅}.
//
// The algorithm is a BFS over (vertex, label-set) states with antichain
// pruning: a state is expanded only while its label set is still minimal
// for its vertex. Worst case O(2^|ℒ|) states per vertex — this is the
// exponential cost that makes full-TC methods unusable on KGs (§3.2), and
// exactly what Figure 5 and Table 2's "Traditional" columns measure.
func SourceCMS(g *graph.Graph, s graph.VertexID) []*labelset.CMS {
	cms := make([]*labelset.CMS, g.NumVertices())
	return sourceCMSInto(g, s, cms, nil)
}

// sourceCMSInto is SourceCMS with a caller-supplied result slice and an
// optional per-state budget (<=0 means unlimited). It returns cms. The
// budget counts recorded (vertex, set) insertions and lets the landmark
// index bound non-landmark entries the way [19]'s parameter b does.
func sourceCMSInto(g *graph.Graph, s graph.VertexID, cms []*labelset.CMS, budget *int) []*labelset.CMS {
	type state struct {
		v graph.VertexID
		l labelset.Set
	}
	cms[s] = labelset.NewCMS(labelset.Set(0))
	queue := []state{{s, 0}}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		if cms[st.v].HasProperSubset(st.l) {
			continue // superseded since enqueued
		}
		for _, e := range g.Out(st.v) {
			nl := st.l.Add(e.Label)
			if cms[e.To] == nil {
				cms[e.To] = labelset.NewCMS()
			}
			if cms[e.To].Insert(nl) {
				if budget != nil {
					*budget--
					if *budget < 0 {
						return cms
					}
				}
				queue = append(queue, state{e.To, nl})
			}
		}
	}
	return cms
}

// FullTC is the full transitive closure with per-pair CMS: the
// precomputation approach of [6] without compression. Only feasible on
// small graphs; the repository uses it as the ground-truth oracle.
type FullTC struct {
	cms [][]*labelset.CMS // [s][t]
}

// NewFullTC computes the closure of g.
func NewFullTC(g *graph.Graph) *FullTC {
	n := g.NumVertices()
	tc := &FullTC{cms: make([][]*labelset.CMS, n)}
	for s := 0; s < n; s++ {
		tc.cms[s] = SourceCMS(g, graph.VertexID(s))
	}
	return tc
}

// Reach answers s -L-> t from the closure.
func (tc *FullTC) Reach(s, t graph.VertexID, L labelset.Set) bool {
	return tc.cms[s][t].Covers(L)
}

// CMS returns M(s,t); nil when t is unreachable from s.
func (tc *FullTC) CMS(s, t graph.VertexID) *labelset.CMS { return tc.cms[s][t] }

// Entries returns the total number of minimal label sets stored.
func (tc *FullTC) Entries() int {
	n := 0
	for _, row := range tc.cms {
		for _, c := range row {
			n += c.Len()
		}
	}
	return n
}
