package lcr

import (
	"math/rand"
	"testing"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/testkg"
)

func benchFixture(b *testing.B) (*graph.Graph, labelset.Set) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := testkg.Random(rng, 10000, 35000, 8)
	return g, labelset.Universe(6)
}

func BenchmarkReachBFS(b *testing.B) {
	g, L := benchFixture(b)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reach(g, graph.VertexID(rng.Intn(10000)), graph.VertexID(rng.Intn(10000)), L)
	}
}

func BenchmarkReachDFS(b *testing.B) {
	g, L := benchFixture(b)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReachDFS(g, graph.VertexID(rng.Intn(10000)), graph.VertexID(rng.Intn(10000)), L)
	}
}

func BenchmarkSourceCMS(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := testkg.Random(rng, 1000, 3000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SourceCMS(g, graph.VertexID(i%1000))
	}
}

func BenchmarkSpanningTreeIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := testkg.Random(rng, 300, 900, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSpanningTreeIndex(g)
	}
}

func BenchmarkLandmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := testkg.Random(rng, 300, 900, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewLandmarkIndex(g, LandmarkParams{K: 30, B: 20, SkipRL: true})
	}
}
