package lcr

import (
	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// SCCIndex is an LCR index in the style of Zou et al. [25], the second
// baseline the paper reviews in §3.2: the graph is decomposed into
// strongly connected components, a local transitive closure (per-pair
// CMS) is precomputed inside every component, and queries combine the
// local closures across the condensation DAG.
//
// A structural fact makes the local closures complete: a path between
// two vertices of one SCC can never leave the SCC (if it passed an
// outside vertex x, then x would reach and be reached by the SCC,
// putting x inside it). The per-SCC closure is therefore exact, and only
// inter-component edges need online exploration.
//
// The construction cost is what the paper cares about: the local TC of a
// component with n vertices costs n × SourceCMS, which is why [25] "does
// not scale well on large graphs (|V| > 5.4k)" (§3.2).
type SCCIndex struct {
	g    *graph.Graph
	scc  []int32            // vertex -> component id
	comp [][]graph.VertexID // component id -> members
	// local[c] maps a member pair (u,v) to M(u, v | SCC c). Pairs with
	// no intra-component path are absent.
	local []map[[2]graph.VertexID]*labelset.CMS
}

// NewSCCIndex builds the index.
func NewSCCIndex(g *graph.Graph) *SCCIndex {
	idx := &SCCIndex{g: g}
	idx.scc, idx.comp = tarjanSCC(g)
	idx.local = make([]map[[2]graph.VertexID]*labelset.CMS, len(idx.comp))
	for c, members := range idx.comp {
		m := make(map[[2]graph.VertexID]*labelset.CMS)
		if len(members) > 1 || hasSelfLoop(g, members[0]) {
			for _, u := range members {
				for v, cms := range idx.sourceCMSWithin(c, u) {
					m[[2]graph.VertexID{u, v}] = cms
				}
			}
		}
		idx.local[c] = m
	}
	return idx
}

func hasSelfLoop(g *graph.Graph, v graph.VertexID) bool {
	for _, e := range g.Out(v) {
		if e.To == v {
			return true
		}
	}
	return false
}

// sourceCMSWithin computes M(u, v | SCC c) for every v in component c,
// skipping the trivial (u, u) empty-set pair.
func (idx *SCCIndex) sourceCMSWithin(c int, u graph.VertexID) map[graph.VertexID]*labelset.CMS {
	type state struct {
		v graph.VertexID
		l labelset.Set
	}
	out := make(map[graph.VertexID]*labelset.CMS)
	queue := []state{{u, 0}}
	insert := func(v graph.VertexID, l labelset.Set) bool {
		cms := out[v]
		if cms == nil {
			cms = labelset.NewCMS()
			out[v] = cms
		}
		return cms.Insert(l)
	}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		if out[st.v].HasProperSubset(st.l) {
			continue // superseded since enqueued
		}
		for _, e := range idx.g.Out(st.v) {
			if idx.scc[e.To] != int32(c) {
				continue
			}
			nl := st.l.Add(e.Label)
			if insert(e.To, nl) {
				queue = append(queue, state{e.To, nl})
			}
		}
	}
	return out
}

// Reach answers s -L-> t using the index: intra-component hops are
// resolved by the local closures, inter-component edges are explored
// online.
func (idx *SCCIndex) Reach(s, t graph.VertexID, L labelset.Set) bool {
	if s == t {
		return true
	}
	g := idx.g
	marked := make([]bool, g.NumVertices())
	var queue []graph.VertexID
	mark := func(v graph.VertexID) {
		if !marked[v] {
			marked[v] = true
			queue = append(queue, v)
		}
	}
	// Seed: s plus everything s reaches inside its own component.
	mark(s)
	idx.expandWithin(s, L, mark)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == t {
			return true
		}
		it := g.OutLabeled(u, L)
		for run, ok := it.Next(); ok; run, ok = it.Next() {
			for _, e := range run {
				if idx.scc[e.To] == idx.scc[u] {
					continue // intra-component edges are covered by the closure
				}
				if !marked[e.To] {
					mark(e.To)
					idx.expandWithin(e.To, L, mark)
				}
			}
		}
	}
	return marked[t]
}

// expandWithin marks every vertex u reaches inside its component under L.
func (idx *SCCIndex) expandWithin(u graph.VertexID, L labelset.Set, mark func(graph.VertexID)) {
	c := idx.scc[u]
	for _, v := range idx.comp[c] {
		if v == u {
			continue
		}
		if cms, ok := idx.local[c][[2]graph.VertexID{u, v}]; ok && cms.Covers(L) {
			mark(v)
		}
	}
}

// NumComponents returns the number of SCCs.
func (idx *SCCIndex) NumComponents() int { return len(idx.comp) }

// Component returns the component id of v.
func (idx *SCCIndex) Component(v graph.VertexID) int { return int(idx.scc[v]) }

// Entries returns the number of stored minimal label sets.
func (idx *SCCIndex) Entries() int {
	n := 0
	for _, m := range idx.local {
		for _, cms := range m {
			n += cms.Len()
		}
	}
	return n
}

// SizeBytes estimates the index footprint.
func (idx *SCCIndex) SizeBytes() int64 {
	sz := int64(len(idx.scc)) * 4
	for _, m := range idx.local {
		for _, cms := range m {
			sz += 24 + int64(cms.Len())*8
		}
	}
	return sz
}

// SCCs computes the strongly connected components of g without building
// any closure: the vertex→component map plus the member lists. Use this
// for structural analysis; NewSCCIndex additionally precomputes the
// per-component transitive closures.
func SCCs(g *graph.Graph) (componentOf []int32, members [][]graph.VertexID) {
	return tarjanSCC(g)
}

// tarjanSCC computes strongly connected components iteratively (Tarjan),
// returning the vertex→component map and the member lists. Component ids
// are in reverse topological order of the condensation (Tarjan's natural
// output order).
func tarjanSCC(g *graph.Graph) ([]int32, [][]graph.VertexID) {
	n := g.NumVertices()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	sccOf := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		sccOf[i] = unvisited
	}
	var (
		counter int32
		stack   []graph.VertexID
		comps   [][]graph.VertexID
	)
	type frame struct {
		v    graph.VertexID
		edge int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: graph.VertexID(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, graph.VertexID(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			out := g.Out(f.v)
			advanced := false
			for f.edge < len(out) {
				w := out[f.edge].To
				f.edge++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// f.v is finished.
			if low[f.v] == index[f.v] {
				var members []graph.VertexID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					sccOf[w] = int32(len(comps))
					members = append(members, w)
					if w == f.v {
						break
					}
				}
				comps = append(comps, members)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return sccOf, comps
}
