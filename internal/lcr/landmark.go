package lcr

import (
	"math"
	"sort"

	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// LandmarkIndex is the traditional landmark LCR index in the style of
// Valstar et al. [19] — the "Traditional" columns of Table 2. Following
// §3.2 of the paper:
//
//   - k landmarks are the k highest-degree vertices
//     (k = 1250 + √|V| in [19]'s experiments, capped at |V|);
//   - for each landmark v, all CMSs from v to every vertex v reaches are
//     precomputed over the whole graph;
//   - each non-landmark vertex is indexed with b CMS entries (b = 20);
//   - for false-query acceleration, R_L(v) = {w | v -L-> w} is
//     precomputed for each landmark and every L ⊆ ℒ with
//     |L| ≤ |ℒ|/4 + 1.
//
// The point of this type in this repository is its construction cost:
// indexing the whole graph per landmark is the prohibitive part the
// paper's local index avoids by restricting each landmark to a subgraph.
type LandmarkIndex struct {
	g          *graph.Graph
	isLandmark []bool
	landmarks  []graph.VertexID
	full       map[graph.VertexID][]*labelset.CMS // landmark -> per-vertex CMS
	bounded    map[graph.VertexID][]*labelset.CMS // non-landmark -> partial per-vertex CMS
	rl         map[graph.VertexID]map[labelset.Set][]graph.VertexID
}

// LandmarkParams configures construction.
type LandmarkParams struct {
	// K is the number of landmarks; 0 means 1250+√|V| (the paper's
	// setting for [19]), capped at |V|.
	K int
	// B is the per-non-landmark entry budget; 0 means 20 (the paper's
	// setting for [19]).
	B int
	// SkipRL disables the R_L precomputation (it is exponential in |ℒ|;
	// tests on larger label universes disable it).
	SkipRL bool
}

// DefaultK returns the paper's k for |V| = n.
func DefaultK(n int) int {
	k := 1250 + int(math.Sqrt(float64(n)))
	if k > n {
		k = n
	}
	return k
}

// NewLandmarkIndex builds the index.
func NewLandmarkIndex(g *graph.Graph, p LandmarkParams) *LandmarkIndex {
	n := g.NumVertices()
	k := p.K
	if k <= 0 {
		k = DefaultK(n)
	}
	if k > n {
		k = n
	}
	b := p.B
	if b <= 0 {
		b = 20
	}
	idx := &LandmarkIndex{
		g:          g,
		isLandmark: make([]bool, n),
		full:       make(map[graph.VertexID][]*labelset.CMS, k),
		bounded:    make(map[graph.VertexID][]*labelset.CMS, n-k),
		rl:         make(map[graph.VertexID]map[labelset.Set][]graph.VertexID, k),
	}
	// Highest-degree landmark selection ([19]; contrast with the local
	// index's schema-driven selection, §5.1.2).
	order := make([]graph.VertexID, n)
	for i := range order {
		order[i] = graph.VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	idx.landmarks = append(idx.landmarks, order[:k]...)
	for _, v := range idx.landmarks {
		idx.isLandmark[v] = true
	}
	// Full per-landmark CMS over the whole graph — the expensive part.
	for _, v := range idx.landmarks {
		idx.full[v] = SourceCMS(g, v)
	}
	// b bounded entries per non-landmark.
	for v := 0; v < n; v++ {
		if idx.isLandmark[v] {
			continue
		}
		budget := b
		cms := make([]*labelset.CMS, n)
		idx.bounded[graph.VertexID(v)] = sourceCMSInto(g, graph.VertexID(v), cms, &budget)
	}
	// R_L per landmark for small L.
	if !p.SkipRL {
		maxLen := g.NumLabels()/4 + 1
		subsets := smallSubsets(g.NumLabels(), maxLen)
		for _, v := range idx.landmarks {
			m := make(map[labelset.Set][]graph.VertexID, len(subsets))
			for _, L := range subsets {
				m[L] = ReachableSet(g, v, L)
			}
			idx.rl[v] = m
		}
	}
	return idx
}

// smallSubsets enumerates every subset of the first nLabels labels with at
// most maxLen members.
func smallSubsets(nLabels, maxLen int) []labelset.Set {
	var out []labelset.Set
	var rec func(start int, cur labelset.Set, size int)
	rec = func(start int, cur labelset.Set, size int) {
		out = append(out, cur)
		if size == maxLen {
			return
		}
		for i := start; i < nLabels; i++ {
			rec(i+1, cur.Add(labelset.Label(i)), size+1)
		}
	}
	rec(0, 0, 0)
	return out
}

// Landmarks returns the chosen landmark vertices.
func (idx *LandmarkIndex) Landmarks() []graph.VertexID { return idx.landmarks }

// IsLandmark reports whether v is a landmark.
func (idx *LandmarkIndex) IsLandmark(v graph.VertexID) bool { return idx.isLandmark[v] }

// Reach answers s -L-> t using the index, falling back to an online BFS
// that shortcuts through landmark entries when s is not fully indexed.
func (idx *LandmarkIndex) Reach(s, t graph.VertexID, L labelset.Set) bool {
	if s == t {
		return true
	}
	if rl, ok := idx.rl[s]; ok {
		// The R_L fast path of [19]: for small label constraints the
		// reachable set is precomputed, making false queries O(set
		// lookup).
		if set, ok := rl[L]; ok {
			for _, w := range set {
				if w == t {
					return true
				}
			}
			return false
		}
	}
	if full, ok := idx.full[s]; ok {
		return full[t].Covers(L)
	}
	if bnd, ok := idx.bounded[s]; ok && bnd[t].Covers(L) {
		return true
	}
	// Online BFS with landmark shortcuts.
	g := idx.g
	visited := make([]bool, g.NumVertices())
	visited[s] = true
	queue := []graph.VertexID{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if full, ok := idx.full[u]; ok {
			if full[t].Covers(L) {
				return true
			}
			// Everything u reaches under L is known; no need to expand u
			// unless the landmark entry says t is unreachable, in which
			// case expanding u cannot help either.
			continue
		}
		it := g.OutLabeled(u, L)
		for run, ok := it.Next(); ok; run, ok = it.Next() {
			for _, e := range run {
				if visited[e.To] {
					continue
				}
				if e.To == t {
					return true
				}
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return false
}

// Entries returns the total number of stored minimal label sets.
func (idx *LandmarkIndex) Entries() int {
	n := 0
	for _, row := range idx.full {
		for _, c := range row {
			n += c.Len()
		}
	}
	for _, row := range idx.bounded {
		for _, c := range row {
			n += c.Len()
		}
	}
	return n
}

// SizeBytes estimates the index footprint: 8 bytes per stored label set,
// 16 bytes per non-nil CMS slot, 4 bytes per R_L member.
func (idx *LandmarkIndex) SizeBytes() int64 {
	var sz int64
	count := func(rows map[graph.VertexID][]*labelset.CMS) {
		for _, row := range rows {
			for _, c := range row {
				if c != nil {
					sz += 16 + int64(c.Len())*8
				}
			}
		}
	}
	count(idx.full)
	count(idx.bounded)
	for _, m := range idx.rl {
		for _, vs := range m {
			sz += 8 + int64(len(vs))*4
		}
	}
	return sz
}
