package lcr

import (
	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// SpanningTreeIndex is a spanning-forest-compressed full transitive
// closure in the style of Jin et al. [6] — the "Sampling-Tree" whose
// indexing time Figure 5 reports. The index consists of:
//
//   - a BFS spanning forest of the graph: parent links with edge labels,
//     which encode one sufficient path label set for every
//     (ancestor, descendant) pair for free; and
//   - a partial transitive closure: for every ordered pair (s, t), the
//     minimal sufficient label sets of M(s,t) *not* already covered by
//     the unique forest path from s to t.
//
// The construction cost is dominated by the per-source CMS computation,
// which is what blows up linearly in density and exponentially in |V| —
// the trend Figure 5 demonstrates. See DESIGN.md §5 for the substitution
// note versus the original C++ implementation.
type SpanningTreeIndex struct {
	n      int
	parent []graph.VertexID // forest parent; NoVertex at roots
	plabel []graph.Label    // label of the parent edge
	depth  []int32
	root   []graph.VertexID // forest root of each vertex

	// partial[s][t] holds M(s,t) minus sets covered by the tree path.
	// A nil inner map means s reaches nothing beyond its tree path.
	partial []map[graph.VertexID]*labelset.CMS
}

// NewSpanningTreeIndex builds the index for g.
func NewSpanningTreeIndex(g *graph.Graph) *SpanningTreeIndex {
	n := g.NumVertices()
	idx := &SpanningTreeIndex{
		n:       n,
		parent:  make([]graph.VertexID, n),
		plabel:  make([]graph.Label, n),
		depth:   make([]int32, n),
		root:    make([]graph.VertexID, n),
		partial: make([]map[graph.VertexID]*labelset.CMS, n),
	}
	for v := range idx.parent {
		idx.parent[v] = graph.NoVertex
		idx.root[v] = graph.NoVertex
	}
	// BFS forest over the whole graph, ignoring labels: roots are chosen
	// in ID order among the still-uncovered vertices.
	for r := 0; r < n; r++ {
		if idx.root[r] != graph.NoVertex {
			continue
		}
		idx.root[r] = graph.VertexID(r)
		queue := []graph.VertexID{graph.VertexID(r)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.Out(u) {
				if idx.root[e.To] != graph.NoVertex {
					continue
				}
				idx.root[e.To] = graph.VertexID(r)
				idx.parent[e.To] = u
				idx.plabel[e.To] = e.Label
				idx.depth[e.To] = idx.depth[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	// Partial transitive closure: per-source CMS minus tree-covered sets.
	for s := 0; s < n; s++ {
		src := graph.VertexID(s)
		full := SourceCMS(g, src)
		var m map[graph.VertexID]*labelset.CMS
		for t := 0; t < n; t++ {
			c := full[t]
			if c == nil || src == graph.VertexID(t) {
				continue
			}
			treeSet, onTree := idx.treePathLabels(src, graph.VertexID(t))
			kept := labelset.NewCMS()
			for _, ls := range c.Sets() {
				if onTree && treeSet.SubsetOf(ls) {
					continue // the tree path already certifies ls
				}
				kept.Insert(ls)
			}
			if kept.Len() == 0 {
				continue
			}
			if m == nil {
				m = make(map[graph.VertexID]*labelset.CMS)
			}
			m[graph.VertexID(t)] = kept
		}
		idx.partial[s] = m
	}
	return idx
}

// treePathLabels returns the label set of the unique forest path from s
// down to t, and whether such a path exists (s must be an ancestor of t
// in the same tree).
func (idx *SpanningTreeIndex) treePathLabels(s, t graph.VertexID) (labelset.Set, bool) {
	if idx.root[s] != idx.root[t] {
		return 0, false
	}
	var ls labelset.Set
	for t != s {
		if idx.depth[t] <= idx.depth[s] || idx.parent[t] == graph.NoVertex {
			return 0, false
		}
		ls = ls.Add(idx.plabel[t])
		t = idx.parent[t]
	}
	return ls, true
}

// Reach answers s -L-> t from the index alone.
func (idx *SpanningTreeIndex) Reach(s, t graph.VertexID, L labelset.Set) bool {
	if s == t {
		return true
	}
	if ts, ok := idx.treePathLabels(s, t); ok && ts.SubsetOf(L) {
		return true
	}
	if m := idx.partial[s]; m != nil {
		if c, ok := m[t]; ok && c.Covers(L) {
			return true
		}
	}
	return false
}

// Entries returns the number of minimal label sets stored in the partial
// closure (the tree itself costs O(|V|)).
func (idx *SpanningTreeIndex) Entries() int {
	n := 0
	for _, m := range idx.partial {
		for _, c := range m {
			n += c.Len()
		}
	}
	return n
}

// SizeBytes estimates the in-memory index footprint: forest arrays plus
// 8 bytes per stored label set and 16 bytes per (target, CMS) slot.
func (idx *SpanningTreeIndex) SizeBytes() int64 {
	sz := int64(idx.n) * (4 + 1 + 4 + 4) // parent, plabel, depth, root
	for _, m := range idx.partial {
		for _, c := range m {
			sz += 16 + int64(c.Len())*8
		}
	}
	return sz
}
