package labelset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := New(0, 3, 17)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, l := range []Label{0, 3, 17} {
		if !s.Contains(l) {
			t.Errorf("Contains(%d) = false, want true", l)
		}
	}
	for _, l := range []Label{1, 2, 16, 63} {
		if s.Contains(l) {
			t.Errorf("Contains(%d) = true, want false", l)
		}
	}
	if got := s.Remove(3); got.Contains(3) || got.Len() != 2 {
		t.Errorf("Remove(3) = %v", got)
	}
	if got := s.Add(3); got != s {
		t.Errorf("Add of existing changed set: %v != %v", got, s)
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(1, 2, 3), New(3, 4)
	if got := a.Union(b); got != New(1, 2, 3, 4) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != New(3) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != New(1, 2) {
		t.Errorf("Minus = %v", got)
	}
	if !New(1).SubsetOf(a) || !a.SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf misbehaves")
	}
	if !New(1).ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Error("ProperSubsetOf misbehaves")
	}
	if !Set(0).IsEmpty() || a.IsEmpty() {
		t.Error("IsEmpty misbehaves")
	}
}

func TestUniverse(t *testing.T) {
	for _, n := range []int{0, 1, 7, 63, 64} {
		u := Universe(n)
		if u.Len() != n {
			t.Errorf("Universe(%d).Len() = %d", n, u.Len())
		}
		for i := 0; i < n; i++ {
			if !u.Contains(Label(i)) {
				t.Errorf("Universe(%d) missing %d", n, i)
			}
		}
	}
	mustPanic(t, func() { Universe(65) })
	mustPanic(t, func() { Universe(-1) })
}

func TestLabelsRoundTrip(t *testing.T) {
	s := New(0, 5, 9, 63)
	got := New(s.Labels()...)
	if got != s {
		t.Fatalf("round trip: %v != %v", got, s)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	mustPanic(t, func() { New(64) })
	mustPanic(t, func() { Set(0).Remove(200) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestSetString(t *testing.T) {
	if got := New(0, 3).String(); got != "{0,3}" {
		t.Errorf("String = %q", got)
	}
	if got := Set(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestCMSInsertMinimality(t *testing.T) {
	c := NewCMS()
	if !c.Insert(New(1, 2)) {
		t.Fatal("first insert rejected")
	}
	if c.Insert(New(1, 2, 3)) {
		t.Fatal("superset insert accepted")
	}
	if !c.Insert(New(1)) {
		t.Fatal("subset insert rejected")
	}
	// {1,2} must have been evicted by {1}.
	if c.Len() != 1 || c.Sets()[0] != New(1) {
		t.Fatalf("CMS = %v, want [{1}]", c)
	}
	if !c.Insert(New(2, 3)) {
		t.Fatal("incomparable insert rejected")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCMSInsertEqualSet(t *testing.T) {
	c := NewCMS(New(1, 2))
	if c.Insert(New(1, 2)) {
		t.Fatal("duplicate insert accepted")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCMSEmptySetDominatesAll(t *testing.T) {
	c := NewCMS(New(1), New(2, 3))
	c.Insert(Set(0))
	if c.Len() != 1 || !c.Sets()[0].IsEmpty() {
		t.Fatalf("CMS = %v, want [{}]", c)
	}
	if c.Insert(New(5)) {
		t.Fatal("insert over empty-set member accepted")
	}
}

func TestCMSCovers(t *testing.T) {
	c := NewCMS(New(1, 2), New(3))
	cases := []struct {
		L    Set
		want bool
	}{
		{New(1, 2), true},
		{New(1, 2, 5), true},
		{New(3), true},
		{New(1), false},
		{New(2), false},
		{Set(0), false},
		{New(4, 5), false},
	}
	for _, tc := range cases {
		if got := c.Covers(tc.L); got != tc.want {
			t.Errorf("Covers(%v) = %v, want %v", tc.L, got, tc.want)
		}
	}
	var nilC *CMS
	if nilC.Covers(New(1)) {
		t.Error("nil CMS covers something")
	}
	if nilC.Len() != 0 {
		t.Error("nil CMS Len != 0")
	}
}

func TestCMSEqualClone(t *testing.T) {
	a := NewCMS(New(1), New(2, 3))
	b := NewCMS(New(2, 3), New(1))
	if !a.Equal(b) {
		t.Error("order-insensitive equality failed")
	}
	cl := a.Clone()
	if !cl.Equal(a) {
		t.Error("clone not equal")
	}
	cl.Insert(Set(0))
	if a.Equal(cl) {
		t.Error("clone aliases original")
	}
	var nilC *CMS
	if got := nilC.Clone(); got == nil || got.Len() != 0 {
		t.Error("nil clone")
	}
}

func TestCMSString(t *testing.T) {
	c := NewCMS(New(2, 3), New(1))
	if got := c.String(); got != "[{1} {2,3}]" {
		t.Errorf("String = %q", got)
	}
}

// Property: after any insertion sequence, the CMS is an antichain and is
// equivalent (as a covering function on random probes) to the naive "keep
// everything" representation.
func TestCMSAntichainProperty(t *testing.T) {
	prop := func(raw []uint16, probes []uint16) bool {
		c := NewCMS()
		var all []Set
		for _, r := range raw {
			s := Set(r) // sets over labels 0..15
			c.Insert(s)
			all = append(all, s)
		}
		// Antichain invariant.
		ms := c.Sets()
		for i := range ms {
			for j := range ms {
				if i != j && ms[i].SubsetOf(ms[j]) {
					return false
				}
			}
		}
		// Covering equivalence.
		naive := func(L Set) bool {
			for _, s := range all {
				if s.SubsetOf(L) {
					return true
				}
			}
			return false
		}
		for _, p := range probes {
			L := Set(p)
			if c.Covers(L) != naive(L) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: subset relation agrees with element-wise definition.
func TestSubsetOfProperty(t *testing.T) {
	prop := func(a, b uint64) bool {
		sa, sb := Set(a), Set(b)
		want := true
		for _, l := range sa.Labels() {
			if !sb.Contains(l) {
				want = false
				break
			}
		}
		return sa.SubsetOf(sb) == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Len agrees with len(Labels) and algebra identities hold.
func TestSetAlgebraProperty(t *testing.T) {
	prop := func(a, b uint64) bool {
		sa, sb := Set(a), Set(b)
		if sa.Len() != len(sa.Labels()) {
			return false
		}
		if sa.Union(sb) != sb.Union(sa) {
			return false
		}
		if sa.Intersect(sb).SubsetOf(sa) == false {
			return false
		}
		if !sa.Minus(sb).SubsetOf(sa) {
			return false
		}
		if sa.Minus(sb).Intersect(sb) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCMSRandomStress(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewCMS()
	for i := 0; i < 5000; i++ {
		c.Insert(Set(rng.Uint64() & 0xFFF))
	}
	// With 12 labels and 5000 inserts, the antichain must be small and
	// minimal.
	ms := c.Sets()
	for i := range ms {
		for j := range ms {
			if i != j && ms[i].SubsetOf(ms[j]) {
				t.Fatalf("not an antichain: %v ⊆ %v", ms[i], ms[j])
			}
		}
	}
}

func BenchmarkCMSInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]Set, 1024)
	for i := range vals {
		vals[i] = Set(rng.Uint64() & 0xFFFF)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCMS()
		for _, v := range vals {
			c.Insert(v)
		}
	}
}
