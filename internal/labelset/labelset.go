// Package labelset implements edge-label sets as fixed-width bitsets and
// collections of minimal sufficient path label sets (CMS, Definition 2.3 of
// the paper). A CMS is an antichain under ⊆: no member is a subset of
// another. The label universe is capped at 64 labels, which covers the
// paper's datasets (LUBM ≈ 20 properties, YAGO ≈ 40 relations) and lets a
// label set live in a single machine word.
package labelset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxLabels is the size of the label universe a Set can represent.
const MaxLabels = 64

// Label identifies one edge label. Valid labels are in [0, MaxLabels).
type Label uint8

// Set is a set of labels represented as a bitset: bit i set means label i
// is a member. The zero value is the empty set.
type Set uint64

// New builds a Set from the given labels. Labels ≥ MaxLabels panic: label
// IDs are assigned by the graph dictionary, so an out-of-range label is a
// programming error, not an input error.
func New(labels ...Label) Set {
	var s Set
	for _, l := range labels {
		s = s.Add(l)
	}
	return s
}

// Universe returns the set containing the n smallest labels.
func Universe(n int) Set {
	if n < 0 || n > MaxLabels {
		panic(fmt.Sprintf("labelset: universe size %d out of range [0,%d]", n, MaxLabels))
	}
	if n == MaxLabels {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

// Add returns s with label l added.
func (s Set) Add(l Label) Set {
	if l >= MaxLabels {
		panic(fmt.Sprintf("labelset: label %d out of range [0,%d)", l, MaxLabels))
	}
	return s | 1<<uint(l)
}

// Remove returns s with label l removed.
func (s Set) Remove(l Label) Set {
	if l >= MaxLabels {
		panic(fmt.Sprintf("labelset: label %d out of range [0,%d)", l, MaxLabels))
	}
	return s &^ (1 << uint(l))
}

// Contains reports whether label l is a member of s.
func (s Set) Contains(l Label) bool {
	return l < MaxLabels && s&(1<<uint(l)) != 0
}

// SubsetOf reports whether every member of s is a member of t (s ⊆ t).
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s ⊂ t.
func (s Set) ProperSubsetOf(t Set) bool { return s != t && s.SubsetOf(t) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// IsEmpty reports whether s has no members.
func (s Set) IsEmpty() bool { return s == 0 }

// Len returns the number of members of s.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// Labels returns the members of s in increasing order.
func (s Set) Labels() []Label {
	out := make([]Label, 0, s.Len())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, Label(bits.TrailingZeros64(v)))
	}
	return out
}

// String renders s as {0,3,17}. It is meant for diagnostics; use a graph
// dictionary to render label names.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range s.Labels() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", l)
	}
	b.WriteByte('}')
	return b.String()
}

// CMS is a collection of minimal sufficient path label sets (Definition
// 2.3): an antichain of Sets under ⊆. The zero value is an empty, usable
// CMS. CMS values are not safe for concurrent mutation.
type CMS struct {
	sets []Set
}

// NewCMS builds a CMS from the given sets, inserting each in turn so the
// result is minimal.
func NewCMS(sets ...Set) *CMS {
	c := &CMS{}
	for _, s := range sets {
		c.Insert(s)
	}
	return c
}

// AdoptSets returns a CMS that takes ownership of sets verbatim,
// skipping Insert's per-set subset filtering. The caller asserts that
// sets is already a minimal antichain — the form Sorted() emits and
// the index serialisation writes — and must not mutate the slice
// afterwards. The index boot path decodes millions of CMS values; this
// is its constructor.
func AdoptSets(sets []Set) CMS { return CMS{sets: sets} }

// Insert adds s to the collection, maintaining minimality. It reports
// whether s was added: false means an existing member is a subset of s
// (s is redundant). Members that are proper supersets of s are removed.
// This is the Insert routine of Algorithm 3 (lines 16–24) of the paper.
func (c *CMS) Insert(s Set) bool {
	kept := c.sets[:0]
	for _, m := range c.sets {
		if m.SubsetOf(s) {
			// s is covered by an existing member (possibly equal).
			return false
		}
		if !s.ProperSubsetOf(m) {
			kept = append(kept, m)
		}
	}
	c.sets = append(kept, s)
	return true
}

// Covers reports whether some member of the collection is a subset of L,
// i.e. whether L is a sufficient path label set according to this CMS.
func (c *CMS) Covers(L Set) bool {
	if c == nil {
		return false
	}
	for _, m := range c.sets {
		if m.SubsetOf(L) {
			return true
		}
	}
	return false
}

// HasProperSubset reports whether some member is a proper subset of L.
// CMS-producing BFS expansions use it to discard queue entries that a
// smaller set has superseded since they were enqueued.
func (c *CMS) HasProperSubset(L Set) bool {
	if c == nil {
		return false
	}
	for _, m := range c.sets {
		if m.ProperSubsetOf(L) {
			return true
		}
	}
	return false
}

// Len returns the number of minimal sets in the collection.
func (c *CMS) Len() int {
	if c == nil {
		return 0
	}
	return len(c.sets)
}

// Sets returns the minimal sets in unspecified order. The returned slice
// aliases internal storage and must not be mutated.
func (c *CMS) Sets() []Set {
	if c == nil {
		return nil
	}
	return c.sets
}

// Sorted returns the minimal sets sorted by (size, value), for
// deterministic output and comparisons in tests.
func (c *CMS) Sorted() []Set {
	out := append([]Set(nil), c.Sets()...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return out[i] < out[j]
	})
	return out
}

// Equal reports whether two collections contain exactly the same minimal
// sets.
func (c *CMS) Equal(o *CMS) bool {
	a, b := c.Sorted(), o.Sorted()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the collection.
func (c *CMS) Clone() *CMS {
	if c == nil {
		return &CMS{}
	}
	return &CMS{sets: append([]Set(nil), c.sets...)}
}

// String renders the collection as [{..},{..}] in sorted order.
func (c *CMS) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, s := range c.Sorted() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.String())
	}
	b.WriteByte(']')
	return b.String()
}
