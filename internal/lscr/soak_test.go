package lscr

import (
	"math/rand"
	"testing"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/lcr"
	"lscr/internal/lubm"
	"lscr/internal/pattern"
	"lscr/internal/sparql"
	"lscr/internal/testkg"
	"lscr/internal/testkg/pat"
)

// lubmSoakFixture builds a small LUBM KG and compiles all Table 3
// constraints against it.
func lubmSoakFixture(t *testing.T) (*graph.Graph, []*pattern.Constraint) {
	t.Helper()
	cfg := lubm.DefaultConfig(1)
	cfg.DeptsPerUniversity = 2
	g := lubm.Generate(cfg)
	var out []*pattern.Constraint
	for _, nc := range lubm.Constraints() {
		q, err := sparql.Parse(nc.SPARQL)
		if err != nil {
			t.Fatal(err)
		}
		cons, sat, err := q.Compile(g)
		if err != nil || !sat {
			t.Fatalf("%s: err=%v sat=%v", nc.Name, err, sat)
		}
		out = append(out, cons)
	}
	return g, out
}

// TestSoakLargeRandomGraphs cross-validates the three algorithms on
// graphs two orders of magnitude larger than the property tests use —
// large enough for multi-region local indexes, deep searches, recall
// walks and the index pruning paths to all fire. Skipped under -short.
func TestSoakLargeRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		n := 1500 + rng.Intn(1500)
		g := testkg.Random(rng, n, n*3, rng.Intn(6)+2)
		idx := NewLocalIndex(g, IndexParams{Seed: seed})
		for probe := 0; probe < 25; probe++ {
			c := pat.RandomConstraint(rng, g, 4)
			q := Query{
				Source:     graph.VertexID(rng.Intn(n)),
				Target:     graph.VertexID(rng.Intn(n)),
				Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
				Constraint: c,
			}
			m, err := pattern.NewMatcher(g, c)
			if err != nil {
				t.Fatal(err)
			}
			want := false
			for _, v := range m.MatchAll() {
				if lcr.Reach(g, q.Source, v, q.Labels) && lcr.Reach(g, v, q.Target, q.Labels) {
					want = true
					break
				}
			}
			u, stU, err := UIS(g, q)
			if err != nil || u != want {
				t.Fatalf("seed %d probe %d: UIS = %v (%v), want %v", seed, probe, u, err, want)
			}
			us, stS, err := UISStar(g, q, nil)
			if err != nil || us != want {
				t.Fatalf("seed %d probe %d: UIS* = %v (%v), want %v", seed, probe, us, err, want)
			}
			in, stI, err := INS(g, idx, q, nil)
			if err != nil || in != want {
				t.Fatalf("seed %d probe %d: INS = %v (%v), want %v", seed, probe, in, err, want)
			}
			for _, st := range []Stats{stU, stS, stI} {
				if st.SearchTreeNodes > 2*n {
					t.Fatalf("seed %d probe %d: search tree %d > 2|V|", seed, probe, st.SearchTreeNodes)
				}
			}
			if want {
				// Witness anchors must hold at scale too.
				for _, st := range []Stats{stU, stS, stI} {
					w, ok := FindWitness(g, q.Source, q.Target, st.Satisfying, q.Labels)
					if !ok || !w.Valid(g, q) {
						t.Fatalf("seed %d probe %d: invalid witness", seed, probe)
					}
				}
			}
		}
	}
}

// TestSoakLUBMAllConstraints runs every Table 3 constraint on a 2-dept
// LUBM KG end to end through all three algorithms. Skipped under -short.
func TestSoakLUBMAllConstraints(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Imported lazily to avoid a dependency for the rest of this file.
	g, constraints := lubmSoakFixture(t)
	idx := NewLocalIndex(g, IndexParams{Seed: 5})
	rng := rand.New(rand.NewSource(9))
	for _, cons := range constraints {
		m, err := pattern.NewMatcher(g, cons)
		if err != nil {
			t.Fatal(err)
		}
		vs := m.MatchAll()
		for probe := 0; probe < 10; probe++ {
			q := Query{
				Source:     graph.VertexID(rng.Intn(g.NumVertices())),
				Target:     graph.VertexID(rng.Intn(g.NumVertices())),
				Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
				Constraint: cons,
			}
			want := false
			for _, v := range vs {
				if lcr.Reach(g, q.Source, v, q.Labels) && lcr.Reach(g, v, q.Target, q.Labels) {
					want = true
					break
				}
			}
			if got, _, err := UIS(g, q); err != nil || got != want {
				t.Fatalf("UIS: %v (%v), want %v", got, err, want)
			}
			if got, _, err := UISStar(g, q, vs); err != nil || got != want {
				t.Fatalf("UIS*: %v (%v), want %v", got, err, want)
			}
			if got, _, err := INS(g, idx, q, vs); err != nil || got != want {
				t.Fatalf("INS: %v (%v), want %v", got, err, want)
			}
		}
	}
}
