package lscr

import (
	"math/rand"
	"sort"
	"testing"

	"lscr/internal/graph"
)

func TestPriorityKeyLess(t *testing.T) {
	base := priorityKey{}
	cases := []struct {
		a, b priorityKey
		want bool
	}{
		{priorityKey{r0: 0}, priorityKey{r0: 1}, true},
		{priorityKey{r0: 1}, priorityKey{r0: 0}, false},
		{priorityKey{r1: 0}, priorityKey{r1: 2}, true},
		{priorityKey{r2: -5}, priorityKey{r2: 0}, true},
		{priorityKey{r3: 0}, priorityKey{r3: 1}, true},
		{priorityKey{seq: 1}, priorityKey{seq: 2}, true},
		{priorityKey{id: 1}, priorityKey{id: 2}, true},
		{base, base, false},
	}
	for i, tc := range cases {
		if got := tc.a.less(tc.b); got != tc.want {
			t.Errorf("case %d: less = %v, want %v", i, got, tc.want)
		}
	}
}

func TestLazyPQOrdering(t *testing.T) {
	// Static keys: id order.
	q := newLazyPQ(func(v graph.VertexID, seq int) priorityKey {
		return priorityKey{id: v, seq: 0}
	}, false, true, 1024)
	for _, v := range []graph.VertexID{5, 1, 9, 3} {
		q.push(v)
	}
	var got []graph.VertexID
	for {
		v, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	want := []graph.VertexID{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("pop sequence %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop sequence %v, want %v", got, want)
		}
	}
}

func TestLazyPQDedupKeepsLatest(t *testing.T) {
	q := newLazyPQ(func(v graph.VertexID, seq int) priorityKey {
		return priorityKey{id: v, seq: seq}
	}, true, true, 1024)
	q.push(7)
	q.push(7)
	q.push(7)
	n := 0
	for {
		if _, ok := q.pop(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("popped %d entries for one deduplicated vertex, want 1", n)
	}
}

func TestLazyPQRevalidation(t *testing.T) {
	// Keys depend on a mutable state map; the queue must settle stale
	// keys on pop.
	state := map[graph.VertexID]int{1: 1, 2: 1, 3: 1}
	q := newLazyPQ(func(v graph.VertexID, seq int) priorityKey {
		return priorityKey{r0: state[v], id: v}
	}, false, true, 1024)
	q.push(1)
	q.push(2)
	q.push(3)
	// Promote 3 to the best rank after pushing and re-push it (the
	// search algorithms re-push on every state change).
	state[3] = 0
	q.push(3)
	if v, ok := q.pop(); !ok || v != 3 {
		t.Fatalf("pop = %v, want 3 after promotion", v)
	}
	// Demote 1 below 2: the top's stale key must be settled without a
	// re-push.
	state[1] = 2
	if v, ok := q.pop(); !ok || v != 2 {
		t.Fatalf("pop = %v, want 2 after demotion of 1", v)
	}
	// The duplicate of 3 remains (dedup is off) and its rank-0 key beats
	// the demoted 1.
	if v, ok := q.pop(); !ok || v != 3 {
		t.Fatalf("pop = %v, want leftover 3", v)
	}
	if v, ok := q.pop(); !ok || v != 1 {
		t.Fatalf("pop = %v, want 1 last", v)
	}
	if !q.empty() {
		t.Fatal("queue should be empty")
	}
}

func TestLazyPQPeekDoesNotRemove(t *testing.T) {
	q := newLazyPQ(func(v graph.VertexID, seq int) priorityKey {
		return priorityKey{id: v}
	}, false, true, 1024)
	q.push(4)
	if v, ok := q.peek(); !ok || v != 4 {
		t.Fatal("peek failed")
	}
	if v, ok := q.pop(); !ok || v != 4 {
		t.Fatal("pop after peek failed")
	}
	if _, ok := q.peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
}

func TestLazyPQRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) + 1
		vals := make([]graph.VertexID, n)
		for i := range vals {
			vals[i] = graph.VertexID(rng.Intn(1000))
		}
		seen := map[graph.VertexID]bool{}
		var uniq []graph.VertexID
		for _, v := range vals {
			if !seen[v] {
				seen[v] = true
				uniq = append(uniq, v)
			}
		}
		q := newLazyPQ(func(v graph.VertexID, seq int) priorityKey {
			return priorityKey{id: v}
		}, true, true, 1024)
		for _, v := range vals {
			q.push(v)
		}
		sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
		for _, want := range uniq {
			got, ok := q.pop()
			if !ok || got != want {
				t.Fatalf("trial %d: pop = %v, want %v", trial, got, want)
			}
		}
		if !q.empty() {
			t.Fatalf("trial %d: queue not drained", trial)
		}
	}
}
