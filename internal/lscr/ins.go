package lscr

import (
	"lscr/internal/graph"
	"lscr/internal/pattern"
)

// INS answers the LSCR query q on g with the informed search of Algorithm
// 4, guided by a precomputed LocalIndex. Its two priority structures act
// as the evaluation function of a classical informed search (§5.2):
//
//   - H, a priority heap over V(S,G), decides which satisfying vertex to
//     verify next (F-marked before N-marked, then closer regions and
//     landmarks first);
//   - Q, the global priority queue replacing UIS*'s stack, decides which
//     frontier vertex to expand next (T before F, the target's region
//     first, landmarks first, closer regions first, regions whose
//     landmark is unexplored first, then FIFO) and removes duplicates,
//     keeping the most recent insertion.
//
// When the frontier touches a landmark w, the index prunes the search:
// Check(II[w], t*) answers within-region reachability immediately,
// Cut(II[w]) marks everything w reaches in its region, and Push(EIT[w])
// enqueues the boundary exits (Theorem 5.1).
//
// Under live mutations the shortcuts stay sound as long as the index
// describes the queried graph view exactly. The engine maintains the
// index incrementally through every committed batch (see maintain.go),
// so the gate is per landmark, not per graph: a landmark invalidated by
// a deletion (idx.Dirty) is expanded like an ordinary vertex over the
// exact merged adjacency, while every clean landmark keeps the full
// Check/Cut/Push pruning. Only when the index is stale for the view as a
// whole (!idx.ExactFor(g) — maintenance disabled, or an index loaded for
// a different view) are the shortcuts disabled outright; H and Q keep
// using the index's ρ/region estimates as (deterministic) heuristics
// either way, and answers remain exact in every mode. Compaction
// rebuilds the index and clears all dirtiness.
//
// vsOrder optionally supplies a precomputed V(S,G); pass nil to let the
// engine compute it.
func INS(g *graph.Graph, idx *LocalIndex, q Query, vsOrder []graph.VertexID) (bool, Stats, error) {
	return insImpl(g, idx, q, vsOrder, nil)
}

// INSTraced is INS with a Tracer observing close-state transitions
// (index-driven markings are flagged viaIndex) and LCS boundaries.
func INSTraced(g *graph.Graph, idx *LocalIndex, q Query, vsOrder []graph.VertexID, tr Tracer) (bool, Stats, error) {
	return insImpl(g, idx, q, vsOrder, tr)
}

func insImpl(g *graph.Graph, idx *LocalIndex, q Query, vsOrder []graph.VertexID, tr Tracer) (bool, Stats, error) {
	if err := validate(g, q); err != nil {
		return false, Stats{}, err
	}
	vs := vsOrder
	if vs == nil {
		m, err := pattern.NewMatcher(g, q.Constraint)
		if err != nil {
			return false, Stats{}, err
		}
		vs = m.MatchAll()
	}

	sc := getScratch(g.NumVertices())
	defer putScratch(sc)
	r := &insRun{
		g:       g,
		idx:     idx,
		q:       q,
		close:   newCloseMap(sc),
		cutDone: sc.cutTable(len(idx.landmarks)),
		noPrune: !idx.ExactFor(g),
		tr:      tr,
		ic:      interruptCheck{fn: q.Interrupt},
	}
	// Line 1: H initialized by V(S,G). |V(S,G)| can approach |V|, so
	// even initialization honours the interrupt.
	h := newLazyPQ(r.hKey, false, true, g.NumVertices())
	for _, v := range vs {
		if err := r.ic.tick(); err != nil {
			return false, Stats{}, err
		}
		h.push(v)
	}
	// Line 2: global priority queue with s; line 3: close[s] <- F.
	r.queue = newFrontierQueue(sc, g.NumVertices())
	r.enqueue(q.Source)
	r.close.set(q.Source, F)
	if tr != nil {
		tr.Transition(q.Source, F, graph.NoVertex, 0, false)
	}

	// Lines 4-14. Each H pop revalidates stale keys (µs-scale on big
	// V(S,G)), so the poll here is unamortised: a stride of thousands
	// of pops would stretch cancellation latency past the budget.
	for {
		if err := r.ic.poll(); err != nil {
			return false, Stats{}, err
		}
		v, ok := h.pop()
		if !ok {
			break
		}
		switch r.close.get(v) {
		case N:
			if v == q.Source || v == q.Target {
				// Lines 7-8: the satisfying vertex coincides with an
				// endpoint; the query reduces to LCR reachability.
				ok, err := r.lcs(q.Source, q.Target, false)
				if err != nil {
					return false, Stats{}, err
				}
				if ok {
					return true, r.close.statsSat(0, v), nil
				}
				return false, r.close.stats(0), nil
			}
			ok, err := r.lcs(q.Source, v, false) // Line 9.
			if err != nil {
				return false, Stats{}, err
			}
			if ok {
				tail := v == q.Target
				if !tail {
					if tail, err = r.lcs(v, q.Target, true); err != nil { // Lines 10-11.
						return false, Stats{}, err
					}
				}
				if tail {
					return true, r.close.statsSat(0, v), nil
				}
			}
		case F:
			// s -L-> v is known; v satisfies S. A zero-length tail
			// suffices when v is the target (see DESIGN.md).
			if v == q.Target {
				return true, r.close.statsSat(0, v), nil
			}
			ok, err := r.lcs(v, q.Target, true) // Lines 12-14.
			if err != nil {
				return false, Stats{}, err
			}
			if ok {
				return true, r.close.statsSat(0, v), nil
			}
		case T:
			// s -L,S-> v proved by an earlier exhaustive T-phase that
			// did not reach t; v cannot help further.
		}
	}
	return false, r.close.stats(0), nil
}

// insRun carries the global state shared by LCS invocations.
type insRun struct {
	g     *graph.Graph
	idx   *LocalIndex
	q     Query
	close *closeMap
	queue *frontierQueue

	// tStar is the target of the LCS invocation in flight; Q's priority
	// rules reference it. tStarAF caches its region.
	tStar   graph.VertexID
	tStarAF graph.VertexID

	// cutDone records, per landmark index, whether Cut/Push has already
	// run in the F phase (bit 0) or T phase (bit 1); the marking is
	// idempotent per (w, L, B).
	cutDone []uint8

	// noPrune disables the landmark shortcuts (Check/Cut/Push) wholesale:
	// set when the index is not exact for the queried view, so it is only
	// trusted as a priority heuristic (see the INS doc). With an exact
	// index, deletion-invalidated landmarks are still excluded per
	// landmark via idx.Dirty.
	noPrune bool

	tr Tracer
	ic interruptCheck
}

// hKey orders H (§5.2): F-marked satisfying vertices before N-marked;
// within a state, nearer estimated distance ρ first, landmarks before
// non-landmarks.
func (r *insRun) hKey(v graph.VertexID, seq int) priorityKey {
	k := priorityKey{id: v, seq: seq}
	switch r.close.get(v) {
	case F:
		k.r0 = 0
		k.r1 = r.idx.Rho(v, r.q.Target)
	case N:
		k.r0 = 1
		k.r1 = r.idx.Rho(r.q.Source, v)
	case T:
		k.r0 = 2
	}
	if !r.idx.IsLandmark(v) {
		k.r2 = 1
	}
	return k
}

// enqueue pushes v into Q with the packed priority implementing the §5.2
// rules: (i) close T before F; (ii) the current target's region first;
// (iii) landmarks first; (iv) smaller ρ(u, t*) first; (v) regions whose
// landmark is still unexplored first; (vi) FIFO.
func (r *insRun) enqueue(v graph.VertexID) {
	var key uint64
	if r.close.get(v) != T {
		key |= 1 << 62
	}
	af := r.idx.Region(v)
	var rank uint64
	if !(af != graph.NoVertex && af == r.tStarAF) {
		rank = 2 // rule (ii) dominates rule (iii)
	}
	if !r.idx.IsLandmark(v) {
		rank++
	}
	key |= rank << 60
	// Rule (iv): smaller ρ first. ρ is the (possibly negated) boundary
	// connection count D; encode so that "closer" sorts lower.
	var d uint32
	if af != graph.NoVertex && r.tStarAF != graph.NoVertex && af != r.tStarAF {
		d = uint32(r.idx.D(af, r.tStarAF))
		if d > fqRhoMax {
			d = fqRhoMax
		}
	}
	rho := uint64(fqRhoMax) - uint64(d) // negated reading: larger D = closer
	if r.idx.literalRho {
		rho = uint64(d)
	}
	key |= rho << 34
	if af == graph.NoVertex || r.close.get(af) != N {
		key |= 1 << 33
	}
	r.queue.push(v, key)
}

// lcs is the LCS(s*, t*, L, B) of Algorithm 4 (lines 16-30). With fromSat
// (B = T) the frontier is marked T and may re-explore F vertices. A
// non-nil error is an interrupt and aborts the whole search.
func (r *insRun) lcs(sStar, tStar graph.VertexID, fromSat bool) (bool, error) {
	r.tStar = tStar
	r.tStarAF = r.idx.Region(tStar)
	if r.tr != nil {
		r.tr.Invocation(sStar, tStar, fromSat)
	}
	if fromSat {
		r.close.set(sStar, T) // Lines 17-18.
		r.enqueue(sStar)
		if r.tr != nil {
			r.tr.Transition(sStar, T, graph.NoVertex, 0, false)
		}
		if sStar == tStar {
			return true, nil
		}
	} else if sStar == tStar {
		return true, nil
	}
	L := r.q.Labels
	// Line 19: while (B=F ∧ Q≠φ) or (B = close[Q.first] = T).
	for {
		top, ok := r.queue.peek()
		if !ok {
			break
		}
		if fromSat && r.close.get(top) != T {
			break
		}
		u, _ := r.queue.pop()
		rs := r.g.OutRuns(u)
		// Tick the run scan up front: cancellation must stay prompt even
		// when every run is rejected by the label constraint.
		if err := r.ic.tickN(rs.Len()); err != nil {
			return false, err
		}
		for ri, n := 0, rs.Len(); ri < n; ri++ { // Lines 21-29.
			if !L.Contains(rs.Label(ri)) {
				continue
			}
			run := rs.Run(ri)
			if err := r.ic.tickN(len(run)); err != nil {
				return false, err
			}
			for _, e := range run {
				w := e.To
				// Line 22-23: t* lives in w's region and w reaches it there.
				if !r.noPrune && r.tStarAF == w && !r.idx.Dirty(w) && r.idx.Check(w, tStar, L) {
					r.requeue(u)
					return true, nil
				}
				if !r.noPrune && r.idx.IsLandmark(w) && !r.idx.Dirty(w) { // Lines 24-25.
					if r.cutPush(w, tStar, fromSat) {
						r.requeue(u)
						return true, nil
					}
				} else if r.close.get(w) == N || fromSat && r.close.get(w) == F { // Lines 26-27.
					if fromSat {
						r.close.set(w, T)
					} else {
						r.close.set(w, F)
					}
					r.enqueue(w)
					if r.tr != nil {
						r.tr.Transition(w, r.close.get(w), u, e.Label, false)
					}
					if w == tStar { // Lines 28-29.
						r.requeue(u)
						return true, nil
					}
				}
			}
		}
	}
	// Unlike UIS*, INS has no stack cleanup (Theorem 5.6): the priority
	// rules keep T elements in front and duplicates are removed by Q.
	return false, nil
}

// requeue re-inserts a partially scanned vertex so a later invocation
// rescans its remaining edges (see the matching fix in UIS*).
func (r *insRun) requeue(u graph.VertexID) { r.enqueue(u) }

// cutPush runs Cut(II[w]) and Push(EIT[w]) for landmark w (line 25),
// reporting whether it proved s* -L-> t*. Cut marks every vertex w
// reaches inside F(w) under L; Push enqueues every boundary exit
// reachable under L (Theorem 5.1). The marking is idempotent per phase,
// so repeated hits on the same landmark are skipped.
func (r *insRun) cutPush(w, tStar graph.VertexID, fromSat bool) bool {
	bit := uint8(1)
	if fromSat {
		bit = 2
	}
	li := r.idx.lmIdx[w]
	if r.cutDone[li]&bit != 0 {
		return false
	}
	r.cutDone[li] |= bit
	L := r.q.Labels
	found := false
	mark := func(x graph.VertexID, enq bool) {
		if fromSat {
			if r.close.get(x) == T {
				return
			}
			r.close.set(x, T)
		} else {
			if r.close.get(x) != N {
				return
			}
			r.close.set(x, F)
		}
		if enq {
			r.enqueue(x)
		}
		if r.tr != nil {
			r.tr.Transition(x, r.close.get(x), w, 0, true)
		}
		if x == tStar {
			found = true
		}
	}
	r.idx.IIEntries(w, L, func(x graph.VertexID) { mark(x, false) })
	r.idx.EITEntries(w, L, func(x graph.VertexID) { mark(x, true) })
	return found
}
