package lscr

import (
	"math/rand"
	"sort"
	"testing"

	"lscr/internal/graph"
)

func TestFrontierQueueOrdering(t *testing.T) {
	sc := getScratch(64)
	defer putScratch(sc)
	q := newFrontierQueue(sc, 64)
	// Push with priority prefixes out of order; pops must come back in
	// ascending prefix order, FIFO within equal prefixes.
	q.push(1, 3<<60)
	q.push(2, 1<<60)
	q.push(3, 2<<60)
	q.push(4, 1<<60)
	// Prefix 1 first (2 then 4, FIFO), then prefix 2 (3), then 3 (1).
	want := []graph.VertexID{2, 4, 3, 1}
	for i, w := range want {
		v, ok := q.pop()
		if !ok || v != w {
			t.Fatalf("pop %d = %v (%v), want %v", i, v, ok, w)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestFrontierQueueDedupKeepsLatest(t *testing.T) {
	sc := getScratch(16)
	defer putScratch(sc)
	q := newFrontierQueue(sc, 16)
	q.push(5, 2<<60)
	q.push(5, 1<<60) // newer entry with better priority
	v, ok := q.pop()
	if !ok || v != 5 {
		t.Fatalf("pop = %v", v)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("stale duplicate survived")
	}
}

func TestFrontierQueuePeek(t *testing.T) {
	sc := getScratch(8)
	defer putScratch(sc)
	q := newFrontierQueue(sc, 8)
	if _, ok := q.peek(); ok {
		t.Fatal("peek on empty")
	}
	q.push(3, 0)
	if v, ok := q.peek(); !ok || v != 3 {
		t.Fatal("peek failed")
	}
	if v, ok := q.pop(); !ok || v != 3 {
		t.Fatal("pop after peek failed")
	}
}

func TestFrontierQueueEpochIsolation(t *testing.T) {
	// Two queues sharing one pooled scratch must not see each other's
	// stamps.
	sc := getScratch(8)
	q1 := newFrontierQueue(sc, 8)
	q1.push(1, 0)
	putScratch(sc)
	sc2 := getScratch(8)
	defer putScratch(sc2)
	q2 := newFrontierQueue(sc2, 8)
	if _, ok := q2.pop(); ok {
		t.Fatal("fresh queue saw stale entries")
	}
	q2.push(1, 0)
	if v, ok := q2.pop(); !ok || v != 1 {
		t.Fatal("fresh push lost")
	}
}

func TestFrontierQueueRandomizedHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(200) + 1
		sc := getScratch(n)
		q := newFrontierQueue(sc, n)
		type pushRec struct {
			v      graph.VertexID
			prefix uint64
			seq    int
		}
		latest := map[graph.VertexID]pushRec{}
		np := rng.Intn(300)
		for i := 0; i < np; i++ {
			v := graph.VertexID(rng.Intn(n))
			prefix := uint64(rng.Intn(4)) << 60
			q.push(v, prefix)
			latest[v] = pushRec{v: v, prefix: prefix, seq: i}
		}
		var want []pushRec
		for _, r := range latest {
			want = append(want, r)
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].prefix != want[j].prefix {
				return want[i].prefix < want[j].prefix
			}
			return want[i].seq < want[j].seq
		})
		for i, r := range want {
			v, ok := q.pop()
			if !ok || v != r.v {
				t.Fatalf("trial %d pop %d = %v, want %v", trial, i, v, r.v)
			}
		}
		if _, ok := q.pop(); ok {
			t.Fatalf("trial %d: queue not drained", trial)
		}
		putScratch(sc)
	}
}

func TestScratchEpochOverflowResets(t *testing.T) {
	var e epochArr32
	e.next(4)
	e.epoch = maxEpoch32
	e.a[2] = e.epoch<<2 | 1
	e.next(4) // must reallocate, not wrap
	if e.epoch != 1 {
		t.Fatalf("epoch after overflow = %d", e.epoch)
	}
	if e.a[2] != 0 {
		t.Fatal("stale entry survived overflow reset")
	}
	var e64 epochArr64
	e64.next(4)
	e64.epoch = maxEpoch64
	e64.next(4)
	if e64.epoch != 1 {
		t.Fatalf("epoch64 after overflow = %d", e64.epoch)
	}
}

func TestCloseMapEpochReuse(t *testing.T) {
	sc := getScratch(8)
	c1 := newCloseMap(sc)
	c1.set(3, T)
	if c1.get(3) != T {
		t.Fatal("set/get broken")
	}
	putScratch(sc)
	sc2 := getScratch(8)
	defer putScratch(sc2)
	c2 := newCloseMap(sc2)
	if c2.get(3) != N {
		t.Fatal("stale close state visible across epochs")
	}
	// Demotion ignored.
	c2.set(3, T)
	c2.set(3, F)
	if c2.get(3) != T {
		t.Fatal("demotion applied")
	}
	st := c2.stats(0)
	if st.PassedVertices != 1 || st.SearchTreeNodes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
