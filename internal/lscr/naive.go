package lscr

import (
	"lscr/internal/graph"
	"lscr/internal/pattern"
)

// Naive answers an LSCR query with the direct DFS/BFS adaptation the
// paper analyses in §3 before introducing UIS: "at least two procedures
// are required". The first procedure searches the space s reaches under
// L, evaluating the substructure constraint on every passed vertex; each
// time it discovers a satisfying vertex v, a second procedure runs from
// v toward t. Neither procedure can revisit vertices within itself, and
// the second is restarted per satisfying vertex — up to |V(S,G)| times —
// which is exactly the O(|V|·(|V|+|E|)) worst case of Theorem 3.1 that
// motivates UIS's recall mechanism.
//
// This function exists as a measurable baseline (see
// BenchmarkNaiveVsUIS); use UIS for real queries.
func Naive(g *graph.Graph, q Query) (bool, Stats, error) {
	if err := validate(g, q); err != nil {
		return false, Stats{}, err
	}
	m, err := pattern.NewMatcher(g, q.Constraint)
	if err != nil {
		return false, Stats{}, err
	}
	n := g.NumVertices()
	st := Stats{Satisfying: graph.NoVertex}
	scck := 0
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	// Procedure 2: plain label-constrained DFS from v to t, fresh visited
	// pass per invocation (the "executed up to |V(S,G)| times" part — an
	// epoch bump on the pooled set, not a fresh |V|-sized allocation).
	reach := func(v graph.VertexID) bool {
		if v == q.Target {
			return true
		}
		sc.vis2.next(n)
		sc.vis2.visit(v)
		stack := sc.queue2[:0]
		defer func() { sc.queue2 = stack }()
		stack = append(stack, v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			rs := g.OutRuns(u)
			for ri, n := 0, rs.Len(); ri < n; ri++ {
				if !q.Labels.Contains(rs.Label(ri)) {
					continue
				}
				for _, e := range rs.Run(ri) {
					if sc.vis2.visited(e.To) {
						continue
					}
					if e.To == q.Target {
						return true
					}
					sc.vis2.visit(e.To)
					stack = append(stack, e.To)
				}
			}
		}
		return false
	}

	// Procedure 1: DFS over the space s reaches under L, checking S per
	// vertex and invoking procedure 2 on hits.
	sc.vis.next(n)
	sc.vis.visit(q.Source)
	st.PassedVertices = 1
	st.SearchTreeNodes = 1
	stack := sc.queue[:0]
	defer func() { sc.queue = stack }()
	stack = append(stack, q.Source)
	scck++
	if m.Check(q.Source) {
		if reach(q.Source) {
			st.SCckCalls = scck
			st.Satisfying = q.Source
			return true, st, nil
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rs := g.OutRuns(u)
		for ri, n := 0, rs.Len(); ri < n; ri++ {
			if !q.Labels.Contains(rs.Label(ri)) {
				continue
			}
			for _, e := range rs.Run(ri) {
				if sc.vis.visited(e.To) {
					continue
				}
				sc.vis.visit(e.To)
				st.PassedVertices++
				st.SearchTreeNodes++
				scck++
				if m.Check(e.To) {
					if reach(e.To) {
						st.SCckCalls = scck
						st.Satisfying = e.To
						return true, st, nil
					}
				}
				stack = append(stack, e.To)
			}
		}
	}
	st.SCckCalls = scck
	return false, st, nil
}
