package lscr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/lcr"
	"lscr/internal/pattern"
	"lscr/internal/testkg"
)

// TestTheorem41 checks Theorem 4.1 on UIS*'s internals: once an LCS
// invocation with B = F returns false, every vertex s reaches under L is
// in a non-N close state.
func TestTheorem41(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(14) + 2
		g := testkg.Random(rng, n, rng.Intn(40), rng.Intn(4)+1)
		L := labelset.Set(rng.Uint64()) & g.LabelUniverse()
		s := graph.VertexID(rng.Intn(n))
		// Pick a target UIS*'s first B=F invocation will fail to find —
		// any vertex s does not reach under L; fall back to an
		// unreachable dummy by construction if all are reachable.
		var target graph.VertexID
		found := false
		for v := 0; v < n; v++ {
			if graph.VertexID(v) != s && !lcr.Reach(g, s, graph.VertexID(v), L) {
				target = graph.VertexID(v)
				found = true
				break
			}
		}
		if !found {
			return true // nothing to test on this instance
		}
		sc := getScratch(n)
		defer putScratch(sc)
		u := &uisStarRun{
			g:     g,
			q:     Query{Source: s, Target: target, Labels: L},
			close: newCloseMap(sc),
			stack: []graph.VertexID{s},
		}
		u.close.set(s, F)
		if ok, err := u.lcs(s, target, false); ok || err != nil {
			return false // target is unreachable; lcs must fail
		}
		for v := 0; v < n; v++ {
			reach := lcr.Reach(g, s, graph.VertexID(v), L)
			nonN := u.close.get(graph.VertexID(v)) != N
			if reach != nonN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem45LinearWork bounds UIS*'s work on exhaustive (false)
// queries: the search-tree size never exceeds 2|V| regardless of
// |V(S,G)|, reflecting the O(|V|+|E|) bound of Theorem 4.5.
func TestTheorem45LinearWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testkg.Random(rng, 200, 700, 4)
	// A constraint matched by many vertices: anything with an out-edge
	// under label 0 to anything.
	cons := manyMatchConstraint(g)
	q := Query{
		Source:     0,
		Target:     graph.VertexID(g.NumVertices() - 1),
		Labels:     labelset.Universe(2), // restrictive: often false
		Constraint: cons,
	}
	_, st, err := UISStar(g, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.SearchTreeNodes > 2*g.NumVertices() {
		t.Fatalf("search tree %d exceeds 2|V| = %d", st.SearchTreeNodes, 2*g.NumVertices())
	}
}

// TestINSLinearWork is the same bound for INS (Theorem 5.5's traversal
// component).
func TestINSLinearWork(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := testkg.Random(rng, 200, 700, 4)
	idx := NewLocalIndex(g, IndexParams{Seed: 3})
	q := Query{
		Source:     0,
		Target:     graph.VertexID(g.NumVertices() - 1),
		Labels:     labelset.Universe(2),
		Constraint: manyMatchConstraint(g),
	}
	_, st, err := INS(g, idx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.SearchTreeNodes > 2*g.NumVertices() {
		t.Fatalf("search tree %d exceeds 2|V| = %d", st.SearchTreeNodes, 2*g.NumVertices())
	}
}

// TestConcurrentQueries exercises the pooled scratch state under
// parallel queries on a shared graph and index (run with -race).
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testkg.Random(rng, 300, 1000, 5)
	idx := NewLocalIndex(g, IndexParams{Seed: 11})
	cons := manyMatchConstraint(g)

	type job struct {
		q    Query
		want bool
	}
	var jobs []job
	for i := 0; i < 24; i++ {
		q := Query{
			Source:     graph.VertexID(rng.Intn(g.NumVertices())),
			Target:     graph.VertexID(rng.Intn(g.NumVertices())),
			Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
			Constraint: cons,
		}
		want, _, err := UIS(g, q)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{q, want})
	}
	done := make(chan error, len(jobs)*3)
	for _, j := range jobs {
		j := j
		go func() {
			got, _, err := UIS(g, j.q)
			if err == nil && got != j.want {
				err = errMismatch
			}
			done <- err
		}()
		go func() {
			got, _, err := UISStar(g, j.q, nil)
			if err == nil && got != j.want {
				err = errMismatch
			}
			done <- err
		}()
		go func() {
			got, _, err := INS(g, idx, j.q, nil)
			if err == nil && got != j.want {
				err = errMismatch
			}
			done <- err
		}()
	}
	for i := 0; i < len(jobs)*3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query answer mismatch" }

// manyMatchConstraint builds "?x -l0-> ?y", matched by every vertex with
// a label-0 out-edge.
func manyMatchConstraint(g *graph.Graph) *pattern.Constraint {
	return &pattern.Constraint{
		Focus: "x",
		Patterns: []pattern.TriplePattern{
			{Subject: pattern.V("x"), Label: 0, Object: pattern.V("y")},
		},
	}
}
