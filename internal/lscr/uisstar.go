package lscr

import (
	"lscr/internal/graph"
	"lscr/internal/pattern"
)

// UISStar answers the LSCR query q on g with Algorithm 2 (UIS*): it
// obtains V(S,G) from the SPARQL-engine layer (the pattern matcher) and
// then verifies, per satisfying vertex v, the existence of s -L-> v and
// v -L-> t with the LCS subroutine, sharing one global stack and one
// close surjection across invocations so each vertex of G is processed at
// most twice (Theorem 4.5: O(|V|+|E|)).
//
// vsOrder optionally supplies a precomputed V(S,G); pass nil to let the
// engine compute it. The paper treats V(S,G) as disordered (§4); the
// order supplied here is the order the loop processes.
func UISStar(g *graph.Graph, q Query, vsOrder []graph.VertexID) (bool, Stats, error) {
	return uisStarImpl(g, q, vsOrder, nil)
}

// UISStarTraced is UISStar with a Tracer observing close-state
// transitions and LCS invocation boundaries (Figures 6 and 7).
func UISStarTraced(g *graph.Graph, q Query, vsOrder []graph.VertexID, tr Tracer) (bool, Stats, error) {
	return uisStarImpl(g, q, vsOrder, tr)
}

func uisStarImpl(g *graph.Graph, q Query, vsOrder []graph.VertexID, tr Tracer) (bool, Stats, error) {
	if err := validate(g, q); err != nil {
		return false, Stats{}, err
	}
	vs := vsOrder
	if vs == nil {
		m, err := pattern.NewMatcher(g, q.Constraint)
		if err != nil {
			return false, Stats{}, err
		}
		vs = m.MatchAll()
	}

	sc := getScratch(g.NumVertices())
	defer putScratch(sc)
	u := &uisStarRun{
		g:     g,
		q:     q,
		close: newCloseMap(sc),
		stack: []graph.VertexID{q.Source}, // Line 1: global stack with s.
		tr:    tr,
		ic:    interruptCheck{fn: q.Interrupt},
	}
	u.close.set(q.Source, F) // Line 2.
	if tr != nil {
		tr.Transition(q.Source, F, graph.NoVertex, 0, false)
	}

	// Lines 3-12.
	for _, v := range vs {
		if err := u.ic.tick(); err != nil {
			return false, Stats{}, err
		}
		switch u.close.get(v) {
		case N:
			if v == q.Source || v == q.Target {
				// Line 5-6: v satisfies S and coincides with an endpoint,
				// so the query reduces to plain LCR reachability.
				ok, err := u.lcs(q.Source, q.Target, false)
				if err != nil {
					return false, Stats{}, err
				}
				if ok {
					return true, u.close.statsSat(0, v), nil
				}
				return false, u.close.stats(0), nil
			}
			ok, err := u.lcs(q.Source, v, false) // Line 7: s -L-> v?
			if err != nil {
				return false, Stats{}, err
			}
			if ok {
				tail := v == q.Target
				if !tail {
					if tail, err = u.lcs(v, q.Target, true); err != nil { // Line 8: v -L-> t?
						return false, Stats{}, err
					}
				}
				if tail {
					return true, u.close.statsSat(0, v), nil
				}
			}
		case F:
			// s -L-> v is already known. If v is the target, the path
			// from s to v itself passes the satisfying vertex v. (The
			// paper's Line 11 would run LCS(v,t,L,T), which misses this
			// zero-length case; see DESIGN.md.)
			if v == q.Target {
				return true, u.close.statsSat(0, v), nil
			}
			ok, err := u.lcs(v, q.Target, true) // Lines 10-12.
			if err != nil {
				return false, Stats{}, err
			}
			if ok {
				return true, u.close.statsSat(0, v), nil
			}
		case T:
			// s -L,S-> v is known and the exhaustive T-phase that marked
			// it did not reach t; nothing further to do for v.
		}
	}
	return false, u.close.stats(0), nil
}

// uisStarRun carries the global state shared by LCS invocations.
type uisStarRun struct {
	g     *graph.Graph
	q     Query
	close *closeMap
	stack []graph.VertexID
	tr    Tracer
	ic    interruptCheck
}

// lcs is the LCS(s*, t*, L, B) function of Algorithm 2 (Lines 14-24),
// evaluating s* -L-> t* on the shared stack. With fromSat (B = T) the
// frontier is marked T and may re-explore F vertices; without it (B = F)
// only N vertices are explored and marked F. A non-nil error is an
// interrupt (the query's Interrupt fired) and aborts the whole search.
func (u *uisStarRun) lcs(sStar, tStar graph.VertexID, fromSat bool) (bool, error) {
	if sStar == tStar && !fromSat {
		// LCR-reachability of a vertex from itself is trivially true.
		return true, nil
	}
	if u.tr != nil {
		u.tr.Invocation(sStar, tStar, fromSat)
	}
	if fromSat {
		// Line 15-16.
		u.close.set(sStar, T)
		u.stack = append(u.stack, sStar)
		if u.tr != nil {
			u.tr.Transition(sStar, T, graph.NoVertex, 0, false)
		}
		if sStar == tStar {
			return true, nil
		}
	}
	// Line 17: while (B=F ∧ S≠φ) or (B = close[S.first] = T).
	for len(u.stack) > 0 {
		top := u.stack[len(u.stack)-1]
		if fromSat && u.close.get(top) != T {
			break
		}
		u.stack = u.stack[:len(u.stack)-1] // Line 18: take u.
		rs := u.g.OutRuns(top)
		// Tick the run scan up front: cancellation must stay prompt even
		// when every run is rejected by the label constraint.
		if err := u.ic.tickN(rs.Len()); err != nil {
			return false, err
		}
		for ri, n := 0, rs.Len(); ri < n; ri++ {
			if !u.q.Labels.Contains(rs.Label(ri)) {
				continue
			}
			run := rs.Run(ri)
			if err := u.ic.tickN(len(run)); err != nil {
				return false, err
			}
			for _, e := range run {
				w := e.To
				// Line 20: case 1 (B=T ∧ close[w]≠T) or case 2 (B=F ∧ close[w]=N).
				if fromSat && u.close.get(w) != T || !fromSat && u.close.get(w) == N {
					if fromSat {
						u.close.set(w, T)
					} else {
						u.close.set(w, F)
					}
					u.stack = append(u.stack, w)
					if u.tr != nil {
						u.tr.Transition(w, u.close.get(w), top, e.Label, false)
					}
					if w == tStar { // Lines 22-23.
						// Re-push the partially scanned vertex so a later
						// invocation rescans its remaining edges (the paper
						// removes elements from S only once "passed", i.e.
						// fully processed — Figure 6(b)).
						if !fromSat {
							u.stack = append(u.stack, top)
						}
						return true, nil
					}
				}
			}
		}
	}
	// Line 24: pop the elements this T-phase pushed (their close is T);
	// the F-residue below them stays for later invocations.
	for len(u.stack) > 0 && u.close.get(u.stack[len(u.stack)-1]) == T {
		u.stack = u.stack[:len(u.stack)-1]
	}
	return false, nil
}
