package lscr

import "lscr/internal/graph"

// frontierQueue is the priority queue Q of Algorithm 4, specialised for
// the hot path: items are 16 bytes (packed uint64 key + vertex), the heap
// is hand-rolled, and the paper's "delete the first added element"
// duplicate rule is a per-vertex sequence stamp checked at pop.
//
// Key layout (smaller pops first), from the high bit down:
//
//	bit 62     close[v] != T            — rule (i): T-marked first
//	bits 61-60 region/landmark rank     — rules (ii)+(iii)
//	bits 59-34 encoded ρ(v, t*)         — rule (iv)
//	bit 33     region landmark explored — rule (v)
//	bits 32-0  insertion sequence       — rule (vi): FIFO
//
// Keys are snapshots: a vertex whose state changes is re-pushed by the
// search (its old entry dies by the stamp rule), so no revalidation pass
// is needed.
type frontierQueue struct {
	h     []fqItem
	stamp *epochArr64 // newest insertion (epoch<<33 | seq) per vertex
	seq   uint64
}

type fqItem struct {
	key uint64
	v   graph.VertexID
}

const (
	fqRhoMax  = 1<<26 - 1
	fqSeqMask = 1<<33 - 1
)

// newFrontierQueue prepares the scratch-resident queue over the pooled
// stamp array of s. Both the queue struct and its heap backing array live
// in the per-query scratch, so steady-state INS queries allocate no heap
// storage at all — the backing array's capacity survives pool round trips
// and is simply truncated here.
func newFrontierQueue(s *scratch, n int) *frontierQueue {
	s.stamp.next(n)
	q := &s.fq
	q.h = q.h[:0]
	q.stamp = &s.stamp
	q.seq = 0
	return q
}

// push inserts v with the given packed priority prefix (bits 62-33 of the
// final key; the sequence suffix is appended here).
func (q *frontierQueue) push(v graph.VertexID, prefix uint64) {
	q.seq++
	q.stamp.a[v] = q.stamp.epoch<<33 | q.seq
	key := prefix | (q.seq & fqSeqMask)
	q.h = append(q.h, fqItem{key: key, v: v})
	q.up(len(q.h) - 1)
}

// peek returns the best live element without removing it, discarding
// superseded duplicates.
func (q *frontierQueue) peek() (graph.VertexID, bool) {
	for len(q.h) > 0 {
		top := q.h[0]
		if q.stamp.a[top.v] == q.stamp.epoch<<33|(top.key&fqSeqMask) {
			return top.v, true
		}
		q.popTop()
	}
	return 0, false
}

// pop removes and returns the best live element.
func (q *frontierQueue) pop() (graph.VertexID, bool) {
	v, ok := q.peek()
	if !ok {
		return 0, false
	}
	q.popTop()
	return v, true
}

func (q *frontierQueue) popTop() {
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h = q.h[:n]
	if n > 0 {
		q.down(0)
	}
}

func (q *frontierQueue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if q.h[p].key <= q.h[i].key {
			break
		}
		q.h[p], q.h[i] = q.h[i], q.h[p]
		i = p
	}
}

func (q *frontierQueue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.h[r].key < q.h[l].key {
			m = r
		}
		if q.h[i].key <= q.h[m].key {
			return
		}
		q.h[i], q.h[m] = q.h[m], q.h[i]
		i = m
	}
}
