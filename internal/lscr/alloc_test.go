package lscr

import (
	"math/rand"
	"testing"

	"lscr/internal/graph"
	"lscr/internal/pattern"
	"lscr/internal/testkg"
)

// insAllocFixture builds a query whose INS run explores a large frontier
// under a small V(S,G): the worst case for per-query heap allocation in
// the frontier queue Q, which the scratch pool is supposed to absorb.
func insAllocFixture(tb testing.TB) (*graph.Graph, *LocalIndex, Query, []graph.VertexID) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	g := testkg.Random(rng, 4000, 24000, 6)
	idx := NewLocalIndex(g, IndexParams{K: 40, Seed: 3})
	// A constraint anchored on one constant keeps V(S,G) (and so the H
	// heap) small while the false answer forces Q to drain the whole
	// reachable frontier.
	var c *pattern.Constraint
	var vs []graph.VertexID
	for seed := int64(0); ; seed++ {
		r := rand.New(rand.NewSource(seed))
		cand := &pattern.Constraint{
			Focus: "x",
			Patterns: []pattern.TriplePattern{{
				Subject: pattern.V("x"),
				Label:   graph.Label(r.Intn(g.NumLabels())),
				Object:  pattern.C(graph.VertexID(r.Intn(g.NumVertices()))),
			}},
		}
		m, err := pattern.NewMatcher(g, cand)
		if err != nil {
			tb.Fatal(err)
		}
		if got := m.MatchAll(); len(got) >= 1 && len(got) <= 8 {
			c, vs = cand, got
			break
		}
	}
	q := Query{
		Source: 0,
		Target: graph.VertexID(g.NumVertices() - 1),
		Labels: g.LabelUniverse(),
	}
	q.Constraint = c
	return g, idx, q, vs
}

// maxINSSteadyStateAllocs bounds the per-query allocations of a warmed-up
// INS run with a precomputed V(S,G). The steady state allocates only the
// small fixed set of per-run objects (insRun, closeMap, the H lazyPQ and
// its few-element heap); the frontier queue's heap backing lives in the
// pooled scratch. Before the scratch pool absorbed Q's heap, growing it
// to a multi-thousand-vertex frontier cost ~10 extra allocations per
// query — comfortably above this bound.
const maxINSSteadyStateAllocs = 12

func TestINSFrontierHeapPooled(t *testing.T) {
	g, idx, q, vs := insAllocFixture(t)
	run := func() {
		if _, _, err := INS(g, idx, q, vs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run() // warm the scratch pool (and its frontier heap capacity)
	}
	if avg := testing.AllocsPerRun(50, run); avg > maxINSSteadyStateAllocs {
		t.Errorf("warmed INS query allocates %.1f objects/run, want <= %d (frontier heap not pooled?)",
			avg, maxINSSteadyStateAllocs)
	}
}

// BenchmarkINSAllocs reports allocs/op for the same fixture so the
// trajectory is visible in benchmark output (go test -bench INSAllocs
// -benchmem).
func BenchmarkINSAllocs(b *testing.B) {
	g, idx, q, vs := insAllocFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := INS(g, idx, q, vs); err != nil {
			b.Fatal(err)
		}
	}
}
