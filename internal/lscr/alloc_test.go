package lscr

import (
	"math/rand"
	"testing"

	"lscr/internal/graph"
	"lscr/internal/pattern"
	"lscr/internal/testkg"
)

// insAllocFixture builds a query whose INS run explores a large frontier
// under a small V(S,G): the worst case for per-query heap allocation in
// the frontier queue Q, which the scratch pool is supposed to absorb.
func insAllocFixture(tb testing.TB) (*graph.Graph, *LocalIndex, Query, []graph.VertexID) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	g := testkg.Random(rng, 4000, 24000, 6)
	idx := NewLocalIndex(g, IndexParams{K: 40, Seed: 3})
	// A constraint anchored on one constant keeps V(S,G) (and so the H
	// heap) small while the false answer forces Q to drain the whole
	// reachable frontier.
	var c *pattern.Constraint
	var vs []graph.VertexID
	for seed := int64(0); ; seed++ {
		r := rand.New(rand.NewSource(seed))
		cand := &pattern.Constraint{
			Focus: "x",
			Patterns: []pattern.TriplePattern{{
				Subject: pattern.V("x"),
				Label:   graph.Label(r.Intn(g.NumLabels())),
				Object:  pattern.C(graph.VertexID(r.Intn(g.NumVertices()))),
			}},
		}
		m, err := pattern.NewMatcher(g, cand)
		if err != nil {
			tb.Fatal(err)
		}
		if got := m.MatchAll(); len(got) >= 1 && len(got) <= 8 {
			c, vs = cand, got
			break
		}
	}
	q := Query{
		Source: 0,
		Target: graph.VertexID(g.NumVertices() - 1),
		Labels: g.LabelUniverse(),
	}
	q.Constraint = c
	return g, idx, q, vs
}

// maxINSSteadyStateAllocs bounds the per-query allocations of a warmed-up
// INS run with a precomputed V(S,G). The steady state allocates only the
// small fixed set of per-run objects (insRun, closeMap, the H lazyPQ and
// its few-element heap); the frontier queue's heap backing lives in the
// pooled scratch. Before the scratch pool absorbed Q's heap, growing it
// to a multi-thousand-vertex frontier cost ~10 extra allocations per
// query — comfortably above this bound.
const maxINSSteadyStateAllocs = 12

func TestINSFrontierHeapPooled(t *testing.T) {
	g, idx, q, vs := insAllocFixture(t)
	run := func() {
		if _, _, err := INS(g, idx, q, vs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run() // warm the scratch pool (and its frontier heap capacity)
	}
	if avg := testing.AllocsPerRun(50, run); avg > maxINSSteadyStateAllocs {
		t.Errorf("warmed INS query allocates %.1f objects/run, want <= %d (frontier heap not pooled?)",
			avg, maxINSSteadyStateAllocs)
	}
}

// witnessAllocFixture builds a true query on a mid-size random graph
// and resolves its satisfying anchor, so FindWitness has real two-leg
// paths to reconstruct.
func witnessAllocFixture(tb testing.TB) (*graph.Graph, Query, graph.VertexID) {
	tb.Helper()
	rng := rand.New(rand.NewSource(11))
	g := testkg.Random(rng, 3000, 18000, 5)
	matchAll := &pattern.Constraint{
		Focus:    "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: 0, Object: pattern.V("y")}},
	}
	for s := 0; s < g.NumVertices(); s++ {
		for t := g.NumVertices() - 1; t > s; t-- {
			q := Query{
				Source: graph.VertexID(s), Target: graph.VertexID(t),
				Labels: g.LabelUniverse(), Constraint: matchAll,
			}
			ans, st, err := UIS(g, q)
			if err != nil {
				tb.Fatal(err)
			}
			if ans && st.Satisfying != q.Source && st.Satisfying != q.Target {
				return g, q, st.Satisfying
			}
		}
	}
	tb.Fatal("no true query with an interior anchor found")
	return nil, Query{}, 0
}

// maxWitnessSteadyStateAllocs bounds the per-call allocations of a
// warmed-up FindWitness. The only remaining allocations are the
// returned hop slices (the two legs' reversal buffers, their
// concatenation and the Witness struct) — the visited set, parent table
// and BFS queue live in the pooled scratch. Before the fix every call
// allocated two |V|-sized []bool plus two parent maps, so this bound
// also pins the O(1)-vs-O(|V|) regression.
const maxWitnessSteadyStateAllocs = 12

func TestWitnessReconstructionPooled(t *testing.T) {
	g, q, vStar := witnessAllocFixture(t)
	run := func() {
		w, ok := FindWitness(g, q.Source, q.Target, vStar, q.Labels)
		if !ok || w == nil {
			t.Fatal("witness vanished")
		}
	}
	for i := 0; i < 5; i++ {
		run() // warm the scratch pool
	}
	if avg := testing.AllocsPerRun(50, run); avg > maxWitnessSteadyStateAllocs {
		t.Errorf("warmed FindWitness allocates %.1f objects/run, want <= %d (visited set not pooled?)",
			avg, maxWitnessSteadyStateAllocs)
	}
}

// maxNaiveSteadyStateAllocs bounds a warmed-up Naive run on the INS
// fixture (false answer, whole frontier drained, inner procedure run
// per satisfying vertex). The per-call matcher construction accounts
// for the fixed handful; the visited sets and both DFS stacks are
// pooled, so the bound no longer scales with |V|.
const maxNaiveSteadyStateAllocs = 24

func TestNaiveVisitedPooled(t *testing.T) {
	g, _, q, _ := insAllocFixture(t)
	run := func() {
		if _, _, err := Naive(g, q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(20, run); avg > maxNaiveSteadyStateAllocs {
		t.Errorf("warmed Naive query allocates %.1f objects/run, want <= %d (visited sets not pooled?)",
			avg, maxNaiveSteadyStateAllocs)
	}
}

// BenchmarkWitnessAllocs tracks the trajectory in benchmark output
// (go test -bench WitnessAllocs -benchmem).
func BenchmarkWitnessAllocs(b *testing.B) {
	g, q, vStar := witnessAllocFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FindWitness(g, q.Source, q.Target, vStar, q.Labels); !ok {
			b.Fatal("witness vanished")
		}
	}
}

// BenchmarkINSAllocs reports allocs/op for the same fixture so the
// trajectory is visible in benchmark output (go test -bench INSAllocs
// -benchmem).
func BenchmarkINSAllocs(b *testing.B) {
	g, idx, q, vs := insAllocFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := INS(g, idx, q, vs); err != nil {
			b.Fatal(err)
		}
	}
}
