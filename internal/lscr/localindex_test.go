package lscr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/lcr"
	"lscr/internal/pattern"
	"lscr/internal/testkg"
)

func TestDefaultKValues(t *testing.T) {
	if DefaultK(0) != 0 {
		t.Error("DefaultK(0) != 0")
	}
	if DefaultK(1) != 1 {
		t.Errorf("DefaultK(1) = %d", DefaultK(1))
	}
	// log2(1024)*sqrt(1024) = 10*32 = 320.
	if got := DefaultK(1024); got != 320 {
		t.Errorf("DefaultK(1024) = %d, want 320", got)
	}
	if got := DefaultK(4); got > 4 {
		t.Errorf("DefaultK(4) = %d exceeds |V|", got)
	}
}

func TestLandmarkCountAndRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testkg.Random(rng, 50, 150, 4)
	idx := NewLocalIndex(g, IndexParams{K: 7, Seed: 9})
	if len(idx.Landmarks()) != 7 {
		t.Fatalf("landmarks = %d, want 7", len(idx.Landmarks()))
	}
	for _, u := range idx.Landmarks() {
		if !idx.IsLandmark(u) {
			t.Errorf("IsLandmark(%d) = false", u)
		}
		if idx.Region(u) != u {
			t.Errorf("landmark %d not in its own region (AF=%v)", u, idx.Region(u))
		}
	}
}

// TestBFSTraversePartition: every assigned vertex must be reachable from
// its region landmark (unconstrained), because BFSTraverse only extends a
// region along edges from vertices already in it.
func TestBFSTraversePartition(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		g := testkg.Random(rng, n, rng.Intn(80), rng.Intn(4)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(n) + 1, Seed: seed})
		for v := 0; v < n; v++ {
			u := idx.Region(graph.VertexID(v))
			if u == graph.NoVertex {
				continue
			}
			if !idx.IsLandmark(u) {
				return false
			}
			if !lcr.Reach(g, u, graph.VertexID(v), g.LabelUniverse()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// regionSubgraph extracts F(u) as a standalone graph, with idMap mapping
// original IDs to subgraph IDs.
func regionSubgraph(g *graph.Graph, idx *LocalIndex, u graph.VertexID) (*graph.Graph, map[graph.VertexID]graph.VertexID) {
	b := graph.NewBuilder()
	idMap := map[graph.VertexID]graph.VertexID{}
	for v := 0; v < g.NumVertices(); v++ {
		if idx.Region(graph.VertexID(v)) == u {
			idMap[graph.VertexID(v)] = b.Vertex(g.VertexName(graph.VertexID(v)))
		}
	}
	for i := 0; i < g.NumLabels(); i++ {
		b.Label(g.LabelName(graph.Label(i)))
	}
	g.Triples(func(tr graph.Triple) bool {
		s, okS := idMap[tr.Subject]
		o, okO := idMap[tr.Object]
		if okS && okO {
			b.AddEdge(s, tr.Label, o)
		}
		return true
	})
	return b.Build(), idMap
}

// TestIIConsistency is Theorem 5.2: II[u][v] must equal M(u, v | F(u))
// computed independently on the extracted region subgraph.
func TestIIConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		g := testkg.Random(rng, n, rng.Intn(60), rng.Intn(4)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(4) + 1, Seed: seed})
		for _, u := range idx.Landmarks() {
			sub, idMap := regionSubgraph(g, idx, u)
			want := lcr.SourceCMS(sub, idMap[u])
			for v, subID := range idMap {
				got := idx.II(u, v)
				w := want[subID]
				if (got == nil) != (w == nil) {
					return false
				}
				if got != nil && !got.Equal(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestEITSoundness is Theorem 5.1: for every EIT[u] pair (L, V) and every
// v ∈ V, the label set L must witness u -L-> v in the full graph.
func TestEITSoundness(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		g := testkg.Random(rng, n, rng.Intn(60), rng.Intn(4)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(4) + 1, Seed: seed})
		for _, u := range idx.Landmarks() {
			for _, e := range idx.eitSorted[idx.lmIdx[u]] {
				for _, w := range e.ws {
					if !lcr.Reach(g, u, w, e.key) {
						return false
					}
					if idx.Region(w) == u {
						return false // EIT targets must be outside F(u)
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestEITCompleteness: every boundary edge (v, l, w) with v ∈ F(u) and
// w ∉ F(u) must be represented — some EIT key ⊆ (labels of a region path
// to v) ∪ {l} maps to w.
func TestEITCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testkg.Random(rng, 25, 70, 3)
	idx := NewLocalIndex(g, IndexParams{K: 3, Seed: 5})
	for _, u := range idx.Landmarks() {
		g.Triples(func(tr graph.Triple) bool {
			if idx.Region(tr.Subject) != u || idx.Region(tr.Object) == u {
				return true
			}
			// Some EIT entry must name tr.Object.
			found := false
			for _, e := range idx.eitSorted[idx.lmIdx[u]] {
				for _, w := range e.ws {
					if w == tr.Object {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("boundary edge %v -> %v of region %d missing from EIT", tr.Subject, tr.Object, u)
			}
			return true
		})
	}
}

func TestDConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := testkg.Random(rng, 30, 90, 3)
	idx := NewLocalIndex(g, IndexParams{K: 4, Seed: 7})
	for _, u := range idx.Landmarks() {
		for _, x := range idx.Landmarks() {
			d := idx.D(u, x)
			if d < 0 {
				t.Fatalf("negative D(%d,%d)", u, x)
			}
			// D counts boundary targets of EI[u] inside F(x): recount.
			targets := map[graph.VertexID]bool{}
			for _, e := range idx.eitSorted[idx.lmIdx[u]] {
				for _, w := range e.ws {
					targets[w] = true
				}
			}
			count := 0
			for w := range targets {
				if idx.Region(w) == x {
					count++
				}
			}
			if count != d {
				t.Errorf("D(%d,%d) = %d, recount %d", u, x, d, count)
			}
		}
	}
}

func TestRhoOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := testkg.Random(rng, 30, 90, 3)
	idx := NewLocalIndex(g, IndexParams{K: 4, Seed: 7})
	// Same-region pairs must look closest.
	var sameRegion, crossRegion []int
	for v := 0; v < g.NumVertices(); v++ {
		for w := 0; w < g.NumVertices(); w++ {
			rv, rw := idx.Region(graph.VertexID(v)), idx.Region(graph.VertexID(w))
			if rv == graph.NoVertex || rw == graph.NoVertex {
				continue
			}
			rho := idx.Rho(graph.VertexID(v), graph.VertexID(w))
			if rv == rw {
				sameRegion = append(sameRegion, rho)
			} else {
				crossRegion = append(crossRegion, rho)
			}
		}
	}
	for _, s := range sameRegion {
		for _, c := range crossRegion {
			if s > c {
				t.Fatalf("same-region rho %d worse than cross-region %d", s, c)
			}
		}
	}
}

// TestINSPrunesViaIndex builds a graph where the only route to the
// target runs through a landmark's region: INS must answer without ever
// expanding the region interior edge-by-edge, i.e. with strictly fewer
// search-tree nodes than UIS*.
func TestINSPrunesViaIndex(t *testing.T) {
	b := graph.NewBuilder()
	p := b.Label("p")
	s := b.Vertex("s")
	lm := b.Vertex("landmark")
	b.AddEdge(s, p, lm)
	// A long chain inside the landmark's region ending at the target.
	prev := lm
	for i := 0; i < 50; i++ {
		nxt := b.Vertex(vn(i))
		b.AddEdge(prev, p, nxt)
		prev = nxt
	}
	target := b.Vertex("target")
	b.AddEdge(prev, p, target)
	// A satisfying vertex adjacent to s.
	mark := b.Label("mark")
	key := b.Vertex("key")
	b.AddEdge(s, mark, key)
	b.Schema().AddInstance("K", lm)
	g := b.Build()

	cons := &pattern.Constraint{Focus: "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: mark, Object: pattern.C(key)}}}
	q := Query{Source: s, Target: target, Labels: g.LabelUniverse(), Constraint: cons}

	idx := NewLocalIndex(g, IndexParams{K: 1, Seed: 1, ClassFraction: 1})
	if idx.Landmarks()[0] != lm {
		t.Fatalf("landmark selection picked %v, want the schema instance", idx.Landmarks())
	}
	ansINS, stINS, err := INS(g, idx, q, nil)
	if err != nil || !ansINS {
		t.Fatalf("INS: %v %v", ansINS, err)
	}
	ansU, stU, err := UISStar(g, q, nil)
	if err != nil || !ansU {
		t.Fatalf("UIS*: %v %v", ansU, err)
	}
	if stINS.SearchTreeNodes >= stU.SearchTreeNodes {
		t.Fatalf("INS did not prune: %d nodes vs UIS* %d", stINS.SearchTreeNodes, stU.SearchTreeNodes)
	}
	// The index short-circuit should answer after a handful of nodes,
	// not after walking the 50-vertex chain.
	if stINS.SearchTreeNodes > 10 {
		t.Fatalf("INS expanded %d nodes; the Check(II) short-circuit should fire early", stINS.SearchTreeNodes)
	}
}

// TestIndexWorkerInvariance: the index is bit-for-bit identical for any
// worker count — same landmarks, regions, II CMSes, EIT maps and D
// matrix, not just matching summary statistics.
func TestIndexWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := testkg.Random(rng, 80, 240, 4)
	seq := NewLocalIndex(g, IndexParams{K: 9, Seed: 5, Workers: 1})
	for _, workers := range []int{2, 4, 16} {
		par := NewLocalIndex(g, IndexParams{K: 9, Seed: 5, Workers: workers})
		if par.Entries() != seq.Entries() || par.SizeBytes() != seq.SizeBytes() {
			t.Fatalf("workers=%d produced a different index", workers)
		}
		if !reflect.DeepEqual(par.landmarks, seq.landmarks) {
			t.Fatalf("workers=%d: landmark sets differ", workers)
		}
		if !reflect.DeepEqual(par.af, seq.af) {
			t.Fatalf("workers=%d: region assignment differs", workers)
		}
		if !reflect.DeepEqual(par.dmat, seq.dmat) {
			t.Fatalf("workers=%d: D matrix differs", workers)
		}
		if !reflect.DeepEqual(par.eitSorted, seq.eitSorted) {
			t.Fatalf("workers=%d: EIT differs", workers)
		}
		for _, u := range seq.Landmarks() {
			for v := 0; v < g.NumVertices(); v++ {
				a, b := seq.II(u, graph.VertexID(v)), par.II(u, graph.VertexID(v))
				if (a == nil) != (b == nil) || (a != nil && !a.Equal(b)) {
					t.Fatalf("workers=%d: II differs at (%d,%d)", workers, u, v)
				}
			}
		}
	}
}

// TestIndexWorkerInvarianceAnswers: beyond structural equality, the
// sequential and parallel indexes must answer a random INS workload
// identically, and identically to UIS (the index-free ground truth).
func TestIndexWorkerInvarianceAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 3; trial++ {
		n := 40 + trial*25
		g := testkg.Random(rng, n, 3*n+trial*40, 4)
		seq := NewLocalIndex(g, IndexParams{K: 7, Seed: 13, Workers: 1})
		par := NewLocalIndex(g, IndexParams{K: 7, Seed: 13, Workers: 4})
		// "?x has an outgoing l0 edge" — satisfiable on any dense random KG.
		cons := &pattern.Constraint{
			Focus: "x",
			Patterns: []pattern.TriplePattern{
				{Subject: pattern.V("x"), Label: graph.Label(0), Object: pattern.V("y")},
			},
		}
		m, err := pattern.NewMatcher(g, cons)
		if err != nil {
			t.Fatal(err)
		}
		vs := m.MatchAll()
		for i := 0; i < 40; i++ {
			q := Query{
				Source:     graph.VertexID(rng.Intn(n)),
				Target:     graph.VertexID(rng.Intn(n)),
				Labels:     g.LabelUniverse().Remove(labelset.Label(rng.Intn(4))),
				Constraint: cons,
			}
			want, _, err := UIS(g, q)
			if err != nil {
				t.Fatal(err)
			}
			a, _, err := INS(g, seq, q, vs)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := INS(g, par, q, vs)
			if err != nil {
				t.Fatal(err)
			}
			if a != want || b != want {
				t.Fatalf("trial %d query %d: UIS=%v INS(seq)=%v INS(par)=%v", trial, i, want, a, b)
			}
		}
	}
}

func TestIndexDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := testkg.Random(rng, 40, 120, 4)
	a := NewLocalIndex(g, IndexParams{K: 5, Seed: 77})
	b := NewLocalIndex(g, IndexParams{K: 5, Seed: 77})
	if len(a.Landmarks()) != len(b.Landmarks()) {
		t.Fatal("landmark counts differ")
	}
	for i := range a.Landmarks() {
		if a.Landmarks()[i] != b.Landmarks()[i] {
			t.Fatal("landmark sets differ for equal seeds")
		}
	}
	if a.Entries() != b.Entries() || a.SizeBytes() != b.SizeBytes() {
		t.Fatal("index contents differ for equal seeds")
	}
}

func TestIndexSchemaDrivenSelection(t *testing.T) {
	// Landmarks must come from schema instances when the schema is rich
	// enough, not from raw degree.
	b := graph.NewBuilder()
	hub := b.Vertex("hub") // degree-heavy vertex, not an instance
	p := b.Label("p")
	for i := 0; i < 20; i++ {
		v := b.Vertex(vn(i))
		b.AddEdge(hub, p, v)
		b.AddEdge(v, p, hub)
		b.Schema().AddInstance("K", v)
	}
	g := b.Build()
	idx := NewLocalIndex(g, IndexParams{K: 4, Seed: 1, ClassFraction: 1})
	for _, u := range idx.Landmarks() {
		if u == hub {
			t.Fatal("degree-based hub chosen despite schema instances")
		}
		if !g.Schema().IsInstance(u, "K") {
			t.Fatalf("landmark %d is not a schema instance", u)
		}
	}
}

func vn(i int) string { return "w" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestIndexAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := testkg.Random(rng, 30, 90, 3)
	idx := NewLocalIndex(g, IndexParams{K: 3, Seed: 7})
	if idx.Entries() <= 0 || idx.SizeBytes() <= 0 {
		t.Fatal("index accounting not positive")
	}
}

func TestCheckAndEntriesHelpers(t *testing.T) {
	g, ids := testkg.RunningExample()
	// One landmark = whole reachable region from it.
	idx := NewLocalIndex(g, IndexParams{K: 1, Seed: 3})
	u := idx.Landmarks()[0]
	all := g.LabelUniverse()
	// Check must agree with within-region reachability; at minimum the
	// landmark reaches itself under any constraint.
	if !idx.Check(u, u, 0) {
		t.Error("Check(u,u,∅) = false")
	}
	count := 0
	idx.IIEntries(u, all, func(v graph.VertexID) { count++ })
	if count == 0 {
		t.Error("IIEntries produced nothing under the full universe")
	}
	_ = ids
	var outside int
	idx.EITEntries(u, all, func(v graph.VertexID) { outside++ })
	// With one landmark whose region is its reachable set, EIT may be
	// empty; just ensure the call is safe and consistent with eit size.
	want := 0
	for _, e := range idx.eitSorted[idx.lmIdx[u]] {
		want += len(e.ws)
	}
	if outside != want {
		t.Errorf("EITEntries visited %d, want %d", outside, want)
	}
}

func TestLabelsetImportKept(t *testing.T) {
	// Guard: Rho of unassigned vertices is the worst (0 with negation
	// convention), and Check of unknown pairs is false.
	g, _ := testkg.RunningExample()
	idx := NewLocalIndex(g, IndexParams{K: 1, Seed: 3})
	u := idx.Landmarks()[0]
	if idx.Check(u, graph.VertexID(0), labelset.Set(0)) && g.Vertex("v0") != u {
		// Only the landmark itself is reachable under the empty set.
		if idx.Region(0) == u && idx.II(u, 0) != nil && idx.II(u, 0).Covers(0) {
			t.Log("v0 reachable under empty set — acceptable only via empty CMS")
		} else {
			t.Error("Check inconsistent under empty label set")
		}
	}
}
