package lscr

import "math/rand"

func randSrc(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
