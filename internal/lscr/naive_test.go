package lscr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/lcr"
	"lscr/internal/pattern"
	"lscr/internal/testkg"
	"lscr/internal/testkg/pat"
)

func TestNaivePaperCases(t *testing.T) {
	g, s0, cases := paperCases(t)
	ids := map[string]graph.VertexID{}
	for _, n := range []string{"v0", "v1", "v2", "v3", "v4"} {
		ids[n] = g.Vertex(n)
	}
	for _, tc := range cases {
		q := Query{Source: ids[tc.s], Target: ids[tc.t], Labels: tc.L, Constraint: s0}
		got, st, err := Naive(g, q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Naive(%s,%s,%v) = %v, want %v", tc.s, tc.t, tc.L, got, tc.want)
		}
		if got && st.Satisfying == graph.NoVertex {
			t.Error("true answer without witness anchor")
		}
	}
}

// TestNaiveAgreesWithUISProperty: the naive two-procedure baseline and
// UIS must agree everywhere (they solve the same problem; Naive is just
// slower).
func TestNaiveAgreesWithUISProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(14) + 2
		g := testkg.Random(rng, n, rng.Intn(40), rng.Intn(5)+1)
		for probe := 0; probe < 6; probe++ {
			c := pat.RandomConstraint(rng, g, 3)
			q := Query{
				Source:     graph.VertexID(rng.Intn(n)),
				Target:     graph.VertexID(rng.Intn(n)),
				Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
				Constraint: c,
			}
			a, _, err1 := UIS(g, q)
			b, stB, err2 := Naive(g, q)
			if err1 != nil || err2 != nil || a != b {
				return false
			}
			if b {
				// The anchor must be usable for witnesses.
				m, err := pattern.NewMatcher(g, c)
				if err != nil || !m.Check(stB.Satisfying) {
					return false
				}
				if !lcr.Reach(g, q.Source, stB.Satisfying, q.Labels) ||
					!lcr.Reach(g, stB.Satisfying, q.Target, q.Labels) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveErrors(t *testing.T) {
	g, ids := testkg.RunningExample()
	s0 := pat.S0(g, ids)
	if _, _, err := Naive(g, Query{Source: 99, Target: 0, Constraint: s0}); err != ErrBadQuery {
		t.Errorf("out of range: %v", err)
	}
	bad := &pattern.Constraint{Focus: "x"}
	if _, _, err := Naive(g, Query{Source: 0, Target: 1, Constraint: bad}); err == nil {
		t.Error("invalid constraint accepted")
	}
}

// restartHeavyFixture builds the worst-case shape of Theorem 3.1: s
// fans out to many satisfying vertices, each of which reaches a large
// shared component that does NOT contain t, so the naive baseline
// restarts its second procedure per satisfying vertex while UIS's shared
// close state explores the component once.
func restartHeavyFixture(b testing.TB) (*graph.Graph, Query) {
	gb := graph.NewBuilder()
	p := gb.Label("p")
	mark := gb.Label("mark")
	s := gb.Vertex("s")
	key := gb.Vertex("key")
	// The big shared component: a 2000-vertex cycle.
	first := gb.Vertex("c0")
	prev := first
	for i := 1; i < 2000; i++ {
		nxt := gb.Vertex(vn(i))
		gb.AddEdge(prev, p, nxt)
		prev = nxt
	}
	gb.AddEdge(prev, p, first)
	// 200 satisfying vertices off s, all feeding the component.
	for i := 0; i < 200; i++ {
		sat := gb.Vertex("sat" + vn(i))
		gb.AddEdge(s, p, sat)
		gb.AddEdge(sat, p, first)
		gb.AddEdge(sat, mark, key)
	}
	// t exists but is unreachable: a false query, the exhaustive case.
	t := gb.Vertex("t")
	g := gb.Build()
	cons := &pattern.Constraint{Focus: "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: mark, Object: pattern.C(key)}}}
	return g, Query{Source: s, Target: t, Labels: g.LabelUniverse(), Constraint: cons}
}

// BenchmarkNaiveVsUIS quantifies what UIS's recall mechanism buys over
// the §3 baseline on Theorem 3.1's worst-case shape.
func BenchmarkNaiveVsUIS(b *testing.B) {
	g, q := restartHeavyFixture(b)
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ans, _, err := Naive(g, q); err != nil || ans {
				b.Fatal(ans, err)
			}
		}
	})
	b.Run("UIS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ans, _, err := UIS(g, q); err != nil || ans {
				b.Fatal(ans, err)
			}
		}
	})
}

// TestNaiveRestartFixtureAnswers pins both answers on the Theorem 3.1
// fixture (the wall-clock separation itself is what BenchmarkNaiveVsUIS
// measures: the naive baseline re-traverses the shared component once
// per satisfying vertex, UIS once in total).
func TestNaiveRestartFixtureAnswers(t *testing.T) {
	g, q := restartHeavyFixture(t)
	a, _, err := Naive(g, q)
	if err != nil || a {
		t.Fatalf("Naive = %v %v, want false", a, err)
	}
	u, _, err := UIS(g, q)
	if err != nil || u {
		t.Fatalf("UIS = %v %v, want false", u, err)
	}
}
