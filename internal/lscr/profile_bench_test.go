package lscr

import (
	"testing"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/pattern"
	"lscr/internal/testkg"
)

// benchFixture builds a mid-size random KG with a moderately selective
// constraint for algorithm microbenchmarks.
func benchFixture(b *testing.B) (*graph.Graph, *LocalIndex, Query, []graph.VertexID) {
	b.Helper()
	rngSeed := int64(42)
	g := testkg.Random(randSrc(rngSeed), 20000, 70000, 8)
	idx := NewLocalIndex(g, IndexParams{Seed: rngSeed})
	l0 := graph.Label(0)
	cons := &pattern.Constraint{
		Focus:    "x",
		Patterns: []pattern.TriplePattern{{Subject: pattern.V("x"), Label: l0, Object: pattern.C(graph.VertexID(7))}},
	}
	m, err := pattern.NewMatcher(g, cons)
	if err != nil {
		b.Fatal(err)
	}
	vs := m.MatchAll()
	q := Query{
		Source:     graph.VertexID(123),
		Target:     graph.VertexID(19876),
		Labels:     labelset.Universe(6),
		Constraint: cons,
	}
	return g, idx, q, vs
}

func BenchmarkUISMid(b *testing.B) {
	g, _, q, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := UIS(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUISStarMid(b *testing.B) {
	g, _, q, vs := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := UISStar(g, q, vs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkINSMid(b *testing.B) {
	g, idx, q, vs := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := INS(g, idx, q, vs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalIndexBuildSequential(b *testing.B) {
	g := testkg.Random(randSrc(3), 20000, 70000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewLocalIndex(g, IndexParams{Seed: 1, Workers: 1})
	}
}

func BenchmarkLocalIndexBuildParallel(b *testing.B) {
	g := testkg.Random(randSrc(3), 20000, 70000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewLocalIndex(g, IndexParams{Seed: 1})
	}
}

func BenchmarkFindWitness(b *testing.B) {
	g, idx, q, vs := benchFixture(b)
	ans, st, err := INS(g, idx, q, vs)
	if err != nil || !ans {
		b.Skip("fixture query not reachable; witness bench skipped")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FindWitness(g, q.Source, q.Target, st.Satisfying, q.Labels); !ok {
			b.Fatal("witness lost")
		}
	}
}

func BenchmarkUISMulti(b *testing.B) {
	g, _, q, _ := benchFixture(b)
	mq := MultiQuery{
		Source: q.Source, Target: q.Target, Labels: q.Labels,
		Constraints: []*pattern.Constraint{q.Constraint, q.Constraint},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := UISMulti(g, mq); err != nil {
			b.Fatal(err)
		}
	}
}
