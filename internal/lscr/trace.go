package lscr

import (
	"fmt"
	"io"
	"sort"

	"lscr/internal/graph"
)

// Tracer observes search events. The paper visualises them as search
// trees (Definition 3.2, Figures 4, 6 and 7): every close-state
// transition of a vertex is one tree node, attached to the vertex that
// caused it. Tracers must be fast; the algorithms call them on the hot
// path when tracing is enabled.
type Tracer interface {
	// Transition fires when v enters state st. parent is the vertex
	// whose expansion caused it (NoVertex for the root), label the edge
	// label used, and viaIndex reports a local-index marking (INS's
	// Cut/Push) rather than an edge traversal.
	Transition(v graph.VertexID, st State, parent graph.VertexID, label graph.Label, viaIndex bool)
	// Invocation fires when UIS*/INS start an LCS(s*, t*, L, B) call.
	Invocation(sStar, tStar graph.VertexID, fromSat bool)
}

// SearchTree records trace events as the paper's search tree. The zero
// value is ready to use.
type SearchTree struct {
	Nodes []TreeNode
	// Invocations records LCS phase boundaries (UIS*/INS only).
	Invocations []TreeInvocation
}

// TreeNode is one search-tree node: vertex v entered state St.
type TreeNode struct {
	V        graph.VertexID
	St       State
	Parent   graph.VertexID // NoVertex at the root
	Label    graph.Label
	ViaIndex bool
}

// TreeInvocation marks an LCS call boundary.
type TreeInvocation struct {
	SStar, TStar graph.VertexID
	FromSat      bool
	// FirstNode indexes Nodes; nodes from FirstNode on belong to this
	// invocation (until the next one).
	FirstNode int
}

// Transition implements Tracer.
func (t *SearchTree) Transition(v graph.VertexID, st State, parent graph.VertexID, label graph.Label, viaIndex bool) {
	t.Nodes = append(t.Nodes, TreeNode{V: v, St: st, Parent: parent, Label: label, ViaIndex: viaIndex})
}

// Invocation implements Tracer.
func (t *SearchTree) Invocation(sStar, tStar graph.VertexID, fromSat bool) {
	t.Invocations = append(t.Invocations, TreeInvocation{
		SStar: sStar, TStar: tStar, FromSat: fromSat, FirstNode: len(t.Nodes),
	})
}

// NodesPerVertex verifies Definition 3.2's bound: no vertex appears more
// than twice (once per close state). It returns the worst offender count.
func (t *SearchTree) NodesPerVertex() int {
	count := map[graph.VertexID]int{}
	max := 0
	for _, n := range t.Nodes {
		count[n.V]++
		if count[n.V] > max {
			max = count[n.V]
		}
	}
	return max
}

// WriteDOT renders the tree in Graphviz DOT, mirroring Figure 4's
// colour convention: T nodes red, F nodes blue; index-marked transitions
// are dashed. name labels the digraph; resolve maps vertex IDs to names
// (pass nil for numeric labels).
func (t *SearchTree) WriteDOT(w io.Writer, name string, resolve func(graph.VertexID) string) error {
	if resolve == nil {
		resolve = func(v graph.VertexID) string { return fmt.Sprintf("%d", v) }
	}
	var err error
	pr := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("digraph %q {\n  rankdir=TB;\n", name)
	// Node declarations: one per (vertex, state).
	type nk struct {
		v  graph.VertexID
		st State
	}
	seen := map[nk]bool{}
	for _, n := range t.Nodes {
		key := nk{n.V, n.St}
		if seen[key] {
			continue
		}
		seen[key] = true
		color := "blue"
		if n.St == T {
			color = "red"
		}
		pr("  %q [color=%s];\n", nodeID(n.V, n.St, resolve), color)
	}
	// Edges: parent's state at the time is unknown post-hoc; attach to
	// the parent's strongest recorded state at or before this node.
	strongest := map[graph.VertexID]State{}
	for _, n := range t.Nodes {
		if n.Parent != graph.NoVertex {
			ps, ok := strongest[n.Parent]
			if !ok {
				ps = n.St // orphan guard; should not happen
			}
			style := "solid"
			if n.ViaIndex {
				style = "dashed"
			}
			pr("  %q -> %q [style=%s];\n",
				nodeID(n.Parent, ps, resolve), nodeID(n.V, n.St, resolve), style)
		}
		if cur, ok := strongest[n.V]; !ok || n.St > cur {
			strongest[n.V] = n.St
		}
	}
	pr("}\n")
	return err
}

func nodeID(v graph.VertexID, st State, resolve func(graph.VertexID) string) string {
	return resolve(v) + "_" + st.String()
}

// Summary returns per-state node counts, for diagnostics.
func (t *SearchTree) Summary() map[State]int {
	out := map[State]int{}
	for _, n := range t.Nodes {
		out[n.St]++
	}
	return out
}

// Vertices returns the distinct vertices in the tree, sorted.
func (t *SearchTree) Vertices() []graph.VertexID {
	seen := map[graph.VertexID]bool{}
	var out []graph.VertexID
	for _, n := range t.Nodes {
		if !seen[n.V] {
			seen[n.V] = true
			out = append(out, n.V)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
