package lscr

import (
	"container/heap"

	"lscr/internal/graph"
)

// priorityKey orders both of INS's evaluation-function structures. Keys
// compare lexicographically; smaller is better. Fields are filled
// differently by H and Q (see their comparators).
type priorityKey struct {
	r0, r1, r2, r3 int
	id             graph.VertexID
	seq            int
}

func (a priorityKey) less(b priorityKey) bool {
	switch {
	case a.r0 != b.r0:
		return a.r0 < b.r0
	case a.r1 != b.r1:
		return a.r1 < b.r1
	case a.r2 != b.r2:
		return a.r2 < b.r2
	case a.r3 != b.r3:
		return a.r3 < b.r3
	case a.seq != b.seq:
		return a.seq < b.seq
	}
	return a.id < b.id
}

type pqItem struct {
	v   graph.VertexID
	key priorityKey
	seq int // insertion sequence; independent of key.seq
}

type pqHeap []pqItem

func (h pqHeap) Len() int            { return len(h) }
func (h pqHeap) Less(i, j int) bool  { return h[i].key.less(h[j].key) }
func (h pqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pqHeap) Push(x interface{}) { *h = append(*h, x.(pqItem)) }
func (h *pqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// lazyPQ is a priority structure whose element priorities depend on
// mutable search state (the close surjection, and — for Q — the current
// LCS target). Keys are snapshotted at push time and revalidated at pop:
// a popped element whose key is stale is re-pushed with its current key.
// State transitions are monotone (N -> F -> T) and targets change only
// between LCS invocations, so revalidation terminates.
//
// lazyPQ also implements the paper's duplicate rule for Q ("if x and y
// represent a same vertex, Q deletes the first added element"): each push
// bumps a per-vertex version; pops discard entries whose version is not
// current.
type lazyPQ struct {
	h          pqHeap
	keyOf      func(graph.VertexID, int) priorityKey
	version    []int32 // per-vertex latest insertion seq (dedup only)
	seq        int
	dedup      bool
	revalidate bool
}

// newLazyPQ builds a queue whose keys come from keyOf (seq is the
// insertion sequence number implementing FIFO tie-breaks). With dedup,
// later pushes of a vertex invalidate earlier entries; n is the vertex
// universe size the dedup table covers. With revalidate, pops settle
// stale keys of the top element — needed when entries sit in the queue
// across state changes without being re-pushed (INS's H); the hot
// frontier queue Q re-pushes on every state change instead, so it skips
// revalidation and pops by snapshot key.
func newLazyPQ(keyOf func(graph.VertexID, int) priorityKey, dedup, revalidate bool, n int) *lazyPQ {
	q := &lazyPQ{keyOf: keyOf, dedup: dedup, revalidate: revalidate}
	if dedup {
		q.version = make([]int32, n)
	}
	return q
}

func (q *lazyPQ) push(v graph.VertexID) {
	q.seq++
	if q.dedup {
		q.version[v] = int32(q.seq)
	}
	heap.Push(&q.h, pqItem{v: v, key: q.keyOf(v, q.seq), seq: q.seq})
}

// peek returns the best current element without removing it. It settles
// stale keys of the top (an element whose priority worsened after being
// pushed sinks back) and drops superseded duplicates. Elements whose
// priority *improved* while buried surface only when re-pushed — the
// search algorithms re-push on every state change, and pop order never
// affects correctness, only guidance quality.
func (q *lazyPQ) peek() (graph.VertexID, bool) {
	for len(q.h) > 0 {
		top := q.h[0]
		if q.dedup && q.version[top.v] != int32(top.seq) {
			heap.Pop(&q.h) // superseded duplicate
			continue
		}
		if q.revalidate {
			cur := q.keyOf(top.v, top.key.seq)
			if cur != top.key {
				q.h[0].key = cur
				heap.Fix(&q.h, 0)
				continue
			}
		}
		return top.v, true
	}
	return 0, false
}

// pop removes and returns the best element.
func (q *lazyPQ) pop() (graph.VertexID, bool) {
	v, ok := q.peek()
	if !ok {
		return 0, false
	}
	heap.Pop(&q.h)
	return v, true
}

func (q *lazyPQ) empty() bool {
	_, ok := q.peek()
	return !ok
}
