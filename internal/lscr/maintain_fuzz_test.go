package lscr

import (
	"fmt"
	"math/rand"
	"testing"

	"lscr/internal/graph"
	"lscr/internal/testkg"
)

// FuzzIndexMaintenance fuzzes mutation scripts against the incremental
// II/EIT updater with a rebuild-from-scratch oracle: after every batch
// the maintained index must be structurally identical — the materialised
// IIEntries/EITEntries enumeration orders, D rows and dirty flags — to
// RebuildFrozen on the batch's final view.
//
// The script bytes are consumed three at a time as (op, a, b):
//
//	op%4 == 0..1  insert an edge between existing vertices (label op/4)
//	op%4 == 2     insert via (possibly brand-new) named vertex and label
//	op%4 == 3     delete the (a<<8|b)-th surviving edge instance
//
// Every 4 ops close a batch (commit + maintain + compare), so one input
// exercises several mutation prefixes, interleavings of inserts and
// deletes, and propagation on top of already-derived indexes.
func FuzzIndexMaintenance(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{0, 1, 2, 4, 3, 0, 3, 0, 1})
	f.Add(int64(3), []byte{2, 9, 9, 2, 10, 1, 3, 0, 0, 0, 9, 3})
	f.Add(int64(4), []byte{3, 0, 0, 3, 0, 1, 3, 0, 2, 0, 5, 6, 1, 2, 3})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 4
		g := testkg.Random(rng, n, rng.Intn(3*n), rng.Intn(3)+1)
		cur := NewLocalIndex(g, IndexParams{K: rng.Intn(6) + 1, Seed: seed})

		var triples []graph.Triple
		reload := func() {
			triples = triples[:0]
			cur.Graph().Triples(func(tr graph.Triple) bool {
				triples = append(triples, tr)
				return true
			})
		}
		reload()

		d := graph.NewDelta(cur.Graph())
		staged := 0
		commit := func() {
			if staged == 0 {
				return
			}
			ops := d.EdgeOps()
			g2, err := d.Commit()
			if err != nil {
				t.Fatalf("commit: %v", err)
			}
			next, _ := cur.ApplyMutations(g2, ops)
			if err := next.EqualStructure(next.RebuildFrozen(g2)); err != nil {
				t.Fatalf("maintained index diverged from rebuild oracle: %v", err)
			}
			cur = next
			reload()
			d = graph.NewDelta(g2)
			staged = 0
		}

		for i := 0; i+2 < len(script); i += 3 {
			op, a, b := script[i], script[i+1], script[i+2]
			nV := cur.Graph().NumVertices() + d.NewVertices()
			switch op % 4 {
			case 0, 1:
				s := graph.VertexID(int(a) % nV)
				t2 := graph.VertexID(int(b) % nV)
				l := graph.Label(int(op/4) % cur.Graph().NumLabels())
				if err := d.AddEdge(s, l, t2); err != nil {
					t.Fatalf("add-edge: %v", err)
				}
				staged++
			case 2:
				s := fmt.Sprintf("fz%d", int(a)%6)
				o := fmt.Sprintf("fz%d", int(b)%6)
				l := fmt.Sprintf("fzl%d", int(a+b)%3)
				if err := d.AddEdgeNames(s, l, o); err != nil {
					t.Fatalf("add-edge-names: %v", err)
				}
				staged++
			case 3:
				if len(triples) == 0 {
					continue
				}
				tr := triples[(int(a)<<8|int(b))%len(triples)]
				// The instance may already be exhausted by earlier staged
				// deletes of this batch; that is not a valid op, skip it.
				if err := d.DeleteEdge(tr.Subject, tr.Label, tr.Object); err != nil {
					continue
				}
				staged++
			}
			if staged >= 4 {
				commit()
			}
		}
		commit()
	})
}
