package lscr

import "sync"

// Per-query scratch state (the close surjection and the frontier queue's
// duplicate stamps) is pooled and epoch-stamped: a query bumps the epoch
// instead of zeroing the arrays, so repeated queries over large graphs
// allocate nothing. Entries from older epochs read as zero values.
//
// The pool is what makes the algorithms reentrant: every UIS/UIS*/INS
// run borrows a private scratch for its whole duration, so any number of
// goroutines may query the same graph and index concurrently — each sees
// only its own close map, frontier stamps, sat table, and cut table.

// epochArr32 is a reusable uint32 array with an epoch in the upper bits
// of every entry. closeMap packs (epoch<<2 | state) per vertex.
type epochArr32 struct {
	a     []uint32
	epoch uint32
}

const maxEpoch32 = 1<<30 - 1 // 2 bits reserved for the close state

// next prepares the array for a fresh query of universe size n.
func (e *epochArr32) next(n int) {
	if len(e.a) < n || e.epoch >= maxEpoch32 {
		e.a = make([]uint32, n)
		e.epoch = 0
	}
	e.epoch++
}

// epochArr64 is a reusable uint64 array; the frontier queue packs
// (epoch<<33 | seq) per vertex.
type epochArr64 struct {
	a     []uint64
	epoch uint64
}

const maxEpoch64 = 1<<31 - 1 // 33 bits reserved for the sequence

func (e *epochArr64) next(n int) {
	if len(e.a) < n || e.epoch >= maxEpoch64 {
		e.a = make([]uint64, n)
		e.epoch = 0
	}
	e.epoch++
}

// scratch bundles the pooled per-query state.
type scratch struct {
	close epochArr32
	stamp epochArr64
	// sat is UIS's satisfying-origin table. It is not epoch-stamped:
	// entries are only read for vertices whose close state is T in the
	// current epoch, so stale values are unreachable.
	sat []uint32
	// cut is INS's per-landmark Cut/Push-done table; it is zeroed on
	// borrow (landmark counts are ~√|V|·log|V|, so the clear is cheap).
	cut []uint8
	// fq is INS's frontier queue Q; its heap backing array is reused
	// across queries (newFrontierQueue truncates it), so a steady stream
	// of INS queries stops allocating a fresh heap per query.
	fq frontierQueue
}

// satTable returns the satisfying-origin table sized for n vertices.
func (s *scratch) satTable(n int) []uint32 {
	if len(s.sat) < n {
		s.sat = make([]uint32, n)
	}
	return s.sat
}

// cutTable returns a zeroed per-landmark table of k entries.
func (s *scratch) cutTable(k int) []uint8 {
	if cap(s.cut) < k {
		s.cut = make([]uint8, k)
	}
	s.cut = s.cut[:k]
	clear(s.cut)
	return s.cut
}

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

// getScratch borrows a scratch sized for n vertices.
func getScratch(n int) *scratch {
	s := scratchPool.Get().(*scratch)
	s.close.next(n)
	return s
}

// putScratch returns s to the pool. The frontier stamp epoch is bumped
// lazily by newFrontierQueue only when INS actually uses it.
func putScratch(s *scratch) { scratchPool.Put(s) }
