package lscr

import (
	"sync"

	"lscr/internal/graph"
)

// Per-query scratch state (the close surjection and the frontier queue's
// duplicate stamps) is pooled and epoch-stamped: a query bumps the epoch
// instead of zeroing the arrays, so repeated queries over large graphs
// allocate nothing. Entries from older epochs read as zero values.
//
// The pool is what makes the algorithms reentrant: every UIS/UIS*/INS
// run borrows a private scratch for its whole duration, so any number of
// goroutines may query the same graph and index concurrently — each sees
// only its own close map, frontier stamps, sat table, and cut table.

// withSlack adds ~12% headroom to a scratch-array size. The arrays are
// sized for the engine's current vertex count, which creeps upward as
// mutation batches intern new vertices; at 10^7-vertex scale an exact
// fit would force a fresh tens-of-megabytes allocation every few
// thousand interned vertices, so growth is geometric instead.
func withSlack(n int) int { return n + n/8 }

// epochArr32 is a reusable uint32 array with an epoch in the upper bits
// of every entry. closeMap packs (epoch<<2 | state) per vertex.
type epochArr32 struct {
	a     []uint32
	epoch uint32
}

const maxEpoch32 = 1<<30 - 1 // 2 bits reserved for the close state

// next prepares the array for a fresh query of universe size n.
func (e *epochArr32) next(n int) {
	if len(e.a) < n || e.epoch >= maxEpoch32 {
		e.a = make([]uint32, withSlack(n))
		e.epoch = 0
	}
	e.epoch++
}

// epochArr64 is a reusable uint64 array; the frontier queue packs
// (epoch<<33 | seq) per vertex.
type epochArr64 struct {
	a     []uint64
	epoch uint64
}

const maxEpoch64 = 1<<31 - 1 // 33 bits reserved for the sequence

func (e *epochArr64) next(n int) {
	if len(e.a) < n || e.epoch >= maxEpoch64 {
		e.a = make([]uint64, withSlack(n))
		e.epoch = 0
	}
	e.epoch++
}

// epochSet is a pooled visited set: v counts as visited in the current
// pass iff a[v] equals the pass epoch, so next starts a new pass in
// O(1) instead of allocating (or zeroing) a fresh []bool per search.
type epochSet struct {
	a     []uint32
	epoch uint32
}

func (e *epochSet) next(n int) {
	if len(e.a) < n || e.epoch == ^uint32(0) {
		e.a = make([]uint32, withSlack(n))
		e.epoch = 0
	}
	e.epoch++
}

func (e *epochSet) visited(v graph.VertexID) bool { return e.a[v] == e.epoch }
func (e *epochSet) visit(v graph.VertexID)        { e.a[v] = e.epoch }

// bfsParent records how the witness BFS reached a vertex. Entries are
// meaningful only for vertices visited in the current vis epoch, so the
// table is never cleared.
type bfsParent struct {
	from  graph.VertexID
	label graph.Label
}

// scratch bundles the pooled per-query state.
type scratch struct {
	close epochArr32
	stamp epochArr64
	// sat is UIS's satisfying-origin table. It is not epoch-stamped:
	// entries are only read for vertices whose close state is T in the
	// current epoch, so stale values are unreachable.
	sat []uint32
	// cut is INS's per-landmark Cut/Push-done table; it is zeroed on
	// borrow (landmark counts are ~√|V|·log|V|, so the clear is cheap).
	cut []uint8
	// fq is INS's frontier queue Q; its heap backing array is reused
	// across queries (newFrontierQueue truncates it), so a steady stream
	// of INS queries stops allocating a fresh heap per query.
	fq frontierQueue
	// vis and vis2 are the visited sets for the searches that used to
	// allocate a fresh []bool per call: the witness shortest-path BFS,
	// and Naive's outer walk plus its per-satisfying-vertex inner walk
	// (those two run interleaved, hence two independent sets).
	vis, vis2 epochSet
	// par is the witness BFS parent table, validity-gated by vis.
	par []bfsParent
	// queue and queue2 are the matching reusable worklists.
	queue, queue2 []graph.VertexID
}

// satTable returns the satisfying-origin table sized for n vertices.
func (s *scratch) satTable(n int) []uint32 {
	if len(s.sat) < n {
		s.sat = make([]uint32, n)
	}
	return s.sat
}

// parTable returns the witness BFS parent table sized for n vertices.
func (s *scratch) parTable(n int) []bfsParent {
	if len(s.par) < n {
		s.par = make([]bfsParent, withSlack(n))
	}
	return s.par
}

// cutTable returns a zeroed per-landmark table of k entries.
func (s *scratch) cutTable(k int) []uint8 {
	if cap(s.cut) < k {
		s.cut = make([]uint8, k)
	}
	s.cut = s.cut[:k]
	clear(s.cut)
	return s.cut
}

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

// getScratch borrows a scratch sized for n vertices.
func getScratch(n int) *scratch {
	s := scratchPool.Get().(*scratch)
	s.close.next(n)
	return s
}

// putScratch returns s to the pool. The frontier stamp epoch is bumped
// lazily by newFrontierQueue only when INS actually uses it.
func putScratch(s *scratch) { scratchPool.Put(s) }

// PrewarmScratch primes the scratch pool with count scratches whose hot
// arrays (close map, frontier stamps, sat table) are sized for an
// n-vertex graph. The public engine calls it when it opens a large
// graph so the first query on each worker does not pay the allocation
// cliff — at 10^7 vertices those arrays are ~16 bytes/vertex, a
// >100 MB first-query hiccup per pooled scratch without prewarming.
// (sync.Pool may still shed the scratches under GC pressure; this is a
// latency optimisation, not a guarantee.)
func PrewarmScratch(n, count int) {
	if n <= 0 || count <= 0 {
		return
	}
	warmed := make([]*scratch, count)
	for i := range warmed {
		s := scratchPool.Get().(*scratch)
		s.close.next(n)
		s.stamp.next(n)
		s.satTable(n)
		warmed[i] = s
	}
	for _, s := range warmed {
		scratchPool.Put(s)
	}
}
