// Package lscr implements the paper's contribution: answering reachability
// queries with label and substructure constraints (LSCR, Definition 2.4)
// on knowledge graphs, via three algorithms:
//
//   - UIS (Algorithm 1): an uninformed search with recall that works on
//     any edge-labeled graph; the paper's baseline.
//   - UIS* (Algorithm 2): obtains V(S,G) from a SPARQL engine and
//     verifies s -L-> v and v -L-> t per satisfying vertex v, sharing a
//     global stack and the close surjection across invocations.
//   - INS (Algorithm 4): an informed search guided by a precomputed
//     LocalIndex (Algorithm 3) and two priority structures (a heap H over
//     V(S,G) and a priority queue Q), which breaks the fixed LIFO/FIFO
//     search direction of the uninformed algorithms.
//
// All three share the close surjection of Definition 3.1 and report the
// paper's evaluation measures (elapsed work and passed-vertex counts).
package lscr

import (
	"errors"
	"fmt"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/pattern"
)

// State is the value of the close surjection (Definition 3.1) for one
// vertex: N (never explored), F (s -L-> v proved), or T (s -L,S-> v
// proved).
type State uint8

// close states.
const (
	N State = iota
	F
	T
)

// String renders the state.
func (s State) String() string {
	switch s {
	case N:
		return "N"
	case F:
		return "F"
	case T:
		return "T"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Query is an LSCR query Q = (s, t, L, S) (Definition 2.4).
type Query struct {
	Source, Target graph.VertexID
	Labels         labelset.Set
	Constraint     *pattern.Constraint
	// Interrupt, when non-nil, is polled roughly every interruptStride
	// edge expansions (and at phase boundaries); a non-nil return aborts
	// the search immediately with that error. The public layer derives it
	// from a context.Context so a cancelled query stops mid-flight
	// instead of running to completion. Nil costs one predictable branch
	// per expansion.
	Interrupt func() error
}

// interruptStride is how many edge expansions may pass between two
// Interrupt polls. At ~ns per expansion this bounds cancellation
// latency to microseconds, far inside the 50 ms promptness budget,
// while keeping the poll off the hot path.
const interruptStride = 2048

// interruptCheck amortises Interrupt polling over interruptStride
// ticks. The zero value (nil fn) never fires.
type interruptCheck struct {
	fn func() error
	n  int
}

// tick counts one unit of work and polls the interrupt function every
// interruptStride ticks.
func (ic *interruptCheck) tick() error {
	if ic.fn == nil {
		return nil
	}
	if ic.n++; ic.n < interruptStride {
		return nil
	}
	ic.n = 0
	return ic.fn()
}

// tickN counts n units at once — the per-run form the CSR label runs
// enable: one call per contiguous run instead of one per edge. The poll
// cadence stays amortised at interruptStride; a run only stretches the
// gap by its own length, which the degree bounds.
func (ic *interruptCheck) tickN(n int) error {
	if ic.fn == nil {
		return nil
	}
	if ic.n += n; ic.n < interruptStride {
		return nil
	}
	ic.n = 0
	return ic.fn()
}

// poll checks the interrupt immediately, bypassing the stride. Use it
// on coarse-grained steps (INS's priority-heap pops, whose
// revalidation cost dwarfs the poll) where a stride of thousands would
// stretch the cancellation latency to tens of milliseconds.
func (ic *interruptCheck) poll() error {
	if ic.fn == nil {
		return nil
	}
	return ic.fn()
}

// Stats reports the paper's evaluation measures for one query run.
type Stats struct {
	// PassedVertices is the number of vertices whose close state is not N
	// when the run ends — the second measure of §6.
	PassedVertices int
	// SearchTreeNodes is |T|, the number of nodes of the search tree of
	// Definition 3.2 (each vertex contributes a node per close state it
	// takes, so at most two).
	SearchTreeNodes int
	// SCckCalls counts substructure-check invocations (UIS only; UIS* and
	// INS obtain V(S,G) up front).
	SCckCalls int
	// Satisfying is, for a true answer, a vertex that satisfies the
	// substructure constraint with s -L-> Satisfying -L-> t — the anchor
	// FindWitness turns into a concrete path. NoVertex for false
	// answers.
	Satisfying graph.VertexID
}

// Errors returned by the algorithms.
var (
	ErrBadQuery = errors.New("lscr: query vertices out of range")
)

// closeMap is the close surjection with the bookkeeping Stats needs. It
// is backed by a pooled epoch-stamped array (see scratch.go): entries
// whose epoch is stale read as N, so queries reuse arrays with no
// zeroing.
type closeMap struct {
	arr    *epochArr32
	passed int // vertices with state != N
	nodes  int // search-tree nodes (state transitions)
}

func newCloseMap(s *scratch) *closeMap { return &closeMap{arr: &s.close} }

func (c *closeMap) get(v graph.VertexID) State {
	e := c.arr.a[v]
	if e>>2 != c.arr.epoch {
		return N
	}
	return State(e & 3)
}

// set transitions v to st, updating the passed-vertex and search-tree
// counters. Transitions are monotone (Definition 3.1): N -> F -> T;
// demotions are ignored.
func (c *closeMap) set(v graph.VertexID, st State) {
	old := c.get(v)
	if old == st || st < old {
		return
	}
	if old == N {
		c.passed++
	}
	c.nodes++
	c.arr.a[v] = c.arr.epoch<<2 | uint32(st)
}

func (c *closeMap) stats(scck int) Stats {
	return Stats{
		PassedVertices:  c.passed,
		SearchTreeNodes: c.nodes,
		SCckCalls:       scck,
		Satisfying:      graph.NoVertex,
	}
}

// statsSat is stats with the witness anchor of a true answer.
func (c *closeMap) statsSat(scck int, sat graph.VertexID) Stats {
	st := c.stats(scck)
	st.Satisfying = sat
	return st
}

// validate checks query endpoints against g.
func validate(g *graph.Graph, q Query) error {
	n := graph.VertexID(g.NumVertices())
	if q.Source >= n || q.Target >= n {
		return ErrBadQuery
	}
	return nil
}
