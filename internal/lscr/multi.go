package lscr

import (
	"errors"
	"fmt"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/pattern"
)

// MultiQuery is the conjunctive extension of Definition 2.4: a path from
// Source to Target whose labels are all in Labels and which passes, for
// every constraint S_i, some vertex satisfying S_i (possibly a different
// vertex per constraint, in any order). §2 of the paper notes that other
// substructure-constraint forms "can be derived from this definition";
// conjunction is the form the motivating applications ask for ("a
// middleman married to Amy AND an account flagged offshore").
type MultiQuery struct {
	Source, Target graph.VertexID
	Labels         labelset.Set
	Constraints    []*pattern.Constraint
	// Interrupt mirrors Query.Interrupt: polled roughly every
	// interruptStride edge expansions; a non-nil return aborts the
	// search with that error.
	Interrupt func() error
}

// MaxMultiConstraints bounds the conjunction size: the search state space
// is |V|·2^k, and the satisfied-set masks live in a uint16.
const MaxMultiConstraints = 16

// Errors of the multi-constraint search.
var (
	ErrTooManyConstraints = errors.New("lscr: too many constraints in conjunction")
	ErrNoConstraints      = errors.New("lscr: conjunction needs at least one constraint")
)

// MultiWitness certifies a true conjunctive answer: a walk from Source
// to Target and, per constraint, a vertex on the walk satisfying it.
type MultiWitness struct {
	Hops []Hop
	// SatisfiedBy[i] is the walk vertex satisfying Constraints[i].
	SatisfiedBy []graph.VertexID
}

// UISMultiWitness is UISMulti returning a witness walk for true answers
// (nil otherwise). The walk is reconstructed from predecessor links over
// the (vertex, satisfied-set) state space, so unlike the single-
// constraint FindWitness it needs no second search.
func UISMultiWitness(g *graph.Graph, q MultiQuery) (bool, *MultiWitness, Stats, error) {
	return uisMulti(g, q, true)
}

// UISMulti answers a conjunctive LSCR query with a generalised UIS: the
// close surjection of Definition 3.1 generalises from {N, F, T} to sets
// of satisfied constraints — each vertex keeps a maximal antichain of
// satisfied-sets it has been reached with, and a state (v, m) is expanded
// only while no previously recorded m' ⊇ m exists. With one constraint
// this degenerates exactly to UIS's N/F/T behaviour (T ≡ {S1} recorded,
// F ≡ ∅ recorded).
//
// The answer is true iff Target is reachable with the full mask. Stats
// counts every vertex that entered any state as passed, and every state
// recording as a search-tree node (a vertex contributes at most 2^k
// nodes).
func UISMulti(g *graph.Graph, q MultiQuery) (bool, Stats, error) {
	ans, _, st, err := uisMulti(g, q, false)
	return ans, st, err
}

func uisMulti(g *graph.Graph, q MultiQuery, wantWitness bool) (bool, *MultiWitness, Stats, error) {
	if err := validate(g, Query{Source: q.Source, Target: q.Target}); err != nil {
		return false, nil, Stats{}, err
	}
	k := len(q.Constraints)
	if k == 0 {
		return false, nil, Stats{}, ErrNoConstraints
	}
	if k > MaxMultiConstraints {
		return false, nil, Stats{}, fmt.Errorf("%w: %d > %d", ErrTooManyConstraints, k, MaxMultiConstraints)
	}
	matchers := make([]*pattern.Matcher, k)
	for i, c := range q.Constraints {
		m, err := pattern.NewMatcher(g, c)
		if err != nil {
			return false, nil, Stats{}, fmt.Errorf("constraint %d: %w", i+1, err)
		}
		matchers[i] = m
	}
	full := uint16(1)<<uint(k) - 1

	// Predecessor links over (vertex, mask) states, kept only when a
	// witness is requested.
	type stateKey struct {
		v graph.VertexID
		m uint16
	}
	type pred struct {
		v     graph.VertexID
		m     uint16
		label graph.Label
	}
	var parents map[stateKey]pred
	if wantWitness {
		parents = make(map[stateKey]pred)
	}

	n := g.NumVertices()
	// satBits is computed lazily per vertex; bit 15... we need a "known"
	// flag alongside the bits, so store bits+1 (0 = unknown).
	satCache := make([]uint32, n)
	scck := 0
	satBits := func(v graph.VertexID) uint16 {
		if c := satCache[v]; c != 0 {
			return uint16(c - 1)
		}
		var bits uint16
		for i, m := range matchers {
			scck++
			if m.Check(v) {
				bits |= 1 << uint(i)
			}
		}
		satCache[v] = uint32(bits) + 1
		return bits
	}

	// masks[v] is the maximal antichain of satisfied-sets v was reached
	// with; stats mirror the single-constraint accounting.
	masks := make([][]uint16, n)
	st := Stats{Satisfying: graph.NoVertex}
	record := func(v graph.VertexID, m uint16) bool {
		cur := masks[v]
		for _, x := range cur {
			if x&m == m { // m ⊆ x: dominated
				return false
			}
		}
		kept := cur[:0]
		for _, x := range cur {
			if m&x != x { // drop x ⊂ m
				kept = append(kept, x)
			}
		}
		if len(cur) == 0 {
			st.PassedVertices++
		}
		st.SearchTreeNodes++
		masks[v] = append(kept, m)
		return true
	}

	type state struct {
		v graph.VertexID
		m uint16
	}
	start := state{q.Source, satBits(q.Source)}
	record(q.Source, start.m)
	if q.Source == q.Target && start.m == full {
		st.SCckCalls = scck
		var w *MultiWitness
		if wantWitness {
			w = &MultiWitness{SatisfiedBy: satisfiersOnWalk(q, nil, satBits)}
		}
		return true, w, st, nil
	}
	stack := []state{start}
	ic := interruptCheck{fn: q.Interrupt}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rs := g.OutRuns(cur.v)
		// Tick the run scan up front: cancellation must stay prompt even
		// when every run is rejected by the label constraint.
		if err := ic.tickN(rs.Len()); err != nil {
			return false, nil, Stats{}, err
		}
		for ri, n := 0, rs.Len(); ri < n; ri++ {
			if !q.Labels.Contains(rs.Label(ri)) {
				continue
			}
			run := rs.Run(ri)
			if err := ic.tickN(len(run)); err != nil {
				return false, nil, Stats{}, err
			}
			for _, e := range run {
				m := cur.m | satBits(e.To)
				if !record(e.To, m) {
					continue
				}
				if wantWitness {
					parents[stateKey{e.To, m}] = pred{v: cur.v, m: cur.m, label: e.Label}
				}
				if e.To == q.Target && m == full {
					st.SCckCalls = scck
					var w *MultiWitness
					if wantWitness {
						// Walk the predecessor chain back to the start state.
						var rev []Hop
						at := stateKey{e.To, m}
						for at.v != q.Source || at.m != start.m {
							p, ok := parents[at]
							if !ok {
								break // unreachable for a sound search
							}
							rev = append(rev, Hop{From: p.v, Label: p.label, To: at.v})
							at = stateKey{p.v, p.m}
						}
						for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
							rev[i], rev[j] = rev[j], rev[i]
						}
						w = &MultiWitness{Hops: rev, SatisfiedBy: satisfiersOnWalk(q, rev, satBits)}
					}
					return true, w, st, nil
				}
				stack = append(stack, state{e.To, m})
			}
		}
	}
	st.SCckCalls = scck
	return false, nil, st, nil
}

// satisfiersOnWalk picks, per constraint, the first walk vertex whose
// satisfied bits include it.
func satisfiersOnWalk(q MultiQuery, hops []Hop, satBits func(graph.VertexID) uint16) []graph.VertexID {
	k := len(q.Constraints)
	out := make([]graph.VertexID, k)
	for i := range out {
		out[i] = graph.NoVertex
	}
	walk := []graph.VertexID{q.Source}
	for _, h := range hops {
		walk = append(walk, h.To)
	}
	for _, v := range walk {
		bits := satBits(v)
		for i := 0; i < k; i++ {
			if out[i] == graph.NoVertex && bits&(1<<uint(i)) != 0 {
				out[i] = v
			}
		}
	}
	return out
}
