package lscr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// Local-index persistence. The paper stores its indexes on disk (§6
// "Settings"); this file implements a compact little-endian binary format
// with a CRC32 footer:
//
//	magic "LSCRIDX2" | flags | view |V| | indexed |V| | k
//	landmarks [k]u32 | af [indexed |V|]u32 | dirty bitmap [ceil(k/8)]u8
//	per landmark: II count, (vertex u32, cms len u32, sets [..]u64)
//	              EIT count, (labelset u64, count u32, vertices [..]u32)
//	dmat [k*k]i32 (row-major)
//	crc32 of everything above
//
// The format is versioned by the magic; readers reject unknown versions
// (including the pre-maintenance LSCRIDX1), truncated input, corrupt
// payloads and indexes built for a different graph size. Version 2 adds
// the per-landmark dirty bitmap and splits the vertex count into the
// bound view's |V| and the indexed range (the two differ for a
// maintained index whose view grew vertices after the build), so an
// index saved mid-life round-trips with its deletion-invalidated
// landmarks still excluded from pruning.

const indexMagic = "LSCRIDX2"

// Encoding errors.
var (
	ErrBadIndexMagic = errors.New("lscr: not a local-index file (bad magic)")
	ErrIndexChecksum = errors.New("lscr: local-index file corrupt (checksum mismatch)")
	ErrIndexMismatch = errors.New("lscr: local index was built for a different graph")
)

// WriteTo serialises the index. It implements io.WriterTo.
func (idx *LocalIndex) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: io.MultiWriter(bw, crc)}

	put32 := func(v uint32) { cw.write(binary.LittleEndian.AppendUint32(cw.buf[:0], v)) }
	put64 := func(v uint64) { cw.write(binary.LittleEndian.AppendUint64(cw.buf[:0], v)) }

	cw.write([]byte(indexMagic))
	var flags uint32
	if idx.literalRho {
		flags |= 1
	}
	put32(flags)
	put32(uint32(idx.g.NumVertices()))
	put32(uint32(len(idx.af)))
	put32(uint32(len(idx.landmarks)))
	for _, u := range idx.landmarks {
		put32(uint32(u))
	}
	for _, a := range idx.af {
		put32(uint32(a))
	}
	dirtyBits := make([]byte, (len(idx.landmarks)+7)/8)
	for li := range idx.landmarks {
		if idx.dirty != nil && idx.dirty[li] {
			dirtyBits[li>>3] |= 1 << (li & 7)
		}
	}
	cw.write(dirtyBits)
	for li := range idx.landmarks {
		ii := idx.ii[li]
		put32(uint32(len(ii)))
		for _, v := range sortedVertices(ii) {
			put32(uint32(v))
			sets := ii[v].Sorted()
			put32(uint32(len(sets)))
			for _, s := range sets {
				put64(uint64(s))
			}
		}
		eit := idx.eit[li]
		put32(uint32(len(eit)))
		for _, key := range sortedKeys(eit) {
			put64(uint64(key))
			ws := eit[key]
			put32(uint32(len(ws)))
			for _, w := range ws {
				put32(uint32(w))
			}
		}
	}
	for _, row := range idx.dmat {
		for _, d := range row {
			put32(uint32(d))
		}
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	// Footer: CRC of everything written so far (not itself CRC'd).
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := bw.Write(foot[:]); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

// ReadLocalIndex deserialises an index previously written by WriteTo and
// binds it to g. The graph must have the same vertex count the index was
// built for.
func ReadLocalIndex(r io.Reader, g *graph.Graph) (*LocalIndex, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	cr := &crcReader{r: br, crc: crc}

	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadIndexMagic, err)
	}
	if string(magic) != indexMagic {
		return nil, ErrBadIndexMagic
	}
	get32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(cr, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	get64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(cr, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}

	flags, err := get32()
	if err != nil {
		return nil, err
	}
	viewV, err := get32()
	if err != nil {
		return nil, err
	}
	if int(viewV) != g.NumVertices() {
		return nil, fmt.Errorf("%w: index view |V|=%d, graph |V|=%d", ErrIndexMismatch, viewV, g.NumVertices())
	}
	n, err := get32()
	if err != nil {
		return nil, err
	}
	if n > viewV {
		return nil, fmt.Errorf("%w: indexed range %d exceeds view |V|=%d", ErrIndexMismatch, n, viewV)
	}
	k, err := get32()
	if err != nil {
		return nil, err
	}
	if k > n {
		return nil, fmt.Errorf("%w: k=%d exceeds indexed |V|", ErrIndexMismatch, k)
	}
	idx := &LocalIndex{
		g:          g,
		isLandmark: make([]bool, n),
		af:         make([]graph.VertexID, n),
		lmIdx:      make([]int32, n),
		ii:         make([]map[graph.VertexID]*labelset.CMS, k),
		eit:        make([]map[labelset.Set][]graph.VertexID, k),
		literalRho: flags&1 != 0,
	}
	for i := range idx.lmIdx {
		idx.lmIdx[i] = -1
	}
	idx.landmarks = make([]graph.VertexID, k)
	for i := range idx.landmarks {
		v, err := get32()
		if err != nil {
			return nil, err
		}
		if v >= n {
			return nil, fmt.Errorf("%w: landmark %d out of range", ErrIndexMismatch, v)
		}
		idx.landmarks[i] = graph.VertexID(v)
		idx.isLandmark[v] = true
		idx.lmIdx[v] = int32(i)
	}
	for i := range idx.af {
		a, err := get32()
		if err != nil {
			return nil, err
		}
		idx.af[i] = graph.VertexID(a)
	}
	dirtyBits := make([]byte, (int(k)+7)/8)
	if _, err := io.ReadFull(cr, dirtyBits); err != nil {
		return nil, err
	}
	for li := 0; li < int(k); li++ {
		if dirtyBits[li>>3]&(1<<(li&7)) != 0 {
			if idx.dirty == nil {
				idx.dirty = make([]bool, k)
			}
			idx.dirty[li] = true
		}
	}
	for li := range idx.landmarks {
		nii, err := get32()
		if err != nil {
			return nil, err
		}
		ii := make(map[graph.VertexID]*labelset.CMS, nii)
		for j := uint32(0); j < nii; j++ {
			v, err := get32()
			if err != nil {
				return nil, err
			}
			ns, err := get32()
			if err != nil {
				return nil, err
			}
			c := labelset.NewCMS()
			for x := uint32(0); x < ns; x++ {
				s, err := get64()
				if err != nil {
					return nil, err
				}
				c.Insert(labelset.Set(s))
			}
			ii[graph.VertexID(v)] = c
		}
		idx.ii[li] = ii
		neit, err := get32()
		if err != nil {
			return nil, err
		}
		eit := make(map[labelset.Set][]graph.VertexID, neit)
		for j := uint32(0); j < neit; j++ {
			key, err := get64()
			if err != nil {
				return nil, err
			}
			nw, err := get32()
			if err != nil {
				return nil, err
			}
			ws := make([]graph.VertexID, nw)
			for x := range ws {
				wv, err := get32()
				if err != nil {
					return nil, err
				}
				ws[x] = graph.VertexID(wv)
			}
			eit[labelset.Set(key)] = ws
		}
		idx.eit[li] = eit
	}
	idx.dmat = newDMat(int(k))
	for _, row := range idx.dmat {
		for i := range row {
			d, err := get32()
			if err != nil {
				return nil, err
			}
			row[i] = int32(d)
		}
	}
	want := crc.Sum32()
	var foot [4]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return nil, fmt.Errorf("%w: missing footer", ErrIndexChecksum)
	}
	if binary.LittleEndian.Uint32(foot[:]) != want {
		return nil, ErrIndexChecksum
	}
	idx.finalize()
	return idx, nil
}

// countWriter tracks bytes written and the first error.
type countWriter struct {
	w   io.Writer
	n   int64
	err error
	buf [8]byte
}

func (c *countWriter) write(p []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
}

// crcReader feeds everything read through the checksum.
type crcReader struct {
	r   io.Reader
	crc io.Writer
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc.Write(p[:n])
	}
	return n, err
}

func sortedVertices(m map[graph.VertexID]*labelset.CMS) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(m map[labelset.Set][]graph.VertexID) []labelset.Set {
	out := make([]labelset.Set, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
