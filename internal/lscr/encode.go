package lscr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// Local-index persistence. The paper stores its indexes on disk (§6
// "Settings"); this file implements a compact little-endian binary
// payload:
//
//	flags | view |V| | indexed |V| | k
//	landmarks [k]u32 | af [indexed |V|]u32
//	dirty bitmap [ceil(k/8), zero-padded to a multiple of 8]u8
//	per landmark: II count, (vertex u32, cms len u32, sets [..]u64)
//	              EIT count, (labelset u64, count u32, vertices [..]u32)
//	dmat [k*k]i32 (row-major)
//
// The standalone file format (WriteTo/ReadLocalIndex) frames the payload
// with the magic "LSCRIDX3" and a CRC32 footer; the segment layer
// embeds the bare payload as a checksummed section instead
// (WriteIndexPayload/ReadIndexPayload). The format is versioned by the
// magic; readers reject unknown versions (including the
// pre-maintenance LSCRIDX1), truncated input, corrupt payloads and
// indexes built for a different graph size. Version 2 added the
// per-landmark dirty bitmap and split the vertex count into the bound
// view's |V| and the indexed range (the two differ for a maintained
// index whose view grew vertices after the build), so an index saved
// mid-life round-trips with its deletion-invalidated landmarks still
// excluded from pruning. Version 3 pads the dirty bitmap so every
// later field — and in particular the k×k distance matrix, which
// dominates the payload — sits at a 4-aligned offset: the boot path
// adopts the matrix as a read-only view straight over the mmap'd
// section instead of copying it out.
//
// Two layout properties are load-bearing for the boot path:
//
//   - II entries are written in ascending vertex order and EIT entries
//     in ascending label-set order, so the reader materialises the
//     index's sorted enumeration arrays (iiSorted/eitSorted) straight
//     off the stream instead of re-sorting, and rejects out-of-order
//     input as corrupt.
//   - each CMS is written as its Sorted() antichain, so the reader
//     adopts the decoded sets verbatim (labelset.AdoptSets) instead of
//     re-running Insert's subset filtering per set.
//
// Every count in the payload is untrusted: the decoder works over the
// full payload bytes, so each count is validated against the bytes
// remaining before anything is allocated for it — a hostile length
// prefix fails with ErrIndexCorrupt, never by allocating what the
// prefix promises.

const indexMagic = "LSCRIDX3"

// Encoding errors.
var (
	ErrBadIndexMagic = errors.New("lscr: not a local-index file (bad magic)")
	// ErrIndexCorrupt reports a truncated, malformed or hostile index
	// payload. It wraps graph.ErrCorrupt so callers can classify any
	// persistence-stack corruption with one errors.Is.
	ErrIndexCorrupt = fmt.Errorf("lscr: local-index payload corrupt: %w", graph.ErrCorrupt)
	// ErrIndexChecksum reports a payload whose CRC32 footer does not
	// match. It wraps graph.ErrCorrupt.
	ErrIndexChecksum = fmt.Errorf("lscr: local-index file corrupt (checksum mismatch): %w", graph.ErrCorrupt)
	ErrIndexMismatch = errors.New("lscr: local index was built for a different graph")

	errPayloadEnd = fmt.Errorf("lscr: read past payload end: %w", ErrIndexCorrupt)
)

// hostLittleEndian mirrors the segment layer's aliasing gate: bulk
// moves between the on-disk little-endian arrays and in-memory []int32
// are plain copies only when the host byte order matches the format's.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// WriteTo serialises the index as a standalone file: magic, payload,
// CRC32 footer. It implements io.WriterTo.
func (idx *LocalIndex) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: io.MultiWriter(bw, crc)}
	cw.write([]byte(indexMagic))
	idx.writePayload(cw)
	if cw.err != nil {
		return cw.n, cw.err
	}
	// Footer: CRC of everything written so far (not itself CRC'd).
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := bw.Write(foot[:]); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n + 4, nil
}

// WriteIndexPayload serialises the bare index payload (no magic, no
// footer) — the segment layer's index section, whose framing and
// checksum live in the section table.
func WriteIndexPayload(w io.Writer, idx *LocalIndex) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	idx.writePayload(cw)
	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, bw.Flush()
}

func (idx *LocalIndex) writePayload(cw *countWriter) {
	put32 := func(v uint32) { cw.write(binary.LittleEndian.AppendUint32(cw.buf[:0], v)) }
	put64 := func(v uint64) { cw.write(binary.LittleEndian.AppendUint64(cw.buf[:0], v)) }

	var flags uint32
	if idx.literalRho {
		flags |= 1
	}
	put32(flags)
	put32(uint32(idx.g.NumVertices()))
	put32(uint32(len(idx.af)))
	put32(uint32(len(idx.landmarks)))
	for _, u := range idx.landmarks {
		put32(uint32(u))
	}
	for _, a := range idx.af {
		put32(uint32(a))
	}
	dirtyBits := make([]byte, ((len(idx.landmarks)+7)/8+7)&^7)
	for li := range idx.landmarks {
		if idx.dirty != nil && idx.dirty[li] {
			dirtyBits[li>>3] |= 1 << (li & 7)
		}
	}
	cw.write(dirtyBits)
	// The stored entry arrays are already in ascending key order — the
	// exact order the format mandates — so the writer is a straight walk.
	for li := range idx.landmarks {
		ii := idx.iiSorted[li]
		put32(uint32(len(ii)))
		for _, e := range ii {
			put32(uint32(e.v))
			sets := e.cms.Sorted()
			put32(uint32(len(sets)))
			for _, s := range sets {
				put64(uint64(s))
			}
		}
		eit := idx.eitSorted[li]
		put32(uint32(len(eit)))
		for _, e := range eit {
			put64(uint64(e.key))
			put32(uint32(len(e.ws)))
			for _, w := range e.ws {
				put32(uint32(w))
			}
		}
	}
	// The dense k×k matrix dominates the payload; write each row as one
	// bulk move instead of k round-trips through the buffer.
	var rowBuf []byte
	for _, row := range idx.dmat {
		if len(row) == 0 {
			continue
		}
		if hostLittleEndian {
			cw.write(unsafe.Slice((*byte)(unsafe.Pointer(&row[0])), 4*len(row)))
			continue
		}
		rowBuf = rowBuf[:0]
		for _, d := range row {
			rowBuf = binary.LittleEndian.AppendUint32(rowBuf, uint32(d))
		}
		cw.write(rowBuf)
	}
}

// ReadLocalIndex deserialises an index previously written by WriteTo and
// binds it to g. The graph must have the same vertex count the index was
// built for.
func ReadLocalIndex(r io.Reader, g *graph.Graph) (*LocalIndex, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIndexCorrupt, err)
	}
	if len(data) < len(indexMagic) || string(data[:len(indexMagic)]) != indexMagic {
		return nil, ErrBadIndexMagic
	}
	if len(data) < len(indexMagic)+4 {
		return nil, fmt.Errorf("%w: missing footer", ErrIndexChecksum)
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(foot) != crc32.ChecksumIEEE(body) {
		return nil, ErrIndexChecksum
	}
	return ReadIndexPayload(body[len(indexMagic):], g)
}

// ReadIndexPayload deserialises a bare index payload (as written by
// WriteIndexPayload) and binds it to g. b is the exact payload — for a
// segment it is the checksummed index section, decoded in place off the
// mapping. Integrity checking (magic, checksum) is the caller's
// framing; this decoder guarantees only that it fails with a typed
// error instead of panicking or over-allocating on bad bytes. It is the
// cold-boot hot path: counts validate against the bytes that actually
// back them, CMS antichains are adopted verbatim, the sorted
// enumeration arrays are materialised straight from the payload's
// ascending-key layout and the distance matrix is adopted as a view
// over b itself when alignment allows. The returned index may
// therefore alias b, which must stay live and unmodified for the
// index's lifetime — the segment mapping contract.
func ReadIndexPayload(b []byte, g *graph.Graph) (*LocalIndex, error) {
	in := &byteCursor{b: b}

	flags := in.u32()
	viewV := in.u32()
	if in.err == nil && int(viewV) != g.NumVertices() {
		return nil, fmt.Errorf("%w: index view |V|=%d, graph |V|=%d", ErrIndexMismatch, viewV, g.NumVertices())
	}
	n := in.u32()
	if in.err == nil && n > viewV {
		return nil, fmt.Errorf("%w: indexed range %d exceeds view |V|=%d", ErrIndexMismatch, n, viewV)
	}
	k := in.u32()
	if in.err == nil && k > n {
		return nil, fmt.Errorf("%w: k=%d exceeds indexed |V|", ErrIndexMismatch, k)
	}
	if in.err != nil {
		return nil, in.fail()
	}
	idx := &LocalIndex{
		g:          g,
		isLandmark: make([]bool, n),
		af:         make([]graph.VertexID, n),
		lmIdx:      make([]int32, n),
		iiSorted:   make([][]iiEntry, k),
		eitSorted:  make([][]eitEntry, k),
		literalRho: flags&1 != 0,
	}
	for i := range idx.lmIdx {
		idx.lmIdx[i] = -1
	}
	idx.landmarks = make([]graph.VertexID, k)
	for i := range idx.landmarks {
		v := in.u32()
		if in.err != nil {
			return nil, in.fail()
		}
		if v >= n {
			return nil, fmt.Errorf("%w: landmark %d out of range", ErrIndexMismatch, v)
		}
		idx.landmarks[i] = graph.VertexID(v)
		idx.isLandmark[v] = true
		idx.lmIdx[v] = int32(i)
	}
	afBytes := in.bytes(4 * int(n))
	if in.err != nil {
		return nil, in.fail()
	}
	if hostLittleEndian && n > 0 {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&idx.af[0])), len(afBytes)), afBytes)
	} else {
		for i := range idx.af {
			idx.af[i] = graph.VertexID(binary.LittleEndian.Uint32(afBytes[4*i:]))
		}
	}
	// Region assignments index lmIdx downstream (Rho, maintenance
	// grouping), so every assigned region must actually be a landmark.
	for _, a := range idx.af {
		if a != graph.NoVertex && (uint32(a) >= n || !idx.isLandmark[a]) {
			return nil, fmt.Errorf("%w: region assignment is not a landmark", ErrIndexCorrupt)
		}
	}
	dirtyBits := in.bytes(((int(k)+7)/8 + 7) &^ 7)
	if in.err != nil {
		return nil, in.fail()
	}
	for li := 0; li < int(k); li++ {
		if dirtyBits[li>>3]&(1<<(li&7)) != 0 {
			if idx.dirty == nil {
				idx.dirty = make([]bool, k)
			}
			idx.dirty[li] = true
		}
	}

	// Arena allocation for the per-entry slices: chunks amortise the
	// roughly one allocation per II/EIT entry a naive decode would pay.
	// Every handed-out sub-slice is capacity-trimmed, so a later append
	// (CMS.Insert during maintenance, EIT growth) reallocates instead of
	// clobbering a neighbouring entry's adopted storage.
	var (
		setArena []labelset.Set
		wsArena  []graph.VertexID
		cmsArena []labelset.CMS
	)
	takeSets := func(n int) []labelset.Set {
		if n > cap(setArena)-len(setArena) {
			setArena = make([]labelset.Set, 0, max(1<<12, n))
		}
		lo := len(setArena)
		setArena = setArena[: lo+n : cap(setArena)]
		return setArena[lo : lo+n : lo+n]
	}
	takeWS := func(n int) []graph.VertexID {
		if n > cap(wsArena)-len(wsArena) {
			wsArena = make([]graph.VertexID, 0, max(1<<12, n))
		}
		lo := len(wsArena)
		wsArena = wsArena[: lo+n : cap(wsArena)]
		return wsArena[lo : lo+n : lo+n]
	}
	adoptCMS := func(sets []labelset.Set) *labelset.CMS {
		if len(cmsArena) == cap(cmsArena) {
			cmsArena = make([]labelset.CMS, 0, 1<<12)
		}
		cmsArena = append(cmsArena, labelset.AdoptSets(sets))
		return &cmsArena[len(cmsArena)-1]
	}

	for li := range idx.landmarks {
		nii := in.count(8) // per entry ≥ vertex u32 + cms len u32
		order := make([]iiEntry, 0, capHint(nii))
		prev := int64(-1)
		for j := uint32(0); j < nii && in.err == nil; j++ {
			v := in.u32()
			if in.err != nil {
				break
			}
			if v >= viewV || int64(v) <= prev {
				return nil, fmt.Errorf("%w: II vertex out of range or order", ErrIndexCorrupt)
			}
			prev = int64(v)
			ns := in.count(8) // per entry one u64 set
			sets := takeSets(int(ns))
			for x := range sets {
				sets[x] = labelset.Set(in.u64())
			}
			order = append(order, iiEntry{v: graph.VertexID(v), cms: adoptCMS(sets)})
		}
		if in.err != nil {
			return nil, in.fail()
		}
		idx.iiSorted[li] = order

		neit := in.count(12) // per entry ≥ labelset u64 + count u32
		eorder := make([]eitEntry, 0, capHint(neit))
		var prevKey uint64
		for j := uint32(0); j < neit && in.err == nil; j++ {
			key := in.u64()
			if in.err != nil {
				break
			}
			if j > 0 && key <= prevKey {
				return nil, fmt.Errorf("%w: EIT keys out of order", ErrIndexCorrupt)
			}
			prevKey = key
			nw := in.count(4) // per entry one vertex u32
			ws := takeWS(int(nw))
			for x := range ws {
				wv := in.u32()
				if in.err == nil && wv >= viewV {
					return nil, fmt.Errorf("%w: EIT vertex out of range", ErrIndexCorrupt)
				}
				ws[x] = graph.VertexID(wv)
			}
			eorder = append(eorder, eitEntry{key: labelset.Set(key), ws: ws})
		}
		if in.err != nil {
			return nil, in.fail()
		}
		idx.eitSorted[li] = eorder
	}

	kk := int(k) * int(k)
	raw := in.bytes(4 * kk)
	if in.err != nil {
		return nil, in.fail()
	}
	var backing []int32
	switch {
	case kk == 0:
	case hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%4 == 0:
		// Adopt the matrix as a read-only view over the payload — it
		// dominates the payload's size and is never written in place
		// after a load (maintenance swaps whole rows; see
		// extendLandmark). The format guarantees the 4-alignment on any
		// 8-aligned input; the runtime check keeps odd inputs (and odd
		// hosts) on the copying path.
		backing = unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), kk)
	default:
		backing = make([]int32, kk)
		for i := range backing {
			backing[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	}
	idx.dmat = dmatRows(backing, int(k))
	if in.off != len(in.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrIndexCorrupt, len(in.b)-in.off)
	}
	return idx, nil
}

// capHint bounds a map/slice pre-size taken from an untrusted count: a
// hostile prefix buys at most 64Ki pre-allocated slots; real data past
// that grows incrementally as bytes actually arrive.
func capHint(n uint32) int { return int(min(n, 1<<16)) }

// byteCursor walks the payload with bounds-checked plain slice reads.
// Every read validates against the bytes actually present, so a hostile
// length prefix can never cause an allocation larger than the input
// that backs it; the first failure sticks in err.
type byteCursor struct {
	b   []byte
	off int
	err error
}

func (c *byteCursor) fail() error {
	if errors.Is(c.err, graph.ErrCorrupt) {
		return c.err
	}
	return fmt.Errorf("%w: %v", ErrIndexCorrupt, c.err)
}

func (c *byteCursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if len(c.b)-c.off < 4 {
		c.err = errPayloadEnd
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *byteCursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if len(c.b)-c.off < 8 {
		c.err = errPayloadEnd
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// bytes returns the next n payload bytes without copying; the slice
// aliases the input and is only valid while it is.
func (c *byteCursor) bytes(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || len(c.b)-c.off < n {
		c.err = errPayloadEnd
		return nil
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s
}

// count reads a u32 element count whose elements occupy at least
// minElemBytes each and rejects counts the remaining bytes cannot
// possibly back.
func (c *byteCursor) count(minElemBytes int) uint32 {
	n := c.u32()
	if c.err == nil && int64(n)*int64(minElemBytes) > int64(len(c.b)-c.off) {
		c.err = fmt.Errorf("%w: count %d exceeds remaining payload", ErrIndexCorrupt, n)
		return 0
	}
	return n
}

// countWriter tracks bytes written and the first error.
type countWriter struct {
	w   io.Writer
	n   int64
	err error
	buf [8]byte
}

func (c *countWriter) write(p []byte) {
	if c.err != nil {
		return
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
}
