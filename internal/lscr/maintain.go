package lscr

import (
	"fmt"
	"slices"
	"sort"

	"lscr/internal/graph"
	"lscr/internal/labelset"
)

// Incremental maintenance of the local landmark index under live
// mutations.
//
// The correctness of everything here rests on a locality property of
// Algorithm 3: landmark u's entries (II[u], EIT[u], D[u]) are computed
// by a BFS that expands only vertices of F(u), so they depend exactly on
// the edges whose SOURCE lies in F(u). An edge operation (s, l, t)
// therefore affects at most ONE landmark — Region(s) — and operations
// whose source has no region (including vertices interned after the
// build) affect none.
//
// Insertions extend entries monotonically: the CMS closure of Algorithm
// 3 is the least fixpoint of "II[u][v] covers L and (v -l-> v') exists
// implies II[u][v'] (or EI[u][v']) covers L+l", and a least fixpoint of
// a monotone operator over a grown graph is reached from ANY sound
// pre-fixpoint — in particular from the pre-batch entries. So
// extendLandmark seeds the standard BFS with the inserted edges applied
// to the pre-batch label sets of their sources and runs it to fixpoint
// over the post-batch graph; by minimality of CMS antichains the result
// is identical to rebuilding from scratch (RebuildFrozen is the oracle
// the proof tier and fuzz target compare against).
//
// Deletions are not monotone — entries derived through a removed edge
// would have to be retracted — so a deletion just marks Region(s) dirty.
// A dirty landmark keeps its (now possibly over-approximate) entries but
// is excluded from INS pruning and from further propagation; every other
// landmark remains exact, because no other landmark's BFS can traverse
// an F(Region(s))-sourced edge. Compaction rebuilds the index from
// scratch and clears all dirtiness.

// MaintBatch reports what one ApplyMutations call did, for the engine's
// cumulative maintenance counters.
type MaintBatch struct {
	// LandmarksExtended counts landmarks whose entries were extended by
	// insert propagation (including extensions that added no new sets).
	LandmarksExtended int
	// EntriesAdded counts minimal label sets accepted into II/EI during
	// propagation.
	EntriesAdded int
	// LandmarksInvalidated counts landmarks newly marked dirty by
	// deletions in this batch.
	LandmarksInvalidated int
}

// ApplyMutations derives the index for g2, the graph view produced by
// committing the edge operations ops against the view this index is
// exact for. The receiver is never modified — callers holding it keep a
// consistent (graph, index) pair — and the derived index shares every
// per-landmark structure the batch did not touch. The second result
// reports what maintenance was done.
//
// The caller must ensure idx.ExactFor(pre-batch view); ops must be the
// batch's validated op stream in commit order (Delta.EdgeOps), and g2
// the Commit result. Dictionary-only batches (ops empty) yield a derived
// index that is simply re-bound to g2.
func (idx *LocalIndex) ApplyMutations(g2 *graph.Graph, ops []graph.EdgeOp) (*LocalIndex, MaintBatch) {
	d := idx.derive(g2)
	var mb MaintBatch

	// Group the batch by the single landmark each op can affect. Within
	// one batch, a deletion invalidates its landmark outright: entries
	// may depend on the removed edge no matter where in the batch it
	// sits, and propagation over g2 (which has the deletion applied)
	// cannot retract them.
	type lwork struct {
		inserts []graph.Triple
		invalid bool
	}
	var affected map[int32]*lwork
	for _, op := range ops {
		a := idx.Region(op.T.Subject)
		if a == graph.NoVertex {
			continue
		}
		li := idx.lmIdx[a]
		if affected == nil {
			affected = make(map[int32]*lwork)
		}
		w := affected[li]
		if w == nil {
			w = &lwork{}
			affected[li] = w
		}
		if op.Del {
			w.invalid = true
		} else if !w.invalid {
			w.inserts = append(w.inserts, op.T)
		}
	}
	if affected == nil {
		return d, mb
	}

	lis := make([]int32, 0, len(affected))
	for li := range affected {
		lis = append(lis, li)
	}
	slices.Sort(lis)
	for _, li := range lis {
		w := affected[li]
		if w.invalid {
			if d.markDirty(li) {
				mb.LandmarksInvalidated++
			}
			continue
		}
		if d.dirty != nil && d.dirty[li] {
			continue // already stale; stays dirty until compaction
		}
		mb.EntriesAdded += d.extendLandmark(li, w.inserts)
		mb.LandmarksExtended++
	}
	return d, mb
}

// derive returns a copy-on-write child of idx bound to g2: the outer
// per-landmark slices are cloned so extendLandmark/markDirty can swap
// individual slots, while every per-landmark entry array and D row
// stays shared with the parent until actually replaced.
func (idx *LocalIndex) derive(g2 *graph.Graph) *LocalIndex {
	d := &LocalIndex{
		g:          g2,
		landmarks:  idx.landmarks,
		isLandmark: idx.isLandmark,
		af:         idx.af,
		lmIdx:      idx.lmIdx,
		iiSorted:   slices.Clone(idx.iiSorted),
		eitSorted:  slices.Clone(idx.eitSorted),
		dmat:       slices.Clone(idx.dmat),
		literalRho: idx.literalRho,
	}
	if idx.dirty != nil {
		d.dirty = slices.Clone(idx.dirty)
	}
	return d
}

// markDirty invalidates landmark li, reporting whether it was clean.
func (idx *LocalIndex) markDirty(li int32) bool {
	if idx.dirty == nil {
		idx.dirty = make([]bool, len(idx.landmarks))
	}
	if idx.dirty[li] {
		return false
	}
	idx.dirty[li] = true
	return true
}

// extendLandmark folds a batch of inserted edges into landmark li's
// entries by monotone propagation and returns the number of minimal
// label sets accepted. The landmark's entries are deep-copied into
// scratch maps first (EI is reconstructed from EIT, its exact
// reversal), then the LocalFullIndex BFS runs over the post-batch graph
// seeded with the new edges applied to the pre-batch label sets of
// their sources.
func (idx *LocalIndex) extendLandmark(li int32, ins []graph.Triple) int {
	u := idx.landmarks[li]
	g := idx.g

	ii := make(map[graph.VertexID]*labelset.CMS, len(idx.iiSorted[li])+len(ins))
	for _, e := range idx.iiSorted[li] {
		ii[e.v] = e.cms.Clone()
	}
	// EI[u] was reversed into EIT[u] at build time set-by-set, so
	// re-inserting every (key, w) pair reconstructs exactly the same
	// antichains.
	ei := make(map[graph.VertexID]*labelset.CMS)
	for _, e := range idx.eitSorted[li] {
		for _, w := range e.ws {
			c := ei[w]
			if c == nil {
				c = labelset.NewCMS()
				ei[w] = c
			}
			c.Insert(e.key)
		}
	}

	added := 0
	insert := func(m map[graph.VertexID]*labelset.CMS, v graph.VertexID, l labelset.Set) bool {
		c := m[v]
		if c == nil {
			c = labelset.NewCMS()
			m[v] = c
		}
		if c.Insert(l) {
			added++
			return true
		}
		return false
	}

	// Seeds: each inserted edge (s, l, t) with s already reached extends
	// every pre-batch minimal set of s by l. Sources not (yet) reached
	// contribute nothing directly — if the batch also makes them
	// reachable, the BFS below re-expands them, and their out-edges
	// (including inserted ones) are walked then. Seeding only reads the
	// source CMSs, which this loop never mutates, so iterating the live
	// Sets() is safe.
	var queue []liState
	for _, t := range ins {
		c := ii[t.Subject]
		if c == nil {
			continue
		}
		for _, ls := range c.Sets() {
			nl := ls.Add(t.Label)
			if idx.regionIs(t.Object, u) {
				queue = append(queue, liState{t.Object, nl})
			} else {
				insert(ei, t.Object, nl)
			}
		}
	}

	// The LocalFullIndex BFS loop, continued from the pre-batch entries
	// over the post-batch graph.
	for head := 0; head < len(queue); head++ {
		st := queue[head]
		if !insert(ii, st.v, st.l) {
			continue
		}
		rs := g.OutRuns(st.v)
		for ri, n := 0, rs.Len(); ri < n; ri++ {
			nl := st.l.Add(rs.Label(ri))
			for _, e := range rs.Run(ri) {
				if idx.regionIs(e.To, u) {
					queue = append(queue, liState{e.To, nl})
				} else {
					insert(ei, e.To, nl)
				}
			}
		}
	}

	// Rebuild EIT[u] and the D row from the updated EI[u], exactly as
	// the build tail does.
	eit := make(map[labelset.Set][]graph.VertexID, len(idx.eitSorted[li]))
	row := make([]int32, len(idx.landmarks))
	for w, c := range ei {
		for _, l := range c.Sets() {
			eit[l] = append(eit[l], w)
		}
		if a := idx.Region(w); a != graph.NoVertex {
			row[idx.lmIdx[a]]++
		}
	}
	for _, ws := range eit {
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	}
	idx.iiSorted[li] = sortedIIEntries(ii)
	idx.eitSorted[li] = sortedEITEntries(eit)
	idx.dmat[li] = row
	return added
}

// RebuildFrozen builds, from scratch on g, the index ApplyMutations
// should have maintained: the same landmark set and frozen region
// assignment, every clean landmark's entries recomputed by the full
// LocalFullIndex pass over g, and every dirty landmark's stale entries
// (and dirty flag) carried over verbatim. It is the maintenance oracle
// of the equivalence tier and the fuzz target: if incremental
// propagation is exact, idx.EqualStructure(idx.RebuildFrozen(idx.Graph()))
// is nil.
func (idx *LocalIndex) RebuildFrozen(g *graph.Graph) *LocalIndex {
	o := &LocalIndex{
		g:          g,
		landmarks:  idx.landmarks,
		isLandmark: idx.isLandmark,
		af:         idx.af,
		lmIdx:      idx.lmIdx,
		iiSorted:   make([][]iiEntry, len(idx.landmarks)),
		eitSorted:  make([][]eitEntry, len(idx.landmarks)),
		dmat:       newDMat(len(idx.landmarks)),
		literalRho: idx.literalRho,
	}
	if idx.dirty != nil {
		o.dirty = slices.Clone(idx.dirty)
	}
	var sc liScratch
	for li, u := range o.landmarks {
		if o.dirty != nil && o.dirty[li] {
			o.iiSorted[li] = idx.iiSorted[li]
			o.eitSorted[li] = idx.eitSorted[li]
			copy(o.dmat[li], idx.dmat[li])
			continue
		}
		o.localFullIndex(u, &sc)
	}
	return o
}

// EqualStructure compares the complete materialised structure of two
// indexes — landmarks, regions, the sorted II/EIT enumeration orders
// that drive INS's marking sequence, D rows and dirty flags — and
// returns a description of the first difference, or nil when they are
// structurally identical.
func (idx *LocalIndex) EqualStructure(o *LocalIndex) error {
	if !slices.Equal(idx.landmarks, o.landmarks) {
		return fmt.Errorf("landmark sets differ")
	}
	if !slices.Equal(idx.af, o.af) {
		return fmt.Errorf("region assignments differ")
	}
	for li, u := range idx.landmarks {
		if a, b := idx.Dirty(u), o.Dirty(u); a != b {
			return fmt.Errorf("landmark %d: dirty %v vs %v", u, a, b)
		}
		ai, bi := idx.iiSorted[li], o.iiSorted[li]
		if len(ai) != len(bi) {
			return fmt.Errorf("landmark %d: II has %d vs %d vertices", u, len(ai), len(bi))
		}
		for i := range ai {
			if ai[i].v != bi[i].v {
				return fmt.Errorf("landmark %d: II order differs at %d: %d vs %d", u, i, ai[i].v, bi[i].v)
			}
			if !ai[i].cms.Equal(bi[i].cms) {
				return fmt.Errorf("landmark %d: II[%d] = %v vs %v", u, ai[i].v, ai[i].cms, bi[i].cms)
			}
		}
		ae, be := idx.eitSorted[li], o.eitSorted[li]
		if len(ae) != len(be) {
			return fmt.Errorf("landmark %d: EIT has %d vs %d keys", u, len(ae), len(be))
		}
		for i := range ae {
			if ae[i].key != be[i].key {
				return fmt.Errorf("landmark %d: EIT key order differs at %d: %v vs %v", u, i, ae[i].key, be[i].key)
			}
			if !slices.Equal(ae[i].ws, be[i].ws) {
				return fmt.Errorf("landmark %d: EIT[%v] = %v vs %v", u, ae[i].key, ae[i].ws, be[i].ws)
			}
		}
		if !slices.Equal(idx.dmat[li], o.dmat[li]) {
			return fmt.Errorf("landmark %d: D rows differ", u)
		}
	}
	return nil
}
