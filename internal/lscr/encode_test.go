package lscr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"lscr/internal/graph"
	"lscr/internal/labelset"
	"lscr/internal/testkg"
	"lscr/internal/testkg/pat"
)

func TestIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testkg.Random(rng, 60, 200, 5)
	idx := NewLocalIndex(g, IndexParams{K: 6, Seed: 9, LiteralRho: true})

	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := ReadLocalIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Landmarks()) != len(idx.Landmarks()) {
		t.Fatal("landmark count changed")
	}
	for i := range idx.Landmarks() {
		if got.Landmarks()[i] != idx.Landmarks()[i] {
			t.Fatal("landmarks changed")
		}
	}
	if got.Entries() != idx.Entries() {
		t.Fatalf("entries: %d != %d", got.Entries(), idx.Entries())
	}
	if !got.literalRho {
		t.Fatal("flags lost")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got.Region(graph.VertexID(v)) != idx.Region(graph.VertexID(v)) {
			t.Fatal("region map changed")
		}
	}
	for _, u := range idx.Landmarks() {
		for _, x := range idx.Landmarks() {
			if got.D(u, x) != idx.D(u, x) {
				t.Fatal("D matrix changed")
			}
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := idx.II(u, graph.VertexID(v)), got.II(u, graph.VertexID(v))
			if (a == nil) != (b == nil) || (a != nil && !a.Equal(b)) {
				t.Fatal("II changed")
			}
		}
	}
}

// TestIndexRoundTripMaintained: a maintained index — derived through
// insert propagation and a deletion-dirtied landmark — round-trips with
// its full structure, including the LSCRIDX2 dirty bitmap, so a
// reloaded index keeps excluding invalidated landmarks from pruning.
func TestIndexRoundTripMaintained(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := testkg.Random(rng, 40, 160, 3)
	idx := NewLocalIndex(g, IndexParams{K: 8, Seed: 17})
	cur := idx
	for batch := 0; batch < 4; batch++ {
		g2, ops := mutStep(rng, cur.Graph(), 8)
		cur, _ = cur.ApplyMutations(g2, ops)
	}
	if cur.DirtyLandmarks() == 0 {
		t.Fatal("script produced no dirty landmark; strengthen it")
	}
	var buf bytes.Buffer
	if _, err := cur.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLocalIndex(&buf, cur.Graph())
	if err != nil {
		t.Fatal(err)
	}
	if err := got.EqualStructure(cur); err != nil {
		t.Fatalf("round-trip changed the maintained index: %v", err)
	}
	if got.DirtyLandmarks() != cur.DirtyLandmarks() {
		t.Fatalf("dirty landmarks: %d != %d", got.DirtyLandmarks(), cur.DirtyLandmarks())
	}
}

// TestIndexRoundTripBehaviour: a loaded index must answer INS queries
// identically to the index it was saved from.
func TestIndexRoundTripBehaviour(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		g := testkg.Random(rng, n, rng.Intn(30), rng.Intn(4)+1)
		idx := NewLocalIndex(g, IndexParams{K: rng.Intn(n) + 1, Seed: seed})
		var buf bytes.Buffer
		if _, err := idx.WriteTo(&buf); err != nil {
			return false
		}
		loaded, err := ReadLocalIndex(&buf, g)
		if err != nil {
			return false
		}
		for probe := 0; probe < 4; probe++ {
			c := pat.RandomConstraint(rng, g, 3)
			q := Query{
				Source:     graph.VertexID(rng.Intn(n)),
				Target:     graph.VertexID(rng.Intn(n)),
				Labels:     labelset.Set(rng.Uint64()) & g.LabelUniverse(),
				Constraint: c,
			}
			a, _, err1 := INS(g, idx, q, nil)
			b, _, err2 := INS(g, loaded, q, nil)
			if err1 != nil || err2 != nil || a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexReadRejectsGarbage(t *testing.T) {
	g, _ := testkg.RunningExample()
	if _, err := ReadLocalIndex(bytes.NewReader(nil), g); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadLocalIndex(bytes.NewReader([]byte("NOTANIDX")), g); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestIndexReadRejectsCorruption(t *testing.T) {
	g, _ := testkg.RunningExample()
	idx := NewLocalIndex(g, IndexParams{K: 2, Seed: 1})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte (not in the magic).
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := ReadLocalIndex(bytes.NewReader(data), g); err == nil {
		t.Error("corrupt payload accepted")
	}
	// Truncate.
	if _, err := ReadLocalIndex(bytes.NewReader(data[:len(data)-8]), g); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestIndexReadRejectsWrongGraph(t *testing.T) {
	g, _ := testkg.RunningExample()
	idx := NewLocalIndex(g, IndexParams{K: 2, Seed: 1})
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	other := testkg.Random(rng, 50, 100, 3)
	if _, err := ReadLocalIndex(&buf, other); err == nil {
		t.Error("index bound to a graph of different size")
	}
}

func TestIndexWriteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := testkg.Random(rng, 40, 120, 4)
	idx := NewLocalIndex(g, IndexParams{K: 4, Seed: 2})
	var a, b bytes.Buffer
	if _, err := idx.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialisation is not deterministic")
	}
}
